package swarm_test

import (
	"strings"
	"testing"

	swarm "github.com/swarm-sim/swarm"
)

// TestPublicAPICounter exercises the public facade end to end.
func TestPublicAPICounter(t *testing.T) {
	var counter uint64
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			counter = b.AllocWords(1)
			inc := b.Fn("inc", func(e swarm.TaskEnv) {
				e.Store(counter, e.Load(counter)+1)
			})
			var roots []swarm.Task
			for i := uint64(0); i < 64; i++ {
				roots = append(roots, swarm.Task{Fn: inc, TS: i})
			}
			return roots
		},
	}
	res, err := swarm.Run(swarm.DefaultConfig(8), app)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Load(counter); got != 64 {
		t.Fatalf("counter = %d, want 64", got)
	}
	if res.Stats.Commits != 64 {
		t.Fatalf("commits = %d", res.Stats.Commits)
	}
	if res.Stats.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestPublicAPIChildren: parent-child ordering through the public API.
func TestPublicAPIChildren(t *testing.T) {
	var log swarm.Words
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			log = b.NewWords(16)
			var fn swarm.FnID
			fn = b.Fn("chain", func(e swarm.TaskEnv) {
				ts := e.Timestamp()
				e.Store(log.Addr(ts), ts+100)
				if ts < 15 {
					e.Enqueue(fn, ts+1)
				}
			})
			return []swarm.Task{{Fn: fn, TS: 0}}
		},
	}
	res, err := swarm.Run(swarm.DefaultConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Words(log.Base(), log.Len()) {
		if v != uint64(i)+100 {
			t.Fatalf("log[%d] = %d, want %d", i, v, i+100)
		}
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := swarm.Run(swarm.DefaultConfig(4), swarm.App{}); err == nil {
		t.Fatal("expected error for missing Build")
	}
}

// TestZeroRootsIsAnError: a Build that returns no root tasks used to
// yield a silent empty run; it must be a descriptive error, through both
// Run and NewSim.
func TestZeroRootsIsAnError(t *testing.T) {
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			b.Fn("noop", func(e swarm.TaskEnv) {})
			return nil
		},
	}
	_, err := swarm.Run(swarm.DefaultConfig(4), app)
	if err == nil || !strings.Contains(err.Error(), "no root tasks") {
		t.Fatalf("Run with zero roots: err = %v, want a 'no root tasks' error", err)
	}
	if _, err := swarm.NewSim(swarm.DefaultConfig(4), app); err == nil {
		t.Fatal("NewSim with zero roots: expected error")
	}
	// Registering no functions at all is caught separately.
	empty := swarm.App{Build: func(b *swarm.Builder) []swarm.Task { return nil }}
	if _, err := swarm.NewSim(swarm.DefaultConfig(4), empty); err == nil ||
		!strings.Contains(err.Error(), "no task functions") {
		t.Fatalf("NewSim with no fns: err = %v", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	build := func() swarm.App {
		return swarm.App{
			Build: func(b *swarm.Builder) []swarm.Task {
				data := b.AllocWords(64)
				var fn swarm.FnID
				fn = b.Fn("mix", func(e swarm.TaskEnv) {
					a := e.Arg(0)
					e.Store(data+a*8, e.Load(data+(a*7%64)*8)+1)
					if e.Timestamp() < 100 {
						e.Enqueue(fn, e.Timestamp()+2, (a+3)%64)
					}
				})
				var roots []swarm.Task
				for i := uint64(0); i < 10; i++ {
					roots = append(roots, swarm.Task{Fn: fn, TS: i, Args: [3]uint64{i}})
				}
				return roots
			},
		}
	}
	r1, err := swarm.Run(swarm.DefaultConfig(8), build())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := swarm.Run(swarm.DefaultConfig(8), build())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Cycles != r2.Stats.Cycles || r1.Stats.Aborts != r2.Stats.Aborts {
		t.Fatalf("nondeterministic public runs: %d/%d vs %d/%d cycles/aborts",
			r1.Stats.Cycles, r1.Stats.Aborts, r2.Stats.Cycles, r2.Stats.Aborts)
	}
}

// counterApp increments counter[Arg0] once per task; used by the session
// tests below.
func counterApp(nRoots uint64) (swarm.App, *swarm.Words, *swarm.FnID) {
	var data swarm.Words
	var inc swarm.FnID
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			data = b.NewWords(64)
			inc = b.Fn("inc", func(e swarm.TaskEnv) {
				a := data.Addr(e.Arg(0))
				e.Store(a, e.Load(a)+1)
			})
			var roots []swarm.Task
			for i := uint64(0); i < nRoots; i++ {
				roots = append(roots, swarm.Task{Fn: inc, TS: i, Args: [3]uint64{i % 64}})
			}
			return roots
		},
	}
	return app, &data, &inc
}

// TestSessionPhases drives a multi-phase session end to end: run, mutate
// memory at setup cost, inject a second batch, run again, and check both
// the memory state and the phase accounting.
func TestSessionPhases(t *testing.T) {
	app, data, inc := counterApp(16)
	sim, err := swarm.NewSim(swarm.DefaultConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := sim.RunToQuiescence()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Phase != 1 || p1.Commits != 16 {
		t.Fatalf("phase 1 = %+v, want phase 1 with 16 commits", p1)
	}
	mid := sim.StatsSnapshot()
	if mid.Commits != 16 {
		t.Fatalf("mid-run snapshot commits = %d, want 16", mid.Commits)
	}

	// Between-phase, setup-cost mutation: reset word 0 to a sentinel.
	sim.Mem().Store(data.Addr(0), 1000)

	// Second batch: 8 more increments of word 0, timestamps below the
	// committed history's (ordering is per phase).
	var batch []swarm.Task
	for i := uint64(0); i < 8; i++ {
		batch = append(batch, swarm.Task{Fn: *inc, TS: i, Args: [3]uint64{0}})
	}
	if err := sim.Enqueue(batch...); err != nil {
		t.Fatal(err)
	}
	p2, err := sim.RunToQuiescence()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Phase != 2 || p2.Commits != 8 {
		t.Fatalf("phase 2 = %+v, want phase 2 with 8 commits", p2)
	}
	if p2.StartCycle != p1.EndCycle {
		t.Fatalf("phase 2 starts at %d, phase 1 ended at %d", p2.StartCycle, p1.EndCycle)
	}

	res := sim.Finish()
	if got := res.Load(data.Addr(0)); got != 1008 {
		t.Fatalf("data[0] = %d, want 1008 (sentinel + 8 increments)", got)
	}
	if res.Stats.Commits != 24 {
		t.Fatalf("cumulative commits = %d, want 24", res.Stats.Commits)
	}
	if got := len(sim.Phases()); got != 2 {
		t.Fatalf("phases = %d, want 2", got)
	}
	if sum := p1.Commits + p2.Commits; sum != res.Stats.Commits {
		t.Fatalf("phase commits %d don't sum to cumulative %d", sum, res.Stats.Commits)
	}
}

// TestSessionErrors: running an empty phase and using a finished session
// are errors, not silent no-ops.
func TestSessionErrors(t *testing.T) {
	app, _, _ := counterApp(4)
	sim, err := swarm.NewSim(swarm.DefaultConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToQuiescence(); err == nil {
		t.Fatal("empty phase: expected an error")
	}
	sim.Finish()
	if err := sim.Enqueue(swarm.Task{}); err == nil {
		t.Fatal("Enqueue after Finish: expected an error")
	}
	if _, err := sim.RunToQuiescence(); err == nil {
		t.Fatal("RunToQuiescence after Finish: expected an error")
	}
}

// TestRunMatchesSession: the one-shot wrapper and an explicit single-phase
// session produce identical statistics (the timing-neutrality contract).
func TestRunMatchesSession(t *testing.T) {
	app1, _, _ := counterApp(32)
	res1, err := swarm.Run(swarm.DefaultConfig(8), app1)
	if err != nil {
		t.Fatal(err)
	}
	app2, _, _ := counterApp(32)
	sim, err := swarm.NewSim(swarm.DefaultConfig(8), app2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	res2 := sim.Finish()
	if res1.Stats.Cycles != res2.Stats.Cycles || res1.Stats.Events != res2.Stats.Events ||
		res1.Stats.Commits != res2.Stats.Commits || res1.Stats.Aborts != res2.Stats.Aborts {
		t.Fatalf("Run vs session: %+v vs %+v", res1.Stats, res2.Stats)
	}
}

// TestPhasedDeterminism: identical phase schedules produce byte-identical
// phase statistics.
func TestPhasedDeterminism(t *testing.T) {
	run := func() []swarm.PhaseStats {
		app, data, inc := counterApp(24)
		sim, err := swarm.NewSim(swarm.DefaultConfig(8), app)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
		sim.Mem().Store(data.Addr(3), 7)
		for i := uint64(0); i < 12; i++ {
			if err := sim.Enqueue(swarm.Task{Fn: *inc, TS: i, Args: [3]uint64{i % 5}}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sim.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
		return sim.Phases()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("phase counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cycles != b[i].Cycles || a[i].Events != b[i].Events ||
			a[i].Commits != b[i].Commits || a[i].Aborts != b[i].Aborts ||
			a[i].TrafficBytes != b[i].TrafficBytes {
			t.Fatalf("phase %d differs: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}

// TestWordsViews covers the typed guest-memory accessors.
func TestWordsViews(t *testing.T) {
	var w swarm.Words
	var recs swarm.Words
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			w = b.NewWords(8)
			w.Fill(5)
			w.Set(2, 42)
			recs = b.NewWords(4 * 2) // 4 records x 2 fields
			recs.Copy([]uint64{10, 11, 20, 21, 30, 31, 40, 41})
			touch := b.Fn("touch", func(e swarm.TaskEnv) {
				e.Store(w.Addr(0), w.Len())
			})
			return []swarm.Task{{Fn: touch, TS: 0}}
		},
	}
	res, err := swarm.Run(swarm.DefaultConfig(1), app)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Words(w.Base(), w.Len())
	want := []uint64{8, 5, 42, 5, 5, 5, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("words[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	v := res.View(recs.Base(), recs.Len())
	if a := v.At(0); a != 10 {
		t.Fatalf("view At(0) = %d", a)
	}
	if f := res.Load(v.Field(2, 2, 1)); f != 31 {
		t.Fatalf("record 2 field 1 = %d, want 31", f)
	}
	sl := v.Slice(2, 4)
	if sl.Len() != 2 || sl.At(0) != 20 {
		t.Fatalf("slice = len %d first %d", sl.Len(), sl.At(0))
	}
}

// TestMemFreeReuse: Free recycles guest memory for later setup
// allocations of the same size.
func TestMemFreeReuse(t *testing.T) {
	app, _, _ := counterApp(4)
	sim, err := swarm.NewSim(swarm.DefaultConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Mem()
	a := m.Alloc(256)
	m.Free(a, 256)
	bAddr := m.Alloc(256)
	if bAddr != a {
		t.Fatalf("freed setup region not reused: %#x then %#x", a, bAddr)
	}
	m.StoreWords(bAddr, []uint64{1, 2, 3})
	got := m.LoadWords(bAddr, 3)
	for i, want := range []uint64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("LoadWords[%d] = %d, want %d", i, got[i], want)
		}
	}
}
