package swarm_test

import (
	"testing"

	swarm "github.com/swarm-sim/swarm"
)

// TestPublicAPICounter exercises the public facade end to end.
func TestPublicAPICounter(t *testing.T) {
	var counter uint64
	app := swarm.App{
		Build: func(mem *swarm.Mem) ([]swarm.TaskFn, []swarm.Task) {
			counter = mem.AllocWords(1)
			inc := func(e swarm.TaskEnv) {
				e.Store(counter, e.Load(counter)+1)
			}
			var roots []swarm.Task
			for i := uint64(0); i < 64; i++ {
				roots = append(roots, swarm.Task{Fn: 0, TS: i})
			}
			return []swarm.TaskFn{inc}, roots
		},
	}
	res, err := swarm.Run(swarm.DefaultConfig(8), app)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Load(counter); got != 64 {
		t.Fatalf("counter = %d, want 64", got)
	}
	if res.Stats.Commits != 64 {
		t.Fatalf("commits = %d", res.Stats.Commits)
	}
	if res.Stats.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestPublicAPIChildren: parent-child ordering through the public API.
func TestPublicAPIChildren(t *testing.T) {
	var log uint64
	app := swarm.App{
		Build: func(mem *swarm.Mem) ([]swarm.TaskFn, []swarm.Task) {
			log = mem.AllocWords(16)
			fn := func(e swarm.TaskEnv) {
				ts := e.Timestamp()
				e.Store(log+ts*8, ts+100)
				if ts < 15 {
					e.Enqueue(0, ts+1)
				}
			}
			return []swarm.TaskFn{fn}, []swarm.Task{{Fn: 0, TS: 0}}
		},
	}
	res, err := swarm.Run(swarm.DefaultConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		if res.Load(log+i*8) != i+100 {
			t.Fatalf("log[%d] wrong", i)
		}
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := swarm.Run(swarm.DefaultConfig(4), swarm.App{}); err == nil {
		t.Fatal("expected error for missing Build")
	}
}

func TestDeterministicRuns(t *testing.T) {
	build := func() swarm.App {
		return swarm.App{
			Build: func(mem *swarm.Mem) ([]swarm.TaskFn, []swarm.Task) {
				data := mem.AllocWords(64)
				fn := func(e swarm.TaskEnv) {
					a := e.Arg(0)
					e.Store(data+a*8, e.Load(data+(a*7%64)*8)+1)
					if e.Timestamp() < 100 {
						e.Enqueue(0, e.Timestamp()+2, (a+3)%64)
					}
				}
				var roots []swarm.Task
				for i := uint64(0); i < 10; i++ {
					roots = append(roots, swarm.Task{Fn: 0, TS: i, Args: [3]uint64{i}})
				}
				return []swarm.TaskFn{fn}, roots
			},
		}
	}
	r1, err := swarm.Run(swarm.DefaultConfig(8), build())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := swarm.Run(swarm.DefaultConfig(8), build())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Cycles != r2.Stats.Cycles || r1.Stats.Aborts != r2.Stats.Aborts {
		t.Fatalf("nondeterministic public runs: %d/%d vs %d/%d cycles/aborts",
			r1.Stats.Cycles, r1.Stats.Aborts, r2.Stats.Cycles, r2.Stats.Aborts)
	}
}
