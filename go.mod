module github.com/swarm-sim/swarm

go 1.24
