package swarm

import "github.com/swarm-sim/swarm/internal/mem"

// Words is a typed view of a contiguous array of 64-bit guest words: a
// base address plus a bounds-checked element count. It replaces
// hand-rolled base+8*i address arithmetic in application code.
//
// Two kinds of accessors coexist deliberately:
//
//   - Addr/Field compute guest addresses for use *inside* tasks, where
//     every access must flow through the TaskEnv (e.Load(w.Addr(i))) so
//     the machine can time it and track it for conflict detection;
//   - At/Set/Fill/Values read and write the words directly at setup cost,
//     for build-time initialization, between-phase mutation, and result
//     extraction.
//
// The zero Words is empty; views come from Mem.NewWords, Mem.Words and
// Result.View.
type Words struct {
	base uint64
	n    uint64
	mem  *mem.Memory
}

// Base returns the guest address of element 0.
func (w Words) Base() uint64 { return w.base }

// Len returns the element count.
func (w Words) Len() uint64 { return w.n }

// Addr returns the guest address of element i, for access through a task's
// Env. Out-of-bounds indices panic — the typed view exists to catch
// exactly that arithmetic slip.
func (w Words) Addr(i uint64) uint64 {
	if i >= w.n {
		panic("swarm: Words index out of range")
	}
	return w.base + i*8
}

// Field is Addr for struct-of-words layouts: the address of field f of
// record i, where each record is stride words long. Use one Words of
// n*stride elements as an array of n records.
func (w Words) Field(i, stride, f uint64) uint64 {
	if f >= stride {
		panic("swarm: Words field outside record stride")
	}
	return w.Addr(i*stride + f)
}

// Slice returns the subview [lo, hi).
func (w Words) Slice(lo, hi uint64) Words {
	if lo > hi || hi > w.n {
		panic("swarm: Words slice out of range")
	}
	return Words{base: w.base + lo*8, n: hi - lo, mem: w.mem}
}

// At reads element i at setup cost (no simulated cycles).
func (w Words) At(i uint64) uint64 { return w.mem.Load(w.Addr(i)) }

// Set writes element i at setup cost.
func (w Words) Set(i, val uint64) { w.mem.Store(w.Addr(i), val) }

// Fill sets every element to val at setup cost.
func (w Words) Fill(val uint64) {
	for i := uint64(0); i < w.n; i++ {
		w.mem.Store(w.base+i*8, val)
	}
}

// Copy writes vals into the view starting at element 0, at setup cost.
// It panics if vals is longer than the view.
func (w Words) Copy(vals []uint64) {
	if uint64(len(vals)) > w.n {
		panic("swarm: Words Copy source longer than view")
	}
	for i, v := range vals {
		w.mem.Store(w.base+uint64(i)*8, v)
	}
}

// Values reads the whole view into a fresh host slice at setup cost.
func (w Words) Values() []uint64 {
	out := make([]uint64, w.n)
	for i := range out {
		out[i] = w.mem.Load(w.base + uint64(i)*8)
	}
	return out
}
