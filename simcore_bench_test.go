// Simulator-core microbenchmarks: host-side throughput of the event engine
// and the speculative-execution machinery, measured end-to-end per app.
// These track the simulator's own performance (events fired per wall-clock
// second, host nanoseconds per simulated cycle, allocations per run) —
// the numbers behind the BENCH_simcore.json trajectory.
//
// Run interactively:
//
//	go test -bench Simcore -benchmem -run '^$'
//
// Emit the JSON record (written to BENCH_simcore.json in the repo root):
//
//	SWARM_BENCH_JSON=1 go test -run TestWriteSimcoreBenchJSON -timeout 1h
package swarm_test

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
)

// simcoreApps are the microbenchmark workloads: sssp and des are the two
// canonical profiles (priority-queue-heavy graph app, abort-heavy ordered
// discrete-event app); cores and scale keep one run in the hundreds of
// milliseconds so -bench converges quickly.
var simcoreApps = []string{"sssp", "des"}

// simcoreWorkers are the measured SimWorkers points: the single-threaded
// simulator and the tile-parallel machine at two shard counts. Results are
// bit-identical across all of them; only host throughput differs.
var simcoreWorkers = []int{1, 2, 8}

// simcoreBackends are the measured native-runtime points: swarm-rt
// executes the same guest programs on host goroutines, so its
// committed-tasks-per-second sits next to the simulator's events-per-
// second in the JSON record. (rt-conservative is a semantics variant,
// not a performance point — one runtime cell is enough trajectory.)
var simcoreBackends = []string{"rt"}

const (
	simcoreScale = bench.ScaleSmall
	simcoreCores = 64
)

// runSimcoreOnce runs one app once with the given shard count and returns
// its stats.
func runSimcoreOnce(tb testing.TB, b bench.Benchmark, simWorkers int) core.Stats {
	cfg := core.DefaultConfig(simcoreCores)
	cfg.SimWorkers = simWorkers
	st, err := b.RunSwarm(cfg)
	if err != nil {
		tb.Fatalf("%s simworkers=%d: %v", b.Name(), simWorkers, err)
	}
	return st
}

// runSimcoreBackendOnce runs one app once on a native runtime backend.
func runSimcoreBackendOnce(tb testing.TB, b bench.Benchmark, backendName string) core.Stats {
	cfg := core.DefaultConfig(simcoreCores)
	cfg.Backend = backendName
	st, err := b.RunSwarm(cfg)
	if err != nil {
		tb.Fatalf("%s backend=%s: %v", b.Name(), backendName, err)
	}
	return st
}

func BenchmarkSimcore(b *testing.B) {
	for _, name := range simcoreApps {
		app, err := bench.New(name, simcoreScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, sw := range simcoreWorkers {
			sw := sw
			b.Run(fmt.Sprintf("%s/simworkers=%d", name, sw), func(b *testing.B) {
				b.ReportAllocs()
				var events, cycles uint64
				for i := 0; i < b.N; i++ {
					st := runSimcoreOnce(b, app, sw)
					events += st.Events
					cycles += st.Cycles
				}
				sec := b.Elapsed().Seconds()
				if sec > 0 {
					b.ReportMetric(float64(events)/sec, "events/sec")
				}
				if cycles > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/sim-cycle")
				}
			})
		}
		for _, bkname := range simcoreBackends {
			bkname := bkname
			b.Run(fmt.Sprintf("%s/backend=%s", name, bkname), func(b *testing.B) {
				b.ReportAllocs()
				var commits uint64
				for i := 0; i < b.N; i++ {
					commits += runSimcoreBackendOnce(b, app, bkname).Commits
				}
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(commits)/sec, "tasks/sec")
				}
			})
		}
	}
}

// SimcoreRecord is the schema of BENCH_simcore.json: one measurement of
// simulator-core host performance per (app, simworkers) point, plus host
// metadata. Each run replaces the file with the current snapshot; the
// trajectory lives in version control (one committed snapshot per change),
// which is what makes host-side regressions visible. Serial and parallel
// entries for one app sit side by side, so the scaling (or, on a
// single-CPU host, the sharding overhead) is read directly off the file.
type SimcoreRecord struct {
	GoVersion string            `json:"go_version"`
	NumCPU    int               `json:"num_cpu"`
	Scale     string            `json:"scale"`
	Cores     int               `json:"cores"`
	Apps      []SimcoreAppEntry `json:"apps"`
}

// SimcoreAppEntry is one (app, simworkers) host-performance measurement.
// SimWorkers == 1 is the single-threaded simulator. Entries with a
// Backend are native-runtime points: no events or cycles exist there, so
// the throughput number is committed guest tasks per second instead
// (SimWorkers is zero — the runtime sizes itself from the core count).
type SimcoreAppEntry struct {
	App           string  `json:"app"`
	Backend       string  `json:"backend,omitempty"`
	SimWorkers    int     `json:"sim_workers"`
	EventsPerSec  float64 `json:"events_per_sec"`
	TasksPerSec   float64 `json:"tasks_per_sec,omitempty"`
	NsPerSimCycle float64 `json:"ns_per_sim_cycle"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	Events        uint64  `json:"events"`
	SimCycles     uint64  `json:"sim_cycles"`
}

// TestWriteSimcoreBenchJSON measures every simcore (app, simworkers) point
// via testing.Benchmark and writes BENCH_simcore.json. Gated behind
// SWARM_BENCH_JSON so normal test runs don't spend minutes benchmarking;
// CI's bench jobs set the variable and upload the artifact.
func TestWriteSimcoreBenchJSON(t *testing.T) {
	if os.Getenv("SWARM_BENCH_JSON") == "" {
		t.Skip("set SWARM_BENCH_JSON=1 to run the simcore benchmarks and write BENCH_simcore.json")
	}
	rec := SimcoreRecord{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     simcoreScale.String(),
		Cores:     simcoreCores,
	}
	for _, name := range simcoreApps {
		app, err := bench.New(name, simcoreScale)
		if err != nil {
			t.Fatal(err)
		}
		var serial *core.Stats
		for _, sw := range simcoreWorkers {
			var last core.Stats
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					last = runSimcoreOnce(b, app, sw)
				}
			})
			if sw == 1 {
				serial = &last
			} else if serial != nil && !reflect.DeepEqual(last, *serial) {
				// The JSON record must never ship numbers from a divergent
				// parallel run; the differential suite is the real guard,
				// this is a last-resort tripwire.
				t.Fatalf("%s simworkers=%d: Stats diverge from the serial run", name, sw)
			}
			nsPerOp := res.NsPerOp()
			entry := SimcoreAppEntry{
				App:         name,
				SimWorkers:  sw,
				NsPerOp:     nsPerOp,
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				Events:      last.Events,
				SimCycles:   last.Cycles,
			}
			if nsPerOp > 0 {
				entry.EventsPerSec = float64(last.Events) / (float64(nsPerOp) / 1e9)
				entry.NsPerSimCycle = float64(nsPerOp) / float64(last.Cycles)
			}
			rec.Apps = append(rec.Apps, entry)
			t.Logf("%s simworkers=%d: %.0f events/sec, %.1f ns/sim-cycle, %d allocs/op, %d B/op",
				name, sw, entry.EventsPerSec, entry.NsPerSimCycle, entry.AllocsPerOp, entry.BytesPerOp)
		}
		for _, bkname := range simcoreBackends {
			var last core.Stats
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					last = runSimcoreBackendOnce(b, app, bkname)
				}
			})
			// No DeepEqual tripwire here: rt's committed results are
			// deterministic but its wall-clock and abort counts are not.
			// The cross-backend differential suite guards correctness.
			entry := SimcoreAppEntry{
				App:         name,
				Backend:     bkname,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			if res.NsPerOp() > 0 {
				entry.TasksPerSec = float64(last.Commits) / (float64(res.NsPerOp()) / 1e9)
			}
			rec.Apps = append(rec.Apps, entry)
			t.Logf("%s backend=%s: %.0f tasks/sec, %d allocs/op, %d B/op",
				name, bkname, entry.TasksPerSec, entry.AllocsPerOp, entry.BytesPerOp)
		}
	}
	f, err := os.Create("BENCH_simcore.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_simcore.json")
}
