// Package swarm is a simulator for the Swarm architecture ("A Scalable
// Architecture for Ordered Parallelism", Jeffrey et al., MICRO-48, 2015):
// a tiled multicore that executes programs decomposed into tiny,
// programmer-timestamped tasks, speculatively and out of order, while
// committing them in timestamp order.
//
// Programs are Go functions that operate on simulated guest memory through
// the TaskEnv interface; every load, store and enqueue is timed by a
// detailed model of the paper's 64-core CMP (caches, mesh NoC, hardware
// task queues, Bloom-filter conflict detection, selective aborts, GVT
// commits). A minimal application:
//
//	app := swarm.App{
//	    Build: func(mem *swarm.Mem) ([]swarm.TaskFn, []swarm.Task) {
//	        counter := mem.Alloc(8)
//	        inc := func(e swarm.TaskEnv) {
//	            e.Store(counter, e.Load(counter)+1)
//	        }
//	        roots := []swarm.Task{{Fn: 0, TS: 0}}
//	        return []swarm.TaskFn{inc}, roots
//	    },
//	}
//	res, err := swarm.Run(swarm.DefaultConfig(16), app)
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper reproduction.
package swarm

import (
	"errors"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
)

// Env is the architectural interface guest code runs against: loads and
// stores of 64-bit words in simulated memory, compute cycles, and
// task-aware allocation.
type Env = guest.Env

// TaskEnv extends Env with the Swarm task model: the task's timestamp and
// arguments, plus enqueueTask (§4.1).
type TaskEnv = guest.TaskEnv

// TaskFn is a task body. Tasks appear to run atomically in timestamp
// order; the hardware speculates underneath.
type TaskFn = guest.TaskFn

// Task is an architectural task descriptor: function index, 64-bit
// timestamp, and up to three argument words.
type Task = guest.TaskDesc

// Config describes the simulated machine (Table 3 of the paper).
type Config = core.Config

// Stats reports a run's cycles, commits, aborts, queue occupancies, NoC
// traffic and cycle breakdowns.
type Stats = core.Stats

// DefaultConfig returns the paper's machine configuration scaled to
// nCores cores (4-core tiles, 64 task queue entries and 16 commit queue
// entries per core, 2048-bit 8-way Bloom signatures, ...).
func DefaultConfig(nCores int) Config { return core.DefaultConfig(nCores) }

// Mem provides setup-time access to guest memory: allocation and
// initialization before the measured execution starts.
type Mem struct {
	m *core.Machine
}

// Alloc reserves n bytes of guest memory (64-byte aligned) at no
// simulated cost.
func (m *Mem) Alloc(n uint64) uint64 { return m.m.SetupAlloc(n) }

// Store initializes a 64-bit guest word at no simulated cost.
func (m *Mem) Store(addr, val uint64) { m.m.Mem().Store(addr, val) }

// Load reads a 64-bit guest word.
func (m *Mem) Load(addr uint64) uint64 { return m.m.Mem().Load(addr) }

// AllocWords reserves and zero-initializes n 64-bit words, returning the
// base address.
func (m *Mem) AllocWords(n uint64) uint64 { return m.Alloc(n * 8) }

// App is a Swarm application: Build lays out guest memory and returns the
// task function table plus the root tasks that seed execution.
type App struct {
	Build func(mem *Mem) ([]TaskFn, []Task)
}

// Result is a completed run: statistics plus read access to the final
// guest memory for result extraction.
type Result struct {
	Stats Stats
	mem   *mem.Memory
}

// Load reads a 64-bit word of the final memory state.
func (r Result) Load(addr uint64) uint64 { return r.mem.Load(addr) }

// Run executes the application on a machine with the given configuration,
// until no tasks remain (§4.1's termination condition), and returns the
// final state and statistics. The simulation is deterministic: the same
// configuration and application always produce the same cycle count.
func Run(cfg Config, app App) (Result, error) {
	if app.Build == nil {
		return Result{}, errors.New("swarm: App.Build is required")
	}
	prog := &core.Program{}
	var machine *core.Machine
	prog.Setup = func(m *core.Machine) {
		fns, roots := app.Build(&Mem{m: m})
		prog.Fns = fns
		for _, d := range roots {
			m.EnqueueRootDesc(d)
		}
	}
	machine, err := core.NewMachine(cfg, prog)
	if err != nil {
		return Result{}, err
	}
	st, err := machine.Run()
	if err != nil {
		return Result{}, err
	}
	return Result{Stats: st, mem: machine.Mem()}, nil
}

// Unvisited is a conventional sentinel for "not yet computed" values in
// guest data structures (all ones).
const Unvisited = ^uint64(0)
