// Package swarm is a simulator for the Swarm architecture ("A Scalable
// Architecture for Ordered Parallelism", Jeffrey et al., MICRO-48, 2015):
// a tiled multicore that executes programs decomposed into tiny,
// programmer-timestamped tasks, speculatively and out of order, while
// committing them in timestamp order.
//
// Programs are Go functions that operate on simulated guest memory through
// the TaskEnv interface; every load, store and enqueue is timed by a
// detailed model of the paper's 64-core CMP (caches, mesh NoC, hardware
// task queues, Bloom-filter conflict detection, selective aborts, GVT
// commits).
//
// An application registers named task functions and returns root tasks
// from its Build hook (see Example in example_test.go for a complete
// program). One-shot execution:
//
//	res, err := swarm.Run(swarm.DefaultConfig(16), app)
//
// Incremental and phased execution goes through a session instead: NewSim
// builds a reusable machine, RunToQuiescence executes queued work to the
// paper's §4.1 termination point, and between phases the program may read
// and mutate guest memory at setup cost, enqueue new root tasks, and
// sample statistics (see ExampleNewSim). Run is a thin wrapper over a
// single-phase session and is bit-identical to it.
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper reproduction.
package swarm

import (
	"errors"
	"fmt"

	"github.com/swarm-sim/swarm/internal/backend"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
)

// Env is the architectural interface guest code runs against: loads and
// stores of 64-bit words in simulated memory, compute cycles, and
// task-aware allocation.
type Env = guest.Env

// TaskEnv extends Env with the Swarm task model: the task's timestamp and
// arguments, plus enqueueTask (§4.1).
type TaskEnv = guest.TaskEnv

// TaskFn is a task body. Tasks appear to run atomically in timestamp
// order; the hardware speculates underneath.
type TaskFn = guest.TaskFn

// FnID is a typed handle to a task function registered with Builder.Fn.
// Put it in a Task's Fn field or pass it to TaskEnv.Enqueue.
type FnID = guest.FnID

// Task is an architectural task descriptor: function handle, 64-bit
// timestamp, and up to three argument words.
type Task = guest.TaskDesc

// Config describes the simulated machine (Table 3 of the paper).
// Config.SimWorkers > 1 shards the simulation across host goroutines
// with bit-identical results (see DESIGN.md, "Tile-parallel simulation").
// Config.Backend selects the execution engine: the cycle-level simulator
// (the default) or the native speculative runtime (see BackendNames and
// DESIGN.md, "Execution backends").
type Config = core.Config

// BackendNames lists the valid Config.Backend values: "sim" (the
// cycle-level simulator, also selected by the empty string), "rt" (the
// native speculative runtime) and "rt-conservative" (the native runtime
// without cross-timestamp speculation).
func BackendNames() []string { return core.BackendNames() }

// Stats reports a run's cycles, commits, aborts, queue occupancies, NoC
// traffic and cycle breakdowns.
type Stats = core.Stats

// PhaseStats reports one quiescence-to-quiescence phase of a session:
// counter deltas for the phase plus the cumulative Stats at its end.
type PhaseStats = core.PhaseStats

// DefaultConfig returns the paper's machine configuration scaled to
// nCores cores (4-core tiles, 64 task queue entries and 16 commit queue
// entries per core, 2048-bit 8-way Bloom signatures, ...).
func DefaultConfig(nCores int) Config { return core.DefaultConfig(nCores) }

// Mem provides setup-cost access to guest memory: allocation,
// initialization and inspection outside the measured execution (before
// the run and, in sessions, between phases — the paper fast-forwards
// through initialization, §5). It is backend-agnostic: the same surface
// reaches simulator and native-runtime guest memory.
type Mem struct {
	b backend.Backend
}

// Alloc reserves n bytes of guest memory (64-byte aligned) at no
// simulated cost.
func (m *Mem) Alloc(n uint64) uint64 { return m.b.SetupAlloc(n) }

// Free releases an allocation at no simulated cost. Valid only at
// quiescent points, where no speculative task can hold the region.
func (m *Mem) Free(addr, n uint64) { m.b.SetupFree(addr, n) }

// Store initializes a 64-bit guest word at no simulated cost.
func (m *Mem) Store(addr, val uint64) { m.b.Mem().Store(addr, val) }

// Load reads a 64-bit guest word.
func (m *Mem) Load(addr uint64) uint64 { return m.b.Mem().Load(addr) }

// AllocWords reserves and zero-initializes n 64-bit words, returning the
// base address.
func (m *Mem) AllocWords(n uint64) uint64 { return m.Alloc(n * 8) }

// StoreWords initializes consecutive 64-bit guest words starting at addr
// at no simulated cost.
func (m *Mem) StoreWords(addr uint64, vals []uint64) {
	for i, v := range vals {
		m.b.Mem().Store(addr+uint64(i)*8, v)
	}
}

// LoadWords bulk-reads n consecutive 64-bit guest words starting at addr.
func (m *Mem) LoadWords(addr, n uint64) []uint64 {
	return m.Words(addr, n).Values()
}

// NewWords allocates a fresh n-word guest array and returns a typed view
// of it.
func (m *Mem) NewWords(n uint64) Words {
	return Words{base: m.AllocWords(n), n: n, mem: m.b.Mem()}
}

// Words returns a typed view of n existing guest words at addr.
func (m *Mem) Words(addr, n uint64) Words {
	return Words{base: addr, n: n, mem: m.b.Mem()}
}

// Builder is the build-time view handed to App.Build: guest-memory setup
// through the embedded Mem, plus named task-function registration. The
// returned handles go into root Tasks and TaskEnv.Enqueue calls, replacing
// positional function-table indices.
type Builder struct {
	*Mem
	fns *guest.FnTable
}

// Fn registers a task body under a diagnostic name and returns its typed
// handle. Registration order is observable only through diagnostics;
// handles are the API.
func (b *Builder) Fn(name string, fn TaskFn) FnID { return b.fns.Fn(name, fn) }

// App is a Swarm application: Build lays out guest memory, registers the
// task functions by name, and returns the root tasks that seed execution.
type App struct {
	Build func(b *Builder) []Task
}

// Result is a completed run: statistics plus read access to the final
// guest memory for result extraction.
type Result struct {
	Stats Stats
	mem   *mem.Memory
}

// Load reads a 64-bit word of the final memory state.
func (r Result) Load(addr uint64) uint64 { return r.mem.Load(addr) }

// Words bulk-reads n consecutive 64-bit words of the final memory state
// starting at addr.
func (r Result) Words(addr, n uint64) []uint64 {
	return r.View(addr, n).Values()
}

// View returns a typed (read-only by convention) view of n final-state
// guest words at addr.
func (r Result) View(addr, n uint64) Words {
	return Words{base: addr, n: n, mem: r.mem}
}

// Sim is a reusable simulation session: a machine that runs its program
// to quiescence (§4.1: all queues empty, all tasks committed), then
// accepts guest-memory mutation and new root tasks before running again.
// The clock, caches and statistics carry across phases, so sessions
// express warm restarts, incremental inputs and occupancy-over-time
// measurement that one-shot Run cannot.
//
// A Sim is not safe for concurrent use. Under the default simulator
// backend it is fully deterministic — the same configuration, program
// and phase inputs always produce the same cycle counts; under the
// native backends the final guest memory is equally deterministic but
// the wall-clock statistics are measured, not modeled.
type Sim struct {
	b        backend.Backend
	phases   []PhaseStats
	finished bool
}

// NewSim builds a session: the backend cfg.Backend selects is
// constructed, App.Build runs (laying out memory and enqueueing the
// roots), and the session parks at its initial quiescent point without
// executing a task. An App whose Build returns no root tasks is an
// error: the run would be silently empty.
func NewSim(cfg Config, app App) (*Sim, error) {
	if app.Build == nil {
		return nil, errors.New("swarm: App.Build is required")
	}
	bk, err := backend.New(cfg, func(bk backend.Backend) ([]Task, *guest.FnTable) {
		b := &Builder{Mem: &Mem{b: bk}, fns: &guest.FnTable{}}
		return app.Build(b), b.fns
	})
	if err != nil {
		return nil, err
	}
	return &Sim{b: bk}, nil
}

// Mem returns setup-cost access to guest memory. Valid at quiescent
// points: after NewSim, between phases, and after the last phase — this
// is how a session mutates inputs (and reads intermediate results)
// between RunToQuiescence calls.
func (s *Sim) Mem() *Mem { return &Mem{b: s.b} }

// Enqueue inserts parentless root tasks for the next phase, at no
// simulated cost (injection models an external agent — a network card, a
// host core — not a guest task). Timestamps are unconstrained: ordering
// is per phase, so new work may run "before" (in timestamp terms)
// already-committed history.
func (s *Sim) Enqueue(tasks ...Task) error {
	if s.finished {
		return errors.New("swarm: Enqueue after Finish")
	}
	for _, d := range tasks {
		s.b.EnqueueRootDesc(d)
	}
	return nil
}

// RunToQuiescence executes every queued task — and all of their
// descendants — to the §4.1 termination condition and returns the phase's
// statistics. Calling it with nothing queued is an error (inject work
// with Enqueue first).
func (s *Sim) RunToQuiescence() (PhaseStats, error) {
	if s.finished {
		return PhaseStats{}, errors.New("swarm: RunToQuiescence after Finish")
	}
	if s.b.QueuedTasks() == 0 {
		return PhaseStats{}, fmt.Errorf("swarm: phase %d has no queued tasks; call Enqueue first", s.b.Phase()+1)
	}
	ph, err := s.b.RunPhase()
	if err != nil {
		return PhaseStats{}, err
	}
	s.phases = append(s.phases, ph)
	return ph, nil
}

// StatsSnapshot returns cumulative statistics at the session's current
// quiescent point — a GVT-safe sample: every counted task has committed,
// so the snapshot is exact, not speculative.
func (s *Sim) StatsSnapshot() Stats { return s.b.Snapshot() }

// Phases returns the statistics of every completed phase, in order.
func (s *Sim) Phases() []PhaseStats { return s.phases }

// Finish ends the session and returns the final state: cumulative
// statistics plus read access to guest memory. The session cannot run
// further phases afterwards.
func (s *Sim) Finish() Result {
	s.finished = true
	return Result{Stats: s.b.Snapshot(), mem: s.b.Mem()}
}

// Run executes the application on a machine with the given configuration,
// until no tasks remain (§4.1's termination condition), and returns the
// final state and statistics: a single-phase session. The simulation is
// deterministic: the same configuration and application always produce
// the same cycle count.
func Run(cfg Config, app App) (Result, error) {
	s, err := NewSim(cfg, app)
	if err != nil {
		return Result{}, err
	}
	if _, err := s.RunToQuiescence(); err != nil {
		return Result{}, err
	}
	return s.Finish(), nil
}

// Unvisited is a conventional sentinel for "not yet computed" values in
// guest data structures (all ones).
const Unvisited = ^uint64(0)
