package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refQueue is the old container/heap event queue, kept as the ordering
// oracle: the timing wheel must fire any schedule in exactly the same
// (cycle, seq) order.
type refEvent struct {
	cycle, seq uint64
	cancelled  bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// TestWheelMatchesHeapOrder drives the wheel and the reference heap through
// an adversarial schedule — same-cycle bursts, far-future jumps past the
// wheel window, nested rescheduling, and cancel storms mirroring the
// machine's abort behaviour — and requires identical firing order.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		rng := rand.New(rand.NewSource(1000 + trial))
		var e Engine
		ref := &refQueue{}

		var fireOrder []uint64 // seq of fired events, in firing order
		var wantOrder []uint64

		type pending struct {
			ev  *Event
			ref *refEvent
		}
		var live []pending

		schedule := func(delay uint64) {
			re := &refEvent{seq: e.seq}
			var ev *Event
			ev = e.After(delay, func() {
				fireOrder = append(fireOrder, re.seq)
				// Drop from live so cancel storms only target pending events.
				for i := range live {
					if live[i].ev == ev {
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
						break
					}
				}
			})
			re.cycle = ev.Cycle()
			heap.Push(ref, re)
			live = append(live, pending{ev, re})
		}

		// Seed: bursts at the same cycle, plus far-future jumps well past
		// the wheel window.
		for i := 0; i < 40; i++ {
			switch rng.Intn(3) {
			case 0:
				schedule(uint64(rng.Intn(4))) // same/near-cycle burst
			case 1:
				schedule(uint64(rng.Intn(wheelSize)))
			case 2:
				schedule(uint64(wheelSize + rng.Intn(20*wheelSize))) // far future
			}
		}

		// Fire everything; each fired event randomly reschedules and
		// randomly cancels a batch of pending events (an abort storm).
		steps := 0
		for e.Pending() > 0 {
			// Mirror one firing in the reference queue: pop the smallest
			// non-cancelled event.
			for ref.Len() > 0 {
				re := heap.Pop(ref).(*refEvent)
				if !re.cancelled {
					wantOrder = append(wantOrder, re.seq)
					break
				}
			}
			if !e.Step() {
				t.Fatalf("trial %d: Step returned false with %d pending", trial, e.Pending())
			}
			steps++
			if steps > 100000 {
				t.Fatal("runaway schedule")
			}
			if steps < 3000 {
				for n := rng.Intn(3); n > 0; n-- {
					switch rng.Intn(4) {
					case 0:
						schedule(uint64(rng.Intn(3)))
					case 1:
						schedule(uint64(rng.Intn(wheelSize * 2)))
					case 2:
						schedule(uint64(wheelSize*4 + rng.Intn(50*wheelSize)))
					case 3: // cancel storm
						for k := rng.Intn(4); k > 0 && len(live) > 0; k-- {
							i := rng.Intn(len(live))
							live[i].ev.Cancel()
							live[i].ref.cancelled = true
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
						}
					}
				}
			}
		}

		if len(fireOrder) != len(wantOrder) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(fireOrder), len(wantOrder))
		}
		for i := range fireOrder {
			if fireOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: firing %d was seq %d, reference says seq %d",
					trial, i, fireOrder[i], wantOrder[i])
			}
		}
	}
}

// TestPendingExcludesCancelled is the abort-storm regression: cancelled
// events are compacted eagerly, so Pending reflects only live events and a
// simulation that cancels heavily cannot mistake dead events for work.
func TestPendingExcludesCancelled(t *testing.T) {
	var e Engine
	fired := 0
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.At(uint64(10+i%7), func() { fired++ }))
	}
	// Far-future events land in the overflow heap; cancel some of each.
	for i := 0; i < 100; i++ {
		evs = append(evs, e.At(uint64(10*wheelSize+i), func() { fired++ }))
	}
	if e.Pending() != 200 {
		t.Fatalf("Pending = %d, want 200", e.Pending())
	}
	for i, ev := range evs {
		if i%2 == 0 {
			ev.Cancel()
		}
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending after cancelling half = %d, want 100", e.Pending())
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}

// TestEventPoolRecycles checks the free list actually reuses Event structs:
// a steady-state schedule must stop allocating once warm.
func TestEventPoolRecycles(t *testing.T) {
	var e Engine
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 1000 {
			e.After(3, tick)
		}
	}
	e.After(1, tick)
	allocs := testing.AllocsPerRun(1, func() {
		if err := e.Run(0); err != nil {
			t.Fatal(err)
		}
	})
	// The warm-up run consumes the schedule; the measured run fires the
	// remainder (AllocsPerRun runs the body twice). A small constant is
	// tolerated for the closure itself.
	if allocs > 10 {
		t.Fatalf("steady-state Run allocated %.0f objects; event pool not recycling", allocs)
	}
}

// TestFarFutureJump exercises the wheel's empty-ring fast path: a single
// event far beyond the window must fire at exactly its cycle.
func TestFarFutureJump(t *testing.T) {
	var e Engine
	var at uint64
	e.At(1_000_000_007, func() { at = e.Now() })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 1_000_000_007 {
		t.Fatalf("fired at %d, want 1000000007", at)
	}
}
