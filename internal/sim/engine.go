// Package sim provides the deterministic discrete-event simulation engine
// that everything else in the simulator is built on.
//
// The engine is sequential: events fire one at a time in (cycle, insertion
// sequence) order, so a simulation is a pure function of its inputs. This
// mirrors the paper's in-house sequential, event-driven simulator (§5).
//
// Internally the pending-event set is a bucketed hierarchical timing wheel
// (the calendar-queue design used by cycle-accurate simulators): a ring of
// wheelSize FIFO buckets covers the near future one cycle per bucket, and a
// min-heap holds the far-future overflow. Because the ring covers exactly
// wheelSize consecutive cycles, each bucket maps to a single cycle at a
// time, so appending preserves insertion-sequence order within a cycle;
// overflow events migrate into the ring the moment the window reaches their
// cycle — before any direct insertion for that cycle can happen — keeping
// global (cycle, seq) order exact. Event structs are recycled through a
// free list, and cancellation compacts eagerly (the slot is nilled and all
// live counts are updated immediately), so the hot path allocates nothing
// in steady state.
package sim

import "fmt"

const (
	wheelBits = 8
	// wheelSize is the number of near-future cycles the ring covers.
	// Larger wheels trade memory for fewer overflow migrations; 256 covers
	// every recurring latency in the machine model (GVT period, cache miss,
	// spill batches) so overflow traffic is rare.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Event is a scheduled callback. Events may be cancelled before they fire.
//
// An Event handle is only valid while the event is pending: once it fires
// or is cancelled, the engine recycles the Event, and a retained pointer
// must not be used (Cancel/Cancelled on a recycled handle observe an
// unrelated event). Holders should drop their reference when the event
// fires or immediately after cancelling, as Machine does with pendingEv.
type Event struct {
	cycle     uint64
	seq       uint64
	fn        func()
	cancelled bool

	// Location of the event: slot index in its wheel bucket, heap index in
	// the overflow heap, or locFree/locFired (see loc).
	loc int8
	pos int32

	owner *Engine // set once at creation; Cancel routes through it
	next  *Event  // free-list link
}

const (
	locFired int8 = iota // fired, or never scheduled
	locWheel             // in a wheel bucket; pos is the slot index
	locHeap              // in the overflow heap; pos is the heap index
	locFree              // in the free list
)

// Cycle returns the cycle at which the event is scheduled to fire.
func (ev *Event) Cycle() uint64 { return ev.cycle }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// bucket holds one cycle's events in insertion (sequence) order. Cancelled
// events leave nil holes; live tracks the remaining real entries. The cycle
// tag detects stale contents when the ring wraps, so buckets are reset
// lazily on first use for a new cycle.
type bucket struct {
	cycle uint64
	live  int
	evs   []*Event
}

// Engine is a discrete-event simulator clock and pending-event queue.
// The zero value is ready to use.
type Engine struct {
	now   uint64
	seq   uint64
	fired uint64

	// base is the first cycle the ring currently maps; the ring covers
	// [base, base+wheelSize). Invariant: no pending event precedes base,
	// and outside of Step, base == now once any event has fired.
	base      uint64
	pos       int // next slot to inspect in the current bucket
	wheelLive int // non-cancelled events anywhere in the ring
	buckets   [wheelSize]bucket

	overflow overflowHeap // events at cycle >= base+wheelSize

	pending int    // live scheduled events (wheel + overflow)
	free    *Event // recycled Event structs
}

// Now returns the current simulation cycle.
func (e *Engine) Now() uint64 { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live scheduled events. Cancelled events are
// compacted eagerly and never counted.
func (e *Engine) Pending() int { return e.pending }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(cycle uint64, fn func()) *Event {
	if cycle < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", cycle, e.now))
	}
	ev := e.alloc()
	ev.cycle = cycle
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.pending++
	if cycle < e.base+wheelSize {
		e.wheelInsert(ev)
	} else {
		e.overflow.push(ev)
	}
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay uint64, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The event is removed from its queue
// immediately and recycled.
func (ev *Event) Cancel() {
	if ev.loc == locFired || ev.loc == locFree {
		ev.cancelled = true
		return
	}
	ev.cancelled = true
	ev.owner.remove(ev)
}

func (e *Engine) alloc() *Event {
	ev := e.free
	if ev == nil {
		ev = &Event{owner: e}
	} else {
		e.free = ev.next
		ev.next = nil
	}
	ev.cancelled = false
	return ev
}

func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.loc = locFree
	ev.next = e.free
	e.free = ev
}

// wheelInsert places an event whose cycle is inside the ring window.
func (e *Engine) wheelInsert(ev *Event) {
	b := &e.buckets[ev.cycle&wheelMask]
	if b.cycle != ev.cycle {
		// First use of this bucket for a new cycle: drop stale contents.
		b.cycle = ev.cycle
		b.evs = b.evs[:0]
		b.live = 0
	}
	ev.loc = locWheel
	ev.pos = int32(len(b.evs))
	b.evs = append(b.evs, ev)
	b.live++
	e.wheelLive++
}

// remove detaches a live event from its queue (cancellation path) and
// recycles it.
func (e *Engine) remove(ev *Event) {
	switch ev.loc {
	case locWheel:
		b := &e.buckets[ev.cycle&wheelMask]
		b.evs[ev.pos] = nil
		b.live--
		e.wheelLive--
	case locHeap:
		e.overflow.remove(int(ev.pos))
	}
	e.pending--
	e.recycle(ev)
}

// migrate moves overflow events whose cycle has entered the ring window
// into their buckets, in (cycle, seq) order.
func (e *Engine) migrate() {
	limit := e.base + wheelSize
	for len(e.overflow.evs) > 0 {
		head := e.overflow.evs[0]
		if head.cycle >= limit {
			return
		}
		e.overflow.pop()
		e.wheelInsert(head)
	}
}

// Step fires the next event. It returns false when no events are pending.
func (e *Engine) Step() bool {
	if e.pending == 0 {
		return false
	}
	// Find the next live bucket, advancing the window. If the ring is
	// empty, jump straight to the overflow's earliest cycle.
	if e.wheelLive == 0 {
		e.base = e.overflow.evs[0].cycle
		e.pos = 0
		e.migrate()
	}
	for {
		b := &e.buckets[e.base&wheelMask]
		if b.live > 0 && b.cycle == e.base {
			for {
				ev := b.evs[e.pos]
				e.pos++
				if ev == nil {
					continue
				}
				if ev.cycle < e.now {
					panic("sim: time went backwards")
				}
				b.evs[ev.pos] = nil
				b.live--
				e.wheelLive--
				e.pending--
				ev.loc = locFired
				e.now = ev.cycle
				e.fired++
				fn := ev.fn
				e.recycle(ev)
				fn()
				return true
			}
		}
		// This cycle is exhausted: advance the window by one cycle and pull
		// in any overflow event that just became mappable.
		e.base++
		e.pos = 0
		e.migrate()
	}
}

// Run fires events until the queue is empty or the cycle limit is exceeded.
// A limit of 0 means no limit. It returns an error if the limit was hit,
// which almost always indicates a livelocked simulation.
func (e *Engine) Run(limit uint64) error {
	for e.Step() {
		if limit != 0 && e.now > limit {
			return fmt.Errorf("sim: cycle limit %d exceeded at cycle %d (%d events fired)", limit, e.now, e.fired)
		}
	}
	return nil
}

// RunUntil fires events until stop returns true or the queue empties.
func (e *Engine) RunUntil(stop func() bool) {
	for !stop() {
		if !e.Step() {
			return
		}
	}
}

// overflowHeap is an intrusive min-heap over (cycle, seq) holding events
// beyond the ring window. Events track their heap index in pos, so
// cancellation removes in O(log n) without scanning.
type overflowHeap struct {
	evs []*Event
}

func (h *overflowHeap) less(i, j int) bool {
	a, b := h.evs[i], h.evs[j]
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

func (h *overflowHeap) swap(i, j int) {
	h.evs[i], h.evs[j] = h.evs[j], h.evs[i]
	h.evs[i].pos = int32(i)
	h.evs[j].pos = int32(j)
}

func (h *overflowHeap) push(ev *Event) {
	ev.loc = locHeap
	ev.pos = int32(len(h.evs))
	h.evs = append(h.evs, ev)
	h.up(len(h.evs) - 1)
}

func (h *overflowHeap) pop() *Event {
	ev := h.evs[0]
	h.remove(0)
	return ev
}

// remove deletes the element at index i, preserving heap order.
func (h *overflowHeap) remove(i int) {
	n := len(h.evs) - 1
	if i != n {
		h.swap(i, n)
	}
	h.evs[n] = nil
	h.evs = h.evs[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
}

func (h *overflowHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *overflowHeap) down(i int) {
	n := len(h.evs)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && h.less(r, l) {
			small = r
		}
		if !h.less(small, i) {
			return
		}
		h.swap(i, small)
		i = small
	}
}
