// Package sim provides the deterministic discrete-event simulation engine
// that everything else in the simulator is built on.
//
// The engine is sequential: events fire one at a time in (cycle, insertion
// sequence) order, so a simulation is a pure function of its inputs. This
// mirrors the paper's in-house sequential, event-driven simulator (§5).
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events may be cancelled before they fire;
// cancelled events are dropped lazily when they reach the head of the queue.
type Event struct {
	cycle     uint64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cycle returns the cycle at which the event is scheduled to fire.
func (ev *Event) Cycle() uint64 { return ev.cycle }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Engine is a discrete-event simulator clock and pending-event queue.
// The zero value is ready to use.
type Engine struct {
	now   uint64
	seq   uint64
	queue eventQueue
	fired uint64
}

// Now returns the current simulation cycle.
func (e *Engine) Now() uint64 { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(cycle uint64, fn func()) *Event {
	if cycle < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", cycle, e.now))
	}
	ev := &Event{cycle: cycle, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay uint64, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Step fires the next non-cancelled event. It returns false when the queue
// is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.cycle < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.cycle
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or the cycle limit is exceeded.
// A limit of 0 means no limit. It returns an error if the limit was hit,
// which almost always indicates a livelocked simulation.
func (e *Engine) Run(limit uint64) error {
	for e.Step() {
		if limit != 0 && e.now > limit {
			return fmt.Errorf("sim: cycle limit %d exceeded at cycle %d (%d events fired)", limit, e.now, e.fired)
		}
	}
	return nil
}

// RunUntil fires events until stop returns true or the queue empties.
func (e *Engine) RunUntil(stop func() bool) {
	for !stop() {
		if !e.Step() {
			return
		}
	}
}

// eventQueue is a min-heap over (cycle, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
