package sim

import (
	"math/rand"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same cycle: insertion order
	e.At(20, func() { got = append(got, 3) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestAfterAndNesting(t *testing.T) {
	var e Engine
	var trace []uint64
	e.At(3, func() {
		trace = append(trace, e.Now())
		e.After(4, func() { trace = append(trace, e.Now()) })
		e.After(0, func() { trace = append(trace, e.Now()) }) // zero delay fires same cycle, after current
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 3, 7}
	if len(trace) != 3 || trace[0] != want[0] || trace[1] != want[1] || trace[2] != want[2] {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(5, func() { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunLimit(t *testing.T) {
	var e Engine
	var tick func()
	tick = func() { e.After(100, tick) }
	e.After(100, tick)
	if err := e.Run(1000); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestRandomOrdering checks the heap delivers events in nondecreasing cycle
// order, with FIFO tie-break, under a random workload.
func TestRandomOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var e Engine
	type stamp struct{ cycle, seq uint64 }
	var fireOrder []stamp
	var insert func()
	count := 0
	insert = func() {
		if count >= 5000 {
			return
		}
		count++
		delay := uint64(rng.Intn(50))
		var ev stamp
		e.After(delay, func() {
			ev = stamp{e.Now(), uint64(len(fireOrder))}
			fireOrder = append(fireOrder, ev)
			insert()
			insert()
		})
	}
	insert()
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fireOrder); i++ {
		if fireOrder[i].cycle < fireOrder[i-1].cycle {
			t.Fatalf("event %d fired at %d after event at %d", i, fireOrder[i].cycle, fireOrder[i-1].cycle)
		}
	}
	if e.Fired() == 0 {
		t.Fatal("no events fired")
	}
}
