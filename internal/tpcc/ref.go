package tpcc

import "fmt"

// hostEnv is a zero-cost guest.Env over a plain map: the reference
// executor's memory.
type hostEnv struct {
	mem map[uint64]uint64
	brk uint64
}

func newHostEnv() *hostEnv { return &hostEnv{mem: make(map[uint64]uint64), brk: 1 << 20} }

func (h *hostEnv) Load(a uint64) uint64  { return h.mem[a] }
func (h *hostEnv) Store(a, v uint64)     { h.mem[a] = v }
func (h *hostEnv) Work(uint64)           {}
func (h *hostEnv) Alloc(n uint64) uint64 { a := h.brk; h.brk += (n + 63) &^ 63; return a }
func (h *hostEnv) Free(uint64, uint64)   {}

// Reference executes all transactions in order on a host-side copy of the
// database and returns the layout plus a loader for the expected state.
func Reference(sc Scale, txns []Txn) (*Layout, func(addr uint64) uint64) {
	env := newHostEnv()
	l := Pack(sc, txns, env.Alloc, env.Store)
	for i := range txns {
		ExecTxn(env, l, uint64(i))
	}
	return l, func(a uint64) uint64 { return env.mem[a] }
}

// tupleRegions enumerates every (tableName, firstTuple, tupleCount) region.
func (l *Layout) tupleRegions() []struct {
	name  string
	base  uint64
	count uint64
} {
	sc := l.Scale
	w, d, c := uint64(sc.Warehouses), uint64(sc.Districts), uint64(sc.Customers)
	mo, ml, it := uint64(sc.MaxOrders), uint64(sc.MaxLines), uint64(sc.Items)
	return []struct {
		name  string
		base  uint64
		count uint64
	}{
		{"warehouse", l.warehouse, w},
		{"district", l.district, w * d},
		{"customer", l.customer, w * d * c},
		{"item", l.item, it},
		{"stock", l.stock, w * it},
		{"order", l.order, w * d * mo},
		{"orderline", l.orderline, w * d * mo * ml},
		{"noq", l.noq, w * d},
	}
}

// CompareExact checks every logical field (version words excluded) of got
// against want. Used for the serial and Swarm flavors, whose serialization
// order is exactly transaction order.
func (l *Layout) CompareExact(got, want func(addr uint64) uint64) error {
	for _, r := range l.tupleRegions() {
		for t := uint64(0); t < r.count; t++ {
			for f := 1; f < TupleWords; f++ {
				a := r.base + t*tupleBytes + uint64(f)*8
				if g, w := got(a), want(a); g != w {
					return fmt.Errorf("tpcc: %s tuple %d word %d = %d, want %d", r.name, t, f, g, w)
				}
			}
		}
	}
	// New-order ring contents.
	sc := l.Scale
	for w := uint64(0); w < uint64(sc.Warehouses); w++ {
		for d := uint64(0); d < uint64(sc.Districts); d++ {
			for i := uint64(0); i < uint64(sc.MaxOrders); i++ {
				a := l.NORingAddr(w, d, i)
				if g, wv := got(a), want(a); g != wv {
					return fmt.Errorf("tpcc: no-ring (%d,%d)[%d] = %d, want %d", w, d, i, g, wv)
				}
			}
		}
	}
	return nil
}

// CompareCommutative checks the fields that are identical under any
// serializable order: counters, YTD sums, balances, next order ids, queue
// lengths, and per-district order/line population sums. Used for the OCC
// flavor, whose serialization order is not transaction order.
func (l *Layout) CompareCommutative(got, want func(addr uint64) uint64) error {
	sc := l.Scale
	check := func(name string, addr uint64) error {
		if g, w := got(addr), want(addr); g != w {
			return fmt.Errorf("tpcc: %s = %d, want %d", name, g, w)
		}
		return nil
	}
	for w := uint64(0); w < uint64(sc.Warehouses); w++ {
		if err := check("w_ytd", l.WarehouseAddr(w)+FWYtd*8); err != nil {
			return err
		}
		for d := uint64(0); d < uint64(sc.Districts); d++ {
			dAddr := l.DistrictAddr(w, d)
			if err := check("d_ytd", dAddr+FDYtd*8); err != nil {
				return err
			}
			if err := check("d_next_o_id", dAddr+FDNextOID*8); err != nil {
				return err
			}
			nq := l.NOQAddr(w, d)
			// Tail = number of NewOrder pushes: order-independent. (Head
			// is not: whether a Delivery finds the queue empty depends on
			// the serialization order.)
			if err := check("no_tail", nq+FNOTail*8); err != nil {
				return err
			}
			// Sum of order-line amounts in the district.
			var gs, ws uint64
			for o := uint64(0); o < uint64(sc.MaxOrders); o++ {
				for li := uint64(0); li < uint64(sc.MaxLines); li++ {
					a := l.OLAddr(w, d, o, li) + FOLAmount*8
					gs += got(a)
					ws += want(a)
				}
			}
			if gs != ws {
				return fmt.Errorf("tpcc: district (%d,%d) line amount sum %d, want %d", w, d, gs, ws)
			}
			for c := uint64(0); c < uint64(sc.Customers); c++ {
				cAddr := l.CustomerAddr(w, d, c)
				for _, f := range []uint64{FCYtdPayment, FCPaymentCnt} {
					if err := check("customer", cAddr+f*8); err != nil {
						return err
					}
				}
			}
		}
		for i := uint64(0); i < uint64(sc.Items); i++ {
			sAddr := l.StockAddr(w, i)
			// s_ytd and s_order_cnt are sums; s_quantity is not (the
			// TPC-C +91 wraparound is order-sensitive).
			for _, f := range []uint64{FSYtd, FSOrderCnt, FSRemoteCnt} {
				if err := check("stock", sAddr+f*8); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
