package tpcc

import "github.com/swarm-sim/swarm/internal/guest"

// Transaction bodies over guest.Env: the tuned serial silo runs these
// back-to-back with no synchronization (§6.2), and the host-side reference
// executor runs them against a zero-cost memory to produce ground truth.
// Work() calls approximate the index traversals and field marshalling of
// the real Silo (silo transactions average ~2000 instructions, Table 1).

// txnOverhead approximates per-transaction setup (parameter parsing,
// logging) and opCost per-tuple-access overhead (index traversal).
const (
	txnOverhead = 150
	opCost      = 250
)

// ExecTxn runs transaction i against the database.
func ExecTxn(e guest.Env, l *Layout, i uint64) {
	base := l.TxnAddr(i)
	typ := TxnType(e.Load(base))
	w := e.Load(base + 1*8)
	d := e.Load(base + 2*8)
	c := e.Load(base + 3*8)
	e.Work(txnOverhead)
	switch typ {
	case NewOrder:
		execNewOrder(e, l, base, w, d, c)
	case Payment:
		execPayment(e, l, base, w, d, c)
	case OrderStatus:
		execOrderStatus(e, l, w, d, c)
	case Delivery:
		execDelivery(e, l, base, w)
	case StockLevel:
		execStockLevel(e, l, base, w, d)
	}
}

func execNewOrder(e guest.Env, l *Layout, base, w, d, c uint64) {
	// Read warehouse and district tax rates; take an order id.
	_ = e.Load(l.WarehouseAddr(w) + FWTax*8)
	dAddr := l.DistrictAddr(w, d)
	_ = e.Load(dAddr + FDTax*8)
	oid := e.Load(dAddr + FDNextOID*8)
	e.Store(dAddr+FDNextOID*8, oid+1)
	e.Work(opCost)

	nItems := e.Load(base + 7*8)
	// Insert the order row.
	oAddr := l.OrderAddr(w, d, oid)
	e.Store(oAddr+FOCid*8, c)
	e.Store(oAddr+FOOlCnt*8, nItems)
	e.Work(opCost)
	// Push onto the district's new-order queue.
	nq := l.NOQAddr(w, d)
	tail := e.Load(nq + FNOTail*8)
	e.Store(l.NORingAddr(w, d, tail), oid)
	e.Store(nq+FNOTail*8, tail+1)
	e.Work(opCost)

	for j := uint64(0); j < nItems; j++ {
		ib := base + (8+3*j)*8
		item := e.Load(ib)
		supplyW := e.Load(ib + 8)
		qty := e.Load(ib + 16)
		price := e.Load(l.ItemAddr(item) + FIPrice*8)
		e.Work(opCost)

		// Stock update (TPC-C wraparound rule).
		sAddr := l.StockAddr(supplyW, item)
		sq := e.Load(sAddr + FSQty*8)
		if sq >= qty+10 {
			sq -= qty
		} else {
			sq = sq - qty + 91
		}
		e.Store(sAddr+FSQty*8, sq)
		e.Store(sAddr+FSYtd*8, e.Load(sAddr+FSYtd*8)+qty)
		e.Store(sAddr+FSOrderCnt*8, e.Load(sAddr+FSOrderCnt*8)+1)
		if supplyW != w {
			e.Store(sAddr+FSRemoteCnt*8, e.Load(sAddr+FSRemoteCnt*8)+1)
		}
		e.Work(opCost)

		// Order line.
		olAddr := l.OLAddr(w, d, oid, j)
		e.Store(olAddr+FOLItem*8, item)
		e.Store(olAddr+FOLSupplyW*8, supplyW)
		e.Store(olAddr+FOLQty*8, qty)
		e.Store(olAddr+FOLAmount*8, qty*price)
		e.Work(opCost)
	}
}

func execPayment(e guest.Env, l *Layout, base, w, d, c uint64) {
	amount := e.Load(base + 4*8)
	wAddr := l.WarehouseAddr(w)
	e.Store(wAddr+FWYtd*8, e.Load(wAddr+FWYtd*8)+amount)
	e.Work(opCost)
	dAddr := l.DistrictAddr(w, d)
	e.Store(dAddr+FDYtd*8, e.Load(dAddr+FDYtd*8)+amount)
	e.Work(opCost)
	cAddr := l.CustomerAddr(w, d, c)
	e.Store(cAddr+FCBalance*8, e.Load(cAddr+FCBalance*8)-amount)
	e.Store(cAddr+FCYtdPayment*8, e.Load(cAddr+FCYtdPayment*8)+amount)
	e.Store(cAddr+FCPaymentCnt*8, e.Load(cAddr+FCPaymentCnt*8)+1)
	e.Work(opCost)
}

func execOrderStatus(e guest.Env, l *Layout, w, d, c uint64) {
	// Read the customer and the district's most recent order (read-only).
	cAddr := l.CustomerAddr(w, d, c)
	_ = e.Load(cAddr + FCBalance*8)
	e.Work(opCost)
	oid := e.Load(l.DistrictAddr(w, d) + FDNextOID*8)
	if oid == 0 {
		return
	}
	oAddr := l.OrderAddr(w, d, oid-1)
	cnt := e.Load(oAddr + FOOlCnt*8)
	_ = e.Load(oAddr + FOCarrier*8)
	e.Work(opCost)
	for j := uint64(0); j < cnt; j++ {
		_ = e.Load(l.OLAddr(w, d, oid-1, j) + FOLAmount*8)
		e.Work(4)
	}
}

func execDelivery(e guest.Env, l *Layout, base, w uint64) {
	carrier := e.Load(base + 5*8)
	for d := uint64(0); d < uint64(l.Scale.Districts); d++ {
		nq := l.NOQAddr(w, d)
		head := e.Load(nq + FNOHead*8)
		tail := e.Load(nq + FNOTail*8)
		e.Work(opCost)
		if head == tail {
			continue // no undelivered orders in this district
		}
		oid := e.Load(l.NORingAddr(w, d, head))
		e.Store(nq+FNOHead*8, head+1)

		oAddr := l.OrderAddr(w, d, oid)
		e.Store(oAddr+FOCarrier*8, carrier)
		cnt := e.Load(oAddr + FOOlCnt*8)
		cid := e.Load(oAddr + FOCid*8)
		e.Work(opCost)
		var total uint64
		for j := uint64(0); j < cnt; j++ {
			olAddr := l.OLAddr(w, d, oid, j)
			total += e.Load(olAddr + FOLAmount*8)
			e.Store(olAddr+FOLDelivery*8, carrier) // delivery stamp
			e.Work(4)
		}
		cAddr := l.CustomerAddr(w, d, cid)
		e.Store(cAddr+FCBalance*8, e.Load(cAddr+FCBalance*8)+total)
		e.Store(cAddr+FCDeliveryCnt*8, e.Load(cAddr+FCDeliveryCnt*8)+1)
		e.Work(opCost)
	}
}

func execStockLevel(e guest.Env, l *Layout, base, w, d uint64) {
	threshold := e.Load(base + 6*8)
	next := e.Load(l.DistrictAddr(w, d) + FDNextOID*8)
	e.Work(opCost)
	// Scan the last up-to-8 orders' lines, counting low stock.
	lo := uint64(0)
	if next > 8 {
		lo = next - 8
	}
	low := uint64(0)
	for o := lo; o < next; o++ {
		oAddr := l.OrderAddr(w, d, o)
		cnt := e.Load(oAddr + FOOlCnt*8)
		for j := uint64(0); j < cnt; j++ {
			item := e.Load(l.OLAddr(w, d, o, j) + FOLItem*8)
			sq := e.Load(l.StockAddr(w, item) + FSQty*8)
			e.Work(4)
			if sq < threshold {
				low++
			}
		}
	}
	_ = low // result returned to the client, not stored
}
