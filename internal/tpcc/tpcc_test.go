package tpcc

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
)

func TestGenerateMix(t *testing.T) {
	sc := DefaultScale(2, 1000)
	txns := Generate(sc, 1000, 7)
	mix := Mix(txns)
	// Expect roughly 45/43/4/4/4 (+-5 points at n=1000).
	within := func(got, wantPct int) bool {
		return got > (wantPct-6)*10 && got < (wantPct+6)*10
	}
	if !within(mix[NewOrder], 45) || !within(mix[Payment], 43) {
		t.Fatalf("mix off: %v", mix)
	}
	for _, tx := range txns {
		if tx.W >= sc.Warehouses || tx.D >= sc.Districts || tx.C >= sc.Customers {
			t.Fatal("out-of-range transaction parameters")
		}
		if tx.Type == NewOrder && (len(tx.Items) < 5 || len(tx.Items) > 15) {
			t.Fatalf("new order with %d items", len(tx.Items))
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	sc := DefaultScale(2, 100)
	a := Generate(sc, 100, 3)
	b := Generate(sc, 100, 3)
	for i := range a {
		if a[i].Type != b[i].Type || a[i].W != b[i].W || a[i].Amount != b[i].Amount {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestLayoutTuplesDisjoint(t *testing.T) {
	sc := DefaultScale(2, 100)
	env := newHostEnv()
	l := Pack(sc, nil, env.Alloc, env.Store)
	// Consecutive tuples must be 64B apart (one conflict line each).
	if l.DistrictAddr(0, 1)-l.DistrictAddr(0, 0) != tupleBytes {
		t.Fatal("district stride wrong")
	}
	if l.CustomerAddr(0, 0, 1)%64 != 0 {
		t.Fatal("customer tuple misaligned")
	}
	if l.StockAddr(1, 0) <= l.StockAddr(0, uint64(sc.Items)-1) {
		t.Fatal("stock warehouses overlap")
	}
}

// TestReferenceInvariants: the reference execution satisfies the TPC-C
// consistency conditions our validators rely on.
func TestReferenceInvariants(t *testing.T) {
	sc := DefaultScale(2, 400)
	txns := Generate(sc, 400, 11)
	l, load := Reference(sc, txns)
	mix := Mix(txns)

	var totalOrders uint64
	for w := uint64(0); w < uint64(sc.Warehouses); w++ {
		for d := uint64(0); d < uint64(sc.Districts); d++ {
			next := load(l.DistrictAddr(w, d) + FDNextOID*8)
			tail := load(l.NOQAddr(w, d) + FNOTail*8)
			if next != tail {
				t.Fatalf("district (%d,%d): next_o_id %d != no_tail %d", w, d, next, tail)
			}
			totalOrders += next
			head := load(l.NOQAddr(w, d) + FNOHead*8)
			if head > tail {
				t.Fatalf("queue head %d beyond tail %d", head, tail)
			}
		}
	}
	if totalOrders != uint64(mix[NewOrder]) {
		t.Fatalf("order count %d != NewOrder count %d", totalOrders, mix[NewOrder])
	}

	// Payments sum to warehouse + district YTDs.
	var paySum, wYtd, dYtd uint64
	for _, tx := range txns {
		if tx.Type == Payment {
			paySum += tx.Amount
		}
	}
	for w := uint64(0); w < uint64(sc.Warehouses); w++ {
		wYtd += load(l.WarehouseAddr(w) + FWYtd*8)
		for d := uint64(0); d < uint64(sc.Districts); d++ {
			dYtd += load(l.DistrictAddr(w, d) + FDYtd*8)
		}
	}
	if wYtd != paySum || dYtd != paySum {
		t.Fatalf("ytd sums: w=%d d=%d, payments=%d", wYtd, dYtd, paySum)
	}
}

// TestSerialMachineMatchesReference: running the same bodies on the timed
// serial machine produces exactly the reference state.
func TestSerialMachineMatchesReference(t *testing.T) {
	sc := DefaultScale(2, 200)
	txns := Generate(sc, 200, 13)
	m := smp.NewSerialMachine(smp.DefaultConfig(1))
	l := Pack(sc, txns, m.SetupAlloc, m.Mem().Store)
	cycles := m.Run(func(e guest.Env) {
		for i := 0; i < len(txns); i++ {
			ExecTxn(e, l, uint64(i))
		}
	})
	if cycles == 0 {
		t.Fatal("no cycles")
	}
	refL, refLoad := Reference(sc, txns)
	_ = refL
	if err := l.CompareExact(m.Mem().Load, refLoad); err != nil {
		t.Fatal(err)
	}
	// Exact comparison implies the commutative one.
	if err := l.CompareCommutative(m.Mem().Load, refLoad); err != nil {
		t.Fatal(err)
	}
}

func TestCompareDetectsCorruption(t *testing.T) {
	sc := DefaultScale(1, 50)
	txns := Generate(sc, 50, 17)
	l, refLoad := Reference(sc, txns)
	// A corrupted copy must be caught.
	bad := func(a uint64) uint64 {
		if a == l.WarehouseAddr(0)+FWYtd*8 {
			return refLoad(a) + 1
		}
		return refLoad(a)
	}
	if err := l.CompareExact(bad, refLoad); err == nil {
		t.Fatal("CompareExact missed a corrupted word")
	}
	if err := l.CompareCommutative(bad, refLoad); err == nil {
		t.Fatal("CompareCommutative missed a corrupted YTD")
	}
}
