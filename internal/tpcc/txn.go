package tpcc

import "math/rand"

// TxnType enumerates the five TPC-C transactions.
type TxnType uint8

const (
	NewOrder TxnType = iota
	Payment
	OrderStatus
	Delivery
	StockLevel
)

var txnNames = [...]string{"new_order", "payment", "order_status", "delivery", "stock_level"}

func (t TxnType) String() string { return txnNames[t] }

// OrderItem is one line of a NewOrder transaction.
type OrderItem struct {
	ID      int
	SupplyW int
	Qty     int
}

// Txn is one transaction's parameters.
type Txn struct {
	Type      TxnType
	W, D, C   int
	Amount    uint64 // payment, cents
	Carrier   int    // delivery
	Threshold int    // stock level
	Items     []OrderItem
}

// Generate produces n transactions with the standard TPC-C mix
// (45% NewOrder, 43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel),
// deterministically from the seed.
func Generate(sc Scale, n int, seed int64) []Txn {
	rng := rand.New(rand.NewSource(seed))
	txns := make([]Txn, n)
	for i := range txns {
		t := Txn{
			W: rng.Intn(sc.Warehouses),
			D: rng.Intn(sc.Districts),
			C: rng.Intn(sc.Customers),
		}
		p := rng.Intn(100)
		switch {
		case p < 45:
			t.Type = NewOrder
			nItems := 5 + rng.Intn(11) // 5-15
			for j := 0; j < nItems; j++ {
				it := OrderItem{ID: rng.Intn(sc.Items), SupplyW: t.W, Qty: 1 + rng.Intn(10)}
				// 1% remote warehouse (when possible).
				if sc.Warehouses > 1 && rng.Intn(100) == 0 {
					for {
						it.SupplyW = rng.Intn(sc.Warehouses)
						if it.SupplyW != t.W {
							break
						}
					}
				}
				t.Items = append(t.Items, it)
			}
		case p < 88:
			t.Type = Payment
			t.Amount = uint64(100 + rng.Intn(500000)) // 1.00 - 5000.00
		case p < 92:
			t.Type = OrderStatus
		case p < 96:
			t.Type = Delivery
			t.Carrier = 1 + rng.Intn(10)
		default:
			t.Type = StockLevel
			t.Threshold = 10 + rng.Intn(11)
		}
		txns[i] = t
	}
	return txns
}

// Mix returns the per-type counts of a transaction slice.
func Mix(txns []Txn) map[TxnType]int {
	m := make(map[TxnType]int)
	for _, t := range txns {
		m[t.Type]++
	}
	return m
}
