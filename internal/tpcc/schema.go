// Package tpcc is the in-memory OLTP database substrate for the silo
// benchmark: a scaled TPC-C schema laid out in guest memory, a
// deterministic transaction-mix generator, transaction bodies written
// against guest.Env (shared by the serial baseline and the host-side
// reference executor), and state validators.
//
// Substitutions vs the full TPC-C (documented in DESIGN.md): customers are
// selected by id (no last-name secondary index), item ids are uniform (no
// NURand), and monetary values are integer cents. The conflict structure —
// district next-order-id counters, stock updates, warehouse/district YTD
// hotspots, new-order queues — is preserved, which is what drives silo's
// behaviour in Fig 12/13.
package tpcc

// Scale configures the database size. The paper runs 4 warehouses (Table
// 4) and sweeps 1-64 in Fig 13.
type Scale struct {
	Warehouses int
	Districts  int // per warehouse (TPC-C: 10)
	Customers  int // per district (TPC-C: 3000; scaled down)
	Items      int // TPC-C: 100000; scaled down
	// MaxOrders bounds the per-district order table (initial orders plus
	// new orders).
	MaxOrders int
	// MaxLines is the order-line cap per order (TPC-C: 15).
	MaxLines int
}

// DefaultScale returns a simulation-sized database for the given
// warehouse count and expected transaction count.
func DefaultScale(warehouses, txns int) Scale {
	perDistrict := txns/(warehouses*10) + 8
	return Scale{
		Warehouses: warehouses,
		Districts:  10,
		Customers:  96,
		Items:      512,
		MaxOrders:  4*perDistrict + 32,
		MaxLines:   15,
	}
}

// Tuples are 64-byte (8-word) aligned so each lives alone on a conflict-
// detection line; word 0 is the OCC version/lock word (unused by the
// serial and Swarm flavors).
const TupleWords = 8

// Field word offsets within tuples.
const (
	FVersion = 0

	// Warehouse.
	FWTax = 1
	FWYtd = 2

	// District.
	FDTax     = 1
	FDYtd     = 2
	FDNextOID = 3

	// Customer.
	FCBalance     = 1
	FCYtdPayment  = 2
	FCPaymentCnt  = 3
	FCDeliveryCnt = 4

	// Item.
	FIPrice = 1

	// Stock.
	FSQty       = 1
	FSYtd       = 2
	FSOrderCnt  = 3
	FSRemoteCnt = 4

	// Order.
	FOCid     = 1
	FOOlCnt   = 2
	FOCarrier = 3

	// Order line.
	FOLItem     = 1
	FOLSupplyW  = 2
	FOLQty      = 3
	FOLAmount   = 4
	FOLDelivery = 5

	// New-order queue header.
	FNOHead = 1
	FNOTail = 2
)

// Layout is the database laid out in guest memory.
type Layout struct {
	Scale Scale

	warehouse uint64
	district  uint64
	customer  uint64
	item      uint64
	stock     uint64
	order     uint64
	orderline uint64
	noq       uint64
	noring    uint64

	// TxnTable is the input: transaction parameter blocks.
	TxnTable  uint64
	TxnStride uint64
	NumTxns   int
}

const tupleBytes = TupleWords * 8

// Pack lays out and initializes the database plus the transaction input
// table using setup-time (untimed) primitives.
func Pack(sc Scale, txns []Txn, alloc func(uint64) uint64, store func(addr, val uint64)) *Layout {
	w, d, c, it := uint64(sc.Warehouses), uint64(sc.Districts), uint64(sc.Customers), uint64(sc.Items)
	mo, ml := uint64(sc.MaxOrders), uint64(sc.MaxLines)
	l := &Layout{Scale: sc}
	l.warehouse = alloc(w * tupleBytes)
	l.district = alloc(w * d * tupleBytes)
	l.customer = alloc(w * d * c * tupleBytes)
	l.item = alloc(it * tupleBytes)
	l.stock = alloc(w * it * tupleBytes)
	l.order = alloc(w * d * mo * tupleBytes)
	l.orderline = alloc(w * d * mo * ml * tupleBytes)
	l.noq = alloc(w * d * tupleBytes)
	// Ring of order slots per district, one word per entry, line padded.
	l.noring = alloc(w * d * mo * 8)

	// Deterministic initial values (a fixed function of position, so the
	// host reference can reproduce them).
	for wi := uint64(0); wi < w; wi++ {
		store(l.WarehouseAddr(wi)+FWTax*8, 5+wi%10) // percent
		for di := uint64(0); di < d; di++ {
			store(l.DistrictAddr(wi, di)+FDTax*8, 7+di%10)
		}
	}
	for ii := uint64(0); ii < it; ii++ {
		store(l.ItemAddr(ii)+FIPrice*8, 100+(ii*37)%9900) // cents
	}
	for wi := uint64(0); wi < w; wi++ {
		for ii := uint64(0); ii < it; ii++ {
			store(l.StockAddr(wi, ii)+FSQty*8, 50+(ii+wi)%50)
		}
	}

	// Transaction input table: fixed-stride parameter blocks.
	l.TxnStride = uint64(8 + 3*sc.MaxLines)
	l.NumTxns = len(txns)
	l.TxnTable = alloc(uint64(len(txns)) * l.TxnStride * 8)
	for i, t := range txns {
		base := l.TxnAddr(uint64(i))
		store(base+0*8, uint64(t.Type))
		store(base+1*8, uint64(t.W))
		store(base+2*8, uint64(t.D))
		store(base+3*8, uint64(t.C))
		store(base+4*8, t.Amount)
		store(base+5*8, uint64(t.Carrier))
		store(base+6*8, uint64(t.Threshold))
		store(base+7*8, uint64(len(t.Items)))
		for j, item := range t.Items {
			ib := base + uint64(8+3*j)*8
			store(ib, uint64(item.ID))
			store(ib+8, uint64(item.SupplyW))
			store(ib+16, uint64(item.Qty))
		}
	}
	return l
}

// Tuple address helpers.

// WarehouseAddr returns warehouse w's tuple address.
func (l *Layout) WarehouseAddr(w uint64) uint64 { return l.warehouse + w*tupleBytes }

// DistrictAddr returns district (w, d)'s tuple address.
func (l *Layout) DistrictAddr(w, d uint64) uint64 {
	return l.district + (w*uint64(l.Scale.Districts)+d)*tupleBytes
}

// CustomerAddr returns customer (w, d, c)'s tuple address.
func (l *Layout) CustomerAddr(w, d, c uint64) uint64 {
	sc := l.Scale
	return l.customer + ((w*uint64(sc.Districts)+d)*uint64(sc.Customers)+c)*tupleBytes
}

// ItemAddr returns item i's tuple address.
func (l *Layout) ItemAddr(i uint64) uint64 { return l.item + i*tupleBytes }

// StockAddr returns stock (w, i)'s tuple address.
func (l *Layout) StockAddr(w, i uint64) uint64 {
	return l.stock + (w*uint64(l.Scale.Items)+i)*tupleBytes
}

// OrderAddr returns order slot (w, d, o)'s tuple address.
func (l *Layout) OrderAddr(w, d, o uint64) uint64 {
	sc := l.Scale
	return l.order + ((w*uint64(sc.Districts)+d)*uint64(sc.MaxOrders)+o)*tupleBytes
}

// OLAddr returns order line (w, d, o, line)'s tuple address.
func (l *Layout) OLAddr(w, d, o, line uint64) uint64 {
	sc := l.Scale
	idx := ((w*uint64(sc.Districts)+d)*uint64(sc.MaxOrders)+o)*uint64(sc.MaxLines) + line
	return l.orderline + idx*tupleBytes
}

// NOQAddr returns district (w, d)'s new-order queue header tuple.
func (l *Layout) NOQAddr(w, d uint64) uint64 {
	return l.noq + (w*uint64(l.Scale.Districts)+d)*tupleBytes
}

// NORingAddr returns the address of ring slot i of district (w, d)'s
// new-order queue.
func (l *Layout) NORingAddr(w, d, i uint64) uint64 {
	sc := l.Scale
	return l.noring + ((w*uint64(sc.Districts)+d)*uint64(sc.MaxOrders)+i%uint64(sc.MaxOrders))*8
}

// TxnAddr returns transaction i's parameter block address.
func (l *Layout) TxnAddr(i uint64) uint64 { return l.TxnTable + i*l.TxnStride*8 }

// VersionAddr maps a field address to the version/lock word of its owning
// tuple, for OCC concurrency control. Ring-buffer slots are governed by
// their district's new-order queue tuple (every ring access is paired with
// a head/tail update there). Transaction-input reads are untracked
// (read-only).
func (l *Layout) VersionAddr(addr uint64) (uint64, bool) {
	sc := l.Scale
	ringEnd := l.noring + uint64(sc.Warehouses)*uint64(sc.Districts)*uint64(sc.MaxOrders)*8
	switch {
	case addr >= l.TxnTable:
		return 0, false
	case addr >= l.noring && addr < ringEnd:
		district := (addr - l.noring) / 8 / uint64(sc.MaxOrders)
		return l.noq + district*tupleBytes, true
	case addr >= l.warehouse && addr < ringEnd:
		return addr &^ 63, true
	default:
		return 0, false
	}
}
