package cache

import (
	"math/rand"
	"testing"

	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/vt"
)

// TestDirectoryInclusionProperty: after an arbitrary access sequence, every
// line resident in a tile's L2 must be recorded at the directory as a
// sharer or owner of that tile — otherwise a remote write could miss the
// copy and conflict detection/coherence would be unsound.
func TestDirectoryInclusionProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := DefaultParams(4, 2)
		p.L2KB = 2     // tiny: lots of evictions
		p.L3BankKB = 8 // tiny: recalls
		h := New(p, noc.New(4, 3))
		for i := 0; i < 20000; i++ {
			core := rng.Intn(8)
			h.Access(Access{
				Core: core, Tile: core / 2,
				Line:  uint64(rng.Intn(512)),
				Write: rng.Intn(3) == 0,
				Spec:  rng.Intn(2) == 0,
				VT:    vt.Time{TS: uint64(i), Cycle: uint64(i), Tile: uint32(core / 2)},
			})
		}
		// Inclusion check: walk each tile's L2 tags.
		for tile := 0; tile < 4; tile++ {
			for si := 0; si < h.l2[tile].nSets; si++ {
				for _, e := range h.l2[tile].set(si) {
					if !e.valid || e.epoch != h.l2[tile].epoch {
						continue
					}
					de, ok := h.dir[e.line]
					if !ok {
						t.Fatalf("seed %d: line %d in tile %d L2 but no directory entry", seed, e.line, tile)
					}
					if de.sharers&(1<<uint(tile)) == 0 && int(de.owner) != tile {
						t.Fatalf("seed %d: line %d in tile %d L2 but dir says sharers=%b owner=%d",
							seed, e.line, tile, de.sharers, de.owner)
					}
				}
			}
		}
	}
}

// TestSingleOwnerInvariant: at most one tile can own a line exclusively,
// and an owned line cannot be resident in another tile's L2.
func TestSingleOwnerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h := New(DefaultParams(4, 1), noc.New(4, 3))
	for i := 0; i < 30000; i++ {
		c := rng.Intn(4)
		h.Access(Access{
			Core: c, Tile: c,
			Line:  uint64(rng.Intn(64)),
			Write: rng.Intn(2) == 0,
		})
		if i%1000 == 0 {
			for line, de := range h.dir {
				if de.owner < 0 {
					continue
				}
				for tile := 0; tile < 4; tile++ {
					if tile == int(de.owner) {
						continue
					}
					if h.l2[tile].lookup(line) {
						t.Fatalf("line %d owned by %d but resident in tile %d", line, de.owner, tile)
					}
				}
			}
		}
	}
}

// TestWriteInvalidatesAllReaders: after a write from one tile, no other
// tile can L2-hit the line.
func TestWriteInvalidatesAllReaders(t *testing.T) {
	h := New(DefaultParams(4, 1), noc.New(4, 3))
	for tile := 0; tile < 4; tile++ {
		h.Access(Access{Core: tile, Tile: tile, Line: 42})
	}
	h.Access(Access{Core: 0, Tile: 0, Line: 42, Write: true})
	for tile := 1; tile < 4; tile++ {
		r := h.Access(Access{Core: tile, Tile: tile, Line: 42})
		if r.L1Hit || r.L2Hit {
			t.Fatalf("tile %d still hits line 42 after a remote write", tile)
		}
		// Only check the first reader; later ones legitimately hit again.
		break
	}
}

// BenchmarkAccessL1Hit measures the hot path of the hierarchy.
func BenchmarkAccessL1Hit(b *testing.B) {
	h := New(DefaultParams(16, 4), noc.New(16, 3))
	h.Access(Access{Core: 0, Tile: 0, Line: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(Access{Core: 0, Tile: 0, Line: 7})
	}
}

// BenchmarkAccessL2Miss measures the miss path including directory work.
func BenchmarkAccessL2Miss(b *testing.B) {
	h := New(DefaultParams(16, 4), noc.New(16, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(Access{Core: i % 64, Tile: (i % 64) / 4, Line: uint64(i)})
	}
}
