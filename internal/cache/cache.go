// Package cache models the three-level cache hierarchy of the Swarm CMP
// (Fig 2, Table 3): per-core write-through L1Ds, per-tile inclusive L2s, and
// a shared static-NUCA L3 with one bank per tile and an in-cache MESI
// directory (no silent drops). It also implements the pieces of Swarm's
// hierarchical conflict detection that live in the memory system (§4.4):
//
//   - L1s are managed so that L1 load hits are conflict-free (flash-cleared
//     when a core dequeues a smaller virtual time than it last ran).
//   - Each L2 set has a canary virtual time: L2 hits by tasks at or above
//     the canary need no global check.
//   - The L3 directory tracks sharer bits plus LogTM-style memory-backed
//     sticky bits, so global conflict checks only probe tiles whose tasks
//     may have accessed the line.
//
// Caches here carry timing and conflict-filter metadata only. Data lives in
// the flat simulated memory (internal/mem): Swarm's eager versioning writes
// speculative values in place, so there is never a second copy to keep
// coherent.
package cache

import (
	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/vt"
)

// Params sizes the hierarchy. Zero values are filled from Table 3 by
// DefaultParams.
type Params struct {
	Tiles        int
	CoresPerTile int

	L1KB      int
	L1Ways    int
	L1Latency uint64

	L2KB      int
	L2Ways    int
	L2Latency uint64

	L3BankKB  int
	L3Ways    int
	L3Latency uint64

	MemLatency uint64

	// CanaryPerLine enables precise per-line canary virtual times instead
	// of the default per-set sharing (§6.3 canary study).
	CanaryPerLine bool

	// ZeroLatency idealizes the memory system: every access and message
	// takes 0 cycles (Table 5's "+ 0-cycle mem system"). Metadata is
	// still maintained so conflict filtering keeps working.
	ZeroLatency bool
}

// DefaultParams returns Table 3's configuration for the given machine size.
func DefaultParams(tiles, coresPerTile int) Params {
	return Params{
		Tiles: tiles, CoresPerTile: coresPerTile,
		L1KB: 16, L1Ways: 8, L1Latency: 2,
		L2KB: 256, L2Ways: 8, L2Latency: 7,
		L3BankKB: 1024, L3Ways: 16, L3Latency: 9,
		MemLatency: 120,
	}
}

const lineBytes = 64

// Access describes one memory access presented to the hierarchy.
type Access struct {
	Core  int    // global core id
	Tile  int    // core's tile
	Line  uint64 // line address (byte address >> 6)
	Write bool
	// Spec marks speculative (Swarm task) accesses: they set sticky bits
	// and participate in canary filtering.
	Spec bool
	VT   vt.Time // the accessing task's virtual time (Spec only)
}

// Result reports timing and which conflict checks the access requires.
// CheckTiles aliases an internal buffer valid until the next Access call.
type Result struct {
	Latency uint64
	L1Hit   bool
	L2Hit   bool
	L3Hit   bool
	// NeedGlobalCheck is set when the access missed in the L2 or hit but
	// failed the canary virtual-time check; the requester must then
	// conflict-check the tiles in CheckTiles (§4.4 step 3).
	NeedGlobalCheck bool
	CheckTiles      []int
}

// Stats counts hierarchy events.
type Stats struct {
	Loads, Stores        uint64
	L1Hits, L2Hits       uint64
	L3Hits, MemAccesses  uint64
	CanaryFails          uint64
	GlobalChecks         uint64
	Invalidations        uint64
	Writebacks           uint64
	L1FlashClears        uint64
	StickyChecksFiltered uint64 // global checks avoided thanks to empty sharer/sticky sets
}

type dirEntry struct {
	sharers uint64 // bitmask of tiles with the line in their L2
	owner   int8   // tile holding the line exclusively, or -1
	sticky  uint64 // bitmask of tiles that may hold speculative state (LogTM)
}

// Hierarchy is the full cache system for one machine.
type Hierarchy struct {
	p    Params
	mesh *noc.Mesh

	l1 []*setAssoc // per core
	l2 []*setAssoc // per tile
	l3 []*setAssoc // per tile (bank)

	canary     [][]vt.Time          // per tile: per L2 set (default) …
	canaryLine []map[uint64]vt.Time // … or per tile: per line (CanaryPerLine)

	dir map[uint64]*dirEntry

	checkBuf []int
	stats    Stats
}

// New builds a hierarchy over the given mesh.
func New(p Params, mesh *noc.Mesh) *Hierarchy {
	h := &Hierarchy{p: p, mesh: mesh, dir: make(map[uint64]*dirEntry)}
	cores := p.Tiles * p.CoresPerTile
	h.l1 = make([]*setAssoc, cores)
	for i := range h.l1 {
		h.l1[i] = newSetAssoc(p.L1KB*1024/lineBytes/p.L1Ways, p.L1Ways)
	}
	h.l2 = make([]*setAssoc, p.Tiles)
	h.l3 = make([]*setAssoc, p.Tiles)
	h.canary = make([][]vt.Time, p.Tiles)
	h.canaryLine = make([]map[uint64]vt.Time, p.Tiles)
	for i := 0; i < p.Tiles; i++ {
		h.l2[i] = newSetAssoc(p.L2KB*1024/lineBytes/p.L2Ways, p.L2Ways)
		h.l3[i] = newSetAssoc(p.L3BankKB*1024/lineBytes/p.L3Ways, p.L3Ways)
		h.canary[i] = make([]vt.Time, h.l2[i].nSets)
		if p.CanaryPerLine {
			h.canaryLine[i] = make(map[uint64]vt.Time)
		}
	}
	h.checkBuf = make([]int, 0, p.Tiles)
	return h
}

// Stats returns accumulated counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// bank returns the NUCA home bank (tile) for a line.
func (h *Hierarchy) bank(line uint64) int {
	x := line * 0x9E3779B97F4A7C15
	return int((x >> 40) % uint64(h.p.Tiles))
}

func (h *Hierarchy) entry(line uint64) *dirEntry {
	e, ok := h.dir[line]
	if !ok {
		e = &dirEntry{owner: -1}
		h.dir[line] = e
	}
	return e
}

// Access performs one timed access, updating all metadata, and reports
// which conflict checks the caller must run.
func (h *Hierarchy) Access(a Access) Result {
	if a.Write {
		h.stats.Stores++
	} else {
		h.stats.Loads++
	}
	var r Result
	lat := h.p.L1Latency

	l1 := h.l1[a.Core]
	l1hit := l1.lookup(a.Line)
	r.L1Hit = l1hit

	// Loads that hit the L1 are conflict-free and complete locally.
	if l1hit && !a.Write {
		h.stats.L1Hits++
		r.Latency = h.lat(lat)
		return r
	}

	// L2 (write-through L1s: every store reaches the L2; load misses fill
	// from it).
	tile := a.Tile
	l2 := h.l2[tile]
	set := l2.setOf(a.Line)
	l2hit := l2.lookup(a.Line)
	r.L2Hit = l2hit
	if !l1hit {
		lat += h.p.L2Latency
	}

	canaryOK := true
	if a.Spec && l2hit && a.VT.Less(h.canaryVT(tile, set, a.Line)) {
		// a.VT < canary: a later-VT task installed lines here; an
		// intermediate-VT task elsewhere may have touched the line, so a
		// global check is required (§4.4 "canary virtual time").
		canaryOK = false
		h.stats.CanaryFails++
	}

	e := h.entry(a.Line)
	needDir := !l2hit || (a.Spec && !canaryOK) ||
		(a.Write && (e.sharers&^(1<<uint(tile)) != 0 || (e.owner >= 0 && int(e.owner) != tile)))

	if needDir {
		bank := h.bank(a.Line)
		if !l2hit {
			// Request to home bank; response carries the line.
			lat += 2*h.mesh.Latency(tile, bank) + h.p.L3Latency
			h.mesh.Send(tile, bank, noc.ClassMem, noc.HeaderBytes)
			h.mesh.Send(bank, tile, noc.ClassMem, noc.HeaderBytes+noc.LineBytes)
			l3hit := h.l3[bank].lookup(a.Line)
			r.L3Hit = l3hit
			if l3hit {
				h.stats.L3Hits++
			} else {
				h.stats.MemAccesses++
				lat += h.p.MemLatency + 2*h.mesh.EdgeLatency(bank)
				// Bank <-> edge memory controller traffic.
				h.mesh.Account(bank, noc.ClassMem, noc.HeaderBytes+noc.LineBytes)
				h.installL3(bank, a.Line)
			}
		} else if a.Spec && !canaryOK {
			// Canary failure: consult the directory even on an L2 hit.
			lat += 2 * h.mesh.Latency(tile, bank)
			h.mesh.Send(tile, bank, noc.ClassMem, noc.HeaderBytes)
			h.mesh.Send(bank, tile, noc.ClassMem, noc.HeaderBytes)
		}

		// Coherence actions at the directory.
		if a.Write {
			// Invalidate all other sharers / owner (MESI GetX).
			others := e.sharers &^ (1 << uint(tile))
			if others != 0 || (e.owner >= 0 && int(e.owner) != tile) {
				far := uint64(0)
				for t := 0; t < h.p.Tiles; t++ {
					if t == tile {
						continue
					}
					if others&(1<<uint(t)) != 0 || int(e.owner) == t {
						h.invalidateTileL2(t, a.Line, e)
						h.mesh.Send(bank, t, noc.ClassMem, noc.HeaderBytes)
						h.mesh.Send(t, bank, noc.ClassMem, noc.HeaderBytes)
						if l := h.mesh.Latency(bank, t); l > far {
							far = l
						}
					}
				}
				lat += 2 * far
				h.stats.Invalidations++
			}
			e.owner = int8(tile)
			e.sharers = 1 << uint(tile)
		} else {
			if e.owner >= 0 && int(e.owner) != tile {
				// Downgrade remote owner (GetS to M line): fetch from it.
				ot := int(e.owner)
				lat += 2 * h.mesh.Latency(bank, ot)
				h.mesh.Send(bank, ot, noc.ClassMem, noc.HeaderBytes)
				h.mesh.Send(ot, bank, noc.ClassMem, noc.HeaderBytes+noc.LineBytes)
				h.stats.Writebacks++
				e.owner = -1
			}
			e.sharers |= 1 << uint(tile)
		}
		if a.Spec {
			e.sticky |= 1 << uint(tile)
			// Global conflict check needed: gather candidate tiles.
			r.NeedGlobalCheck = true
			h.checkBuf = h.checkBuf[:0]
			cand := (e.sharers | e.sticky) &^ (1 << uint(tile))
			for t := 0; t < h.p.Tiles; t++ {
				if cand&(1<<uint(t)) != 0 {
					h.checkBuf = append(h.checkBuf, t)
				}
			}
			r.CheckTiles = h.checkBuf
			if len(h.checkBuf) == 0 {
				h.stats.StickyChecksFiltered++
				r.NeedGlobalCheck = false
			} else {
				h.stats.GlobalChecks++
			}
		}
	} else if l2hit {
		h.stats.L2Hits++
	}

	// Fill caches.
	if !l2hit {
		h.installL2(tile, a.Line, a)
	} else if a.Spec {
		h.bumpCanary(tile, set, a.Line, a.VT)
	}
	if !l1hit && !a.Write {
		// Write-no-allocate L1: only loads install.
		h.l1[a.Core].install(a.Line)
	}
	if a.Write {
		// Keep other L1 copies in this tile coherent.
		base := tile * h.p.CoresPerTile
		for c := base; c < base+h.p.CoresPerTile; c++ {
			if c != a.Core {
				h.l1[c].invalidate(a.Line)
			}
		}
		h.l1[a.Core].invalidate(a.Line) // no-allocate: drop stale copy
	}

	r.Latency = h.lat(lat)
	return r
}

func (h *Hierarchy) lat(l uint64) uint64 {
	if h.p.ZeroLatency {
		return 0
	}
	return l
}

func (h *Hierarchy) canaryVT(tile, set int, line uint64) vt.Time {
	if h.p.CanaryPerLine {
		return h.canaryLine[tile][line]
	}
	return h.canary[tile][set]
}

func (h *Hierarchy) bumpCanary(tile, set int, line uint64, v vt.Time) {
	if h.p.CanaryPerLine {
		if m := h.canaryLine[tile]; m[line].Less(v) {
			m[line] = v
		}
		return
	}
	if h.canary[tile][set].Less(v) {
		h.canary[tile][set] = v
	}
}

func (h *Hierarchy) installL2(tile int, line uint64, a Access) {
	victim, evicted := h.l2[tile].install(line)
	if evicted {
		h.evictL2(tile, victim)
	}
	if a.Spec {
		h.bumpCanary(tile, h.l2[tile].setOf(line), line, a.VT)
	}
}

// evictL2 handles an L2 eviction: inclusive L1s drop the line, the
// directory moves the tile's sharer bit to a sticky bit (LogTM: evicted
// speculative state must stay visible to conflict checks).
func (h *Hierarchy) evictL2(tile int, line uint64) {
	base := tile * h.p.CoresPerTile
	for c := base; c < base+h.p.CoresPerTile; c++ {
		h.l1[c].invalidate(line)
	}
	if e, ok := h.dir[line]; ok {
		bit := uint64(1) << uint(tile)
		if e.sharers&bit != 0 {
			e.sharers &^= bit
			e.sticky |= bit
		}
		if int(e.owner) == tile {
			e.owner = -1
			h.stats.Writebacks++
			h.mesh.Send(tile, h.bank(line), noc.ClassMem, noc.HeaderBytes+noc.LineBytes)
		}
	}
}

// invalidateTileL2 drops a line from a tile's L2 (and its L1s) on a remote
// write, moving its sharer bit to sticky.
func (h *Hierarchy) invalidateTileL2(tile int, line uint64, e *dirEntry) {
	h.l2[tile].invalidate(line)
	base := tile * h.p.CoresPerTile
	for c := base; c < base+h.p.CoresPerTile; c++ {
		h.l1[c].invalidate(line)
	}
	bit := uint64(1) << uint(tile)
	if e.sharers&bit != 0 {
		e.sharers &^= bit
		e.sticky |= bit
	}
	if int(e.owner) == tile {
		e.owner = -1
	}
}

// installL3 fills a line into its home bank, recalling L2 copies if the
// inclusive victim is cached above.
func (h *Hierarchy) installL3(bank int, line uint64) {
	victim, evicted := h.l3[bank].install(line)
	if !evicted {
		return
	}
	if e, ok := h.dir[victim]; ok {
		for t := 0; t < h.p.Tiles; t++ {
			if e.sharers&(1<<uint(t)) != 0 {
				h.invalidateTileL2(t, victim, e)
				h.mesh.Send(bank, t, noc.ClassMem, noc.HeaderBytes)
			}
		}
	}
}

// ClearSticky removes a tile's sticky bit for a line; called after a global
// check of that tile found no speculative state (lazy LogTM cleanup).
func (h *Hierarchy) ClearSticky(line uint64, tile int) {
	if e, ok := h.dir[line]; ok {
		e.sticky &^= 1 << uint(tile)
	}
}

// DirTiles returns the sharer|sticky tile bitmask recorded for a line. Undo
// log rollback writes use it to find the tiles whose tasks may have read the
// squashed data (§4.5: rollback writes are normal conflict-checked writes).
func (h *Hierarchy) DirTiles(line uint64) uint64 {
	if e, ok := h.dir[line]; ok {
		return e.sharers | e.sticky
	}
	return 0
}

// FlashClearL1 invalidates every line in a core's L1 (a flash-clear of the
// valid bits, §4.4); done when the core dequeues a smaller virtual time
// than the one it just ran.
func (h *Hierarchy) FlashClearL1(core int) {
	h.l1[core].flashClear()
	h.stats.L1FlashClears++
}

// setAssoc is a set-associative tag array with LRU replacement and
// epoch-based flash clear. All sets share one flat backing array (two
// allocations per cache instead of one per set: machines are built per
// simulation, and per-set slices dominated construction cost).
type setAssoc struct {
	nSets   int
	ways    int
	entries []tagEntry // nSets consecutive windows of ways entries
	size    []uint16   // live entries per set, MRU-first in its window
	epoch   uint32
}

type tagEntry struct {
	line  uint64
	valid bool
	epoch uint32
}

func newSetAssoc(nSets, ways int) *setAssoc {
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	return &setAssoc{
		nSets:   nSets,
		ways:    ways,
		entries: make([]tagEntry, nSets*ways),
		size:    make([]uint16, nSets),
	}
}

func (s *setAssoc) setOf(line uint64) int { return int(line) & (s.nSets - 1) }

// set returns the live window of the line's set.
func (s *setAssoc) set(si int) []tagEntry {
	return s.entries[si*s.ways : si*s.ways+int(s.size[si])]
}

// lookup probes for the line and refreshes LRU on hit.
func (s *setAssoc) lookup(line uint64) bool {
	set := s.set(s.setOf(line))
	for i, e := range set {
		if e.valid && e.epoch == s.epoch && e.line == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = e
			return true
		}
	}
	return false
}

// install inserts the line as MRU, returning the evicted line if a valid
// entry was displaced.
func (s *setAssoc) install(line uint64) (victim uint64, evicted bool) {
	si := s.setOf(line)
	set := s.set(si)
	// Drop stale-epoch entries opportunistically.
	w := 0
	for _, e := range set {
		if e.valid && e.epoch == s.epoch {
			set[w] = e
			w++
		}
	}
	set = set[:w]
	if len(set) == s.ways {
		victim = set[len(set)-1].line
		evicted = true
		set = set[:len(set)-1]
	}
	n := len(set) + 1
	set = s.entries[si*s.ways : si*s.ways+n]
	copy(set[1:], set)
	set[0] = tagEntry{line: line, valid: true, epoch: s.epoch}
	s.size[si] = uint16(n)
	return
}

func (s *setAssoc) invalidate(line uint64) {
	set := s.set(s.setOf(line))
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].valid = false
			return
		}
	}
}

func (s *setAssoc) flashClear() { s.epoch++ }
