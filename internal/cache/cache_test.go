package cache

import (
	"math/rand"
	"testing"

	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/vt"
)

func testHierarchy(tiles, cores int) *Hierarchy {
	return New(DefaultParams(tiles, cores), noc.New(tiles, 3))
}

func TestL1HitAfterLoad(t *testing.T) {
	h := testHierarchy(4, 4)
	r1 := h.Access(Access{Core: 0, Tile: 0, Line: 100})
	if r1.L1Hit {
		t.Fatal("cold access hit L1")
	}
	r2 := h.Access(Access{Core: 0, Tile: 0, Line: 100})
	if !r2.L1Hit {
		t.Fatal("second load missed L1")
	}
	if r2.Latency != 2 {
		t.Fatalf("L1 hit latency = %d, want 2", r2.Latency)
	}
	if r2.Latency >= r1.Latency {
		t.Fatalf("hit latency %d >= miss latency %d", r2.Latency, r1.Latency)
	}
}

func TestLatencyLevels(t *testing.T) {
	h := testHierarchy(1, 1) // single tile: no NoC hops
	// Cold: L3 miss -> memory.
	r := h.Access(Access{Core: 0, Tile: 0, Line: 500})
	wantCold := uint64(2 + 7 + 9 + 120)
	if r.Latency != wantCold {
		t.Fatalf("cold latency = %d, want %d", r.Latency, wantCold)
	}
	// L1 hit.
	if r := h.Access(Access{Core: 0, Tile: 0, Line: 500}); r.Latency != 2 {
		t.Fatalf("L1 hit latency = %d", r.Latency)
	}
	// Evict from L1 only: touch enough lines mapping to the same L1 set.
	// L1: 16KB/64B/8w = 32 sets. Lines 500+32k map to the same set.
	for i := 1; i <= 8; i++ {
		h.Access(Access{Core: 0, Tile: 0, Line: 500 + uint64(i*32)})
	}
	r = h.Access(Access{Core: 0, Tile: 0, Line: 500})
	if r.L1Hit {
		t.Fatal("line should have been evicted from L1")
	}
	if !r.L2Hit {
		t.Fatal("line should still be in L2")
	}
	if r.Latency != 2+7 {
		t.Fatalf("L2 hit latency = %d, want 9", r.Latency)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	h := testHierarchy(1, 2)
	// A store does not install in L1…
	h.Access(Access{Core: 0, Tile: 0, Line: 7, Write: true})
	r := h.Access(Access{Core: 0, Tile: 0, Line: 7})
	if r.L1Hit {
		t.Fatal("store should not allocate in L1")
	}
	if !r.L2Hit {
		t.Fatal("store should have installed in L2")
	}
}

func TestCrossCoreL1Invalidation(t *testing.T) {
	h := testHierarchy(1, 2)
	h.Access(Access{Core: 0, Tile: 0, Line: 9})
	if r := h.Access(Access{Core: 0, Tile: 0, Line: 9}); !r.L1Hit {
		t.Fatal("expected L1 hit")
	}
	// Core 1 (same tile) writes the line: core 0's copy must invalidate.
	h.Access(Access{Core: 1, Tile: 0, Line: 9, Write: true})
	if r := h.Access(Access{Core: 0, Tile: 0, Line: 9}); r.L1Hit {
		t.Fatal("L1 copy survived a same-tile remote write")
	}
}

func TestCrossTileInvalidation(t *testing.T) {
	h := testHierarchy(4, 1)
	h.Access(Access{Core: 0, Tile: 0, Line: 11})
	h.Access(Access{Core: 1, Tile: 1, Line: 11})
	// Tile 2 writes: both copies die.
	h.Access(Access{Core: 2, Tile: 2, Line: 11, Write: true})
	r := h.Access(Access{Core: 0, Tile: 0, Line: 11})
	if r.L1Hit || r.L2Hit {
		t.Fatal("tile 0 copy survived a remote write")
	}
	if h.Stats().Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestRemoteOwnerDowngradeOnRead(t *testing.T) {
	h := testHierarchy(4, 1)
	h.Access(Access{Core: 0, Tile: 0, Line: 13, Write: true}) // tile 0 owns
	before := h.Stats().Writebacks
	h.Access(Access{Core: 1, Tile: 1, Line: 13}) // tile 1 reads
	if h.Stats().Writebacks != before+1 {
		t.Fatal("remote read of owned line did not fetch from owner")
	}
}

func TestFlashClearL1(t *testing.T) {
	h := testHierarchy(1, 1)
	h.Access(Access{Core: 0, Tile: 0, Line: 21})
	h.FlashClearL1(0)
	if r := h.Access(Access{Core: 0, Tile: 0, Line: 21}); r.L1Hit {
		t.Fatal("L1 hit after flash clear")
	}
	if h.Stats().L1FlashClears != 1 {
		t.Fatal("flash clear not counted")
	}
}

func TestCanaryTriggersGlobalCheck(t *testing.T) {
	h := testHierarchy(4, 1)
	later := vt.Time{TS: 10, Cycle: 100, Tile: 0}
	early := vt.Time{TS: 5, Cycle: 200, Tile: 0}
	// Later-VT task installs the line (sets canary = later).
	h.Access(Access{Core: 0, Tile: 0, Line: 33, Spec: true, VT: later})
	// The core dequeues an earlier VT: hardware flash-clears the L1.
	h.FlashClearL1(0)
	// The earlier-VT task L2-hits but fails the canary check.
	r := h.Access(Access{Core: 0, Tile: 0, Line: 33, Spec: true, VT: early})
	if !r.L2Hit {
		t.Fatal("expected L2 hit")
	}
	if h.Stats().CanaryFails == 0 {
		t.Fatal("canary check should have failed for an earlier VT")
	}
	// A yet-later task passes the canary: no global check.
	evenLater := vt.Time{TS: 20, Cycle: 300, Tile: 0}
	cf := h.Stats().CanaryFails
	r = h.Access(Access{Core: 0, Tile: 0, Line: 33, Spec: true, VT: evenLater, Write: true})
	if h.Stats().CanaryFails != cf {
		t.Fatal("later VT should pass the canary check")
	}
	_ = r
}

func TestGlobalCheckTargetsSharers(t *testing.T) {
	h := testHierarchy(4, 1)
	v := func(ts uint64, tile uint32) vt.Time { return vt.Time{TS: ts, Cycle: ts, Tile: tile} }
	// Tiles 1 and 2 touch the line speculatively.
	h.Access(Access{Core: 1, Tile: 1, Line: 55, Spec: true, VT: v(1, 1)})
	h.Access(Access{Core: 2, Tile: 2, Line: 55, Spec: true, VT: v(2, 2)})
	// Tile 0 misses: must be told to check tiles 1 and 2, not itself/3.
	r := h.Access(Access{Core: 0, Tile: 0, Line: 55, Spec: true, VT: v(3, 0), Write: true})
	if !r.NeedGlobalCheck {
		t.Fatal("expected a global check")
	}
	want := map[int]bool{1: true, 2: true}
	if len(r.CheckTiles) != 2 || !want[r.CheckTiles[0]] || !want[r.CheckTiles[1]] {
		t.Fatalf("CheckTiles = %v, want tiles 1 and 2", r.CheckTiles)
	}
}

func TestStickySurvivesEviction(t *testing.T) {
	p := DefaultParams(2, 1)
	p.L2KB = 1 // tiny L2: 1KB/64B/8w = 2 sets, evictions are easy
	p.L3BankKB = 64
	h := New(p, noc.New(2, 3))
	v := vt.Time{TS: 1, Cycle: 1, Tile: 0}
	h.Access(Access{Core: 0, Tile: 0, Line: 4, Spec: true, VT: v})
	// Evict line 4 from tile 0's L2 (same set: line numbers ≡ 4 mod 2… use
	// stride of nSets=2).
	for i := 1; i <= 16; i++ {
		h.Access(Access{Core: 0, Tile: 0, Line: 4 + uint64(i*2), Spec: true, VT: v})
	}
	// Tile 1 writes line 4: the directory must still point at tile 0.
	r := h.Access(Access{Core: 1, Tile: 1, Line: 4, Spec: true, Write: true, VT: vt.Time{TS: 2, Cycle: 2, Tile: 1}})
	if !r.NeedGlobalCheck {
		t.Fatal("expected global check after eviction (sticky bits)")
	}
	found := false
	for _, tl := range r.CheckTiles {
		if tl == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("CheckTiles = %v must include tile 0 via sticky bit", r.CheckTiles)
	}
	// Clearing the sticky bit stops the checks.
	h.ClearSticky(4, 0)
	r = h.Access(Access{Core: 1, Tile: 1, Line: 4, Spec: true, Write: true, VT: vt.Time{TS: 3, Cycle: 3, Tile: 1}})
	for _, tl := range r.CheckTiles {
		if tl == 0 {
			t.Fatal("tile 0 still checked after ClearSticky")
		}
	}
}

func TestZeroLatencyIdealization(t *testing.T) {
	p := DefaultParams(4, 4)
	p.ZeroLatency = true
	h := New(p, noc.New(4, 3))
	r := h.Access(Access{Core: 0, Tile: 0, Line: 77})
	if r.Latency != 0 {
		t.Fatalf("ideal latency = %d, want 0", r.Latency)
	}
	// Metadata still works.
	if r := h.Access(Access{Core: 0, Tile: 0, Line: 77}); !r.L1Hit {
		t.Fatal("ideal mode broke cache metadata")
	}
}

func TestCanaryPerLine(t *testing.T) {
	p := DefaultParams(1, 1)
	p.CanaryPerLine = true
	h := New(p, noc.New(1, 3))
	later := vt.Time{TS: 10, Cycle: 1, Tile: 0}
	early := vt.Time{TS: 5, Cycle: 2, Tile: 0}
	// Install line A with a later VT; line B (same set, different line)
	// with zero VT would share a per-set canary but not a per-line one.
	// L2 has 512 sets; lines 3 and 3+512 share a set.
	h.Access(Access{Core: 0, Tile: 0, Line: 3, Spec: true, VT: later})
	h.Access(Access{Core: 0, Tile: 0, Line: 3 + 512, Spec: true, VT: vt.Time{}})
	h.FlashClearL1(0) // dequeue of a smaller VT clears the L1
	cf := h.Stats().CanaryFails
	// Early task touches line 3+512: per-line canary is zero -> pass.
	h.Access(Access{Core: 0, Tile: 0, Line: 3 + 512, Spec: true, VT: early})
	if h.Stats().CanaryFails != cf {
		t.Fatal("per-line canary should not fail for an unrelated line")
	}
	// But the same early task touching line 3 must fail.
	h.Access(Access{Core: 0, Tile: 0, Line: 3, Spec: true, VT: early})
	if h.Stats().CanaryFails != cf+1 {
		t.Fatal("per-line canary should fail for line installed by later VT")
	}
}

func TestPerSetCanaryIsConservative(t *testing.T) {
	// Same scenario as above but with shared (per-set) canaries: the
	// unrelated line in the same set also triggers the check.
	h := testHierarchy(1, 1)
	later := vt.Time{TS: 10, Cycle: 1, Tile: 0}
	early := vt.Time{TS: 5, Cycle: 2, Tile: 0}
	h.Access(Access{Core: 0, Tile: 0, Line: 3, Spec: true, VT: later})
	h.Access(Access{Core: 0, Tile: 0, Line: 3 + 512, Spec: true, VT: vt.Time{}})
	h.FlashClearL1(0) // dequeue of a smaller VT clears the L1
	cf := h.Stats().CanaryFails
	h.Access(Access{Core: 0, Tile: 0, Line: 3 + 512, Spec: true, VT: early})
	if h.Stats().CanaryFails != cf+1 {
		t.Fatal("per-set canary should conservatively fail (false unfiltered check)")
	}
}

func TestLRUReplacement(t *testing.T) {
	s := newSetAssoc(1, 2) // one set, 2 ways
	s.install(1)
	s.install(2)
	s.lookup(1) // 1 becomes MRU
	victim, ev := s.install(3)
	if !ev || victim != 2 {
		t.Fatalf("victim = %d (evicted=%v), want 2", victim, ev)
	}
	if !s.lookup(1) || !s.lookup(3) || s.lookup(2) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestSetAssocRandomAgainstModel(t *testing.T) {
	// Property-style: set-assoc behaves like per-set LRU lists.
	rng := rand.New(rand.NewSource(11))
	s := newSetAssoc(4, 4)
	model := make(map[int][]uint64) // set -> MRU-ordered lines
	for i := 0; i < 5000; i++ {
		line := uint64(rng.Intn(64))
		set := s.setOf(line)
		hit := s.lookup(line)
		lst := model[set]
		mhit := false
		for j, l := range lst {
			if l == line {
				mhit = true
				copy(lst[1:j+1], lst[:j])
				lst[0] = line
				break
			}
		}
		if hit != mhit {
			t.Fatalf("step %d: hit=%v model=%v (line %d)", i, hit, mhit, line)
		}
		if !hit {
			s.install(line)
			if len(lst) == 4 {
				lst = lst[:3]
			}
			lst = append([]uint64{line}, lst...)
		}
		model[set] = lst
	}
}

func TestStatsCounting(t *testing.T) {
	h := testHierarchy(1, 1)
	h.Access(Access{Core: 0, Tile: 0, Line: 1})
	h.Access(Access{Core: 0, Tile: 0, Line: 1})
	h.Access(Access{Core: 0, Tile: 0, Line: 2, Write: true})
	st := h.Stats()
	if st.Loads != 2 || st.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.L1Hits != 1 || st.MemAccesses != 2 {
		t.Fatalf("l1hits=%d mem=%d", st.L1Hits, st.MemAccesses)
	}
}
