package guest

import "fmt"

// FnTable is an ordered, named task-function table. Applications register
// their task bodies by name (Fn) and receive typed FnID handles to put in
// task descriptors; the simulator consumes the positional table (Fns) the
// registration order defines. Named registration replaces hand-maintained
// positional []TaskFn tables: the handle is created where the function is,
// so reordering registrations can never silently retarget an enqueue.
type FnTable struct {
	fns   []TaskFn
	names []string
}

// Fn registers a task body under a name and returns its handle. Names are
// diagnostic (error messages, traces) and must be unique and non-empty;
// violations panic, since they are programming errors in app code.
func (t *FnTable) Fn(name string, fn TaskFn) FnID {
	if name == "" || fn == nil {
		panic("guest: Fn requires a name and a function body")
	}
	for _, n := range t.names {
		if n == name {
			panic(fmt.Sprintf("guest: task function %q registered twice", name))
		}
	}
	t.fns = append(t.fns, fn)
	t.names = append(t.names, name)
	return FnID(len(t.fns) - 1)
}

// Fns returns the positional function table the registrations built.
func (t *FnTable) Fns() []TaskFn { return t.fns }

// Names returns the registered names, positionally aligned with Fns.
func (t *FnTable) Names() []string { return t.names }

// Name returns the registered name of a handle, or a placeholder for
// out-of-table handles (useful in panic messages).
func (t *FnTable) Name(id FnID) string {
	if int(id) < 0 || int(id) >= len(t.names) {
		return fmt.Sprintf("fn#%d", int(id))
	}
	return t.names[id]
}

// AppBuild is the build-time environment handed to a Swarm application's
// Build hook: setup-cost guest-memory primitives (initialization happens
// outside the measured region, §5) plus the named task-function registrar.
// Build hooks lay out memory with Alloc/Store, register bodies with Fn,
// and return the root task descriptors that seed execution.
type AppBuild struct {
	FnTable

	// Alloc reserves n bytes of guest memory (line-aligned, zero cost).
	Alloc func(n uint64) uint64
	// Store initializes a 64-bit guest word at zero cost.
	Store func(addr, val uint64)
}
