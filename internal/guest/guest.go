// Package guest runs guest code — Swarm task bodies and baseline thread
// bodies — against the simulated machine. Guest code is ordinary Go written
// against the Env interface; every architectural operation (load, store,
// compute, enqueue, ...) is surrendered to the simulator, which times it,
// applies it atomically, and resumes the guest.
//
// Two transports implement the surrender: Coroutine runs the guest on its
// own goroutine with a strict rendezvous per operation (used when several
// guests interleave: Swarm cores, baseline threads), and direct execution,
// where the simulator embeds an Env that applies operations inline (used
// for single-threaded serial baselines and the oracle profiler, which need
// no interleaving).
//
// Exactly one guest goroutine is runnable at any instant, so simulations
// remain sequential and deterministic.
package guest

import "fmt"

// OpKind discriminates guest operations.
type OpKind int

const (
	// OpLoad reads the 64-bit word at Addr.
	OpLoad OpKind = iota
	// OpStore writes Val to the word at Addr.
	OpStore
	// OpWork models N cycles of non-memory instructions.
	OpWork
	// OpEnqueue creates a child task described by Task (Swarm only).
	OpEnqueue
	// OpAlloc allocates N bytes of guest memory; result is the address.
	OpAlloc
	// OpFree releases [Addr, Addr+N).
	OpFree
	// OpCAS compares the word at Addr with Old and, if equal, stores Val.
	// Result.OK reports success (thread mode only).
	OpCAS
	// OpFetchAdd atomically adds Val to the word at Addr and returns the
	// old value (thread mode only).
	OpFetchAdd
	// OpDone signals that the guest function returned.
	OpDone
	// OpAborted signals that the guest unwound after an abort.
	OpAborted
)

// TaskDesc is an architectural task descriptor: function pointer (an index
// into the program's function table), a 64-bit timestamp, and up to three
// 64-bit argument words (§4.1, Table 2).
type TaskDesc struct {
	Fn   int
	TS   uint64
	Args [3]uint64
}

// Op is one operation surrendered by a guest.
type Op struct {
	Kind OpKind
	Addr uint64
	Val  uint64
	Old  uint64 // OpCAS expected value
	N    uint64 // OpWork cycles / OpAlloc+OpFree size
	Task TaskDesc
}

// Result is the simulator's reply to an Op.
type Result struct {
	Val   uint64
	OK    bool
	Abort bool // unwind the guest now (speculative task squashed)
}

// Env is the architectural interface guest code runs against. All guest
// data lives in simulated memory; all costs flow through these calls.
type Env interface {
	// Load returns the 64-bit word at the (8-byte aligned) address.
	Load(addr uint64) uint64
	// Store writes the 64-bit word at the (8-byte aligned) address.
	Store(addr, val uint64)
	// Work charges n cycles of non-memory instructions.
	Work(n uint64)
	// Alloc returns the address of a fresh n-byte guest region.
	Alloc(n uint64) uint64
	// Free releases an allocation (task-aware: reuse happens only after
	// the freeing task commits).
	Free(addr, n uint64)
}

// TaskEnv is the environment visible to a Swarm task (§4.1's API:
// taskFn(timestamp, args...) plus enqueueTask).
type TaskEnv interface {
	Env
	// Timestamp returns the task's programmer-assigned timestamp.
	Timestamp() uint64
	// Arg returns the i-th argument word (i < 3).
	Arg(i int) uint64
	// Enqueue creates a child task with an equal or later timestamp.
	Enqueue(fn int, ts uint64, args ...uint64)
}

// ThreadEnv is the environment visible to a software-baseline thread.
type ThreadEnv interface {
	Env
	// ID returns the thread id, in [0, Threads()).
	ID() int
	// Threads returns the thread count.
	Threads() int
	// CAS atomically compares-and-swaps the word at addr.
	CAS(addr, old, new uint64) bool
	// FetchAdd atomically adds delta and returns the previous value.
	FetchAdd(addr, delta uint64) uint64
}

// TaskFn is a Swarm task body.
type TaskFn func(TaskEnv)

// ThreadFn is a baseline thread body.
type ThreadFn func(ThreadEnv)

// abortSignal unwinds a guest goroutine when its task is squashed.
type abortSignal struct{}

// Coroutine runs one guest on a dedicated goroutine, exchanging exactly one
// (Result, Op) pair per Resume call.
type Coroutine struct {
	ops  chan Op
	res  chan Result
	done bool
}

// start launches body; the goroutine blocks until the first Resume.
func start(body func(transport *Coroutine)) *Coroutine {
	co := &Coroutine{ops: make(chan Op), res: make(chan Result)}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); ok {
					co.ops <- Op{Kind: OpAborted}
					return
				}
				panic(r)
			}
		}()
		<-co.res // wait for the initial Resume
		body(co)
		co.ops <- Op{Kind: OpDone}
	}()
	return co
}

// StartTask launches a coroutine running a Swarm task body.
func StartTask(fn TaskFn, desc TaskDesc) *Coroutine {
	return start(func(co *Coroutine) {
		fn(&coTaskEnv{coEnv{co: co}, desc})
	})
}

// StartThread launches a coroutine running a baseline thread body.
func StartThread(fn ThreadFn, id, threads int) *Coroutine {
	return start(func(co *Coroutine) {
		fn(&coThreadEnv{coEnv{co: co}, id, threads})
	})
}

// Resume delivers a result to the guest and returns its next operation.
// After an Op of kind OpDone or OpAborted, Resume must not be called again.
func (co *Coroutine) Resume(r Result) Op {
	if co.done {
		panic("guest: Resume after completion")
	}
	co.res <- r
	op := <-co.ops
	if op.Kind == OpDone || op.Kind == OpAborted {
		co.done = true
	}
	return op
}

// Done reports whether the coroutine has finished (OpDone or OpAborted).
func (co *Coroutine) Done() bool { return co.done }

// coEnv implements Env over the rendezvous protocol.
type coEnv struct{ co *Coroutine }

func (e *coEnv) exec(op Op) Result {
	e.co.ops <- op
	r := <-e.co.res
	if r.Abort {
		panic(abortSignal{})
	}
	return r
}

func (e *coEnv) Load(addr uint64) uint64 { return e.exec(Op{Kind: OpLoad, Addr: addr}).Val }
func (e *coEnv) Store(addr, val uint64)  { e.exec(Op{Kind: OpStore, Addr: addr, Val: val}) }
func (e *coEnv) Work(n uint64) {
	if n > 0 {
		e.exec(Op{Kind: OpWork, N: n})
	}
}
func (e *coEnv) Alloc(n uint64) uint64 { return e.exec(Op{Kind: OpAlloc, N: n}).Val }
func (e *coEnv) Free(addr, n uint64)   { e.exec(Op{Kind: OpFree, Addr: addr, N: n}) }

type coTaskEnv struct {
	coEnv
	desc TaskDesc
}

func (e *coTaskEnv) Timestamp() uint64 { return e.desc.TS }
func (e *coTaskEnv) Arg(i int) uint64  { return e.desc.Args[i] }
func (e *coTaskEnv) Enqueue(fn int, ts uint64, args ...uint64) {
	if ts < e.desc.TS {
		panic(fmt.Sprintf("guest: child timestamp %d before parent %d", ts, e.desc.TS))
	}
	d := TaskDesc{Fn: fn, TS: ts}
	if len(args) > len(d.Args) {
		panic("guest: task descriptors hold at most 3 argument words; allocate memory for more (§4.1)")
	}
	copy(d.Args[:], args)
	e.exec(Op{Kind: OpEnqueue, Task: d})
}

type coThreadEnv struct {
	coEnv
	id, threads int
}

func (e *coThreadEnv) ID() int      { return e.id }
func (e *coThreadEnv) Threads() int { return e.threads }
func (e *coThreadEnv) CAS(addr, old, new uint64) bool {
	return e.exec(Op{Kind: OpCAS, Addr: addr, Old: old, Val: new}).OK
}
func (e *coThreadEnv) FetchAdd(addr, delta uint64) uint64 {
	return e.exec(Op{Kind: OpFetchAdd, Addr: addr, Val: delta}).Val
}
