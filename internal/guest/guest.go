// Package guest runs guest code — Swarm task bodies and baseline thread
// bodies — against the simulated machine. Guest code is ordinary Go written
// against the Env interface; every architectural operation (load, store,
// compute, enqueue, ...) is surrendered to the simulator, which times it,
// applies it atomically, and resumes the guest.
//
// Two transports implement the surrender: Coroutine runs the guest on its
// own goroutine with a strict rendezvous per operation (used when several
// guests interleave: Swarm cores, baseline threads), and direct execution,
// where the simulator embeds an Env that applies operations inline (used
// for single-threaded serial baselines and the oracle profiler, which need
// no interleaving).
//
// Guest code obeys a purity contract: between surrendered operations a
// body touches only coroutine-local state (locals, its Env, read-only
// captured data) — every machine-visible effect flows through a yielded
// Op. The contract is what makes simulations deterministic, and it is
// what lets the tile-parallel machine (core.Config.SimWorkers) run a
// coroutine's next segment ahead of its event on another goroutine: the
// segment's only output is the next Op, consumed by the sequencer at the
// exact cycle the serial machine would produce it. A Coroutine is never
// resumed concurrently, but consecutive Resume calls may come from
// different goroutines (iter.Pull supports sequential cross-goroutine
// use); the parallel runtime orders each handoff with an atomic flag.
package guest

import (
	"fmt"
	"iter"
	"sync"

	"github.com/swarm-sim/swarm/internal/tsdom"
)

// OpKind discriminates guest operations.
type OpKind int

const (
	// OpLoad reads the 64-bit word at Addr.
	OpLoad OpKind = iota
	// OpStore writes Val to the word at Addr.
	OpStore
	// OpWork models N cycles of non-memory instructions.
	OpWork
	// OpEnqueue creates a child task described by Task (Swarm only).
	OpEnqueue
	// OpAlloc allocates N bytes of guest memory; result is the address.
	OpAlloc
	// OpFree releases [Addr, Addr+N).
	OpFree
	// OpCAS compares the word at Addr with Old and, if equal, stores Val.
	// Result.OK reports success (thread mode only).
	OpCAS
	// OpFetchAdd atomically adds Val to the word at Addr and returns the
	// old value (thread mode only).
	OpFetchAdd
	// OpDone signals that the guest function returned.
	OpDone
	// OpAborted signals that the guest unwound after an abort.
	OpAborted
)

// FnID is a typed handle to a registered task function: architecturally
// the "function pointer" slot of a task descriptor (an index into the
// program's function table). Handles come from FnTable.Fn (named
// registration); the zero value names the first registered function, so
// single-function programs keep working with untyped literals.
type FnID int

// TaskDesc is an architectural task descriptor: function handle (an index
// into the program's function table), a 64-bit timestamp, and up to three
// 64-bit argument words (§4.1, Table 2). Hint optionally carries a spatial
// locality key for hint-based task mappers; it is metadata consumed by the
// task unit at enqueue time and costs nothing architecturally.
//
// Path is the nested fork vector ordering the task within its timestamp
// slot (see internal/tsdom): empty for flat tasks, extended one level per
// Fork/EnqueueSub. Plain enqueues inherit the parent's path verbatim, so
// a subtask's children stay inside its slice of the slot.
type TaskDesc struct {
	Fn   FnID
	TS   uint64
	Path tsdom.Path
	Hint uint64 // spatial key + 1; 0 = no hint (see WithHint/HintKey)
	Args [3]uint64
}

// WithHint returns the descriptor tagged with a spatial hint key: a stable
// application-level locality handle (destination vertex, warehouse, stream
// source) that hint-based mappers use to pick the task's home tile.
func (d TaskDesc) WithHint(key uint64) TaskDesc {
	d.Hint = key + 1
	return d
}

// HintKey returns the spatial hint key and whether one was set.
func (d TaskDesc) HintKey() (uint64, bool) {
	if d.Hint == 0 {
		return 0, false
	}
	return d.Hint - 1, true
}

// Sub returns the descriptor of d's i-th nested subtask: same timestamp
// slot, path extended by fork index i. Root task sets use it to seed a
// fork-join domain below one programmer timestamp; inside a running task,
// Fork/EnqueueSub assign fork indices automatically.
func (d TaskDesc) Sub(i uint64) TaskDesc {
	d.Path = d.Path.Child(i)
	return d
}

// Op is one operation surrendered by a guest.
type Op struct {
	Kind OpKind
	Addr uint64
	Val  uint64
	Old  uint64 // OpCAS expected value
	N    uint64 // OpWork cycles / OpAlloc+OpFree size
	Task TaskDesc
}

// Result is the simulator's reply to an Op.
type Result struct {
	Val   uint64
	OK    bool
	Abort bool // unwind the guest now (speculative task squashed)
}

// Env is the architectural interface guest code runs against. All guest
// data lives in simulated memory; all costs flow through these calls.
type Env interface {
	// Load returns the 64-bit word at the (8-byte aligned) address.
	Load(addr uint64) uint64
	// Store writes the 64-bit word at the (8-byte aligned) address.
	Store(addr, val uint64)
	// Work charges n cycles of non-memory instructions.
	Work(n uint64)
	// Alloc returns the address of a fresh n-byte guest region.
	Alloc(n uint64) uint64
	// Free releases an allocation (task-aware: reuse happens only after
	// the freeing task commits).
	Free(addr, n uint64)
}

// TaskEnv is the environment visible to a Swarm task (§4.1's API:
// taskFn(timestamp, args...) plus enqueueTask).
type TaskEnv interface {
	Env
	// Timestamp returns the task's programmer-assigned timestamp.
	Timestamp() uint64
	// Arg returns the i-th argument word (i < 3).
	Arg(i int) uint64
	// Enqueue creates a child task with an equal or later timestamp.
	Enqueue(fn FnID, ts uint64, args ...uint64)
	// EnqueueArgs is Enqueue with a fixed argument array. Variadic calls
	// through the TaskEnv interface heap-allocate their argument slice (the
	// compiler cannot prove the callee drops it), so per-edge enqueue loops
	// use this form; unused argument words are zero.
	EnqueueArgs(fn FnID, ts uint64, args [3]uint64)
	// EnqueueHinted is EnqueueArgs plus a spatial hint key (see
	// TaskDesc.WithHint): hint-based mappers send the child to the key's
	// home tile; other mappers ignore it. The hint is free — it adds no
	// instructions, memory accesses or descriptor-transfer cost.
	EnqueueHinted(fn FnID, ts uint64, hint uint64, args [3]uint64)
	// Fork creates a child ordered *within* this task's timestamp slot:
	// the child runs at the same timestamp with the task's path extended
	// by the next fork index, so it orders after this task (and after all
	// previously forked siblings with their whole subtrees) but before
	// anything this task's slot precedes. Fork indices restart at zero on
	// every (re-)execution of the body, so an aborted-and-retried task
	// forks an identical subtree.
	Fork(fn FnID, args ...uint64)
	// EnqueueSub is Fork with a fixed argument array (see EnqueueArgs for
	// why) plus an optional spatial hint key; hint = NoHint leaves the
	// child unhinted.
	EnqueueSub(fn FnID, hint uint64, args [3]uint64)
}

// NoHint marks an EnqueueSub child with no spatial hint key.
const NoHint = ^uint64(0)

// ThreadEnv is the environment visible to a software-baseline thread.
type ThreadEnv interface {
	Env
	// ID returns the thread id, in [0, Threads()).
	ID() int
	// Threads returns the thread count.
	Threads() int
	// CAS atomically compares-and-swaps the word at addr.
	CAS(addr, old, new uint64) bool
	// FetchAdd atomically adds delta and returns the previous value.
	FetchAdd(addr, delta uint64) uint64
}

// TaskFn is a Swarm task body.
type TaskFn func(TaskEnv)

// ThreadFn is a baseline thread body.
type ThreadFn func(ThreadEnv)

// abortSignal unwinds a guest goroutine when its task is squashed.
type abortSignal struct{}

// Coroutine runs one guest body with a strict one-(Result, Op)-pair-per-
// Resume rendezvous. The transport is iter.Pull: the runtime switches
// stacks directly (no scheduler, no channels, no locks), which is an order
// of magnitude cheaper per surrendered operation than a goroutine
// rendezvous and keeps the whole simulation on one OS thread.
//
// Task coroutines are pooled: the pulled iterator survives its task body
// and parks until a later StartTask hands it the next one (tasks are tiny
// and every re-execution after an abort restarts the body, so per-start
// coroutine and environment allocations dominated the machine's host-side
// cost). Thread coroutines (StartThread) live exactly as long as their
// body.
type Coroutine struct {
	next    func() (Op, bool)
	stop    func()
	yieldFn func(Op) bool // set by the sequence body on first entry

	// res carries the simulator's reply into the guest: Resume writes it,
	// then switches to the guest, which reads it on return from yield.
	res Result

	// job carries the next task body into a pooled coroutine: StartTask
	// writes it before the first Resume switches in.
	job    taskJob
	pooled bool
	env    coTaskEnv // reusable task environment (pooled coroutines only)
	done   bool
}

// taskJob is one task body handed to a pooled coroutine.
type taskJob struct {
	fn   TaskFn
	desc TaskDesc
}

// taskPool parks idle task coroutines. It is shared by every machine in
// the process (the experiment harness runs many concurrently), so access
// is mutex-guarded; within one machine everything is single-threaded.
var taskPool struct {
	sync.Mutex
	free []*Coroutine
}

// StartTask hands a Swarm task body to a pooled coroutine (reusing a
// parked one when available); the body starts running at the first Resume.
func StartTask(fn TaskFn, desc TaskDesc) *Coroutine {
	taskPool.Lock()
	var co *Coroutine
	if n := len(taskPool.free); n > 0 {
		co = taskPool.free[n-1]
		taskPool.free[n-1] = nil
		taskPool.free = taskPool.free[:n-1]
	}
	taskPool.Unlock()
	if co == nil {
		co = &Coroutine{pooled: true}
		co.env = coTaskEnv{coEnv: coEnv{co: co}}
		co.next, co.stop = iter.Pull(co.taskSeq)
	}
	co.done = false
	co.job = taskJob{fn, desc}
	return co
}

// taskSeq is a pooled coroutine's op stream: an endless loop of task
// bodies, one OpDone/OpAborted per body, parking between bodies simply by
// returning from yield into the next loop iteration.
func (co *Coroutine) taskSeq(yield func(Op) bool) {
	co.yieldFn = yield
	for {
		j := co.job
		co.env.desc = j.desc
		co.env.forks = 0
		if runGuest(func() { j.fn(&co.env) }) {
			if !yield(Op{Kind: OpAborted}) {
				return
			}
		} else if !yield(Op{Kind: OpDone}) {
			return
		}
	}
}

// runGuest executes a guest body, converting an abort unwind into a
// boolean. Any other panic propagates.
func runGuest(body func()) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	body()
	return false
}

// Recycle parks a completed task coroutine for reuse by a later StartTask.
// It is a no-op for thread coroutines and for coroutines that have not
// finished (a machine torn down mid-run keeps them; the GC collects
// unreferenced pulled iterators).
func (co *Coroutine) Recycle() {
	if !co.pooled || !co.done {
		return
	}
	// Drop the finished body's closure so a parked coroutine does not keep
	// its machine's guest state reachable for the process lifetime.
	co.job = taskJob{}
	co.env.desc = TaskDesc{}
	taskPool.Lock()
	taskPool.free = append(taskPool.free, co)
	taskPool.Unlock()
}

// StartThread launches a coroutine running a baseline thread body.
func StartThread(fn ThreadFn, id, threads int) *Coroutine {
	co := &Coroutine{}
	env := &coThreadEnv{coEnv{co: co}, id, threads}
	co.next, co.stop = iter.Pull(func(yield func(Op) bool) {
		co.yieldFn = yield
		if runGuest(func() { fn(env) }) {
			yield(Op{Kind: OpAborted})
			return
		}
		yield(Op{Kind: OpDone})
	})
	return co
}

// Resume delivers a result to the guest and returns its next operation.
// After an Op of kind OpDone or OpAborted, Resume must not be called again.
func (co *Coroutine) Resume(r Result) Op {
	if co.done {
		panic("guest: Resume after completion")
	}
	co.res = r
	op, ok := co.next()
	if !ok {
		panic("guest: coroutine terminated without yielding")
	}
	if op.Kind == OpDone || op.Kind == OpAborted {
		co.done = true
	}
	return op
}

// Done reports whether the coroutine has finished (OpDone or OpAborted).
func (co *Coroutine) Done() bool { return co.done }

// coEnv implements Env over the rendezvous protocol.
type coEnv struct{ co *Coroutine }

func (e *coEnv) exec(op Op) Result {
	if !e.co.yieldFn(op) {
		// The puller was stopped: unwind the guest.
		panic(abortSignal{})
	}
	r := e.co.res
	if r.Abort {
		panic(abortSignal{})
	}
	return r
}

func (e *coEnv) Load(addr uint64) uint64 { return e.exec(Op{Kind: OpLoad, Addr: addr}).Val }
func (e *coEnv) Store(addr, val uint64)  { e.exec(Op{Kind: OpStore, Addr: addr, Val: val}) }
func (e *coEnv) Work(n uint64) {
	if n > 0 {
		e.exec(Op{Kind: OpWork, N: n})
	}
}
func (e *coEnv) Alloc(n uint64) uint64 { return e.exec(Op{Kind: OpAlloc, N: n}).Val }
func (e *coEnv) Free(addr, n uint64)   { e.exec(Op{Kind: OpFree, Addr: addr, N: n}) }

type coTaskEnv struct {
	coEnv
	desc  TaskDesc
	forks uint64 // fork indices handed out by this body run
}

func (e *coTaskEnv) Timestamp() uint64 { return e.desc.TS }
func (e *coTaskEnv) Arg(i int) uint64  { return e.desc.Args[i] }
func (e *coTaskEnv) Enqueue(fn FnID, ts uint64, args ...uint64) {
	var a [3]uint64
	if len(args) > len(a) {
		panic("guest: task descriptors hold at most 3 argument words; allocate memory for more (§4.1)")
	}
	copy(a[:], args)
	e.EnqueueArgs(fn, ts, a)
}

func (e *coTaskEnv) EnqueueArgs(fn FnID, ts uint64, args [3]uint64) {
	if ts < e.desc.TS {
		panic(fmt.Sprintf("guest: child timestamp %d before parent %d", ts, e.desc.TS))
	}
	e.exec(Op{Kind: OpEnqueue, Task: TaskDesc{Fn: fn, TS: ts, Path: e.desc.Path, Args: args}})
}

func (e *coTaskEnv) EnqueueHinted(fn FnID, ts uint64, hint uint64, args [3]uint64) {
	if ts < e.desc.TS {
		panic(fmt.Sprintf("guest: child timestamp %d before parent %d", ts, e.desc.TS))
	}
	e.exec(Op{Kind: OpEnqueue, Task: TaskDesc{Fn: fn, TS: ts, Path: e.desc.Path, Args: args}.WithHint(hint)})
}

func (e *coTaskEnv) Fork(fn FnID, args ...uint64) {
	var a [3]uint64
	if len(args) > len(a) {
		panic("guest: task descriptors hold at most 3 argument words; allocate memory for more (§4.1)")
	}
	copy(a[:], args)
	e.EnqueueSub(fn, NoHint, a)
}

func (e *coTaskEnv) EnqueueSub(fn FnID, hint uint64, args [3]uint64) {
	d := TaskDesc{Fn: fn, TS: e.desc.TS, Path: e.desc.Path.Child(e.forks), Args: args}
	e.forks++
	if hint != NoHint {
		d = d.WithHint(hint)
	}
	e.exec(Op{Kind: OpEnqueue, Task: d})
}

type coThreadEnv struct {
	coEnv
	id, threads int
}

func (e *coThreadEnv) ID() int      { return e.id }
func (e *coThreadEnv) Threads() int { return e.threads }
func (e *coThreadEnv) CAS(addr, old, new uint64) bool {
	return e.exec(Op{Kind: OpCAS, Addr: addr, Old: old, Val: new}).OK
}
func (e *coThreadEnv) FetchAdd(addr, delta uint64) uint64 {
	return e.exec(Op{Kind: OpFetchAdd, Addr: addr, Val: delta}).Val
}
