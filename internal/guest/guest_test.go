package guest

import "testing"

// drive runs a coroutine to completion, answering ops with the given
// function, and returns the ops observed.
func drive(co *Coroutine, answer func(Op) Result) []Op {
	var ops []Op
	r := Result{}
	for {
		op := co.Resume(r)
		ops = append(ops, op)
		if op.Kind == OpDone || op.Kind == OpAborted {
			return ops
		}
		r = answer(op)
	}
}

func TestTaskProtocol(t *testing.T) {
	desc := TaskDesc{Fn: 3, TS: 42, Args: [3]uint64{7, 8, 9}}
	co := StartTask(func(e TaskEnv) {
		if e.Timestamp() != 42 || e.Arg(0) != 7 || e.Arg(2) != 9 {
			t.Error("descriptor not visible to task")
		}
		v := e.Load(0x100)
		e.Store(0x108, v+1)
		e.Work(5)
		e.Enqueue(1, 50, 11)
	}, desc)

	ops := drive(co, func(op Op) Result {
		if op.Kind == OpLoad {
			return Result{Val: 99}
		}
		return Result{}
	})

	want := []OpKind{OpLoad, OpStore, OpWork, OpEnqueue, OpDone}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i, k := range want {
		if ops[i].Kind != k {
			t.Fatalf("op %d = %v, want %v", i, ops[i].Kind, k)
		}
	}
	if ops[1].Addr != 0x108 || ops[1].Val != 100 {
		t.Fatalf("store op = %+v (load value not delivered)", ops[1])
	}
	if ops[3].Task.TS != 50 || ops[3].Task.Args[0] != 11 || ops[3].Task.Fn != 1 {
		t.Fatalf("enqueue op = %+v", ops[3].Task)
	}
	if !co.Done() {
		t.Fatal("coroutine not done")
	}
}

func TestAbortUnwinds(t *testing.T) {
	cleanedUp := false
	co := StartTask(func(e TaskEnv) {
		defer func() { cleanedUp = true }() // defers must still run
		e.Load(0x100)
		e.Load(0x200) // aborted here
		t.Error("guest ran past abort")
	}, TaskDesc{})

	n := 0
	ops := drive(co, func(op Op) Result {
		n++
		if n == 2 {
			return Result{Abort: true}
		}
		return Result{}
	})
	last := ops[len(ops)-1]
	if last.Kind != OpAborted {
		t.Fatalf("last op = %v, want OpAborted", last.Kind)
	}
	if !cleanedUp {
		t.Fatal("defer did not run during abort unwind")
	}
}

func TestZeroWorkElided(t *testing.T) {
	co := StartTask(func(e TaskEnv) {
		e.Work(0) // must not produce an op
		e.Work(3)
	}, TaskDesc{})
	ops := drive(co, func(Op) Result { return Result{} })
	if len(ops) != 2 || ops[0].Kind != OpWork || ops[0].N != 3 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestChildTimestampMonotonic(t *testing.T) {
	co := StartTask(func(e TaskEnv) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on earlier child timestamp")
			}
			// Unwind cleanly: panic again with abortSignal to satisfy
			// the wrapper? No - re-panic with a guest abort is wrong.
			// Just return; the recover swallowed the panic.
		}()
		e.Enqueue(0, 5) // parent TS is 10: must panic
	}, TaskDesc{TS: 10})
	drive(co, func(Op) Result { return Result{} })
}

func TestTooManyArgsPanics(t *testing.T) {
	co := StartTask(func(e TaskEnv) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on 4 argument words")
			}
		}()
		e.Enqueue(0, 10, 1, 2, 3, 4)
	}, TaskDesc{TS: 10})
	drive(co, func(Op) Result { return Result{} })
}

func TestThreadProtocol(t *testing.T) {
	co := StartThread(func(e ThreadEnv) {
		if e.ID() != 2 || e.Threads() != 8 {
			t.Error("thread identity wrong")
		}
		if !e.CAS(0x10, 0, 1) {
			t.Error("CAS result not delivered")
		}
		if e.FetchAdd(0x18, 5) != 40 {
			t.Error("FetchAdd result not delivered")
		}
	}, 2, 8)
	ops := drive(co, func(op Op) Result {
		switch op.Kind {
		case OpCAS:
			return Result{OK: true}
		case OpFetchAdd:
			return Result{Val: 40}
		}
		return Result{}
	})
	if ops[0].Kind != OpCAS || ops[0].Old != 0 || ops[0].Val != 1 {
		t.Fatalf("CAS op = %+v", ops[0])
	}
	if ops[1].Kind != OpFetchAdd || ops[1].Val != 5 {
		t.Fatalf("FetchAdd op = %+v", ops[1])
	}
}

func TestResumeAfterDonePanics(t *testing.T) {
	co := StartTask(func(e TaskEnv) {}, TaskDesc{})
	drive(co, func(Op) Result { return Result{} })
	defer func() {
		if recover() == nil {
			t.Fatal("Resume after Done did not panic")
		}
	}()
	co.Resume(Result{})
}

func TestManyCoroutinesInterleaved(t *testing.T) {
	// Round-robin 100 guests, one op at a time: exercises the rendezvous
	// protocol under interleaving.
	const n = 100
	cos := make([]*Coroutine, n)
	sums := make([]uint64, n)
	for i := range cos {
		i := i
		cos[i] = StartTask(func(e TaskEnv) {
			var s uint64
			for j := 0; j < 10; j++ {
				s += e.Load(uint64(j * 8))
			}
			sums[i] = s
		}, TaskDesc{})
	}
	pending := make([]Result, n)
	live := n
	started := make([]bool, n)
	for live > 0 {
		for i, co := range cos {
			if co == nil {
				continue
			}
			var op Op
			if !started[i] {
				op = co.Resume(Result{})
				started[i] = true
			} else {
				op = co.Resume(pending[i])
			}
			if op.Kind == OpDone {
				cos[i] = nil
				live--
				continue
			}
			pending[i] = Result{Val: op.Addr / 8}
		}
	}
	for i, s := range sums {
		if s != 45 {
			t.Fatalf("guest %d sum = %d, want 45", i, s)
		}
	}
}
