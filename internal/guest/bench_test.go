package guest

import "testing"

// BenchmarkRendezvous measures the per-operation cost of the coroutine
// transport — the simulator's fundamental overhead per guest memory access.
func BenchmarkRendezvous(b *testing.B) {
	co := StartTask(func(e TaskEnv) {
		for {
			if e.Load(0) == 1 {
				return
			}
		}
	}, TaskDesc{})
	b.ResetTimer()
	op := co.Resume(Result{})
	for i := 0; i < b.N; i++ {
		if op.Kind != OpLoad {
			b.Fatal("unexpected op")
		}
		op = co.Resume(Result{Val: 0})
	}
	b.StopTimer()
	co.Resume(Result{Val: 1}) // let the guest exit
}

// BenchmarkStartTask measures task-launch overhead (goroutine spawn +
// first rendezvous), paid once per task execution.
func BenchmarkStartTask(b *testing.B) {
	fn := func(e TaskEnv) {}
	for i := 0; i < b.N; i++ {
		co := StartTask(fn, TaskDesc{})
		if op := co.Resume(Result{}); op.Kind != OpDone {
			b.Fatal("unexpected op")
		}
	}
}
