package swrt

import (
	"testing"
)

// Model-based fuzzing for the guest-memory data structures newer apps
// lean on (mirroring the bloom signature fuzzer): ops decoded from raw
// fuzz bytes drive the structure and a plain host-side reference in
// lockstep, and every observable value must agree. The structures live in
// simulated memory behind guest.Env, so the harness runs them over a
// timing-free map-backed Env.

// fuzzEnv is a minimal guest.Env over host memory: loads and stores hit a
// map, timing charges are ignored, Alloc is a 64-byte-aligned bump
// pointer — enough to run any swrt structure outside a simulation.
type fuzzEnv struct {
	mem map[uint64]uint64
	brk uint64
}

func newFuzzEnv() *fuzzEnv { return &fuzzEnv{mem: map[uint64]uint64{}, brk: 64} }

func (e *fuzzEnv) Load(a uint64) uint64 { return e.mem[a] }
func (e *fuzzEnv) Store(a, v uint64)    { e.mem[a] = v }
func (e *fuzzEnv) Work(uint64)          {}
func (e *fuzzEnv) Alloc(n uint64) uint64 {
	a := e.brk
	e.brk += (n + 63) &^ 63
	return a
}
func (e *fuzzEnv) Free(uint64, uint64) {}

// FuzzBuckets drives Matula–Beck degree buckets (the serial k-core
// scheduler) against a plain degree slice: arbitrary valid DecreaseKey
// sequences must preserve the structure's whole invariant set — degrees
// match the model, vert/pos stay a bijection, vert stays sorted by
// current degree, and every vertex sits inside its degree's bin window.
// A violation would silently corrupt the serial baseline kcore verifies
// against.
func FuzzBuckets(f *testing.F) {
	f.Add([]byte{4, 3, 0, 1, 2, 3, 0, 0, 1})
	f.Add([]byte{8, 5, 1, 1, 2, 2, 3, 3, 4, 4, 0, 1, 2, 3, 4, 5, 6, 7, 0})
	f.Add([]byte{2, 1, 1, 1, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			return
		}
		n := uint64(raw[0])%16 + 2 // 2..17 vertices
		maxDeg := uint64(raw[1])%8 + 1
		raw = raw[2:]
		if uint64(len(raw)) < n {
			return
		}
		model := make([]uint64, n)
		for v := uint64(0); v < n; v++ {
			model[v] = uint64(raw[v]) % (maxDeg + 1)
		}
		ops := raw[n:]

		e := newFuzzEnv()
		b := NewBuckets(e.Alloc, n, maxDeg)
		b.InitDirect(e.Store, model)

		check := func(stage string) {
			// Degrees match the model.
			for v := uint64(0); v < n; v++ {
				if got := b.Deg(e, v); got != model[v] {
					t.Fatalf("%s: deg[%d] = %d, want %d", stage, v, got, model[v])
				}
			}
			// vert/pos bijection and degree-sorted vert order.
			prev := uint64(0)
			for i := uint64(0); i < n; i++ {
				v := b.Vert(e, i)
				if v >= n {
					t.Fatalf("%s: vert[%d] = %d out of range", stage, i, v)
				}
				if p := e.Load(b.pos.Addr(v)); p != i {
					t.Fatalf("%s: pos[%d] = %d, want %d", stage, v, p, i)
				}
				d := model[v]
				if i > 0 && d < prev {
					t.Fatalf("%s: vert not degree-sorted at %d (%d after %d)", stage, i, d, prev)
				}
				prev = d
				// Bin window: bin[d] <= i < bin[d+1].
				if lo := e.Load(b.bin.Addr(d)); i < lo {
					t.Fatalf("%s: vertex %d (deg %d) at %d before bin start %d", stage, v, d, i, lo)
				}
				if hi := e.Load(b.bin.Addr(d + 1)); i >= hi {
					t.Fatalf("%s: vertex %d (deg %d) at %d past bin end %d", stage, v, d, i, hi)
				}
			}
		}

		check("init")
		for _, op := range ops {
			w := uint64(op) % n
			if model[w] == 0 {
				continue // DecreaseKey requires a positive degree
			}
			b.DecreaseKey(e, w)
			model[w]--
		}
		check("final")
	})
}

// FuzzWindowRing drives the windowed-stream accumulator ring against a
// map reference: interleaved Add/Drain sequences over arbitrary
// (window, key) pairs must return exactly the model's sums, and a drained
// slot must read back as zero. A mismatch would corrupt stream's window
// results silently (flushes store whatever Drain returns).
func FuzzWindowRing(f *testing.F) {
	f.Add([]byte{2, 1, 0, 3, 7, 1, 3, 7})
	f.Add([]byte{3, 4, 0, 0, 1, 1, 9, 200, 2, 2, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			return
		}
		slots := uint64(raw[0])%4 + 2 // 2..5 slots
		keys := uint64(raw[1])%8 + 1  // 1..8 keys
		raw = raw[2:]

		e := newFuzzEnv()
		r := NewWindowRing(e.Alloc, e.Store, slots, keys)
		model := map[[2]uint64]uint64{}

		for i := 0; i+2 < len(raw); i += 3 {
			w := uint64(raw[i])
			slot := r.SlotFor(w)
			if slot != w%slots {
				t.Fatalf("SlotFor(%d) = %d, want %d", w, slot, w%slots)
			}
			key := uint64(raw[i+1]) % keys
			val := uint64(raw[i+2])
			if val%5 == 0 { // ~1 in 5 ops drains
				got := r.Drain(e, slot, key)
				if want := model[[2]uint64{slot, key}]; got != want {
					t.Fatalf("Drain(%d,%d) = %d, want %d", slot, key, got, want)
				}
				model[[2]uint64{slot, key}] = 0
				if again := e.Load(r.AccAddr(slot, key)); again != 0 {
					t.Fatalf("slot %d key %d reads %d after drain", slot, key, again)
				}
			} else {
				r.Add(e, slot, key, val)
				model[[2]uint64{slot, key}] += val
			}
		}
		// Final state: every accumulator equals the model.
		for s := uint64(0); s < slots; s++ {
			for k := uint64(0); k < keys; k++ {
				if got, want := e.Load(r.AccAddr(s, k)), model[[2]uint64{s, k}]; got != want {
					t.Fatalf("acc[%d,%d] = %d, want %d", s, k, got, want)
				}
			}
		}
	})
}
