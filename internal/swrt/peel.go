package swrt

import "github.com/swarm-sim/swarm/internal/guest"

// Buckets is the Matula–Beck degree-bucket structure for serial k-core
// peeling, laid out in guest memory so its pointer chasing is physically
// modeled: vert holds the vertices sorted by current degree, pos is each
// vertex's index into vert, bin[d] is the start of degree-d's bucket, and
// deg is each vertex's current degree. DecreaseKey is O(1): it swaps the
// vertex with the first element of its bucket and advances the bucket
// boundary. This is the tuned serial scheduler kcore peels with — the
// analogue of sssp's binary heap and bfs's FIFO (§3): efficient, but its
// strict degree order serializes the peel.
type Buckets struct {
	n    uint64
	vert Array // vertices in nondecreasing current-degree order
	pos  Array // pos[v]: index of v in vert
	deg  Array // deg[v]: current degree
	bin  Array // bin[d]: start index of degree-d's bucket in vert
}

// NewBuckets allocates the structure for n vertices with degrees in
// [0, maxDeg] (setup-time).
func NewBuckets(alloc func(uint64) uint64, n, maxDeg uint64) Buckets {
	return Buckets{
		n:    n,
		vert: NewArray(alloc, n),
		pos:  NewArray(alloc, n),
		deg:  NewArray(alloc, n),
		bin:  NewArray(alloc, maxDeg+2),
	}
}

// InitDirect bucket-sorts the initial degrees, bypassing timing (setup).
func (b Buckets) InitDirect(store func(addr, val uint64), degs []uint64) {
	maxDeg := b.bin.N - 2
	counts := make([]uint64, maxDeg+2)
	for _, d := range degs {
		counts[d+1]++
	}
	for d := uint64(1); d < maxDeg+2; d++ {
		counts[d] += counts[d-1]
	}
	for d := uint64(0); d < maxDeg+2; d++ {
		store(b.bin.Addr(d), counts[d])
	}
	cursor := append([]uint64(nil), counts...)
	for v, d := range degs {
		i := cursor[d]
		cursor[d]++
		store(b.vert.Addr(i), uint64(v))
		store(b.pos.Addr(uint64(v)), i)
		store(b.deg.Addr(uint64(v)), d)
	}
}

// Vert loads the i-th vertex in current-degree order.
func (b Buckets) Vert(e guest.Env, i uint64) uint64 { return b.vert.Get(e, i) }

// Deg loads v's current degree.
func (b Buckets) Deg(e guest.Env, v uint64) uint64 { return b.deg.Get(e, v) }

// DecreaseKey decrements w's degree, keeping vert sorted: w swaps with
// the first vertex of its bucket and the bucket boundary advances past it.
func (b Buckets) DecreaseKey(e guest.Env, w uint64) {
	dw := b.deg.Get(e, w)
	pw := b.pos.Get(e, w)
	start := b.bin.Get(e, dw)
	u := b.vert.Get(e, start)
	e.Work(3)
	if u != w {
		b.vert.Set(e, pw, u)
		b.vert.Set(e, start, w)
		b.pos.Set(e, u, pw)
		b.pos.Set(e, w, start)
	}
	b.bin.Set(e, dw, start+1)
	b.deg.Set(e, w, dw-1)
}
