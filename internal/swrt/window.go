package swrt

import "github.com/swarm-sim/swarm/internal/guest"

// WindowRing is a ring of window-slot accumulators for ordered
// windowed stream operators: Slots concurrently-live windows, each
// holding Keys per-key accumulator words. Window w uses slot w % Slots;
// with at least two slots, a window's flush (at the next window boundary)
// always commits before the tuples that would reuse its slot, so
// timestamp order alone keeps reuse safe — no locks, no watermark
// exchanges.
type WindowRing struct {
	base  uint64
	Slots uint64
	Keys  uint64
}

// NewWindowRing allocates and zeroes the ring (setup-time).
func NewWindowRing(alloc func(uint64) uint64, store func(addr, val uint64), slots, keys uint64) WindowRing {
	if slots < 2 {
		panic("swrt: WindowRing needs >= 2 slots to separate flush from slot reuse")
	}
	r := WindowRing{base: alloc(slots * keys * 8), Slots: slots, Keys: keys}
	for i := uint64(0); i < slots*keys; i++ {
		store(r.base+i*8, 0)
	}
	return r
}

// SlotFor returns the slot index window w accumulates into.
func (r WindowRing) SlotFor(w uint64) uint64 { return w % r.Slots }

// AccAddr returns the address of a slot's per-key accumulator.
func (r WindowRing) AccAddr(slot, key uint64) uint64 {
	return r.base + (slot*r.Keys+key)*8
}

// Add accumulates val into a slot's per-key accumulator.
func (r WindowRing) Add(e guest.Env, slot, key, val uint64) {
	a := r.AccAddr(slot, key)
	e.Store(a, e.Load(a)+val)
}

// Drain reads and zeroes one accumulator (the flush operator's primitive).
func (r WindowRing) Drain(e guest.Env, slot, key uint64) uint64 {
	a := r.AccAddr(slot, key)
	v := e.Load(a)
	e.Store(a, 0)
	return v
}
