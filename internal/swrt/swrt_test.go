package swrt

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
)

func serialEnv() *smp.SerialMachine { return smp.NewSerialMachine(smp.DefaultConfig(1)) }

// Property: the guest heap behaves exactly like container/heap.
func TestHeapMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := serialEnv()
		h := NewHeap(m.SetupAlloc, 512)
		var ref intHeap
		ok := true
		m.Run(func(e guest.Env) {
			for step := 0; step < 1500; step++ {
				if ref.Len() < 500 && (rng.Intn(2) == 0 || ref.Len() == 0) {
					k := uint64(rng.Intn(1000))
					h.Push(e, k, k*2)
					heap.Push(&ref, int(k))
				} else {
					k, v, got := h.PopMin(e)
					want := heap.Pop(&ref).(int)
					if !got || k != uint64(want) || v != 2*k {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any          { o := *h; n := len(o); x := o[n-1]; *h = o[:n-1]; return x }

func TestHeapSortsDuplicates(t *testing.T) {
	m := serialEnv()
	h := NewHeap(m.SetupAlloc, 64)
	in := []uint64{5, 3, 5, 1, 3, 3, 9, 0, 5}
	var out []uint64
	m.Run(func(e guest.Env) {
		for _, k := range in {
			h.Push(e, k, 0)
		}
		for {
			k, _, ok := h.PopMin(e)
			if !ok {
				break
			}
			out = append(out, k)
		}
	})
	sorted := append([]uint64(nil), in...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(out) != len(sorted) {
		t.Fatalf("popped %d of %d", len(out), len(sorted))
	}
	for i := range out {
		if out[i] != sorted[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], sorted[i])
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	m := serialEnv()
	q := NewFIFO(m.SetupAlloc, 8)
	m.Run(func(e guest.Env) {
		if !q.Empty(e) {
			t.Error("new queue not empty")
		}
		// Push/pop more than capacity to exercise wraparound.
		next := uint64(0)
		for round := 0; round < 5; round++ {
			for i := 0; i < 6; i++ {
				q.Push(e, uint64(round*6+i))
			}
			for i := 0; i < 6; i++ {
				v, ok := q.Pop(e)
				if !ok || v != next {
					t.Fatalf("pop = %d,%v want %d", v, ok, next)
				}
				next++
			}
		}
		if _, ok := q.Pop(e); ok {
			t.Error("pop from empty succeeded")
		}
	})
}

func TestUnionFind(t *testing.T) {
	m := serialEnv()
	const n = 100
	uf := NewUnionFind(m.SetupAlloc, n)
	uf.InitDirect(m.Mem().Store)
	m.Run(func(e guest.Env) {
		if !uf.Union(e, 1, 2) || !uf.Union(e, 3, 4) {
			t.Error("fresh unions failed")
		}
		if uf.Union(e, 2, 1) {
			t.Error("re-union succeeded")
		}
		if !uf.Union(e, 2, 3) {
			t.Error("bridge union failed")
		}
		if uf.Find(e, 1) != uf.Find(e, 4) {
			t.Error("1 and 4 should share a root")
		}
		if uf.Find(e, 1) == uf.Find(e, 50) {
			t.Error("disjoint sets share a root")
		}
	})
}

// Property: union-find connectivity matches a reference adjacency closure.
func TestUnionFindMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 60
		m := serialEnv()
		uf := NewUnionFind(m.SetupAlloc, n)
		uf.InitDirect(m.Mem().Store)
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for ref[x] != x {
				x = ref[x]
			}
			return x
		}
		ok := true
		m.Run(func(e guest.Env) {
			for i := 0; i < 150; i++ {
				a, b := uint64(rng.Intn(n)), uint64(rng.Intn(n))
				got := uf.Union(e, a, b)
				ra, rb := find(int(a)), find(int(b))
				want := ra != rb
				if ra != rb {
					ref[ra] = rb
				}
				if got != want {
					ok = false
					return
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					same := uf.Find(e, uint64(i)) == uf.Find(e, uint64(j))
					if same != (find(i) == find(j)) {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	m := smp.NewMachine(smp.DefaultConfig(8))
	lock := SpinLock{Addr: m.SetupAlloc(64)}
	shared := m.SetupAlloc(8)
	_, err := m.Run(func(e guest.ThreadEnv) {
		for i := 0; i < 20; i++ {
			lock.Acquire(e)
			v := e.Load(shared)
			e.Work(5) // widen the race window
			e.Store(shared, v+1)
			lock.Release(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().Load(shared); got != 8*20 {
		t.Fatalf("shared = %d, want %d: lock is broken", got, 8*20)
	}
}

func TestBarrierPhases(t *testing.T) {
	const threads = 8
	m := smp.NewMachine(smp.DefaultConfig(threads))
	bar := NewBarrier(m.SetupAlloc, threads)
	phase := NewArray(m.SetupAlloc, threads)
	ok := true
	_, err := m.Run(func(e guest.ThreadEnv) {
		var sense uint64
		for p := uint64(1); p <= 5; p++ {
			// Stagger arrival.
			e.Work(uint64(e.ID()) * 50)
			phase.Set(e, uint64(e.ID()), p)
			bar.Wait(e, &sense)
			// After the barrier everyone must be in phase p.
			for i := uint64(0); i < threads; i++ {
				if phase.Get(e, i) != p {
					ok = false
				}
			}
			bar.Wait(e, &sense)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("barrier let a thread run ahead")
	}
}
