package swrt

import (
	"math/rand"
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
)

// TestBucketsPeelOrder: repeatedly decreasing random keys must keep vert
// sorted by current degree and the bucket boundaries consistent — the
// invariants Matula–Beck peeling relies on.
func TestBucketsPeelOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, maxDeg = 64, 16
	m := serialEnv()
	degs := make([]uint64, n)
	for v := range degs {
		degs[v] = uint64(rng.Intn(maxDeg + 1))
	}
	b := NewBuckets(m.SetupAlloc, n, maxDeg)
	b.InitDirect(m.Mem().Store, degs)
	shadow := append([]uint64(nil), degs...)
	m.Run(func(e guest.Env) {
		check := func() {
			// vert must enumerate every vertex once, in nondecreasing
			// current-degree order, with pos as its inverse.
			seen := make(map[uint64]bool, n)
			prev := uint64(0)
			for i := uint64(0); i < n; i++ {
				v := b.Vert(e, i)
				if seen[v] {
					t.Fatalf("vertex %d appears twice in vert", v)
				}
				seen[v] = true
				if p := b.pos.Get(e, v); p != i {
					t.Fatalf("pos[%d] = %d, want %d", v, p, i)
				}
				d := b.Deg(e, v)
				if d != shadow[v] {
					t.Fatalf("deg[%d] = %d, shadow %d", v, d, shadow[v])
				}
				if d < prev {
					t.Fatalf("vert not sorted at index %d", i)
				}
				prev = d
			}
		}
		check()
		for step := 0; step < 400; step++ {
			w := uint64(rng.Intn(n))
			if shadow[w] == 0 {
				continue
			}
			b.DecreaseKey(e, w)
			shadow[w]--
		}
		check()
	})
}

// TestWindowRingAccumulate: Add/Drain must behave like a per-(slot, key)
// counter matrix, with Drain zeroing exactly one cell.
func TestWindowRingAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const slots, keys = 4, 8
	m := serialEnv()
	r := NewWindowRing(m.SetupAlloc, m.Mem().Store, slots, keys)
	var shadow [slots][keys]uint64
	m.Run(func(e guest.Env) {
		for step := 0; step < 500; step++ {
			s, k := uint64(rng.Intn(slots)), uint64(rng.Intn(keys))
			if rng.Intn(4) == 0 {
				got := r.Drain(e, s, k)
				if got != shadow[s][k] {
					t.Fatalf("Drain(%d, %d) = %d, want %d", s, k, got, shadow[s][k])
				}
				shadow[s][k] = 0
			} else {
				v := uint64(rng.Intn(100))
				r.Add(e, s, k, v)
				shadow[s][k] += v
			}
		}
		for s := uint64(0); s < slots; s++ {
			for k := uint64(0); k < keys; k++ {
				if got := e.Load(r.AccAddr(s, k)); got != shadow[s][k] {
					t.Fatalf("acc[%d][%d] = %d, want %d", s, k, got, shadow[s][k])
				}
			}
		}
	})
}

// TestWindowRingSlotRotation: windows R apart share a slot; windows
// closer than R never do.
func TestWindowRingSlotRotation(t *testing.T) {
	m := serialEnv()
	r := NewWindowRing(m.SetupAlloc, m.Mem().Store, 4, 2)
	for w := uint64(0); w < 20; w++ {
		if r.SlotFor(w) != r.SlotFor(w+4) {
			t.Fatalf("windows %d and %d should share a slot", w, w+4)
		}
		for d := uint64(1); d < 4; d++ {
			if r.SlotFor(w) == r.SlotFor(w+d) {
				t.Fatalf("windows %d and %d must not share a slot", w, w+d)
			}
		}
	}
}
