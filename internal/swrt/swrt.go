// Package swrt is the software runtime for guest programs: data structures
// and synchronization primitives that live entirely in simulated memory, so
// their costs — pointer chasing, cache misses, contention — are physically
// modeled. The serial baselines use the heap and FIFO (the scheduling
// structures whose false dependences motivate Swarm, §3); the
// software-parallel baselines add spinlocks and barriers; Swarm guest code
// shares the union-find and array helpers.
package swrt

import "github.com/swarm-sim/swarm/internal/guest"

// Array is a fixed-size array of 64-bit words in guest memory.
type Array struct {
	Base uint64
	N    uint64
}

// NewArray carves an array out of setup-allocated memory.
func NewArray(alloc func(uint64) uint64, n uint64) Array {
	return Array{Base: alloc(n * 8), N: n}
}

// Addr returns the address of element i.
func (a Array) Addr(i uint64) uint64 { return a.Base + i*8 }

// Get loads element i.
func (a Array) Get(e guest.Env, i uint64) uint64 { return e.Load(a.Addr(i)) }

// Set stores element i.
func (a Array) Set(e guest.Env, i uint64, v uint64) { e.Store(a.Addr(i), v) }

// Heap is a binary min-heap of (key, value) pairs in guest memory: the
// priority queue serial sssp/astar/des use. Layout: word 0 = length,
// then capacity*(key, value) pairs. Every operation issues real guest
// loads and stores, so heap traffic creates exactly the false data
// dependences §3 describes.
type Heap struct {
	base uint64
	cap  uint64
}

// NewHeap allocates a heap with the given capacity (setup-time).
func NewHeap(alloc func(uint64) uint64, capacity uint64) Heap {
	return Heap{base: alloc(8 + capacity*16), cap: capacity}
}

func (h Heap) lenAddr() uint64         { return h.base }
func (h Heap) keyAddr(i uint64) uint64 { return h.base + 8 + i*16 }
func (h Heap) valAddr(i uint64) uint64 { return h.base + 8 + i*16 + 8 }

// Len returns the current element count.
func (h Heap) Len(e guest.Env) uint64 { return e.Load(h.lenAddr()) }

// PeekMin returns the minimum pair without removing it.
func (h Heap) PeekMin(e guest.Env) (key, val uint64, ok bool) {
	if e.Load(h.lenAddr()) == 0 {
		return 0, 0, false
	}
	return e.Load(h.keyAddr(0)), e.Load(h.valAddr(0)), true
}

// Push inserts a (key, value) pair.
func (h Heap) Push(e guest.Env, key, val uint64) {
	n := e.Load(h.lenAddr())
	if n >= h.cap {
		panic("swrt: heap overflow")
	}
	i := n
	e.Store(h.keyAddr(i), key)
	e.Store(h.valAddr(i), val)
	e.Store(h.lenAddr(), n+1)
	for i > 0 {
		p := (i - 1) / 2
		pk := e.Load(h.keyAddr(p))
		ik := e.Load(h.keyAddr(i))
		e.Work(2)
		if pk <= ik {
			break
		}
		h.swap(e, i, p)
		i = p
	}
}

// PopMin removes and returns the minimum pair; ok is false when empty.
func (h Heap) PopMin(e guest.Env) (key, val uint64, ok bool) {
	n := e.Load(h.lenAddr())
	if n == 0 {
		return 0, 0, false
	}
	key = e.Load(h.keyAddr(0))
	val = e.Load(h.valAddr(0))
	n--
	e.Store(h.lenAddr(), n)
	if n == 0 {
		return key, val, true
	}
	lk := e.Load(h.keyAddr(n))
	lv := e.Load(h.valAddr(n))
	e.Store(h.keyAddr(0), lk)
	e.Store(h.valAddr(0), lv)
	i := uint64(0)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		sk := e.Load(h.keyAddr(i))
		if l < n {
			if k := e.Load(h.keyAddr(l)); k < sk {
				small, sk = l, k
			}
		}
		if r < n {
			if k := e.Load(h.keyAddr(r)); k < sk {
				small, sk = r, k
			}
		}
		e.Work(3)
		if small == i {
			break
		}
		h.swap(e, i, small)
		i = small
	}
	return key, val, true
}

func (h Heap) swap(e guest.Env, i, j uint64) {
	ik, iv := e.Load(h.keyAddr(i)), e.Load(h.valAddr(i))
	jk, jv := e.Load(h.keyAddr(j)), e.Load(h.valAddr(j))
	e.Store(h.keyAddr(i), jk)
	e.Store(h.valAddr(i), jv)
	e.Store(h.keyAddr(j), ik)
	e.Store(h.valAddr(j), iv)
}

// FIFO is a ring buffer of 64-bit values in guest memory (serial bfs's
// queue). Layout: [head, tail, capacity slots...].
type FIFO struct {
	base uint64
	cap  uint64
}

// NewFIFO allocates a queue with the given capacity (setup-time).
func NewFIFO(alloc func(uint64) uint64, capacity uint64) FIFO {
	return FIFO{base: alloc(16 + capacity*8), cap: capacity}
}

// Push appends a value.
func (q FIFO) Push(e guest.Env, v uint64) {
	tail := e.Load(q.base + 8)
	e.Store(q.base+16+(tail%q.cap)*8, v)
	e.Store(q.base+8, tail+1)
}

// Pop removes the oldest value; ok is false when empty.
func (q FIFO) Pop(e guest.Env) (v uint64, ok bool) {
	head := e.Load(q.base)
	tail := e.Load(q.base + 8)
	if head == tail {
		return 0, false
	}
	v = e.Load(q.base + 16 + (head%q.cap)*8)
	e.Store(q.base, head+1)
	return v, true
}

// Empty reports whether the queue is empty.
func (q FIFO) Empty(e guest.Env) bool {
	return e.Load(q.base) == e.Load(q.base+8)
}

// UnionFind is an array-based disjoint-set forest in guest memory, used by
// msf. Find is read-only (union-by-size, no path compression): Kruskal
// tasks then have the tiny write sets Table 1 reports for msf (0.03
// words/task on average — only tree edges write).
type UnionFind struct {
	parent Array // parent[i], or i if root
	size   Array
}

// NewUnionFind builds a forest of n singletons (setup-time: callers
// initialize parent[i]=i, size[i]=1 directly in memory).
func NewUnionFind(alloc func(uint64) uint64, n uint64) UnionFind {
	return UnionFind{parent: NewArray(alloc, n), size: NewArray(alloc, n)}
}

// InitDirect initializes the forest bypassing timing (setup).
func (u UnionFind) InitDirect(store func(addr, val uint64)) {
	for i := uint64(0); i < u.parent.N; i++ {
		store(u.parent.Addr(i), i)
		store(u.size.Addr(i), 1)
	}
}

// Find returns the root of x without modifying the structure.
func (u UnionFind) Find(e guest.Env, x uint64) uint64 {
	for {
		p := u.parent.Get(e, x)
		e.Work(1)
		if p == x {
			return x
		}
		x = p
	}
}

// Union links the roots of a and b; returns false if already connected.
func (u UnionFind) Union(e guest.Env, a, b uint64) bool {
	ra, rb := u.Find(e, a), u.Find(e, b)
	if ra == rb {
		return false
	}
	sa, sb := u.size.Get(e, ra), u.size.Get(e, rb)
	e.Work(2)
	if sa < sb {
		ra, rb = rb, ra
		sa, sb = sb, sa
	}
	u.parent.Set(e, rb, ra)
	u.size.Set(e, ra, sa+sb)
	return true
}

// SpinLock is a test-and-set lock at a guest address (the word must be
// zero-initialized and ideally alone on its cache line).
type SpinLock struct{ Addr uint64 }

// Acquire spins with linear backoff until the lock is held.
func (l SpinLock) Acquire(e guest.ThreadEnv) {
	backoff := uint64(4)
	for !e.CAS(l.Addr, 0, 1) {
		e.Work(backoff)
		if backoff < 256 {
			backoff *= 2
		}
	}
}

// Release frees the lock.
func (l SpinLock) Release(e guest.ThreadEnv) { e.Store(l.Addr, 0) }

// Barrier is a sense-reversing centralized barrier in guest memory.
// Layout: [count, sense]. Each thread keeps its local sense in localSense.
type Barrier struct {
	base  uint64
	total uint64
}

// NewBarrier allocates a barrier for total threads (setup-time).
func NewBarrier(alloc func(uint64) uint64, total uint64) Barrier {
	return Barrier{base: alloc(16), total: total}
}

// Wait blocks until all threads arrive. localSense must start at 0 and be
// carried across calls by each thread.
func (b Barrier) Wait(e guest.ThreadEnv, localSense *uint64) {
	*localSense = 1 - *localSense
	arrived := e.FetchAdd(b.base, 1) + 1
	if arrived == b.total {
		e.Store(b.base, 0)             // reset count
		e.Store(b.base+8, *localSense) // flip sense: release everyone
		return
	}
	for e.Load(b.base+8) != *localSense {
		e.Work(30) // poll with backoff to bound event counts
	}
}
