//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// OpenCSR maps an on-disk CSR file and returns a Graph whose arrays alias
// the mapping — no parse, no copy; startup cost is page faults on first
// touch. Input graphs are immutable and live for the whole run, so the
// mapping is kept for the process lifetime (there is nothing to close).
// Big-endian hosts fall back to a copying read.
func OpenCSR(path string) (*Graph, error) {
	if !hostLittleEndian() {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return decodeCSR(data, false)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, fmt.Errorf("graph: %s: empty on-disk CSR", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, err := decodeCSR(data, true)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	return g, nil
}
