// Package graph provides the graph substrate for the graph-analytics
// benchmarks: CSR graphs, deterministic generators standing in for the
// paper's inputs (Table 4), guest-memory packing, and host-side reference
// algorithms used to verify simulated runs.
//
// Input substitutions (documented in DESIGN.md): hugetric-00020 -> a
// triangulated mesh with thousands of BFS levels; East-USA/Germany roads ->
// a perturbed grid road network with coordinates; kronecker_logn16 -> an
// R-MAT/Kronecker generator with the standard (0.57, 0.19, 0.19, 0.05)
// seed matrix.
package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Graph is a directed graph in compressed sparse row form. Undirected
// graphs store both arc directions.
type Graph struct {
	N       int
	Offsets []uint32  // len N+1
	Dst     []uint32  // len M
	W       []uint32  // len M, nil for unweighted graphs
	X, Y    []float64 // optional node coordinates (road networks)
}

// M returns the number of directed arcs.
func (g *Graph) M() int { return len(g.Dst) }

// Degree returns the out-degree of u.
func (g *Graph) Degree(u int) int { return int(g.Offsets[u+1] - g.Offsets[u]) }

// Neighbors returns the arc index range of u.
func (g *Graph) Neighbors(u int) (lo, hi uint32) { return g.Offsets[u], g.Offsets[u+1] }

// MaxDegree returns the largest out-degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.N; u++ {
		if x := g.Degree(u); x > d {
			d = x
		}
	}
	return d
}

// Validate checks CSR well-formedness.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	// Offsets are uint32: a Dst array past 2^32 arcs cannot be indexed by
	// them, so the CSR is corrupt no matter what the offsets say.
	if err := ValidateArcCount(uint64(len(g.Dst))); err != nil {
		return err
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != len(g.Dst) {
		return fmt.Errorf("graph: offset bounds wrong")
	}
	for u := 0; u < g.N; u++ {
		if g.Offsets[u] > g.Offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", u)
		}
	}
	for i, v := range g.Dst {
		if int(v) >= g.N {
			return fmt.Errorf("graph: arc %d targets %d >= N", i, v)
		}
	}
	if g.W != nil && len(g.W) != len(g.Dst) {
		return fmt.Errorf("graph: weights length mismatch")
	}
	return nil
}

// Edge is one undirected weighted edge (msf's input form).
type Edge struct {
	U, V uint32
	W    uint32
}

// MaxArcs is the largest directed arc count a CSR graph can hold: offsets
// are uint32, so one more arc would make the CSR silently self-inconsistent.
const MaxArcs = uint64(1)<<32 - 1

// ValidateArcCount checks that a directed arc count fits the uint32 CSR
// offsets. Loaders call it before building, so an oversized input fails
// with this error instead of wrapping into a corrupt graph.
func ValidateArcCount(arcs uint64) error {
	if arcs > MaxArcs {
		return fmt.Errorf("graph: %d directed arcs exceed the uint32 CSR offset capacity (%d)", arcs, MaxArcs)
	}
	return nil
}

// FromEdges builds a weighted CSR graph from an edge list; when
// undirected, both arc directions are stored. The arc count must fit the
// uint32 offsets (loaders pre-check with ValidateArcCount; generator
// callers cannot exceed it, so an overflow here panics).
func FromEdges(n int, edges []Edge, undirected bool) *Graph {
	return fromEdges(n, edges, undirected, true)
}

// FromEdgesUnweighted is FromEdges for unweighted graphs: per the Graph
// contract, W stays nil and edge weights are ignored.
func FromEdgesUnweighted(n int, edges []Edge, undirected bool) *Graph {
	return fromEdges(n, edges, undirected, false)
}

func fromEdges(n int, edges []Edge, undirected, weighted bool) *Graph {
	// Count arcs in uint64 first: with ~2^31 undirected edges the doubled
	// arc count wraps uint32 and the per-node prefix sums go quietly wrong.
	arcs := uint64(len(edges))
	if undirected {
		arcs *= 2
	}
	if err := ValidateArcCount(arcs); err != nil {
		panic(err)
	}
	deg := make([]uint32, n+1)
	count := func(u uint32) { deg[u+1]++ }
	for _, e := range edges {
		count(e.U)
		if undirected {
			count(e.V)
		}
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g := &Graph{
		N:       n,
		Offsets: deg,
		Dst:     make([]uint32, int(deg[n])),
	}
	if weighted {
		g.W = make([]uint32, int(deg[n]))
	}
	fill := make([]uint32, n)
	put := func(u, v, w uint32) {
		i := g.Offsets[u] + fill[u]
		g.Dst[i] = v
		if weighted {
			g.W[i] = w
		}
		fill[u]++
	}
	for _, e := range edges {
		put(e.U, e.V, e.W)
		if undirected {
			put(e.V, e.U, e.W)
		}
	}
	return g
}

// TriMesh generates a triangulated rows x cols grid: each interior node
// connects to its right, down and down-right neighbors (degree <= 6,
// undirected). Like the paper's hugetric input, it is an unstructured-mesh
// stand-in with a BFS tree thousands of levels deep for large sizes, so
// level-synchronous BFS cannot scale without speculating across levels.
func TriMesh(rows, cols int) *Graph {
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1), 0})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c), 0})
			}
			if r+1 < rows && c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r+1, c+1), 0})
			}
		}
	}
	// The mesh is unweighted (BFS input): per the Graph contract W stays
	// nil, so packing it wastes no guest memory on a dummy weight array.
	return FromEdgesUnweighted(rows*cols, edges, true)
}

// coordScale converts unit grid distance to integer weight units; weights
// and A* heuristics share it so the heuristic stays admissible.
const coordScale = 64

// RoadNet generates a road-network stand-in: a rows x cols grid with
// coordinates, ~8% of edges deleted (keeping the grid connected via a
// guaranteed spanning pattern), and travel-time weights of at least the
// Euclidean distance (x coordScale), perturbed upward by up to 60%. Degree
// <= 4. Deterministic in seed.
func RoadNet(rows, cols int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	n := rows * cols
	x := make([]float64, n)
	y := make([]float64, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Jitter coordinates slightly (roads are not perfect grids).
			x[id(r, c)] = float64(c) + 0.3*rng.Float64()
			y[id(r, c)] = float64(r) + 0.3*rng.Float64()
		}
	}
	weight := func(u, v uint32) uint32 {
		dx, dy := x[u]-x[v], y[u]-y[v]
		d := math.Sqrt(dx*dx+dy*dy) * coordScale
		w := d * (1.0 + 0.6*rng.Float64())
		if w < 1 {
			w = 1
		}
		return uint32(math.Ceil(w))
	}
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := id(r, c)
			if c+1 < cols {
				// Horizontal edges always exist: each row is a path,
				// hanging off the column-0 spine — connectivity is
				// guaranteed by construction.
				edges = append(edges, Edge{u, id(r, c+1), weight(u, id(r, c+1))})
			}
			if r+1 < rows {
				// Vertical edges thin out away from the spine (~85%
				// survive), giving road-network-like irregularity.
				if c == 0 || rng.Float64() >= 0.15 {
					edges = append(edges, Edge{u, id(r+1, c), weight(u, id(r+1, c))})
				}
			}
		}
	}
	g := FromEdges(n, edges, true)
	g.X, g.Y = x, y
	return g
}

// Kronecker generates an R-MAT graph with 2^logN nodes and roughly
// avgDeg*2^logN undirected edges using the standard Graph500 seed matrix
// (a=0.57, b=0.19, c=0.19, d=0.05), random weights in [1, 255], self-loops
// and duplicate edges dropped.
func Kronecker(logN, avgDeg int, seed int64) (int, []Edge) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << logN
	target := n * avgDeg / 2
	seen := make(map[uint64]bool, target)
	edges := make([]Edge, 0, target)
	// R-MAT sampling rejects self-loops and duplicates, so when target
	// approaches the number of distinct pairs the skewed distribution can
	// reach (small logN, high avgDeg), the accept rate goes to zero and an
	// unbounded loop never terminates. Bound the draws generously — real
	// configurations accept well over 1-in-64 — and return the edges found.
	attempts := 0
	maxAttempts := 64*target + 4096
	for len(edges) < target && attempts < maxAttempts {
		attempts++
		u, v := 0, 0
		for i := 0; i < logN; i++ {
			p := rng.Float64()
			var bu, bv int
			switch {
			case p < 0.57:
				bu, bv = 0, 0
			case p < 0.57+0.19:
				bu, bv = 0, 1
			case p < 0.57+0.19+0.19:
				bu, bv = 1, 0
			default:
				bu, bv = 1, 1
			}
			u = u<<1 | bu
			v = v<<1 | bv
		}
		if u == v {
			continue
		}
		a, b := uint32(u), uint32(v)
		if a > b {
			a, b = b, a
		}
		key := uint64(a)<<32 | uint64(b)
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, Edge{a, b, uint32(rng.Intn(255)) + 1})
	}
	return n, edges
}

// Random generates a connected Erdos-Renyi-ish graph: a random spanning
// tree plus m-n+1 random extra edges (for robustness tests).
func Random(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, Edge{uint32(u), uint32(v), uint32(rng.Intn(100)) + 1})
	}
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{uint32(u), uint32(v), uint32(rng.Intn(100)) + 1})
		}
	}
	return FromEdges(n, edges, true)
}

// ---------------------------------------------------------------------------
// Host-side reference algorithms (ground truth for verification).
// ---------------------------------------------------------------------------

// EnsureWeights gives an unweighted graph unit arc weights, so weighted
// kernels (shortest paths) can run on unweighted real inputs (SNAP edge
// lists). Weighted graphs are untouched.
func (g *Graph) EnsureWeights() {
	if g.W != nil {
		return
	}
	g.W = make([]uint32, len(g.Dst))
	for i := range g.W {
		g.W[i] = 1
	}
}

// Inf marks an unreached node in distance arrays.
const Inf = ^uint64(0)

// BFSLevels returns each node's BFS level from src (Inf if unreachable).
func BFSLevels(g *Graph, src int) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		lo, hi := g.Neighbors(u)
		for i := lo; i < hi; i++ {
			v := int(g.Dst[i])
			if dist[v] == Inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Dijkstra returns shortest-path distances from src.
func Dijkstra(g *Graph, src int) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	type item struct {
		d uint64
		u int
	}
	pq := &itemHeap{}
	*pq = append(*pq, item{0, src})
	for pq.Len() > 0 {
		it := pq.pop()
		if dist[it.u] != Inf {
			continue
		}
		dist[it.u] = it.d
		lo, hi := g.Neighbors(it.u)
		for i := lo; i < hi; i++ {
			v := int(g.Dst[i])
			if dist[v] == Inf {
				pq.push(item{it.d + uint64(g.W[i]), v})
			}
		}
	}
	return dist
}

type itemHeap []struct {
	d uint64
	u int
}

func (h *itemHeap) Len() int { return len(*h) }
func (h *itemHeap) push(x struct {
	d uint64
	u int
}) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}
func (h *itemHeap) pop() struct {
	d uint64
	u int
} {
	old := *h
	min := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < n && old[l].d < old[s].d {
			s = l
		}
		if r < n && old[r].d < old[s].d {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return min
}

// MSFWeight returns the total weight of the minimum spanning forest
// (reference Kruskal over the edge list).
func MSFWeight(n int, edges []Edge) uint64 {
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].W != sorted[j].W {
			return sorted[i].W < sorted[j].W
		}
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total uint64
	for _, e := range sorted {
		ru, rv := find(int(e.U)), find(int(e.V))
		if ru != rv {
			parent[ru] = rv
			total += uint64(e.W)
		}
	}
	return total
}

// CoreNumbers returns each node's core number (reference Matula–Beck
// bucket peeling: repeatedly remove a minimum-degree node; a node's core
// is the running maximum of the degrees at removal). The graph must be
// undirected (both arc directions present).
func CoreNumbers(g *Graph) []uint64 {
	n := g.N
	deg := make([]uint64, n)
	maxDeg := uint64(0)
	for v := 0; v < n; v++ {
		deg[v] = uint64(g.Degree(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket-sort nodes by degree.
	bin := make([]uint64, maxDeg+2)
	for _, d := range deg {
		bin[d+1]++
	}
	for d := uint64(1); d < maxDeg+2; d++ {
		bin[d] += bin[d-1]
	}
	vert := make([]uint64, n)
	pos := make([]uint64, n)
	cursor := append([]uint64(nil), bin...)
	for v := 0; v < n; v++ {
		i := cursor[deg[v]]
		cursor[deg[v]]++
		vert[i] = uint64(v)
		pos[uint64(v)] = i
	}
	core := make([]uint64, n)
	removed := make([]bool, n)
	k := uint64(0)
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > k {
			k = deg[v]
		}
		core[v] = k
		removed[v] = true
		lo, hi := g.Neighbors(int(v))
		for a := lo; a < hi; a++ {
			w := uint64(g.Dst[a])
			if removed[w] || deg[w] <= deg[v] {
				continue
			}
			// O(1) decrease-key: swap w with the first node of its
			// bucket and advance the bucket boundary.
			dw := deg[w]
			pw := pos[w]
			start := bin[dw]
			u := vert[start]
			if u != w {
				vert[pw], vert[start] = u, w
				pos[u], pos[w] = pw, start
			}
			bin[dw] = start + 1
			deg[w] = dw - 1
		}
	}
	return core
}
