package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"unsafe"
)

// GuestCSR is a CSR graph laid out in guest memory, plus a per-node
// distance array initialized to Unvisited. All benchmark flavors (serial,
// software-parallel, Swarm) operate on this layout, so they perform the
// same work on the same data structures (§5).
type GuestCSR struct {
	N    uint64
	M    uint64
	Off  uint64 // N+1 words: arc offsets
	Dst  uint64 // M words: arc targets
	W    uint64 // M words: arc weights (0 if absent)
	Dist uint64 // N words: per-node distance, Unvisited initially
	XY   uint64 // 2N words: fixed-point coordinates (0 if absent)
}

// Unvisited is the initial distance value.
const Unvisited = ^uint64(0)

// CoordScale converts unit coordinate distance into weight units (shared
// with the RoadNet generator so A*'s heuristic is admissible).
const CoordScale = coordScale

// coordFixed converts a float coordinate to 16.16 fixed point.
func coordFixed(f float64) uint64 { return uint64(int64(f * 65536)) }

// Pack lays the graph out in guest memory. alloc and store are the
// setup-time (untimed) primitives of the target machine.
func Pack(g *Graph, alloc func(uint64) uint64, store func(addr, val uint64)) GuestCSR {
	n, m := uint64(g.N), uint64(g.M())
	gc := GuestCSR{
		N:    n,
		M:    m,
		Off:  alloc((n + 1) * 8),
		Dst:  alloc(m * 8),
		Dist: alloc(n * 8),
	}
	for i := uint64(0); i <= n; i++ {
		store(gc.Off+i*8, uint64(g.Offsets[i]))
	}
	for i := uint64(0); i < m; i++ {
		store(gc.Dst+i*8, uint64(g.Dst[i]))
	}
	if g.W != nil {
		gc.W = alloc(m * 8)
		for i := uint64(0); i < m; i++ {
			store(gc.W+i*8, uint64(g.W[i]))
		}
	}
	for i := uint64(0); i < n; i++ {
		store(gc.Dist+i*8, Unvisited)
	}
	if g.X != nil {
		gc.XY = alloc(2 * n * 8)
		for i := uint64(0); i < n; i++ {
			store(gc.XY+2*i*8, coordFixed(g.X[i]))
			store(gc.XY+(2*i+1)*8, coordFixed(g.Y[i]))
		}
	}
	return gc
}

// Addresses of individual fields.

// OffAddr returns the address of Offsets[i].
func (gc GuestCSR) OffAddr(i uint64) uint64 { return gc.Off + i*8 }

// DstAddr returns the address of Dst[i].
func (gc GuestCSR) DstAddr(i uint64) uint64 { return gc.Dst + i*8 }

// WAddr returns the address of W[i].
func (gc GuestCSR) WAddr(i uint64) uint64 { return gc.W + i*8 }

// DistAddr returns the address of Dist[u].
func (gc GuestCSR) DistAddr(u uint64) uint64 { return gc.Dist + u*8 }

// XAddr and YAddr return coordinate addresses.
func (gc GuestCSR) XAddr(u uint64) uint64 { return gc.XY + 2*u*8 }

// YAddr returns the address of node u's y coordinate.
func (gc GuestCSR) YAddr(u uint64) uint64 { return gc.XY + (2*u+1)*8 }

// ---------------------------------------------------------------------------
// Versioned on-disk CSR form.
//
// Large inputs are parsed (or generated) once and cached in this binary
// format; subsequent runs mmap the cache and use the CSR arrays in place,
// so startup cost is page faults, not a parse. Layout (little-endian):
//
//	0   8-byte magic, version in the last byte ("SWCSR\0\0" + 0x01)
//	8   uint64 n (nodes)
//	16  uint64 m (directed arcs)
//	24  uint64 flags (bit 0: weighted, bit 1: coordinates)
//	32  uint64 reserved (zero)
//	40  sections, each 8-byte aligned:
//	    Offsets  (n+1)*uint32   Dst  m*uint32   [W  m*uint32]
//	    [X n*float64-bits  Y n*float64-bits]
// ---------------------------------------------------------------------------

const (
	csrMagic   = "SWCSR\x00\x00\x01"
	csrHeader  = 40
	csrWeights = 1 << 0
	csrCoords  = 1 << 1
)

// csrLayout computes each section's byte offset and the total file size.
type csrLayout struct {
	off, dst, w, x, y, size uint64
}

func layoutCSR(n, m, flags uint64) csrLayout {
	align := func(v uint64) uint64 { return (v + 7) &^ 7 }
	var l csrLayout
	pos := uint64(csrHeader)
	l.off = pos
	pos = align(pos + (n+1)*4)
	l.dst = pos
	pos = align(pos + m*4)
	if flags&csrWeights != 0 {
		l.w = pos
		pos = align(pos + m*4)
	}
	if flags&csrCoords != 0 {
		l.x = pos
		pos += n * 8
		l.y = pos
		pos += n * 8
	}
	l.size = pos
	return l
}

func (g *Graph) csrFlags() uint64 {
	var flags uint64
	if g.W != nil {
		flags |= csrWeights
	}
	if g.X != nil {
		flags |= csrCoords
	}
	return flags
}

// WriteCSR writes the graph in the on-disk CSR form.
func WriteCSR(w io.Writer, g *Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	n, m := uint64(g.N), uint64(len(g.Dst))
	flags := g.csrFlags()
	bw.WriteString(csrMagic)
	var word [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(word[:], v)
		bw.Write(word[:])
	}
	putU64(n)
	putU64(m)
	putU64(flags)
	putU64(0)
	writeU32s := func(vs []uint32) {
		for _, v := range vs {
			binary.LittleEndian.PutUint32(word[:4], v)
			bw.Write(word[:4])
		}
		if len(vs)%2 != 0 {
			bw.Write([]byte{0, 0, 0, 0}) // section padding to 8 bytes
		}
	}
	writeU32s(g.Offsets)
	writeU32s(g.Dst)
	if flags&csrWeights != 0 {
		writeU32s(g.W)
	}
	if flags&csrCoords != 0 {
		for _, f := range g.X {
			putU64(floatBits(f))
		}
		for _, f := range g.Y {
			putU64(floatBits(f))
		}
	}
	return bw.Flush()
}

func floatBits(f float64) uint64 { return *(*uint64)(unsafe.Pointer(&f)) }
func bitsFloat(b uint64) float64 { return *(*float64)(unsafe.Pointer(&b)) }
func hostLittleEndian() bool     { x := uint16(1); return *(*byte)(unsafe.Pointer(&x)) == 1 }

// WriteCSRFile writes the on-disk form atomically (temp file + rename), so
// a crashed writer never leaves a truncated cache entry behind.
func WriteCSRFile(path string, g *Graph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteCSR(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// decodeCSR reconstructs a Graph from the on-disk bytes. With zeroCopy the
// CSR arrays alias data (mmap'd callers on little-endian hosts); otherwise
// they are copied out, which works on any host.
func decodeCSR(data []byte, zeroCopy bool) (*Graph, error) {
	if len(data) < csrHeader || string(data[:8]) != csrMagic {
		return nil, fmt.Errorf("graph: not an on-disk CSR (bad magic or truncated header)")
	}
	n := binary.LittleEndian.Uint64(data[8:])
	m := binary.LittleEndian.Uint64(data[16:])
	flags := binary.LittleEndian.Uint64(data[24:])
	if n > MaxArcs || m > MaxArcs {
		return nil, fmt.Errorf("graph: on-disk CSR declares %d nodes / %d arcs (limit %d)", n, m, MaxArcs)
	}
	l := layoutCSR(n, m, flags)
	if uint64(len(data)) < l.size {
		return nil, fmt.Errorf("graph: on-disk CSR truncated: %d bytes, layout needs %d", len(data), l.size)
	}
	u32s := func(off, count uint64) []uint32 {
		if zeroCopy {
			return unsafe.Slice((*uint32)(unsafe.Pointer(&data[off])), count)
		}
		out := make([]uint32, count)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(data[off+uint64(i)*4:])
		}
		return out
	}
	g := &Graph{
		N:       int(n),
		Offsets: u32s(l.off, n+1),
		Dst:     u32s(l.dst, m),
	}
	if flags&csrWeights != 0 {
		g.W = u32s(l.w, m)
	}
	if flags&csrCoords != 0 {
		if zeroCopy {
			g.X = unsafe.Slice((*float64)(unsafe.Pointer(&data[l.x])), n)
			g.Y = unsafe.Slice((*float64)(unsafe.Pointer(&data[l.y])), n)
		} else {
			g.X = make([]float64, n)
			g.Y = make([]float64, n)
			for i := uint64(0); i < n; i++ {
				g.X[i] = bitsFloat(binary.LittleEndian.Uint64(data[l.x+i*8:]))
				g.Y[i] = bitsFloat(binary.LittleEndian.Uint64(data[l.y+i*8:]))
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt on-disk CSR: %w", err)
	}
	return g, nil
}

// ReadCSR reconstructs a Graph from on-disk CSR bytes, copying the arrays
// (portable; OpenCSR is the zero-copy mmap path).
func ReadCSR(data []byte) (*Graph, error) { return decodeCSR(data, false) }
