package graph

// GuestCSR is a CSR graph laid out in guest memory, plus a per-node
// distance array initialized to Unvisited. All benchmark flavors (serial,
// software-parallel, Swarm) operate on this layout, so they perform the
// same work on the same data structures (§5).
type GuestCSR struct {
	N    uint64
	M    uint64
	Off  uint64 // N+1 words: arc offsets
	Dst  uint64 // M words: arc targets
	W    uint64 // M words: arc weights (0 if absent)
	Dist uint64 // N words: per-node distance, Unvisited initially
	XY   uint64 // 2N words: fixed-point coordinates (0 if absent)
}

// Unvisited is the initial distance value.
const Unvisited = ^uint64(0)

// CoordScale converts unit coordinate distance into weight units (shared
// with the RoadNet generator so A*'s heuristic is admissible).
const CoordScale = coordScale

// coordFixed converts a float coordinate to 16.16 fixed point.
func coordFixed(f float64) uint64 { return uint64(int64(f * 65536)) }

// Pack lays the graph out in guest memory. alloc and store are the
// setup-time (untimed) primitives of the target machine.
func Pack(g *Graph, alloc func(uint64) uint64, store func(addr, val uint64)) GuestCSR {
	n, m := uint64(g.N), uint64(g.M())
	gc := GuestCSR{
		N:    n,
		M:    m,
		Off:  alloc((n + 1) * 8),
		Dst:  alloc(m * 8),
		Dist: alloc(n * 8),
	}
	for i := uint64(0); i <= n; i++ {
		store(gc.Off+i*8, uint64(g.Offsets[i]))
	}
	for i := uint64(0); i < m; i++ {
		store(gc.Dst+i*8, uint64(g.Dst[i]))
	}
	if g.W != nil {
		gc.W = alloc(m * 8)
		for i := uint64(0); i < m; i++ {
			store(gc.W+i*8, uint64(g.W[i]))
		}
	}
	for i := uint64(0); i < n; i++ {
		store(gc.Dist+i*8, Unvisited)
	}
	if g.X != nil {
		gc.XY = alloc(2 * n * 8)
		for i := uint64(0); i < n; i++ {
			store(gc.XY+2*i*8, coordFixed(g.X[i]))
			store(gc.XY+(2*i+1)*8, coordFixed(g.Y[i]))
		}
	}
	return gc
}

// Addresses of individual fields.

// OffAddr returns the address of Offsets[i].
func (gc GuestCSR) OffAddr(i uint64) uint64 { return gc.Off + i*8 }

// DstAddr returns the address of Dst[i].
func (gc GuestCSR) DstAddr(i uint64) uint64 { return gc.Dst + i*8 }

// WAddr returns the address of W[i].
func (gc GuestCSR) WAddr(i uint64) uint64 { return gc.W + i*8 }

// DistAddr returns the address of Dist[u].
func (gc GuestCSR) DistAddr(u uint64) uint64 { return gc.Dist + u*8 }

// XAddr and YAddr return coordinate addresses.
func (gc GuestCSR) XAddr(u uint64) uint64 { return gc.XY + 2*u*8 }

// YAddr returns the address of node u's y coordinate.
func (gc GuestCSR) YAddr(u uint64) uint64 { return gc.XY + (2*u+1)*8 }
