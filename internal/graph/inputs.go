package graph

import (
	"fmt"
	"os"
	"path/filepath"
)

// Large-input resolution. A large-scale benchmark names its input; the
// graph comes from the first source that answers:
//
//  1. a real file — $SWARM_DATA_DIR/<name>.gr (DIMACS), .txt or .el
//     (SNAP edge list);
//  2. the binary cache — <cachedir>/<name>.csr, mmap'd in place
//     ($SWARM_GRAPH_CACHE, else the user cache dir, else the OS temp dir);
//  3. the deterministic generator fallback, whose result is written
//     through to the cache so the parse/generate cost is paid once.
//
// Every path yields the same Graph type, so benchmark code cannot tell
// real inputs from generated ones.

// DataDirEnv names the real-input directory override.
const DataDirEnv = "SWARM_DATA_DIR"

// CacheDirEnv names the binary-cache directory override.
const CacheDirEnv = "SWARM_GRAPH_CACHE"

// realExtensions are the recognized real-input file suffixes, in lookup
// order.
var realExtensions = []string{".gr", ".txt", ".el"}

// CacheDir returns the directory on-disk CSR caches live in, creating it
// if needed.
func CacheDir() (string, error) {
	dir := os.Getenv(CacheDirEnv)
	if dir == "" {
		if base, err := os.UserCacheDir(); err == nil {
			dir = filepath.Join(base, "swarm-graphs")
		} else {
			dir = filepath.Join(os.TempDir(), "swarm-graphs")
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// findReal returns the real-input path for a named input, if one exists.
func findReal(name string) (string, bool) {
	dir := os.Getenv(DataDirEnv)
	if dir == "" {
		return "", false
	}
	for _, ext := range realExtensions {
		p := filepath.Join(dir, name+ext)
		if st, err := os.Stat(p); err == nil && !st.IsDir() {
			return p, true
		}
	}
	return "", false
}

// LoadOrGenerate resolves a named large input: real file, then mmap'd
// cache, then the generator fallback (written through to the cache).
// A real file that fails to parse is an error the user must see — the
// generator does NOT silently paper over it. A corrupt or stale cache
// entry is regenerated. Benchmark constructors cannot return errors, so
// they wrap this in MustLoad.
func LoadOrGenerate(name string, gen func() *Graph) (*Graph, error) {
	if path, ok := findReal(name); ok {
		g, err := LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("graph: real input %s: %w", path, err)
		}
		return g, nil
	}
	cacheDir, cacheErr := CacheDir()
	if cacheErr == nil {
		cached := filepath.Join(cacheDir, name+".csr")
		if g, err := OpenCSR(cached); err == nil {
			return g, nil
		}
		g := gen()
		// Write-through is best-effort: a read-only cache dir costs the
		// regeneration on every run, not correctness.
		_ = WriteCSRFile(cached, g)
		return g, nil
	}
	return gen(), nil
}

// MustLoad is LoadOrGenerate for benchmark constructors, which have no
// error path: a real input the user pointed at but that fails to parse
// panics with the parse error rather than silently substituting the
// generator.
func MustLoad(name string, gen func() *Graph) *Graph {
	g, err := LoadOrGenerate(name, gen)
	if err != nil {
		panic(err)
	}
	return g
}
