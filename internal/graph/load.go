package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Real-input loaders: DIMACS shortest-path ".gr" road networks (the
// paper's East-USA/Germany inputs ship in this format) and SNAP
// whitespace-separated edge lists. Both parse into the same CSR Graph the
// generators build, so every benchmark flavor runs unchanged on real
// inputs. Parsers validate instead of trusting: malformed headers,
// out-of-range vertex ids, oversized declarations and truncated files all
// return errors (they are also fuzz targets).

// ParseGR reads a DIMACS shortest-path format graph: "c" comment lines, a
// "p sp <nodes> <arcs>" problem line, then one "a <src> <dst> <weight>"
// line per directed arc with 1-indexed vertices. The result is a weighted
// directed CSR graph.
func ParseGR(r io.Reader) (*Graph, error) {
	return ParseGRLimit(r, MaxArcs)
}

// ParseGRLimit is ParseGR with a cap on the declared node count. The
// header alone sizes the O(n) CSR arrays, so callers parsing untrusted
// bytes (the fuzz target) bound the allocation a forged header can demand.
func ParseGRLimit(r io.Reader, maxNodes uint64) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var n, m uint64
	sawHeader := false
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c": // comment
		case "p":
			if sawHeader {
				return nil, fmt.Errorf("gr: line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("gr: line %d: want \"p sp <nodes> <arcs>\", got %q", line, sc.Text())
			}
			var err error
			if n, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
				return nil, fmt.Errorf("gr: line %d: bad node count: %w", line, err)
			}
			if m, err = strconv.ParseUint(fields[3], 10, 64); err != nil {
				return nil, fmt.Errorf("gr: line %d: bad arc count: %w", line, err)
			}
			if n == 0 {
				return nil, fmt.Errorf("gr: line %d: zero nodes", line)
			}
			if n > maxNodes {
				return nil, fmt.Errorf("gr: line %d: %d nodes exceed the limit (%d)", line, n, maxNodes)
			}
			if err := ValidateArcCount(m); err != nil {
				return nil, err
			}
			sawHeader = true
			edges = make([]Edge, 0, m)
		case "a":
			if !sawHeader {
				return nil, fmt.Errorf("gr: line %d: arc before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("gr: line %d: want \"a <src> <dst> <weight>\", got %q", line, sc.Text())
			}
			u, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gr: line %d: bad src: %w", line, err)
			}
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gr: line %d: bad dst: %w", line, err)
			}
			w, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("gr: line %d: bad weight: %w", line, err)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("gr: line %d: vertex out of range [1, %d]", line, n)
			}
			if uint64(len(edges)) == m {
				return nil, fmt.Errorf("gr: line %d: more than the declared %d arcs", line, m)
			}
			edges = append(edges, Edge{U: uint32(u - 1), V: uint32(v - 1), W: uint32(w)})
		default:
			return nil, fmt.Errorf("gr: line %d: unknown line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gr: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("gr: missing problem line")
	}
	if uint64(len(edges)) != m {
		return nil, fmt.Errorf("gr: truncated: %d arcs declared, %d found", m, len(edges))
	}
	g := FromEdges(int(n), edges, false)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseSNAP reads a SNAP-style edge list: "#" comment lines, then one
// whitespace-separated "<src> <dst>" pair per line with arbitrary
// non-negative integer vertex ids. Ids are remapped to a dense [0, n)
// range in first-appearance order (deterministic for a given file);
// self-loops and duplicate edges are dropped. The result is an unweighted
// undirected CSR graph (both arc directions stored, W nil).
func ParseSNAP(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	remap := make(map[uint64]uint32)
	dense := func(raw uint64) (uint32, error) {
		if id, ok := remap[raw]; ok {
			return id, nil
		}
		if uint64(len(remap)) > MaxArcs {
			return 0, fmt.Errorf("snap: more than %d distinct vertices", MaxArcs)
		}
		id := uint32(len(remap))
		remap[raw] = id
		return id, nil
	}
	seen := make(map[uint64]bool)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("snap: line %d: want \"<src> <dst>\", got %q", line, text)
		}
		ru, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: line %d: bad src: %w", line, err)
		}
		rv, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: line %d: bad dst: %w", line, err)
		}
		if ru == rv {
			continue // self-loop
		}
		u, err := dense(ru)
		if err != nil {
			return nil, err
		}
		v, err := dense(rv)
		if err != nil {
			return nil, err
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		key := uint64(a)<<32 | uint64(b)
		if seen[key] {
			continue // duplicate (or reverse direction of a seen edge)
		}
		seen[key] = true
		// Undirected: both arc directions count toward the uint32 cap.
		if err := ValidateArcCount(2 * uint64(len(edges)+1)); err != nil {
			return nil, err
		}
		edges = append(edges, Edge{U: a, V: b})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	if len(remap) == 0 {
		return nil, fmt.Errorf("snap: no edges")
	}
	g := FromEdgesUnweighted(len(remap), edges, true)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadFile parses a real input file by extension: ".gr" as DIMACS, ".txt"
// or ".el" as a SNAP edge list.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	switch {
	case strings.HasSuffix(path, ".gr"):
		return ParseGR(br)
	case strings.HasSuffix(path, ".txt"), strings.HasSuffix(path, ".el"):
		return ParseSNAP(br)
	}
	return nil, fmt.Errorf("graph: %s: unknown input format (want .gr, .txt or .el)", path)
}
