package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTriMeshStructure(t *testing.T) {
	g := TriMesh(10, 12)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 120 {
		t.Fatalf("N = %d", g.N)
	}
	if g.MaxDegree() > 6 {
		t.Fatalf("tri-mesh degree %d > 6", g.MaxDegree())
	}
	// Expected undirected edge count: horizontal 10*11 + vertical 9*12 +
	// diagonal 9*11 = 110+108+99 = 317; CSR stores both directions.
	if g.M() != 2*317 {
		t.Fatalf("M = %d, want %d", g.M(), 2*317)
	}
	// Connected: BFS reaches everything.
	dist := BFSLevels(g, 0)
	for u, d := range dist {
		if d == Inf {
			t.Fatalf("node %d unreachable", u)
		}
	}
	// Deep: corner-to-corner level = max(rows,cols)-1 via diagonals.
	if dist[119] != 11 {
		t.Fatalf("far corner level = %d, want 11", dist[119])
	}
}

func TestTriMeshIsDeep(t *testing.T) {
	// The paper's hugetric has 2799 levels on 7.1M nodes; our stand-in
	// must also have level count ~ O(side length).
	g := TriMesh(60, 40)
	dist := BFSLevels(g, 0)
	maxLevel := uint64(0)
	for _, d := range dist {
		if d != Inf && d > maxLevel {
			maxLevel = d
		}
	}
	if maxLevel < 50 {
		t.Fatalf("max BFS level %d: mesh too shallow to stress cross-level speculation", maxLevel)
	}
}

func TestRoadNetProperties(t *testing.T) {
	g := RoadNet(30, 30, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("road degree %d > 4", g.MaxDegree())
	}
	dist := BFSLevels(g, 0)
	for u, d := range dist {
		if d == Inf {
			t.Fatalf("road network disconnected at node %d", u)
		}
	}
	// Weights at least Euclidean distance (admissibility for A*).
	for u := 0; u < g.N; u++ {
		lo, hi := g.Neighbors(u)
		for i := lo; i < hi; i++ {
			v := int(g.Dst[i])
			dx, dy := g.X[u]-g.X[v], g.Y[u]-g.Y[v]
			eu := (dx*dx + dy*dy)
			// w >= sqrt(eu)*coordScale  <=>  w^2 >= eu*coordScale^2
			w := float64(g.W[i])
			if w*w < eu*coordScale*coordScale-1e-6 {
				t.Fatalf("edge %d-%d weight %v below Euclidean bound", u, v, g.W[i])
			}
		}
	}
}

func TestRoadNetDeterminism(t *testing.T) {
	a := RoadNet(20, 20, 7)
	b := RoadNet(20, 20, 7)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge count")
	}
	for i := range a.Dst {
		if a.Dst[i] != b.Dst[i] || a.W[i] != b.W[i] {
			t.Fatal("same seed, different graph")
		}
	}
	c := RoadNet(20, 20, 8)
	same := c.M() == a.M()
	if same {
		for i := range a.Dst {
			if a.Dst[i] != c.Dst[i] || a.W[i] != c.W[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestKroneckerSkew(t *testing.T) {
	n, edges := Kronecker(10, 8, 1)
	if n != 1024 {
		t.Fatalf("n = %d", n)
	}
	if len(edges) != 1024*8/2 {
		t.Fatalf("edges = %d, want %d", len(edges), 1024*4)
	}
	g := FromEdges(n, edges, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Power-law-ish: max degree far above average.
	if g.MaxDegree() < 4*8 {
		t.Fatalf("max degree %d: no skew, not Kronecker-like", g.MaxDegree())
	}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatal("self loop survived")
		}
		if e.W < 1 || e.W > 255 {
			t.Fatalf("weight %d out of range", e.W)
		}
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over every
// arc, and BFS levels differ by at most 1 across arcs.
func TestReferenceAlgorithmInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(50+rng.Intn(50), 200, seed)
		dd := Dijkstra(g, 0)
		bd := BFSLevels(g, 0)
		for u := 0; u < g.N; u++ {
			lo, hi := g.Neighbors(u)
			for i := lo; i < hi; i++ {
				v := int(g.Dst[i])
				if dd[u] != Inf && dd[v] > dd[u]+uint64(g.W[i]) {
					return false
				}
				if bd[u] != Inf && bd[v] > bd[u]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMSFWeightAgainstDenseReference(t *testing.T) {
	// Small complete-ish graph: compare Kruskal against brute-force
	// Prim implemented independently.
	rng := rand.New(rand.NewSource(3))
	n := 12
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{uint32(u), uint32(v), uint32(rng.Intn(50)) + 1})
		}
	}
	got := MSFWeight(n, edges)
	// Prim.
	adj := make([][]uint64, n)
	for i := range adj {
		adj[i] = make([]uint64, n)
		for j := range adj[i] {
			adj[i][j] = Inf
		}
	}
	for _, e := range edges {
		if uint64(e.W) < adj[e.U][e.V] {
			adj[e.U][e.V] = uint64(e.W)
			adj[e.V][e.U] = uint64(e.W)
		}
	}
	inTree := make([]bool, n)
	key := make([]uint64, n)
	for i := range key {
		key[i] = Inf
	}
	key[0] = 0
	var total uint64
	for it := 0; it < n; it++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || key[v] < key[best]) {
				best = v
			}
		}
		inTree[best] = true
		total += key[best]
		for v := 0; v < n; v++ {
			if !inTree[v] && adj[best][v] < key[v] {
				key[v] = adj[best][v]
			}
		}
	}
	if got != total {
		t.Fatalf("Kruskal = %d, Prim = %d", got, total)
	}
}

func TestPackRoundTrip(t *testing.T) {
	g := RoadNet(8, 8, 5)
	memory := map[uint64]uint64{}
	brk := uint64(0x1000)
	alloc := func(n uint64) uint64 { a := brk; brk += (n + 63) &^ 63; return a }
	store := func(a, v uint64) { memory[a] = v }
	gc := Pack(g, alloc, store)
	if gc.N != uint64(g.N) || gc.M != uint64(g.M()) {
		t.Fatal("sizes wrong")
	}
	for u := 0; u < g.N; u++ {
		if memory[gc.OffAddr(uint64(u))] != uint64(g.Offsets[u]) {
			t.Fatalf("offset %d mismatched", u)
		}
		if memory[gc.DistAddr(uint64(u))] != Unvisited {
			t.Fatalf("dist %d not initialized", u)
		}
	}
	for i := 0; i < g.M(); i++ {
		if memory[gc.DstAddr(uint64(i))] != uint64(g.Dst[i]) {
			t.Fatalf("dst %d mismatched", i)
		}
		if memory[gc.WAddr(uint64(i))] != uint64(g.W[i]) {
			t.Fatalf("w %d mismatched", i)
		}
	}
}

func TestFromEdgesDirected(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 5}, {1, 2, 7}}, false)
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("directed degrees wrong")
	}
}
