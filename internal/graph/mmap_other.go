//go:build !unix

package graph

import "os"

// OpenCSR reads an on-disk CSR file. Platforms without syscall.Mmap get
// the portable copying decode; the unix build maps the file instead.
func OpenCSR(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeCSR(data, false)
}
