package tsdom

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootAndDepth(t *testing.T) {
	if !Root.IsRoot() || Root.Depth() != 0 || !Root.Valid() {
		t.Fatalf("Root = %q: IsRoot=%v Depth=%d Valid=%v", Root, Root.IsRoot(), Root.Depth(), Root.Valid())
	}
	p := Root.Child(3).Child(0).Child(41)
	if p.Depth() != 3 || !p.Valid() {
		t.Fatalf("depth = %d, valid = %v, want 3, true", p.Depth(), p.Valid())
	}
	want := []uint64{3, 0, 41}
	for d, w := range want {
		if got := p.Level(d); got != w {
			t.Errorf("Level(%d) = %d, want %d", d, got, w)
		}
	}
	if got := p.Levels(); len(got) != 3 || got[0] != 3 || got[1] != 0 || got[2] != 41 {
		t.Errorf("Levels() = %v, want %v", got, want)
	}
	if p.Parent() != FromLevels(3, 0) {
		t.Errorf("Parent() = %v, want 3.0", p.Parent())
	}
	if Root.Parent() != Root {
		t.Errorf("Root.Parent() = %q, want root", Root.Parent())
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Path
		want string
	}{
		{Root, "·"},
		{FromLevels(0), "0"},
		{FromLevels(2, 0, 7), "2.0.7"},
		{FromLevels(1 << 40), "1099511627776"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.p.Levels(), got, c.want)
		}
	}
}

// TestDagOrder pins the ordering law the whole subsystem rests on:
// parent before child, siblings by fork index, each sibling subtree
// entirely before the next.
func TestDagOrder(t *testing.T) {
	cases := []struct {
		a, b Path
		cmp  int
	}{
		{Root, Root, 0},
		{Root, FromLevels(0), -1},                           // parent before first child
		{FromLevels(5), FromLevels(5, 0), -1},               // prefix before extension
		{FromLevels(0), FromLevels(1), -1},                  // fork-index order
		{FromLevels(0, 99, 99), FromLevels(1), -1},          // whole subtree before next sibling
		{FromLevels(1), FromLevels(0, 99, 99), +1},          // and symmetrically
		{FromLevels(2, 7), FromLevels(2, 7), 0},             // equality
		{FromLevels(1 << 60), FromLevels(1<<60, 0), -1},     // big indices, fixed width
		{FromLevels(255), FromLevels(256), -1},              // byte-boundary indices
		{FromLevels(0, 1<<32), FromLevels(0, 1<<32+1), -1},  // high-word ties
		{FromLevels(^uint64(0)), FromLevels(^uint64(0)), 0}, // max index
		{FromLevels(0), FromLevels(^uint64(0)), -1},         // min vs max index
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.cmp {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.cmp)
		}
		if got := Compare(c.b, c.a); got != -c.cmp {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.cmp)
		}
		if got := Less(c.a, c.b); got != (c.cmp < 0) {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.cmp < 0)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	p := FromLevels(2, 0, 7)
	for _, anc := range []Path{Root, FromLevels(2), FromLevels(2, 0), p} {
		if !p.HasPrefix(anc) {
			t.Errorf("%v should have prefix %v", p, anc)
		}
	}
	for _, not := range []Path{FromLevels(3), FromLevels(2, 1), p.Child(0)} {
		if p.HasPrefix(not) {
			t.Errorf("%v should not have prefix %v", p, not)
		}
	}
}

// refCompare is the arbitrary-precision reference order: compare the
// unpacked fork-index sequences lexicographically, prefix first.
func refCompare(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return +1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return +1
	}
	return 0
}

// genPath draws a random path biased toward shared prefixes (the
// interesting comparisons) and extreme fork indices.
func genPath(r *rand.Rand) Path {
	depth := r.Intn(5)
	p := Root
	for d := 0; d < depth; d++ {
		var idx uint64
		switch r.Intn(4) {
		case 0:
			idx = uint64(r.Intn(3)) // collide often
		case 1:
			idx = uint64(r.Intn(1000))
		case 2:
			idx = ^uint64(0) - uint64(r.Intn(3))
		default:
			idx = r.Uint64()
		}
		p = p.Child(idx)
	}
	return p
}

// TestQuickTotalOrderLaws property-checks antisymmetry, transitivity and
// totality over randomly generated paths via testing/quick.
func TestQuickTotalOrderLaws(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 5000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genPath(r))
			}
		},
	}
	// Agreement with the unpacked reference, and antisymmetry.
	if err := quick.Check(func(a, b Path) bool {
		c := Compare(a, b)
		return c == refCompare(a.Levels(), b.Levels()) && Compare(b, a) == -c
	}, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity.
	if err := quick.Check(func(a, b, c Path) bool {
		x, y, z := a, b, c
		// Sort the triple by Compare and require the chain to hold.
		ps := []Path{x, y, z}
		sort.Slice(ps, func(i, j int) bool { return Less(ps[i], ps[j]) })
		return Compare(ps[0], ps[1]) <= 0 && Compare(ps[1], ps[2]) <= 0 && Compare(ps[0], ps[2]) <= 0
	}, cfg); err != nil {
		t.Error(err)
	}
	// Totality: exactly one of <, ==, > holds.
	if err := quick.Check(func(a, b Path) bool {
		lt, gt := Less(a, b), Less(b, a)
		eq := Compare(a, b) == 0
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1
	}, cfg); err != nil {
		t.Error(err)
	}
	// Child/parent structure: p < p.Child(i) < p.Child(i+1), and the whole
	// Child(i) subtree precedes Child(i+1).
	if err := quick.Check(func(a, b Path) bool {
		i := uint64(len(a)) // arbitrary small index
		c0, c1 := a.Child(i), a.Child(i+1)
		deep := c0
		for d := 0; d < 3; d++ {
			deep = deep.Child(^uint64(0))
		}
		return Less(a, c0) && Less(c0, c1) && Less(deep, c1) && c0.Parent() == a
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestSortAgainstReference cross-checks a full sort of packed paths
// against sorting the unpacked sequences.
func TestSortAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ps := make([]Path, 64)
		for i := range ps {
			ps[i] = genPath(r)
		}
		ref := make([][]uint64, len(ps))
		for i, p := range ps {
			ref[i] = p.Levels()
		}
		sort.SliceStable(ps, func(i, j int) bool { return Less(ps[i], ps[j]) })
		sort.SliceStable(ref, func(i, j int) bool { return refCompare(ref[i], ref[j]) < 0 })
		for i := range ps {
			if refCompare(ps[i].Levels(), ref[i]) != 0 {
				t.Fatalf("trial %d: sorted order diverges from reference at %d: %v vs %v",
					trial, i, ps[i].Levels(), ref[i])
			}
		}
	}
}

func TestChildDepthPanics(t *testing.T) {
	deep := Root
	for d := 0; d < MaxDepth; d++ {
		deep = deep.Child(0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Child past MaxDepth did not panic")
		}
	}()
	deep.Child(0)
}
