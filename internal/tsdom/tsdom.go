// Package tsdom implements nested timestamp domains: the hierarchical
// path component that slots between a task's programmer timestamp and
// its dispatch tie-breakers in the unique-virtual-time total order.
//
// A flat Swarm timestamp names one slot in program order. Fork-join and
// recursive programs need to order work *within* a slot: a divide-and-
// conquer task forks subtasks that must appear to run inside the
// parent's position, each subtask recursively forking its own. Following
// DePa's order-maintenance-by-fork-structure idea, every task carries a
// fork vector — the sequence of fork indices on the path from its
// domain's root — and two tasks in the same timestamp slot order by the
// dag order of those vectors: a parent (a strict prefix) precedes all of
// its descendants, and sibling subtrees order by fork index, each
// subtree entirely before the next.
//
// The vector is packed into a fixed-width word sequence: one big-endian
// 64-bit word per fork level, stored in a Go string. The packing makes
// dag comparison a single lexicographic byte comparison (memcmp), with
// an O(1) fast path when either side is flat (the empty path) — flat
// programs, whose tasks all carry empty paths, pay one length check and
// keep their exact historical ordering. Strings are immutable and
// comparable, so paths can ride inside task descriptors and virtual
// times that are copied, hashed and compared by value everywhere in the
// machine.
package tsdom

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// LevelWidth is the packed byte width of one fork level.
const LevelWidth = 8

// MaxDepth bounds the fork depth a path may encode. The limit exists
// only to catch runaway recursion in guest programs (a task forking
// inside an unbounded loop); legitimate divide-and-conquer depth is
// logarithmic in the input.
const MaxDepth = 1 << 10

// Path is a packed fork vector: LevelWidth big-endian bytes per level.
// The zero value ("") is the flat path — the domain root, carried by
// every task of a non-forking program. Lexicographic string comparison
// on Path values is exactly dag order: prefix before extension, then
// fork-index order.
type Path string

// Root is the flat path.
const Root Path = ""

// IsRoot reports whether the path is flat (depth 0).
func (p Path) IsRoot() bool { return len(p) == 0 }

// Depth returns the number of fork levels.
func (p Path) Depth() int { return len(p) / LevelWidth }

// Valid reports whether the string has a whole number of packed levels.
func (p Path) Valid() bool { return len(p)%LevelWidth == 0 && p.Depth() <= MaxDepth }

// Child returns the path of the i-th forked subtask: p with level i
// appended. Children of one parent order by fork index, and every child
// (with its whole subtree) orders after the parent and before the next
// sibling.
func (p Path) Child(i uint64) Path {
	if p.Depth() >= MaxDepth {
		panic(fmt.Sprintf("tsdom: fork depth exceeds %d — runaway recursive Fork?", MaxDepth))
	}
	var lvl [LevelWidth]byte
	binary.BigEndian.PutUint64(lvl[:], i)
	return p + Path(lvl[:])
}

// Level returns the fork index at depth d (0-based). It panics when d is
// out of range, matching slice indexing.
func (p Path) Level(d int) uint64 {
	return binary.BigEndian.Uint64([]byte(p[d*LevelWidth : (d+1)*LevelWidth]))
}

// Levels unpacks the full fork vector. Allocates; diagnostic use only.
func (p Path) Levels() []uint64 {
	ls := make([]uint64, p.Depth())
	for d := range ls {
		ls[d] = p.Level(d)
	}
	return ls
}

// Parent returns the path with its last level removed; the root returns
// itself.
func (p Path) Parent() Path {
	if p.IsRoot() {
		return p
	}
	return p[:len(p)-LevelWidth]
}

// HasPrefix reports whether q is an ancestor-or-self of p in the fork
// tree.
func (p Path) HasPrefix(q Path) bool {
	return len(p) >= len(q) && p[:len(q)] == q
}

// Compare returns -1, 0 or +1 as p orders before, equal to, or after q
// in dag order. The fixed-width packing makes this a plain string
// comparison; the explicit empty checks are the flat fast path (both
// sides empty — the only case flat programs ever hit — decides on two
// length tests without touching bytes).
func Compare(p, q Path) int {
	if len(p) == 0 {
		if len(q) == 0 {
			return 0
		}
		return -1
	}
	if len(q) == 0 {
		return +1
	}
	return strings.Compare(string(p), string(q))
}

// Less reports whether p orders strictly before q in dag order.
func Less(p, q Path) bool { return Compare(p, q) < 0 }

// String renders the fork vector as dot-separated indices ("2.0.7");
// the root renders as "·".
func (p Path) String() string {
	if p.IsRoot() {
		return "·"
	}
	var b strings.Builder
	for d := 0; d < p.Depth(); d++ {
		if d > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", p.Level(d))
	}
	return b.String()
}

// FromLevels packs a fork vector; the inverse of Levels. Test and
// diagnostic helper.
func FromLevels(levels ...uint64) Path {
	p := Root
	for _, l := range levels {
		p = p.Child(l)
	}
	return p
}
