package tsdom

import (
	"testing"
)

// truncPath clips raw fuzz bytes to a whole number of packed levels,
// capped at MaxDepth, so every input decodes to a valid Path.
func truncPath(raw []byte) Path {
	n := len(raw) / LevelWidth
	if n > MaxDepth {
		n = MaxDepth
	}
	return Path(raw[:n*LevelWidth])
}

// FuzzPathOrder checks the packed comparison against the
// arbitrary-precision reference: unpack both paths to their fork-index
// sequences and compare lexicographically (prefix first). Any packing
// or fast-path bug that breaks dag order shows up as a disagreement.
func FuzzPathOrder(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte(FromLevels(0)), []byte(FromLevels(1)))
	f.Add([]byte(FromLevels(5)), []byte(FromLevels(5, 0)))
	f.Add([]byte(FromLevels(0, 99, 99)), []byte(FromLevels(1)))
	f.Add([]byte(FromLevels(^uint64(0))), []byte(FromLevels(^uint64(0), 0)))
	f.Add([]byte(FromLevels(255)), []byte(FromLevels(256)))
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}) // ragged raw bytes
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a, b := truncPath(rawA), truncPath(rawB)
		if !a.Valid() || !b.Valid() {
			t.Fatalf("truncPath produced invalid path: %q %q", a, b)
		}
		got := Compare(a, b)
		want := refCompare(a.Levels(), b.Levels())
		if got != want {
			t.Fatalf("Compare(%v, %v) = %d, reference = %d", a.Levels(), b.Levels(), got, want)
		}
		if back := Compare(b, a); back != -got {
			t.Fatalf("Compare not antisymmetric: %d vs %d", got, back)
		}
		if (got == 0) != (a == b) {
			t.Fatalf("Compare==0 disagrees with equality: %v %v", a.Levels(), b.Levels())
		}
		// Round-trip: repacking the unpacked levels reproduces the path.
		if FromLevels(a.Levels()...) != a {
			t.Fatalf("FromLevels(Levels()) round-trip failed for %q", a)
		}
		// Child strictly extends: a < a.Child(i) for any index drawn from
		// the input, and the child decodes back.
		if a.Depth() < MaxDepth && len(rawB) >= LevelWidth {
			idx := leUint64(rawB[:LevelWidth])
			c := a.Child(idx)
			if !Less(a, c) || c.Parent() != a || c.Level(c.Depth()-1) != idx {
				t.Fatalf("Child(%d) of %v broken", idx, a.Levels())
			}
		}
	})
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
