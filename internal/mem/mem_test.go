package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	m.Store(0x1000, 42)
	if got := m.Load(0x1000); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	if got := m.Load(0x1008); got != 0 {
		t.Fatalf("untouched word = %d, want 0", got)
	}
}

func TestMisalignedPanics(t *testing.T) {
	m := New()
	for _, fn := range []func(){
		func() { m.Load(0x1001) },
		func() { m.Store(0x1007, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on misaligned access")
				}
			}()
			fn()
		}()
	}
}

func TestSparsePages(t *testing.T) {
	m := New()
	m.Store(0, 1)
	m.Store(1<<40, 2)
	if m.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", m.Pages())
	}
	if m.Load(0) != 1 || m.Load(1<<40) != 2 {
		t.Fatal("cross-page values lost")
	}
}

// Property: Memory behaves exactly like a map[uint64]uint64 over aligned
// addresses.
func TestMemoryMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		ref := make(map[uint64]uint64)
		for i := 0; i < 2000; i++ {
			addr := (uint64(rng.Intn(1 << 14))) << WordShift
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				m.Store(addr, v)
				ref[addr] = v
			} else if m.Load(addr) != ref[addr] {
				return false
			}
		}
		for a, v := range ref {
			if m.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshot(t *testing.T) {
	m := New()
	m.Store(0x2000, 7)
	m.Store(0x2008, 0) // zero words omitted from snapshots
	s := m.Snapshot()
	if len(s) != 1 || s[0x2000] != 7 {
		t.Fatalf("Snapshot = %v", s)
	}
}

func TestLineGeometry(t *testing.T) {
	if Line(0) != 0 || Line(63) != 0 || Line(64) != 1 || Line(128) != 2 {
		t.Fatal("Line() wrong")
	}
}

func TestAllocatorAlignmentAndDisjointness(t *testing.T) {
	a := NewAllocator()
	seen := map[uint64]bool{}
	prevEnd := uint64(0)
	for i := 0; i < 100; i++ {
		n := uint64(i%17 + 1)
		addr := a.Alloc(n)
		if !WordAligned(addr) {
			t.Fatalf("Alloc returned misaligned %#x", addr)
		}
		if addr < prevEnd {
			t.Fatalf("overlapping allocation at %#x (prev end %#x)", addr, prevEnd)
		}
		prevEnd = addr + (n+7)&^uint64(7)
		if seen[addr] {
			t.Fatalf("duplicate address %#x", addr)
		}
		seen[addr] = true
	}
}

func TestAllocLineAligned(t *testing.T) {
	a := NewAllocator()
	a.Alloc(8) // misalign the break
	addr := a.AllocLineAligned(100)
	if addr%LineBytes != 0 {
		t.Fatalf("AllocLineAligned returned %#x", addr)
	}
	next := a.Alloc(8)
	if Line(next) == Line(addr+99) && next < addr+128 {
		t.Fatalf("next alloc %#x shares a line with the aligned region ending at %#x", next, addr+127)
	}
}

func TestQuarantineLifecycle(t *testing.T) {
	a := NewAllocator()
	addr := a.Alloc(64)
	a.Free(1, addr, 64)
	// Not yet recyclable.
	if got := a.Alloc(64); got == addr {
		t.Fatal("quarantined span recycled before release")
	}
	a.ReleaseQuarantine(1)
	if got := a.Alloc(64); got != addr {
		t.Fatalf("released span not recycled: got %#x want %#x", got, addr)
	}
}

func TestDropQuarantine(t *testing.T) {
	a := NewAllocator()
	addr := a.Alloc(64)
	a.Free(2, addr, 64)
	a.DropQuarantine(2)
	a.ReleaseQuarantine(2) // no-op
	if got := a.Alloc(64); got == addr {
		t.Fatal("dropped span was recycled")
	}
}

func TestZeroByteAlloc(t *testing.T) {
	a := NewAllocator()
	x := a.Alloc(0)
	y := a.Alloc(0)
	if x == y {
		t.Fatal("zero-byte allocations alias")
	}
}
