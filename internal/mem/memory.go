// Package mem implements the simulated flat physical memory that guest
// programs (Swarm tasks, baseline threads) operate on, plus the paper's
// idealized task-aware allocator (§5, "Idealized memory allocation").
//
// Swarm uses eager versioning: speculative writes go to memory in place and
// old values are saved in undo logs (§4.3), so a single flat image is the
// architectural *and* speculative state. Caches (internal/cache) are timing
// and conflict-filter metadata only; data always lives here.
package mem

import "fmt"

// Word and line geometry. Guest addresses are byte addresses; all guest
// accesses are 8-byte words; conflict detection is at 64-byte lines (§4.4).
const (
	WordBytes = 8
	LineBytes = 64
	WordShift = 3
	LineShift = 6
	pageShift = 16 // 64 KB pages
	pageWords = 1 << (pageShift - WordShift)
)

// Line returns the cache-line address (line number) containing addr.
func Line(addr uint64) uint64 { return addr >> LineShift }

// WordAligned reports whether addr is 8-byte aligned.
func WordAligned(addr uint64) bool { return addr&(WordBytes-1) == 0 }

// Memory is a sparse, page-granular 64-bit word memory. The zero value is
// an empty memory; pages materialize (zero-filled) on first touch.
type Memory struct {
	pages map[uint64][]uint64
	// last page cache: avoids a map lookup on the common sequential pattern.
	lastPageNum  uint64
	lastPage     []uint64
	lastPageInit bool
}

// New returns an empty Memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64][]uint64)}
}

func (m *Memory) page(addr uint64) []uint64 {
	pn := addr >> pageShift
	if m.lastPageInit && pn == m.lastPageNum {
		return m.lastPage
	}
	p, ok := m.pages[pn]
	if !ok {
		p = make([]uint64, pageWords)
		m.pages[pn] = p
	}
	m.lastPageNum, m.lastPage, m.lastPageInit = pn, p, true
	return p
}

// Load returns the 64-bit word at addr. addr must be word aligned.
func (m *Memory) Load(addr uint64) uint64 {
	if !WordAligned(addr) {
		panic(fmt.Sprintf("mem: misaligned load at %#x", addr))
	}
	return m.page(addr)[(addr>>WordShift)&(pageWords-1)]
}

// Store writes the 64-bit word at addr. addr must be word aligned.
func (m *Memory) Store(addr, val uint64) {
	if !WordAligned(addr) {
		panic(fmt.Sprintf("mem: misaligned store at %#x", addr))
	}
	m.page(addr)[(addr>>WordShift)&(pageWords-1)] = val
}

// Peek returns the 64-bit word at addr without mutating the memory: no
// page materialization and no last-page cache update. Unlike Load it is
// safe for concurrent readers while no writer runs — the native runtime
// (internal/rt) freezes the base memory during a phase and lets worker
// goroutines Peek it while buffering speculative writes elsewhere.
func (m *Memory) Peek(addr uint64) uint64 {
	if !WordAligned(addr) {
		panic(fmt.Sprintf("mem: misaligned load at %#x", addr))
	}
	p, ok := m.pages[addr>>pageShift]
	if !ok {
		return 0
	}
	return p[(addr>>WordShift)&(pageWords-1)]
}

// Pages returns the number of materialized pages (for tests/diagnostics).
func (m *Memory) Pages() int { return len(m.pages) }

// Snapshot copies the full live contents, for golden-state comparisons in
// tests. Only materialized pages are copied.
func (m *Memory) Snapshot() map[uint64]uint64 {
	s := make(map[uint64]uint64)
	for pn, p := range m.pages {
		base := pn << pageShift
		for i, w := range p {
			if w != 0 {
				s[base+uint64(i)<<WordShift] = w
			}
		}
	}
	return s
}
