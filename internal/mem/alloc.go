package mem

import "fmt"

// AllocCycles is the fixed cost the paper charges per allocator operation
// for every implementation, serial, software-parallel, and Swarm (§5).
const AllocCycles = 30

// heapBase leaves the low region unmapped so that a zero address is never a
// valid guest pointer (it doubles as "null" in guest data structures).
const heapBase = 1 << 20

// Allocator is the idealized task-aware guest allocator. Allocation bumps a
// pointer; Free defers the words to a quarantine that is only recycled once
// the freeing task commits (ReleaseQuarantine), so speculatively freed
// memory is never handed to another task — exactly the paper's idealization
// that avoids spurious allocator dependences.
type Allocator struct {
	brk        uint64
	quarantine map[uint64][]span // freeing task token -> spans
	freeSpans  []span
}

type span struct {
	addr  uint64
	bytes uint64
}

// NewAllocator returns an allocator whose heap starts above heapBase.
func NewAllocator() *Allocator {
	return &Allocator{brk: heapBase, quarantine: make(map[uint64][]span)}
}

// Alloc returns the word-aligned guest address of a fresh region of at
// least nBytes. Recycled spans are reused first-fit when they are exactly
// large enough; otherwise the break is bumped.
func (a *Allocator) Alloc(nBytes uint64) uint64 {
	if nBytes == 0 {
		nBytes = WordBytes
	}
	nBytes = (nBytes + WordBytes - 1) &^ uint64(WordBytes-1)
	for i, s := range a.freeSpans {
		if s.bytes >= nBytes {
			a.freeSpans = append(a.freeSpans[:i], a.freeSpans[i+1:]...)
			return s.addr
		}
	}
	addr := a.brk
	a.brk += nBytes
	return addr
}

// AllocLineAligned is Alloc but the result is 64-byte aligned, so distinct
// allocations never share a conflict-detection line.
func (a *Allocator) AllocLineAligned(nBytes uint64) uint64 {
	a.brk = (a.brk + LineBytes - 1) &^ uint64(LineBytes-1)
	return a.Alloc((nBytes + LineBytes - 1) &^ uint64(LineBytes-1))
}

// Free quarantines [addr, addr+nBytes) under the given task token. The
// span becomes reusable only after ReleaseQuarantine(token) — i.e. when the
// freeing task commits.
func (a *Allocator) Free(token, addr, nBytes uint64) {
	a.quarantine[token] = append(a.quarantine[token], span{addr, nBytes})
}

// ReleaseQuarantine recycles every span freed under token.
func (a *Allocator) ReleaseQuarantine(token uint64) {
	spans := a.quarantine[token]
	if len(spans) == 0 {
		return
	}
	delete(a.quarantine, token)
	a.freeSpans = append(a.freeSpans, spans...)
}

// DropQuarantine discards the frees done under token without recycling
// (used when the freeing task aborts: the frees never happened).
func (a *Allocator) DropQuarantine(token uint64) {
	delete(a.quarantine, token)
}

// Brk returns the current heap break (diagnostics).
func (a *Allocator) Brk() uint64 { return a.brk }

func (s span) String() string { return fmt.Sprintf("[%#x +%d]", s.addr, s.bytes) }
