package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMemoEvictsErrors is the regression test for the daemon-blocking bug:
// a failed computation must not be cached. Fail once, then succeed on
// retry — before the fix the first error was returned to every future
// caller of the key.
func TestMemoEvictsErrors(t *testing.T) {
	var c Memo[string, int]
	calls := 0
	fn := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 42, nil
	}

	if _, hit, err := c.Do("k", fn); err == nil || hit {
		t.Fatalf("first Do: got hit=%v err=%v, want a miss returning the transient error", hit, err)
	}
	v, hit, err := c.Do("k", fn)
	if err != nil || v != 42 || hit {
		t.Fatalf("retry Do: got (%d, hit=%v, %v), want a fresh successful computation (42, false, nil)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (fail, then recompute)", calls)
	}
	// The success is now cached: no third computation.
	v, hit, err = c.Do("k", fn)
	if err != nil || v != 42 || !hit {
		t.Fatalf("cached Do: got (%d, hit=%v, %v), want (42, true, nil)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times after cached hit, want still 2", calls)
	}
}

// TestMemoSingleflight proves the success-path dedup guarantee under
// concurrency: many callers, exactly one computation, everyone shares the
// value, and all but the computing caller observe a hit.
func TestMemoSingleflight(t *testing.T) {
	var c Memo[int, string]
	var computations, hits atomic.Int64
	const callers = 32

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, hit, err := c.Do(7, func() (string, error) {
				computations.Add(1)
				time.Sleep(time.Millisecond) // widen the in-flight window
				return "value", nil
			})
			if err != nil || v != "value" {
				t.Errorf("Do: got (%q, %v)", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computations.Load(); n != 1 {
		t.Fatalf("fn ran %d times across %d concurrent callers, want exactly 1", n, callers)
	}
	if h := hits.Load(); h != callers-1 {
		t.Fatalf("%d of %d callers observed a hit, want %d", h, callers, callers-1)
	}
}

// TestMemoSharedErrorThenRecompute: callers that joined a failing
// computation in flight all receive its error (singleflight), but the key
// is clean for the next caller.
func TestMemoSharedErrorThenRecompute(t *testing.T) {
	var c Memo[string, int]
	var computations atomic.Int64
	gate := make(chan struct{})
	boom := errors.New("boom")

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, _, errs[g] = c.Do("k", func() (int, error) {
				computations.Add(1)
				<-gate // hold every joiner in flight
				return 0, boom
			})
		}(g)
	}
	// Let the goroutines pile up on the entry, then release the failure.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if n := computations.Load(); n != 1 {
		t.Fatalf("failing fn ran %d times, want 1 (joiners share the in-flight error)", n)
	}
	for g, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want the shared in-flight error", g, err)
		}
	}
	v, hit, err := c.Do("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 || hit {
		t.Fatalf("post-error Do: got (%d, hit=%v, %v), want a fresh (9, false, nil)", v, hit, err)
	}
}

// TestRunnerServesAndDrains exercises the daemon execution path: jobs
// submitted over time run on bounded workers, and Drain completes every
// accepted job before returning.
func TestRunnerServesAndDrains(t *testing.T) {
	r := NewPool(4).Serve(16)
	var ran atomic.Int64
	const jobs = 24
	for i := 0; i < jobs; i++ {
		for {
			err := r.Submit(context.Background(), func(context.Context) {
				time.Sleep(time.Millisecond)
				ran.Add(1)
			})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("Submit: %v", err)
			}
			time.Sleep(time.Millisecond) // bounded queue: back off and retry
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n := ran.Load(); n != jobs {
		t.Fatalf("drained runner completed %d of %d accepted jobs", n, jobs)
	}
	if err := r.Submit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: err = %v, want ErrDraining", err)
	}
	if r.InFlight() != 0 || r.QueueDepth() != 0 {
		t.Fatalf("after Drain: inflight=%d queue=%d, want 0/0", r.InFlight(), r.QueueDepth())
	}
}

// TestRunnerQueueFull: admission control fails fast instead of blocking.
func TestRunnerQueueFull(t *testing.T) {
	r := NewPool(1).Serve(1)
	block := make(chan struct{})
	// Occupy the single worker, then fill the single queue slot.
	if err := r.Submit(context.Background(), func(context.Context) { <-block }); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	// The first job may still be queued; keep feeding until both the
	// worker and the slot are occupied, then expect ErrQueueFull.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := r.Submit(context.Background(), func(context.Context) { <-block })
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestRunnerDrainTimeout: a Drain bounded by a context reports expiry
// instead of hanging on a stuck job.
func TestRunnerDrainTimeout(t *testing.T) {
	r := NewPool(1).Serve(1)
	release := make(chan struct{})
	defer close(release)
	if err := r.Submit(context.Background(), func(context.Context) { <-release }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait for the job to start so Drain has something in flight.
	for r.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck job: err = %v, want deadline exceeded", err)
	}
}

// TestMemoDistinctKeys: different keys never share computations.
func TestMemoDistinctKeys(t *testing.T) {
	var c Memo[int, int]
	for k := 0; k < 4; k++ {
		v, hit, err := c.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || hit || v != k*k {
			t.Fatalf("Do(%d): got (%d, hit=%v, %v)", k, v, hit, err)
		}
	}
}
