package harness

import (
	"bytes"
	"testing"
)

// TestPhasedRunsDeterministicAcrossWorkers: the phased-workload sweep and
// its CSV are byte-identical for every host worker count — the
// phased-run determinism contract (same phases + same -workers schedule ⇒
// identical snapshots), extended across the pool.
func TestPhasedRunsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cores := []int{1, 4}
	render := func(workers int) string {
		s := NewSuite(ScaleTiny)
		s.SetWorkers(workers)
		pts, err := s.PhasedRuns(cores)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		PrintPhases(&buf, pts)
		if err := WritePhasesCSV(&buf, pts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	if seq == "" {
		t.Fatal("empty phased sweep")
	}
	for _, workers := range []int{2, 4} {
		if got := render(workers); got != seq {
			t.Fatalf("phases output differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestPhasedAppsEnumerates: the registry exposes at least incsssp as a
// session workload, and every phased app reports a coherent phase count.
func TestPhasedAppsEnumerates(t *testing.T) {
	s := NewSuite(ScaleTiny)
	apps := s.PhasedApps()
	if len(apps) == 0 {
		t.Fatal("no phased apps registered")
	}
	found := false
	for _, a := range apps {
		if a.Name() == "incsssp" {
			found = true
		}
		if a.PhaseCount() < 2 {
			t.Fatalf("%s: phase count %d, want >= 2", a.Name(), a.PhaseCount())
		}
	}
	if !found {
		t.Fatal("incsssp not enumerated as a phased app")
	}
}
