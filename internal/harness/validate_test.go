package harness

import (
	"strings"
	"testing"
)

// TestValidateFlags is the table-driven sweep over the three user-facing
// selector flags (-app, -mapper, -scale) plus the numeric knobs: invalid
// values must fail up front with the valid options in the message.
func TestValidateFlags(t *testing.T) {
	tests := []struct {
		flag    string
		value   string
		wantErr bool
		wantIn  []string // substrings the error (or success) must satisfy
	}{
		// -app
		{"app", "sssp", false, nil},
		{"app", "all", false, nil},
		{"app", "bfs,sssp, silo", false, nil},
		{"app", "ssp", true, []string{`unknown app "ssp"`, "sssp", "bfs", "silo"}},
		{"app", "", true, []string{"no app named", "sssp"}},
		{"app", ",,", true, []string{"no app named"}},
		{"app", "bfs,nope", true, []string{`unknown app "nope"`, "valid:"}},

		// -mapper
		{"mapper", "random", false, nil},
		{"mapper", "hint", false, nil},
		{"mapper", "stealing", false, nil},
		{"mapper", "roundrobin", false, nil},
		{"mapper", "", false, nil}, // default
		{"mapper", "rnd", true, []string{`unknown mapper "rnd"`, "random", "hint", "stealing", "roundrobin"}},

		// -scale
		{"scale", "tiny", false, nil},
		{"scale", "small", false, nil},
		{"scale", "medium", false, nil},
		{"scale", "large", false, nil},
		{"scale", "huge", true, []string{`unknown scale "huge"`, "tiny", "small", "medium", "large"}},

		// -backend
		{"backend", "", false, nil}, // default simulator
		{"backend", "sim", false, nil},
		{"backend", "rt", false, nil},
		{"backend", "rt-conservative", false, nil},
		{"backend", "native", true, []string{`unknown backend "native"`, "sim", "rt", "rt-conservative"}},
		{"backend", "RT", true, []string{`unknown backend "RT"`, "valid:"}},
	}
	for _, tc := range tests {
		var err error
		switch tc.flag {
		case "app":
			_, err = ResolveApps(tc.value)
		case "mapper":
			err = ValidateMapper(tc.value)
		case "scale":
			_, err = ValidateScale(tc.value)
		case "backend":
			err = ValidateBackend(tc.value)
		}
		if (err != nil) != tc.wantErr {
			t.Errorf("-%s=%q: err = %v, wantErr = %v", tc.flag, tc.value, err, tc.wantErr)
			continue
		}
		for _, want := range tc.wantIn {
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Errorf("-%s=%q: error %q does not mention %q", tc.flag, tc.value, err, want)
			}
		}
	}
}

// TestValidatorMessagesSorted pins the EXACT error text: option lists in
// validator errors are alphabetical (registries stay in semantic order —
// suite order for apps, default-first for mappers and backends — but a
// user scanning an error for a typo wants the alphabet, and goldenizing
// the text keeps every new app/backend/mapper registration honest).
func TestValidatorMessagesSorted(t *testing.T) {
	const appList = "astar, bfs, color, des, dsssp, incsssp, kcore, msf, msort, setcover, silo, sssp, stream, treebuild"
	tests := []struct {
		name string
		err  error
		want string
	}{
		{"app", func() error { _, err := ResolveApps("nope"); return err }(),
			`unknown app "nope" (valid: ` + appList + `; a comma list; or all)`},
		{"app-empty", func() error { _, err := ResolveApps(""); return err }(),
			`no app named (valid: ` + appList + `; a comma list; or all)`},
		{"mapper", ValidateMapper("rnd"),
			`unknown mapper "rnd" (valid: hint, random, roundrobin, stealing)`},
		{"backend", ValidateBackend("native"),
			`unknown backend "native" (valid: rt, rt-conservative, sim)`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil {
				t.Fatal("want error")
			}
			if got := tc.err.Error(); got != tc.want {
				t.Fatalf("error text:\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

func TestResolveAppsOrder(t *testing.T) {
	names, err := ResolveApps("silo, bfs")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "silo" || names[1] != "bfs" {
		t.Fatalf("ResolveApps preserved order wrongly: %v", names)
	}
}

func TestValidateCores(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16, 64} {
		if err := ValidateCores(n); err != nil {
			t.Errorf("ValidateCores(%d): %v", n, err)
		}
	}
	for _, n := range []int{0, -1, 5, 6, 7, 9, 63} {
		err := ValidateCores(n)
		if err == nil {
			t.Errorf("ValidateCores(%d): want error", n)
		} else if !strings.Contains(err.Error(), "multiple of 4") {
			t.Errorf("ValidateCores(%d): error %q does not name the valid counts", n, err)
		}
	}
}

func TestValidateSimWorkers(t *testing.T) {
	for _, n := range []int{0, 1, 2, 8} {
		if err := ValidateSimWorkers(n); err != nil {
			t.Errorf("ValidateSimWorkers(%d): %v", n, err)
		}
	}
	if err := ValidateSimWorkers(-1); err == nil {
		t.Error("ValidateSimWorkers(-1): want error")
	}
}
