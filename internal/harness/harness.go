// Package harness runs the paper's experiments: it drives the benchmark
// suite across machine sizes and configurations and produces the data
// behind every table and figure in the evaluation (§6), formatted as the
// same rows/series the paper reports.
//
// Sweeps are scheduled by a host-side worker pool (Pool): every (app,
// cores, config) simulation is independent, so the harness fans them out
// over goroutines and collects results by index. Output is byte-identical
// for any worker count; shared points (serial baselines, default-config
// runs) are computed once through deduplicating caches.
package harness

import (
	"fmt"
	"math"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/oracle"
)

// Scale selects input sizes; it now lives in bench next to the app
// registry (each registered app maps a Scale to input parameters).
type Scale = bench.Scale

const (
	ScaleTiny   = bench.ScaleTiny
	ScaleSmall  = bench.ScaleSmall
	ScaleMedium = bench.ScaleMedium
	ScaleLarge  = bench.ScaleLarge
)

// ParseScale maps a -scale flag value to a Scale.
func ParseScale(name string) (Scale, error) { return bench.ParseScale(name) }

// Suite is every registered benchmark at a given scale, in registry
// order. Its sweep methods are safe for the suite's own internal
// parallelism but a Suite is not meant to be driven from multiple
// goroutines at once.
type Suite struct {
	Scale      Scale
	Benchmarks []bench.Benchmark

	pool *Pool

	// mapperName, when set, overrides the task-mapping policy of every
	// Swarm configuration the suite builds (see SetMapper).
	mapperName string

	// simWorkers, when > 1, shards every Swarm machine the suite builds
	// across that many simulator goroutines (see SetSimWorkers).
	simWorkers int

	// backendName, when set, selects the execution engine of every Swarm
	// run the suite builds (see SetBackend).
	backendName string

	// Deduplicating caches shared by concurrent sweep workers.
	serialCycles Memo[appCoresKey, uint64]     // serial baselines
	defaultRuns  Memo[appCoresKey, core.Stats] // default-config Swarm runs
	silos        Memo[siloKey, *bench.Silo]    // Fig 13 inputs
}

type appCoresKey struct {
	app   string
	cores int
}

type siloKey struct{ warehouses, txns int }

// NewSuite builds the suite by enumerating the bench registry: every
// registered app, constructed at the given scale, in registry order. New
// apps appear in every sweep, table and CSV without touching the harness.
// The suite starts sequential; see SetWorkers.
func NewSuite(s Scale) *Suite {
	return &Suite{Scale: s, Benchmarks: bench.NewSuite(s), pool: NewPool(1)}
}

// SetWorkers sets how many simulations the suite runs concurrently on the
// host (n <= 0 selects runtime.NumCPU, n == 1 is strictly sequential).
// Results are identical for every worker count.
func (s *Suite) SetWorkers(n int) { s.pool.SetWorkers(n) }

// Workers returns the suite's host-parallelism.
func (s *Suite) Workers() int { return s.pool.Workers() }

// SetProgress installs a per-task progress observer on the scheduler.
func (s *Suite) SetProgress(fn ProgressFunc) { s.pool.SetProgress(fn) }

// SetMapper sets the task-mapping policy every Swarm run of the suite uses
// ("" or "random" keeps the paper's uniform-random placement). Call before
// any sweep: the deduplicating run caches key on (app, cores) only.
func (s *Suite) SetMapper(name string) { s.mapperName = name }

// SetSimWorkers sets the tile-parallel shard count of every Swarm machine
// the suite builds (core.Config.SimWorkers; 0 or 1 keeps the
// single-threaded simulator). Orthogonal to SetWorkers, which fans whole
// simulations out across sweep points: SimWorkers parallelizes inside one
// machine, and results are bit-identical for every value. Call before any
// sweep: the deduplicating run caches key on (app, cores) only.
func (s *Suite) SetSimWorkers(n int) { s.simWorkers = n }

// SetBackend selects the execution engine of every Swarm run the suite
// builds ("" or "sim" keeps the cycle-level simulator; see
// core.BackendNames). Note that cycle-based metrics are all zero under
// the native backends, so sweeps that chart cycles are only meaningful
// on the simulator. Call before any sweep: the deduplicating run caches
// key on (app, cores) only.
func (s *Suite) SetBackend(name string) { s.backendName = name }

// config returns the suite's Swarm machine configuration for a core count:
// Table 3 defaults plus the suite-wide mapper, simworkers and backend
// overrides.
func (s *Suite) config(cores int) core.Config {
	cfg := core.DefaultConfig(cores)
	if s.mapperName != "" {
		cfg.Mapper = s.mapperName
	}
	cfg.SimWorkers = s.simWorkers
	cfg.Backend = s.backendName
	return cfg
}

// Serial returns serial cycles for an app on an nCores-sized machine,
// computed at most once per (app, cores) across all concurrent workers.
func (s *Suite) Serial(b bench.Benchmark, nCores int) (uint64, error) {
	cyc, _, err := s.serialCycles.Do(appCoresKey{b.Name(), nCores}, func() (uint64, error) {
		return b.RunSerial(nCores)
	})
	return cyc, err
}

// defaultRun returns the Swarm run of b under the unmodified default
// configuration, computed at most once per (app, cores): the scaling
// series, Table 5's baseline variant and every sweep's reference point
// all share these runs.
func (s *Suite) defaultRun(b bench.Benchmark, nCores int) (core.Stats, error) {
	st, _, err := s.defaultRuns.Do(appCoresKey{b.Name(), nCores}, func() (core.Stats, error) {
		return b.RunSwarm(s.config(nCores))
	})
	return st, err
}

// silo returns the Fig 13 benchmark instance for a warehouse count,
// built at most once.
func (s *Suite) silo(warehouses, txns int) *bench.Silo {
	b, _, _ := s.silos.Do(siloKey{warehouses, txns}, func() (*bench.Silo, error) {
		return bench.NewSilo(warehouses, txns, 7), nil
	})
	return b
}

func gmean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// ratio divides two cycle counts, mapping a zero denominator to 0 instead
// of NaN/Inf: degenerate runs (an app whose measured region is empty) must
// emit well-formed numbers into every CSV and table.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// ---------------------------------------------------------------- Table 1 --

// Table1Row is one application's column in Table 1.
type Table1Row struct {
	App            string
	MaxParallelism float64
	Window1K       float64
	Window64       float64
	Instrs         oracle.Stat
	Reads          oracle.Stat
	Writes         oracle.Stat
	MaxTLS         float64
}

// Table1 runs the oracle analysis for every benchmark in parallel.
// maxTasks bounds the profiled task count (0 = all).
func (s *Suite) Table1(maxTasks int) []Table1Row {
	rows := make([]Table1Row, len(s.Benchmarks))
	s.pool.Run(len(s.Benchmarks),
		func(i int) string { return "table1 " + s.Benchmarks[i].Name() },
		func(i int) error {
			b := s.Benchmarks[i]
			p := oracle.ProfileTasks(b.SwarmApp().Build, maxTasks)
			tls := oracle.ProfileSerial(b.SerialApp().Build, maxTasks)
			rows[i] = Table1Row{
				App:            b.Name(),
				MaxParallelism: p.MaxParallelism(),
				Window1K:       p.WindowParallelism(1024),
				Window64:       p.WindowParallelism(64),
				Instrs:         p.InstrStats(),
				Reads:          p.ReadStats(),
				Writes:         p.WriteStats(),
				MaxTLS:         tls.MaxParallelism(),
			}
			return nil
		})
	return rows
}

// --------------------------------------------------------------- Fig 11/12 --

// ScalingPoint is one (app, cores) measurement.
type ScalingPoint struct {
	Cores          int
	SwarmCycles    uint64
	SerialCycles   uint64
	ParallelCycles uint64 // 0 if no software-parallel version
	Stats          core.Stats
}

// ScalingResult is an app's scaling series (Fig 11/12).
type ScalingResult struct {
	App    string
	Points []ScalingPoint
}

// SelfRelative returns Fig 11's series: speedup over 1-core Swarm.
func (r ScalingResult) SelfRelative() []float64 {
	out := make([]float64, len(r.Points))
	if len(r.Points) == 0 {
		return out
	}
	base := float64(r.Points[0].SwarmCycles) // first point is the base
	for i, p := range r.Points {
		out[i] = ratio(base, float64(p.SwarmCycles))
	}
	return out
}

// VsSerial returns Fig 12's Swarm series: speedup over the tuned serial
// version on a same-sized machine.
func (r ScalingResult) VsSerial() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = ratio(float64(p.SerialCycles), float64(p.SwarmCycles))
	}
	return out
}

// ParallelVsSerial returns Fig 12's software-parallel series.
func (r ScalingResult) ParallelVsSerial() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		if p.ParallelCycles > 0 {
			out[i] = ratio(float64(p.SerialCycles), float64(p.ParallelCycles))
		}
	}
	return out
}

// scalingPoint measures one (app, cores) cell: Swarm, serial and (when it
// exists) the software-parallel version.
func (s *Suite) scalingPoint(b bench.Benchmark, nc int) (ScalingPoint, error) {
	serial, err := s.Serial(b, nc)
	if err != nil {
		return ScalingPoint{}, fmt.Errorf("%s serial @%dc: %w", b.Name(), nc, err)
	}
	st, err := s.defaultRun(b, nc)
	if err != nil {
		return ScalingPoint{}, fmt.Errorf("%s swarm @%dc: %w", b.Name(), nc, err)
	}
	pt := ScalingPoint{Cores: nc, SwarmCycles: st.Cycles, SerialCycles: serial, Stats: st}
	if b.HasParallel() {
		par, err := b.RunParallel(nc)
		if err != nil {
			return ScalingPoint{}, fmt.Errorf("%s parallel @%dc: %w", b.Name(), nc, err)
		}
		pt.ParallelCycles = par
	}
	return pt, nil
}

// Scaling runs Swarm, serial and software-parallel versions across core
// counts (Fig 11, Fig 12, and the underlying data of Fig 14), fanning the
// points out over the pool.
func (s *Suite) Scaling(b bench.Benchmark, coreCounts []int) (ScalingResult, error) {
	res := ScalingResult{App: b.Name(), Points: make([]ScalingPoint, len(coreCounts))}
	err := s.pool.Run(len(coreCounts),
		func(i int) string { return fmt.Sprintf("%s@%dc", b.Name(), coreCounts[i]) },
		func(i int) error {
			pt, err := s.scalingPoint(b, coreCounts[i])
			res.Points[i] = pt
			return err
		})
	return res, err
}

// ScalingAll measures the full (benchmark x cores) grid concurrently and
// returns one ScalingResult per benchmark, in suite order.
func (s *Suite) ScalingAll(coreCounts []int) ([]ScalingResult, error) {
	nb, nc := len(s.Benchmarks), len(coreCounts)
	results := make([]ScalingResult, nb)
	for i, b := range s.Benchmarks {
		results[i] = ScalingResult{App: b.Name(), Points: make([]ScalingPoint, nc)}
	}
	err := s.pool.Run(nb*nc,
		func(i int) string {
			return fmt.Sprintf("%s@%dc", s.Benchmarks[i/nc].Name(), coreCounts[i%nc])
		},
		func(i int) error {
			pt, err := s.scalingPoint(s.Benchmarks[i/nc], coreCounts[i%nc])
			results[i/nc].Points[i%nc] = pt
			return err
		})
	return results, err
}

// ----------------------------------------------------------------- Fig 13 --

// SiloWarehousePoint is one Fig 13 measurement.
type SiloWarehousePoint struct {
	Warehouses      int
	SwarmSpeedup    float64 // vs serial, at Cores
	ParallelSpeedup float64
}

// Fig13 sweeps TPC-C warehouse counts at a fixed core count, one worker
// per warehouse count. The swept app is located via its "fig13" registry
// tag; the warehouse knob is silo-specific, so a retag fails loudly here
// instead of silently sweeping the wrong app.
func (s *Suite) Fig13(warehouses []int, cores, txns int) ([]SiloWarehousePoint, error) {
	var tagged []string
	for _, meta := range bench.Apps() {
		if meta.InFigure("fig13") {
			tagged = append(tagged, meta.Name)
		}
	}
	if len(tagged) != 1 || tagged[0] != "silo" {
		return nil, fmt.Errorf("fig13: registry tags %v, but the warehouse sweep is silo-specific", tagged)
	}
	out := make([]SiloWarehousePoint, len(warehouses))
	err := s.pool.Run(len(warehouses),
		func(i int) string { return fmt.Sprintf("silo wh=%d", warehouses[i]) },
		func(i int) error {
			b := s.silo(warehouses[i], txns)
			serial, err := b.RunSerial(cores)
			if err != nil {
				return err
			}
			st, err := b.RunSwarm(s.config(cores))
			if err != nil {
				return err
			}
			par, err := b.RunParallel(cores)
			if err != nil {
				return err
			}
			out[i] = SiloWarehousePoint{
				Warehouses:      warehouses[i],
				SwarmSpeedup:    ratio(float64(serial), float64(st.Cycles)),
				ParallelSpeedup: ratio(float64(serial), float64(par)),
			}
			return nil
		})
	return out, err
}

// ----------------------------------------------------------------- Table 5 --

// Table5Row reports gmean speedups under progressive idealizations.
type Table5Row struct {
	Config       string
	OneCore      float64 // 1c vs 1c-baseline
	SixtyFour    float64 // Nc vs 1c-baseline
	SelfRelative float64 // Nc vs 1c same idealization
}

// Table5 applies the paper's idealizations: unbounded queues, then a
// zero-cycle memory system, at 1 core and at maxCores. Every
// (variant, benchmark) pair runs concurrently; the baseline variant
// shares the suite's cached default-config runs.
func (s *Suite) Table5(maxCores int) ([]Table5Row, error) {
	type variant struct {
		name  string
		tweak func(*core.Config)
	}
	variants := []variant{
		{"Swarm baseline", func(c *core.Config) {}},
		{"+ unbounded queues", func(c *core.Config) { c.UnboundedQueues = true }},
		{"+ 0-cycle mem system", func(c *core.Config) {
			c.UnboundedQueues = true
			c.Cache.ZeroLatency = true
		}},
	}
	nb := len(s.Benchmarks)
	type pairResult struct{ cycles1, cyclesN uint64 }
	cells := make([]pairResult, len(variants)*nb)
	err := s.pool.Run(len(cells),
		func(i int) string {
			return fmt.Sprintf("table5[%s] %s", variants[i/nb].name, s.Benchmarks[i%nb].Name())
		},
		func(i int) error {
			v, b := variants[i/nb], s.Benchmarks[i%nb]
			run := func(cores int) (core.Stats, error) {
				if i/nb == 0 {
					// The baseline variant's tweak is a no-op: share the
					// cached default-config runs.
					return s.defaultRun(b, cores)
				}
				cfg := s.config(cores)
				v.tweak(&cfg)
				return b.RunSwarm(cfg)
			}
			st1, err := run(1)
			if err != nil {
				return fmt.Errorf("%s %s 1c: %w", b.Name(), v.name, err)
			}
			stN, err := run(maxCores)
			if err != nil {
				return fmt.Errorf("%s %s %dc: %w", b.Name(), v.name, maxCores, err)
			}
			cells[i] = pairResult{st1.Cycles, stN.Cycles}
			return nil
		})
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, 0, len(variants))
	for vi, v := range variants {
		var sp1, spN, spSelf []float64
		for bi := range s.Benchmarks {
			c := cells[vi*nb+bi]
			b1 := float64(cells[bi].cycles1) // variant 0 = baseline
			sp1 = append(sp1, ratio(b1, float64(c.cycles1)))
			spN = append(spN, ratio(b1, float64(c.cyclesN)))
			spSelf = append(spSelf, ratio(float64(c.cycles1), float64(c.cyclesN)))
		}
		rows = append(rows, Table5Row{
			Config:       v.name,
			OneCore:      gmean(sp1),
			SixtyFour:    gmean(spN),
			SelfRelative: gmean(spSelf),
		})
	}
	return rows, nil
}

// ----------------------------------------------------------- Fig 17 sweeps --

// SweepPoint is one sensitivity measurement: performance relative to the
// default configuration.
type SweepPoint struct {
	Label string
	Perf  []float64 // per app, relative to default config
}

// sweepVariant is one sensitivity-sweep configuration point.
type sweepVariant struct {
	label  string // SweepPoint label
	errTag string // config description for error messages
	tweak  func(*core.Config)
}

// sweep measures every (variant, benchmark) cell concurrently and reports
// performance relative to the (cached) default configuration.
func (s *Suite) sweep(cores int, variants []sweepVariant) ([]SweepPoint, error) {
	nb := len(s.Benchmarks)
	cycles := make([]uint64, len(variants)*nb)
	// Task layout: the first nb tasks are the shared baseline runs, the
	// rest the sweep grid; the deduplicating cache keeps baselines from
	// being simulated twice even when another sweep already ran them.
	err := s.pool.Run(nb+len(variants)*nb,
		func(i int) string {
			if i < nb {
				return fmt.Sprintf("base %s@%dc", s.Benchmarks[i].Name(), cores)
			}
			i -= nb
			return fmt.Sprintf("%s %s", variants[i/nb].errTag, s.Benchmarks[i%nb].Name())
		},
		func(i int) error {
			if i < nb {
				_, err := s.defaultRun(s.Benchmarks[i], cores)
				return err
			}
			i -= nb
			v, b := variants[i/nb], s.Benchmarks[i%nb]
			cfg := s.config(cores)
			v.tweak(&cfg)
			st, err := b.RunSwarm(cfg)
			if err != nil {
				return fmt.Errorf("%s %s: %w", b.Name(), v.errTag, err)
			}
			cycles[i] = st.Cycles
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(variants))
	for vi, v := range variants {
		pt := SweepPoint{Label: v.label}
		for bi, b := range s.Benchmarks {
			base, _ := s.defaultRun(b, cores) // cached above
			pt.Perf = append(pt.Perf, ratio(float64(base.Cycles), float64(cycles[vi*nb+bi])))
		}
		out[vi] = pt
	}
	return out, nil
}

// CommitQueueSweep reproduces Fig 17(a): performance vs aggregate commit
// queue entries (0 = unbounded).
func (s *Suite) CommitQueueSweep(cores int, totals []int) ([]SweepPoint, error) {
	variants := make([]sweepVariant, len(totals))
	for i, tot := range totals {
		v := sweepVariant{
			label:  fmt.Sprintf("%d", tot),
			errTag: fmt.Sprintf("cq=%d", tot),
			tweak: func(cfg *core.Config) {
				if tot == 0 {
					// Unbounded commit queues only: emulate with a huge cap.
					cfg.CommitQPerCore = 1 << 20
				} else {
					cfg.CommitQPerCore = tot / cfg.Cores()
					if cfg.CommitQPerCore < 1 {
						cfg.CommitQPerCore = 1
					}
				}
			},
		}
		if tot == 0 {
			v.label = "INF"
		}
		variants[i] = v
	}
	return s.sweep(cores, variants)
}

// BloomSweep reproduces Fig 17(b): performance vs signature configuration.
func (s *Suite) BloomSweep(cores int, cfgs []bloom.Config) ([]SweepPoint, error) {
	variants := make([]sweepVariant, len(cfgs))
	for i, bc := range cfgs {
		variants[i] = sweepVariant{
			label:  bc.String(),
			errTag: fmt.Sprintf("bloom=%v", bc),
			tweak:  func(cfg *core.Config) { cfg.Bloom = bc },
		}
	}
	return s.sweep(cores, variants)
}

// GVTSweep reproduces the §6.4 GVT-period sensitivity study.
func (s *Suite) GVTSweep(cores int, periods []uint64) ([]SweepPoint, error) {
	variants := make([]sweepVariant, len(periods))
	for i, p := range periods {
		variants[i] = sweepVariant{
			label:  fmt.Sprintf("%d", p),
			errTag: fmt.Sprintf("gvt=%d", p),
			tweak:  func(cfg *core.Config) { cfg.GVTPeriod = p },
		}
	}
	return s.sweep(cores, variants)
}

// CanaryStudy reproduces the §6.3 canary-precision comparison: per-line vs
// per-set canary virtual times (global check reduction and speedup), one
// worker per benchmark.
func (s *Suite) CanaryStudy(cores int) (checkReduction, gmeanSpeedup float64, err error) {
	type cell struct {
		red    float64
		hasRed bool
		sp     float64
	}
	cs := make([]cell, len(s.Benchmarks))
	err = s.pool.Run(len(s.Benchmarks),
		func(i int) string { return "canary " + s.Benchmarks[i].Name() },
		func(i int) error {
			b := s.Benchmarks[i]
			st, err := s.defaultRun(b, cores)
			if err != nil {
				return err
			}
			cfgP := s.config(cores)
			cfgP.Cache.CanaryPerLine = true
			stP, err := b.RunSwarm(cfgP)
			if err != nil {
				return err
			}
			c := cell{sp: ratio(float64(st.Cycles), float64(stP.Cycles))}
			if g := float64(st.Cache.GlobalChecks); g > 0 {
				c.red = 1 - float64(stP.Cache.GlobalChecks)/g
				c.hasRed = true
			}
			cs[i] = c
			return nil
		})
	if err != nil {
		return 0, 0, err
	}
	var reds, sps []float64
	for _, c := range cs {
		if c.hasRed {
			reds = append(reds, c.red)
		}
		sps = append(sps, c.sp)
	}
	var sum float64
	for _, r := range reds {
		sum += r
	}
	return ratio(sum, float64(len(reds))), gmean(sps), nil
}

// ----------------------------------------------------------- mapper sweep --

// MapperPoint is one (mapper, app) cell of the task-mapping policy sweep:
// simulated performance plus the placement diagnostics (queue imbalance,
// NoC traffic, steals) that explain it.
type MapperPoint struct {
	Mapper    string
	App       string
	Cycles    uint64
	Speedup   float64 // vs the random mapper on the same app (1.0 = equal)
	Aborts    uint64
	Stolen    uint64
	NoCBytes  uint64  // chip-wide injected bytes, all classes
	Imbalance float64 // per-tile task queue occupancy, max/mean
}

// MapperSweep measures every (mapper, app) cell at a fixed core count,
// fanning the grid over the pool. Points come back grouped by mapper in
// the order given, apps in suite order; speedups are relative to the
// "random" policy (which should be part of mappers).
func (s *Suite) MapperSweep(cores int, mappers []string) ([]MapperPoint, error) {
	nb := len(s.Benchmarks)
	pts := make([]MapperPoint, len(mappers)*nb)
	err := s.pool.Run(len(pts),
		func(i int) string {
			return fmt.Sprintf("mapper=%s %s@%dc", mappers[i/nb], s.Benchmarks[i%nb].Name(), cores)
		},
		func(i int) error {
			name, b := mappers[i/nb], s.Benchmarks[i%nb]
			cfg := core.DefaultConfig(cores)
			cfg.Mapper = name
			cfg.SimWorkers = s.simWorkers
			cfg.Backend = s.backendName
			st, err := b.RunSwarm(cfg)
			if err != nil {
				return fmt.Errorf("%s mapper=%s: %w", b.Name(), name, err)
			}
			pts[i] = MapperPoint{
				Mapper:    name,
				App:       b.Name(),
				Cycles:    st.Cycles,
				Aborts:    st.Aborts,
				Stolen:    st.StolenTasks,
				NoCBytes:  st.TotalTrafficBytes(),
				Imbalance: st.TaskQOccImbalance(),
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	// Speedups vs the random cells (0 when random was not swept).
	randomCycles := map[string]uint64{}
	for _, p := range pts {
		if p.Mapper == "random" {
			randomCycles[p.App] = p.Cycles
		}
	}
	for i := range pts {
		pts[i].Speedup = ratio(float64(randomCycles[pts[i].App]), float64(pts[i].Cycles))
	}
	return pts, nil
}

// ------------------------------------------------------------ phased runs --

// PhasePoint is one (app, cores, phase) cell of the phased-workload sweep:
// the per-phase statistics of a session-API benchmark.
type PhasePoint struct {
	App   string
	Cores int
	Stats core.PhaseStats
}

// PhasedApps returns the suite's session-API (multi-phase) benchmarks, in
// suite order.
func (s *Suite) PhasedApps() []bench.Phased {
	var out []bench.Phased
	for _, b := range s.Benchmarks {
		if pb, ok := b.(bench.Phased); ok {
			out = append(out, pb)
		}
	}
	return out
}

// PhasedRuns executes every phased benchmark across the core counts,
// fanning (app, cores) sessions over the pool, and returns per-phase rows
// grouped by app in suite order, then cores, then phase. The mapper
// override applies as in every other sweep.
func (s *Suite) PhasedRuns(coreCounts []int) ([]PhasePoint, error) {
	apps := s.PhasedApps()
	nc := len(coreCounts)
	cells := make([][]core.PhaseStats, len(apps)*nc)
	err := s.pool.Run(len(cells),
		func(i int) string {
			return fmt.Sprintf("phases %s@%dc", apps[i/nc].Name(), coreCounts[i%nc])
		},
		func(i int) error {
			b, cores := apps[i/nc], coreCounts[i%nc]
			phases, err := b.RunSwarmPhases(s.config(cores))
			if err != nil {
				return fmt.Errorf("%s phases @%dc: %w", b.Name(), cores, err)
			}
			cells[i] = phases
			return nil
		})
	if err != nil {
		return nil, err
	}
	var pts []PhasePoint
	for i, phases := range cells {
		for _, ph := range phases {
			pts = append(pts, PhasePoint{App: apps[i/nc].Name(), Cores: coreCounts[i%nc], Stats: ph})
		}
	}
	return pts, nil
}

// Fig18 runs the Fig 18 case study (the app tagged "fig18" in the
// registry — astar) with a per-tile tracer on a 16-core, 4-tile machine
// (500-cycle samples).
func (s *Suite) Fig18() (core.Stats, error) {
	var tagged []bench.Benchmark
	for _, b := range s.Benchmarks {
		if meta, ok := bench.Lookup(b.Name()); ok && meta.InFigure("fig18") {
			tagged = append(tagged, b)
		}
	}
	if len(tagged) != 1 {
		return core.Stats{}, fmt.Errorf("fig18: want exactly one app tagged \"fig18\", have %d", len(tagged))
	}
	cfg := s.config(16)
	cfg.TraceInterval = 500
	return tagged[0].RunSwarm(cfg)
}
