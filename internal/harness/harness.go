// Package harness runs the paper's experiments: it drives the benchmark
// suite across machine sizes and configurations and produces the data
// behind every table and figure in the evaluation (§6), formatted as the
// same rows/series the paper reports.
package harness

import (
	"fmt"
	"math"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/oracle"
)

// Scale selects input sizes: Tiny for unit tests, Small for the bench
// harness, Medium for cmd/experiments runs (minutes).
type Scale int

const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScaleMedium
)

func (s Scale) String() string {
	return [...]string{"tiny", "small", "medium"}[s]
}

// Suite is the six-benchmark suite at a given scale.
type Suite struct {
	Scale      Scale
	Benchmarks []bench.Benchmark

	// caches keyed by app name and cores.
	serialCycles map[string]map[int]uint64
	silos        map[int]*bench.Silo // by warehouse count (Fig 13)
}

// NewSuite builds the suite. Inputs shrink with scale but keep the
// structural properties that drive each benchmark's behaviour (deep mesh,
// road network, skewed Kronecker graph, chained adder array, TPC-C mix).
func NewSuite(s Scale) *Suite {
	var bs []bench.Benchmark
	switch s {
	case ScaleTiny:
		bs = []bench.Benchmark{
			bench.NewBFS(40, 10),
			bench.NewSSSP(16, 16, 3),
			bench.NewAStar(18, 18, 4),
			bench.NewMSF(7, 16, 5),
			bench.NewDES(3, 8, 2, 6),
			bench.NewSilo(2, 60, 7),
		}
	case ScaleSmall:
		bs = []bench.Benchmark{
			bench.NewBFS(100, 12),
			bench.NewSSSP(36, 36, 3),
			bench.NewAStar(40, 40, 4),
			bench.NewMSF(9, 16, 5),
			bench.NewDES(6, 8, 4, 6),
			bench.NewSilo(4, 200, 7),
		}
	default: // ScaleMedium
		bs = []bench.Benchmark{
			bench.NewBFS(400, 18),
			bench.NewSSSP(80, 80, 3),
			bench.NewAStar(90, 90, 4),
			bench.NewMSF(10, 24, 5),
			bench.NewDES(16, 8, 6, 6),
			bench.NewSilo(4, 800, 7),
		}
	}
	return &Suite{
		Scale:        s,
		Benchmarks:   bs,
		serialCycles: make(map[string]map[int]uint64),
		silos:        make(map[int]*bench.Silo),
	}
}

// Serial returns (cached) serial cycles for an app on an nCores-sized
// machine.
func (s *Suite) Serial(b bench.Benchmark, nCores int) (uint64, error) {
	m, ok := s.serialCycles[b.Name()]
	if !ok {
		m = make(map[int]uint64)
		s.serialCycles[b.Name()] = m
	}
	if c, ok := m[nCores]; ok {
		return c, nil
	}
	c, err := b.RunSerial(nCores)
	if err != nil {
		return 0, err
	}
	m[nCores] = c
	return c, nil
}

func gmean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// ---------------------------------------------------------------- Table 1 --

// Table1Row is one application's column in Table 1.
type Table1Row struct {
	App            string
	MaxParallelism float64
	Window1K       float64
	Window64       float64
	Instrs         oracle.Stat
	Reads          oracle.Stat
	Writes         oracle.Stat
	MaxTLS         float64
}

// Table1 runs the oracle analysis for every benchmark. maxTasks bounds the
// profiled task count (0 = all).
func (s *Suite) Table1(maxTasks int) []Table1Row {
	rows := make([]Table1Row, 0, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		p := oracle.ProfileTasks(b.SwarmApp().Build, maxTasks)
		tls := oracle.ProfileSerial(b.SerialApp().Build, maxTasks)
		rows = append(rows, Table1Row{
			App:            b.Name(),
			MaxParallelism: p.MaxParallelism(),
			Window1K:       p.WindowParallelism(1024),
			Window64:       p.WindowParallelism(64),
			Instrs:         p.InstrStats(),
			Reads:          p.ReadStats(),
			Writes:         p.WriteStats(),
			MaxTLS:         tls.MaxParallelism(),
		})
	}
	return rows
}

// --------------------------------------------------------------- Fig 11/12 --

// ScalingPoint is one (app, cores) measurement.
type ScalingPoint struct {
	Cores          int
	SwarmCycles    uint64
	SerialCycles   uint64
	ParallelCycles uint64 // 0 if no software-parallel version
	Stats          core.Stats
}

// ScalingResult is an app's scaling series (Fig 11/12).
type ScalingResult struct {
	App    string
	Points []ScalingPoint
}

// SelfRelative returns Fig 11's series: speedup over 1-core Swarm.
func (r ScalingResult) SelfRelative() []float64 {
	out := make([]float64, len(r.Points))
	base := float64(r.Points[0].SwarmCycles)
	if r.Points[0].Cores != 1 {
		base = float64(r.Points[0].SwarmCycles) // first point is the base
	}
	for i, p := range r.Points {
		out[i] = base / float64(p.SwarmCycles)
	}
	return out
}

// VsSerial returns Fig 12's Swarm series: speedup over the tuned serial
// version on a same-sized machine.
func (r ScalingResult) VsSerial() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = float64(p.SerialCycles) / float64(p.SwarmCycles)
	}
	return out
}

// ParallelVsSerial returns Fig 12's software-parallel series.
func (r ScalingResult) ParallelVsSerial() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		if p.ParallelCycles > 0 {
			out[i] = float64(p.SerialCycles) / float64(p.ParallelCycles)
		}
	}
	return out
}

// Scaling runs Swarm, serial and software-parallel versions across core
// counts (Fig 11, Fig 12, and the underlying data of Fig 14).
func (s *Suite) Scaling(b bench.Benchmark, coreCounts []int) (ScalingResult, error) {
	res := ScalingResult{App: b.Name()}
	for _, nc := range coreCounts {
		serial, err := s.Serial(b, nc)
		if err != nil {
			return res, fmt.Errorf("%s serial @%dc: %w", b.Name(), nc, err)
		}
		st, err := b.RunSwarm(core.DefaultConfig(nc))
		if err != nil {
			return res, fmt.Errorf("%s swarm @%dc: %w", b.Name(), nc, err)
		}
		pt := ScalingPoint{Cores: nc, SwarmCycles: st.Cycles, SerialCycles: serial, Stats: st}
		if b.HasParallel() {
			par, err := b.RunParallel(nc)
			if err != nil {
				return res, fmt.Errorf("%s parallel @%dc: %w", b.Name(), nc, err)
			}
			pt.ParallelCycles = par
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// ----------------------------------------------------------------- Fig 13 --

// SiloWarehousePoint is one Fig 13 measurement.
type SiloWarehousePoint struct {
	Warehouses      int
	SwarmSpeedup    float64 // vs serial, at Cores
	ParallelSpeedup float64
}

// Fig13 sweeps TPC-C warehouse counts at a fixed core count.
func (s *Suite) Fig13(warehouses []int, cores, txns int) ([]SiloWarehousePoint, error) {
	var out []SiloWarehousePoint
	for _, wh := range warehouses {
		b, ok := s.silos[wh]
		if !ok {
			b = bench.NewSilo(wh, txns, 7)
			s.silos[wh] = b
		}
		serial, err := b.RunSerial(cores)
		if err != nil {
			return nil, err
		}
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			return nil, err
		}
		par, err := b.RunParallel(cores)
		if err != nil {
			return nil, err
		}
		out = append(out, SiloWarehousePoint{
			Warehouses:      wh,
			SwarmSpeedup:    float64(serial) / float64(st.Cycles),
			ParallelSpeedup: float64(serial) / float64(par),
		})
	}
	return out, nil
}

// ----------------------------------------------------------------- Table 5 --

// Table5Row reports gmean speedups under progressive idealizations.
type Table5Row struct {
	Config       string
	OneCore      float64 // 1c vs 1c-baseline
	SixtyFour    float64 // Nc vs 1c-baseline
	SelfRelative float64 // Nc vs 1c same idealization
}

// Table5 applies the paper's idealizations: unbounded queues, then a
// zero-cycle memory system, at 1 core and at maxCores.
func (s *Suite) Table5(maxCores int) ([]Table5Row, error) {
	type variant struct {
		name  string
		tweak func(*core.Config)
	}
	variants := []variant{
		{"Swarm baseline", func(c *core.Config) {}},
		{"+ unbounded queues", func(c *core.Config) { c.UnboundedQueues = true }},
		{"+ 0-cycle mem system", func(c *core.Config) {
			c.UnboundedQueues = true
			c.Cache.ZeroLatency = true
		}},
	}
	base1 := make(map[string]uint64)
	rows := make([]Table5Row, 0, len(variants))
	for vi, v := range variants {
		var sp1, spN, spSelf []float64
		for _, b := range s.Benchmarks {
			cfg1 := core.DefaultConfig(1)
			v.tweak(&cfg1)
			st1, err := b.RunSwarm(cfg1)
			if err != nil {
				return nil, fmt.Errorf("%s %s 1c: %w", b.Name(), v.name, err)
			}
			cfgN := core.DefaultConfig(maxCores)
			v.tweak(&cfgN)
			stN, err := b.RunSwarm(cfgN)
			if err != nil {
				return nil, fmt.Errorf("%s %s %dc: %w", b.Name(), v.name, maxCores, err)
			}
			if vi == 0 {
				base1[b.Name()] = st1.Cycles
			}
			b1 := float64(base1[b.Name()])
			sp1 = append(sp1, b1/float64(st1.Cycles))
			spN = append(spN, b1/float64(stN.Cycles))
			spSelf = append(spSelf, float64(st1.Cycles)/float64(stN.Cycles))
		}
		rows = append(rows, Table5Row{
			Config:       v.name,
			OneCore:      gmean(sp1),
			SixtyFour:    gmean(spN),
			SelfRelative: gmean(spSelf),
		})
	}
	return rows, nil
}

// ----------------------------------------------------------- Fig 17 sweeps --

// SweepPoint is one sensitivity measurement: performance relative to the
// default configuration.
type SweepPoint struct {
	Label string
	Perf  []float64 // per app, relative to default config
}

// CommitQueueSweep reproduces Fig 17(a): performance vs aggregate commit
// queue entries (0 = unbounded).
func (s *Suite) CommitQueueSweep(cores int, totals []int) ([]SweepPoint, error) {
	base := make([]uint64, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			return nil, err
		}
		base[i] = st.Cycles
	}
	var out []SweepPoint
	for _, tot := range totals {
		pt := SweepPoint{Label: fmt.Sprintf("%d", tot)}
		if tot == 0 {
			pt.Label = "INF"
		}
		for i, b := range s.Benchmarks {
			cfg := core.DefaultConfig(cores)
			if tot == 0 {
				// Unbounded commit queues only: emulate with a huge cap.
				cfg.CommitQPerCore = 1 << 20
			} else {
				cfg.CommitQPerCore = tot / cfg.Cores()
				if cfg.CommitQPerCore < 1 {
					cfg.CommitQPerCore = 1
				}
			}
			st, err := b.RunSwarm(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s cq=%d: %w", b.Name(), tot, err)
			}
			pt.Perf = append(pt.Perf, float64(base[i])/float64(st.Cycles))
		}
		out = append(out, pt)
	}
	return out, nil
}

// BloomSweep reproduces Fig 17(b): performance vs signature configuration.
func (s *Suite) BloomSweep(cores int, cfgs []bloom.Config) ([]SweepPoint, error) {
	base := make([]uint64, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			return nil, err
		}
		base[i] = st.Cycles
	}
	var out []SweepPoint
	for _, bc := range cfgs {
		pt := SweepPoint{Label: bc.String()}
		for i, b := range s.Benchmarks {
			cfg := core.DefaultConfig(cores)
			cfg.Bloom = bc
			st, err := b.RunSwarm(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s bloom=%v: %w", b.Name(), bc, err)
			}
			pt.Perf = append(pt.Perf, float64(base[i])/float64(st.Cycles))
		}
		out = append(out, pt)
	}
	return out, nil
}

// GVTSweep reproduces the §6.4 GVT-period sensitivity study.
func (s *Suite) GVTSweep(cores int, periods []uint64) ([]SweepPoint, error) {
	base := make([]uint64, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			return nil, err
		}
		base[i] = st.Cycles
	}
	var out []SweepPoint
	for _, p := range periods {
		pt := SweepPoint{Label: fmt.Sprintf("%d", p)}
		for i, b := range s.Benchmarks {
			cfg := core.DefaultConfig(cores)
			cfg.GVTPeriod = p
			st, err := b.RunSwarm(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s gvt=%d: %w", b.Name(), p, err)
			}
			pt.Perf = append(pt.Perf, float64(base[i])/float64(st.Cycles))
		}
		out = append(out, pt)
	}
	return out, nil
}

// CanaryStudy reproduces the §6.3 canary-precision comparison: per-line vs
// per-set canary virtual times (global check reduction and speedup).
func (s *Suite) CanaryStudy(cores int) (checkReduction, gmeanSpeedup float64, err error) {
	var reds, sps []float64
	for _, b := range s.Benchmarks {
		cfg := core.DefaultConfig(cores)
		st, err := b.RunSwarm(cfg)
		if err != nil {
			return 0, 0, err
		}
		cfgP := core.DefaultConfig(cores)
		cfgP.Cache.CanaryPerLine = true
		stP, err := b.RunSwarm(cfgP)
		if err != nil {
			return 0, 0, err
		}
		if g := float64(st.Cache.GlobalChecks); g > 0 {
			reds = append(reds, 1-float64(stP.Cache.GlobalChecks)/g)
		}
		sps = append(sps, float64(st.Cycles)/float64(stP.Cycles))
	}
	var sum float64
	for _, r := range reds {
		sum += r
	}
	return sum / float64(len(reds)), gmean(sps), nil
}

// Fig18 runs the astar case study with a per-tile tracer on a 16-core,
// 4-tile machine (500-cycle samples).
func (s *Suite) Fig18() (core.Stats, error) {
	var astar bench.Benchmark
	for _, b := range s.Benchmarks {
		if b.Name() == "astar" {
			astar = b
		}
	}
	cfg := core.DefaultConfig(16)
	cfg.TraceInterval = 500
	return astar.RunSwarm(cfg)
}
