package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool fans independent simulations out over host goroutines. Every
// simulation is a pure function of its inputs — the sim engine is strictly
// sequential and seeded — so running sweep points concurrently and
// collecting results by index (never by completion order) yields output
// byte-identical to a sequential sweep.
type Pool struct {
	workers  int
	progress ProgressFunc
}

// ProgressFunc observes scheduler progress: done of total tasks have
// finished, label names the task that just completed, and eta estimates
// the remaining wall-clock time from the average task duration so far.
// Calls are serialized within one Run — from worker goroutines under an
// internal lock on the concurrent path, or from the caller's goroutine
// on the sequential path — but carry no ordering guarantee across
// concurrent Run invocations. It must be fast and must not call back
// into the pool.
type ProgressFunc func(done, total int, label string, eta time.Duration)

// NewPool returns a scheduler running up to workers simulations
// concurrently. workers <= 0 selects runtime.NumCPU().
func NewPool(workers int) *Pool {
	p := &Pool{}
	p.SetWorkers(workers)
	return p
}

// SetWorkers changes the concurrency limit. n <= 0 selects
// runtime.NumCPU(); n == 1 runs strictly sequentially on the caller's
// goroutine.
func (p *Pool) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p.workers = n
}

// Workers returns the concurrency limit.
func (p *Pool) Workers() int { return p.workers }

// SetProgress installs a progress observer (nil disables reporting).
func (p *Pool) SetProgress(fn ProgressFunc) { p.progress = fn }

// Run executes fn(0) … fn(n-1) with at most p.workers running at once and
// waits for all of them. fn(i) must deposit its result in slot i of a
// caller-owned slice; Run itself never communicates results, so
// completion order cannot leak into them.
//
// The returned error is the lowest-index error. All n tasks run even if
// one fails (failures are rare — verification errors — and finishing the
// batch keeps the reported error independent of completion order); only
// the strictly sequential workers==1 path stops at the first failure,
// where determinism is free. label may be nil.
func (p *Pool) Run(n int, label func(int) string, fn func(int) error) error {
	if p.workers <= 0 {
		// A zero-value Pool{} (NewPool and SetWorkers both map n <= 0 to
		// NumCPU) would otherwise spawn zero workers and return nil having
		// silently run nothing.
		return fmt.Errorf("harness: pool has %d workers (use NewPool or SetWorkers before Run)", p.workers)
	}
	if n <= 0 {
		return nil
	}
	name := func(i int) string {
		if label == nil {
			return ""
		}
		return label(i)
	}
	start := time.Now()
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			p.report(i+1, n, name(i), start)
		}
		return nil
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		errs = make([]error, n)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := fn(i)
				mu.Lock()
				errs[i] = err
				done++
				p.report(done, n, name(i), start)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// report invokes the progress observer with an ETA extrapolated from the
// mean task duration so far.
func (p *Pool) report(done, total int, label string, start time.Time) {
	if p.progress == nil {
		return
	}
	var eta time.Duration
	if done > 0 && done < total {
		eta = time.Since(start) / time.Duration(done) * time.Duration(total-done)
	}
	p.progress(done, total, label, eta)
}

// Memo is a deduplicating, concurrency-safe cache: the first caller for a
// key computes the value while later callers for the same key block on it
// and share the result, so two workers never redundantly simulate the
// same sweep point and a daemon never runs identical submissions twice.
//
// Errors are not cached. A failed computation is handed to every caller
// that joined it in flight (singleflight semantics), but the entry is
// evicted before those callers wake, so the next Do for the key
// recomputes. Caching the error instead would poison the key forever —
// tolerable in a one-shot sweep that aborts anyway, fatal in a
// long-running service where one transient failure would be replayed to
// every future client of that configuration.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{} // closed once val/err are set
	val  V
	err  error
}

// Do returns the value for key, computing it with fn at most once per
// non-erroring attempt. hit reports whether this caller shared another
// caller's computation (cached or joined in flight) instead of running fn.
func (c *Memo[K, V]) Do(key K, fn func() (V, error)) (val V, hit bool, err error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, true, e.err
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	e.val, e.err = fn()
	if e.err != nil {
		c.mu.Lock()
		// Evict before waking waiters so no later Do can observe the
		// failed entry; guard against the (impossible today) case of the
		// slot having been replaced.
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, false, e.err
}

// Runner errors.
var (
	// ErrQueueFull is returned by Submit when the pending-job queue is at
	// capacity; callers should shed load (a daemon answers 503).
	ErrQueueFull = errors.New("harness: job queue full")
	// ErrDraining is returned by Submit after Drain has begun.
	ErrDraining = errors.New("harness: runner is draining")
)

// Runner is the pool's long-lived service mode: where Run executes one
// fixed batch, a Runner accepts jobs indefinitely — the execution engine
// of a simulation daemon. Jobs queue in a bounded channel (admission
// control happens at Submit, not by blocking HTTP handlers) and run on
// the pool's worker count. Shutdown is graceful by construction: Drain
// stops admission and waits until every accepted job — queued or in
// flight — has finished.
type Runner struct {
	jobs     chan runnerJob
	wg       sync.WaitGroup
	inFlight atomic.Int64

	mu       sync.Mutex
	draining bool
}

type runnerJob struct {
	ctx context.Context
	fn  func(context.Context)
}

// Serve starts p.Workers() worker goroutines consuming a queue of at most
// queueDepth pending jobs and returns the Runner accepting them.
func (p *Pool) Serve(queueDepth int) *Runner {
	if queueDepth < 0 {
		queueDepth = 0
	}
	r := &Runner{jobs: make(chan runnerJob, queueDepth)}
	workers := p.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	for w := 0; w < workers; w++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for j := range r.jobs {
				r.inFlight.Add(1)
				j.fn(j.ctx)
				r.inFlight.Add(-1)
			}
		}()
	}
	return r
}

// Submit enqueues fn for execution. fn receives ctx and is responsible
// for honoring its cancellation (a cancelled-before-start job should
// check ctx and bail). Submit never blocks: it fails fast with
// ErrQueueFull or ErrDraining so callers control their own backpressure.
func (r *Runner) Submit(ctx context.Context, fn func(context.Context)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return ErrDraining
	}
	select {
	case r.jobs <- runnerJob{ctx: ctx, fn: fn}:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth returns the number of accepted jobs not yet started.
func (r *Runner) QueueDepth() int { return len(r.jobs) }

// InFlight returns the number of jobs currently executing.
func (r *Runner) InFlight() int { return int(r.inFlight.Load()) }

// Drain stops admission and waits for every accepted job to finish, or
// for ctx to expire (in-flight simulations keep their goroutines in that
// case; the process is expected to exit). Drain is idempotent.
func (r *Runner) Drain(ctx context.Context) error {
	r.mu.Lock()
	if !r.draining {
		r.draining = true
		close(r.jobs)
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
