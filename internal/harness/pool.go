package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool fans independent simulations out over host goroutines. Every
// simulation is a pure function of its inputs — the sim engine is strictly
// sequential and seeded — so running sweep points concurrently and
// collecting results by index (never by completion order) yields output
// byte-identical to a sequential sweep.
type Pool struct {
	workers  int
	progress ProgressFunc
}

// ProgressFunc observes scheduler progress: done of total tasks have
// finished, label names the task that just completed, and eta estimates
// the remaining wall-clock time from the average task duration so far.
// Calls are serialized within one Run — from worker goroutines under an
// internal lock on the concurrent path, or from the caller's goroutine
// on the sequential path — but carry no ordering guarantee across
// concurrent Run invocations. It must be fast and must not call back
// into the pool.
type ProgressFunc func(done, total int, label string, eta time.Duration)

// NewPool returns a scheduler running up to workers simulations
// concurrently. workers <= 0 selects runtime.NumCPU().
func NewPool(workers int) *Pool {
	p := &Pool{}
	p.SetWorkers(workers)
	return p
}

// SetWorkers changes the concurrency limit. n <= 0 selects
// runtime.NumCPU(); n == 1 runs strictly sequentially on the caller's
// goroutine.
func (p *Pool) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p.workers = n
}

// Workers returns the concurrency limit.
func (p *Pool) Workers() int { return p.workers }

// SetProgress installs a progress observer (nil disables reporting).
func (p *Pool) SetProgress(fn ProgressFunc) { p.progress = fn }

// Run executes fn(0) … fn(n-1) with at most p.workers running at once and
// waits for all of them. fn(i) must deposit its result in slot i of a
// caller-owned slice; Run itself never communicates results, so
// completion order cannot leak into them.
//
// The returned error is the lowest-index error. All n tasks run even if
// one fails (failures are rare — verification errors — and finishing the
// batch keeps the reported error independent of completion order); only
// the strictly sequential workers==1 path stops at the first failure,
// where determinism is free. label may be nil.
func (p *Pool) Run(n int, label func(int) string, fn func(int) error) error {
	if p.workers <= 0 {
		// A zero-value Pool{} (NewPool and SetWorkers both map n <= 0 to
		// NumCPU) would otherwise spawn zero workers and return nil having
		// silently run nothing.
		return fmt.Errorf("harness: pool has %d workers (use NewPool or SetWorkers before Run)", p.workers)
	}
	if n <= 0 {
		return nil
	}
	name := func(i int) string {
		if label == nil {
			return ""
		}
		return label(i)
	}
	start := time.Now()
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			p.report(i+1, n, name(i), start)
		}
		return nil
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		errs = make([]error, n)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := fn(i)
				mu.Lock()
				errs[i] = err
				done++
				p.report(done, n, name(i), start)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// report invokes the progress observer with an ETA extrapolated from the
// mean task duration so far.
func (p *Pool) report(done, total int, label string, start time.Time) {
	if p.progress == nil {
		return
	}
	var eta time.Duration
	if done > 0 && done < total {
		eta = time.Since(start) / time.Duration(done) * time.Duration(total-done)
	}
	p.progress(done, total, label, eta)
}

// memo is a deduplicating, concurrency-safe cache: the first caller for a
// key computes the value while later callers for the same key block on it
// and share the result, so two workers never redundantly simulate the
// same sweep point.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// do returns the cached value for key, computing it with fn exactly once.
func (c *memo[K, V]) do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = new(memoEntry[V])
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}
