package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
)

func TestCSVExports(t *testing.T) {
	s := tinySuite()
	r, err := s.Scaling(s.Benchmarks[1], []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	results := []ScalingResult{r}

	var buf bytes.Buffer
	if err := WriteScalingCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("scaling csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "sssp,1,") {
		t.Fatalf("unexpected first row %q", lines[1])
	}

	buf.Reset()
	if err := WriteBreakdownCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "committed") {
		t.Fatal("breakdown csv missing header")
	}

	buf.Reset()
	if err := WriteTrafficCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 2 {
		t.Fatal("traffic csv should have header + one app row")
	}

	buf.Reset()
	st, err := s.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceCSV(&buf, st); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(rows) < 1+4 { // header + >= 1 sample x 4 tiles
		t.Fatalf("trace csv too short: %d rows", len(rows))
	}

	buf.Reset()
	if err := WriteTable1CSV(&buf, s.Table1(200)); err != nil {
		t.Fatal(err)
	}
	if got, want := len(strings.Split(strings.TrimSpace(buf.String()), "\n")), 1+len(bench.AppNames()); got != want {
		t.Fatalf("table1 csv has %d rows, want header + %d registered apps", got, want-1)
	}
}

// TestCSVNoNaNOnEmptyApp runs an app whose Setup enqueues nothing — the
// measured region is empty and the serial/parallel baselines report zero
// cycles — and requires every exporter to emit finite numbers: a zero
// denominator must become 0 in the CSV, never NaN or Inf.
func TestCSVNoNaNOnEmptyApp(t *testing.T) {
	m, err := core.NewMachine(core.DefaultConfig(4), &core.Program{Setup: func(m *core.Machine) {}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits != 0 {
		t.Fatalf("empty app committed %d tasks", st.Commits)
	}

	// One real (empty) run plus a fully zeroed degenerate point, covering
	// both the zero-serial and zero-total-cycle denominators; a pointless
	// result covers the zero-points case.
	results := []ScalingResult{
		{
			App: "empty",
			Points: []ScalingPoint{
				{Cores: 4, SwarmCycles: st.Cycles, SerialCycles: 0, ParallelCycles: 0, Stats: st},
				{Cores: 8, SwarmCycles: 0, SerialCycles: 0, ParallelCycles: 0, Stats: core.Stats{}},
			},
		},
		{App: "pointless"},
	}

	var buf bytes.Buffer
	for name, write := range map[string]func() error{
		"scaling":   func() error { return WriteScalingCSV(&buf, results) },
		"breakdown": func() error { return WriteBreakdownCSV(&buf, results) },
		"traffic":   func() error { return WriteTrafficCSV(&buf, results) },
	} {
		buf.Reset()
		if err := write(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Fatalf("%s csv emitted NaN/Inf for an empty app:\n%s", name, out)
		}
	}
}

// TestStatsCSVFormat pins the single-run CSV format shared by
// `swarmsim -csv` and swarmd's GET /jobs/{id}/csv: the header's column
// count matches every row, a real run round-trips with the app name and
// mapper in the right columns, and WriteStatsCSV is exactly header+row.
// CI diffs daemon output against the CLI byte for byte; this test is the
// package-local statement of the same contract.
func TestStatsCSVFormat(t *testing.T) {
	cfg := core.DefaultConfig(4)
	b, err := bench.New("bfs", bench.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.RunSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}

	row := StatsCSVRow("bfs", st)
	hcols := strings.Split(StatsCSVHeader, ",")
	rcols := strings.Split(row, ",")
	if len(hcols) != len(rcols) {
		t.Fatalf("header has %d columns, row has %d:\n%s\n%s", len(hcols), len(rcols), StatsCSVHeader, row)
	}
	if rcols[0] != "bfs" || rcols[1] != "4" {
		t.Fatalf("app/cores columns: %q", rcols[:2])
	}
	if got := rcols[len(rcols)-4]; got != cfg.Mapper {
		t.Fatalf("mapper column = %q, want %q", got, cfg.Mapper)
	}
	// The trailing backend columns: a simulator run names itself and
	// leaves the native-runtime metrics (wall_ns, retries) zero.
	if got := rcols[len(rcols)-3]; got != "sim" {
		t.Fatalf("backend column = %q, want %q", got, "sim")
	}
	if rcols[len(rcols)-2] != "0" || rcols[len(rcols)-1] != "0" {
		t.Fatalf("wall_ns/retries columns = %q, want zero under the simulator", rcols[len(rcols)-2:])
	}
	if rcols[2] != fmt.Sprint(st.Cycles) || rcols[3] != fmt.Sprint(st.Commits) {
		t.Fatalf("cycles/commits columns: %q, stats %d/%d", rcols[2:4], st.Cycles, st.Commits)
	}
	if strings.Contains(row, "NaN") || strings.Contains(row, "Inf") {
		t.Fatalf("row has non-finite fields: %s", row)
	}

	var buf bytes.Buffer
	if err := WriteStatsCSV(&buf, "bfs", st); err != nil {
		t.Fatal(err)
	}
	if want := StatsCSVHeader + "\n" + row + "\n"; buf.String() != want {
		t.Fatalf("WriteStatsCSV:\n got %q\nwant %q", buf.String(), want)
	}
}

// TestMapperCSV covers the mapper-sweep exporter's shape.
func TestMapperCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []MapperPoint{
		{Mapper: "random", App: "bfs", Cycles: 100, Speedup: 1.0, Aborts: 3, NoCBytes: 500},
		{Mapper: "hint", App: "bfs", Cycles: 90, Speedup: 1.111, Aborts: 2, NoCBytes: 350, Stolen: 0, Imbalance: 1.5},
	}
	if err := WriteMapperCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(pts) {
		t.Fatalf("mapper csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "hint,bfs,90,1.111,") {
		t.Fatalf("unexpected row %q", lines[2])
	}
}
