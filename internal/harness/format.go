package harness

import (
	"fmt"
	"io"
	"strings"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/noc"
)

// PrintTable1 formats Table 1 the way the paper lays it out.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Maximum achievable parallelism and task characteristics\n")
	fmt.Fprintf(w, "%-22s", "Application")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s", r.App)
	}
	fmt.Fprintln(w)
	line := func(label string, f func(Table1Row) string) {
		fmt.Fprintf(w, "%-22s", label)
		for _, r := range rows {
			fmt.Fprintf(w, "%10s", f(r))
		}
		fmt.Fprintln(w)
	}
	line("Max parallelism", func(r Table1Row) string { return fmt.Sprintf("%.0fx", r.MaxParallelism) })
	line("Parallelism w=1K", func(r Table1Row) string { return fmt.Sprintf("%.0fx", r.Window1K) })
	line("Parallelism w=64", func(r Table1Row) string { return fmt.Sprintf("%.0fx", r.Window64) })
	line("Instrs mean", func(r Table1Row) string { return fmt.Sprintf("%.0f", r.Instrs.Mean) })
	line("Instrs 90th", func(r Table1Row) string { return fmt.Sprintf("%d", r.Instrs.P90) })
	line("Reads mean", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.Reads.Mean) })
	line("Reads 90th", func(r Table1Row) string { return fmt.Sprintf("%d", r.Reads.P90) })
	line("Writes mean", func(r Table1Row) string { return fmt.Sprintf("%.2f", r.Writes.Mean) })
	line("Writes 90th", func(r Table1Row) string { return fmt.Sprintf("%d", r.Writes.P90) })
	line("Max TLS parallelism", func(r Table1Row) string { return fmt.Sprintf("%.2fx", r.MaxTLS) })
}

// PrintTable2 formats the hardware cost table for a configuration.
func PrintTable2(w io.Writer, cfg core.Config) {
	fmt.Fprintf(w, "Table 2: Task unit structure sizes and estimated areas (per tile)\n")
	fmt.Fprintf(w, "%-24s %8s %12s %10s %12s\n", "Structure", "Entries", "Entry size", "Size", "Est. area")
	for _, r := range cfg.CostModel() {
		fmt.Fprintf(w, "%-24s %8d %12s %9.2fKB %9.3fmm2\n", r.Name, r.Entries, r.EntryDesc, r.SizeKB, r.AreaMM2)
	}
	perTile, perChip := cfg.TotalAreaMM2()
	fmt.Fprintf(w, "Total: %.2fmm2 per tile, %.1fmm2 per %d-tile chip\n", perTile, perChip, cfg.Tiles)
}

// PrintScaling formats Fig 11 + Fig 12 series for one application.
func PrintScaling(w io.Writer, r ScalingResult) {
	fmt.Fprintf(w, "%s:\n", r.App)
	fmt.Fprintf(w, "  %-28s", "cores")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%9d", p.Cores)
	}
	fmt.Fprintln(w)
	series := func(label string, vals []float64) {
		fmt.Fprintf(w, "  %-28s", label)
		for _, v := range vals {
			if v == 0 {
				fmt.Fprintf(w, "%9s", "-")
			} else {
				fmt.Fprintf(w, "%8.1fx", v)
			}
		}
		fmt.Fprintln(w)
	}
	series("Fig11 self-relative", r.SelfRelative())
	series("Fig12 Swarm vs serial", r.VsSerial())
	series("Fig12 SW-parallel vs serial", r.ParallelVsSerial())
}

// PrintFig13 formats the warehouse sweep.
func PrintFig13(w io.Writer, pts []SiloWarehousePoint, cores int) {
	fmt.Fprintf(w, "Fig 13: silo speedup vs TPC-C warehouses (%d cores)\n", cores)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "warehouses", "Swarm", "SW-only")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12d %11.1fx %11.1fx\n", p.Warehouses, p.SwarmSpeedup, p.ParallelSpeedup)
	}
}

// PrintFig14 formats the aggregate core-cycle breakdown for one app across
// core counts (normalized to the 1-core total, like the paper).
func PrintFig14(w io.Writer, app string, points []ScalingPoint) {
	fmt.Fprintf(w, "%s: aggregate core cycles (normalized to 1-core total)\n", app)
	fmt.Fprintf(w, "  %-8s %10s %10s %10s %10s %10s\n", "cores", "committed", "aborted", "spill", "stall", "total")
	var base float64
	for i, p := range points {
		st := p.Stats
		tot := float64(st.TotalCoreCycles())
		if i == 0 {
			base = tot
		}
		n := func(v uint64) string { return fmt.Sprintf("%.3f", float64(v)/base) }
		fmt.Fprintf(w, "  %-8d %10s %10s %10s %10s %10s\n", p.Cores,
			n(st.CommittedCycles), n(st.AbortedCycles), n(st.SpillCycles), n(st.StallCycles), n(st.TotalCoreCycles()))
	}
}

// PrintFig15 formats average queue occupancies.
func PrintFig15(w io.Writer, results []ScalingResult) {
	fmt.Fprintf(w, "Fig 15: average queue occupancies (largest machine)\n")
	fmt.Fprintf(w, "%-8s %12s %12s\n", "app", "task queue", "commit q")
	for _, r := range results {
		st := r.Points[len(r.Points)-1].Stats
		fmt.Fprintf(w, "%-8s %12.0f %12.0f\n", r.App, st.AvgTaskQueueOcc, st.AvgCommitQueueOcc)
	}
}

// PrintFig16 formats per-tile NoC injection rates by class.
func PrintFig16(w io.Writer, results []ScalingResult) {
	fmt.Fprintf(w, "Fig 16: NoC injection rate per tile (GB/s at 2GHz, largest machine)\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %10s\n", "app", "mem", "enqueue", "abort", "gvt", "total")
	for _, r := range results {
		st := r.Points[len(r.Points)-1].Stats
		var tot float64
		vals := make([]float64, noc.NumClasses)
		for c := noc.Class(0); c < noc.NumClasses; c++ {
			vals[c] = st.TrafficGBps(c)
			tot += vals[c]
		}
		fmt.Fprintf(w, "%-8s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			r.App, vals[noc.ClassMem], vals[noc.ClassEnqueue], vals[noc.ClassAbort], vals[noc.ClassGVT], tot)
	}
}

// PrintSweep formats a sensitivity sweep (Fig 17a/b, GVT period).
func PrintSweep(w io.Writer, title string, apps []string, pts []SweepPoint) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-12s", "config")
	for _, a := range apps {
		fmt.Fprintf(w, "%9s", a)
	}
	fmt.Fprintln(w)
	for _, p := range pts {
		fmt.Fprintf(w, "%-12s", p.Label)
		for _, v := range p.Perf {
			fmt.Fprintf(w, "%8.2fx", v)
		}
		fmt.Fprintln(w)
	}
}

// PrintPhases formats the phased-workload sweep: one row per (app, cores,
// phase), with the phase's share of the session's cycles.
func PrintPhases(w io.Writer, pts []PhasePoint) {
	fmt.Fprintf(w, "phased sessions: per-phase cycles, commits and occupancy at quiescent points\n")
	fmt.Fprintf(w, "%-9s %6s %7s %10s %9s %8s %8s %8s %8s\n",
		"app", "cores", "phase", "cycles", "share", "commits", "aborts", "tq_occ", "cq_occ")
	// Share is the phase's fraction of its session's total cycles: the
	// session's total is the last phase's cumulative count.
	type key struct {
		app   string
		cores int
	}
	totals := map[key]uint64{}
	for _, p := range pts {
		k := key{p.App, p.Cores}
		if c := p.Stats.Cumulative.Cycles; c > totals[k] {
			totals[k] = c
		}
	}
	for _, p := range pts {
		ph := p.Stats
		share := ratio(float64(ph.Cycles), float64(totals[key{p.App, p.Cores}]))
		fmt.Fprintf(w, "%-9s %6d %7d %10d %8.1f%% %8d %8d %8.1f %8.1f\n",
			p.App, p.Cores, ph.Phase, ph.Cycles, 100*share, ph.Commits, ph.Aborts,
			ph.AvgTaskQueueOcc, ph.AvgCommitQueueOcc)
	}
}

// PrintMapperSweep formats the task-mapping policy sweep: per-app speedup
// over the random mapper plus the placement diagnostics behind it.
func PrintMapperSweep(w io.Writer, cores int, pts []MapperPoint) {
	fmt.Fprintf(w, "task-mapping policies at %d cores (speedup vs random; NoC = total injected bytes)\n", cores)
	fmt.Fprintf(w, "%-11s %-8s %12s %8s %10s %12s %8s %7s\n",
		"mapper", "app", "cycles", "speedup", "aborts", "noc_bytes", "stolen", "imbal")
	for _, p := range pts {
		fmt.Fprintf(w, "%-11s %-8s %12d %7.2fx %10d %12d %8d %7.2f\n",
			p.Mapper, p.App, p.Cycles, p.Speedup, p.Aborts, p.NoCBytes, p.Stolen, p.Imbalance)
	}
}

// PrintTable5 formats the idealization study.
func PrintTable5(w io.Writer, rows []Table5Row, maxCores int) {
	fmt.Fprintf(w, "Table 5: gmean speedups with progressive idealizations\n")
	fmt.Fprintf(w, "%-24s %16s %16s %16s\n", "Speedups",
		"1c vs 1c-base", fmt.Sprintf("%dc vs 1c-base", maxCores), fmt.Sprintf("%dc vs 1c", maxCores))
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %15.1fx %15.1fx %15.1fx\n", r.Config, r.OneCore, r.SixtyFour, r.SelfRelative)
	}
}

// PrintFig18 renders the astar trace: per-tile cycle breakdowns, queue
// lengths and commit/abort counts over time.
func PrintFig18(w io.Writer, st core.Stats, maxSamples int) {
	fmt.Fprintf(w, "Fig 18: astar execution trace (16 cores, 4 tiles, 500-cycle samples)\n")
	fmt.Fprintf(w, "%-10s", "cycle")
	for t := 0; t < st.Tiles; t++ {
		fmt.Fprintf(w, "  | tile%d: wrk spl stl  tq  cq  com ab", t)
	}
	fmt.Fprintln(w)
	samples := st.Trace
	if maxSamples > 0 && len(samples) > maxSamples {
		samples = samples[:maxSamples]
	}
	for _, s := range samples {
		fmt.Fprintf(w, "%-10d", s.Cycle)
		for _, ts := range s.Tiles {
			tot := ts.Worker + ts.Spill + ts.Stall
			pct := func(v uint64) int {
				if tot == 0 {
					return 0
				}
				return int(100 * v / tot)
			}
			fmt.Fprintf(w, "  | %10d%%%3d%%%3d%% %4d%4d %4d%3d",
				pct(ts.Worker), pct(ts.Spill), pct(ts.Stall), ts.TaskQ, ts.CommitQ, ts.Commits, ts.Aborts)
		}
		fmt.Fprintln(w)
	}
	if len(st.Trace) > len(samples) {
		fmt.Fprintf(w, "... (%d more samples)\n", len(st.Trace)-len(samples))
	}
}

// AppNames lists the suite's benchmark names.
func (s *Suite) AppNames() []string {
	out := make([]string, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		out[i] = b.Name()
	}
	return out
}

// Banner returns a header line for experiment output.
func Banner(title string) string {
	return fmt.Sprintf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
