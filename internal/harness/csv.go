package harness

import (
	"fmt"
	"io"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/noc"
)

// CSV exporters: plot-ready data files for every figure (the paper's
// figures are line/stacked-bar charts; these emit their exact series).

// StatsCSVHeader is the column list of single-run stats rows: the shared
// machine-readable result format of `swarmsim -csv` and swarmd's
// GET /jobs/{id}/csv, which lets the CI smoke test diff the daemon's
// answer against the one-shot CLI byte for byte.
const StatsCSVHeader = "app,cores,cycles,commits,aborts,spilled,nacks,enqueues,dequeues," +
	"committed_cycles,aborted_cycles,spill_cycles,stall_cycles,taskq_occ,commitq_occ," +
	"bloom_checks,vt_compares,traffic_bytes,stolen_tasks,mapper,backend,wall_ns,retries"

// StatsCSVRow formats one run as a StatsCSVHeader row (no newline). The
// trailing backend columns carry the native runtimes' metrics (wall_ns
// and retries are zero under the simulator, as cycle columns are under
// the native backends).
func StatsCSVRow(app string, st core.Stats) string {
	return fmt.Sprintf("%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%d,%d,%d,%d,%s,%s,%d,%d",
		app, st.Cores, st.Cycles, st.Commits, st.Aborts, st.SpilledTasks, st.NACKs,
		st.Enqueues, st.Dequeues,
		st.CommittedCycles, st.AbortedCycles, st.SpillCycles, st.StallCycles,
		st.AvgTaskQueueOcc, st.AvgCommitQueueOcc,
		st.BloomChecks, st.VTCompares, st.TotalTrafficBytes(), st.StolenTasks, st.Mapper,
		st.Backend, st.WallNS, st.Retries)
}

// WriteStatsCSV emits a single run as header plus one row.
func WriteStatsCSV(w io.Writer, app string, st core.Stats) error {
	_, err := fmt.Fprintf(w, "%s\n%s\n", StatsCSVHeader, StatsCSVRow(app, st))
	return err
}

// WriteScalingCSV emits Fig 11/12 series: one row per (app, cores).
func WriteScalingCSV(w io.Writer, results []ScalingResult) error {
	if _, err := fmt.Fprintln(w, "app,cores,swarm_cycles,serial_cycles,parallel_cycles,self_speedup,vs_serial,parallel_vs_serial"); err != nil {
		return err
	}
	for _, r := range results {
		self := r.SelfRelative()
		vs := r.VsSerial()
		pv := r.ParallelVsSerial()
		for i, p := range r.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%.3f,%.3f,%.3f\n",
				r.App, p.Cores, p.SwarmCycles, p.SerialCycles, p.ParallelCycles,
				self[i], vs[i], pv[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteBreakdownCSV emits Fig 14 series: normalized cycle breakdowns.
func WriteBreakdownCSV(w io.Writer, results []ScalingResult) error {
	if _, err := fmt.Fprintln(w, "app,cores,committed,aborted,spill,stall"); err != nil {
		return err
	}
	for _, r := range results {
		if len(r.Points) == 0 {
			continue
		}
		base := float64(r.Points[0].Stats.TotalCoreCycles())
		for _, p := range r.Points {
			st := p.Stats
			if _, err := fmt.Fprintf(w, "%s,%d,%.4f,%.4f,%.4f,%.4f\n",
				r.App, p.Cores,
				ratio(float64(st.CommittedCycles), base), ratio(float64(st.AbortedCycles), base),
				ratio(float64(st.SpillCycles), base), ratio(float64(st.StallCycles), base)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTrafficCSV emits Fig 16 series: per-tile GB/s by message class.
func WriteTrafficCSV(w io.Writer, results []ScalingResult) error {
	if _, err := fmt.Fprintln(w, "app,mem_gbps,enqueue_gbps,abort_gbps,gvt_gbps"); err != nil {
		return err
	}
	for _, r := range results {
		if len(r.Points) == 0 {
			continue
		}
		st := r.Points[len(r.Points)-1].Stats
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f\n", r.App,
			st.TrafficGBps(noc.ClassMem), st.TrafficGBps(noc.ClassEnqueue),
			st.TrafficGBps(noc.ClassAbort), st.TrafficGBps(noc.ClassGVT)); err != nil {
			return err
		}
	}
	return nil
}

// WriteMapperCSV emits the task-mapping sweep: one row per (mapper, app).
func WriteMapperCSV(w io.Writer, pts []MapperPoint) error {
	if _, err := fmt.Fprintln(w, "mapper,app,cycles,speedup_vs_random,aborts,noc_bytes,stolen_tasks,taskq_imbalance"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.3f,%d,%d,%d,%.3f\n",
			p.Mapper, p.App, p.Cycles, p.Speedup, p.Aborts, p.NoCBytes, p.Stolen, p.Imbalance); err != nil {
			return err
		}
	}
	return nil
}

// WritePhasesCSV emits the phased-workload sweep: one row per (app,
// cores, phase), counters as phase deltas plus the cumulative cycle count
// at the phase's end.
func WritePhasesCSV(w io.Writer, pts []PhasePoint) error {
	if _, err := fmt.Fprintln(w, "app,cores,phase,start_cycle,end_cycle,phase_cycles,commits,aborts,enqueues,spilled,"+
		"committed_cycles,aborted_cycles,spill_cycles,stall_cycles,taskq_occ,commitq_occ,traffic_bytes,cum_cycles,cum_commits"); err != nil {
		return err
	}
	for _, p := range pts {
		ph := p.Stats
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%d,%d,%d\n",
			p.App, p.Cores, ph.Phase, ph.StartCycle, ph.EndCycle, ph.Cycles,
			ph.Commits, ph.Aborts, ph.Enqueues, ph.SpilledTasks,
			ph.CommittedCycles, ph.AbortedCycles, ph.SpillCycles, ph.StallCycles,
			ph.AvgTaskQueueOcc, ph.AvgCommitQueueOcc, ph.TrafficBytes,
			ph.Cumulative.Cycles, ph.Cumulative.Commits); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceCSV emits the Fig 18 time series: one row per (sample, tile).
func WriteTraceCSV(w io.Writer, st core.Stats) error {
	if _, err := fmt.Fprintln(w, "cycle,tile,worker_cycles,spill_cycles,stall_cycles,task_queue,commit_queue,commits,aborts"); err != nil {
		return err
	}
	for _, s := range st.Trace {
		for ti, t := range s.Tiles {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				s.Cycle, ti, t.Worker, t.Spill, t.Stall, t.TaskQ, t.CommitQ, t.Commits, t.Aborts); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable1CSV emits the limit study as CSV.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintln(w, "app,max_parallelism,window_1k,window_64,instrs_mean,instrs_p90,reads_mean,reads_p90,writes_mean,writes_p90,max_tls"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.1f,%.1f,%.1f,%.1f,%d,%.2f,%d,%.2f,%d,%.2f\n",
			r.App, r.MaxParallelism, r.Window1K, r.Window64,
			r.Instrs.Mean, r.Instrs.P90, r.Reads.Mean, r.Reads.P90,
			r.Writes.Mean, r.Writes.P90, r.MaxTLS); err != nil {
			return err
		}
	}
	return nil
}
