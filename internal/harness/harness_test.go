package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/core"
)

func tinySuite() *Suite { return NewSuite(ScaleTiny) }

func TestTable1Runs(t *testing.T) {
	s := tinySuite()
	rows := s.Table1(0)
	if len(rows) != len(bench.AppNames()) {
		t.Fatalf("rows = %d, want one per registered app (%d)", len(rows), len(bench.AppNames()))
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	out := buf.String()
	for _, app := range bench.AppNames() {
		if !strings.Contains(out, app) {
			t.Fatalf("table missing %s:\n%s", app, out)
		}
	}
	for _, r := range rows {
		if r.MaxParallelism < r.Window1K-0.01 || r.Window1K < r.Window64-0.01 {
			t.Errorf("%s: window parallelism not monotone (%0.1f/%0.1f/%0.1f)",
				r.App, r.MaxParallelism, r.Window1K, r.Window64)
		}
	}
}

func TestScalingShape(t *testing.T) {
	s := tinySuite()
	// sssp only, to bound test time.
	r, err := s.Scaling(s.Benchmarks[1], []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	self := r.SelfRelative()
	if self[0] != 1 {
		t.Fatalf("self-relative base = %.2f", self[0])
	}
	if self[2] <= self[0] {
		t.Fatalf("no scaling: %v", self)
	}
	var buf bytes.Buffer
	PrintScaling(&buf, r)
	PrintFig14(&buf, r.App, r.Points)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestFig13Shape(t *testing.T) {
	s := tinySuite()
	pts, err := s.Fig13([]int{4, 1}, 8, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("points missing")
	}
	// The headline: with 1 warehouse, Swarm holds up much better than OCC.
	one := pts[1]
	if one.SwarmSpeedup < one.ParallelSpeedup {
		t.Errorf("1 warehouse: Swarm %.1fx should beat OCC %.1fx (Fig 13)",
			one.SwarmSpeedup, one.ParallelSpeedup)
	}
	var buf bytes.Buffer
	PrintFig13(&buf, pts, 8)
}

func TestTable5Idealizations(t *testing.T) {
	s := tinySuite()
	rows, err := s.Table5(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("want 3 variants")
	}
	if rows[0].OneCore < 0.99 || rows[0].OneCore > 1.01 {
		t.Fatalf("baseline 1c speedup = %.2f, want 1.0", rows[0].OneCore)
	}
	// Idealizations can only help at one core.
	if rows[2].OneCore < rows[0].OneCore-0.01 {
		t.Errorf("0-cycle memory slower than baseline at 1c? %v", rows)
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows, 8)
}

func TestCommitQueueSweepShape(t *testing.T) {
	s := NewSuite(ScaleTiny)
	// Only sssp to bound time: fake a one-benchmark suite.
	s.Benchmarks = s.Benchmarks[1:2]
	pts, err := s.CommitQueueSweep(8, []int{16, 128, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny commit queues must not beat unbounded ones meaningfully.
	if pts[0].Perf[0] > pts[2].Perf[0]*1.15 {
		t.Errorf("16-entry commit queue (%.2f) outperforms unbounded (%.2f)?",
			pts[0].Perf[0], pts[2].Perf[0])
	}
	var buf bytes.Buffer
	PrintSweep(&buf, "Fig 17a", s.AppNames(), pts)
}

func TestBloomSweepShape(t *testing.T) {
	s := NewSuite(ScaleTiny)
	s.Benchmarks = s.Benchmarks[5:6] // silo: largest footprints
	pts, err := s.BloomSweep(8, []bloom.Config{
		{Bits: 256, Ways: 4},
		{Bits: 2048, Ways: 8},
		{Precise: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Precise filters should not be meaningfully slower than 256-bit ones.
	if pts[2].Perf[0] < pts[0].Perf[0]*0.9 {
		t.Errorf("precise (%.2f) slower than 256b (%.2f)?", pts[2].Perf[0], pts[0].Perf[0])
	}
}

func TestGVTSweepRuns(t *testing.T) {
	s := NewSuite(ScaleTiny)
	s.Benchmarks = s.Benchmarks[1:2]
	pts, err := s.GVTSweep(8, []uint64{50, 200, 800})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Perf[0] < 0.3 || p.Perf[0] > 3 {
			t.Errorf("gvt sweep wild swing at %s: %.2f", p.Label, p.Perf[0])
		}
	}
}

func TestCanaryStudyRuns(t *testing.T) {
	s := NewSuite(ScaleTiny)
	s.Benchmarks = s.Benchmarks[1:3]
	red, sp, err := s.CanaryStudy(8)
	if err != nil {
		t.Fatal(err)
	}
	if red < -0.05 {
		t.Errorf("per-line canaries increased global checks? reduction=%.3f", red)
	}
	if sp < 0.8 || sp > 1.3 {
		t.Errorf("canary speedup %.2f out of the <1%% band the paper reports", sp)
	}
}

func TestFig18Trace(t *testing.T) {
	s := tinySuite()
	st, err := s.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) == 0 {
		t.Fatal("no trace samples")
	}
	if st.Tiles != 4 {
		t.Fatalf("tiles = %d, want 4", st.Tiles)
	}
	var buf bytes.Buffer
	PrintFig18(&buf, st, 10)
	if !strings.Contains(buf.String(), "tile3") {
		t.Fatal("trace output missing tiles")
	}
}

func TestTable2Print(t *testing.T) {
	var buf bytes.Buffer
	PrintTable2(&buf, core.DefaultConfig(64))
	if !strings.Contains(buf.String(), "Order queue") {
		t.Fatal("table 2 incomplete")
	}
}

// TestSuiteBackendOverride proves SetBackend threads through the
// suite's machine configuration: a scaling run on the native runtime
// reports backend=rt stats with wall-clock instead of cycles, while
// the serial baseline column stays cycle-based.
func TestSuiteBackendOverride(t *testing.T) {
	s := NewSuite(ScaleTiny)
	s.Benchmarks = s.Benchmarks[1:2] // one app bounds time
	s.SetBackend("rt")
	s.SetWorkers(1)
	res, err := s.Scaling(s.Benchmarks[0], []int{4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Points[0].Stats
	if st.Backend != "rt" {
		t.Fatalf("stats backend = %q, want rt", st.Backend)
	}
	if st.Cycles != 0 || st.WallNS == 0 || st.Commits == 0 {
		t.Errorf("rt stats: cycles=%d wallns=%d commits=%d, want 0/nonzero/nonzero",
			st.Cycles, st.WallNS, st.Commits)
	}
	if res.Points[0].SerialCycles == 0 {
		t.Error("serial baseline lost its cycle count under the backend override")
	}
}
