package harness

import (
	"fmt"
	"sort"
	"strings"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
)

// optionList joins names in sorted order for error messages: registries
// order names semantically (suite order, default first), but a user
// scanning an error for a typo'd flag wants the alphabet.
func optionList(names []string) string {
	s := append([]string(nil), names...)
	sort.Strings(s)
	return strings.Join(s, ", ")
}

// Up-front flag/request validation, shared by the CLIs and the swarmd
// daemon. Before these helpers, an invalid -app/-mapper/-scale surfaced
// only once a run reached the code that consumed it — after input
// generation, sometimes mid-sweep — as a context-free error. Validating
// against the registries first fails in milliseconds and always names the
// valid options.

// ResolveApps validates an -app value — a registered name, a comma list
// of names, or "all" — against the bench registry and returns the
// resolved app names in request order ("all" expands to suite order).
func ResolveApps(flagVal string) ([]string, error) {
	valid := optionList(bench.AppNames())
	if strings.TrimSpace(flagVal) == "all" {
		return bench.AppNames(), nil
	}
	var names []string
	for _, name := range strings.Split(flagVal, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := bench.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown app %q (valid: %s; a comma list; or all)", name, valid)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no app named (valid: %s; a comma list; or all)", valid)
	}
	return names, nil
}

// ValidateMapper checks a task-mapping policy name against the registered
// policies ("" selects the default and is valid).
func ValidateMapper(name string) error {
	if name == "" {
		return nil
	}
	for _, m := range core.MapperNames() {
		if m == name {
			return nil
		}
	}
	return fmt.Errorf("unknown mapper %q (valid: %s)", name, optionList(core.MapperNames()))
}

// ValidateScale checks a scale name, returning the parsed Scale. It is
// ParseScale under the name the other validators use.
func ValidateScale(name string) (Scale, error) { return ParseScale(name) }

// ValidateCores checks that a core count builds a legal machine: the CMP
// is tiled 4 cores per tile (machines under 4 cores are one smaller
// tile), so the count must be 1-4 or a multiple of 4. Without this check
// the config layer panics during machine construction.
func ValidateCores(n int) error {
	if n >= 1 && (n <= 4 || n%4 == 0) {
		return nil
	}
	return fmt.Errorf("invalid core count %d (valid: 1, 2, 3, 4, or any multiple of 4)", n)
}

// ValidateBackend checks an execution-backend name against the engines
// the backend layer can build ("" selects the default simulator and is
// valid). Matches core.Config validation, but fails before any input
// generation and with flag-level context.
func ValidateBackend(name string) error {
	if core.ValidBackend(name) {
		return nil
	}
	return fmt.Errorf("unknown backend %q (valid: %s)", name, optionList(core.BackendNames()))
}

// ValidateSimWorkers checks a tile-parallel shard count (0 and 1 both
// select the single-threaded simulator).
func ValidateSimWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("invalid simworkers %d (valid: 0 or more; 0 and 1 run single-threaded)", n)
	}
	return nil
}
