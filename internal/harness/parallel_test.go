package harness

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolCollectsByIndex checks that results land in input order no
// matter which worker finishes first.
func TestPoolCollectsByIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		p := NewPool(workers)
		out := make([]int, 50)
		err := p.Run(len(out), nil, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestPoolLowestIndexError checks the deterministic error contract: with
// several failing tasks, the lowest-index error is reported.
func TestPoolLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		err := p.Run(20, nil, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("workers=%d: err = %v, want task 7's", workers, err)
		}
	}
}

// TestPoolProgress checks that every task reports exactly once, done
// counts are monotone, and labels come through.
func TestPoolProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var calls int
		last := 0
		seen := map[string]bool{}
		p.SetProgress(func(done, total int, label string, _ time.Duration) {
			calls++
			if done != last+1 || total != 9 {
				t.Fatalf("workers=%d: progress (%d/%d) after (%d/9)", workers, done, total, last)
			}
			last = done
			seen[label] = true
		})
		if err := p.Run(9, func(i int) string { return fmt.Sprintf("task%d", i) },
			func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if calls != 9 || len(seen) != 9 {
			t.Fatalf("workers=%d: %d progress calls over %d labels", workers, calls, len(seen))
		}
	}
}

// TestPoolZeroValueRejected checks that a zero-value Pool (never
// initialized via NewPool/SetWorkers, so workers == 0) fails loudly
// instead of spawning zero workers and silently running nothing.
func TestPoolZeroValueRejected(t *testing.T) {
	var p Pool
	ran := false
	err := p.Run(3, nil, func(int) error { ran = true; return nil })
	if err == nil {
		t.Fatal("zero-value Pool.Run returned nil, want a descriptive error")
	}
	if ran {
		t.Fatal("zero-value Pool ran tasks despite erroring")
	}
	if want := "harness: pool has 0 workers"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("err = %q, want it to mention %q", err, want)
	}
	// After SetWorkers the same Pool works.
	p.SetWorkers(2)
	if err := p.Run(3, nil, func(int) error { return nil }); err != nil {
		t.Fatalf("after SetWorkers: %v", err)
	}
}

// TestPoolWorkersDefault checks the NumCPU fallback.
func TestPoolWorkersDefault(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("workers < 1")
	}
	if got := NewPool(3).Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
}

// TestMemoSingleFlight checks the deduplicating cache: concurrent callers
// for one key share a single computation.
func TestMemoSingleFlight(t *testing.T) {
	var c Memo[int, int]
	var computed atomic.Int64
	p := NewPool(8)
	out := make([]int, 64)
	err := p.Run(len(out), nil, func(i int) error {
		v, _, err := c.Do(i%4, func() (int, error) {
			computed.Add(1)
			return (i % 4) * 10, nil
		})
		out[i] = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 4 {
		t.Fatalf("computed %d times, want 4", got)
	}
	for i, v := range out {
		if v != (i%4)*10 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, _, err := c.Do(100, func() (int, error) { return 0, errors.New("boom") }); err == nil {
		t.Fatal("error not propagated")
	}
}

// renderEverything drives every parallelized sweep of a tiny suite and
// renders all tables, figures and CSV artifacts into one byte stream.
func renderEverything(t *testing.T, workers int) []byte {
	t.Helper()
	s := NewSuite(ScaleTiny)
	s.SetWorkers(workers)
	var buf bytes.Buffer

	rows := s.Table1(0)
	PrintTable1(&buf, rows)
	if err := WriteTable1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}

	results, err := s.ScalingAll([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		PrintScaling(&buf, r)
		PrintFig14(&buf, r.App, r.Points)
	}
	PrintFig15(&buf, results)
	PrintFig16(&buf, results)
	for _, w := range []func(*bytes.Buffer, []ScalingResult) error{
		func(b *bytes.Buffer, r []ScalingResult) error { return WriteScalingCSV(b, r) },
		func(b *bytes.Buffer, r []ScalingResult) error { return WriteBreakdownCSV(b, r) },
		func(b *bytes.Buffer, r []ScalingResult) error { return WriteTrafficCSV(b, r) },
	} {
		if err := w(&buf, results); err != nil {
			t.Fatal(err)
		}
	}

	pts, err := s.Fig13([]int{2, 1}, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig13(&buf, pts, 4)

	t5, err := s.Table5(4)
	if err != nil {
		t.Fatal(err)
	}
	PrintTable5(&buf, t5, 4)

	cq, err := s.CommitQueueSweep(4, []int{16, 0})
	if err != nil {
		t.Fatal(err)
	}
	PrintSweep(&buf, "fig17a", s.AppNames(), cq)

	red, sp, err := s.CanaryStudy(4)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "canary %.4f %.4f\n", red, sp)

	return buf.Bytes()
}

// TestParallelOutputByteIdentical is the scheduler's core guarantee: the
// full experiment pipeline renders byte-identical tables and CSV under
// any worker count. Run under -race this also exercises the concurrent
// paths of the suite caches and benchmark runners.
func TestParallelOutputByteIdentical(t *testing.T) {
	seq := renderEverything(t, 1)
	par := renderEverything(t, 4)
	if !bytes.Equal(seq, par) {
		a, b := string(seq), string(par)
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := max(0, i-80)
				t.Fatalf("outputs diverge at byte %d:\nworkers=1: %q\nworkers=4: %q",
					i, a[lo:min(len(a), i+80)], b[lo:min(len(b), i+80)])
			}
		}
		t.Fatalf("output lengths differ: %d vs %d", len(seq), len(par))
	}
}
