package smp

import (
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
	"github.com/swarm-sim/swarm/internal/noc"
)

// SerialMachine runs a single-threaded guest program in direct mode: the
// guest executes inline on the caller's stack and every operation's latency
// accumulates on a clock. This is exact for one thread (nothing can
// interleave) and roughly an order of magnitude faster than the
// event-driven path — the serial baselines are the longest simulations in
// the evaluation (Table 4).
//
// The machine geometry still matters: serial baselines run on a machine of
// the same size as the parallel system under comparison (Fig 12), so a
// 64-core machine's larger L3 benefits the serial run too.
type SerialMachine struct {
	cfg   Config
	gmem  *mem.Memory
	heap  *mem.Allocator
	mesh  *noc.Mesh
	hier  *cache.Hierarchy
	clock uint64
}

var _ guest.Env = (*SerialMachine)(nil)

// NewSerialMachine builds a direct-mode machine with the given geometry.
func NewSerialMachine(cfg Config) *SerialMachine {
	cfg.Cache.Tiles = cfg.Tiles
	cfg.Cache.CoresPerTile = cfg.CoresPerTile
	m := &SerialMachine{
		cfg:  cfg,
		gmem: mem.New(),
		heap: mem.NewAllocator(),
		mesh: noc.New(cfg.Tiles, cfg.HopCycles),
	}
	m.hier = cache.New(cfg.Cache, m.mesh)
	return m
}

// Mem exposes guest memory for setup and verification.
func (m *SerialMachine) Mem() *mem.Memory { return m.gmem }

// SetupAlloc allocates guest memory with no simulated cost.
func (m *SerialMachine) SetupAlloc(nBytes uint64) uint64 { return m.heap.AllocLineAligned(nBytes) }

// Run executes fn to completion and returns the elapsed cycles.
func (m *SerialMachine) Run(fn func(guest.Env)) uint64 {
	start := m.clock
	fn(m)
	return m.clock - start
}

// Cycles returns the accumulated clock.
func (m *SerialMachine) Cycles() uint64 { return m.clock }

// Stats returns machine statistics so far.
func (m *SerialMachine) Stats() Stats {
	return Stats{
		Cycles:       m.clock,
		Cores:        1,
		BusyCycles:   m.clock,
		Cache:        m.hier.Stats(),
		TrafficBytes: m.mesh.TotalBytes(),
	}
}

// Load implements guest.Env.
func (m *SerialMachine) Load(addr uint64) uint64 {
	res := m.hier.Access(cache.Access{Line: mem.Line(addr)})
	m.clock += res.Latency
	return m.gmem.Load(addr)
}

// Store implements guest.Env.
func (m *SerialMachine) Store(addr, val uint64) {
	res := m.hier.Access(cache.Access{Line: mem.Line(addr), Write: true})
	m.clock += res.Latency
	m.gmem.Store(addr, val)
}

// Work implements guest.Env.
func (m *SerialMachine) Work(n uint64) { m.clock += n }

// Alloc implements guest.Env.
func (m *SerialMachine) Alloc(n uint64) uint64 {
	m.clock += mem.AllocCycles
	return m.heap.Alloc(n)
}

// Free implements guest.Env.
func (m *SerialMachine) Free(addr, n uint64) {
	m.clock += mem.AllocCycles
	m.heap.Free(0, addr, n)
	m.heap.ReleaseQuarantine(0)
}
