// Package smp models the same CMP as the Swarm machine (Table 3 cores,
// caches, NoC) running ordinary software threads instead of hardware tasks.
// The serial and software-parallel baselines of §6.2 run here, so their
// synchronization, sharing and locality costs are physically modeled by the
// same memory hierarchy Swarm uses.
package smp

import (
	"errors"
	"fmt"

	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/sim"
)

// Config sizes the baseline machine; DefaultConfig mirrors Table 3 scaled
// to nCores (same scaling rule as the Swarm machine: constant per-core
// cache capacity).
type Config struct {
	Tiles        int
	CoresPerTile int
	Cache        cache.Params
	HopCycles    uint64
	// AtomicCost is the extra cost of an atomic read-modify-write over a
	// plain store (reservation + retry window).
	AtomicCost uint64
	MaxCycles  uint64
}

// DefaultConfig returns the Table 3 machine scaled to nCores.
func DefaultConfig(nCores int) Config {
	cpt := 4
	if nCores < 4 {
		cpt = nCores
	}
	if nCores%cpt != 0 {
		panic(fmt.Sprintf("smp: %d cores not divisible into tiles", nCores))
	}
	tiles := nCores / cpt
	return Config{
		Tiles:        tiles,
		CoresPerTile: cpt,
		Cache:        cache.DefaultParams(tiles, cpt),
		HopCycles:    3,
		AtomicCost:   4,
		MaxCycles:    2_000_000_000_000,
	}
}

// Cores returns the machine's core (= thread) count.
func (c Config) Cores() int { return c.Tiles * c.CoresPerTile }

// Stats summarizes a baseline run.
type Stats struct {
	Cycles       uint64
	Cores        int
	BusyCycles   uint64 // summed across threads
	Cache        cache.Stats
	TrafficBytes [noc.NumClasses]uint64
}

// Machine runs one thread per core against the simulated hierarchy.
type Machine struct {
	cfg  Config
	eng  sim.Engine
	gmem *mem.Memory
	heap *mem.Allocator
	mesh *noc.Mesh
	hier *cache.Hierarchy

	threads []*thread
	live    int
}

type thread struct {
	id   int
	tile int
	co   *guest.Coroutine
	busy uint64
	end  uint64
}

// NewMachine builds a baseline machine. setup initializes guest memory
// (untimed, like Swarm's Setup).
func NewMachine(cfg Config) *Machine {
	cfg.Cache.Tiles = cfg.Tiles
	cfg.Cache.CoresPerTile = cfg.CoresPerTile
	m := &Machine{
		cfg:  cfg,
		gmem: mem.New(),
		heap: mem.NewAllocator(),
		mesh: noc.New(cfg.Tiles, cfg.HopCycles),
	}
	m.hier = cache.New(cfg.Cache, m.mesh)
	return m
}

// Mem exposes guest memory for setup and verification.
func (m *Machine) Mem() *mem.Memory { return m.gmem }

// SetupAlloc allocates guest memory with no simulated cost.
func (m *Machine) SetupAlloc(nBytes uint64) uint64 { return m.heap.AllocLineAligned(nBytes) }

// Run launches one thread per core running fn and waits for all of them.
func (m *Machine) Run(fn guest.ThreadFn) (Stats, error) {
	n := m.cfg.Cores()
	m.threads = make([]*thread, n)
	m.live = n
	for i := 0; i < n; i++ {
		th := &thread{id: i, tile: i / m.cfg.CoresPerTile}
		th.co = guest.StartThread(fn, i, n)
		m.threads[i] = th
		m.eng.At(0, func() { m.resume(th, guest.Result{}) })
	}
	if err := m.eng.Run(m.cfg.MaxCycles); err != nil {
		return Stats{}, fmt.Errorf("smp: %w", err)
	}
	if m.live != 0 {
		return Stats{}, errors.New("smp: threads deadlocked")
	}
	st := Stats{
		Cycles:       m.eng.Now(),
		Cores:        n,
		Cache:        m.hier.Stats(),
		TrafficBytes: m.mesh.TotalBytes(),
	}
	for _, th := range m.threads {
		st.BusyCycles += th.busy
	}
	return st, nil
}

func (m *Machine) resume(th *thread, r guest.Result) {
	op := th.co.Resume(r)
	m.handleOp(th, op)
}

func (m *Machine) access(th *thread, line uint64, write bool) uint64 {
	res := m.hier.Access(cache.Access{
		Core: th.id, Tile: th.tile, Line: line, Write: write,
	})
	return res.Latency
}

func (m *Machine) handleOp(th *thread, op guest.Op) {
	switch op.Kind {
	case guest.OpWork:
		th.busy += op.N
		m.eng.After(op.N, func() { m.resume(th, guest.Result{}) })

	case guest.OpLoad:
		lat := m.access(th, mem.Line(op.Addr), false)
		val := m.gmem.Load(op.Addr)
		th.busy += lat
		m.eng.After(lat, func() { m.resume(th, guest.Result{Val: val}) })

	case guest.OpStore:
		lat := m.access(th, mem.Line(op.Addr), true)
		m.gmem.Store(op.Addr, op.Val)
		th.busy += lat
		m.eng.After(lat, func() { m.resume(th, guest.Result{}) })

	case guest.OpCAS:
		lat := m.access(th, mem.Line(op.Addr), true) + m.cfg.AtomicCost
		ok := false
		if m.gmem.Load(op.Addr) == op.Old {
			m.gmem.Store(op.Addr, op.Val)
			ok = true
		}
		th.busy += lat
		m.eng.After(lat, func() { m.resume(th, guest.Result{OK: ok}) })

	case guest.OpFetchAdd:
		lat := m.access(th, mem.Line(op.Addr), true) + m.cfg.AtomicCost
		old := m.gmem.Load(op.Addr)
		m.gmem.Store(op.Addr, old+op.Val)
		th.busy += lat
		m.eng.After(lat, func() { m.resume(th, guest.Result{Val: old}) })

	case guest.OpAlloc:
		addr := m.heap.Alloc(op.N)
		th.busy += mem.AllocCycles
		m.eng.After(mem.AllocCycles, func() { m.resume(th, guest.Result{Val: addr}) })

	case guest.OpFree:
		// Non-speculative: recycle immediately (token 0, released now).
		m.heap.Free(0, op.Addr, op.N)
		m.heap.ReleaseQuarantine(0)
		th.busy += mem.AllocCycles
		m.eng.After(mem.AllocCycles, func() { m.resume(th, guest.Result{}) })

	case guest.OpDone:
		th.end = m.eng.Now()
		m.live--

	default:
		panic(fmt.Sprintf("smp: unsupported op %v", op.Kind))
	}
}
