package smp

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
)

func TestThreadsSumDisjoint(t *testing.T) {
	m := NewMachine(DefaultConfig(8))
	base := m.SetupAlloc(8 * 8)
	st, err := m.Run(func(e guest.ThreadEnv) {
		var s uint64
		for i := 0; i < 100; i++ {
			s += uint64(i)
		}
		e.Store(base+uint64(e.ID())*8, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if got := m.Mem().Load(base + i*8); got != 4950 {
			t.Fatalf("thread %d wrote %d", i, got)
		}
	}
	if st.Cycles == 0 || st.Cores != 8 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFetchAddContention(t *testing.T) {
	m := NewMachine(DefaultConfig(16))
	ctr := m.SetupAlloc(8)
	_, err := m.Run(func(e guest.ThreadEnv) {
		for i := 0; i < 50; i++ {
			e.FetchAdd(ctr, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().Load(ctr); got != 16*50 {
		t.Fatalf("counter = %d, want %d", got, 16*50)
	}
}

func TestCASSemantics(t *testing.T) {
	m := NewMachine(DefaultConfig(4))
	slot := m.SetupAlloc(8)
	wins := m.SetupAlloc(8)
	_, err := m.Run(func(e guest.ThreadEnv) {
		if e.CAS(slot, 0, uint64(e.ID())+1) {
			e.FetchAdd(wins, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().Load(wins); got != 1 {
		t.Fatalf("CAS winners = %d, want exactly 1", got)
	}
	if m.Mem().Load(slot) == 0 {
		t.Fatal("no thread won the CAS")
	}
}

func TestSerialDirectMode(t *testing.T) {
	m := NewSerialMachine(DefaultConfig(1))
	a := m.SetupAlloc(80)
	cycles := m.Run(func(e guest.Env) {
		for i := uint64(0); i < 10; i++ {
			e.Store(a+i*8, i*i)
		}
		var s uint64
		for i := uint64(0); i < 10; i++ {
			s += e.Load(a + i*8)
		}
		e.Store(a, s)
		e.Work(100)
	})
	if got := m.Mem().Load(a); got != 285 {
		t.Fatalf("sum = %d, want 285", got)
	}
	if cycles < 100 {
		t.Fatalf("cycles = %d: memory latency not charged", cycles)
	}
	// A second identical loop should be much cheaper (caches warm).
	c2 := m.Run(func(e guest.Env) {
		var s uint64
		for i := uint64(0); i < 10; i++ {
			s += e.Load(a + i*8)
		}
		_ = s
	})
	if c2 >= cycles {
		t.Fatalf("warm run (%d cycles) not faster than cold (%d)", c2, cycles)
	}
}

func TestSerialAllocFree(t *testing.T) {
	m := NewSerialMachine(DefaultConfig(1))
	var addr uint64
	m.Run(func(e guest.Env) {
		addr = e.Alloc(64)
		e.Store(addr, 1)
		e.Free(addr, 64)
		// Non-speculative free recycles immediately.
		if e.Alloc(64) != addr {
			t.Error("freed block not recycled")
		}
	})
}

// TestSerialAgreesWithSMP1: the direct-mode clock must match the
// event-driven machine for a single-threaded program.
func TestSerialAgreesWithSMP1(t *testing.T) {
	body := func(e guest.Env, base uint64) {
		for i := uint64(0); i < 200; i++ {
			e.Store(base+(i%32)*8, i)
			_ = e.Load(base + ((i*7)%32)*8)
			e.Work(3)
		}
	}
	sm := NewSerialMachine(DefaultConfig(1))
	sb := sm.SetupAlloc(32 * 8)
	serialCycles := sm.Run(func(e guest.Env) { body(e, sb) })

	em := NewMachine(DefaultConfig(1))
	eb := em.SetupAlloc(32 * 8)
	st, err := em.Run(func(e guest.ThreadEnv) { body(e, eb) })
	if err != nil {
		t.Fatal(err)
	}
	if serialCycles != st.Cycles {
		t.Fatalf("direct mode %d cycles, event-driven %d", serialCycles, st.Cycles)
	}
}
