package oracle

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/guest"
)

// TestChainIsSerial: a pure dependence chain has parallelism 1.
func TestChainIsSerial(t *testing.T) {
	build := func(b *guest.AppBuild) []guest.TaskDesc {
		base := b.Alloc(8)
		var fn guest.FnID
		fn = b.Fn("chain", func(e guest.TaskEnv) {
			v := e.Load(base)
			e.Work(9)
			e.Store(base, v+1)
			if e.Timestamp() < 20 {
				e.Enqueue(fn, e.Timestamp()+1)
			}
		})
		return []guest.TaskDesc{{Fn: fn, TS: 0}}
	}
	p := ProfileTasks(build, 0)
	if len(p.Tasks) != 21 {
		t.Fatalf("tasks = %d", len(p.Tasks))
	}
	if par := p.MaxParallelism(); par > 1.01 {
		t.Fatalf("chain parallelism = %.2f, want 1", par)
	}
}

// TestIndependentTasksAreParallel: disjoint tasks have parallelism ~N.
func TestIndependentTasksAreParallel(t *testing.T) {
	const n = 50
	build := func(b *guest.AppBuild) []guest.TaskDesc {
		base := b.Alloc(8 * n)
		fn := b.Fn("indep", func(e guest.TaskEnv) {
			i := e.Arg(0)
			e.Work(20)
			e.Store(base+i*8, i)
		})
		var roots []guest.TaskDesc
		for i := uint64(0); i < n; i++ {
			roots = append(roots, guest.TaskDesc{Fn: fn, TS: i, Args: [3]uint64{i}})
		}
		return roots
	}
	p := ProfileTasks(build, 0)
	if par := p.MaxParallelism(); par < n-1 {
		t.Fatalf("independent parallelism = %.2f, want ~%d", par, n)
	}
	// A window of 4 caps parallelism near 4.
	if par := p.WindowParallelism(4); par > 5 {
		t.Fatalf("window-4 parallelism = %.2f, want <= ~4", par)
	}
}

// TestWindowMonotonic: parallelism grows (weakly) with window size.
func TestWindowMonotonic(t *testing.T) {
	b := bench.NewSSSP(20, 20, 3)
	p := ProfileTasks(b.SwarmApp().Build, 0)
	unb := p.MaxParallelism()
	w1024 := p.WindowParallelism(1024)
	w64 := p.WindowParallelism(64)
	if !(w64 <= w1024+0.01 && w1024 <= unb+0.01) {
		t.Fatalf("window parallelism not monotone: inf=%.1f 1024=%.1f 64=%.1f", unb, w1024, w64)
	}
	if unb < 5 {
		t.Fatalf("sssp max parallelism %.1f suspiciously low", unb)
	}
}

// TestTable1Shape checks the qualitative Table 1 relations on scaled-down
// inputs: plentiful task parallelism, tiny TLS parallelism for
// priority-queue applications, large TLS parallelism for msf (whose loop
// order matches task order), and sensible task-size orderings.
func TestTable1Shape(t *testing.T) {
	sssp := bench.NewSSSP(24, 24, 3)
	msf := bench.NewMSF(8, 8, 3)
	silo := bench.NewSilo(2, 80, 5)

	pSSSP := ProfileTasks(sssp.SwarmApp().Build, 0)
	pMSF := ProfileTasks(msf.SwarmApp().Build, 0)
	pSilo := ProfileTasks(silo.SwarmApp().Build, 0)

	tlsSSSP := ProfileSerial(sssp.SerialApp().Build, 0).MaxParallelism()
	tlsMSF := ProfileSerial(msf.SerialApp().Build, 0).MaxParallelism()

	maxSSSP := pSSSP.MaxParallelism()
	maxMSF := pMSF.MaxParallelism()

	t.Logf("sssp: max=%.0fx tls=%.2fx instr=%.0f", maxSSSP, tlsSSSP, pSSSP.InstrStats().Mean)
	t.Logf("msf:  max=%.0fx tls=%.2fx", maxMSF, tlsMSF)
	t.Logf("silo: max=%.0fx instr=%.0f", pSilo.MaxParallelism(), pSilo.InstrStats().Mean)

	// Insight 1: parallelism is plentiful.
	if maxSSSP < 10 {
		t.Errorf("sssp max parallelism %.1f too low", maxSSSP)
	}
	// §3: priority-queue false dependences strangle TLS (paper: 1.10x).
	if tlsSSSP > 3 {
		t.Errorf("sssp ideal-TLS parallelism %.2f: the priority queue should serialize it", tlsSSSP)
	}
	if tlsSSSP < 1 {
		t.Errorf("TLS parallelism below 1?")
	}
	// msf's loop order matches task order: TLS ~= max (paper: 158x both).
	if tlsMSF < maxMSF/3 {
		t.Errorf("msf TLS %.1f should approach its max %.1f", tlsMSF, maxMSF)
	}
	// Insight 2: task sizes. silo tasks are the largest.
	if pSilo.InstrStats().Mean < 2*pSSSP.InstrStats().Mean {
		t.Errorf("silo tasks should be much larger than sssp tasks")
	}
	// sssp writes are rare (visited path writes nothing).
	if ws := pSSSP.WriteStats(); ws.Mean > 1.5 {
		t.Errorf("sssp mean writes %.2f, want < 1.5 (paper: 0.41)", ws.Mean)
	}
}

// TestProfileSerialExcludesPrologue: the pre-first-mark work (msf's sort)
// must not appear in the iteration profile.
func TestProfileSerialExcludesPrologue(t *testing.T) {
	build := func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		scratch := alloc(800)
		return func(e guest.Env, mark func()) {
			for i := uint64(0); i < 100; i++ { // prologue: a serial chain
				e.Store(scratch, e.Load(scratch)+1)
			}
			for i := uint64(0); i < 10; i++ {
				mark()
				e.Work(5)
				e.Store(scratch+8+i*8, i) // independent iterations
			}
		}
	}
	p := ProfileSerial(build, 0)
	if len(p.Tasks) != 10 {
		t.Fatalf("iterations = %d, want 10", len(p.Tasks))
	}
	if par := p.MaxParallelism(); par < 9 {
		t.Fatalf("independent iterations parallelism %.1f; prologue leaked in?", par)
	}
}
