// Package oracle is the analysis tool behind Table 1 (§2.2): it executes a
// benchmark's tasks sequentially in timestamp order, profiling each task's
// instruction count and word-granularity read/write sets (excluding stack
// and scheduler accesses, which never appear in guest memory), then
// computes:
//
//   - maximum achievable parallelism (total instructions / critical path
//     through true data dependences and parent-child creation edges);
//   - parallelism under a bounded task window (1024, 64);
//   - instruction / read / write statistics (mean and 90th percentile);
//   - ideal-TLS parallelism of the *sequential* implementation, whose
//     iterations include the scheduling-structure accesses that create the
//     false dependences motivating Swarm (§3).
package oracle

import (
	"container/heap"
	"sort"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/tsdom"
)

// BuildFn lays out guest data, registers named task functions on the build
// environment, and returns the root tasks (the same shape as a Swarm
// application's Build).
type BuildFn = func(b *guest.AppBuild) []guest.TaskDesc

// SerialBuildFn lays out guest data and returns the sequential
// implementation's body; the body must call iterMark at each loop
// iteration boundary (the TLS analysis treats iterations as tasks).
type SerialBuildFn = func(alloc func(uint64) uint64, store func(addr, val uint64)) func(e guest.Env, iterMark func())

// TaskStat profiles one task (or one sequential iteration).
type TaskStat struct {
	TS     uint64
	Instrs uint64
	Reads  []uint64 // unique word addresses
	Writes []uint64
	Parent int // creating task index, or -1
}

// Profile is an ordered set of task profiles (execution = index order).
type Profile struct {
	Tasks []TaskStat
}

// ---------------------------------------------------------------------------
// Profiling executors.
// ---------------------------------------------------------------------------

type profItem struct {
	desc   guest.TaskDesc
	seq    uint64
	parent int
}

type profHeap []profItem

func (h profHeap) Len() int { return len(h) }
func (h profHeap) Less(i, j int) bool {
	if h[i].desc.TS != h[j].desc.TS {
		return h[i].desc.TS < h[j].desc.TS
	}
	if c := tsdom.Compare(h[i].desc.Path, h[j].desc.Path); c != 0 {
		return c < 0
	}
	return h[i].seq < h[j].seq
}
func (h profHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *profHeap) Push(x any)   { *h = append(*h, x.(profItem)) }
func (h *profHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// profEnv implements guest.TaskEnv over a host map, recording footprints.
type profEnv struct {
	mem   map[uint64]uint64
	brk   uint64
	queue profHeap
	seq   uint64

	desc   guest.TaskDesc
	curIdx int
	instrs uint64
	forks  uint64
	reads  map[uint64]struct{}
	writes map[uint64]struct{}
}

func newProfEnv() *profEnv {
	return &profEnv{mem: make(map[uint64]uint64), brk: 1 << 20}
}

func (p *profEnv) resetTask() {
	p.instrs = 0
	p.forks = 0
	p.reads = make(map[uint64]struct{})
	p.writes = make(map[uint64]struct{})
}

func (p *profEnv) allocSetup(n uint64) uint64 {
	a := p.brk
	p.brk += (n + 63) &^ 63
	return a
}

// Load implements guest.Env.
func (p *profEnv) Load(addr uint64) uint64 {
	p.instrs++
	p.reads[addr] = struct{}{}
	return p.mem[addr]
}

// Store implements guest.Env.
func (p *profEnv) Store(addr, val uint64) {
	p.instrs++
	p.writes[addr] = struct{}{}
	p.mem[addr] = val
}

// Work implements guest.Env.
func (p *profEnv) Work(n uint64) { p.instrs += n }

// Alloc implements guest.Env.
func (p *profEnv) Alloc(n uint64) uint64 { p.instrs += 4; return p.allocSetup(n) }

// Free implements guest.Env.
func (p *profEnv) Free(uint64, uint64) { p.instrs += 4 }

// Timestamp implements guest.TaskEnv.
func (p *profEnv) Timestamp() uint64 { return p.desc.TS }

// Arg implements guest.TaskEnv.
func (p *profEnv) Arg(i int) uint64 { return p.desc.Args[i] }

// Enqueue implements guest.TaskEnv.
func (p *profEnv) Enqueue(fn guest.FnID, ts uint64, args ...uint64) {
	var a [3]uint64
	copy(a[:], args)
	p.EnqueueArgs(fn, ts, a)
}

// EnqueueArgs implements guest.TaskEnv. Children inherit the parent's
// nested path verbatim (matching the machine backends).
func (p *profEnv) EnqueueArgs(fn guest.FnID, ts uint64, args [3]uint64) {
	p.instrs++
	p.seq++
	heap.Push(&p.queue, profItem{desc: guest.TaskDesc{Fn: fn, TS: ts, Path: p.desc.Path, Args: args}, seq: p.seq, parent: p.curIdx})
}

// EnqueueHinted implements guest.TaskEnv; the oracle's idealized scheduler
// has no tiles, so the hint is dropped.
func (p *profEnv) EnqueueHinted(fn guest.FnID, ts uint64, _ uint64, args [3]uint64) {
	p.EnqueueArgs(fn, ts, args)
}

// Fork implements guest.TaskEnv.
func (p *profEnv) Fork(fn guest.FnID, args ...uint64) {
	var a [3]uint64
	copy(a[:], args)
	p.EnqueueSub(fn, guest.NoHint, a)
}

// EnqueueSub implements guest.TaskEnv: the child lands inside the
// parent's timestamp slot at the next fork index, so the profiler's
// serial schedule interleaves it exactly where the machines commit it.
func (p *profEnv) EnqueueSub(fn guest.FnID, _ uint64, args [3]uint64) {
	p.instrs++
	p.seq++
	d := guest.TaskDesc{Fn: fn, TS: p.desc.TS, Path: p.desc.Path.Child(p.forks), Args: args}
	p.forks++
	heap.Push(&p.queue, profItem{desc: d, seq: p.seq, parent: p.curIdx})
}

func setOf(m map[uint64]struct{}) []uint64 {
	s := make([]uint64, 0, len(m))
	for a := range m {
		s = append(s, a)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// ProfileTasks profiles a Swarm application task by task, in timestamp
// order. Scheduler state (the task queue) is host-side, so queue accesses
// never pollute footprints — matching the pintool's filtering (§2.2).
func ProfileTasks(build BuildFn, maxTasks int) *Profile {
	env := newProfEnv()
	b := &guest.AppBuild{Alloc: env.allocSetup, Store: func(a, v uint64) { env.mem[a] = v }}
	roots := build(b)
	fns := b.Fns()
	for _, d := range roots {
		env.seq++
		heap.Push(&env.queue, profItem{desc: d, seq: env.seq, parent: -1})
	}
	prof := &Profile{}
	for env.queue.Len() > 0 {
		it := heap.Pop(&env.queue).(profItem)
		env.desc = it.desc
		env.curIdx = len(prof.Tasks)
		env.resetTask()
		fns[it.desc.Fn](env)
		prof.Tasks = append(prof.Tasks, TaskStat{
			TS:     it.desc.TS,
			Instrs: env.instrs,
			Reads:  setOf(env.reads),
			Writes: setOf(env.writes),
			Parent: it.parent,
		})
		if maxTasks > 0 && len(prof.Tasks) >= maxTasks {
			break
		}
	}
	return prof
}

// ProfileSerial profiles a sequential implementation, slicing it into
// iterations at iterMark boundaries (including priority-queue and other
// scheduler accesses — the false dependences TLS suffers, §3).
func ProfileSerial(build SerialBuildFn, maxIters int) *Profile {
	env := newProfEnv()
	body := build(env.allocSetup, func(a, v uint64) { env.mem[a] = v })
	prof := &Profile{}
	env.resetTask()
	first := true
	stop := false
	mark := func() {
		if stop {
			return
		}
		if !first {
			prof.Tasks = append(prof.Tasks, TaskStat{
				Instrs: env.instrs,
				Reads:  setOf(env.reads),
				Writes: setOf(env.writes),
				Parent: -1,
			})
			if maxIters > 0 && len(prof.Tasks) >= maxIters {
				stop = true
			}
		}
		first = false
		env.resetTask()
	}
	body(env, mark)
	mark() // close the final iteration
	return prof
}

// ---------------------------------------------------------------------------
// Analyses.
// ---------------------------------------------------------------------------

// TotalInstrs sums instruction counts.
func (p *Profile) TotalInstrs() uint64 {
	var t uint64
	for _, ts := range p.Tasks {
		t += ts.Instrs
	}
	return t
}

// MaxParallelism returns total instructions divided by the critical path
// through TRUE data dependences (RAW at word granularity — "task order
// dictates the direction of data flow in a dependence, but is otherwise
// superfluous", §2.2) plus parent-child creation edges. WAR and WAW edges
// are false dependences, removable by renaming, and are not counted —
// matching the paper's limit study and its ideal-TLS model (perfect
// speculation with immediate forwarding).
func (p *Profile) MaxParallelism() float64 { return p.WindowParallelism(0) }

// WindowParallelism is MaxParallelism under a T-task window: a task cannot
// start until all work more than T tasks behind has finished (§2.2,
// "Parallelism window=1K/64"). T = 0 means unbounded.
func (p *Profile) WindowParallelism(window int) float64 {
	if len(p.Tasks) == 0 {
		return 1
	}
	// lastWrite maps each word to the finish time of its latest writer in
	// task order. Later writers simply replace the entry (WAW renamed);
	// readers block on their producer only (RAW).
	lastWrite := make(map[uint64]uint64)
	finish := make([]uint64, len(p.Tasks))
	var maxFinish, total uint64
	for i, t := range p.Tasks {
		var start uint64
		if t.Parent >= 0 {
			start = finish[t.Parent]
		}
		if window > 0 && i >= window {
			if f := finish[i-window]; f > start {
				start = f
			}
		}
		for _, a := range t.Reads {
			if f := lastWrite[a]; f > start {
				start = f
			}
		}
		f := start + t.Instrs
		finish[i] = f
		if f > maxFinish {
			maxFinish = f
		}
		total += t.Instrs
		for _, a := range t.Writes {
			lastWrite[a] = f
		}
	}
	if maxFinish == 0 {
		return 1
	}
	return float64(total) / float64(maxFinish)
}

// Stat summarizes a per-task metric.
type Stat struct {
	Mean float64
	P90  uint64
}

func statOf(vals []uint64) Stat {
	if len(vals) == 0 {
		return Stat{}
	}
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Stat{
		Mean: float64(sum) / float64(len(vals)),
		P90:  sorted[(len(sorted)*9)/10],
	}
}

// InstrStats returns instruction-count statistics (Table 1 "Instrs").
func (p *Profile) InstrStats() Stat {
	v := make([]uint64, len(p.Tasks))
	for i, t := range p.Tasks {
		v[i] = t.Instrs
	}
	return statOf(v)
}

// ReadStats returns words-read statistics (Table 1 "Reads").
func (p *Profile) ReadStats() Stat {
	v := make([]uint64, len(p.Tasks))
	for i, t := range p.Tasks {
		v[i] = uint64(len(t.Reads))
	}
	return statOf(v)
}

// WriteStats returns words-written statistics (Table 1 "Writes").
func (p *Profile) WriteStats() Stat {
	v := make([]uint64, len(p.Tasks))
	for i, t := range p.Tasks {
		v[i] = uint64(len(t.Writes))
	}
	return statOf(v)
}
