package noc

import "testing"

func TestMeshDims(t *testing.T) {
	cases := []struct{ tiles, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 3, 3}, {9, 3, 3}, {16, 4, 4},
	}
	for _, c := range cases {
		m := New(c.tiles, 3)
		w, h := m.Dims()
		if w != c.w || h != c.h {
			t.Errorf("tiles=%d: dims=%dx%d, want %dx%d", c.tiles, w, h, c.w, c.h)
		}
		if w*h < c.tiles {
			t.Errorf("tiles=%d: mesh too small", c.tiles)
		}
	}
}

func TestHopsXY(t *testing.T) {
	m := New(16, 3) // 4x4
	if m.Hops(0, 0) != 0 {
		t.Error("self hops != 0")
	}
	if m.Hops(0, 3) != 3 { // same row
		t.Errorf("Hops(0,3) = %d", m.Hops(0, 3))
	}
	if m.Hops(0, 15) != 6 { // opposite corner of 4x4
		t.Errorf("Hops(0,15) = %d", m.Hops(0, 15))
	}
	if m.Hops(5, 10) != m.Hops(10, 5) {
		t.Error("hops not symmetric")
	}
	if m.Latency(0, 15) != 18 {
		t.Errorf("Latency(0,15) = %d, want 18", m.Latency(0, 15))
	}
}

func TestTriangleInequality(t *testing.T) {
	m := New(16, 3)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			for c := 0; c < 16; c++ {
				if m.Hops(a, c) > m.Hops(a, b)+m.Hops(b, c) {
					t.Fatalf("triangle inequality violated %d %d %d", a, b, c)
				}
			}
		}
	}
}

func TestEdgeLatency(t *testing.T) {
	m := New(16, 3)
	if m.EdgeLatency(0) != 0 { // corner is on the edge
		t.Errorf("corner EdgeLatency = %d", m.EdgeLatency(0))
	}
	if m.EdgeLatency(5) != 3 { // (1,1) is 1 hop from edge
		t.Errorf("EdgeLatency(5) = %d, want 3", m.EdgeLatency(5))
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := New(4, 3)
	m.Send(0, 1, ClassMem, 72)
	m.Send(0, 2, ClassEnqueue, TaskDescBytes)
	m.Send(1, 0, ClassAbort, AbortMsgBytes)
	m.Account(3, ClassGVT, GVTMsgBytes)
	if m.Send(2, 2, ClassMem, 100) != 0 {
		t.Error("self-send should have zero latency")
	}
	tot := m.TotalBytes()
	if tot[ClassMem] != 72 { // self-send not accounted
		t.Errorf("mem bytes = %d, want 72", tot[ClassMem])
	}
	if tot[ClassEnqueue] != TaskDescBytes || tot[ClassAbort] != AbortMsgBytes || tot[ClassGVT] != GVTMsgBytes {
		t.Errorf("byte totals wrong: %v", tot)
	}
	if got := m.InjectedBytes(0); got[ClassMem] != 72 {
		t.Errorf("tile 0 mem bytes = %d", got[ClassMem])
	}
	msgs := m.TotalMessages()
	if msgs[ClassMem] != 1 || msgs[ClassEnqueue] != 1 {
		t.Errorf("message counts wrong: %v", msgs)
	}
}

func TestClassString(t *testing.T) {
	if ClassMem.String() != "mem" || ClassGVT.String() != "gvt" {
		t.Error("class names wrong")
	}
	if Class(99).String() == "" {
		t.Error("out-of-range class name empty")
	}
}
