// Package noc models the on-chip mesh network: X-Y routed, 3 cycles/hop,
// 256-bit links (Table 3). The NoC provides point-to-point latencies for the
// cache hierarchy and task units, and accounts injected traffic per tile by
// message class so Fig 16 can be regenerated.
//
// Like the paper's model, the mesh is a latency/bandwidth-accounting model:
// injection rates in the evaluation stay well below saturation (§6.3), so
// contention is not modeled.
package noc

import "fmt"

// Class labels a message for traffic accounting (Fig 16's breakdown).
type Class int

const (
	// ClassMem is memory traffic between L2s, L3 banks and memory
	// controllers during normal execution.
	ClassMem Class = iota
	// ClassEnqueue is task-enqueue traffic (descriptors and acks, Fig 5).
	ClassEnqueue
	// ClassAbort is abort traffic: child-abort notifications and rollback
	// memory accesses (§4.5).
	ClassAbort
	// ClassGVT is global-virtual-time protocol traffic (Fig 9).
	ClassGVT
	NumClasses
)

var classNames = [NumClasses]string{"mem", "enqueue", "abort", "gvt"}

func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Message sizes in bytes. A task descriptor is 51B (Table 2); control
// messages are a header flit.
const (
	HeaderBytes   = 8
	LineBytes     = 64
	TaskDescBytes = 51
	AckBytes      = 13
	AbortMsgBytes = 16
	GVTMsgBytes   = 16
)

// Mesh is a W×H mesh of tiles with X-Y dimension-order routing.
type Mesh struct {
	width, height int
	tiles         int
	hopCycles     uint64
	injected      [][NumClasses]uint64 // per source tile, bytes
	messages      [][NumClasses]uint64 // per source tile, message count
}

// New builds the smallest W×H mesh (W >= H, W-H <= 1 pattern: nearly
// square) that holds nTiles tiles.
func New(nTiles int, hopCycles uint64) *Mesh {
	if nTiles < 1 {
		panic("noc: need at least one tile")
	}
	w := 1
	for w*w < nTiles {
		w++
	}
	h := (nTiles + w - 1) / w
	return &Mesh{
		width: w, height: h, tiles: nTiles, hopCycles: hopCycles,
		injected: make([][NumClasses]uint64, nTiles),
		messages: make([][NumClasses]uint64, nTiles),
	}
}

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.tiles }

// Dims returns the mesh dimensions.
func (m *Mesh) Dims() (w, h int) { return m.width, m.height }

func (m *Mesh) coord(tile int) (x, y int) { return tile % m.width, tile / m.width }

// Hops returns the X-Y route length between two tiles.
func (m *Mesh) Hops(a, b int) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the cycle cost of a one-way message from tile a to b.
func (m *Mesh) Latency(a, b int) uint64 { return uint64(m.Hops(a, b)) * m.hopCycles }

// EdgeLatency returns the latency from a tile to the nearest chip edge
// (memory controllers sit at the edges, Table 3).
func (m *Mesh) EdgeLatency(tile int) uint64 {
	x, y := m.coord(tile)
	d := x
	if r := m.width - 1 - x; r < d {
		d = r
	}
	if y < d {
		d = y
	}
	if r := m.height - 1 - y; r < d {
		d = r
	}
	return uint64(d) * m.hopCycles
}

// Send accounts a message of the given class and size injected at src and
// returns its delivery latency. Self-sends are free (no injection).
func (m *Mesh) Send(src, dst int, class Class, bytes int) uint64 {
	if src == dst {
		return 0
	}
	m.injected[src][class] += uint64(bytes)
	m.messages[src][class]++
	return m.Latency(src, dst)
}

// Account records injected bytes without computing a latency (e.g. for
// broadcast-style GVT updates where latency is absorbed by the period).
func (m *Mesh) Account(src int, class Class, bytes int) {
	m.injected[src][class] += uint64(bytes)
	m.messages[src][class]++
}

// InjectedBytes returns bytes injected at the tile, by class.
func (m *Mesh) InjectedBytes(tile int) [NumClasses]uint64 { return m.injected[tile] }

// TotalBytes returns chip-wide injected bytes by class.
func (m *Mesh) TotalBytes() (tot [NumClasses]uint64) {
	for _, t := range m.injected {
		for c := range t {
			tot[c] += t[c]
		}
	}
	return
}

// TotalMessages returns chip-wide message counts by class.
func (m *Mesh) TotalMessages() (tot [NumClasses]uint64) {
	for _, t := range m.messages {
		for c := range t {
			tot[c] += t[c]
		}
	}
	return
}
