package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// SSSP is Dijkstra's single-source shortest paths (§2.1, Fig 1) on a road
// network (the paper uses the East-USA road graph). The Swarm version's
// timestamps are tentative distances; the software-parallel comparison is
// Bellman-Ford, which trades wasted work for parallelism (§6.2).
type SSSP struct {
	g   *graph.Graph
	src int
	ref []uint64
}

func init() {
	Register(AppMeta{
		Name:        "sssp",
		Order:       1,
		Summary:     "Dijkstra single-source shortest paths on a road network",
		HasParallel: true,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewSSSP(16, 16, 3)
		case ScaleSmall:
			return NewSSSP(36, 36, 3)
		case ScaleLarge:
			return NewSSSPGraph(graph.MustLoad("roadnet-320x320-s3", func() *graph.Graph {
				return graph.RoadNet(320, 320, 3)
			}))
		default:
			return NewSSSP(80, 80, 3)
		}
	})
}

// NewSSSP builds the benchmark on a rows x cols road network.
func NewSSSP(rows, cols int, seed int64) *SSSP {
	return NewSSSPGraph(graph.RoadNet(rows, cols, seed))
}

// NewSSSPGraph builds the benchmark on an arbitrary weighted graph
// (unweighted real inputs get unit weights).
func NewSSSPGraph(g *graph.Graph) *SSSP {
	g.EnsureWeights()
	return &SSSP{g: g, src: 0, ref: graph.Dijkstra(g, 0)}
}

// Name implements Benchmark.
func (b *SSSP) Name() string { return "sssp" }

func (b *SSSP) verify(load func(uint64) uint64, gc graph.GuestCSR) error {
	for u := 0; u < b.g.N; u++ {
		got := load(gc.DistAddr(uint64(u)))
		want := b.ref[u]
		if want == graph.Inf {
			want = graph.Unvisited
		}
		if got != want {
			return fmt.Errorf("sssp: dist[%d] = %d, want %d", u, got, want)
		}
	}
	return nil
}

// SwarmApp implements Benchmark: task = visit(node), timestamp = tentative
// distance — exactly Fig 1(a) without the software priority queue.
// Profile target (Table 1): ~32 instructions, ~6 words read, ~0.4 written.
func (b *SSSP) SwarmApp() SwarmApp {
	var gc graph.GuestCSR
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		gc = graph.Pack(b.g, ab.Alloc, ab.Store)
		var visit guest.FnID
		visit = ab.Fn("visit", func(e guest.TaskEnv) {
			node := e.Arg(0)
			e.Work(2)
			if e.Load(gc.DistAddr(node)) != graph.Unvisited {
				return // visited path: already settled by a shorter path
			}
			// Non-visited path: settle and relax the out-edges.
			e.Store(gc.DistAddr(node), e.Timestamp())
			lo := e.Load(gc.OffAddr(node))
			hi := e.Load(gc.OffAddr(node + 1))
			e.Work(14) // relaxation bookkeeping (Table 1: ~32 instrs)
			for i := lo; i < hi; i++ {
				child := e.Load(gc.DstAddr(i))
				w := e.Load(gc.WAddr(i))
				e.Work(2)
				// Spatial hint: the destination vertex, so all relaxations
				// of one vertex share a home tile under hint-based mappers.
				e.EnqueueHinted(visit, e.Timestamp()+w, child, [3]uint64{child})
			}
		})
		return []guest.TaskDesc{guest.TaskDesc{Fn: visit, TS: 0, Args: [3]uint64{uint64(b.src)}}.WithHint(uint64(b.src))}
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, gc) }
	return app
}

// RunSwarm implements Benchmark.
func (b *SSSP) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: Fig 1(a)'s sequential Dijkstra with a
// binary-heap priority queue in guest memory.
func (b *SSSP) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	pq := swrt.NewHeap(m.SetupAlloc, uint64(b.g.M())+2)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, gc, pq, func() {})
	})
	return cycles, b.verify(m.Mem().Load, gc)
}

func (b *SSSP) serialBody(e guest.Env, gc graph.GuestCSR, pq swrt.Heap, iterMark func()) {
	pq.Push(e, 0, uint64(b.src))
	for {
		iterMark()
		d, u, ok := pq.PopMin(e)
		if !ok {
			return
		}
		e.Work(1)
		if e.Load(gc.DistAddr(u)) != graph.Unvisited {
			continue
		}
		e.Store(gc.DistAddr(u), d)
		lo := e.Load(gc.OffAddr(u))
		hi := e.Load(gc.OffAddr(u + 1))
		e.Work(2)
		for i := lo; i < hi; i++ {
			v := e.Load(gc.DstAddr(i))
			e.Work(1)
			if e.Load(gc.DistAddr(v)) == graph.Unvisited {
				w := e.Load(gc.WAddr(i))
				pq.Push(e, d+w, v)
			}
		}
	}
}

// SerialApp implements Benchmark.
func (b *SSSP) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		gc := graph.Pack(b.g, alloc, store)
		pq := swrt.NewHeap(alloc, uint64(b.g.M())+2)
		return func(e guest.Env, mark func()) { b.serialBody(e, gc, pq, mark) }
	}}
}

// HasParallel implements Benchmark.
func (b *SSSP) HasParallel() bool { return true }

// RunParallel implements Benchmark: Bellman-Ford with shared round-based
// worklists (as in the paper's Galois-derived baseline): threads relax
// nodes out of priority order, revisiting nodes whose distance later
// improves — wasted work in exchange for parallelism.
func (b *SSSP) RunParallel(nCores int) (uint64, error) {
	m := smp.NewMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	n := uint64(b.g.N)
	// Worklists can exceed n (duplicates): size generously.
	capacity := 4*n + 64
	listA := swrt.NewArray(m.SetupAlloc, capacity)
	listB := swrt.NewArray(m.SetupAlloc, capacity)
	// Control block: [curBase, curCount, nextBase, nextCount, fetchIdx].
	ctl := m.SetupAlloc(64)
	bar := swrt.NewBarrier(m.SetupAlloc, uint64(nCores))
	m.Mem().Store(ctl, listA.Base)
	m.Mem().Store(ctl+8, 1)
	m.Mem().Store(ctl+16, listB.Base)
	m.Mem().Store(listA.Base, uint64(b.src))
	m.Mem().Store(gc.DistAddr(uint64(b.src)), 0)

	const chunk = 16
	st, err := m.Run(func(e guest.ThreadEnv) {
		var sense uint64
		for {
			curBase := e.Load(ctl)
			curCount := e.Load(ctl + 8)
			nextBase := e.Load(ctl + 16)
			if curCount == 0 {
				return
			}
			for {
				start := e.FetchAdd(ctl+32, chunk)
				if start >= curCount {
					break
				}
				end := start + chunk
				if end > curCount {
					end = curCount
				}
				for fi := start; fi < end; fi++ {
					u := e.Load(curBase + fi*8)
					du := e.Load(gc.DistAddr(u))
					lo := e.Load(gc.OffAddr(u))
					hi := e.Load(gc.OffAddr(u + 1))
					e.Work(2)
					for i := lo; i < hi; i++ {
						v := e.Load(gc.DstAddr(i))
						w := e.Load(gc.WAddr(i))
						nd := du + w
						// Atomic relax; re-append on improvement
						// (source of Bellman-Ford's wasted work).
						for {
							cur := e.Load(gc.DistAddr(v))
							e.Work(1)
							if nd >= cur {
								break
							}
							if e.CAS(gc.DistAddr(v), cur, nd) {
								slot := e.FetchAdd(ctl+24, 1)
								if slot >= capacity {
									panic("sssp: worklist overflow")
								}
								e.Store(nextBase+slot*8, v)
								break
							}
						}
					}
				}
			}
			bar.Wait(e, &sense)
			if e.ID() == 0 {
				nc := e.Load(ctl + 24)
				e.Store(ctl, nextBase)
				e.Store(ctl+8, nc)
				e.Store(ctl+16, curBase)
				e.Store(ctl+24, 0)
				e.Store(ctl+32, 0)
			}
			bar.Wait(e, &sense)
		}
	})
	if err != nil {
		return 0, err
	}
	// Bellman-Ford leaves Unvisited distances as Unvisited too; both
	// conventions match (unreachable only).
	return st.Cycles, b.verify(m.Mem().Load, gc)
}
