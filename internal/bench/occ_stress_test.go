package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// TestOCCStressSeeds hammers the Silo OCC implementation across seeds and
// machine sizes; every run must satisfy the serializability invariants.
func TestOCCStressSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	for seed := int64(1); seed <= 6; seed++ {
		for _, cores := range []int{2, 8} {
			b := NewSilo(1, 80, seed) // single warehouse: maximum contention
			if _, err := b.RunParallel(cores); err != nil {
				t.Fatalf("seed %d cores %d: %v", seed, cores, err)
			}
		}
	}
}

// TestSiloSwarmSeeds: the Swarm decomposition must match the reference
// exactly for many transaction mixes.
func TestSiloSwarmSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	for seed := int64(10); seed <= 14; seed++ {
		b := NewSilo(2, 70, seed)
		cfg := core.DefaultConfig(8)
		cfg.TaskQPerCore = 16
		cfg.CommitQPerCore = 4
		if _, err := b.RunSwarm(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
