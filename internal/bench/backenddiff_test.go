package bench

import (
	"reflect"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// The cross-backend differential matrix: every registered benchmark,
// across machine sizes, must produce the same committed guest memory on
// the native runtimes (rt, rt-conservative) as on the cycle-level
// simulator — word for word — and both must satisfy the app's host-side
// serial reference (Verify). The simulator executes tasks one event at a
// time with hardware-model conflict detection; the runtimes execute them
// speculatively on host goroutines with per-word versioning and strict
// timestamp-order commits. Equal final memory across all three (the two
// engines plus the serial oracle) is the strongest end-to-end statement
// that the guest programs really are order-independent decompositions
// and that the runtime's speculation is sound. Under -race the matrix
// doubles as the data-race proof for the rt scheduler and versioned
// store on every app in the suite.
//
// The ordering contract specifies commit order between distinct
// timestamps only; tasks sharing a timestamp may commit in any relative
// order. Three apps are sensitive to that tie order in benign ways —
// msf (union-find path compression), kcore (peeling bookkeeping) and
// des (event coalescing skips enqueues based on current state) — and
// the simulator itself does not produce identical final memory (or, for
// des, commit counts) across its own machine sizes for them. For those
// apps the matrix instead asserts the serial reference plus the
// runtimes' stronger determinism guarantee: identical final memory for
// every worker count, which the simulator does not offer. dsssp sits in
// between — its committed memory is tie-independent (and is held to the
// full cross-backend comparison) but its committed-task count is not.
//
// Full mode runs every app x cores {1,4,16,64} x both runtimes; -short
// trims to corner cells. Small machines additionally run with
// DebugChecks, turning on the runtimes' commit-time re-execution
// (divergence) checks.

var rtBackends = []string{"rt", "rt-conservative"}

// tieSensitive marks apps whose committed memory legitimately depends
// on the unspecified equal-timestamp commit order.
var tieSensitive = map[string]bool{"msf": true, "kcore": true, "des": true}

// tieCountSensitive marks apps whose committed memory is deterministic
// but whose committed-task count varies benignly with the tie order:
// delta-stepping coalesces a whole distance bucket onto one timestamp,
// and whether an improvement's re-push is pruned depends on whether a
// same-bucket handler for that vertex has already committed. Either way
// some handler observes the improvement, so the final memory agrees —
// only the number of handler entries differs.
var tieCountSensitive = map[string]bool{"dsssp": true}

// backendRun builds, runs and verifies app on the backend cfg selects,
// returning the committed guest memory and cumulative stats.
func backendRun(t *testing.T, app SwarmApp, cfg core.Config) (map[uint64]uint64, core.Stats) {
	t.Helper()
	bk, err := app.Backend(cfg)
	if err != nil {
		t.Fatalf("backend %q: %v", cfg.Backend, err)
	}
	ph, err := bk.RunPhase()
	if err != nil {
		t.Fatalf("backend %q: run: %v", cfg.Backend, err)
	}
	if app.Verify != nil {
		if err := app.Verify(bk.Mem().Load); err != nil {
			t.Fatalf("backend %q: result fails the serial reference: %v", cfg.Backend, err)
		}
	}
	return bk.Mem().Snapshot(), ph.Cumulative
}

func TestBackendDifferentialApps(t *testing.T) {
	for _, meta := range Apps() {
		meta := meta
		t.Run(meta.Name, func(t *testing.T) {
			t.Parallel()
			b, err := New(meta.Name, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			app := b.SwarmApp()
			// For tie-sensitive apps the runtimes are held to their own
			// determinism promise: every cell must equal the backend's
			// 1-worker run word for word.
			rtBase := map[string]map[uint64]uint64{}
			for _, cores := range diffCores(testing.Short()) {
				simMem, simStats := backendRun(t, app, core.DefaultConfig(cores))
				for _, name := range rtBackends {
					cfg := core.DefaultConfig(cores)
					cfg.Backend = name
					// Re-execution checks on the small machines, where
					// re-running every committed body stays cheap.
					cfg.DebugChecks = cores <= 4
					gotMem, gotStats := backendRun(t, app, cfg)
					if tieSensitive[meta.Name] {
						if base, ok := rtBase[name]; !ok {
							rtBase[name] = gotMem
						} else if !reflect.DeepEqual(gotMem, base) {
							t.Fatalf("cores=%d %s: committed memory diverges from the backend's own smaller-machine run — the runtime's determinism guarantee is broken", cores, name)
						}
					} else {
						if !reflect.DeepEqual(gotMem, simMem) {
							t.Fatalf("cores=%d %s: committed memory diverges from the simulator (%d vs %d nonzero words)",
								cores, name, len(gotMem), len(simMem))
						}
						if !tieCountSensitive[meta.Name] && gotStats.Commits != simStats.Commits {
							t.Fatalf("cores=%d %s: %d commits, simulator committed %d",
								cores, name, gotStats.Commits, simStats.Commits)
						}
					}
					if gotStats.Backend != name {
						t.Fatalf("cores=%d: stats report backend %q, want %q", cores, gotStats.Backend, name)
					}
				}
			}
		})
	}
}

// TestBackendDifferentialPhases runs every phased (session) benchmark on
// the native runtimes phase by phase: each phase re-verifies against the
// per-phase host reference inside RunSwarmPhases, and the per-phase
// committed-task counts must match the simulator's — work may not shift
// between phases depending on the engine.
func TestBackendDifferentialPhases(t *testing.T) {
	cores := []int{4, 16}
	if testing.Short() {
		cores = cores[:1]
	}
	ran := false
	for _, meta := range Apps() {
		b, err := New(meta.Name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		ph, ok := b.(Phased)
		if !ok {
			continue
		}
		ran = true
		t.Run(meta.Name, func(t *testing.T) {
			for _, nc := range cores {
				sim, err := ph.RunSwarmPhases(core.DefaultConfig(nc))
				if err != nil {
					t.Fatalf("cores=%d sim: %v", nc, err)
				}
				for _, name := range rtBackends {
					cfg := core.DefaultConfig(nc)
					cfg.Backend = name
					cfg.DebugChecks = true
					got, err := ph.RunSwarmPhases(cfg)
					if err != nil {
						t.Fatalf("cores=%d %s: %v", nc, name, err)
					}
					if len(got) != len(sim) {
						t.Fatalf("cores=%d %s: %d phases, simulator ran %d", nc, name, len(got), len(sim))
					}
					for i := range got {
						if got[i].Commits != sim[i].Commits {
							t.Fatalf("cores=%d %s phase %d: %d commits, simulator committed %d",
								nc, name, i+1, got[i].Commits, sim[i].Commits)
						}
					}
				}
			}
		})
	}
	if !ran {
		t.Fatal("no phased benchmark registered — the multi-phase backend differential never ran")
	}
}
