package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// fullSuite returns one small instance of each benchmark.
func fullSuite() []Benchmark {
	return []Benchmark{
		NewBFS(40, 10),
		NewSSSP(16, 16, 3),
		NewAStar(18, 18, 4),
		NewMSF(7, 8, 5),
		NewDES(3, 8, 2, 6),
		NewSilo(2, 60, 7),
	}
}

// TestStatsAccounting: for every app, the Fig 14 cycle breakdown must
// account exactly for cores x cycles, and committed cycles must dominate
// at moderate core counts (the paper's headline: "most time is spent
// executing tasks that are ultimately committed").
func TestStatsAccounting(t *testing.T) {
	for _, b := range fullSuite() {
		st, err := b.RunSwarm(core.DefaultConfig(8))
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		total := st.TotalCoreCycles()
		sum := st.CommittedCycles + st.AbortedCycles + st.SpillCycles + st.StallCycles
		if sum != total {
			t.Errorf("%s: breakdown %d != total %d", b.Name(), sum, total)
		}
		if st.CommittedCycles == 0 {
			t.Errorf("%s: no committed cycles", b.Name())
		}
		if st.Commits == 0 || st.Dequeues < st.Commits {
			t.Errorf("%s: commits=%d dequeues=%d inconsistent", b.Name(), st.Commits, st.Dequeues)
		}
		// Dispatches = commits + aborts of dispatched tasks (requeues
		// re-dispatch) + spill pseudo-dispatches; at minimum:
		if st.Dequeues < st.Commits {
			t.Errorf("%s: fewer dequeues than commits", b.Name())
		}
	}
}

// TestSwarmDeterminismAcrossApps: identical configs reproduce identical
// cycle counts for every benchmark (the simulator is a pure function).
func TestSwarmDeterminismAcrossApps(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep")
	}
	for _, mk := range []func() Benchmark{
		func() Benchmark { return NewBFS(30, 8) },
		func() Benchmark { return NewSSSP(12, 12, 3) },
		func() Benchmark { return NewMSF(6, 8, 5) },
		func() Benchmark { return NewDES(2, 8, 2, 6) },
		func() Benchmark { return NewSilo(1, 40, 7) },
	} {
		a, err := mk().RunSwarm(core.DefaultConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().RunSwarm(core.DefaultConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.Aborts != b.Aborts || a.Commits != b.Commits {
			t.Errorf("nondeterministic run: %+v vs %+v", a.Cycles, b.Cycles)
		}
	}
}

// TestSeedChangesPlacementNotResults: different enqueue seeds give
// different timings but identical verified results (placement is a pure
// performance knob).
func TestSeedChangesPlacementNotResults(t *testing.T) {
	b := NewSSSP(16, 16, 3)
	cfg1 := core.DefaultConfig(8)
	cfg1.Seed = 1
	st1, err := b.RunSwarm(cfg1) // verification inside
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := core.DefaultConfig(8)
	cfg2.Seed = 999
	st2, err := b.RunSwarm(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Commits != st2.Commits {
		t.Errorf("different seeds committed different task counts: %d vs %d", st1.Commits, st2.Commits)
	}
}

// TestAllAppsAtOddMachineSizes exercises non-power-of-two and sub-tile
// machines.
func TestAllAppsAtOddMachineSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("size sweep")
	}
	for _, cores := range []int{1, 2, 12, 20} {
		b := NewSSSP(12, 12, 3)
		if _, err := b.RunSwarm(core.DefaultConfig(cores)); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}
