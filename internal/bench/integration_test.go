package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// fullSuite returns one tiny instance of every registered benchmark.
func fullSuite() []Benchmark {
	return NewSuite(ScaleTiny)
}

// TestStatsAccounting: for every app, the Fig 14 cycle breakdown must
// account exactly for cores x cycles, and committed cycles must dominate
// at moderate core counts (the paper's headline: "most time is spent
// executing tasks that are ultimately committed").
func TestStatsAccounting(t *testing.T) {
	for _, b := range fullSuite() {
		st, err := b.RunSwarm(core.DefaultConfig(8))
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		total := st.TotalCoreCycles()
		sum := st.CommittedCycles + st.AbortedCycles + st.SpillCycles + st.StallCycles
		if sum != total {
			t.Errorf("%s: breakdown %d != total %d", b.Name(), sum, total)
		}
		if st.CommittedCycles == 0 {
			t.Errorf("%s: no committed cycles", b.Name())
		}
		if st.Commits == 0 || st.Dequeues < st.Commits {
			t.Errorf("%s: commits=%d dequeues=%d inconsistent", b.Name(), st.Commits, st.Dequeues)
		}
		// Dispatches = commits + aborts of dispatched tasks (requeues
		// re-dispatch) + spill pseudo-dispatches; at minimum:
		if st.Dequeues < st.Commits {
			t.Errorf("%s: fewer dequeues than commits", b.Name())
		}
	}
}

// (Determinism across identical runs is covered for every registered app
// by TestRegisteredAppsDeterministic in stress_test.go, which compares
// complete core.Stats.)

// TestSeedChangesPlacementNotResults: different enqueue seeds give
// different timings but identical verified results (placement is a pure
// performance knob).
func TestSeedChangesPlacementNotResults(t *testing.T) {
	b := NewSSSP(16, 16, 3)
	cfg1 := core.DefaultConfig(8)
	cfg1.Seed = 1
	st1, err := b.RunSwarm(cfg1) // verification inside
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := core.DefaultConfig(8)
	cfg2.Seed = 999
	st2, err := b.RunSwarm(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Commits != st2.Commits {
		t.Errorf("different seeds committed different task counts: %d vs %d", st1.Commits, st2.Commits)
	}
}

// TestAllAppsAtOddMachineSizes exercises non-power-of-two and sub-tile
// machines.
func TestAllAppsAtOddMachineSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("size sweep")
	}
	for _, cores := range []int{1, 2, 12, 20} {
		b := NewSSSP(12, 12, 3)
		if _, err := b.RunSwarm(core.DefaultConfig(cores)); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}
