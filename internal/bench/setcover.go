package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/frontier"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// SetCover is greedy dominating-set — the set-cover instance where vertex
// v's set is {v} ∪ N(v) — on a Kronecker graph. The classic greedy
// algorithm repeatedly picks the set covering the most still-uncovered
// elements; every pick changes the residual coverage of overlapping sets,
// so the choice order is inherently sequential, yet picks with disjoint
// neighborhoods are independent — ordered parallelism again. On the
// frontier the priority is (maxCov - residual) * n + v: residuals only
// shrink, so priorities only grow, and a handler that finds its priority
// stale simply re-pushes itself at the true one — the textbook lazy-greedy
// evaluation, with Swarm's timestamp order standing in for the lazy
// priority queue. Unique priorities (the + v term) make the greedy order,
// and therefore the committed memory, fully deterministic.
type SetCover struct {
	g      *graph.Graph
	ref    []bool // reference chosen flags, host lazy-greedy
	maxCov uint64 // largest possible residual coverage: maxDeg + 1
}

func init() {
	Register(AppMeta{
		Name:        "setcover",
		Order:       11,
		Summary:     "greedy dominating set (lazy set cover) on a Kronecker graph",
		HasParallel: false,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewSetCover(7, 8, 13)
		case ScaleSmall:
			return NewSetCover(9, 12, 13)
		case ScaleLarge:
			return NewSetCoverGraph(graph.MustLoad("kron-14-16-s13", func() *graph.Graph {
				n, edges := graph.Kronecker(14, 16, 13)
				return graph.FromEdgesUnweighted(n, edges, true)
			}))
		default:
			return NewSetCover(11, 16, 13)
		}
	})
}

// NewSetCover builds the benchmark on a Kronecker graph with 2^logN nodes.
// Edge weights are irrelevant to domination, so the graph is unweighted
// (exercising the W-nil CSR contract end to end).
func NewSetCover(logN, avgDeg int, seed int64) *SetCover {
	n, edges := graph.Kronecker(logN, avgDeg, seed)
	return NewSetCoverGraph(graph.FromEdgesUnweighted(n, edges, true))
}

// NewSetCoverGraph builds the benchmark on an arbitrary graph.
func NewSetCoverGraph(g *graph.Graph) *SetCover {
	b := &SetCover{g: g, maxCov: uint64(g.MaxDegree() + 1)}
	b.ref = b.hostGreedy()
	return b
}

// Name implements Benchmark.
func (b *SetCover) Name() string { return "setcover" }

// cover returns v's set: itself plus its out-neighbors.
func (b *SetCover) cover(v int, visit func(int)) {
	visit(v)
	lo, hi := b.g.Offsets[v], b.g.Offsets[v+1]
	for i := lo; i < hi; i++ {
		visit(int(b.g.Dst[i]))
	}
}

// hostGreedy is the host-side reference: exact greedy with the same
// tie-break the guest priorities encode (max residual coverage, then
// smallest vertex id), via a lazy priority queue.
func (b *SetCover) hostGreedy() []bool {
	n := b.g.N
	covered := make([]bool, n)
	chosen := make([]bool, n)
	type item struct{ prio, v uint64 }
	h := make([]item, 0, n)
	push := func(it item) {
		h = append(h, it)
		for i := len(h) - 1; i > 0 && h[(i-1)/2].prio > h[i].prio; i = (i - 1) / 2 {
			h[i], h[(i-1)/2] = h[(i-1)/2], h[i]
		}
	}
	pop := func() item {
		top := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && h[l].prio < h[m].prio {
				m = l
			}
			if r < len(h) && h[r].prio < h[m].prio {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	residual := func(v int) uint64 {
		cov := uint64(0)
		b.cover(v, func(u int) {
			if !covered[u] {
				cov++
			}
		})
		return cov
	}
	for v := 0; v < n; v++ {
		cov := uint64(b.g.Degree(v) + 1)
		push(item{(b.maxCov-cov)*uint64(n) + uint64(v), uint64(v)})
	}
	for len(h) > 0 {
		it := pop()
		v := int(it.v)
		cov := residual(v)
		if prio := (b.maxCov-cov)*uint64(n) + it.v; prio > it.prio {
			push(item{prio, it.v}) // stale: reinsert at the true priority
			continue
		}
		if cov != 0 {
			chosen[v] = true
			b.cover(v, func(u int) { covered[u] = true })
		}
	}
	return chosen
}

// SwarmApp implements Benchmark: task = decide(v), timestamp = v's last
// known priority. The handler recounts v's residual coverage; if the
// priority went stale it re-pushes at the true one, otherwise v is the
// global greedy minimum right now — commit the decision (choose when the
// residual is nonzero, skip when the set is exhausted) and mark the newly
// covered elements. The frontier line holds the decision timestamp
// (value), the chosen flag (aux) and the pending entry (best); covered
// flags live in a dense array, one word per element so two picks conflict
// only when their sets truly overlap.
func (b *SetCover) SwarmApp() SwarmApp {
	var fr *frontier.Frontier // set by Build; read by Verify
	var covered swrt.Array
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		gc := graph.Pack(b.g, ab.Alloc, ab.Store)
		n := uint64(b.g.N)
		fr = frontier.New(ab.Alloc, n, 1)
		covered = swrt.NewArray(ab.Alloc, n)
		for v := uint64(0); v < n; v++ {
			cov := uint64(b.g.Degree(int(v)) + 1)
			// best = the initial priority the spawner seeds.
			fr.Init(ab.Store, v, frontier.Unsettled, 0, (b.maxCov-cov)*n+v)
			ab.Store(covered.Addr(v), 0)
		}
		var spawn, decide guest.FnID
		spawn = ab.Fn("spawn", func(e guest.TaskEnv) {
			frontier.SpawnRange(e, spawn, func(e guest.TaskEnv, v uint64) {
				deg := e.Load(gc.OffAddr(v+1)) - e.Load(gc.OffAddr(v))
				e.Work(2)
				fr.Seed(e, v, (b.maxCov-(deg+1))*n+v)
			})
		})
		decide = ab.Fn("decide", func(e guest.TaskEnv) {
			v := e.Arg(0)
			e.Work(2)
			if fr.Value(e, v) != frontier.Unsettled {
				return // decided already
			}
			fr.ClearPending(e, v)
			lo := e.Load(gc.OffAddr(v))
			hi := e.Load(gc.OffAddr(v + 1))
			e.Work(4)
			// Recount the residual coverage of {v} ∪ N(v).
			cov := uint64(0)
			selfUncovered := e.Load(covered.Addr(v)) == 0
			if selfUncovered {
				cov++
			}
			e.Work(1)
			for i := lo; i < hi; i++ {
				w := e.Load(gc.DstAddr(i))
				e.Work(2)
				if e.Load(covered.Addr(w)) == 0 {
					cov++
				}
			}
			if prio := (b.maxCov-cov)*n + v; prio > e.Timestamp() {
				fr.Push(e, v, prio) // stale: re-push at the true priority
				return
			}
			// Priority is current: v is the greedy choice right now.
			e.Store(fr.ValueAddr(v), e.Timestamp())
			if cov == 0 {
				return // set exhausted: decided, not chosen
			}
			fr.SetAux(e, v, 1)
			if selfUncovered {
				e.Store(covered.Addr(v), 1)
			}
			for i := lo; i < hi; i++ {
				w := e.Load(gc.DstAddr(i))
				e.Work(1)
				if e.Load(covered.Addr(w)) == 0 {
					e.Store(covered.Addr(w), 1)
				}
			}
		})
		fr.Fn = decide
		return []guest.TaskDesc{{Fn: spawn, TS: 0, Args: [3]uint64{0, n}}}
	}
	app.Verify = func(load func(uint64) uint64) error {
		return b.verify(load, func(v uint64) (decided, chosen, covered2 uint64) {
			return load(fr.ValueAddr(v)), load(fr.AuxAddr(v)), load(covered.Addr(v))
		})
	}
	return app
}

// verify checks chosen flags against the host reference and that every
// element ended covered and every set decided.
func (b *SetCover) verify(load func(uint64) uint64, state func(v uint64) (decided, chosen, covered uint64)) error {
	for v := 0; v < b.g.N; v++ {
		decided, chosen, covered := state(uint64(v))
		if decided == frontier.Unsettled {
			return fmt.Errorf("setcover: set %d never decided", v)
		}
		want := uint64(0)
		if b.ref[v] {
			want = 1
		}
		if chosen != want {
			return fmt.Errorf("setcover: chosen[%d] = %d, want %d", v, chosen, want)
		}
		if covered != 1 {
			return fmt.Errorf("setcover: element %d not covered", v)
		}
	}
	return nil
}

// RunSwarm implements Benchmark.
func (b *SetCover) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// serialState is the serial flavor's guest layout.
type serialState struct {
	gc      graph.GuestCSR
	decided swrt.Array // Unvisited until decided; then 1 chosen / 0 skipped
	covered swrt.Array
	pq      swrt.Heap
}

// buildSerial lays out the serial flavor's guest state.
func (b *SetCover) buildSerial(alloc func(uint64) uint64, store func(addr, val uint64)) serialState {
	n := uint64(b.g.N)
	st := serialState{
		gc:      graph.Pack(b.g, alloc, store),
		decided: swrt.NewArray(alloc, n),
		covered: swrt.NewArray(alloc, n),
		// One live entry per undecided set, plus one reinsertion per
		// residual decrement: n + Σ(deg+1) bounds the heap.
		pq: swrt.NewHeap(alloc, 2*n+uint64(b.g.M())+2),
	}
	for v := uint64(0); v < n; v++ {
		store(st.decided.Addr(v), graph.Unvisited)
		store(st.covered.Addr(v), 0)
	}
	return st
}

// RunSerial implements Benchmark: the lazy-greedy loop over a guest
// binary heap — pop the minimum priority, recount, reinsert if stale,
// else decide.
func (b *SetCover) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	st := b.buildSerial(m.SetupAlloc, m.Mem().Store)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, st, func() {})
	})
	return cycles, b.serialVerify(m.Mem().Load, st)
}

// SerialApp implements Benchmark.
func (b *SetCover) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		st := b.buildSerial(alloc, store)
		return func(e guest.Env, mark func()) { b.serialBody(e, st, mark) }
	}}
}

func (b *SetCover) serialBody(e guest.Env, st serialState, iterMark func()) {
	n := uint64(b.g.N)
	for v := uint64(0); v < n; v++ {
		deg := e.Load(st.gc.OffAddr(v+1)) - e.Load(st.gc.OffAddr(v))
		e.Work(1)
		st.pq.Push(e, (b.maxCov-(deg+1))*n+v, v)
	}
	for {
		iterMark()
		prio, v, ok := st.pq.PopMin(e)
		if !ok {
			return
		}
		lo := e.Load(st.gc.OffAddr(v))
		hi := e.Load(st.gc.OffAddr(v + 1))
		e.Work(2)
		cov := uint64(0)
		selfUncovered := e.Load(st.covered.Addr(v)) == 0
		if selfUncovered {
			cov++
		}
		for i := lo; i < hi; i++ {
			w := e.Load(st.gc.DstAddr(i))
			e.Work(2)
			if e.Load(st.covered.Addr(w)) == 0 {
				cov++
			}
		}
		if p := (b.maxCov-cov)*n + v; p > prio {
			st.pq.Push(e, p, v) // stale: reinsert at the true priority
			continue
		}
		if cov == 0 {
			e.Store(st.decided.Addr(v), 0)
			continue
		}
		e.Store(st.decided.Addr(v), 1)
		if selfUncovered {
			e.Store(st.covered.Addr(v), 1)
		}
		for i := lo; i < hi; i++ {
			w := e.Load(st.gc.DstAddr(i))
			e.Work(1)
			if e.Load(st.covered.Addr(w)) == 0 {
				e.Store(st.covered.Addr(w), 1)
			}
		}
	}
}

// serialVerify checks the serial flavor's decided/covered arrays.
func (b *SetCover) serialVerify(load func(uint64) uint64, st serialState) error {
	return b.verify(load, func(v uint64) (decided, chosen, covered uint64) {
		d := load(st.decided.Addr(v))
		if d == graph.Unvisited {
			return frontier.Unsettled, 0, load(st.covered.Addr(v))
		}
		return 0, d, load(st.covered.Addr(v))
	})
}

// HasParallel implements Benchmark.
func (b *SetCover) HasParallel() bool { return false }

// RunParallel implements Benchmark.
func (b *SetCover) RunParallel(int) (uint64, error) {
	return 0, fmt.Errorf("setcover has no software-parallel version")
}
