package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/frontier"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// KCore computes the k-core decomposition of a Kronecker graph by peeling
// in degree order (Matula–Beck): repeatedly remove a minimum-degree
// vertex; its core number is the running maximum of removal degrees. The
// peel is ordered — each removal lowers neighbor degrees and can change
// who is removed next — which serializes software schedulers, while most
// removals touch disjoint neighborhoods: exactly the fine-grain ordered
// parallelism priority-ordered graph frameworks (PriorityGraph/Julienne)
// target. The Swarm version's timestamps are peel levels; the
// software-parallel version is bucket-synchronous peeling (all vertices
// of the current level removed in rounds of parallel sub-steps).
type KCore struct {
	g      *graph.Graph
	ref    []uint64 // reference core numbers
	maxDeg uint64
}

func init() {
	Register(AppMeta{
		Name:        "kcore",
		Order:       6,
		Summary:     "k-core decomposition by peeling in degree order",
		HasParallel: true,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewKCore(7, 8, 9)
		case ScaleSmall:
			return NewKCore(9, 12, 9)
		case ScaleLarge:
			return NewKCoreGraph(graph.MustLoad("kron-14-16-s9", func() *graph.Graph {
				n, edges := graph.Kronecker(14, 16, 9)
				return graph.FromEdges(n, edges, true)
			}))
		default:
			return NewKCore(11, 16, 9)
		}
	})
}

// NewKCore builds the benchmark on a Kronecker graph with 2^logN nodes.
func NewKCore(logN, avgDeg int, seed int64) *KCore {
	n, edges := graph.Kronecker(logN, avgDeg, seed)
	return NewKCoreGraph(graph.FromEdges(n, edges, true))
}

// NewKCoreGraph builds the benchmark on an arbitrary graph.
func NewKCoreGraph(g *graph.Graph) *KCore {
	return &KCore{g: g, ref: graph.CoreNumbers(g), maxDeg: uint64(g.MaxDegree())}
}

// Name implements Benchmark.
func (b *KCore) Name() string { return "kcore" }

// All flavors share the packed CSR graph; serial and parallel keep core
// numbers in its Dist array (Unvisited until a vertex is peeled). Degree
// bookkeeping is per-flavor: the serial peel's buckets carry degrees
// internally, the Swarm version pads per-vertex state to a line, and the
// bucket-synchronous baseline keeps a dense counter array.

func (b *KCore) verify(load func(uint64) uint64, gc graph.GuestCSR) error {
	for v := 0; v < b.g.N; v++ {
		if got := load(gc.DistAddr(uint64(v))); got != b.ref[v] {
			return fmt.Errorf("kcore: core[%d] = %d, want %d", v, got, b.ref[v])
		}
	}
	return nil
}

// SwarmApp implements Benchmark: task = peel(v), timestamp = peel level,
// expressed on the bucketed-priority frontier (delta 1: exact degree
// order). A spawner tree seeds one entry per vertex at its initial
// degree; peeling v at level k decrements each unpeeled neighbor w and
// Pushes it at its new degree — the frontier clamps the priority to the
// current level and lazily prunes entries that cannot win. The earliest
// entry to reach an unpeeled vertex settles its core number; stale
// entries see it settled and retire.
func (b *KCore) SwarmApp() SwarmApp {
	var gc graph.GuestCSR
	var fr *frontier.Frontier // set by Build; read by Verify
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		alloc, store := ab.Alloc, ab.Store
		gc = graph.Pack(b.g, alloc, store)
		var spawn, peel, relax, decr guest.FnID
		// Conflict detection is line-granular, and the peel's per-vertex
		// state — core number (frontier value), degree counter (aux),
		// earliest pending entry (best) — is its entire hot set (one
		// read-modify-write per removed edge): the frontier lays all three
		// out on one private line per vertex so only true per-vertex
		// dependences conflict.
		n := uint64(b.g.N)
		fr = frontier.New(alloc, n, 1)
		for v := uint64(0); v < n; v++ {
			d := uint64(b.g.Degree(int(v)))
			// best = d: the spawner seeds the root entry at d.
			fr.Init(store, v, frontier.Unsettled, d, d)
		}
		spawn = ab.Fn("spawn", func(e guest.TaskEnv) {
			frontier.SpawnRange(e, spawn, func(e guest.TaskEnv, i uint64) {
				d := fr.Aux(e, i)
				e.Work(1)
				fr.Seed(e, i, d)
			})
		})
		// decrement(i) removes arc i's edge from its target: a tiny task
		// whose footprint is one arc word plus one vertex line, so an
		// abort squashes a single edge removal, not a whole
		// neighborhood. Push re-enqueues the target's peel entry when the
		// new (degree, level) priority beats every pending one.
		// (Registered below, after peel/relax, to keep the table order.)
		decrBody := func(e guest.TaskEnv) {
			w := e.Load(gc.DstAddr(e.Arg(0)))
			e.Work(2)
			if fr.Value(e, w) != frontier.Unsettled {
				return // edge already removed with w
			}
			d := fr.Aux(e, w) - 1
			fr.SetAux(e, w, d)
			fr.Push(e, w, d)
		}
		// relaxArcs fans arcs [lo, hi) out as decrement tasks at the
		// current level, seven at a time plus a continuation — Kronecker
		// hubs have hundreds of neighbors, far past the 8-child hardware
		// limit (§4.1), so removals chain spawner tasks at their level.
		relaxArcs := func(e guest.TaskEnv, lo, hi uint64) {
			end := lo + spawnFanout - 1
			if end > hi {
				end = hi
			}
			for i := lo; i < end; i++ {
				e.Work(1)
				// Spatial hint: the arc-array block — eight consecutive
				// decrements read the same dst-array line.
				e.EnqueueHinted(decr, e.Timestamp(), i/8<<1|1, [3]uint64{i})
			}
			if end < hi {
				e.EnqueueArgs(relax, e.Timestamp(), [3]uint64{end, hi})
			}
		}
		peel = ab.Fn("peel", func(e guest.TaskEnv) {
			v, settled := fr.TrySettle(e)
			if !settled {
				return // already peeled at an earlier level
			}
			lo := e.Load(gc.OffAddr(v))
			hi := e.Load(gc.OffAddr(v + 1))
			e.Work(6) // removal bookkeeping
			if lo < hi {
				relaxArcs(e, lo, hi)
			}
		})
		relax = ab.Fn("relax", func(e guest.TaskEnv) {
			relaxArcs(e, e.Arg(0), e.Arg(1))
		})
		decr = ab.Fn("decrement", decrBody)
		fr.Fn = peel
		return []guest.TaskDesc{{Fn: spawn, TS: 0, Args: [3]uint64{0, uint64(b.g.N)}}}
	}
	app.Verify = func(load func(uint64) uint64) error {
		for v := 0; v < b.g.N; v++ {
			if got := load(fr.ValueAddr(uint64(v))); got != b.ref[v] {
				return fmt.Errorf("kcore: core[%d] = %d, want %d", v, got, b.ref[v])
			}
		}
		return nil
	}
	return app
}

// RunSwarm implements Benchmark.
func (b *KCore) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: tuned serial Matula–Beck peeling over
// the swrt.Buckets degree structure (O(1) decrease-key, O(n+m) total).
func (b *KCore) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	bk := b.buckets(m.SetupAlloc, m.Mem().Store)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, gc, bk, func() {})
	})
	return cycles, b.verify(m.Mem().Load, gc)
}

// buckets builds the serial peel's degree-bucket scheduler.
func (b *KCore) buckets(alloc func(uint64) uint64, store func(addr, val uint64)) swrt.Buckets {
	bk := swrt.NewBuckets(alloc, uint64(b.g.N), b.maxDeg)
	degs := make([]uint64, b.g.N)
	for v := 0; v < b.g.N; v++ {
		degs[v] = uint64(b.g.Degree(v))
	}
	bk.InitDirect(store, degs)
	return bk
}

// serialBody peels vertices in current-degree order; iterMark brackets
// the per-vertex removals for the oracle's TLS analysis.
func (b *KCore) serialBody(e guest.Env, gc graph.GuestCSR, bk swrt.Buckets, iterMark func()) {
	n := uint64(b.g.N)
	k := uint64(0)
	for i := uint64(0); i < n; i++ {
		iterMark()
		v := bk.Vert(e, i)
		d := bk.Deg(e, v)
		e.Work(3)
		if d > k {
			k = d
		}
		e.Store(gc.DistAddr(v), k)
		lo := e.Load(gc.OffAddr(v))
		hi := e.Load(gc.OffAddr(v + 1))
		for a := lo; a < hi; a++ {
			w := e.Load(gc.DstAddr(a))
			e.Work(1)
			if e.Load(gc.DistAddr(w)) != graph.Unvisited {
				continue
			}
			if bk.Deg(e, w) > d {
				bk.DecreaseKey(e, w)
			}
		}
	}
}

// SerialApp implements Benchmark.
func (b *KCore) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		gc := graph.Pack(b.g, alloc, store)
		bk := b.buckets(alloc, store)
		return func(e guest.Env, mark func()) { b.serialBody(e, gc, bk, mark) }
	}}
}

// HasParallel implements Benchmark.
func (b *KCore) HasParallel() bool { return true }

// RunParallel implements Benchmark: bucket-synchronous peeling (the
// Julienne-style software-parallel baseline). Levels k = 0, 1, ... are
// processed in order; the vertex range is scanned once per level to seed
// that level's frontier, and from there sub-rounds are neighbor-driven:
// an atomic degree decrement whose old value is exactly k+1 has just
// dropped its vertex into the current bucket, so the decrementing thread
// peels it and appends it for the next sub-round, with a barrier between
// sub-rounds. Parallelism is still limited to one level's frontier at a
// time — the peel analogue of level-synchronous PBFS (§6.2) — but no
// work beyond the per-level scan is proportional to n.
func (b *KCore) RunParallel(nCores int) (uint64, error) {
	m := smp.NewMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	n := uint64(b.g.N)
	deg := swrt.NewArray(m.SetupAlloc, n) // current degrees, atomically decremented
	for v := uint64(0); v < n; v++ {
		m.Mem().Store(deg.Addr(v), uint64(b.g.Degree(int(v))))
	}
	// Every vertex is peeled (appended) exactly once, so one n-entry
	// array holds the whole peel order; sub-rounds are segments of it.
	frontier := swrt.NewArray(m.SetupAlloc, n)
	// Control block: [k, tail, scanIdx, procIdx, roundStart, roundEnd,
	// scanNeeded].
	ctl := m.SetupAlloc(64)
	m.Mem().Store(ctl+48, 1) // first level needs a seeding scan
	bar := swrt.NewBarrier(m.SetupAlloc, uint64(nCores))

	const scanChunk, procChunk = 32, 4
	st, err := m.Run(func(e guest.ThreadEnv) {
		var sense uint64
		for {
			k := e.Load(ctl)
			if e.Load(ctl+48) != 0 {
				// Seed: scan the vertex range once per level for
				// unpeeled deg <= k.
				for {
					s := e.FetchAdd(ctl+16, scanChunk)
					if s >= n {
						break
					}
					top := s + scanChunk
					if top > n {
						top = n
					}
					for v := s; v < top; v++ {
						e.Work(1)
						if e.Load(gc.DistAddr(v)) != graph.Unvisited {
							continue
						}
						if e.Load(deg.Addr(v)) <= k {
							e.Store(gc.DistAddr(v), k)
							slot := e.FetchAdd(ctl+8, 1)
							e.Store(frontier.Addr(slot), v)
						}
					}
				}
			}
			bar.Wait(e, &sense)
			if e.ID() == 0 {
				e.Store(ctl+40, e.Load(ctl+8))  // freeze this sub-round's end
				e.Store(ctl+24, e.Load(ctl+32)) // reset claim cursor to its start
			}
			bar.Wait(e, &sense)
			end := e.Load(ctl + 40)
			// Remove: decrement unpeeled neighbors of this sub-round's
			// segment; a decrement from k+1 discovers a newly eligible
			// vertex and appends it past end for the next sub-round.
			for {
				s := e.FetchAdd(ctl+24, procChunk)
				if s >= end {
					break
				}
				top := s + procChunk
				if top > end {
					top = end
				}
				for ; s < top; s++ {
					v := e.Load(frontier.Addr(s))
					lo := e.Load(gc.OffAddr(v))
					hi := e.Load(gc.OffAddr(v + 1))
					e.Work(2)
					for a := lo; a < hi; a++ {
						w := e.Load(gc.DstAddr(a))
						e.Work(1)
						if e.Load(gc.DistAddr(w)) != graph.Unvisited {
							continue
						}
						if old := e.FetchAdd(deg.Addr(w), ^uint64(0)); old == k+1 {
							e.Store(gc.DistAddr(w), k)
							slot := e.FetchAdd(ctl+8, 1)
							e.Store(frontier.Addr(slot), w)
						}
					}
				}
			}
			bar.Wait(e, &sense)
			if e.ID() == 0 {
				if e.Load(ctl+8) == end { // no discoveries: level exhausted
					e.Store(ctl, k+1)
					e.Store(ctl+16, 0)
					e.Store(ctl+48, 1)
				} else {
					e.Store(ctl+48, 0)
				}
				e.Store(ctl+32, end) // next sub-round starts where this ended
			}
			bar.Wait(e, &sense)
			if e.Load(ctl+8) == n {
				return
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return st.Cycles, b.verify(m.Mem().Load, gc)
}
