// Package bench implements the ordered-parallelism benchmark suite: the
// paper's six applications — bfs, sssp, astar, msf, des and silo (§2.2,
// Table 4) — plus later workload additions (kcore, color, stream), each
// in up to three flavors:
//
//   - a tuned serial version (the Fig 12 baseline), run in direct mode;
//   - the state-of-the-art software-parallel version (PBFS, Bellman-Ford,
//     PBBS-style deterministic reservations, Chandy-Misra-Bryant, Silo,
//     bucket-synchronous peeling; astar and stream have none), run on the
//     smp machine;
//   - the Swarm version, decomposed into tiny timestamped tasks.
//
// All flavors operate on the same guest-memory data structures and perform
// the same algorithmic work (§5), and every run is verified against a
// host-side reference before its cycle count is trusted.
//
// Applications self-register (see Register/Apps/NewSuite in registry.go)
// with per-scale input sizes, flavor availability and figure membership,
// so the harness, the CLIs and the oracle enumerate the suite without
// hardcoded lists.
package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/backend"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
)

// Benchmark is one application in all of its flavors.
//
// Implementations are immutable after construction (inputs, reference
// results) and every Run* call builds a fresh simulated machine, so a
// Benchmark's methods are safe to call from concurrent host goroutines —
// the experiment harness fans independent runs out over a worker pool.
// Runs must also be deterministic: identical arguments always produce
// identical cycle counts, which is what makes host-parallel sweeps
// byte-identical to sequential ones.
type Benchmark interface {
	// Name returns the paper's benchmark name.
	Name() string
	// RunSerial executes the tuned serial version on a machine sized for
	// nCores (bigger machines have bigger caches, Fig 12) and returns
	// elapsed cycles after verifying the result.
	RunSerial(nCores int) (uint64, error)
	// HasParallel reports whether a software-parallel version exists.
	HasParallel() bool
	// RunParallel executes the software-parallel version with one thread
	// per core and returns elapsed cycles after verifying the result.
	RunParallel(nCores int) (uint64, error)
	// RunSwarm executes the Swarm version and returns its statistics
	// after verifying the result.
	RunSwarm(cfg core.Config) (core.Stats, error)
	// SwarmApp exposes the machine-independent Swarm decomposition, used
	// by the oracle analysis tool (Table 1).
	SwarmApp() SwarmApp
	// SerialApp exposes the sequential implementation for the oracle's
	// ideal-TLS analysis (Table 1 bottom row). The body must call
	// iterMark at each loop-iteration boundary; work before the first
	// mark (e.g. msf's edge sort) is prologue, excluded from the
	// analysis.
	SerialApp() SerialApp
}

// SerialApp is a machine-independent sequential implementation.
type SerialApp struct {
	Build func(alloc func(uint64) uint64, store func(addr, val uint64)) func(e guest.Env, iterMark func())
}

// SwarmApp is a machine-independent Swarm program: Build lays out guest
// memory with the build environment's setup-time primitives, registers
// named task functions (b.Fn), and returns the root tasks. Verify checks
// the final memory state.
type SwarmApp struct {
	Build  func(b *guest.AppBuild) []guest.TaskDesc
	Verify func(load func(addr uint64) uint64) error
}

// Backend builds and starts the execution backend cfg.Backend selects
// (simulator or native runtime), running the app's Build against its
// setup surface and enqueueing the roots. The returned backend is parked
// before phase 1.
func (app SwarmApp) Backend(cfg core.Config) (backend.Backend, error) {
	return backend.New(cfg, func(bk backend.Backend) ([]guest.TaskDesc, *guest.FnTable) {
		b := &guest.AppBuild{Alloc: bk.SetupAlloc, Store: bk.Mem().Store}
		roots := app.Build(b)
		return roots, &b.FnTable
	})
}

// runSwarm builds, runs and verifies a SwarmApp on a machine config.
func runSwarm(app SwarmApp, cfg core.Config) (core.Stats, error) {
	bk, err := app.Backend(cfg)
	if err != nil {
		return core.Stats{}, err
	}
	ph, err := bk.RunPhase()
	if err != nil {
		return core.Stats{}, err
	}
	if app.Verify != nil {
		if err := app.Verify(bk.Mem().Load); err != nil {
			return core.Stats{}, fmt.Errorf("swarm result verification failed: %w", err)
		}
	}
	return ph.Cumulative, nil
}

// Phased is implemented by benchmarks that execute as multi-phase sessions:
// run to quiescence, mutate inputs, inject new roots, run again. RunSwarm
// on such a benchmark reports the cumulative Stats of the whole session;
// RunSwarmPhases exposes the per-phase breakdown.
type Phased interface {
	Benchmark
	// PhaseCount returns the number of quiescent phases a run executes.
	PhaseCount() int
	// RunSwarmPhases executes the session and returns one PhaseStats per
	// phase, each verified against the benchmark's per-phase reference.
	RunSwarmPhases(cfg core.Config) ([]core.PhaseStats, error)
}

// Session is a live phased run: a warm simulated machine parked at a
// quiescent point between phases. Where RunSwarmPhases executes every
// phase in one call, a Session steps on demand — the resubmission pattern
// a simulation daemon serves, where a client advances an incremental
// workload one update batch at a time against state that stays resident.
//
// A Session is not safe for concurrent use; callers (e.g. swarmd's
// session pool) serialize Step per session. Stepping a session is
// deterministic: the k-th phase produces identical statistics no matter
// how the steps interleave with other sessions.
type Session struct {
	app    string
	total  int
	phases []core.PhaseStats
	step   func(phase int) (core.PhaseStats, error)
	snap   func() core.Stats
}

// NewSession assembles a live session for OpenSession implementations:
// total phases, a step hook executing 0-based phase k (inject the phase's
// inputs, run to quiescence, verify), and a cumulative-stats snapshot hook.
func NewSession(app string, total int, step func(phase int) (core.PhaseStats, error), snap func() core.Stats) *Session {
	return &Session{app: app, total: total, step: step, snap: snap}
}

// App returns the benchmark name the session runs.
func (s *Session) App() string { return s.app }

// PhaseCount returns the session's total phase count.
func (s *Session) PhaseCount() int { return s.total }

// Done returns how many phases have completed.
func (s *Session) Done() int { return len(s.phases) }

// Remaining returns how many phases are left to step.
func (s *Session) Remaining() int { return s.total - len(s.phases) }

// Phases returns the statistics of every completed phase, in order.
func (s *Session) Phases() []core.PhaseStats { return s.phases }

// Stats returns cumulative statistics at the session's current quiescent
// point.
func (s *Session) Stats() core.Stats { return s.snap() }

// Step executes the next phase — injecting that phase's inputs, running
// to quiescence and verifying against the per-phase reference — and
// returns its statistics. Stepping past the last phase is an error.
func (s *Session) Step() (core.PhaseStats, error) {
	if s.Remaining() == 0 {
		return core.PhaseStats{}, fmt.Errorf("%s session: all %d phases have run", s.app, s.total)
	}
	ph, err := s.step(len(s.phases))
	if err != nil {
		return core.PhaseStats{}, err
	}
	s.phases = append(s.phases, ph)
	return ph, nil
}

// Sessioned is implemented by phased benchmarks that can open a live
// session instead of running all phases at once. RunSwarmPhases on such a
// benchmark is equivalent to opening a session and stepping it to
// completion — bit-identical statistics either way.
type Sessioned interface {
	Phased
	// OpenSession builds the machine (laying out guest memory and
	// enqueueing the initial roots) and parks it before phase 1.
	OpenSession(cfg core.Config) (*Session, error)
}

// spawnRange fans a [lo, hi) index range out as tasks with function
// edgeFn(ts(i), i), using a tree of spawner tasks to respect the 8-child
// hardware limit (§4.1: tasks that need more children enqueue tasks that
// create them). Spawners run at the parent's timestamp.
//
// The caller provides the spawner's own function id so spawners can
// re-enqueue themselves (the function table must map spawnFn to a task
// that calls SpawnRangeTask).
const spawnFanout = 8

// spawnRangeTask is the body shared by range-spawner tasks: it either
// enqueues leaf tasks directly (small ranges) or splits the range among up
// to spawnFanout sub-spawners.
func spawnRangeTask(e guest.TaskEnv, spawnFn guest.FnID, enqueueLeaf func(e guest.TaskEnv, i uint64)) {
	lo, hi := e.Arg(0), e.Arg(1)
	n := hi - lo
	e.Work(4)
	if n <= spawnFanout {
		for i := lo; i < hi; i++ {
			enqueueLeaf(e, i)
		}
		return
	}
	chunk := (n + spawnFanout - 1) / spawnFanout
	for s := lo; s < hi; s += chunk {
		end := s + chunk
		if end > hi {
			end = hi
		}
		e.EnqueueArgs(spawnFn, e.Timestamp(), [3]uint64{s, end})
	}
}
