package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

func TestAStarSerial(t *testing.T) {
	b := NewAStar(20, 20, 5)
	if _, err := b.RunSerial(1); err != nil {
		t.Fatal(err)
	}
}

func TestAStarSwarm(t *testing.T) {
	b := NewAStar(20, 20, 5)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

func TestAStarNoParallel(t *testing.T) {
	b := NewAStar(5, 5, 1)
	if b.HasParallel() {
		t.Fatal("astar should have no software-parallel version (as in the paper)")
	}
	if _, err := b.RunParallel(4); err == nil {
		t.Fatal("expected error")
	}
}

// TestAStarPrunes: A* must settle far fewer nodes than the whole graph
// when routing corner-to-corner with an informative heuristic... at least
// on the serial version where early termination is exact.
func TestAStarPrunes(t *testing.T) {
	b := NewAStar(30, 30, 7)
	m := 0
	// Count settled nodes after a serial run by re-running and counting.
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	_ = cyc
	_ = m
}

func TestMSFSerial(t *testing.T) {
	b := NewMSF(8, 8, 3)
	if _, err := b.RunSerial(1); err != nil {
		t.Fatal(err)
	}
}

func TestMSFParallel(t *testing.T) {
	b := NewMSF(8, 8, 3)
	for _, cores := range []int{1, 4, 8} {
		if _, err := b.RunParallel(cores); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}

func TestMSFSwarm(t *testing.T) {
	b := NewMSF(8, 8, 3)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		// One task per edge plus spawners.
		if st.Commits < uint64(len(b.edges)) {
			t.Fatalf("commits=%d < edges=%d", st.Commits, len(b.edges))
		}
	}
}

func TestMSFSwarmSpills(t *testing.T) {
	if testing.Short() {
		t.Skip("spill stress")
	}
	// Enough edges to overflow the 4-core task queue (256 entries):
	// exercises coalescers/splitters in a real benchmark.
	b := NewMSF(10, 10, 3) // 1024 nodes, ~5120 edges
	st, err := b.RunSwarm(core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if st.SpilledTasks == 0 {
		t.Error("expected task spills with thousands of edges on a 4-core machine")
	}
	t.Logf("msf 4c: cycles=%d commits=%d spilled=%d aborts=%d",
		st.Cycles, st.Commits, st.SpilledTasks, st.Aborts)
}
