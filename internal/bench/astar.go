package bench

import (
	"fmt"
	"math"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// AStar routes between two points of a road map with the A* algorithm
// (the paper uses the Germany road network from OpenStreetMap). Timestamps
// are quantized f = g + h scores; the Euclidean-distance heuristic is
// consistent because edge weights are at least the scaled Euclidean
// distance (see graph.RoadNet). As in the paper, there is no software-only
// parallel version: parallel A* implementations sacrifice solution quality
// for speed (§5).
type AStar struct {
	g           *graph.Graph
	src, target int
	ref         []uint64 // Dijkstra distances (ground truth)
}

func init() {
	Register(AppMeta{
		Name:        "astar",
		Order:       2,
		Summary:     "A* route search on a road network with coordinates",
		HasParallel: false, // no software-parallel version, as in the paper
		Figures:     []string{"fig18"},
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewAStar(18, 18, 4)
		case ScaleSmall:
			return NewAStar(40, 40, 4)
		default:
			return NewAStar(90, 90, 4)
		}
	})
}

// NewAStar builds the benchmark on a rows x cols road network, routing
// corner to corner.
func NewAStar(rows, cols int, seed int64) *AStar {
	g := graph.RoadNet(rows, cols, seed)
	return &AStar{g: g, src: 0, target: g.N - 1, ref: graph.Dijkstra(g, 0)}
}

// Name implements Benchmark.
func (b *AStar) Name() string { return "astar" }

// verify checks that every settled node carries its true shortest-path
// distance and that the target was settled. (Which nodes beyond the
// pruning frontier get settled legitimately varies between flavors and
// equal-timestamp orders.)
func (b *AStar) verify(load func(uint64) uint64, gc graph.GuestCSR) error {
	settled := 0
	for u := 0; u < b.g.N; u++ {
		got := load(gc.DistAddr(uint64(u)))
		if got == graph.Unvisited {
			continue
		}
		settled++
		if got != b.ref[u] {
			return fmt.Errorf("astar: dist[%d] = %d, want %d", u, got, b.ref[u])
		}
	}
	if got := load(gc.DistAddr(uint64(b.target))); got != b.ref[b.target] {
		return fmt.Errorf("astar: target distance = %d, want %d", got, b.ref[b.target])
	}
	if settled == 0 {
		return fmt.Errorf("astar: nothing settled")
	}
	return nil
}

// heurCost models the ~40 instructions of coordinate loads, subtraction,
// multiplication and square root per heuristic evaluation; astar's tasks
// are an order of magnitude longer than sssp's (Table 1: 195 vs 32).
const heurCost = 55

// fixedToFloat converts a 16.16 fixed-point guest coordinate.
func fixedToFloat(v uint64) float64 { return float64(int64(v)) / 65536 }

// heuristic computes the admissible lower bound from (x, y) to the target
// coordinates, in weight units.
func heuristic(x, y, tx, ty float64) uint64 {
	dx, dy := x-tx, y-ty
	return uint64(math.Sqrt(dx*dx+dy*dy) * graph.CoordScale)
}

// SwarmApp implements Benchmark: task = visit(node, g), timestamp = f.
func (b *AStar) SwarmApp() SwarmApp {
	var gc graph.GuestCSR
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		gc = graph.Pack(b.g, ab.Alloc, ab.Store)
		target := uint64(b.target)
		var visit guest.FnID
		visit = ab.Fn("visit", func(e guest.TaskEnv) {
			node, gdist := e.Arg(0), e.Arg(1)
			e.Work(2)
			if e.Load(gc.DistAddr(node)) != graph.Unvisited {
				return
			}
			// Prune: once the target is settled, no task ordered at or
			// after it can improve the route.
			if node != target {
				e.Work(1)
				if e.Load(gc.DistAddr(target)) != graph.Unvisited {
					return
				}
			}
			e.Store(gc.DistAddr(node), gdist)
			if node == target {
				return
			}
			e.Work(20) // node expansion bookkeeping
			tx := fixedToFloat(e.Load(gc.XAddr(target)))
			ty := fixedToFloat(e.Load(gc.YAddr(target)))
			lo := e.Load(gc.OffAddr(node))
			hi := e.Load(gc.OffAddr(node + 1))
			e.Work(2)
			for i := lo; i < hi; i++ {
				child := e.Load(gc.DstAddr(i))
				w := e.Load(gc.WAddr(i))
				cx := fixedToFloat(e.Load(gc.XAddr(child)))
				cy := fixedToFloat(e.Load(gc.YAddr(child)))
				e.Work(heurCost)
				g2 := gdist + w
				f := g2 + heuristic(cx, cy, tx, ty)
				// Spatial hint: the destination vertex (see sssp).
				e.EnqueueHinted(visit, f, child, [3]uint64{child, g2})
			}
		})
		// Root f = h(src).
		sx, sy := b.g.X[b.src], b.g.Y[b.src]
		tx, ty := b.g.X[b.target], b.g.Y[b.target]
		f0 := heuristic(sx, sy, tx, ty)
		return []guest.TaskDesc{guest.TaskDesc{Fn: visit, TS: f0, Args: [3]uint64{uint64(b.src), 0}}.WithHint(uint64(b.src))}
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, gc) }
	return app
}

// RunSwarm implements Benchmark.
func (b *AStar) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: tuned serial A* with a binary heap keyed
// by f, stopping when the target is settled.
func (b *AStar) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	pq := swrt.NewHeap(m.SetupAlloc, uint64(b.g.M())+2)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, gc, pq, func() {})
	})
	return cycles, b.verify(m.Mem().Load, gc)
}

func (b *AStar) serialBody(e guest.Env, gc graph.GuestCSR, pq swrt.Heap, iterMark func()) {
	target := uint64(b.target)
	tx := fixedToFloat(e.Load(gc.XAddr(target)))
	ty := fixedToFloat(e.Load(gc.YAddr(target)))
	sx := fixedToFloat(e.Load(gc.XAddr(uint64(b.src))))
	sy := fixedToFloat(e.Load(gc.YAddr(uint64(b.src))))
	e.Work(heurCost)
	// Heap holds (f, node) pairs; g is recovered as f - h(node).
	pq.Push(e, heuristic(sx, sy, tx, ty), uint64(b.src))
	gOf := func(f uint64, x, y float64) uint64 { return f - heuristic(x, y, tx, ty) }
	for {
		iterMark()
		f, u, ok := pq.PopMin(e)
		if !ok {
			return
		}
		e.Work(1)
		if e.Load(gc.DistAddr(u)) != graph.Unvisited {
			continue
		}
		ux := fixedToFloat(e.Load(gc.XAddr(u)))
		uy := fixedToFloat(e.Load(gc.YAddr(u)))
		e.Work(heurCost)
		g := gOf(f, ux, uy)
		e.Store(gc.DistAddr(u), g)
		if u == target {
			return
		}
		lo := e.Load(gc.OffAddr(u))
		hi := e.Load(gc.OffAddr(u + 1))
		e.Work(2)
		for i := lo; i < hi; i++ {
			v := e.Load(gc.DstAddr(i))
			e.Work(1)
			if e.Load(gc.DistAddr(v)) != graph.Unvisited {
				continue
			}
			w := e.Load(gc.WAddr(i))
			vx := fixedToFloat(e.Load(gc.XAddr(v)))
			vy := fixedToFloat(e.Load(gc.YAddr(v)))
			e.Work(heurCost)
			pq.Push(e, g+w+heuristic(vx, vy, tx, ty), v)
		}
	}
}

// SerialApp implements Benchmark.
func (b *AStar) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		gc := graph.Pack(b.g, alloc, store)
		pq := swrt.NewHeap(alloc, uint64(b.g.M())+2)
		return func(e guest.Env, mark func()) { b.serialBody(e, gc, pq, mark) }
	}}
}

// HasParallel implements Benchmark: none, as in the paper.
func (b *AStar) HasParallel() bool { return false }

// RunParallel implements Benchmark.
func (b *AStar) RunParallel(int) (uint64, error) {
	return 0, fmt.Errorf("astar: no software-parallel version (parallel pathfinding sacrifices solution quality, §5)")
}
