package bench

import (
	"reflect"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// TestAllAppsUnderAllMappers runs every registered app under every
// task-mapping policy on a 16-core (4-tile) machine. Each run's result is
// verified against the host reference inside RunSwarm, and each (app,
// mapper) cell must be run-to-run deterministic — the golden fingerprint
// corpus pins only the random policy, so this is the coverage for hint,
// stealing and roundrobin placement (and for the stealing epoch, the one
// mapper that migrates queued tasks between tiles mid-run).
func TestAllAppsUnderAllMappers(t *testing.T) {
	sawSteals := false
	for _, name := range AppNames() {
		b, err := New(name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		for _, mp := range core.MapperNames() {
			cfg := core.DefaultConfig(16)
			cfg.Mapper = mp
			st1, err := b.RunSwarm(cfg)
			if err != nil {
				t.Fatalf("%s mapper=%s: %v", name, mp, err)
			}
			if st1.Mapper != mp {
				t.Fatalf("%s: Stats.Mapper = %q, want %q", name, st1.Mapper, mp)
			}
			if mp != "stealing" && st1.StolenTasks != 0 {
				t.Fatalf("%s mapper=%s stole %d tasks", name, mp, st1.StolenTasks)
			}
			sawSteals = sawSteals || st1.StolenTasks > 0
			st2, err := b.RunSwarm(cfg)
			if err != nil {
				t.Fatalf("%s mapper=%s rerun: %v", name, mp, err)
			}
			if !reflect.DeepEqual(st1, st2) {
				t.Fatalf("%s mapper=%s: nondeterministic Stats across identical runs", name, mp)
			}
		}
	}
	// At least one app must actually exercise the steal path at this
	// machine size (silo does, heavily) or the policy is untested.
	if !sawSteals {
		t.Error("stealing mapper never stole a task across the whole suite")
	}
}
