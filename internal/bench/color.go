package bench

import (
	"fmt"
	"sort"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/frontier"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// Color computes a priority-ordered greedy graph coloring: vertices are
// ranked largest-degree-first (Welsh–Powell) and each takes the smallest
// color absent among its earlier-ranked neighbors. The result is exactly
// the sequential greedy coloring — a deterministic fixpoint every flavor
// must reproduce. Sequential greedy is trivially ordered; the
// software-parallel baseline runs PBBS-style deterministic rounds (each
// round colors every vertex whose earlier-ranked neighbors are all
// colored), while Swarm just timestamps vertex tasks with their rank and
// lets speculation color independent vertices out of order.
type Color struct {
	g     *graph.Graph
	order []uint32 // order[r] = vertex with rank r (largest-degree-first)
	rank  []uint64 // rank[v]
	eOff  []uint32 // CSR of earlier-ranked neighbors
	eDst  []uint32
	ref   []uint64 // reference greedy colors
	words uint64   // mex bitmask words (covers maxDeg+1 colors)
}

func init() {
	Register(AppMeta{
		Name:        "color",
		Order:       7,
		Summary:     "priority-ordered greedy graph coloring (largest-degree-first)",
		HasParallel: true,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewColor(150, 600, 11)
		case ScaleSmall:
			return NewColor(800, 4000, 11)
		case ScaleLarge:
			return NewColorGraph(graph.MustLoad("random-16000-96000-s11", func() *graph.Graph {
				return graph.Random(16000, 96000, 11)
			}))
		default:
			return NewColor(4000, 24000, 11)
		}
	})
}

// NewColor builds the benchmark on a random connected graph with n nodes
// and ~m arcs per direction.
func NewColor(n, m int, seed int64) *Color {
	return NewColorGraph(graph.Random(n, m, seed))
}

// NewColorGraph builds the benchmark on an arbitrary graph (weights, if
// any, are ignored).
func NewColorGraph(g *graph.Graph) *Color {
	n := g.N
	b := &Color{g: g}
	// Largest-degree-first rank, ties by vertex id (deterministic).
	b.order = make([]uint32, n)
	for v := range b.order {
		b.order[v] = uint32(v)
	}
	sort.SliceStable(b.order, func(i, j int) bool {
		du, dv := g.Degree(int(b.order[i])), g.Degree(int(b.order[j]))
		if du != dv {
			return du > dv
		}
		return b.order[i] < b.order[j]
	})
	b.rank = make([]uint64, n)
	for r, v := range b.order {
		b.rank[v] = uint64(r)
	}
	// CSR of earlier-ranked neighbors: the only ones greedy consults.
	b.eOff = make([]uint32, n+1)
	for v := 0; v < n; v++ {
		lo, hi := g.Neighbors(v)
		for a := lo; a < hi; a++ {
			if b.rank[g.Dst[a]] < b.rank[v] {
				b.eOff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		b.eOff[v+1] += b.eOff[v]
	}
	b.eDst = make([]uint32, b.eOff[n])
	cursor := append([]uint32(nil), b.eOff[:n]...)
	for v := 0; v < n; v++ {
		lo, hi := g.Neighbors(v)
		for a := lo; a < hi; a++ {
			if w := g.Dst[a]; b.rank[w] < b.rank[v] {
				b.eDst[cursor[v]] = w
				cursor[v]++
			}
		}
	}
	b.words = (uint64(g.MaxDegree()) + 2 + 63) / 64
	// Reference: sequential greedy in rank order.
	b.ref = make([]uint64, n)
	mask := make([]uint64, b.words)
	for _, v32 := range b.order {
		v := int(v32)
		for i := range mask {
			mask[i] = 0
		}
		for a := b.eOff[v]; a < b.eOff[v+1]; a++ {
			c := b.ref[b.eDst[a]]
			mask[c>>6] |= 1 << (c & 63)
		}
		b.ref[v] = mex(mask)
	}
	return b
}

// mex returns the smallest index whose bit is clear.
func mex(mask []uint64) uint64 {
	for i, w := range mask {
		if w != ^uint64(0) {
			j := uint64(0)
			for w&1 == 1 {
				w >>= 1
				j++
			}
			return uint64(i)*64 + j
		}
	}
	return uint64(len(mask)) * 64
}

// Name implements Benchmark.
func (b *Color) Name() string { return "color" }

// guestColor is the layout shared by all flavors: the rank order, the
// earlier-neighbor CSR and the per-vertex color array (Unvisited =
// uncolored). The mex scratch bitmask lives in registers (it is bounded
// by the max degree), so only real sharing — neighbor colors — touches
// memory.
type guestColor struct {
	ord  swrt.Array // ord[r] = vertex with rank r
	eoff swrt.Array
	edst swrt.Array
	col  swrt.Array
}

func (b *Color) pack(alloc func(uint64) uint64, store func(addr, val uint64)) guestColor {
	n := uint64(b.g.N)
	g := guestColor{
		ord:  swrt.NewArray(alloc, n),
		eoff: swrt.NewArray(alloc, n+1),
		edst: swrt.NewArray(alloc, uint64(len(b.eDst))),
		col:  swrt.NewArray(alloc, n),
	}
	for r, v := range b.order {
		store(g.ord.Addr(uint64(r)), uint64(v))
	}
	for i, o := range b.eOff {
		store(g.eoff.Addr(uint64(i)), uint64(o))
	}
	for i, w := range b.eDst {
		store(g.edst.Addr(uint64(i)), uint64(w))
	}
	for v := uint64(0); v < n; v++ {
		store(g.col.Addr(v), graph.Unvisited)
	}
	return g
}

func (b *Color) verify(load func(uint64) uint64, g guestColor) error {
	for v := 0; v < b.g.N; v++ {
		if got := load(g.col.Addr(uint64(v))); got != b.ref[v] {
			return fmt.Errorf("color: color[%d] = %d, want %d (greedy reference)", v, got, b.ref[v])
		}
	}
	return nil
}

// colorVertex performs one greedy step: mex over the earlier-ranked
// neighbors' colors, accumulated into the caller's scratch mask
// (register state, not simulated memory — the serial body reuses one
// mask across iterations, while each Swarm task execution needs its own:
// task coroutines suspend at every Load, so concurrent tasks would
// corrupt shared scratch). Colors above the bitmask (i.e. Unvisited,
// read speculatively before the neighbor commits) are ignored; conflict
// detection squashes the task when the real color arrives.
func (b *Color) colorVertex(e guest.Env, g guestColor, v uint64, mask []uint64) {
	lo := g.eoff.Get(e, v)
	hi := g.eoff.Get(e, v+1)
	clear(mask)
	e.Work(3)
	for a := lo; a < hi; a++ {
		w := g.edst.Get(e, a)
		c := g.col.Get(e, w)
		e.Work(2)
		if c < b.words*64 {
			mask[c>>6] |= 1 << (c & 63)
		}
	}
	e.Work(uint64(len(mask)))
	g.col.Set(e, v, mex(mask))
}

// SwarmApp implements Benchmark: task = color(v), timestamp = rank(v),
// seeded through the frontier's static-order spawner (the priority is the
// precomputed Welsh–Powell rank, each vertex enters the frontier exactly
// once). Tasks read only earlier-ranked neighbors, so every conflict is a
// true rank-order dependence; independent vertices color in parallel.
func (b *Color) SwarmApp() SwarmApp {
	var g guestColor
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		g = b.pack(ab.Alloc, ab.Store)
		var spawn, color guest.FnID
		so := frontier.StaticOrder{Ord: g.ord}
		spawn = ab.Fn("spawn", func(e guest.TaskEnv) {
			frontier.SpawnRange(e, spawn, so.SpawnLeaf)
		})
		color = ab.Fn("color", func(e guest.TaskEnv) {
			b.colorVertex(e, g, e.Arg(0), make([]uint64, b.words))
		})
		so.Fn = color
		return []guest.TaskDesc{{Fn: spawn, TS: 0, Args: [3]uint64{0, uint64(b.g.N)}}}
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, g) }
	return app
}

// RunSwarm implements Benchmark.
func (b *Color) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: greedy in rank order.
func (b *Color) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	g := b.pack(m.SetupAlloc, m.Mem().Store)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, g, func() {})
	})
	return cycles, b.verify(m.Mem().Load, g)
}

func (b *Color) serialBody(e guest.Env, g guestColor, iterMark func()) {
	n := uint64(b.g.N)
	mask := make([]uint64, b.words) // direct mode: iterations never interleave
	for r := uint64(0); r < n; r++ {
		iterMark()
		v := g.ord.Get(e, r)
		e.Work(1)
		b.colorVertex(e, g, v, mask)
	}
}

// SerialApp implements Benchmark.
func (b *Color) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		g := b.pack(alloc, store)
		return func(e guest.Env, mark func()) { b.serialBody(e, g, mark) }
	}}
}

// HasParallel implements Benchmark.
func (b *Color) HasParallel() bool { return true }

// RunParallel implements Benchmark: PBBS-style deterministic rounds
// (speculative_for over the rank order). Each round every remaining
// vertex whose earlier-ranked neighbors are all colored takes its greedy
// color; the rest retry next round. The result equals sequential
// greedy's, but each round pays a full pass plus barriers — the
// reservation analogue of msf's baseline (§6.2).
func (b *Color) RunParallel(nCores int) (uint64, error) {
	m := smp.NewMachine(smp.DefaultConfig(nCores))
	g := b.pack(m.SetupAlloc, m.Mem().Store)
	n := uint64(b.g.N)
	listA := swrt.NewArray(m.SetupAlloc, n)
	listB := swrt.NewArray(m.SetupAlloc, n)
	// Control block: [curBase, curCount, nextBase, nextCount, fetchIdx].
	ctl := m.SetupAlloc(64)
	bar := swrt.NewBarrier(m.SetupAlloc, uint64(nCores))
	for r := uint64(0); r < n; r++ {
		m.Mem().Store(listA.Addr(r), uint64(b.order[r]))
	}
	m.Mem().Store(ctl, listA.Base)
	m.Mem().Store(ctl+8, n)
	m.Mem().Store(ctl+16, listB.Base)

	const chunk = 8
	st, err := m.Run(func(e guest.ThreadEnv) {
		var sense uint64
		mask := make([]uint64, b.words) // per-thread mex scratch
		for {
			curBase := e.Load(ctl)
			curCount := e.Load(ctl + 8)
			nextBase := e.Load(ctl + 16)
			if curCount == 0 {
				return
			}
			for {
				s := e.FetchAdd(ctl+32, chunk)
				if s >= curCount {
					break
				}
				top := s + chunk
				if top > curCount {
					top = curCount
				}
				for ; s < top; s++ {
					v := e.Load(curBase + s*8)
					lo := e.Load(g.eoff.Addr(v))
					hi := e.Load(g.eoff.Addr(v + 1))
					clear(mask)
					ready := true
					e.Work(2)
					for a := lo; a < hi; a++ {
						w := e.Load(g.edst.Addr(a))
						c := e.Load(g.col.Addr(w))
						e.Work(2)
						if c == graph.Unvisited {
							ready = false
							break
						}
						mask[c>>6] |= 1 << (c & 63)
					}
					if ready {
						e.Work(uint64(len(mask)))
						e.Store(g.col.Addr(v), mex(mask))
					} else {
						slot := e.FetchAdd(ctl+24, 1)
						e.Store(nextBase+slot*8, v)
					}
				}
			}
			bar.Wait(e, &sense)
			if e.ID() == 0 {
				nc := e.Load(ctl + 24)
				e.Store(ctl, nextBase)
				e.Store(ctl+8, nc)
				e.Store(ctl+16, curBase)
				e.Store(ctl+24, 0)
				e.Store(ctl+32, 0)
			}
			bar.Wait(e, &sense)
		}
	})
	if err != nil {
		return 0, err
	}
	return st.Cycles, b.verify(m.Mem().Load, g)
}
