package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// TestLargeScaleSmoke runs the two shortest large-scale cells end to end
// on the native runtime: input resolution (real file, binary cache, or
// generate-and-cache), a six-figure-commit run, and the host-reference
// verification all have to hold at a scale where generator and CSR bugs
// actually surface (the ~100k-node road network overflows any uint32 arc
// arithmetic left in the loader path). The full large matrix runs in the
// dedicated CI job; this cell keeps `go test ./...` honest without it.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large inputs: skipped in -short mode")
	}
	for _, name := range []string{"sssp", "dsssp"} {
		t.Run(name, func(t *testing.T) {
			b, err := New(name, ScaleLarge)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(16)
			cfg.Backend = "rt"
			st, err := b.RunSwarm(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.Commits < 100_000 {
				t.Fatalf("%s at large scale committed only %d tasks — input did not scale", name, st.Commits)
			}
		})
	}
}
