package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects input sizes: Tiny for unit tests, Small for the bench
// harness, Medium for cmd/experiments runs (minutes), Large for real or
// cached on-disk inputs (graph apps load DIMACS/SNAP files when present —
// see internal/graph's input resolution — and fall back to a generated,
// disk-cached graph of comparable size). Each registered application maps
// a Scale to concrete input parameters that keep the structural
// properties driving its behaviour (deep mesh, road network, skewed
// Kronecker graph, chained adder array, TPC-C mix, ...). Apps without a
// dedicated large input treat Large as Medium.
type Scale int

const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScaleMedium
	ScaleLarge
)

func (s Scale) String() string {
	return [...]string{"tiny", "small", "medium", "large"}[s]
}

// ParseScale maps a -scale flag value to a Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "large":
		return ScaleLarge, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want tiny, small, medium or large)", name)
}

// AppMeta is the registry's per-application metadata, available without
// constructing the (input-generating, possibly expensive) Benchmark.
type AppMeta struct {
	// Name is the benchmark's canonical name (the -app flag value).
	Name string
	// Order fixes the suite position: the paper's six apps first, in
	// Table 4 order, then later additions in the order they were added.
	Order int
	// Summary is a one-line description for CLI usage strings and docs.
	Summary string
	// HasParallel reports whether a software-parallel version exists
	// (mirrors Benchmark.HasParallel).
	HasParallel bool
	// Phased reports whether the app is a multi-phase session workload
	// (implements the Phased interface), so API consumers — swarmd's
	// /apps endpoint, per-phase sweeps — can tell without constructing
	// the benchmark.
	Phased bool
	// Figures lists evaluation tables/figures the app is singled out in
	// beyond the whole-suite sweeps (e.g. "fig13", "fig18").
	Figures []string
}

// InFigure reports whether the app is tagged with the given figure.
func (m AppMeta) InFigure(fig string) bool {
	for _, f := range m.Figures {
		if f == fig {
			return true
		}
	}
	return false
}

type regEntry struct {
	meta AppMeta
	mk   func(Scale) Benchmark
}

// registry maps app name to its entry. Registration happens only from
// package init functions; all reads happen after init, so no locking.
var registry = map[string]regEntry{}

// Register adds an application to the registry. Each app file calls it
// from init, so constructing a suite, resolving an -app flag, or
// enumerating the sweep never needs a hardcoded list. Register panics on
// duplicate or empty names (programming errors, caught by any test run).
func Register(meta AppMeta, mk func(Scale) Benchmark) {
	if meta.Name == "" || mk == nil {
		panic("bench: Register requires a name and a constructor")
	}
	if _, dup := registry[meta.Name]; dup {
		panic("bench: duplicate app " + meta.Name)
	}
	registry[meta.Name] = regEntry{meta: meta, mk: mk}
}

// Apps returns the registered apps' metadata in suite order.
func Apps() []AppMeta {
	metas := make([]AppMeta, 0, len(registry))
	for _, e := range registry {
		metas = append(metas, e.meta)
	}
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].Order != metas[j].Order {
			return metas[i].Order < metas[j].Order
		}
		return metas[i].Name < metas[j].Name
	})
	return metas
}

// AppNames returns the registered app names in suite order.
func AppNames() []string {
	metas := Apps()
	names := make([]string, len(metas))
	for i, m := range metas {
		names[i] = m.Name
	}
	return names
}

// Lookup returns an app's metadata by name.
func Lookup(name string) (AppMeta, bool) {
	e, ok := registry[name]
	return e.meta, ok
}

// New constructs one registered app at a scale.
func New(name string, s Scale) (Benchmark, error) {
	e, ok := registry[name]
	if !ok {
		sorted := append([]string(nil), AppNames()...)
		sort.Strings(sorted)
		return nil, fmt.Errorf("bench: unknown app %q (registered: %s)",
			name, strings.Join(sorted, ", "))
	}
	return e.mk(s), nil
}

// NewSuite constructs every registered app at a scale, in suite order.
func NewSuite(s Scale) []Benchmark {
	metas := Apps()
	bs := make([]Benchmark, len(metas))
	for i, m := range metas {
		bs[i] = registry[m.Name].mk(s)
	}
	return bs
}
