package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
)

// TreeBuild constructs a forest of binary search trees top-down: tree t
// occupies timestamp slot t, and within the slot insert(lo,hi) links the
// midpoint key into the tree, then forks insert(lo,mid) [sub 0] and
// insert(mid+1,hi) [sub 1]. An unbalanced BST's final pointer structure
// is a function of its insertion ORDER, so the app is only correct if
// the backends honor the nested fork order exactly: the parent's node
// must link before any subtree node, and the whole left subtree must
// link before the right subtree's first node. The reference replays the
// same order on the host and the verify compares every pointer word.
type TreeBuild struct {
	keys  []uint64
	trees int
	// Host reference, same encoding as guest memory: node ids are key
	// indices, stored +1 so 0 means nil.
	refRoot []uint64
	refL    []uint64
	refR    []uint64
}

func init() {
	Register(AppMeta{
		Name:        "treebuild",
		Order:       13,
		Summary:     "top-down BST forest where pointer structure depends on nested insertion order",
		HasParallel: false, // order-dependent pointers leave no meaningful lock-based version
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewTreeBuild(64, 2)
		case ScaleSmall:
			return NewTreeBuild(256, 4)
		case ScaleLarge:
			return NewTreeBuild(4096, 8)
		default:
			return NewTreeBuild(1024, 4)
		}
	})
}

// NewTreeBuild builds the benchmark: n pseudo-random keys split evenly
// over the given number of trees (n must divide evenly).
func NewTreeBuild(n, trees int) *TreeBuild {
	if n%trees != 0 {
		panic("treebuild: key count must divide evenly over the trees")
	}
	keys := make([]uint64, n)
	x := uint64(0x2545f4914f6cdd1d)
	for i := range keys {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys[i] = x % uint64(n) // duplicates on purpose: ties walk right
	}
	b := &TreeBuild{
		keys:    keys,
		trees:   trees,
		refRoot: make([]uint64, trees),
		refL:    make([]uint64, n),
		refR:    make([]uint64, n),
	}
	seg := n / trees
	for t := 0; t < trees; t++ {
		b.buildRef(t, uint64(t*seg), uint64((t+1)*seg))
	}
	return b
}

// insertRef links key index mid into tree t's reference BST.
func (b *TreeBuild) insertRef(t int, mid uint64) {
	cur := b.refRoot[t]
	if cur == 0 {
		b.refRoot[t] = mid + 1
		return
	}
	key := b.keys[mid]
	for {
		c := cur - 1
		slot := &b.refR[c]
		if key < b.keys[c] {
			slot = &b.refL[c]
		}
		if *slot == 0 {
			*slot = mid + 1
			return
		}
		cur = *slot
	}
}

// buildRef replays the nested insertion order on the host: parent (mid)
// first, then the whole left half, then the whole right half.
func (b *TreeBuild) buildRef(t int, lo, hi uint64) {
	if lo >= hi {
		return
	}
	mid := lo + (hi-lo)/2
	b.insertRef(t, mid)
	b.buildRef(t, lo, mid)
	b.buildRef(t, mid+1, hi)
}

// Name implements Benchmark.
func (b *TreeBuild) Name() string { return "treebuild" }

func (b *TreeBuild) verify(load func(uint64) uint64, roots, left, right uint64) error {
	for t := 0; t < b.trees; t++ {
		if got := load(roots + 8*uint64(t)); got != b.refRoot[t] {
			return fmt.Errorf("treebuild: root[%d] = %d, want %d", t, got, b.refRoot[t])
		}
	}
	for i := range b.keys {
		if got := load(left + 8*uint64(i)); got != b.refL[i] {
			return fmt.Errorf("treebuild: left[%d] = %d, want %d", i, got, b.refL[i])
		}
		if got := load(right + 8*uint64(i)); got != b.refR[i] {
			return fmt.Errorf("treebuild: right[%d] = %d, want %d", i, got, b.refR[i])
		}
	}
	return nil
}

// SwarmApp implements Benchmark: one root insert per tree at timestamp t;
// every other insert is a same-slot fork. Inserts near the root of a tree
// conflict heavily (they all read the root pointer), so the app exercises
// ordered conflict resolution across fork depths.
func (b *TreeBuild) SwarmApp() SwarmApp {
	var roots, left, right uint64
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		n := uint64(len(b.keys))
		keys := ab.Alloc(8 * n)
		left = ab.Alloc(8 * n)
		right = ab.Alloc(8 * n)
		roots = ab.Alloc(8 * uint64(b.trees))
		for i, k := range b.keys {
			ab.Store(keys+8*uint64(i), k)
		}
		var insert guest.FnID
		insert = ab.Fn("insert", func(e guest.TaskEnv) {
			tr, lo, hi := e.Arg(0), e.Arg(1), e.Arg(2)
			e.Work(2)
			mid := lo + (hi-lo)/2
			key := e.Load(keys + 8*mid)
			cur := e.Load(roots + 8*tr)
			if cur == 0 {
				e.Store(roots+8*tr, mid+1)
			} else {
				for {
					c := cur - 1
					e.Work(1)
					slot := right + 8*c
					if key < e.Load(keys+8*c) {
						slot = left + 8*c
					}
					next := e.Load(slot)
					if next == 0 {
						e.Store(slot, mid+1)
						break
					}
					cur = next
				}
			}
			if mid > lo {
				e.Fork(insert, tr, lo, mid)
			}
			if mid+1 < hi {
				e.Fork(insert, tr, mid+1, hi)
			}
		})
		seg := n / uint64(b.trees)
		descs := make([]guest.TaskDesc, b.trees)
		for t := uint64(0); t < uint64(b.trees); t++ {
			descs[t] = guest.TaskDesc{Fn: insert, TS: t, Args: [3]uint64{t, t * seg, (t + 1) * seg}}
		}
		return descs
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, roots, left, right) }
	return app
}

// RunSwarm implements Benchmark.
func (b *TreeBuild) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// serialBody replays the same nested insertion order serially; iterMark
// flags one boundary per insert — the task grain.
func (b *TreeBuild) serialBody(e guest.Env, keys, left, right, roots uint64, iterMark func()) {
	var rec func(tr, lo, hi uint64)
	rec = func(tr, lo, hi uint64) {
		if lo >= hi {
			return
		}
		iterMark()
		e.Work(2)
		mid := lo + (hi-lo)/2
		key := e.Load(keys + 8*mid)
		cur := e.Load(roots + 8*tr)
		if cur == 0 {
			e.Store(roots+8*tr, mid+1)
		} else {
			for {
				c := cur - 1
				e.Work(1)
				slot := right + 8*c
				if key < e.Load(keys+8*c) {
					slot = left + 8*c
				}
				next := e.Load(slot)
				if next == 0 {
					e.Store(slot, mid+1)
					break
				}
				cur = next
			}
		}
		rec(tr, lo, mid)
		rec(tr, mid+1, hi)
	}
	seg := uint64(len(b.keys) / b.trees)
	for t := uint64(0); t < uint64(b.trees); t++ {
		rec(t, t*seg, (t+1)*seg)
	}
}

// layoutSerial allocates and initializes the guest arrays for the serial
// and oracle builds.
func (b *TreeBuild) layoutSerial(alloc func(uint64) uint64, store func(addr, val uint64)) (keys, left, right, roots uint64) {
	n := uint64(len(b.keys))
	keys = alloc(8 * n)
	left = alloc(8 * n)
	right = alloc(8 * n)
	roots = alloc(8 * uint64(b.trees))
	for i, k := range b.keys {
		store(keys+8*uint64(i), k)
	}
	return
}

// RunSerial implements Benchmark.
func (b *TreeBuild) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	keys, left, right, roots := b.layoutSerial(m.SetupAlloc, m.Mem().Store)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, keys, left, right, roots, func() {})
	})
	return cycles, b.verify(m.Mem().Load, roots, left, right)
}

// SerialApp implements Benchmark.
func (b *TreeBuild) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		keys, left, right, roots := b.layoutSerial(alloc, store)
		return func(e guest.Env, mark func()) { b.serialBody(e, keys, left, right, roots, mark) }
	}}
}

// HasParallel implements Benchmark.
func (b *TreeBuild) HasParallel() bool { return false }

// RunParallel implements Benchmark.
func (b *TreeBuild) RunParallel(int) (uint64, error) {
	return 0, fmt.Errorf("treebuild: no software-parallel version")
}
