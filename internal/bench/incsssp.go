package bench

import (
	"fmt"
	"math/rand"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// IncSSSP is incremental single-source shortest paths over a dynamic road
// network: the session-API workload. Phase 1 computes SSSP from scratch;
// each later phase applies a batch of arc-weight decreases (roads getting
// faster) at setup cost and re-runs to quiescence, so only the affected
// region of the graph recomputes. This is the "run to quiescence, inject
// more work, run again" pattern of incremental ordered stream processing
// (arXiv:1803.11328) that the one-shot API could not express — §4.1's
// termination condition is a resumable point, not the end of the program.
//
// The Swarm task is relax(v) at timestamp = tentative distance: unlike
// sssp's settle-once visit, relax re-opens a vertex whenever a strictly
// smaller distance reaches it, which is exactly what incremental updates
// need (and in phase 1 it degenerates to Dijkstra: the first arrival is
// minimal). Each phase's final distances are verified against a host-side
// Dijkstra on the current weights.
type IncSSSP struct {
	g       *graph.Graph
	src     int
	batches [][]incUpdate
	refs    [][]uint64 // refs[k] = distances after batch k (refs[0] = initial)
}

// incUpdate is one directed arc-weight decrease.
type incUpdate struct {
	arc  uint64 // index into the CSR arc arrays
	src  uint64 // arc tail (precomputed; CSR stores only heads)
	dst  uint64 // arc head
	newW uint64
}

func init() {
	Register(AppMeta{
		Name:        "incsssp",
		Order:       9,
		Summary:     "incremental SSSP over a dynamic road network (multi-phase session)",
		HasParallel: false,
		Phased:      true,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewIncSSSP(12, 12, 2, 6, 5)
		case ScaleSmall:
			return NewIncSSSP(36, 36, 3, 24, 5)
		default:
			return NewIncSSSP(72, 72, 4, 60, 5)
		}
	})
}

// NewIncSSSP builds the benchmark on a rows x cols road network with
// nBatches update batches of batchSize arc-weight decreases each,
// precomputing the per-phase reference distances.
func NewIncSSSP(rows, cols, nBatches, batchSize int, seed int64) *IncSSSP {
	g := graph.RoadNet(rows, cols, seed)
	b := &IncSSSP{g: g, src: 0}

	// Generate the update schedule against a running copy of the weights,
	// so every update is a strict decrease at its application time.
	w := append([]uint32(nil), g.W...)
	rng := rand.New(rand.NewSource(seed * 77))
	arcSrc := arcSources(g)
	for k := 0; k < nBatches; k++ {
		var batch []incUpdate
		for len(batch) < batchSize {
			arc := uint64(rng.Intn(g.M()))
			if w[arc] <= 1 {
				continue
			}
			nw := uint64(w[arc])/2 + 1
			if nw >= uint64(w[arc]) {
				nw = uint64(w[arc]) - 1
			}
			w[arc] = uint32(nw)
			batch = append(batch, incUpdate{
				arc:  arc,
				src:  uint64(arcSrc[arc]),
				dst:  uint64(g.Dst[arc]),
				newW: nw,
			})
		}
		b.batches = append(b.batches, batch)
	}

	// Per-phase references: Dijkstra on the weights as of each batch.
	clone := *g
	clone.W = append([]uint32(nil), g.W...)
	b.refs = append(b.refs, graph.Dijkstra(&clone, b.src))
	for _, batch := range b.batches {
		for _, u := range batch {
			clone.W[u.arc] = uint32(u.newW)
		}
		b.refs = append(b.refs, graph.Dijkstra(&clone, b.src))
	}
	return b
}

// arcSources inverts the CSR offsets: the tail vertex of every arc.
func arcSources(g *graph.Graph) []uint32 {
	src := make([]uint32, g.M())
	for u := 0; u < g.N; u++ {
		lo, hi := g.Neighbors(u)
		for i := lo; i < hi; i++ {
			src[i] = uint32(u)
		}
	}
	return src
}

// Name implements Benchmark.
func (b *IncSSSP) Name() string { return "incsssp" }

// PhaseCount implements Phased: the initial solve plus one phase per
// update batch.
func (b *IncSSSP) PhaseCount() int { return len(b.batches) + 1 }

func (b *IncSSSP) verifyPhase(load func(uint64) uint64, gc graph.GuestCSR, phase int) error {
	ref := b.refs[phase]
	for u := 0; u < b.g.N; u++ {
		got := load(gc.DistAddr(uint64(u)))
		want := ref[u]
		if want == graph.Inf {
			want = graph.Unvisited
		}
		if got != want {
			return fmt.Errorf("incsssp phase %d: dist[%d] = %d, want %d", phase+1, u, got, want)
		}
	}
	return nil
}

// SwarmApp implements Benchmark. The decomposition covers phase 1 (the
// from-scratch solve): machine-independent consumers — the oracle
// profiler, Table 1 — analyze the initial solve, while the phased session
// (RunSwarmPhases) drives the same relax function through every update
// batch.
func (b *IncSSSP) SwarmApp() SwarmApp {
	app, _, _ := b.swarmApp()
	return app
}

// swarmApp builds the app and exposes the guest CSR and relax handle the
// phased runner needs for between-phase injection. The pointees are
// assigned when Build runs (machine setup time).
func (b *IncSSSP) swarmApp() (SwarmApp, *graph.GuestCSR, *guest.FnID) {
	gc := &graph.GuestCSR{}
	relaxID := new(guest.FnID)
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		*gc = graph.Pack(b.g, ab.Alloc, ab.Store)
		var relax guest.FnID
		relax = ab.Fn("relax", func(e guest.TaskEnv) {
			node := e.Arg(0)
			e.Work(2)
			if e.Load(gc.DistAddr(node)) <= e.Timestamp() {
				return // no improvement: the vertex is at least this close
			}
			e.Store(gc.DistAddr(node), e.Timestamp())
			lo := e.Load(gc.OffAddr(node))
			hi := e.Load(gc.OffAddr(node + 1))
			e.Work(14) // relaxation bookkeeping (as sssp, Table 1)
			for i := lo; i < hi; i++ {
				child := e.Load(gc.DstAddr(i))
				w := e.Load(gc.WAddr(i))
				e.Work(2)
				// Spatial hint: the destination vertex (see sssp).
				e.EnqueueHinted(relax, e.Timestamp()+w, child, [3]uint64{child})
			}
		})
		*relaxID = relax
		return []guest.TaskDesc{guest.TaskDesc{Fn: relax, TS: 0, Args: [3]uint64{uint64(b.src)}}.WithHint(uint64(b.src))}
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verifyPhase(load, *gc, 0) }
	return app, gc, relaxID
}

// OpenSession implements Sessioned: it builds the machine and parks it
// before the initial solve. Each Step then runs one phase — phase 1 is
// the from-scratch solve; phase k+1 applies update batch k to guest
// memory at setup cost, injecting one relax root per updated arc whose
// tail is reachable — and verifies the distances against that phase's
// Dijkstra reference. The machine stays warm between steps, which is what
// lets a daemon serve incremental resubmission against live state.
func (b *IncSSSP) OpenSession(cfg core.Config) (*Session, error) {
	app, gc, relaxID := b.swarmApp()
	bk, err := app.Backend(cfg)
	if err != nil {
		return nil, err
	}
	step := func(phase int) (core.PhaseStats, error) {
		if phase > 0 {
			for _, u := range b.batches[phase-1] {
				bk.Mem().Store(gc.WAddr(u.arc), u.newW)
				du := bk.Mem().Load(gc.DistAddr(u.src))
				if du == graph.Unvisited {
					continue // tail unreachable: the decrease changes nothing yet
				}
				d := guest.TaskDesc{Fn: *relaxID, TS: du + u.newW, Args: [3]uint64{u.dst}}
				bk.EnqueueRootDesc(d.WithHint(u.dst))
			}
		}
		ph, err := bk.RunPhase()
		if err != nil {
			return core.PhaseStats{}, fmt.Errorf("incsssp phase %d: %w", phase+1, err)
		}
		if err := b.verifyPhase(bk.Mem().Load, *gc, phase); err != nil {
			return core.PhaseStats{}, err
		}
		return ph, nil
	}
	return NewSession(b.Name(), b.PhaseCount(), step, bk.Snapshot), nil
}

// RunSwarmPhases implements Phased: a full session — the initial solve,
// then one phase per update batch — by opening a live session and
// stepping it to completion.
func (b *IncSSSP) RunSwarmPhases(cfg core.Config) ([]core.PhaseStats, error) {
	s, err := b.OpenSession(cfg)
	if err != nil {
		return nil, err
	}
	for s.Remaining() > 0 {
		if _, err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Phases(), nil
}

// RunSwarm implements Benchmark: the whole session's cumulative
// statistics (the final phase's Cumulative).
func (b *IncSSSP) RunSwarm(cfg core.Config) (core.Stats, error) {
	phases, err := b.RunSwarmPhases(cfg)
	if err != nil {
		return core.Stats{}, err
	}
	return phases[len(phases)-1].Cumulative, nil
}

// RunSerial implements Benchmark: the tuned serial incremental SSSP — an
// initial lazy-deletion Dijkstra, then per batch a seeded re-relaxation
// from the updated arcs' heads, all on one machine so later phases run
// against warm caches, mirroring the session. The serial version pays for
// applying the updates in guest stores (a few cycles against thousands of
// relaxations).
func (b *IncSSSP) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	capacity := uint64(b.g.M())*uint64(b.PhaseCount()) + 64
	pq := swrt.NewHeap(m.SetupAlloc, capacity)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, gc, pq, func() {}, true)
	})
	return cycles, b.verifyPhase(m.Mem().Load, gc, len(b.refs)-1)
}

// serialBody runs the full incremental computation. When phased is false
// it runs only the initial solve (the oracle's TLS analysis profiles the
// from-scratch algorithm, matching SwarmApp).
func (b *IncSSSP) serialBody(e guest.Env, gc graph.GuestCSR, pq swrt.Heap, iterMark func(), phased bool) {
	// relaxLoop drains the queue with lazy deletion: pop (d, u); settle
	// only if d still improves dist[u].
	relaxLoop := func() {
		for {
			iterMark()
			d, u, ok := pq.PopMin(e)
			if !ok {
				return
			}
			e.Work(1)
			if e.Load(gc.DistAddr(u)) <= d {
				continue
			}
			e.Store(gc.DistAddr(u), d)
			lo := e.Load(gc.OffAddr(u))
			hi := e.Load(gc.OffAddr(u + 1))
			e.Work(2)
			for i := lo; i < hi; i++ {
				v := e.Load(gc.DstAddr(i))
				w := e.Load(gc.WAddr(i))
				e.Work(1)
				if d+w < e.Load(gc.DistAddr(v)) {
					pq.Push(e, d+w, v)
				}
			}
		}
	}
	pq.Push(e, 0, uint64(b.src))
	relaxLoop()
	if !phased {
		return
	}
	for _, batch := range b.batches {
		for _, u := range batch {
			e.Store(gc.WAddr(u.arc), u.newW)
			du := e.Load(gc.DistAddr(u.src))
			e.Work(2)
			if du == graph.Unvisited {
				continue
			}
			if du+u.newW < e.Load(gc.DistAddr(u.dst)) {
				pq.Push(e, du+u.newW, u.dst)
			}
		}
		relaxLoop()
	}
}

// SerialApp implements Benchmark: the initial solve, sliced at
// relaxation-loop iterations (matching SwarmApp's phase-1 scope).
func (b *IncSSSP) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		gc := graph.Pack(b.g, alloc, store)
		pq := swrt.NewHeap(alloc, uint64(b.g.M())+64)
		return func(e guest.Env, mark func()) { b.serialBody(e, gc, pq, mark, false) }
	}}
}

// HasParallel implements Benchmark: like astar and stream, there is no
// state-of-the-art software-parallel incremental SSSP baseline here.
func (b *IncSSSP) HasParallel() bool { return false }

// RunParallel implements Benchmark.
func (b *IncSSSP) RunParallel(int) (uint64, error) {
	return 0, fmt.Errorf("incsssp has no software-parallel version")
}
