package bench

import (
	"fmt"
	"math/rand"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// Stream is ordered tumbling-window stream aggregation: timestamped
// (key, value) tuples arrive on several in-order sources and must be
// folded into per-key tumbling-window aggregates in global timestamp
// order, with each window's result emitted exactly when it closes — the
// shared-memory ordered stream processing problem ("Scaling Ordered
// Stream Processing on Shared-Memory Multicores"). The tuned serial
// version k-way-merges the sources through a binary heap — the classic
// ordered-execution bottleneck. The Swarm version needs no merge at all:
// tuple tasks carry their own timestamps, window-flush tasks ride the
// same timestamp order, and the swrt.WindowRing's slot rotation makes
// flush-vs-reuse safe by order alone. There is no software-parallel
// version: lock-based operator parallelism reorders tuples, and published
// shared-memory schemes pay the same merge the serial version does.
type Stream struct {
	nSrc   int
	window uint64
	keys   uint64
	// Flattened per-source tuple arrays: sources own index ranges
	// [srcOff[s], srcOff[s+1]).
	srcOff []uint64
	ts     []uint64
	key    []uint64
	val    []uint64
	nWin   uint64
	ref    []uint64 // nWin x keys per-window per-key sums
}

func init() {
	Register(AppMeta{
		Name:        "stream",
		Order:       8,
		Summary:     "ordered tumbling-window stream aggregation of timestamped tuples",
		HasParallel: false, // software parallelism would reorder tuples or re-pay the merge
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewStream(4, 60, 32, 8, 13)
		case ScaleSmall:
			return NewStream(8, 250, 64, 8, 13)
		default:
			return NewStream(16, 1000, 128, 16, 13)
		}
	})
}

// NewStream builds the benchmark: nSrc sources of perSrc tuples each,
// aggregated over tumbling windows of the given width across keys keys.
func NewStream(nSrc, perSrc int, window, keys uint64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	b := &Stream{nSrc: nSrc, window: window, keys: keys}
	b.srcOff = make([]uint64, nSrc+1)
	maxTs := uint64(0)
	for s := 0; s < nSrc; s++ {
		b.srcOff[s+1] = b.srcOff[s] + uint64(perSrc)
		t := uint64(s) // stagger source starts
		for i := 0; i < perSrc; i++ {
			t += 1 + uint64(rng.Intn(7))
			b.ts = append(b.ts, t)
			b.key = append(b.key, uint64(rng.Intn(int(keys))))
			b.val = append(b.val, 1+uint64(rng.Intn(100)))
		}
		if t > maxTs {
			maxTs = t
		}
	}
	b.nWin = maxTs/window + 1
	b.ref = make([]uint64, b.nWin*keys)
	for i, t := range b.ts {
		b.ref[(t/window)*keys+b.key[i]] += b.val[i]
	}
	return b
}

// Name implements Benchmark.
func (b *Stream) Name() string { return "stream" }

// ringSlots is the number of concurrently-live windows (window w flushes
// at the (w+1)-th boundary, so two would suffice; four gives speculation
// headroom across window boundaries).
const ringSlots = 4

// guestStream is the layout shared by both flavors: the tuple arrays,
// the accumulator ring and the per-window result matrix.
type guestStream struct {
	ts, key, val swrt.Array
	ring         swrt.WindowRing
	result       swrt.Array // nWin x keys
}

func (b *Stream) pack(alloc func(uint64) uint64, store func(addr, val uint64)) guestStream {
	n := uint64(len(b.ts))
	g := guestStream{
		ts:     swrt.NewArray(alloc, n),
		key:    swrt.NewArray(alloc, n),
		val:    swrt.NewArray(alloc, n),
		result: swrt.NewArray(alloc, b.nWin*b.keys),
	}
	for i := uint64(0); i < n; i++ {
		store(g.ts.Addr(i), b.ts[i])
		store(g.key.Addr(i), b.key[i])
		store(g.val.Addr(i), b.val[i])
	}
	g.ring = swrt.NewWindowRing(alloc, store, ringSlots, b.keys)
	for i := uint64(0); i < b.nWin*b.keys; i++ {
		store(g.result.Addr(i), graph.Unvisited)
	}
	return g
}

func (b *Stream) verify(load func(uint64) uint64, g guestStream) error {
	for w := uint64(0); w < b.nWin; w++ {
		for k := uint64(0); k < b.keys; k++ {
			got := load(g.result.Addr(w*b.keys + k))
			if got != b.ref[w*b.keys+k] {
				return fmt.Errorf("stream: window %d key %d = %d, want %d", w, k, got, b.ref[w*b.keys+k])
			}
		}
	}
	return nil
}

// SwarmApp implements Benchmark: tuple tasks at their own timestamps,
// chained per source (each enqueues its successor, preserving source
// order with no merge structure), plus a chain of window-flush tasks at
// the window boundaries. Flush(w) runs at ts (w+1)*window: after every
// window-w tuple, before any tuple that reuses its ring slot.
func (b *Stream) SwarmApp() SwarmApp {
	var g guestStream
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		g = b.pack(ab.Alloc, ab.Store)
		var tuple, flush guest.FnID
		tuple = ab.Fn("tuple", func(e guest.TaskEnv) {
			i, end := e.Arg(0), e.Arg(1)
			k := e.Load(g.key.Addr(i))
			v := e.Load(g.val.Addr(i))
			slot := g.ring.SlotFor(e.Timestamp() / b.window)
			e.Work(6) // window arithmetic + operator bookkeeping
			g.ring.Add(e, slot, k, v)
			if i+1 < end {
				// Spatial hint: the chain's end index is unique per source,
				// so a source's whole tuple chain — and its key/val/ts array
				// lines — shares one home tile under hint-based mappers.
				e.EnqueueHinted(tuple, e.Load(g.ts.Addr(i+1)), end, [3]uint64{i + 1, end})
			}
		})
		flush = ab.Fn("flush", func(e guest.TaskEnv) {
			w := e.Arg(0)
			slot := g.ring.SlotFor(w)
			e.Work(4)
			for k := uint64(0); k < b.keys; k++ {
				e.Work(1)
				e.Store(g.result.Addr(w*b.keys+k), g.ring.Drain(e, slot, k))
			}
			if w+1 < b.nWin {
				e.EnqueueArgs(flush, (w+2)*b.window, [3]uint64{w + 1})
			}
		})
		roots := make([]guest.TaskDesc, 0, b.nSrc+1)
		for s := 0; s < b.nSrc; s++ {
			lo, hi := b.srcOff[s], b.srcOff[s+1]
			if lo < hi {
				roots = append(roots, guest.TaskDesc{Fn: tuple, TS: b.ts[lo], Args: [3]uint64{lo, hi}}.WithHint(hi))
			}
		}
		roots = append(roots, guest.TaskDesc{Fn: flush, TS: b.window, Args: [3]uint64{0}})
		return roots
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, g) }
	return app
}

// RunSwarm implements Benchmark.
func (b *Stream) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: the tuned serial operator k-way-merges
// the sources through a binary heap keyed by next-tuple timestamp and
// flushes windows as their boundaries pass — every tuple pays the heap's
// pointer chasing, the false dependence §3 describes.
func (b *Stream) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	g := b.pack(m.SetupAlloc, m.Mem().Store)
	pq := swrt.NewHeap(m.SetupAlloc, uint64(b.nSrc)+1)
	pos := swrt.NewArray(m.SetupAlloc, uint64(b.nSrc))
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, g, pq, pos, func() {})
	})
	return cycles, b.verify(m.Mem().Load, g)
}

// serialFlush drains one window's slot into its result row.
func (b *Stream) serialFlush(e guest.Env, g guestStream, w uint64) {
	slot := g.ring.SlotFor(w)
	e.Work(2)
	for k := uint64(0); k < b.keys; k++ {
		e.Work(1)
		e.Store(g.result.Addr(w*b.keys+k), g.ring.Drain(e, slot, k))
	}
}

func (b *Stream) serialBody(e guest.Env, g guestStream, pq swrt.Heap, pos swrt.Array, iterMark func()) {
	for s := 0; s < b.nSrc; s++ {
		lo, hi := b.srcOff[s], b.srcOff[s+1]
		pos.Set(e, uint64(s), lo)
		e.Work(1)
		if lo < hi {
			pq.Push(e, e.Load(g.ts.Addr(lo)), uint64(s))
		}
	}
	curW := uint64(0)
	for {
		iterMark()
		t, s, ok := pq.PopMin(e)
		if !ok {
			break
		}
		i := pos.Get(e, s)
		k := e.Load(g.key.Addr(i))
		v := e.Load(g.val.Addr(i))
		w := t / b.window
		e.Work(6)
		for curW < w {
			b.serialFlush(e, g, curW)
			curW++
		}
		g.ring.Add(e, g.ring.SlotFor(w), k, v)
		pos.Set(e, s, i+1)
		if i+1 < b.srcOff[s+1] {
			pq.Push(e, e.Load(g.ts.Addr(i+1)), s)
		}
	}
	for ; curW < b.nWin; curW++ {
		b.serialFlush(e, g, curW)
	}
}

// SerialApp implements Benchmark.
func (b *Stream) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		g := b.pack(alloc, store)
		pq := swrt.NewHeap(alloc, uint64(b.nSrc)+1)
		pos := swrt.NewArray(alloc, uint64(b.nSrc))
		return func(e guest.Env, mark func()) { b.serialBody(e, g, pq, pos, mark) }
	}}
}

// HasParallel implements Benchmark.
func (b *Stream) HasParallel() bool { return false }

// RunParallel implements Benchmark.
func (b *Stream) RunParallel(int) (uint64, error) {
	return 0, fmt.Errorf("stream has no software-parallel version")
}
