package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

func testDES() *DES { return NewDES(4, 8, 3, 21) }

func TestDESSerial(t *testing.T) {
	b := testDES()
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
}

func TestDESParallel(t *testing.T) {
	b := testDES()
	for _, cores := range []int{1, 4, 8} {
		if _, err := b.RunParallel(cores); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}

func TestDESSwarm(t *testing.T) {
	b := testDES()
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

func TestDESSwarmScales(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	b := NewDES(8, 8, 4, 5)
	st1, err := b.RunSwarm(core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st16, err := b.RunSwarm(core.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(st1.Cycles) / float64(st16.Cycles)
	t.Logf("des swarm 16c speedup %.1fx (aborts=%d of %d commits)", sp, st16.Aborts, st16.Commits)
	if sp < 3 {
		t.Errorf("des 16-core speedup %.2fx < 3x", sp)
	}
}
