package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/circuit"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// DES is a discrete-event simulator for digital circuits (§2.2): each task
// is a signal toggle at a gate, timestamped with simulated time; toggles
// that change a gate's output enqueue its fanout at t+delay. The circuit is
// a chained carry-select adder array (csaArray), driven by rounds of random
// input vectors. The software-parallel baseline is a Chandy-Misra-Bryant
// style conservative simulator that exploits gate delays as lookahead
// (§6.2).
type DES struct {
	c    *circuit.Circuit
	stim *circuit.Stimulus
	ref  []uint64 // settled values after the final round
}

func init() {
	Register(AppMeta{
		Name:        "des",
		Order:       4,
		Summary:     "discrete-event simulation of a carry-select adder array",
		HasParallel: true,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewDES(3, 8, 2, 6)
		case ScaleSmall:
			return NewDES(6, 8, 4, 6)
		default:
			return NewDES(16, 8, 6, 6)
		}
	})
}

// NewDES builds the benchmark: nAdders carry-select adders of the given
// width, driven for rounds input vectors.
func NewDES(nAdders, width, rounds int, seed int64) *DES {
	const gateDelay = 4
	c := circuit.CSAArray(nAdders, width, gateDelay)
	// Period: long enough that most activity settles between rounds but
	// short enough that rounds overlap occasionally (cross-round events).
	period := uint64(width) * 3 * gateDelay
	stim := circuit.NewStimulus(c, rounds, period, seed)
	return &DES{c: c, stim: stim, ref: c.TopoEval(stim.Vectors[rounds-1])}
}

// Name implements Benchmark.
func (b *DES) Name() string { return "des" }

// guestDES is the netlist laid out in guest memory, shared by all flavors.
type guestDES struct {
	nGates, nIn uint64
	typ         swrt.Array // gate type
	delay       swrt.Array
	faninN      swrt.Array // fanin count
	fanin       swrt.Array // nGates x MaxFanin
	foOff       swrt.Array // fanout CSR offsets (nGates+1)
	foDst       swrt.Array // fanout targets
	val         swrt.Array // current output value per gate
	inputs      swrt.Array // input gate ids
	stim        swrt.Array // rounds x nIn values
}

func (b *DES) pack(alloc func(uint64) uint64, store func(addr, val uint64)) guestDES {
	n := uint64(len(b.c.Gates))
	nIn := uint64(len(b.c.Inputs))
	var nFo uint64
	for _, f := range b.c.Fanout {
		nFo += uint64(len(f))
	}
	g := guestDES{
		nGates: n, nIn: nIn,
		typ:    swrt.NewArray(alloc, n),
		delay:  swrt.NewArray(alloc, n),
		faninN: swrt.NewArray(alloc, n),
		fanin:  swrt.NewArray(alloc, n*circuit.MaxFanin),
		foOff:  swrt.NewArray(alloc, n+1),
		foDst:  swrt.NewArray(alloc, nFo),
		val:    swrt.NewArray(alloc, n),
		inputs: swrt.NewArray(alloc, nIn),
		stim:   swrt.NewArray(alloc, uint64(b.stim.Rounds)*nIn),
	}
	off := uint64(0)
	for i, gate := range b.c.Gates {
		gi := uint64(i)
		store(g.typ.Addr(gi), uint64(gate.Type))
		store(g.delay.Addr(gi), uint64(gate.Delay))
		store(g.faninN.Addr(gi), uint64(len(gate.In)))
		for j, f := range gate.In {
			store(g.fanin.Addr(gi*circuit.MaxFanin+uint64(j)), uint64(f))
		}
		store(g.foOff.Addr(gi), off)
		for _, fo := range b.c.Fanout[i] {
			store(g.foDst.Addr(off), uint64(fo))
			off++
		}
	}
	store(g.foOff.Addr(n), off)
	for i, in := range b.c.Inputs {
		store(g.inputs.Addr(uint64(i)), uint64(in))
	}
	for r := 0; r < b.stim.Rounds; r++ {
		for i := uint64(0); i < nIn; i++ {
			store(g.stim.Addr(uint64(r)*nIn+i), b.stim.Vectors[r][i])
		}
	}
	return g
}

// verify checks every gate settled to the reference fixpoint of the final
// input vector.
func (b *DES) verify(load func(uint64) uint64, g guestDES) error {
	for i := uint64(0); i < g.nGates; i++ {
		if got := load(g.val.Addr(i)); got != b.ref[i] {
			return fmt.Errorf("des: gate %d settled to %d, want %d", i, got, b.ref[i])
		}
	}
	return nil
}

// evalCost models the gate-model computation beyond raw loads/stores
// (timing-wheel maintenance, multi-valued logic, observability hooks in
// real simulators); des tasks are a few hundred instructions in the paper
// (Table 1: 296).
const evalCost = 270

// evalGateGuest evaluates gate gi from guest state and returns the new
// output value.
func evalGateGuest(e guest.Env, g guestDES, gi uint64) uint64 {
	typ := circuit.GateType(e.Load(g.typ.Addr(gi)))
	n := e.Load(g.faninN.Addr(gi))
	var in [circuit.MaxFanin]uint64
	for j := uint64(0); j < n; j++ {
		f := e.Load(g.fanin.Addr(gi*circuit.MaxFanin + j))
		in[j] = e.Load(g.val.Addr(f))
	}
	e.Work(evalCost)
	return circuit.EvalGate(typ, in[:n]...)
}

// SwarmApp implements Benchmark.
//
// Task functions: "spawn" fans a round's inputs out, "input" sets one
// input, "eval" evaluates a gate, and "fanout" chains consumer enqueues
// for gates whose fanout exceeds the 8-child limit (e.g. the carry-select
// mux selects).
func (b *DES) SwarmApp() SwarmApp {
	var g guestDES
	period := b.stim.Period
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		g = b.pack(ab.Alloc, ab.Store)
		var spawn, input, eval, fan guest.FnID

		// enqueueFanout schedules evaluations of gate gi's consumers in
		// [lo, hi), chaining through the fanout spawner when there are more
		// than 7.
		enqueueFanout := func(e guest.TaskEnv, lo, hi uint64) {
			n := hi - lo
			direct := n
			if direct > 7 {
				direct = 7
			}
			for i := lo; i < lo+direct; i++ {
				c := e.Load(g.foDst.Addr(i))
				d := e.Load(g.delay.Addr(c))
				// Spatial hint: the consumer gate — every toggle of one
				// gate evaluates on its home tile under hint-based mappers.
				e.EnqueueHinted(eval, e.Timestamp()+d, c, [3]uint64{c})
			}
			if lo+direct < hi {
				e.EnqueueArgs(fan, e.Timestamp(), [3]uint64{lo + direct, hi})
			}
		}

		spawn = ab.Fn("spawn", func(e guest.TaskEnv) {
			spawnRangeTask(e, spawn, func(e guest.TaskEnv, i uint64) {
				// Spatial hint: the input id, stable across rounds.
				e.EnqueueHinted(input, e.Timestamp(), i, [3]uint64{i})
			})
		})
		input = ab.Fn("input", func(e guest.TaskEnv) {
			i := e.Arg(0)
			round := e.Timestamp() / period
			gate := e.Load(g.inputs.Addr(i))
			v := e.Load(g.stim.Addr(round*g.nIn + i))
			e.Work(3)
			if e.Load(g.val.Addr(gate)) == v {
				return
			}
			e.Store(g.val.Addr(gate), v)
			lo := e.Load(g.foOff.Addr(gate))
			hi := e.Load(g.foOff.Addr(gate + 1))
			enqueueFanout(e, lo, hi)
		})
		eval = ab.Fn("eval", func(e guest.TaskEnv) {
			gi := e.Arg(0)
			nv := evalGateGuest(e, g, gi)
			if e.Load(g.val.Addr(gi)) == nv {
				return
			}
			e.Store(g.val.Addr(gi), nv)
			lo := e.Load(g.foOff.Addr(gi))
			hi := e.Load(g.foOff.Addr(gi + 1))
			enqueueFanout(e, lo, hi)
		})
		fan = ab.Fn("fanout", func(e guest.TaskEnv) {
			enqueueFanout(e, e.Arg(0), e.Arg(1))
		})

		roots := make([]guest.TaskDesc, b.stim.Rounds)
		for r := range roots {
			roots[r] = guest.TaskDesc{Fn: spawn, TS: uint64(r) * period, Args: [3]uint64{0, g.nIn}}
		}
		return roots
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, g) }
	return app
}

// RunSwarm implements Benchmark.
func (b *DES) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: the classic sequential event-driven
// simulator — a binary heap of (time, gate) events processed in time order.
func (b *DES) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	g := b.pack(m.SetupAlloc, m.Mem().Store)
	heapCap := uint64(b.stim.Rounds)*g.nIn + 64*g.nGates
	pq := swrt.NewHeap(m.SetupAlloc, heapCap)
	period := b.stim.Period
	rounds := uint64(b.stim.Rounds)

	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, g, pq, period, rounds, func() {})
	})
	return cycles, b.verify(m.Mem().Load, g)
}

// Event encoding in heaps: value = gate id, or (inputFlag | input index)
// for stimulus application.
const inputFlag = 1 << 40

func (b *DES) serialBody(e guest.Env, g guestDES, pq swrt.Heap, period, rounds uint64, iterMark func()) {
	nextRound := uint64(0)
	for {
		// Inject the next stimulus round once nothing earlier is pending.
		for nextRound < rounds {
			k, _, ok := pq.PeekMin(e)
			e.Work(2)
			if ok && k < nextRound*period {
				break
			}
			for i := uint64(0); i < g.nIn; i++ {
				pq.Push(e, nextRound*period, inputFlag|i)
			}
			nextRound++
		}
		iterMark()
		t, v, ok := pq.PopMin(e)
		if !ok {
			return
		}
		var gate uint64
		var nv uint64
		if v&inputFlag != 0 {
			i := v &^ inputFlag
			gate = e.Load(g.inputs.Addr(i))
			nv = e.Load(g.stim.Addr((t/period)*g.nIn + i))
			e.Work(3)
		} else {
			gate = v
			nv = evalGateGuest(e, g, gate)
		}
		if e.Load(g.val.Addr(gate)) == nv {
			continue
		}
		e.Store(g.val.Addr(gate), nv)
		lo := e.Load(g.foOff.Addr(gate))
		hi := e.Load(g.foOff.Addr(gate + 1))
		for i := lo; i < hi; i++ {
			c := e.Load(g.foDst.Addr(i))
			d := e.Load(g.delay.Addr(c))
			pq.Push(e, t+d, c)
		}
	}
}

// SerialApp implements Benchmark.
func (b *DES) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		g := b.pack(alloc, store)
		heapCap := uint64(b.stim.Rounds)*g.nIn + 64*g.nGates
		pq := swrt.NewHeap(alloc, heapCap)
		return func(e guest.Env, mark func()) {
			b.serialBody(e, g, pq, b.stim.Period, uint64(b.stim.Rounds), mark)
		}
	}}
}

// HasParallel implements Benchmark.
func (b *DES) HasParallel() bool { return true }

// RunParallel implements Benchmark: a conservative (Chandy-Misra-Bryant
// family) parallel simulator. Gates are partitioned across threads (whole
// adders stay together); each thread keeps a local event queue and an
// inbox for cross-partition events; rounds process every event inside the
// safe window [gmin, gmin+lookahead), where the lookahead is the minimum
// gate delay — events spawned inside the window land beyond it (§6.2: CMB
// exploits simulated latencies to execute events out of order safely).
func (b *DES) RunParallel(nCores int) (uint64, error) {
	p := uint64(nCores)
	m := smp.NewMachine(smp.DefaultConfig(nCores))
	g := b.pack(m.SetupAlloc, m.Mem().Store)
	period := b.stim.Period
	rounds := uint64(b.stim.Rounds)
	lookahead := uint64(4) // = gate delay (min cross-gate latency)
	const inf = ^uint64(0)

	// Static partition: contiguous gate ranges (adders are contiguous).
	owner := make([]int, g.nGates)
	per := (g.nGates + p - 1) / p
	for i := uint64(0); i < g.nGates; i++ {
		owner[i] = int(i / per)
	}

	heaps := make([]swrt.Heap, p)
	inboxes := make([]swrt.Array, p) // flattened (ts, val) pairs
	inboxCount := make([]uint64, p)  // guest addresses of counters
	inboxLock := make([]swrt.SpinLock, p)
	heapCap := uint64(b.stim.Rounds)*g.nIn + 64*g.nGates/p + 1024
	const inboxCap = 8192
	for i := uint64(0); i < p; i++ {
		heaps[i] = swrt.NewHeap(m.SetupAlloc, heapCap)
		inboxes[i] = swrt.NewArray(m.SetupAlloc, 2*inboxCap)
		inboxCount[i] = m.SetupAlloc(64)
		inboxLock[i] = swrt.SpinLock{Addr: m.SetupAlloc(64)}
	}
	mins := swrt.NewArray(m.SetupAlloc, p)
	gminAddr := m.SetupAlloc(64)
	bar := swrt.NewBarrier(m.SetupAlloc, p)

	st, err := m.Run(func(e guest.ThreadEnv) {
		var sense uint64
		id := uint64(e.ID())
		pq := heaps[id]
		nextRound := uint64(0)

		post := func(ts, val, gate uint64) {
			o := uint64(owner[gate])
			if o == id {
				pq.Push(e, ts, val)
				return
			}
			inboxLock[o].Acquire(e)
			c := e.Load(inboxCount[o])
			if c >= inboxCap {
				panic("des: inbox overflow")
			}
			e.Store(inboxes[o].Addr(2*c), ts)
			e.Store(inboxes[o].Addr(2*c+1), val)
			e.Store(inboxCount[o], c+1)
			inboxLock[o].Release(e)
		}

		for {
			// Report local minimum (pending stimulus counts).
			lmin := uint64(inf)
			if k, _, ok := pq.PeekMin(e); ok {
				lmin = k
			}
			if nextRound < rounds && nextRound*period < lmin {
				lmin = nextRound * period
			}
			mins.Set(e, id, lmin)
			bar.Wait(e, &sense)
			if id == 0 {
				gm := uint64(inf)
				for i := uint64(0); i < p; i++ {
					if v := mins.Get(e, i); v < gm {
						gm = v
					}
					e.Work(1)
				}
				e.Store(gminAddr, gm)
			}
			bar.Wait(e, &sense)
			gmin := e.Load(gminAddr)
			if gmin == inf {
				return
			}
			windowEnd := gmin + lookahead

			// Inject stimulus that falls inside the window (each thread
			// owns its partition's input gates).
			for nextRound < rounds && nextRound*period < windowEnd {
				t := nextRound * period
				for i := uint64(0); i < g.nIn; i++ {
					gate := e.Load(g.inputs.Addr(i))
					if owner[gate] == int(id) {
						pq.Push(e, t, inputFlag|i)
					}
				}
				nextRound++
			}

			// Process the safe window.
			for {
				k, _, ok := pq.PeekMin(e)
				e.Work(1)
				if !ok || k >= windowEnd {
					break
				}
				t, v, _ := pq.PopMin(e)
				var gate, nv uint64
				if v&inputFlag != 0 {
					i := v &^ inputFlag
					gate = e.Load(g.inputs.Addr(i))
					nv = e.Load(g.stim.Addr((t/period)*g.nIn + i))
					e.Work(3)
				} else {
					gate = v
					nv = evalGateGuest(e, g, gate)
				}
				if e.Load(g.val.Addr(gate)) == nv {
					continue
				}
				e.Store(g.val.Addr(gate), nv)
				lo := e.Load(g.foOff.Addr(gate))
				hi := e.Load(g.foOff.Addr(gate + 1))
				for i := lo; i < hi; i++ {
					c := e.Load(g.foDst.Addr(i))
					d := e.Load(g.delay.Addr(c))
					post(t+d, c, c)
				}
			}
			bar.Wait(e, &sense)

			// Drain the inbox into the local queue.
			c := e.Load(inboxCount[id])
			for i := uint64(0); i < c; i++ {
				pq.Push(e, e.Load(inboxes[id].Addr(2*i)), e.Load(inboxes[id].Addr(2*i+1)))
			}
			e.Store(inboxCount[id], 0)
			bar.Wait(e, &sense)
		}
	})
	if err != nil {
		return 0, err
	}
	return st.Cycles, b.verify(m.Mem().Load, g)
}
