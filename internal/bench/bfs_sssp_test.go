package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

func TestBFSSerial(t *testing.T) {
	b := NewBFS(20, 15)
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
}

func TestBFSParallel(t *testing.T) {
	b := NewBFS(20, 15)
	for _, cores := range []int{1, 4, 8} {
		if _, err := b.RunParallel(cores); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}

func TestBFSSwarm(t *testing.T) {
	b := NewBFS(20, 15)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

func TestSSSPSerial(t *testing.T) {
	b := NewSSSP(15, 15, 11)
	if _, err := b.RunSerial(1); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPParallel(t *testing.T) {
	b := NewSSSP(15, 15, 11)
	for _, cores := range []int{1, 4, 8} {
		if _, err := b.RunParallel(cores); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}

func TestSSSPSwarm(t *testing.T) {
	b := NewSSSP(15, 15, 11)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

// TestSwarmSpeedupShape: on a moderately sized input, 16-core Swarm must
// beat 1-core Swarm by a sane factor, and Swarm must scale past the
// level-synchronous baseline on the deep mesh.
func TestSwarmSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	b := NewSSSP(40, 40, 3)
	st1, err := b.RunSwarm(core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st16, err := b.RunSwarm(core.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(st1.Cycles) / float64(st16.Cycles)
	t.Logf("sssp swarm 16-core speedup: %.1fx (1c=%d cycles, 16c=%d cycles, aborts=%d)",
		sp, st1.Cycles, st16.Cycles, st16.Aborts)
	if sp < 4 {
		t.Errorf("16-core Swarm speedup %.2fx < 4x: speculation is not uncovering parallelism", sp)
	}
}

func TestBFSSwarmVsParallelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	// Deep, narrow mesh: level-synchronous PBFS has tiny frontiers.
	b := NewBFS(150, 6)
	serial, err := b.RunSerial(16)
	if err != nil {
		t.Fatal(err)
	}
	par, err := b.RunParallel(16)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := b.RunSwarm(core.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bfs 16c: serial=%d parallel=%d swarm=%d (swarm vs par %.1fx)",
		serial, par, sw.Cycles, float64(par)/float64(sw.Cycles))
	if sw.Cycles >= par {
		t.Errorf("Swarm (%d cycles) not faster than level-synchronous parallel (%d) on a deep mesh", sw.Cycles, par)
	}
}
