package bench

import (
	"testing"
)

// The frontier-native apps' tuned-serial flavors: sequential Dijkstra
// (dsssp) and the lazy-greedy heap loop (setcover), verified against the
// same host references as the Swarm flavors.

func TestDSSSPSerial(t *testing.T) {
	b, err := New("dsssp", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
	if b.HasParallel() {
		t.Fatal("dsssp should not declare a software-parallel version")
	}
	if _, err := b.RunParallel(4); err == nil {
		t.Fatal("RunParallel should fail")
	}
}

func TestSetCoverSerial(t *testing.T) {
	b, err := New("setcover", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
	if b.HasParallel() {
		t.Fatal("setcover should not declare a software-parallel version")
	}
	if _, err := b.RunParallel(4); err == nil {
		t.Fatal("RunParallel should fail")
	}
}
