package bench

import (
	"reflect"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// TestTinyQueuesAllApps runs every registered app — the paper's six and
// later additions alike — on a miniature machine whose task and commit
// queues are a few entries deep. Queue overflow is where the rarely-hit
// machinery lives: the coalescer/splitter spill path (spill.go) and the
// FINISHING stall when a task cannot get a commit queue slot. Every run
// must still pass its host-side reference verifier, and the config must
// be tight enough that the suite actually spills.
func TestTinyQueuesAllApps(t *testing.T) {
	var totalSpills uint64
	for _, meta := range Apps() {
		b, err := New(meta.Name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(4)
		cfg.TaskQPerCore = 8
		cfg.CommitQPerCore = 2
		st, err := b.RunSwarm(cfg) // verification inside
		if err != nil {
			t.Fatalf("%s under tiny queues: %v", meta.Name, err)
		}
		totalSpills += st.SpilledTasks
	}
	if totalSpills == 0 {
		t.Error("tiny-queue config never spilled a task: stress config too lax")
	}
}

// TestRegisteredAppsDeterministic is the determinism regression test for
// the silo/bloom class of bugs fixed in PR 1 (map-iteration order leaking
// into cycle counts): each registered app is built and run twice
// in-process with identical arguments, and the complete core.Stats must
// be identical — not just cycles, but aborts, queue occupancies, traffic
// and cache counters too. CI additionally runs the whole suite with
// -count=2 to catch cross-run state leaks.
func TestRegisteredAppsDeterministic(t *testing.T) {
	for _, meta := range Apps() {
		run := func() core.Stats {
			b, err := New(meta.Name, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			st, err := b.RunSwarm(core.DefaultConfig(8))
			if err != nil {
				t.Fatalf("%s: %v", meta.Name, err)
			}
			return st
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical runs produced different stats:\n%+v\nvs\n%+v", meta.Name, a, b)
		}
	}
}
