package bench

import (
	"reflect"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// TestIncSSSPPhases: the phased session solves every batch correctly
// (per-phase verification runs inside RunSwarmPhases) and the phase
// accounting is coherent: contiguous cycle ranges, commits summing to the
// cumulative count, and one phase per batch plus the initial solve.
func TestIncSSSPPhases(t *testing.T) {
	b := NewIncSSSP(10, 10, 2, 5, 3)
	phases, err := b.RunSwarmPhases(core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != b.PhaseCount() {
		t.Fatalf("phases = %d, want %d", len(phases), b.PhaseCount())
	}
	var commits uint64
	for i, ph := range phases {
		if ph.Phase != i+1 {
			t.Fatalf("phase %d numbered %d", i+1, ph.Phase)
		}
		if i > 0 && ph.StartCycle != phases[i-1].EndCycle {
			t.Fatalf("phase %d starts at %d but phase %d ended at %d",
				i+1, ph.StartCycle, i, phases[i-1].EndCycle)
		}
		if ph.Cycles != ph.EndCycle-ph.StartCycle {
			t.Fatalf("phase %d cycle arithmetic: %d != %d-%d", i+1, ph.Cycles, ph.EndCycle, ph.StartCycle)
		}
		if ph.Commits == 0 {
			t.Fatalf("phase %d committed nothing", i+1)
		}
		commits += ph.Commits
	}
	last := phases[len(phases)-1].Cumulative
	if commits != last.Commits {
		t.Fatalf("phase commits sum to %d, cumulative says %d", commits, last.Commits)
	}
	// Incremental phases must be much cheaper than the initial solve:
	// that is the point of the workload.
	if phases[1].Commits >= phases[0].Commits {
		t.Fatalf("incremental phase re-ran the world: %d commits vs initial %d",
			phases[1].Commits, phases[0].Commits)
	}
}

// TestIncSSSPSerial: the serial incremental reference matches the final
// Dijkstra distances (verification inside RunSerial).
func TestIncSSSPSerial(t *testing.T) {
	b := NewIncSSSP(10, 10, 2, 5, 3)
	cyc, err := b.RunSerial(4)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("serial run took no cycles")
	}
}

// TestIncSSSPDeterministicPhases: identical sessions produce identical
// per-phase statistics — the phased-determinism contract the sweep CSVs
// rely on.
func TestIncSSSPDeterministicPhases(t *testing.T) {
	run := func() []core.PhaseStats {
		phases, err := NewIncSSSP(8, 8, 2, 4, 7).RunSwarmPhases(core.DefaultConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		return phases
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Cycles != b[i].Cycles || a[i].Events != b[i].Events ||
			a[i].Commits != b[i].Commits || a[i].Aborts != b[i].Aborts ||
			a[i].Enqueues != b[i].Enqueues || a[i].TrafficBytes != b[i].TrafficBytes {
			t.Fatalf("phase %d nondeterministic:\n  %+v\n  %+v", i+1, a[i], b[i])
		}
	}
}

// TestIncSSSPSwarmMatchesPhases: RunSwarm is the session's cumulative
// result.
func TestIncSSSPSwarmMatchesPhases(t *testing.T) {
	b := NewIncSSSP(8, 8, 2, 4, 7)
	st, err := b.RunSwarm(core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	phases, err := b.RunSwarmPhases(core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	last := phases[len(phases)-1].Cumulative
	if st.Cycles != last.Cycles || st.Commits != last.Commits || st.Events != last.Events {
		t.Fatalf("RunSwarm %+v != phased cumulative %+v", st, last)
	}
}

// TestIncSSSPSession drives the live-session API step by step and checks
// it is exactly RunSwarmPhases unrolled: same phase statistics, correct
// Done/Remaining accounting, cumulative snapshots at each quiescent
// point, and a loud error past the last phase.
func TestIncSSSPSession(t *testing.T) {
	b := NewIncSSSP(10, 10, 2, 5, 3)
	want, err := b.RunSwarmPhases(core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}

	s, err := b.OpenSession(core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.App() != "incsssp" || s.PhaseCount() != b.PhaseCount() || s.Done() != 0 {
		t.Fatalf("fresh session: app=%q total=%d done=%d", s.App(), s.PhaseCount(), s.Done())
	}
	for k := 0; s.Remaining() > 0; k++ {
		ph, err := s.Step()
		if err != nil {
			t.Fatalf("step %d: %v", k+1, err)
		}
		if !reflect.DeepEqual(ph, want[k]) {
			t.Fatalf("step %d stats diverge from RunSwarmPhases", k+1)
		}
		if s.Done() != k+1 {
			t.Fatalf("after step %d: Done = %d", k+1, s.Done())
		}
		if got := s.Stats(); got.Cycles != ph.Cumulative.Cycles || got.Commits != ph.Cumulative.Commits {
			t.Fatalf("step %d: session snapshot disagrees with the phase's cumulative stats", k+1)
		}
	}
	if !reflect.DeepEqual(s.Phases(), want) {
		t.Fatal("session phases diverge from RunSwarmPhases")
	}
	if _, err := s.Step(); err == nil {
		t.Fatal("stepping past the last phase: want an error")
	}
}

// TestRegistryPhasedMeta: the Phased metadata bit agrees with the
// constructed benchmark's interfaces for every registered app, and every
// Sessioned app is also marked Phased.
func TestRegistryPhasedMeta(t *testing.T) {
	for _, meta := range Apps() {
		b, err := New(meta.Name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		_, isPhased := b.(Phased)
		if meta.Phased != isPhased {
			t.Errorf("%s: meta.Phased = %v but benchmark implements Phased = %v", meta.Name, meta.Phased, isPhased)
		}
		if _, isSessioned := b.(Sessioned); isSessioned && !isPhased {
			t.Errorf("%s: Sessioned but not Phased", meta.Name)
		}
	}
}
