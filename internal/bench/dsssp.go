package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/frontier"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// DSSSP is delta-stepping single-source shortest paths expressed on the
// bucketed-priority frontier: relax(v) tasks carry a bucketed tentative
// distance as their timestamp, while the exact distance lives in the
// vertex's frontier value word. Where the plain sssp app settles each
// vertex at its first (Dijkstra-exact) arrival, delta-stepping is
// label-correcting — a vertex may be relaxed several times as its
// tentative distance improves — and the Delta-wide buckets coalesce whole
// distance ranges onto one timestamp, trading wasted relaxations for
// parallelism (under speculation the wasted ones are aborted or pruned,
// never incorrect). Delta equals graph.CoordScale, the minimum road-edge
// weight scale, so a bucket holds roughly one grid step of wavefront.
type DSSSP struct {
	g   *graph.Graph
	src int
	ref []uint64
}

func init() {
	Register(AppMeta{
		Name:        "dsssp",
		Order:       10,
		Summary:     "delta-stepping SSSP on the bucketed-priority frontier",
		HasParallel: false,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewDSSSP(graph.RoadNet(16, 16, 7))
		case ScaleSmall:
			return NewDSSSP(graph.RoadNet(36, 36, 7))
		case ScaleLarge:
			return NewDSSSP(graph.MustLoad("roadnet-320x320-s7", func() *graph.Graph {
				return graph.RoadNet(320, 320, 7)
			}))
		default:
			return NewDSSSP(graph.RoadNet(80, 80, 7))
		}
	})
}

// NewDSSSP builds the benchmark on a weighted graph (unweighted real
// inputs get unit weights).
func NewDSSSP(g *graph.Graph) *DSSSP {
	g.EnsureWeights()
	return &DSSSP{g: g, src: 0, ref: graph.Dijkstra(g, 0)}
}

// Name implements Benchmark.
func (b *DSSSP) Name() string { return "dsssp" }

// refDist is the host Dijkstra distance in guest convention.
func (b *DSSSP) refDist(u int) uint64 {
	if b.ref[u] == graph.Inf {
		return graph.Unvisited
	}
	return b.ref[u]
}

// SwarmApp implements Benchmark: task = relax(v) at the bucket of v's
// tentative distance. The frontier's per-vertex line holds the tentative
// distance (value), the distance at which v's edges were last relaxed
// (aux), and the best pending entry (best, for lazy pruning). A handler
// consumes the pending entry, and relaxes v's out-edges only if the
// distance improved since the last relaxation; each edge relaxation is a
// PushMin — improve the child's tentative distance and re-push its
// handler at the new bucket. Quiescence leaves value = aux = the exact
// shortest-path distance, verified against host Dijkstra.
func (b *DSSSP) SwarmApp() SwarmApp {
	var gc graph.GuestCSR
	var fr *frontier.Frontier // set by Build; read by Verify
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		gc = graph.Pack(b.g, ab.Alloc, ab.Store)
		n := uint64(b.g.N)
		fr = frontier.New(ab.Alloc, n, graph.CoordScale)
		for v := uint64(0); v < n; v++ {
			if v == uint64(b.src) {
				// dist = 0, never relaxed, root entry pending at 0.
				fr.Init(ab.Store, v, 0, frontier.Unsettled, 0)
			} else {
				fr.Init(ab.Store, v, frontier.Unsettled, frontier.Unsettled, frontier.NeverPushed)
			}
		}
		relax := ab.Fn("relax", func(e guest.TaskEnv) {
			v := e.Arg(0)
			// This entry is consumed: later improvements must be free to
			// push again, whatever their priority.
			fr.ClearPending(e, v)
			d := fr.Value(e, v)
			e.Work(2)
			if fr.Aux(e, v) <= d {
				return // edges already relaxed at this or a better distance
			}
			fr.SetAux(e, v, d)
			lo := e.Load(gc.OffAddr(v))
			hi := e.Load(gc.OffAddr(v + 1))
			e.Work(14) // relaxation bookkeeping (as sssp, Table 1)
			for i := lo; i < hi; i++ {
				child := e.Load(gc.DstAddr(i))
				w := e.Load(gc.WAddr(i))
				e.Work(2)
				fr.PushMin(e, child, d+w)
			}
		})
		fr.Fn = relax
		return []guest.TaskDesc{guest.TaskDesc{Fn: relax, TS: 0,
			Args: [3]uint64{uint64(b.src), 0}}.WithHint(uint64(b.src) << 1)}
	}
	app.Verify = func(load func(uint64) uint64) error {
		for u := 0; u < b.g.N; u++ {
			if got := load(fr.ValueAddr(uint64(u))); got != b.refDist(u) {
				return fmt.Errorf("dsssp: dist[%d] = %d, want %d", u, got, b.refDist(u))
			}
		}
		return nil
	}
	return app
}

// RunSwarm implements Benchmark.
func (b *DSSSP) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// verifySerial checks the serial flavor's distances (kept in the packed
// CSR's Dist array) against host Dijkstra.
func (b *DSSSP) verifySerial(load func(uint64) uint64, gc graph.GuestCSR) error {
	for u := 0; u < b.g.N; u++ {
		if got := load(gc.DistAddr(uint64(u))); got != b.refDist(u) {
			return fmt.Errorf("dsssp: dist[%d] = %d, want %d", u, got, b.refDist(u))
		}
	}
	return nil
}

// RunSerial implements Benchmark: sequential Dijkstra with a binary-heap
// priority queue — the serial optimum delta-stepping degenerates to, and
// the baseline its speedups are quoted against.
func (b *DSSSP) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	pq := swrt.NewHeap(m.SetupAlloc, uint64(b.g.M())+2)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, gc, pq, func() {})
	})
	return cycles, b.verifySerial(m.Mem().Load, gc)
}

func (b *DSSSP) serialBody(e guest.Env, gc graph.GuestCSR, pq swrt.Heap, iterMark func()) {
	pq.Push(e, 0, uint64(b.src))
	for {
		iterMark()
		d, u, ok := pq.PopMin(e)
		if !ok {
			return
		}
		e.Work(1)
		if e.Load(gc.DistAddr(u)) != graph.Unvisited {
			continue
		}
		e.Store(gc.DistAddr(u), d)
		lo := e.Load(gc.OffAddr(u))
		hi := e.Load(gc.OffAddr(u + 1))
		e.Work(2)
		for i := lo; i < hi; i++ {
			v := e.Load(gc.DstAddr(i))
			e.Work(1)
			if e.Load(gc.DistAddr(v)) == graph.Unvisited {
				w := e.Load(gc.WAddr(i))
				pq.Push(e, d+w, v)
			}
		}
	}
}

// SerialApp implements Benchmark.
func (b *DSSSP) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		gc := graph.Pack(b.g, alloc, store)
		pq := swrt.NewHeap(alloc, uint64(b.g.M())+2)
		return func(e guest.Env, mark func()) { b.serialBody(e, gc, pq, mark) }
	}}
}

// HasParallel implements Benchmark. (The software-parallel label-correcting
// comparison already exists in the suite: sssp's Bellman-Ford baseline.)
func (b *DSSSP) HasParallel() bool { return false }

// RunParallel implements Benchmark.
func (b *DSSSP) RunParallel(int) (uint64, error) {
	return 0, fmt.Errorf("dsssp has no software-parallel version")
}
