package bench

import (
	"fmt"
	"sort"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
)

// MSort is parallel mergesort, the canonical fork-join divide-and-conquer
// workload: every task runs in ONE timestamp slot and the whole execution
// order lives in the nested fork paths (Fractal-style sub-ordering). A
// split task forks its two half sorts and then a merge ordered after both
// subtrees — the nested dag order makes the merge a proper join without
// any timestamp arithmetic, something flat timestamps cannot express
// inside one slot. The merge speculates against its half sorts and is
// conflict-aborted until their writes commit, so the app doubles as a
// stress test for abort cascades across fork depths.
type MSort struct {
	vals []uint64 // input, fixed at construction
	ref  []uint64 // host-sorted reference
	cut  int      // insertion-sort cutoff
}

func init() {
	Register(AppMeta{
		Name:        "msort",
		Order:       12,
		Summary:     "fork-join parallel mergesort in a single nested timestamp slot",
		HasParallel: false, // the point is the nested order; a thread version would just be sort
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewMSort(64, 8)
		case ScaleSmall:
			return NewMSort(256, 8)
		case ScaleLarge:
			return NewMSort(4096, 16)
		default:
			return NewMSort(1024, 16)
		}
	})
}

// NewMSort builds the benchmark over n pseudo-random values with the
// given insertion-sort cutoff.
func NewMSort(n, cutoff int) *MSort {
	vals := make([]uint64, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = x % uint64(4*n) // duplicates on purpose: stability is not assumed
	}
	ref := append([]uint64(nil), vals...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	return &MSort{vals: vals, ref: ref, cut: cutoff}
}

// Name implements Benchmark.
func (b *MSort) Name() string { return "msort" }

func (b *MSort) verify(load func(uint64) uint64, arr uint64) error {
	for i, want := range b.ref {
		if got := load(arr + 8*uint64(i)); got != want {
			return fmt.Errorf("msort: arr[%d] = %d, want %d", i, got, want)
		}
	}
	return nil
}

// SwarmApp implements Benchmark: split(lo,hi) forks split(lo,mid) [sub 0],
// split(mid,hi) [sub 1] and merge(lo,mid,hi) [sub 2]; the nested dag
// order (a subtree before its next sibling) is exactly mergesort's
// post-order, so the merge commits after both half sorts.
func (b *MSort) SwarmApp() SwarmApp {
	var arr uint64
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		n := uint64(len(b.vals))
		arr = ab.Alloc(8 * n)
		tmp := ab.Alloc(8 * n)
		for i, v := range b.vals {
			ab.Store(arr+8*uint64(i), v)
		}
		var split, merge guest.FnID
		split = ab.Fn("split", func(e guest.TaskEnv) {
			lo, hi := e.Arg(0), e.Arg(1)
			e.Work(4)
			if hi-lo <= uint64(b.cut) {
				insertionSort(e, arr, lo, hi)
				return
			}
			mid := lo + (hi-lo)/2
			e.Fork(split, lo, mid)
			e.Fork(split, mid, hi)
			e.Fork(merge, lo, mid, hi)
		})
		merge = ab.Fn("merge", func(e guest.TaskEnv) {
			mergeHalves(e, arr, tmp, e.Arg(0), e.Arg(1), e.Arg(2))
		})
		return []guest.TaskDesc{{Fn: split, TS: 0, Args: [3]uint64{0, n}}}
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, arr) }
	return app
}

// insertionSort sorts arr[lo,hi) in place — the base case.
func insertionSort(e guest.Env, arr, lo, hi uint64) {
	for i := lo + 1; i < hi; i++ {
		v := e.Load(arr + 8*i)
		j := i
		for j > lo {
			u := e.Load(arr + 8*(j-1))
			e.Work(1)
			if u <= v {
				break
			}
			e.Store(arr+8*j, u)
			j--
		}
		e.Store(arr+8*j, v)
	}
}

// mergeHalves merges the sorted halves arr[lo,mid) and arr[mid,hi) through
// tmp back into arr[lo,hi).
func mergeHalves(e guest.Env, arr, tmp, lo, mid, hi uint64) {
	e.Work(4)
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		a := e.Load(arr + 8*i)
		c := e.Load(arr + 8*j)
		e.Work(1)
		if a <= c {
			e.Store(tmp+8*k, a)
			i++
		} else {
			e.Store(tmp+8*k, c)
			j++
		}
		k++
	}
	for ; i < mid; i++ {
		e.Store(tmp+8*k, e.Load(arr+8*i))
		k++
	}
	for ; j < hi; j++ {
		e.Store(tmp+8*k, e.Load(arr+8*j))
		k++
	}
	for k = lo; k < hi; k++ {
		e.Store(arr+8*k, e.Load(tmp+8*k))
	}
}

// RunSwarm implements Benchmark.
func (b *MSort) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// serialBody is the serial algorithm in the task decomposition's own
// (nested) order: recurse left, recurse right, merge. iterMark flags one
// boundary per base-case sort and per merge — the task grain.
func (b *MSort) serialBody(e guest.Env, arr, tmp uint64, iterMark func()) {
	var rec func(lo, hi uint64)
	rec = func(lo, hi uint64) {
		e.Work(4)
		if hi-lo <= uint64(b.cut) {
			iterMark()
			insertionSort(e, arr, lo, hi)
			return
		}
		mid := lo + (hi-lo)/2
		rec(lo, mid)
		rec(mid, hi)
		iterMark()
		mergeHalves(e, arr, tmp, lo, mid, hi)
	}
	rec(0, uint64(len(b.vals)))
}

// RunSerial implements Benchmark.
func (b *MSort) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	n := uint64(len(b.vals))
	arr := m.SetupAlloc(8 * n)
	tmp := m.SetupAlloc(8 * n)
	for i, v := range b.vals {
		m.Mem().Store(arr+8*uint64(i), v)
	}
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, arr, tmp, func() {})
	})
	return cycles, b.verify(m.Mem().Load, arr)
}

// SerialApp implements Benchmark.
func (b *MSort) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		n := uint64(len(b.vals))
		arr := alloc(8 * n)
		tmp := alloc(8 * n)
		for i, v := range b.vals {
			store(arr+8*uint64(i), v)
		}
		return func(e guest.Env, mark func()) { b.serialBody(e, arr, tmp, mark) }
	}}
}

// HasParallel implements Benchmark.
func (b *MSort) HasParallel() bool { return false }

// RunParallel implements Benchmark.
func (b *MSort) RunParallel(int) (uint64, error) {
	return 0, fmt.Errorf("msort: no software-parallel version")
}
