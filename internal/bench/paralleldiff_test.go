package bench

import (
	"reflect"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// The app-level differential harness for the tile-parallel machine: every
// registered benchmark, across simulated machine sizes and SimWorkers
// counts, must produce Stats (and, for phased apps, PhaseStats) exactly
// equal to the single-threaded run — every counter, cycle count, occupancy
// average, NoC byte and cache statistic. RunSwarm additionally verifies
// committed guest memory against each app's host-side reference, so a
// passing cell proves memory identity too. Under -race this suite is also
// the proof of the guest purity contract (execute-ahead runs task bodies
// on shard workers) for every app in the suite, not just synthetic
// programs.
//
// The full matrix (cores × {1,4,16,64} × simworkers {2,4,8} plus a
// perturbed adversarial-scheduling cell) runs in normal mode; -short trims
// to a representative corner sample.

var diffWorkers = []int{2, 4, 8}

func diffCores(short bool) []int {
	if short {
		return []int{1, 16}
	}
	return []int{1, 4, 16, 64}
}

func TestParallelDifferentialApps(t *testing.T) {
	workers := diffWorkers
	if testing.Short() {
		workers = []int{2, 8}
	}
	for _, meta := range Apps() {
		meta := meta
		t.Run(meta.Name, func(t *testing.T) {
			b, err := New(meta.Name, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			for _, cores := range diffCores(testing.Short()) {
				serialCfg := core.DefaultConfig(cores)
				serial, err := b.RunSwarm(serialCfg)
				if err != nil {
					t.Fatalf("cores=%d serial: %v", cores, err)
				}
				for _, w := range workers {
					cfg := serialCfg
					cfg.SimWorkers = w
					got, err := b.RunSwarm(cfg)
					if err != nil {
						t.Fatalf("cores=%d simworkers=%d: %v", cores, w, err)
					}
					if !reflect.DeepEqual(got, serial) {
						t.Fatalf("cores=%d simworkers=%d: Stats diverge from serial\n got: %+v\nwant: %+v",
							cores, w, got, serial)
					}
				}
				// One adversarial-scheduling cell per machine size:
				// randomized worker yields/sleeps must change nothing.
				cfg := serialCfg
				cfg.SimWorkers = 2
				cfg.SimPerturb = int64(cores)*1_000_003 + 17
				got, err := b.RunSwarm(cfg)
				if err != nil {
					t.Fatalf("cores=%d perturbed: %v", cores, err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("cores=%d perturbed simworkers=2: Stats diverge from serial", cores)
				}
			}
		})
	}
}

// TestParallelDifferentialPhases compares full per-phase statistics of
// every multi-phase (session) benchmark: the clock, caches and counters
// carry across quiescent points, so any parallel-path divergence in an
// early phase amplifies into later ones.
func TestParallelDifferentialPhases(t *testing.T) {
	cores := []int{4, 16}
	if testing.Short() {
		cores = cores[:1]
	}
	ran := false
	for _, meta := range Apps() {
		b, err := New(meta.Name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		ph, ok := b.(Phased)
		if !ok {
			continue
		}
		ran = true
		t.Run(meta.Name, func(t *testing.T) {
			for _, nc := range cores {
				serialCfg := core.DefaultConfig(nc)
				serial, err := ph.RunSwarmPhases(serialCfg)
				if err != nil {
					t.Fatalf("cores=%d serial: %v", nc, err)
				}
				for _, w := range diffWorkers {
					cfg := serialCfg
					cfg.SimWorkers = w
					cfg.SimPerturb = int64(w) * 131
					got, err := ph.RunSwarmPhases(cfg)
					if err != nil {
						t.Fatalf("cores=%d simworkers=%d: %v", nc, w, err)
					}
					if !reflect.DeepEqual(got, serial) {
						t.Fatalf("cores=%d simworkers=%d: PhaseStats diverge from serial\n got: %+v\nwant: %+v",
							nc, w, got, serial)
					}
				}
			}
		})
	}
	if !ran {
		t.Fatal("no phased benchmark registered — the multi-phase differential never ran")
	}
}

// TestParallelDifferentialMappers covers the non-default task mappers:
// hint and stealing mappers move placement decisions (and, for stealing,
// GVT-epoch migrations) through paths the random mapper never takes.
func TestParallelDifferentialMappers(t *testing.T) {
	if testing.Short() {
		t.Skip("mapper differential runs in full mode only")
	}
	for _, mapper := range []string{"hint", "stealing"} {
		mapper := mapper
		t.Run(mapper, func(t *testing.T) {
			for _, app := range []string{"sssp", "des"} {
				b, err := New(app, ScaleTiny)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.DefaultConfig(16)
				cfg.Mapper = mapper
				serial, err := b.RunSwarm(cfg)
				if err != nil {
					t.Fatalf("%s serial: %v", app, err)
				}
				cfg.SimWorkers = 4
				got, err := b.RunSwarm(cfg)
				if err != nil {
					t.Fatalf("%s simworkers=4: %v", app, err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("%s mapper=%s simworkers=4: Stats diverge from serial", app, mapper)
				}
			}
		})
	}
}
