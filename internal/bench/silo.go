package bench

import (
	"sort"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/tpcc"
)

// Silo is the in-memory OLTP benchmark: TPC-C transactions on the tpcc
// substrate. The serial version runs transactions back-to-back with no
// synchronization; the software-parallel version is the Silo OCC protocol
// (per-tuple version locks, read validation, buffered writes); the Swarm
// version decomposes each transaction into tiny ordered tasks that each
// write at most one tuple, with disjoint timestamp ranges per transaction
// preserving atomicity (§5) — exposing parallelism within and across
// transactions even with a single warehouse (Fig 13).
type Silo struct {
	sc   tpcc.Scale
	txns []tpcc.Txn
}

func init() {
	Register(AppMeta{
		Name:        "silo",
		Order:       5,
		Summary:     "in-memory TPC-C transactions (silo-style OCC baseline)",
		HasParallel: true,
		Figures:     []string{"fig13"},
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewSilo(2, 60, 7)
		case ScaleSmall:
			return NewSilo(4, 200, 7)
		default:
			return NewSilo(4, 800, 7)
		}
	})
}

// NewSilo builds the benchmark with the given warehouse count and
// transaction count.
func NewSilo(warehouses, txns int, seed int64) *Silo {
	sc := tpcc.DefaultScale(warehouses, txns)
	return &Silo{sc: sc, txns: tpcc.Generate(sc, txns, seed)}
}

// Name implements Benchmark.
func (b *Silo) Name() string { return "silo" }

// tsBits is the per-transaction timestamp range (tasks of txn i use
// timestamps [i<<tsBits, (i+1)<<tsBits)).
const tsBits = 6

// RunSerial implements Benchmark.
func (b *Silo) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	l := tpcc.Pack(b.sc, b.txns, m.SetupAlloc, m.Mem().Store)
	cycles := m.Run(func(e guest.Env) {
		for i := range b.txns {
			tpcc.ExecTxn(e, l, uint64(i))
		}
	})
	_, refLoad := tpcc.Reference(b.sc, b.txns)
	return cycles, l.CompareExact(m.Mem().Load, refLoad)
}

// ---------------------------------------------------------------- Swarm --

// Argument packing for item/delivery chains (3x64-bit descriptor words).
func packOidJ(oid, j uint64) uint64       { return oid<<8 | j }
func unpackOidJ(p uint64) (oid, j uint64) { return p >> 8, p & 0xff }

func packDlv(d, oid, cid, cnt, j uint64) uint64 {
	return d | oid<<8 | cid<<24 | cnt<<40 | j<<48
}
func unpackDlv(p uint64) (d, oid, cid, cnt, j uint64) {
	return p & 0xff, p >> 8 & 0xffff, p >> 24 & 0xffff, p >> 40 & 0xff, p >> 48 & 0xff
}

// Spatial hint keys for hint-based task mappers: TPC-C tuples cluster by
// warehouse and district, so each pipeline task carries the tightest key
// its enqueuer has already loaded — the district for tuple tasks, the item
// for stock updates, the transaction id for fan-out tasks (whose first
// access is the transaction record itself). The low bits namespace the key
// kinds so distinct tables never alias to one home tile by accident.
func hintTxn(i uint64) uint64         { return i << 2 }
func hintDistrict(w, d uint64) uint64 { return (w<<8|d)<<2 | 1 }
func hintItem(item uint64) uint64     { return item<<2 | 2 }

// Task-function handles for the Swarm decomposition, in registration
// order. The table is dense (every transaction type's pipeline stages),
// so the handles are package constants rather than Build-local variables;
// siloFnNames aligns positionally for registration.
const (
	siloSpawn       guest.FnID = iota // fan out transaction roots
	siloTxnRoot                       // read parameters, enqueue the per-tuple pipeline
	siloNoDistrict                    // NewOrder: take an order id (district tuple)
	siloNoInsert                      // NewOrder: write the order row
	siloNoPush                        // NewOrder: push onto the new-order queue
	siloNoItemSpawn                   // NewOrder: fan out per-item chains
	siloNoItemRead                    // NewOrder: read the item price
	siloNoStock                       // NewOrder: update one stock tuple
	siloNoLine                        // NewOrder: write one order line
	siloPayW                          // Payment: warehouse tuple
	siloPayD                          // Payment: district tuple
	siloPayC                          // Payment: customer tuple
	siloOsCust                        // OrderStatus: customer read
	siloOsDistrict                    // OrderStatus: district read
	siloOsScan                        // OrderStatus: scan one order's lines
	siloDlvSpawn                      // Delivery: fan out districts
	siloDlvPop                        // Delivery: pop the new-order queue
	siloDlvOrder                      // Delivery: the order tuple
	siloDlvLine                       // Delivery: one order-line tuple
	siloDlvCust                       // Delivery: the customer tuple
	siloSlDistrict                    // StockLevel: district read
	siloSlScan                        // StockLevel: scan one order's stock
	siloNumFns
)

var siloFnNames = [siloNumFns]string{
	"spawn", "txnRoot",
	"noDistrict", "noInsert", "noPush", "noItemSpawn", "noItemRead", "noStock", "noLine",
	"payWarehouse", "payDistrict", "payCustomer",
	"osCustomer", "osDistrict", "osScan",
	"dlvSpawn", "dlvPop", "dlvOrder", "dlvLine", "dlvCustomer",
	"slDistrict", "slScan",
}

// SwarmApp implements Benchmark; the function table is the constants
// above, one entry per transaction pipeline stage.
func (b *Silo) SwarmApp() SwarmApp {
	var l *tpcc.Layout
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		l = tpcc.Pack(b.sc, b.txns, ab.Alloc, ab.Store)

		txnBase := func(e guest.TaskEnv) (base uint64, i uint64) {
			i = e.Arg(0)
			return l.TxnAddr(i), i
		}

		fns := make([]guest.TaskFn, siloNumFns)
		fns[siloSpawn] = func(e guest.TaskEnv) {
			spawnRangeTask(e, siloSpawn, func(e guest.TaskEnv, i uint64) {
				e.EnqueueHinted(siloTxnRoot, i<<tsBits, hintTxn(i), [3]uint64{i})
			})
		}
		fns[siloTxnRoot] = func(e guest.TaskEnv) { // txnRoot
			base, i := txnBase(e)
			typ := tpcc.TxnType(e.Load(base))
			ts := e.Timestamp()
			e.Work(150)
			switch typ {
			case tpcc.NewOrder:
				e.EnqueueHinted(siloNoDistrict, ts+1, hintTxn(i), [3]uint64{i})
			case tpcc.Payment:
				e.EnqueueHinted(siloPayW, ts+1, hintTxn(i), [3]uint64{i})
				e.EnqueueHinted(siloPayD, ts+2, hintTxn(i), [3]uint64{i})
				e.EnqueueHinted(siloPayC, ts+3, hintTxn(i), [3]uint64{i})
			case tpcc.OrderStatus:
				e.EnqueueHinted(siloOsCust, ts+1, hintTxn(i), [3]uint64{i})
				e.EnqueueHinted(siloOsDistrict, ts+2, hintTxn(i), [3]uint64{i})
			case tpcc.Delivery:
				e.EnqueueHinted(siloDlvSpawn, ts+1, hintTxn(i), [3]uint64{i, 0})
			case tpcc.StockLevel:
				e.EnqueueHinted(siloSlDistrict, ts+1, hintTxn(i), [3]uint64{i})
			}
		}

		// --- NewOrder pipeline ---
		fns[siloNoDistrict] = func(e guest.TaskEnv) { // noDistrict: the district tuple
			base, i := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			dAddr := l.DistrictAddr(w, d)
			_ = e.Load(dAddr + tpcc.FDTax*8)
			oid := e.Load(dAddr + tpcc.FDNextOID*8)
			e.Store(dAddr+tpcc.FDNextOID*8, oid+1)
			e.Work(250)
			if oid >= uint64(l.Scale.MaxOrders) {
				panic("silo: order table overflow; raise Scale.MaxOrders")
			}
			ts := e.Timestamp()
			e.EnqueueHinted(siloNoInsert, ts+1, hintDistrict(w, d), [3]uint64{i, oid})
			e.EnqueueHinted(siloNoPush, ts+2, hintDistrict(w, d), [3]uint64{i, oid})
			e.EnqueueHinted(siloNoItemSpawn, ts+3, hintTxn(i), [3]uint64{i, oid, 0})
		}
		fns[siloNoInsert] = func(e guest.TaskEnv) { // noInsert: the order tuple
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			c := e.Load(base + 3*8)
			n := e.Load(base + 7*8)
			oid := e.Arg(1)
			oAddr := l.OrderAddr(w, d, oid)
			e.Store(oAddr+tpcc.FOCid*8, c)
			e.Store(oAddr+tpcc.FOOlCnt*8, n)
			e.Work(250)
		}
		fns[siloNoPush] = func(e guest.TaskEnv) { // noPush: the new-order queue tuple
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			oid := e.Arg(1)
			nq := l.NOQAddr(w, d)
			tail := e.Load(nq + tpcc.FNOTail*8)
			e.Store(l.NORingAddr(w, d, tail), oid)
			e.Store(nq+tpcc.FNOTail*8, tail+1)
			e.Work(250)
		}
		fns[siloNoItemSpawn] = func(e guest.TaskEnv) { // noItemSpawn: fan out item chains
			base, i := txnBase(e)
			oid := e.Arg(1)
			j0 := e.Arg(2)
			n := e.Load(base + 7*8)
			ts := e.Timestamp()
			e.Work(4)
			end := j0 + 7
			if end > n {
				end = n
			}
			for j := j0; j < end; j++ {
				e.EnqueueHinted(siloNoItemRead, ts+2+3*j, hintTxn(i), [3]uint64{i, packOidJ(oid, j)})
			}
			if end < n {
				e.EnqueueHinted(siloNoItemSpawn, ts, hintTxn(i), [3]uint64{i, oid, end})
			}
		}
		fns[siloNoItemRead] = func(e guest.TaskEnv) { // noItemRead: the item tuple
			base, i := txnBase(e)
			oid, j := unpackOidJ(e.Arg(1))
			item := e.Load(base + (8+3*j)*8)
			price := e.Load(l.ItemAddr(item) + tpcc.FIPrice*8)
			e.Work(250)
			e.EnqueueHinted(siloNoStock, e.Timestamp()+1, hintItem(item), [3]uint64{i, packOidJ(oid, j), price})
		}
		fns[siloNoStock] = func(e guest.TaskEnv) { // noStock: one stock tuple
			base, i := txnBase(e)
			_, j := unpackOidJ(e.Arg(1))
			w := e.Load(base + 1*8)
			ib := base + (8+3*j)*8
			item := e.Load(ib)
			supplyW := e.Load(ib + 8)
			qty := e.Load(ib + 16)
			sAddr := l.StockAddr(supplyW, item)
			sq := e.Load(sAddr + tpcc.FSQty*8)
			if sq >= qty+10 {
				sq -= qty
			} else {
				sq = sq - qty + 91
			}
			e.Store(sAddr+tpcc.FSQty*8, sq)
			e.Store(sAddr+tpcc.FSYtd*8, e.Load(sAddr+tpcc.FSYtd*8)+qty)
			e.Store(sAddr+tpcc.FSOrderCnt*8, e.Load(sAddr+tpcc.FSOrderCnt*8)+1)
			if supplyW != w {
				e.Store(sAddr+tpcc.FSRemoteCnt*8, e.Load(sAddr+tpcc.FSRemoteCnt*8)+1)
			}
			e.Work(250)
			price := e.Arg(2)
			e.EnqueueHinted(siloNoLine, e.Timestamp()+1, hintTxn(i), [3]uint64{i, e.Arg(1), qty * price})
		}
		fns[siloNoLine] = func(e guest.TaskEnv) { // noLine: one order-line tuple
			base, _ := txnBase(e)
			oid, j := unpackOidJ(e.Arg(1))
			amount := e.Arg(2)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			ib := base + (8+3*j)*8
			item := e.Load(ib)
			supplyW := e.Load(ib + 8)
			qty := e.Load(ib + 16)
			olAddr := l.OLAddr(w, d, oid, j)
			e.Store(olAddr+tpcc.FOLItem*8, item)
			e.Store(olAddr+tpcc.FOLSupplyW*8, supplyW)
			e.Store(olAddr+tpcc.FOLQty*8, qty)
			e.Store(olAddr+tpcc.FOLAmount*8, amount)
			e.Work(250)
		}

		// --- Payment ---
		fns[siloPayW] = func(e guest.TaskEnv) { // warehouse tuple
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			a := e.Load(base + 4*8)
			wAddr := l.WarehouseAddr(w)
			e.Store(wAddr+tpcc.FWYtd*8, e.Load(wAddr+tpcc.FWYtd*8)+a)
			e.Work(250)
		}
		fns[siloPayD] = func(e guest.TaskEnv) { // district tuple
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			a := e.Load(base + 4*8)
			dAddr := l.DistrictAddr(w, d)
			e.Store(dAddr+tpcc.FDYtd*8, e.Load(dAddr+tpcc.FDYtd*8)+a)
			e.Work(250)
		}
		fns[siloPayC] = func(e guest.TaskEnv) { // customer tuple
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			c := e.Load(base + 3*8)
			a := e.Load(base + 4*8)
			cAddr := l.CustomerAddr(w, d, c)
			e.Store(cAddr+tpcc.FCBalance*8, e.Load(cAddr+tpcc.FCBalance*8)-a)
			e.Store(cAddr+tpcc.FCYtdPayment*8, e.Load(cAddr+tpcc.FCYtdPayment*8)+a)
			e.Store(cAddr+tpcc.FCPaymentCnt*8, e.Load(cAddr+tpcc.FCPaymentCnt*8)+1)
			e.Work(250)
		}

		// --- OrderStatus (read-only) ---
		fns[siloOsCust] = func(e guest.TaskEnv) {
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			c := e.Load(base + 3*8)
			_ = e.Load(l.CustomerAddr(w, d, c) + tpcc.FCBalance*8)
			e.Work(250)
		}
		fns[siloOsDistrict] = func(e guest.TaskEnv) {
			base, i := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			oid := e.Load(l.DistrictAddr(w, d) + tpcc.FDNextOID*8)
			e.Work(250)
			if oid > 0 {
				e.EnqueueHinted(siloOsScan, e.Timestamp()+1, hintDistrict(w, d), [3]uint64{i, oid - 1})
			}
		}
		fns[siloOsScan] = func(e guest.TaskEnv) { // scan one order's lines
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			oid := e.Arg(1)
			oAddr := l.OrderAddr(w, d, oid)
			cnt := e.Load(oAddr + tpcc.FOOlCnt*8)
			_ = e.Load(oAddr + tpcc.FOCarrier*8)
			for j := uint64(0); j < cnt; j++ {
				_ = e.Load(l.OLAddr(w, d, oid, j) + tpcc.FOLAmount*8)
				e.Work(4)
			}
			e.Work(20)
		}

		// --- Delivery ---
		fns[siloDlvSpawn] = func(e guest.TaskEnv) { // fan out districts (7 + chain)
			_, i := txnBase(e)
			d0 := e.Arg(1)
			ts := e.Timestamp()
			e.Work(4)
			end := d0 + 7
			if end > uint64(l.Scale.Districts) {
				end = uint64(l.Scale.Districts)
			}
			for d := d0; d < end; d++ {
				e.EnqueueHinted(siloDlvPop, ts+1+d*5, hintTxn(i), [3]uint64{i, d})
			}
			if end < uint64(l.Scale.Districts) {
				e.EnqueueHinted(siloDlvSpawn, ts, hintTxn(i), [3]uint64{i, end})
			}
		}
		fns[siloDlvPop] = func(e guest.TaskEnv) { // dlvPop: the queue tuple
			base, i := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Arg(1)
			nq := l.NOQAddr(w, d)
			head := e.Load(nq + tpcc.FNOHead*8)
			tail := e.Load(nq + tpcc.FNOTail*8)
			e.Work(250)
			if head == tail {
				return
			}
			oid := e.Load(l.NORingAddr(w, d, head))
			e.Store(nq+tpcc.FNOHead*8, head+1)
			e.EnqueueHinted(siloDlvOrder, e.Timestamp()+1, hintDistrict(w, d), [3]uint64{i, packDlv(d, oid, 0, 0, 0)})
		}
		fns[siloDlvOrder] = func(e guest.TaskEnv) { // dlvOrder: the order tuple
			base, i := txnBase(e)
			d, oid, _, _, _ := unpackDlv(e.Arg(1))
			w := e.Load(base + 1*8)
			carrier := e.Load(base + 5*8)
			oAddr := l.OrderAddr(w, d, oid)
			e.Store(oAddr+tpcc.FOCarrier*8, carrier)
			cnt := e.Load(oAddr + tpcc.FOOlCnt*8)
			cid := e.Load(oAddr + tpcc.FOCid*8)
			e.Work(250)
			e.EnqueueHinted(siloDlvLine, e.Timestamp()+1, hintDistrict(w, d), [3]uint64{i, packDlv(d, oid, cid, cnt, 0), 0})
		}
		fns[siloDlvLine] = func(e guest.TaskEnv) { // dlvLine: one order-line tuple
			base, i := txnBase(e)
			d, oid, cid, cnt, j := unpackDlv(e.Arg(1))
			acc := e.Arg(2)
			w := e.Load(base + 1*8)
			carrier := e.Load(base + 5*8)
			if j < cnt {
				olAddr := l.OLAddr(w, d, oid, j)
				acc += e.Load(olAddr + tpcc.FOLAmount*8)
				e.Store(olAddr+tpcc.FOLDelivery*8, carrier)
				e.Work(8)
			}
			if j+1 < cnt {
				e.EnqueueHinted(siloDlvLine, e.Timestamp(), hintDistrict(w, d), [3]uint64{i, packDlv(d, oid, cid, cnt, j+1), acc})
			} else {
				e.EnqueueHinted(siloDlvCust, e.Timestamp()+1, hintDistrict(w, d), [3]uint64{i, packDlv(d, oid, cid, cnt, 0), acc})
			}
		}
		fns[siloDlvCust] = func(e guest.TaskEnv) { // dlvCust: the customer tuple
			base, _ := txnBase(e)
			d, _, cid, _, _ := unpackDlv(e.Arg(1))
			total := e.Arg(2)
			w := e.Load(base + 1*8)
			cAddr := l.CustomerAddr(w, d, cid)
			e.Store(cAddr+tpcc.FCBalance*8, e.Load(cAddr+tpcc.FCBalance*8)+total)
			e.Store(cAddr+tpcc.FCDeliveryCnt*8, e.Load(cAddr+tpcc.FCDeliveryCnt*8)+1)
			e.Work(250)
		}

		// --- StockLevel (read-only) ---
		fns[siloSlDistrict] = func(e guest.TaskEnv) {
			base, i := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			next := e.Load(l.DistrictAddr(w, d) + tpcc.FDNextOID*8)
			e.Work(250)
			lo := uint64(0)
			if next > 8 {
				lo = next - 8
			}
			for o := lo; o < next; o++ {
				e.EnqueueHinted(siloSlScan, e.Timestamp()+1, hintDistrict(w, d), [3]uint64{i, o})
			}
		}
		fns[siloSlScan] = func(e guest.TaskEnv) { // scan one order's stock levels
			base, _ := txnBase(e)
			w := e.Load(base + 1*8)
			d := e.Load(base + 2*8)
			threshold := e.Load(base + 6*8)
			o := e.Arg(1)
			oAddr := l.OrderAddr(w, d, o)
			cnt := e.Load(oAddr + tpcc.FOOlCnt*8)
			low := uint64(0)
			for j := uint64(0); j < cnt; j++ {
				item := e.Load(l.OLAddr(w, d, o, j) + tpcc.FOLItem*8)
				if e.Load(l.StockAddr(w, item)+tpcc.FSQty*8) < threshold {
					low++
				}
				e.Work(4)
			}
			e.Work(20)
			_ = low
		}

		for i, fn := range fns {
			ab.Fn(siloFnNames[i], fn)
		}
		return []guest.TaskDesc{{Fn: siloSpawn, TS: 0, Args: [3]uint64{0, uint64(len(b.txns))}}}
	}
	app.Verify = func(load func(uint64) uint64) error {
		_, refLoad := tpcc.Reference(b.sc, b.txns)
		return l.CompareExact(load, refLoad)
	}
	return app
}

// RunSwarm implements Benchmark.
func (b *Silo) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// SerialApp implements Benchmark: iterations are whole transactions —
// which is exactly why ideal TLS underperforms Swarm on silo (Table 1:
// 45x vs 318x): the sequential grain is the transaction, not the tuple
// access.
func (b *Silo) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		l := tpcc.Pack(b.sc, b.txns, alloc, store)
		return func(e guest.Env, mark func()) {
			for i := range b.txns {
				mark()
				tpcc.ExecTxn(e, l, uint64(i))
			}
		}
	}}
}

// ------------------------------------------------------------------ OCC --

// HasParallel implements Benchmark.
func (b *Silo) HasParallel() bool { return true }

// occEnv adapts guest.Env to Silo's optimistic concurrency control: reads
// record per-tuple versions, writes are buffered, and commit locks the
// write set (sorted), validates the read set, applies and bumps versions.
type occEnv struct {
	e       guest.ThreadEnv
	l       *tpcc.Layout
	reads   map[uint64]uint64 // version addr -> observed version
	rOrder  []uint64          // observed version addrs, insertion order
	writes  map[uint64]uint64 // field addr -> buffered value
	wOrder  []uint64          // buffered write field addrs, insertion order
	wTuples map[uint64]bool   // version addrs of written tuples
}

func newOCC(e guest.ThreadEnv, l *tpcc.Layout) *occEnv {
	return &occEnv{
		e: e, l: l,
		reads:   make(map[uint64]uint64),
		writes:  make(map[uint64]uint64),
		wTuples: make(map[uint64]bool),
	}
}

func (o *occEnv) observe(vaddr uint64) {
	if _, ok := o.reads[vaddr]; ok {
		return
	}
	for {
		v := o.e.Load(vaddr)
		if v&1 == 0 {
			o.reads[vaddr] = v
			o.rOrder = append(o.rOrder, vaddr)
			return
		}
		o.e.Work(20) // writer holds the tuple lock; spin
	}
}

// Load implements guest.Env: reads see the transaction's own writes.
func (o *occEnv) Load(addr uint64) uint64 {
	if v, ok := o.writes[addr]; ok {
		return v
	}
	if vaddr, ok := o.l.VersionAddr(addr); ok {
		o.observe(vaddr)
	}
	return o.e.Load(addr)
}

// Store implements guest.Env: writes buffer until commit.
func (o *occEnv) Store(addr, val uint64) {
	vaddr, ok := o.l.VersionAddr(addr)
	if !ok {
		panic("silo: write outside versioned tables")
	}
	o.wTuples[vaddr] = true
	if _, seen := o.writes[addr]; !seen {
		o.wOrder = append(o.wOrder, addr)
	}
	o.writes[addr] = val
}

// Work implements guest.Env.
func (o *occEnv) Work(n uint64) { o.e.Work(n) }

// Alloc implements guest.Env.
func (o *occEnv) Alloc(n uint64) uint64 { return o.e.Alloc(n) }

// Free implements guest.Env.
func (o *occEnv) Free(a, n uint64) { o.e.Free(a, n) }

// commit runs Silo's validation protocol; returns false on abort.
func (o *occEnv) commit() bool {
	e := o.e
	// Phase 1: lock the write set in address order (deadlock-free).
	tuples := make([]uint64, 0, len(o.wTuples))
	for t := range o.wTuples {
		tuples = append(tuples, t)
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })
	locked := make(map[uint64]uint64, len(tuples))
	for _, t := range tuples {
		for {
			v := e.Load(t)
			e.Work(2)
			if v&1 != 0 {
				e.Work(20)
				continue
			}
			if e.CAS(t, v, v|1) {
				locked[t] = v
				break
			}
		}
	}
	// Phase 2: validate the read set in the order it was built. Iterating
	// the reads map directly would make simulated cycle counts depend on
	// Go's randomized map order — the validation walk must be
	// deterministic for runs to be reproducible.
	ok := true
	for _, vaddr := range o.rOrder {
		seen := o.reads[vaddr]
		cur := e.Load(vaddr)
		e.Work(2)
		if lockedV, mine := locked[vaddr]; mine {
			if lockedV != seen {
				ok = false
				break
			}
			continue
		}
		if cur != seen { // changed or locked by someone else
			ok = false
			break
		}
	}
	if !ok {
		for _, t := range tuples {
			e.Store(t, locked[t]) // unlock, version unchanged
		}
		return false
	}
	// Phase 3: apply buffered writes, bump versions, unlock.
	for _, addr := range o.wOrder {
		e.Store(addr, o.writes[addr])
	}
	for _, t := range tuples {
		e.Store(t, locked[t]+2)
	}
	return true
}

// RunParallel implements Benchmark: worker threads claim transactions from
// a shared counter and run them under OCC, retrying on validation failure
// (the wasted work that grows as warehouses shrink, Fig 13).
func (b *Silo) RunParallel(nCores int) (uint64, error) {
	m := smp.NewMachine(smp.DefaultConfig(nCores))
	l := tpcc.Pack(b.sc, b.txns, m.SetupAlloc, m.Mem().Store)
	ctr := m.SetupAlloc(64)
	n := uint64(len(b.txns))

	st, err := m.Run(func(e guest.ThreadEnv) {
		for {
			i := e.FetchAdd(ctr, 1)
			if i >= n {
				return
			}
			for attempt := 0; ; attempt++ {
				occ := newOCC(e, l)
				tpcc.ExecTxn(occ, l, i)
				if occ.commit() {
					break
				}
				e.Work(uint64(20 * (attempt + 1))) // backoff before retry
			}
		}
	})
	if err != nil {
		return 0, err
	}
	_, refLoad := tpcc.Reference(b.sc, b.txns)
	return st.Cycles, l.CompareCommutative(m.Mem().Load, refLoad)
}
