package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// MSF is Kruskal's minimum spanning forest on a Kronecker graph. The
// serial and software-parallel versions sort edges by weight and process
// them in order; the Swarm version instead sorts implicitly through the
// task queues — one task per edge, timestamped by weight — overlapping the
// sort and edge-processing phases (§6.2). The software-parallel version
// uses PBBS-style deterministic reservations.
type MSF struct {
	n     int
	edges []graph.Edge
	ref   uint64 // reference forest weight
}

func init() {
	Register(AppMeta{
		Name:        "msf",
		Order:       3,
		Summary:     "Kruskal minimum spanning forest on a Kronecker graph",
		HasParallel: true,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewMSF(7, 16, 5)
		case ScaleSmall:
			return NewMSF(9, 16, 5)
		default:
			return NewMSF(10, 24, 5)
		}
	})
}

// NewMSF builds the benchmark on a Kronecker graph with 2^logN nodes.
func NewMSF(logN, avgDeg int, seed int64) *MSF {
	n, edges := graph.Kronecker(logN, avgDeg, seed)
	return &MSF{n: n, edges: edges, ref: graph.MSFWeight(n, edges)}
}

// Name implements Benchmark.
func (b *MSF) Name() string { return "msf" }

// guestMSF is the edge-list layout shared by all flavors.
type guestMSF struct {
	m      uint64
	eu, ev swrt.Array
	ew     swrt.Array
	inMSF  swrt.Array
	uf     swrt.UnionFind
}

func (b *MSF) pack(alloc func(uint64) uint64, store func(addr, val uint64)) guestMSF {
	m := uint64(len(b.edges))
	g := guestMSF{
		m:     m,
		eu:    swrt.NewArray(alloc, m),
		ev:    swrt.NewArray(alloc, m),
		ew:    swrt.NewArray(alloc, m),
		inMSF: swrt.NewArray(alloc, m),
		uf:    swrt.NewUnionFind(alloc, uint64(b.n)),
	}
	for i, e := range b.edges {
		store(g.eu.Addr(uint64(i)), uint64(e.U))
		store(g.ev.Addr(uint64(i)), uint64(e.V))
		store(g.ew.Addr(uint64(i)), uint64(e.W))
	}
	g.uf.InitDirect(store)
	return g
}

// verify sums the weights of the selected edges: the total weight of a
// minimum spanning forest is unique even with duplicate edge weights, so
// this is robust to tie-breaking differences between flavors.
func (b *MSF) verify(load func(uint64) uint64, g guestMSF) error {
	var total uint64
	count := 0
	for i := uint64(0); i < g.m; i++ {
		if load(g.inMSF.Addr(i)) != 0 {
			total += load(g.ew.Addr(i))
			count++
		}
	}
	if total != b.ref {
		return fmt.Errorf("msf: forest weight %d (%d edges), want %d", total, count, b.ref)
	}
	return nil
}

// SwarmApp implements Benchmark: a tree of spawner tasks (timestamp 0)
// fans out one task per edge with timestamp = weight; edge tasks run
// Kruskal's union-find test in weight order. Matches Table 1's profile:
// ~40 instructions, ~7 words read, writes only on tree edges.
func (b *MSF) SwarmApp() SwarmApp {
	var g guestMSF
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		g = b.pack(ab.Alloc, ab.Store)
		var spawn, edge guest.FnID
		spawn = ab.Fn("spawn", func(e guest.TaskEnv) {
			spawnRangeTask(e, spawn, func(e guest.TaskEnv, i uint64) {
				w := e.Load(g.ew.Addr(i))
				// Spatial hint: the edge-array block — eight consecutive
				// edge tasks share the eu/ev/ew/inMSF cache lines, so
				// hint-based mappers keep each block's lines tile-local.
				e.EnqueueHinted(edge, w, i/8, [3]uint64{i})
			})
		})
		edge = ab.Fn("edge", func(e guest.TaskEnv) {
			i := e.Arg(0)
			u := e.Load(g.eu.Addr(i))
			v := e.Load(g.ev.Addr(i))
			e.Work(22) // Kruskal iteration bookkeeping (Table 1: ~40 instrs)
			if g.uf.Union(e, u, v) {
				e.Store(g.inMSF.Addr(i), 1)
			}
		})
		return []guest.TaskDesc{{Fn: spawn, TS: 0, Args: [3]uint64{0, g.m}}}
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, g) }
	return app
}

// RunSwarm implements Benchmark.
func (b *MSF) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: tuned serial Kruskal — counting sort by
// weight (weights are bytes), then an in-order union-find scan.
func (b *MSF) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	g := b.pack(m.SetupAlloc, m.Mem().Store)
	hist := swrt.NewArray(m.SetupAlloc, 257)
	sorted := swrt.NewArray(m.SetupAlloc, g.m) // edge indices, weight-sorted
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, g, hist, sorted, func() {})
	})
	return cycles, b.verify(m.Mem().Load, g)
}

// serialBody sorts then scans; iterMark brackets the Kruskal loop
// iterations (the sort is prologue — the paper analyzes the edge loop,
// whose iteration order matches task order, §3).
func (b *MSF) serialBody(e guest.Env, g guestMSF, hist, sorted swrt.Array, iterMark func()) {
	b.serialSort(e, g, hist, sorted)
	for s := uint64(0); s < g.m; s++ {
		iterMark()
		i := e.Load(sorted.Addr(s))
		u := e.Load(g.eu.Addr(i))
		v := e.Load(g.ev.Addr(i))
		e.Work(2)
		if g.uf.Union(e, u, v) {
			e.Store(g.inMSF.Addr(i), 1)
		}
	}
}

// SerialApp implements Benchmark.
func (b *MSF) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		g := b.pack(alloc, store)
		hist := swrt.NewArray(alloc, 257)
		sorted := swrt.NewArray(alloc, g.m)
		return func(e guest.Env, mark func()) { b.serialBody(e, g, hist, sorted, mark) }
	}}
}

// serialSort counting-sorts edge indices by weight into sorted.
func (b *MSF) serialSort(e guest.Env, g guestMSF, hist, sorted swrt.Array) {
	for w := uint64(0); w < 257; w++ {
		e.Store(hist.Addr(w), 0)
	}
	for i := uint64(0); i < g.m; i++ {
		w := e.Load(g.ew.Addr(i))
		e.Store(hist.Addr(w+1), e.Load(hist.Addr(w+1))+1)
	}
	for w := uint64(1); w < 257; w++ {
		e.Store(hist.Addr(w), e.Load(hist.Addr(w))+e.Load(hist.Addr(w-1)))
		e.Work(1)
	}
	for i := uint64(0); i < g.m; i++ {
		w := e.Load(g.ew.Addr(i))
		slot := e.Load(hist.Addr(w))
		e.Store(hist.Addr(w), slot+1)
		e.Store(sorted.Addr(slot), i)
	}
}

// HasParallel implements Benchmark.
func (b *MSF) HasParallel() bool { return true }

// RunParallel implements Benchmark: parallel counting sort by weight, then
// rounds of PBBS-style deterministic reservations — each round, active
// edges reserve both endpoint roots with their (weight-ordered) index;
// winners of both reservations commit their union, losers retry next
// round. Results are deterministic and equal to sequential Kruskal's.
func (b *MSF) RunParallel(nCores int) (uint64, error) {
	p := uint64(nCores)
	m := smp.NewMachine(smp.DefaultConfig(nCores))
	g := b.pack(m.SetupAlloc, m.Mem().Store)
	n := uint64(b.n)

	// Per-thread histograms for the parallel counting sort.
	hists := swrt.NewArray(m.SetupAlloc, p*256)
	cursors := swrt.NewArray(m.SetupAlloc, p*256)
	sorted := swrt.NewArray(m.SetupAlloc, g.m)
	reserve := swrt.NewArray(m.SetupAlloc, n) // root -> min reserving index
	const noRes = ^uint64(0)
	for i := uint64(0); i < n; i++ {
		m.Mem().Store(reserve.Addr(i), noRes)
	}
	// Round state: [prefix, activeCount, fetchIdx, doneCount].
	ctl := m.SetupAlloc(64)
	active := swrt.NewArray(m.SetupAlloc, g.m)  // edge indices this round
	pending := swrt.NewArray(m.SetupAlloc, g.m) // retries for next round
	bar := swrt.NewBarrier(m.SetupAlloc, p)

	round := g.m / 8 // edges examined per round (few barrier phases)
	if round < 64*p {
		round = 64 * p
	}
	if round > g.m {
		round = g.m
	}

	st, err := m.Run(func(e guest.ThreadEnv) {
		var sense uint64
		id := uint64(e.ID())
		// --- parallel counting sort ---
		chunk := (g.m + p - 1) / p
		lo, hi := id*chunk, (id+1)*chunk
		if hi > g.m {
			hi = g.m
		}
		for w := uint64(0); w < 256; w++ {
			e.Store(hists.Addr(id*256+w), 0)
		}
		for i := lo; i < hi; i++ {
			w := e.Load(g.ew.Addr(i))
			a := hists.Addr(id*256 + w)
			e.Store(a, e.Load(a)+1)
		}
		bar.Wait(e, &sense)
		if id == 0 {
			// Exclusive prefix over (weight, thread).
			run := uint64(0)
			for w := uint64(0); w < 256; w++ {
				for t := uint64(0); t < p; t++ {
					c := e.Load(hists.Addr(t*256 + w))
					e.Store(cursors.Addr(t*256+w), run)
					run += c
					e.Work(1)
				}
			}
		}
		bar.Wait(e, &sense)
		for i := lo; i < hi; i++ {
			w := e.Load(g.ew.Addr(i))
			a := cursors.Addr(id*256 + w)
			slot := e.Load(a)
			e.Store(a, slot+1)
			e.Store(sorted.Addr(slot), i)
		}
		bar.Wait(e, &sense)

		// --- deterministic reservations over the sorted edges ---
		// The active list holds *sorted positions*: priorities follow
		// weight order, so the result equals sequential Kruskal's.
		for {
			if id == 0 {
				// Build the active list: pending retries + next prefix.
				cnt := e.Load(ctl + 8)
				prefix := e.Load(ctl)
				for cnt < round && prefix < g.m {
					e.Store(active.Addr(cnt), prefix)
					cnt++
					prefix++
				}
				e.Store(ctl, prefix)
				e.Store(ctl+8, cnt)
				e.Store(ctl+16, 0) // fetch index
				e.Store(ctl+24, 0) // pending count
			}
			bar.Wait(e, &sense)
			cnt := e.Load(ctl + 8)
			if cnt == 0 {
				return
			}
			// Reserve phase: lower sorted position wins each root.
			for {
				s := e.FetchAdd(ctl+16, 4)
				if s >= cnt {
					break
				}
				top := s + 4
				if top > cnt {
					top = cnt
				}
				for ; s < top; s++ {
					pos := e.Load(active.Addr(s))
					i := e.Load(sorted.Addr(pos))
					u := e.Load(g.eu.Addr(i))
					v := e.Load(g.ev.Addr(i))
					ru := g.uf.Find(e, u)
					rv := g.uf.Find(e, v)
					e.Work(2)
					if ru == rv {
						continue
					}
					for _, r := range [2]uint64{ru, rv} {
						for {
							cur := e.Load(reserve.Addr(r))
							e.Work(1)
							if pos >= cur {
								break
							}
							if e.CAS(reserve.Addr(r), cur, pos) {
								break
							}
						}
					}
				}
			}
			bar.Wait(e, &sense)
			if id == 0 {
				e.Store(ctl+16, 0)
			}
			bar.Wait(e, &sense)
			// Commit phase: winners of both roots union; losers retry.
			for {
				s := e.FetchAdd(ctl+16, 4)
				if s >= cnt {
					break
				}
				top := s + 4
				if top > cnt {
					top = cnt
				}
				for ; s < top; s++ {
					pos := e.Load(active.Addr(s))
					i := e.Load(sorted.Addr(pos))
					u := e.Load(g.eu.Addr(i))
					v := e.Load(g.ev.Addr(i))
					ru := g.uf.Find(e, u)
					rv := g.uf.Find(e, v)
					e.Work(2)
					if ru == rv {
						continue // became redundant
					}
					if e.Load(reserve.Addr(ru)) == pos && e.Load(reserve.Addr(rv)) == pos {
						g.uf.Union(e, u, v)
						e.Store(g.inMSF.Addr(i), 1)
					} else {
						slot := e.FetchAdd(ctl+24, 1)
						e.Store(pending.Addr(slot), pos)
					}
				}
			}
			bar.Wait(e, &sense)
			if id == 0 {
				e.Store(ctl+16, 0)
			}
			bar.Wait(e, &sense)
			// Reset the reservations touched this round (parallel).
			for {
				s := e.FetchAdd(ctl+16, 8)
				if s >= cnt {
					break
				}
				top := s + 8
				if top > cnt {
					top = cnt
				}
				for ; s < top; s++ {
					pos := e.Load(active.Addr(s))
					i := e.Load(sorted.Addr(pos))
					u := e.Load(g.eu.Addr(i))
					v := e.Load(g.ev.Addr(i))
					e.Store(reserve.Addr(g.uf.Find(e, u)), noRes)
					e.Store(reserve.Addr(g.uf.Find(e, v)), noRes)
				}
			}
			bar.Wait(e, &sense)
			// Rebuild the pending retries into the active list.
			if id == 0 {
				pcnt := e.Load(ctl + 24)
				for s := uint64(0); s < pcnt; s++ {
					e.Store(active.Addr(s), e.Load(pending.Addr(s)))
				}
				e.Store(ctl+8, pcnt)
				e.Store(ctl+16, 0)
				e.Store(ctl+24, 0)
			}
			bar.Wait(e, &sense)
		}
	})
	if err != nil {
		return 0, err
	}
	return st.Cycles, b.verify(m.Mem().Load, g)
}
