package bench

import (
	"sort"
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
)

// TestForkJoinScales: both apps construct at every registered scale under
// their registry names (the per-scale input parameters are part of the
// registration, so a broken switch arm would otherwise only surface in a
// -scale sweep).
func TestForkJoinScales(t *testing.T) {
	for _, name := range []string{"msort", "treebuild"} {
		for _, s := range []Scale{ScaleTiny, ScaleSmall, ScaleMedium, ScaleLarge} {
			b, err := New(name, s)
			if err != nil {
				t.Fatalf("%s @ %s: %v", name, s, err)
			}
			if b.Name() != name {
				t.Fatalf("%s @ %s: Name() = %q", name, s, b.Name())
			}
		}
	}
}

// TestForkJoinSerialApp: the oracle-facing SerialApp flavor runs the same
// serial bodies the RunSerial entry points use; drive both through a
// fresh serial machine and verify against the host references.
func TestForkJoinSerialApp(t *testing.T) {
	ms := NewMSort(64, 8)
	m := smp.NewSerialMachine(smp.DefaultConfig(1))
	body := ms.SerialApp().Build(m.SetupAlloc, m.Mem().Store)
	if cyc := m.Run(func(e guest.Env) { body(e, func() {}) }); cyc == 0 {
		t.Fatal("msort SerialApp: no cycles")
	}

	tb := NewTreeBuild(64, 2)
	m = smp.NewSerialMachine(smp.DefaultConfig(1))
	body = tb.SerialApp().Build(m.SetupAlloc, m.Mem().Store)
	if cyc := m.Run(func(e guest.Env) { body(e, func() {}) }); cyc == 0 {
		t.Fatal("treebuild SerialApp: no cycles")
	}
}

// TestForkJoinVerifyRejects: the verifiers actually fail on wrong guest
// memory (a verifier that never fires proves nothing about the runs that
// pass it).
func TestForkJoinVerifyRejects(t *testing.T) {
	ms := NewMSort(64, 8)
	if err := ms.verify(func(uint64) uint64 { return ^uint64(0) }, 0); err == nil ||
		!strings.Contains(err.Error(), "msort: arr[0]") {
		t.Fatalf("msort verify accepted garbage: %v", err)
	}
	tb := NewTreeBuild(64, 2)
	if err := tb.verify(func(uint64) uint64 { return ^uint64(0) }, 0, 8, 16); err == nil ||
		!strings.Contains(err.Error(), "treebuild: root[0]") {
		t.Fatalf("treebuild verify accepted garbage: %v", err)
	}
}

// ---------------------------------------------------------------- msort --

func TestMSortSerial(t *testing.T) {
	b := NewMSort(64, 8)
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
}

func TestMSortSwarm(t *testing.T) {
	b := NewMSort(64, 8)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

// TestMSortReference: the host reference is a sorted permutation of the
// input (same multiset, nondecreasing), with genuine duplicates so the
// guest merge cannot silently assume distinct keys.
func TestMSortReference(t *testing.T) {
	b := NewMSort(128, 8)
	if !sort.SliceIsSorted(b.ref, func(i, j int) bool { return b.ref[i] < b.ref[j] }) {
		t.Fatal("reference not sorted")
	}
	count := map[uint64]int{}
	for _, v := range b.vals {
		count[v]++
	}
	dup := false
	for _, v := range b.ref {
		count[v]--
		if count[v] > 0 {
			dup = true
		}
	}
	for v, c := range count {
		if c != 0 {
			t.Fatalf("reference is not a permutation of the input: value %d off by %d", v, c)
		}
	}
	if !dup {
		t.Fatal("input has no duplicate keys; the merge's stability assumptions go untested")
	}
}

// TestMSortNoParallel: msort's whole point is nested in-slot ordering; a
// software-threaded flavor would just be sort.Slice.
func TestMSortNoParallel(t *testing.T) {
	b := NewMSort(64, 8)
	if b.HasParallel() {
		t.Fatal("msort should not declare a software-parallel version")
	}
	if _, err := b.RunParallel(4); err == nil {
		t.Fatal("RunParallel should fail")
	}
}

// ------------------------------------------------------------ treebuild --

func TestTreeBuildSerial(t *testing.T) {
	b := NewTreeBuild(64, 2)
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
}

func TestTreeBuildSwarm(t *testing.T) {
	b := NewTreeBuild(64, 2)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

// TestTreeBuildReferenceIsSearchTree: every reference tree satisfies the
// BST invariant (left subtree keys < node key, right subtree keys >= node
// key, ties walking right) and contains each of its range's keys exactly
// once.
func TestTreeBuildReferenceIsSearchTree(t *testing.T) {
	b := NewTreeBuild(128, 4)
	per := len(b.keys) / 4
	for tr := 0; tr < 4; tr++ {
		seen := make(map[uint64]bool)
		var walk func(node uint64, lo, hi uint64, haveLo, haveHi bool)
		walk = func(node uint64, lo, hi uint64, haveLo, haveHi bool) {
			if node == 0 {
				return
			}
			id := node - 1 // stored as index+1; 0 is nil
			if seen[id] {
				t.Fatalf("tree %d: node %d linked twice", tr, id)
			}
			seen[id] = true
			k := b.keys[id]
			if haveLo && k < lo {
				t.Fatalf("tree %d: key %d below subtree bound %d", tr, k, lo)
			}
			if haveHi && k >= hi {
				t.Fatalf("tree %d: key %d at or above subtree bound %d", tr, k, hi)
			}
			walk(b.refL[id], lo, k, haveLo, true)
			walk(b.refR[id], k, hi, true, haveHi)
		}
		walk(b.refRoot[tr], 0, 0, false, false)
		if len(seen) != per {
			t.Fatalf("tree %d links %d nodes, want %d", tr, len(seen), per)
		}
		for i := tr * per; i < (tr+1)*per; i++ {
			if !seen[uint64(i)] {
				t.Fatalf("tree %d: key index %d never linked", tr, i)
			}
		}
	}
}

func TestTreeBuildNoParallel(t *testing.T) {
	b := NewTreeBuild(64, 2)
	if b.HasParallel() {
		t.Fatal("treebuild should not declare a software-parallel version")
	}
	if _, err := b.RunParallel(4); err == nil {
		t.Fatal("RunParallel should fail")
	}
}
