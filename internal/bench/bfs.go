package bench

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/graph"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/smp"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// BFS finds the breadth-first tree of an unstructured mesh (the paper's
// hugetric input). The mesh is deep (thousands of levels at scale), so the
// level-synchronous software-parallel version starves while Swarm
// speculates across levels (§6.2).
type BFS struct {
	g   *graph.Graph
	src int
	ref []uint64
}

func init() {
	Register(AppMeta{
		Name:        "bfs",
		Order:       0,
		Summary:     "breadth-first search of a deep unstructured mesh",
		HasParallel: true,
	}, func(s Scale) Benchmark {
		switch s {
		case ScaleTiny:
			return NewBFS(40, 10)
		case ScaleSmall:
			return NewBFS(100, 12)
		case ScaleLarge:
			return NewBFSGraph(graph.MustLoad("trimesh-1600x24", func() *graph.Graph {
				return graph.TriMesh(1600, 24)
			}))
		default:
			return NewBFS(400, 18)
		}
	})
}

// NewBFS builds the benchmark on a rows x cols triangulated mesh.
func NewBFS(rows, cols int) *BFS {
	return NewBFSGraph(graph.TriMesh(rows, cols))
}

// NewBFSGraph builds the benchmark on an arbitrary graph (weights, if
// any, are ignored).
func NewBFSGraph(g *graph.Graph) *BFS {
	return &BFS{g: g, src: 0, ref: graph.BFSLevels(g, 0)}
}

// Name implements Benchmark.
func (b *BFS) Name() string { return "bfs" }

func (b *BFS) verify(load func(uint64) uint64, gc graph.GuestCSR) error {
	for u := 0; u < b.g.N; u++ {
		got := load(gc.DistAddr(uint64(u)))
		want := b.ref[u]
		if want == graph.Inf {
			want = graph.Unvisited
		}
		if got != want {
			return fmt.Errorf("bfs: dist[%d] = %d, want %d", u, got, want)
		}
	}
	return nil
}

// SwarmApp implements Benchmark: task = visit(node), timestamp = level.
// Matches Table 1's profile: ~22 instructions, ~4 words read, <1 written.
func (b *BFS) SwarmApp() SwarmApp {
	var gc graph.GuestCSR
	app := SwarmApp{}
	app.Build = func(ab *guest.AppBuild) []guest.TaskDesc {
		gc = graph.Pack(b.g, ab.Alloc, ab.Store)
		var visit guest.FnID
		visit = ab.Fn("visit", func(e guest.TaskEnv) {
			node := e.Arg(0)
			e.Work(2)
			if e.Load(gc.DistAddr(node)) != graph.Unvisited {
				return // visited path: a shorter level got here first
			}
			e.Store(gc.DistAddr(node), e.Timestamp())
			lo := e.Load(gc.OffAddr(node))
			hi := e.Load(gc.OffAddr(node + 1))
			e.Work(10) // visit bookkeeping (calibrated to Table 1: ~22 instrs)
			for i := lo; i < hi; i++ {
				child := e.Load(gc.DstAddr(i))
				e.Work(1)
				// Spatial hint: the destination vertex — every visit of one
				// vertex shares a home tile under hint-based mappers.
				e.EnqueueHinted(visit, e.Timestamp()+1, child, [3]uint64{child})
			}
		})
		return []guest.TaskDesc{guest.TaskDesc{Fn: visit, TS: 0, Args: [3]uint64{uint64(b.src)}}.WithHint(uint64(b.src))}
	}
	app.Verify = func(load func(uint64) uint64) error { return b.verify(load, gc) }
	return app
}

// RunSwarm implements Benchmark.
func (b *BFS) RunSwarm(cfg core.Config) (core.Stats, error) {
	return runSwarm(b.SwarmApp(), cfg)
}

// RunSerial implements Benchmark: the tuned serial bfs needs no priority
// queue — an efficient FIFO holds the frontier (§6.2).
func (b *BFS) RunSerial(nCores int) (uint64, error) {
	m := smp.NewSerialMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	q := swrt.NewFIFO(m.SetupAlloc, uint64(b.g.N)+1)
	cycles := m.Run(func(e guest.Env) {
		b.serialBody(e, gc, q, func() {})
	})
	return cycles, b.verify(m.Mem().Load, gc)
}

// serialBody is the serial algorithm; iterMark flags iteration boundaries
// for the oracle's TLS analysis.
func (b *BFS) serialBody(e guest.Env, gc graph.GuestCSR, q swrt.FIFO, iterMark func()) {
	e.Store(gc.DistAddr(uint64(b.src)), 0)
	q.Push(e, uint64(b.src))
	for {
		iterMark()
		u, ok := q.Pop(e)
		if !ok {
			return
		}
		du := e.Load(gc.DistAddr(u))
		lo := e.Load(gc.OffAddr(u))
		hi := e.Load(gc.OffAddr(u + 1))
		e.Work(2)
		for i := lo; i < hi; i++ {
			v := e.Load(gc.DstAddr(i))
			e.Work(1)
			if e.Load(gc.DistAddr(v)) == graph.Unvisited {
				e.Store(gc.DistAddr(v), du+1)
				q.Push(e, v)
			}
		}
	}
}

// SerialApp implements Benchmark.
func (b *BFS) SerialApp() SerialApp {
	return SerialApp{Build: func(alloc func(uint64) uint64, store func(addr, val uint64)) func(guest.Env, func()) {
		gc := graph.Pack(b.g, alloc, store)
		q := swrt.NewFIFO(alloc, uint64(b.g.N)+1)
		return func(e guest.Env, mark func()) { b.serialBody(e, gc, q, mark) }
	}}
}

// HasParallel implements Benchmark.
func (b *BFS) HasParallel() bool { return true }

// RunParallel implements Benchmark: a PBFS-style level-synchronous
// parallel BFS — threads share the current frontier, build the next one
// with atomic appends, and barrier between levels. It only exposes
// one level of parallelism at a time (§6.2).
func (b *BFS) RunParallel(nCores int) (uint64, error) {
	m := smp.NewMachine(smp.DefaultConfig(nCores))
	gc := graph.Pack(b.g, m.SetupAlloc, m.Mem().Store)
	n := uint64(b.g.N)
	frontA := swrt.NewArray(m.SetupAlloc, n)
	frontB := swrt.NewArray(m.SetupAlloc, n)
	// Shared control block: [curBase, curCount, nextBase, nextCount,
	// fetchIdx, level].
	ctl := m.SetupAlloc(64)
	bar := swrt.NewBarrier(m.SetupAlloc, uint64(nCores))
	// Seed the first frontier.
	m.Mem().Store(ctl, frontA.Base)
	m.Mem().Store(ctl+8, 1)
	m.Mem().Store(ctl+16, frontB.Base)
	m.Mem().Store(frontA.Base, uint64(b.src))
	m.Mem().Store(gc.DistAddr(uint64(b.src)), 0)

	const chunk = 16
	st, err := m.Run(func(e guest.ThreadEnv) {
		var sense uint64
		for {
			curBase := e.Load(ctl)
			curCount := e.Load(ctl + 8)
			nextBase := e.Load(ctl + 16)
			level := e.Load(ctl + 40)
			if curCount == 0 {
				return
			}
			// Chunked grab over the frontier.
			for {
				start := e.FetchAdd(ctl+32, chunk)
				if start >= curCount {
					break
				}
				end := start + chunk
				if end > curCount {
					end = curCount
				}
				for fi := start; fi < end; fi++ {
					u := e.Load(curBase + fi*8)
					lo := e.Load(gc.OffAddr(u))
					hi := e.Load(gc.OffAddr(u + 1))
					e.Work(2)
					for i := lo; i < hi; i++ {
						v := e.Load(gc.DstAddr(i))
						e.Work(1)
						if e.Load(gc.DistAddr(v)) == graph.Unvisited {
							if e.CAS(gc.DistAddr(v), graph.Unvisited, level+1) {
								slot := e.FetchAdd(ctl+24, 1)
								e.Store(nextBase+slot*8, v)
							}
						}
					}
				}
			}
			bar.Wait(e, &sense)
			if e.ID() == 0 {
				// Swap frontiers for the next level.
				nc := e.Load(ctl + 24)
				e.Store(ctl, nextBase)
				e.Store(ctl+8, nc)
				e.Store(ctl+16, curBase)
				e.Store(ctl+24, 0)
				e.Store(ctl+32, 0)
				e.Store(ctl+40, level+1)
			}
			bar.Wait(e, &sense)
		}
	})
	if err != nil {
		return 0, err
	}
	return st.Cycles, b.verify(m.Mem().Load, gc)
}
