package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/graph"
)

// ---------------------------------------------------------------- kcore --

func TestKCoreSerial(t *testing.T) {
	b := NewKCore(6, 6, 9)
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
}

func TestKCoreParallel(t *testing.T) {
	b := NewKCore(6, 6, 9)
	for _, cores := range []int{1, 4, 8} {
		if _, err := b.RunParallel(cores); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}

func TestKCoreSwarm(t *testing.T) {
	b := NewKCore(6, 6, 9)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

// TestKCoreReferenceMatchesPeeling cross-checks graph.CoreNumbers against
// the k-core defining property on several seeds: in the subgraph induced
// by {v : core(v) >= k}, every vertex has degree >= k, for every k.
func TestKCoreReferenceMatchesPeeling(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		n, edges := graph.Kronecker(6, 6, seed)
		g := graph.FromEdges(n, edges, true)
		cores := graph.CoreNumbers(g)
		for v := 0; v < g.N; v++ {
			k := cores[v]
			if k == 0 {
				continue
			}
			deg := uint64(0)
			lo, hi := g.Neighbors(v)
			for a := lo; a < hi; a++ {
				if cores[g.Dst[a]] >= k {
					deg++
				}
			}
			if deg < k {
				t.Fatalf("seed %d: core[%d]=%d but only %d neighbors with core >= %d", seed, v, k, deg, k)
			}
		}
	}
}

// ---------------------------------------------------------------- color --

func TestColorSerial(t *testing.T) {
	b := NewColor(80, 320, 11)
	if _, err := b.RunSerial(1); err != nil {
		t.Fatal(err)
	}
}

func TestColorParallel(t *testing.T) {
	b := NewColor(80, 320, 11)
	for _, cores := range []int{1, 4, 8} {
		if _, err := b.RunParallel(cores); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}

func TestColorSwarm(t *testing.T) {
	b := NewColor(80, 320, 11)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

// TestColorReferenceIsProper checks the greedy reference is a proper
// coloring (no edge joins two same-colored vertices).
func TestColorReferenceIsProper(t *testing.T) {
	b := NewColor(120, 500, 3)
	for v := 0; v < b.g.N; v++ {
		lo, hi := b.g.Neighbors(v)
		for a := lo; a < hi; a++ {
			if w := int(b.g.Dst[a]); w != v && b.ref[v] == b.ref[w] {
				t.Fatalf("edge (%d, %d) has both endpoints colored %d", v, w, b.ref[v])
			}
		}
	}
}

// --------------------------------------------------------------- stream --

func TestStreamSerial(t *testing.T) {
	b := NewStream(4, 40, 32, 8, 13)
	if _, err := b.RunSerial(1); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSwarm(t *testing.T) {
	b := NewStream(4, 40, 32, 8, 13)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if st.Commits == 0 {
			t.Fatal("no commits")
		}
	}
}

// TestStreamNoParallel: stream declares no software-parallel flavor, like
// astar in the paper.
func TestStreamNoParallel(t *testing.T) {
	b := NewStream(2, 10, 32, 4, 13)
	if b.HasParallel() {
		t.Fatal("stream should not declare a software-parallel version")
	}
	if _, err := b.RunParallel(4); err == nil {
		t.Fatal("RunParallel should fail")
	}
}

// TestStreamWindowTotals: the reference aggregates conserve the input sum
// (every tuple lands in exactly one window/key cell).
func TestStreamWindowTotals(t *testing.T) {
	b := NewStream(3, 50, 16, 4, 99)
	var want, got uint64
	for _, v := range b.val {
		want += v
	}
	for _, v := range b.ref {
		got += v
	}
	if got != want {
		t.Fatalf("reference sums %d, inputs sum %d", got, want)
	}
}

// ------------------------------------------------------------- registry --

// TestRegistryOrder: the paper's six apps come first in Table 4 order,
// followed by the later additions.
func TestRegistryOrder(t *testing.T) {
	names := AppNames()
	want := []string{"bfs", "sssp", "astar", "msf", "des", "silo", "kcore", "color", "stream", "incsssp", "dsssp", "setcover", "msort", "treebuild"}
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered %v, want %v", names, want)
		}
	}
}

// TestRegistryMetadata: HasParallel metadata must agree with the
// constructed Benchmark, and every app must build at tiny scale under the
// name it was registered with.
func TestRegistryMetadata(t *testing.T) {
	for _, meta := range Apps() {
		b, err := New(meta.Name, ScaleTiny)
		if err != nil {
			t.Fatalf("%s: %v", meta.Name, err)
		}
		if b.Name() != meta.Name {
			t.Errorf("%s: Benchmark.Name() = %q", meta.Name, b.Name())
		}
		if b.HasParallel() != meta.HasParallel {
			t.Errorf("%s: HasParallel metadata %v, Benchmark says %v", meta.Name, meta.HasParallel, b.HasParallel())
		}
	}
}

func TestRegistryUnknownApp(t *testing.T) {
	_, err := New("nosuch", ScaleTiny)
	if err == nil {
		t.Fatal("New should fail for an unregistered app")
	}
	// The message lists the registered apps alphabetically (the registry
	// itself stays in suite order); pinned so new registrations keep it.
	want := `bench: unknown app "nosuch" (registered: astar, bfs, color, des, dsssp, incsssp, kcore, msf, msort, setcover, silo, sssp, stream, treebuild)`
	if got := err.Error(); got != want {
		t.Fatalf("error text:\n got: %s\nwant: %s", got, want)
	}
	if _, ok := Lookup("nosuch"); ok {
		t.Fatal("Lookup should miss for an unregistered app")
	}
}

// TestRegistryFigureTags: the figure-membership metadata the harness
// keys on must stay present.
func TestRegistryFigureTags(t *testing.T) {
	for fig, want := range map[string]string{"fig13": "silo", "fig18": "astar"} {
		var found []string
		for _, meta := range Apps() {
			if meta.InFigure(fig) {
				found = append(found, meta.Name)
			}
		}
		if len(found) != 1 || found[0] != want {
			t.Errorf("%s tagged on %v, want exactly [%q]", fig, found, want)
		}
	}
}
