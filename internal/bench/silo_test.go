package bench

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

func TestSiloSerial(t *testing.T) {
	b := NewSilo(2, 120, 5)
	cyc, err := b.RunSerial(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == 0 {
		t.Fatal("no cycles")
	}
}

func TestSiloParallelOCC(t *testing.T) {
	b := NewSilo(2, 120, 5)
	for _, cores := range []int{1, 4, 8} {
		if _, err := b.RunParallel(cores); err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
	}
}

func TestSiloParallelOneWarehouse(t *testing.T) {
	// One warehouse: heavy contention, many OCC aborts — must still be
	// serializable.
	b := NewSilo(1, 100, 9)
	if _, err := b.RunParallel(8); err != nil {
		t.Fatal(err)
	}
}

func TestSiloSwarm(t *testing.T) {
	b := NewSilo(2, 80, 5)
	for _, cores := range []int{1, 4, 16} {
		st, err := b.RunSwarm(core.DefaultConfig(cores))
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		// Each transaction decomposes into several tasks.
		if st.Commits < 3*80 {
			t.Fatalf("only %d commits for 80 transactions", st.Commits)
		}
	}
}

func TestSiloSwarmOneWarehouse(t *testing.T) {
	if testing.Short() {
		t.Skip("contention test")
	}
	// The Fig 13 headline: Swarm scales even with a single warehouse by
	// exploiting intra-transaction parallelism.
	b := NewSilo(1, 150, 7)
	st1, err := b.RunSwarm(core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st16, err := b.RunSwarm(core.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(st1.Cycles) / float64(st16.Cycles)
	t.Logf("silo 1wh swarm 16c speedup %.1fx (aborts=%d commits=%d)", sp, st16.Aborts, st16.Commits)
	if sp < 2.5 {
		t.Errorf("silo 16-core speedup %.2fx < 2.5x with one warehouse", sp)
	}
}
