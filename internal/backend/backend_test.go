package backend

import (
	"reflect"
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
)

// counterBuild is a minimal program: n root tasks at distinct timestamps
// each fold their timestamp into an accumulator (order-sensitive).
func counterBuild(n int) BuildFunc {
	return func(b Backend) ([]guest.TaskDesc, *guest.FnTable) {
		ft := &guest.FnTable{}
		acc := b.SetupAlloc(8)
		b.Mem().Store(acc, 1)
		fn := ft.Fn("fold", func(e guest.TaskEnv) {
			e.Store(acc, e.Load(acc)*3+e.Timestamp())
		})
		var roots []guest.TaskDesc
		for i := 0; i < n; i++ {
			roots = append(roots, guest.TaskDesc{Fn: fn, TS: uint64(i + 1)})
		}
		return roots, ft
	}
}

func config(backend string) core.Config {
	cfg := core.DefaultConfig(4)
	cfg.Backend = backend
	return cfg
}

// TestEveryBackendRuns drives one program through each engine via the
// shared surface and requires identical final guest memory.
func TestEveryBackendRuns(t *testing.T) {
	var want map[uint64]uint64
	for _, name := range append([]string{""}, core.BackendNames()...) {
		b, err := New(config(name), counterBuild(50))
		if err != nil {
			t.Fatalf("backend %q: New: %v", name, err)
		}
		if !b.Quiesced() {
			t.Errorf("backend %q: not quiesced after New", name)
		}
		if got := b.QueuedTasks(); got != 50 {
			t.Errorf("backend %q: QueuedTasks = %d, want 50", name, got)
		}
		ph, err := b.RunPhase()
		if err != nil {
			t.Fatalf("backend %q: RunPhase: %v", name, err)
		}
		if ph.Commits < 50 {
			t.Errorf("backend %q: commits = %d, want >= 50", name, ph.Commits)
		}
		st := b.Snapshot()
		wantName := name
		if wantName == "" {
			wantName = "sim"
		}
		if st.Backend != wantName {
			t.Errorf("backend %q: Stats.Backend = %q", name, st.Backend)
		}
		snap := b.Mem().Snapshot()
		if want == nil {
			want = snap
			continue
		}
		if !reflect.DeepEqual(snap, want) {
			t.Errorf("backend %q: final memory differs from simulator", name)
		}
	}
}

// TestStartIsSingleUse: New returns started backends; both engines must
// reject a second Start.
func TestStartIsSingleUse(t *testing.T) {
	for _, name := range []string{"sim", "rt"} {
		b, err := New(config(name), counterBuild(1))
		if err != nil {
			t.Fatalf("backend %q: New: %v", name, err)
		}
		if err := b.Start(); err == nil {
			t.Errorf("backend %q: second Start succeeded, want error", name)
		}
	}
}

// TestHoistedBuildValidation: a program with no functions or no roots is
// rejected with the same error on every backend.
func TestHoistedBuildValidation(t *testing.T) {
	noFns := func(b Backend) ([]guest.TaskDesc, *guest.FnTable) {
		return []guest.TaskDesc{{TS: 1}}, &guest.FnTable{}
	}
	noRoots := func(b Backend) ([]guest.TaskDesc, *guest.FnTable) {
		ft := &guest.FnTable{}
		ft.Fn("noop", func(guest.TaskEnv) {})
		return nil, ft
	}
	for _, name := range append([]string{""}, core.BackendNames()...) {
		if _, err := New(config(name), noFns); err == nil ||
			err.Error() != "swarm: App.Build registered no task functions (use Builder.Fn)" {
			t.Errorf("backend %q: no-fns err = %v", name, err)
		}
		if _, err := New(config(name), noRoots); err == nil ||
			!strings.Contains(err.Error(), "swarm: App.Build returned no root tasks") {
			t.Errorf("backend %q: no-roots err = %v", name, err)
		}
	}
}

// TestSharedConfigValidation: malformed configurations are rejected with
// the core package's error text regardless of backend, and an unknown
// backend name lists the valid ones.
func TestSharedConfigValidation(t *testing.T) {
	for _, name := range append([]string{""}, core.BackendNames()...) {
		cfg := config(name)
		cfg.Tiles = 0
		_, err := New(cfg, counterBuild(1))
		if err == nil || !strings.Contains(err.Error(), "core: invalid machine size") {
			t.Errorf("backend %q: zero-tiles err = %v", name, err)
		}
	}
	cfg := config("turbo")
	_, err := New(cfg, counterBuild(1))
	if err == nil || !strings.Contains(err.Error(), `unknown backend "turbo"`) ||
		!strings.Contains(err.Error(), "rt, rt-conservative, sim") {
		t.Errorf("unknown backend err = %v, want valid options listed", err)
	}
}

// TestMultiPhaseParity runs a two-phase session on each backend: inject,
// drain, mutate memory at setup cost, inject again — final memory and
// commit counts must agree.
func TestMultiPhaseParity(t *testing.T) {
	type result struct {
		mem     map[uint64]uint64
		commits uint64
	}
	var want *result
	for _, name := range []string{"sim", "rt", "rt-conservative"} {
		var acc uint64
		var fn guest.FnID
		b, err := New(config(name), func(b Backend) ([]guest.TaskDesc, *guest.FnTable) {
			ft := &guest.FnTable{}
			acc = b.SetupAlloc(8)
			fn = ft.Fn("add", func(e guest.TaskEnv) {
				e.Store(acc, e.Load(acc)+e.Arg(0))
			})
			return []guest.TaskDesc{{Fn: fn, TS: 0, Args: [3]uint64{5}}}, ft
		})
		if err != nil {
			t.Fatalf("backend %q: New: %v", name, err)
		}
		if _, err := b.RunPhase(); err != nil {
			t.Fatalf("backend %q: phase 1: %v", name, err)
		}
		b.Mem().Store(acc, b.Mem().Load(acc)*10) // setup-cost edit between phases
		b.EnqueueRootDesc(guest.TaskDesc{Fn: fn, TS: 0, Args: [3]uint64{7}})
		if _, err := b.RunPhase(); err != nil {
			t.Fatalf("backend %q: phase 2: %v", name, err)
		}
		if b.Phase() != 2 {
			t.Errorf("backend %q: Phase = %d, want 2", name, b.Phase())
		}
		if got := b.Mem().Load(acc); got != 57 {
			t.Errorf("backend %q: acc = %d, want 57", name, got)
		}
		got := &result{mem: b.Mem().Snapshot(), commits: b.Snapshot().Commits}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got.mem, want.mem) || got.commits != want.commits {
			t.Errorf("backend %q: session outcome differs from simulator", name)
		}
	}
}
