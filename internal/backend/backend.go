// Package backend is the seam between Swarm's public API and its
// execution engines. A Backend is a started, program-loaded machine
// parked at a quiescent point; everything above this package — the
// swarm.Sim session surface, the benchmark suite, the harness, the
// daemon — drives that surface only, so the cycle-level simulator
// (internal/core) and the native speculative runtime (internal/rt) are
// interchangeable per run via Config.Backend.
package backend

import (
	"errors"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
	"github.com/swarm-sim/swarm/internal/rt"
)

// Backend is one execution engine running one guest program: phased
// execution to quiescence, root injection and setup-cost memory access
// between phases, and cumulative statistics. *core.Machine satisfies it
// natively; rt.Runtime mirrors the surface.
type Backend interface {
	// Mem exposes guest memory at quiescent points (setup, between
	// phases, result extraction).
	Mem() *mem.Memory
	// SetupAlloc and SetupFree are the zero-cost setup-time allocator.
	SetupAlloc(nBytes uint64) uint64
	SetupFree(addr, nBytes uint64)
	// EnqueueRootDesc injects a parentless task for the next phase.
	EnqueueRootDesc(d guest.TaskDesc)
	// QueuedTasks returns the number of injected-but-unrun root tasks.
	QueuedTasks() int
	// Start makes the backend live. New returns started backends, so
	// callers normally never invoke it; both engines reject reuse.
	Start() error
	// Quiesced reports whether the backend is parked between phases.
	Quiesced() bool
	// RunPhase drains all queued tasks and their descendants to the
	// §4.1 termination condition and reports the phase.
	RunPhase() (core.PhaseStats, error)
	// Phase returns the number of completed phases.
	Phase() int
	// Snapshot returns cumulative run statistics.
	Snapshot() core.Stats
}

// BuildFunc lays out guest memory through the backend's setup surface,
// registers the program's task functions, and returns the root tasks.
// It runs exactly once, on a quiescent backend, before any task executes.
type BuildFunc func(b Backend) (roots []guest.TaskDesc, fns *guest.FnTable)

// New constructs, programs and starts the backend cfg.Backend selects
// ("" and "sim" are the simulator), runs build against it, and enqueues
// the returned roots. Programs that register no task functions or return
// no roots are rejected identically on every backend — a silently empty
// run is an error, not a result.
func New(cfg core.Config, build BuildFunc) (Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Backend {
	case "", "sim":
		prog := &core.Program{}
		var roots []guest.TaskDesc
		var ft *guest.FnTable
		prog.Setup = func(m *core.Machine) {
			roots, ft = build(m)
			prog.Fns = ft.Fns()
			prog.FnNames = ft.Names()
			for _, d := range roots {
				m.EnqueueRootDesc(d)
			}
		}
		m, err := core.NewMachine(cfg, prog)
		if err != nil {
			return nil, err
		}
		if err := m.Start(); err != nil {
			return nil, err
		}
		if err := checkProgram(ft, roots); err != nil {
			return nil, err
		}
		return m, nil
	default: // "rt", "rt-conservative": Validate rejected everything else
		r, err := rt.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := r.Start(); err != nil {
			return nil, err
		}
		roots, ft := build(r)
		if err := checkProgram(ft, roots); err != nil {
			return nil, err
		}
		r.SetProgram(ft.Fns(), ft.Names())
		for _, d := range roots {
			r.EnqueueRootDesc(d)
		}
		return r, nil
	}
}

// checkProgram enforces the build contract once, for every engine, with
// the error text the public swarm API has always used.
func checkProgram(ft *guest.FnTable, roots []guest.TaskDesc) error {
	if ft == nil || len(ft.Fns()) == 0 {
		return errors.New("swarm: App.Build registered no task functions (use Builder.Fn)")
	}
	if len(roots) == 0 {
		return errors.New("swarm: App.Build returned no root tasks — the run would be empty; return at least one Task (or check the slice you built)")
	}
	return nil
}
