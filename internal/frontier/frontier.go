// Package frontier provides a bucketed-priority frontier for guest code:
// the PriorityGraph/Julienne abstraction — enqueue-with-priority, a
// configurable bucketing delta, and lazy pruning of stale entries — mapped
// onto Swarm's timestamped tasks. Priority-ordered graph kernels
// (delta-stepping SSSP, k-core-class peeling, rank-ordered coloring)
// become a handler body plus a few frontier calls.
//
// The frontier is pure guest code over the guest.Env op surface (Load,
// Store, Work, EnqueueHinted), so it runs unchanged on every execution
// backend — the cycle-level simulator, the native speculative runtime and
// the conservative runtime — and under any SimWorkers sharding.
//
// # Model
//
// Each key (vertex) owns one 64-byte line of state, sized to the conflict
// -detection granularity so distinct keys never false-share:
//
//	value @ +0   the settled result (Unsettled until the key settles)
//	aux   @ +8   application scratch (degree counter, tentative distance)
//	best  @ +16  the best pending entry's timestamp (lazy pruning)
//
// Push(key, prio) converts a priority to a task timestamp — bucketed down
// to a multiple of Delta, clamped up to the pusher's own timestamp (time
// cannot run backwards) — and enqueues the key's handler there, but only
// if it beats the key's best pending entry: re-pushes that could never
// run first are pruned at the source instead of clogging task queues.
// This is exactly Julienne's lazy bucket update with Swarm's task queues
// as the buckets.
package frontier

import (
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/swrt"
)

// Unsettled marks a key whose value has not settled yet.
const Unsettled = ^uint64(0)

// NeverPushed is the best-pending sentinel for keys with no pending entry.
const NeverPushed = ^uint64(0)

// Frontier is a bucketed-priority frontier over n keys. Allocate with New
// at build time, then register the handler function and assign it to Fn
// before any task pushes.
type Frontier struct {
	// Fn is the handler task every push enqueues: fn(key) at the bucketed
	// priority. The app registers it (controlling function-table order)
	// and stores the id here.
	Fn guest.FnID
	// Delta is the bucket width: priorities are rounded down to a multiple
	// of Delta, so an entire bucket becomes one timestamp and the machine
	// is free to run its keys in parallel (delta-stepping's trade: wider
	// buckets expose more parallelism but admit more wasted relaxations —
	// under speculation they are aborted, not incorrect). Delta <= 1 keeps
	// exact priority order.
	Delta uint64

	base uint64
	n    uint64
}

// New allocates the frontier's per-key state lines (n keys). Keys start
// fully blank; initialize each with Init before the run.
func New(alloc func(uint64) uint64, n, delta uint64) *Frontier {
	return &Frontier{Delta: delta, base: alloc(n * 64), n: n}
}

// ValueAddr returns the guest address of a key's settled value.
func (f *Frontier) ValueAddr(key uint64) uint64 { return f.base + key*64 }

// AuxAddr returns the guest address of a key's application scratch word.
func (f *Frontier) AuxAddr(key uint64) uint64 { return f.base + key*64 + 8 }

// BestAddr returns the guest address of a key's best-pending word.
func (f *Frontier) BestAddr(key uint64) uint64 { return f.base + key*64 + 16 }

// Init writes a key's initial state with the setup-time store (untimed).
// A key that will be seeded at priority p must set best = p, marking the
// root entry pending; unseeded keys use NeverPushed.
func (f *Frontier) Init(store func(addr, val uint64), key, value, aux, best uint64) {
	store(f.ValueAddr(key), value)
	store(f.AuxAddr(key), aux)
	store(f.BestAddr(key), best)
}

// Value loads a key's settled value (Unsettled if not yet settled).
func (f *Frontier) Value(e guest.Env, key uint64) uint64 { return e.Load(f.ValueAddr(key)) }

// Aux loads a key's scratch word.
func (f *Frontier) Aux(e guest.Env, key uint64) uint64 { return e.Load(f.AuxAddr(key)) }

// SetAux stores a key's scratch word.
func (f *Frontier) SetAux(e guest.Env, key, v uint64) { e.Store(f.AuxAddr(key), v) }

// bucket rounds a priority down to its Delta bucket.
func (f *Frontier) bucket(prio uint64) uint64 {
	if f.Delta > 1 {
		return prio - prio%f.Delta
	}
	return prio
}

// Push enqueues key's handler at priority prio, pruned lazily: the entry
// is dropped at the source when an already-pending entry has an equal or
// better timestamp (it would reach the key first anyway and see the same
// or fresher state). The handler receives (key, prio) as args. The push
// timestamp is the prio's bucket, clamped up to the pusher's timestamp.
func (f *Frontier) Push(e guest.TaskEnv, key, prio uint64) {
	ts := f.bucket(prio)
	if now := e.Timestamp(); ts < now {
		ts = now
	}
	if ts < e.Load(f.BestAddr(key)) {
		e.Store(f.BestAddr(key), ts)
		// Spatial hint: the key — its handler entries and state line share
		// a home tile under hint-based mappers. The low bit namespaces key
		// hints from any other hint space the app uses.
		e.EnqueueHinted(f.Fn, ts, key<<1, [3]uint64{key, prio})
	}
}

// PushMin is the relaxation primitive of label-correcting kernels
// (delta-stepping): the value word carries the key's best known priority
// (tentative distance), and PushMin improves it to prio when that is a
// strict improvement, then Pushes the handler at the new priority. The
// handler reads the value word for the true priority — the task timestamp
// is only its bucket — so coarse Deltas cost extra (aborted or pruned)
// entries, never precision.
func (f *Frontier) PushMin(e guest.TaskEnv, key, prio uint64) {
	e.Work(1)
	if prio < e.Load(f.ValueAddr(key)) {
		e.Store(f.ValueAddr(key), prio)
		f.Push(e, key, prio)
	}
}

// Seed enqueues key's handler unconditionally (no best-pending check):
// the root entries of a run, whose Init already recorded best = prio.
// Callers must seed at priorities >= their own timestamp.
func (f *Frontier) Seed(e guest.TaskEnv, key, prio uint64) {
	e.EnqueueHinted(f.Fn, f.bucket(prio), key<<1, [3]uint64{key, prio})
}

// TrySettle claims a key at the handler's timestamp: the first handler
// entry to reach an unsettled key settles it (value = timestamp) and
// returns true; stale entries — the key settled at an earlier priority —
// return false and must retire without touching anything else. This is
// the peel/visit guard of priority-ordered kernels.
func (f *Frontier) TrySettle(e guest.TaskEnv) (key uint64, settled bool) {
	key = e.Arg(0)
	e.Work(2)
	if e.Load(f.ValueAddr(key)) != Unsettled {
		return key, false
	}
	e.Store(f.ValueAddr(key), e.Timestamp())
	return key, true
}

// ClearPending marks a key as having no pending entry, so the next Push
// at any priority re-enqueues it. Monotone kernels that settle each key
// once (peeling) never need this; kernels that keep improving a key
// (delta-stepping relaxations) call it at handler entry — the handler is
// consuming the best pending entry, so later improvements must be free to
// push again.
func (f *Frontier) ClearPending(e guest.TaskEnv, key uint64) {
	e.Store(f.BestAddr(key), NeverPushed)
}

// ---------------------------------------------------------------------------
// Spawners: seeding a frontier with one entry per key.
// ---------------------------------------------------------------------------

// Fanout is the hardware child limit a spawner tree respects (§4.1).
const Fanout = 8

// SpawnRange is the body of a range-spawner task over [Arg(0), Arg(1)):
// small ranges enqueue leaves directly, larger ones split into up to
// Fanout sub-spawners at the parent's timestamp. spawnFn is the spawner's
// own function id (so spawners re-enqueue themselves); leaf seeds one key.
func SpawnRange(e guest.TaskEnv, spawnFn guest.FnID, leaf func(e guest.TaskEnv, i uint64)) {
	lo, hi := e.Arg(0), e.Arg(1)
	n := hi - lo
	e.Work(4)
	if n <= Fanout {
		for i := lo; i < hi; i++ {
			leaf(e, i)
		}
		return
	}
	chunk := (n + Fanout - 1) / Fanout
	for s := lo; s < hi; s += chunk {
		end := s + chunk
		if end > hi {
			end = hi
		}
		e.EnqueueArgs(spawnFn, e.Timestamp(), [3]uint64{s, end})
	}
}

// StaticOrder seeds a frontier whose priorities are a precomputed
// permutation: entry r of the rank array is the key with priority r
// (rank-ordered kernels like greedy coloring, where the priority is the
// rank itself and every key is seeded exactly once, so no per-key state
// line is needed).
type StaticOrder struct {
	Ord swrt.Array // Ord[r] = key with rank r
	Fn  guest.FnID // handler: fn(key) at timestamp r
}

// SpawnLeaf seeds rank r's key at priority r. The enqueue hint is the key
// itself (handler footprints cluster by key, not rank).
func (so StaticOrder) SpawnLeaf(e guest.TaskEnv, r uint64) {
	v := so.Ord.Get(e, r)
	e.Work(1)
	e.EnqueueHinted(so.Fn, r, v, [3]uint64{v})
}
