package frontier

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/tsdom"
)

// fakeEnv is a minimal in-memory guest.TaskEnv that records enqueues, so
// frontier semantics are testable without a simulated machine. (The
// cross-backend and golden-fingerprint suites cover the frontier under
// the real engines via the ported apps.)
type fakeEnv struct {
	mem   map[uint64]uint64
	ts    uint64
	args  [3]uint64
	work  uint64
	next  uint64
	forks uint64
	enq   []guest.TaskDesc
}

func newFakeEnv() *fakeEnv { return &fakeEnv{mem: map[uint64]uint64{}, next: 0x1000} }

func (f *fakeEnv) Load(a uint64) uint64  { return f.mem[a] }
func (f *fakeEnv) Store(a, v uint64)     { f.mem[a] = v }
func (f *fakeEnv) Work(n uint64)         { f.work += n }
func (f *fakeEnv) Alloc(n uint64) uint64 { a := f.next; f.next += (n + 63) &^ 63; return a }
func (f *fakeEnv) Free(a, n uint64)      {}
func (f *fakeEnv) Timestamp() uint64     { return f.ts }
func (f *fakeEnv) Arg(i int) uint64      { return f.args[i] }
func (f *fakeEnv) Enqueue(fn guest.FnID, ts uint64, args ...uint64) {
	var a [3]uint64
	copy(a[:], args)
	f.EnqueueArgs(fn, ts, a)
}
func (f *fakeEnv) EnqueueArgs(fn guest.FnID, ts uint64, args [3]uint64) {
	f.enq = append(f.enq, guest.TaskDesc{Fn: fn, TS: ts, Args: args})
}
func (f *fakeEnv) EnqueueHinted(fn guest.FnID, ts uint64, hint uint64, args [3]uint64) {
	f.enq = append(f.enq, guest.TaskDesc{Fn: fn, TS: ts, Args: args}.WithHint(hint))
}
func (f *fakeEnv) Fork(fn guest.FnID, args ...uint64) {
	var a [3]uint64
	copy(a[:], args)
	f.EnqueueSub(fn, guest.NoHint, a)
}
func (f *fakeEnv) EnqueueSub(fn guest.FnID, _ uint64, args [3]uint64) {
	f.enq = append(f.enq, guest.TaskDesc{Fn: fn, TS: f.ts, Path: tsdom.FromLevels(f.forks), Args: args})
	f.forks++
}

func TestStateLineLayout(t *testing.T) {
	e := newFakeEnv()
	f := New(e.Alloc, 4, 1)
	for key := uint64(0); key < 4; key++ {
		if f.ValueAddr(key)%64 != 0 {
			t.Errorf("key %d value not line-aligned: %#x", key, f.ValueAddr(key))
		}
		if f.AuxAddr(key) != f.ValueAddr(key)+8 || f.BestAddr(key) != f.ValueAddr(key)+16 {
			t.Errorf("key %d words not packed on one line", key)
		}
	}
	if f.ValueAddr(1)-f.ValueAddr(0) != 64 {
		t.Error("keys must occupy distinct 64-byte lines")
	}
}

func TestInitAndAccessors(t *testing.T) {
	e := newFakeEnv()
	f := New(e.Alloc, 2, 1)
	f.Init(e.Store, 1, Unsettled, 7, 7)
	if f.Value(e, 1) != Unsettled || f.Aux(e, 1) != 7 || e.Load(f.BestAddr(1)) != 7 {
		t.Fatal("Init did not write value/aux/best")
	}
	f.SetAux(e, 1, 6)
	if f.Aux(e, 1) != 6 {
		t.Fatal("SetAux lost the write")
	}
}

func TestPushPruningAndClamp(t *testing.T) {
	e := newFakeEnv()
	f := New(e.Alloc, 2, 1)
	f.Init(e.Store, 0, Unsettled, 0, NeverPushed)
	f.Fn = 3

	// First push: enqueues and records best.
	f.Push(e, 0, 9)
	if len(e.enq) != 1 {
		t.Fatalf("first push should enqueue, got %d", len(e.enq))
	}
	d := e.enq[0]
	if d.Fn != 3 || d.TS != 9 || d.Args[0] != 0 || d.Args[1] != 9 {
		t.Fatalf("push descriptor wrong: %+v", d)
	}
	if key, ok := d.HintKey(); !ok || key != 0<<1 {
		t.Fatalf("push hint wrong: %+v", d)
	}

	// Worse or equal priority: pruned.
	f.Push(e, 0, 12)
	f.Push(e, 0, 9)
	if len(e.enq) != 1 {
		t.Fatal("stale pushes must be pruned against best-pending")
	}

	// Better priority: re-enqueues and tightens best.
	f.Push(e, 0, 5)
	if len(e.enq) != 2 || e.enq[1].TS != 5 {
		t.Fatalf("improving push should enqueue at 5: %+v", e.enq)
	}

	// Priorities below the pusher's own timestamp clamp up to it.
	e.ts = 4
	f.Push(e, 0, 2)
	if len(e.enq) != 3 || e.enq[2].TS != 4 {
		t.Fatalf("push below now must clamp to now: %+v", e.enq)
	}

	// ClearPending reopens the key at any priority.
	f.ClearPending(e, 0)
	e.ts = 0
	f.Push(e, 0, 100)
	if len(e.enq) != 4 || e.enq[3].TS != 100 {
		t.Fatal("push after ClearPending must enqueue")
	}
}

func TestPushMin(t *testing.T) {
	e := newFakeEnv()
	f := New(e.Alloc, 1, 1)
	f.Init(e.Store, 0, Unsettled, 0, NeverPushed)
	f.Fn = 3

	// Improvement: value tightens and the handler is pushed.
	f.PushMin(e, 0, 9)
	if f.Value(e, 0) != 9 || len(e.enq) != 1 || e.enq[0].TS != 9 {
		t.Fatalf("improving PushMin must store 9 and enqueue: value=%d enq=%+v", f.Value(e, 0), e.enq)
	}
	// Non-improvement: neither the value nor the queue moves.
	f.PushMin(e, 0, 9)
	f.PushMin(e, 0, 20)
	if f.Value(e, 0) != 9 || len(e.enq) != 1 {
		t.Fatal("non-improving PushMin must be a no-op")
	}
	// A further improvement re-pushes even though an entry is pending.
	f.PushMin(e, 0, 4)
	if f.Value(e, 0) != 4 || len(e.enq) != 2 || e.enq[1].TS != 4 {
		t.Fatalf("better PushMin must re-push: value=%d enq=%+v", f.Value(e, 0), e.enq)
	}
}

func TestDeltaBucketing(t *testing.T) {
	e := newFakeEnv()
	f := New(e.Alloc, 1, 64)
	f.Init(e.Store, 0, Unsettled, 0, NeverPushed)
	f.Push(e, 0, 130)
	if len(e.enq) != 1 || e.enq[0].TS != 128 {
		t.Fatalf("prio 130 at delta 64 should land in bucket 128: %+v", e.enq)
	}
	// Same bucket: pruned even though the raw priority differs.
	f.Push(e, 0, 190)
	if len(e.enq) != 1 {
		t.Fatal("same-bucket push must be pruned")
	}
	f.Seed(e, 0, 65)
	if len(e.enq) != 2 || e.enq[1].TS != 64 {
		t.Fatalf("seed must bucket too: %+v", e.enq)
	}
}

func TestTrySettle(t *testing.T) {
	e := newFakeEnv()
	f := New(e.Alloc, 1, 1)
	f.Init(e.Store, 0, Unsettled, 0, 0)
	e.ts, e.args = 6, [3]uint64{0}
	if key, ok := f.TrySettle(e); !ok || key != 0 {
		t.Fatal("first entry must settle")
	}
	if f.Value(e, 0) != 6 {
		t.Fatalf("settled value = %d, want the settling timestamp 6", f.Value(e, 0))
	}
	e.ts = 9
	if _, ok := f.TrySettle(e); ok {
		t.Fatal("stale entry must not settle again")
	}
	if f.Value(e, 0) != 6 {
		t.Fatal("stale entry must not overwrite the settled value")
	}
}

func TestSpawnRange(t *testing.T) {
	e := newFakeEnv()
	var leaves []uint64
	leaf := func(_ guest.TaskEnv, i uint64) { leaves = append(leaves, i) }

	// Small range: leaves enqueue directly.
	e.args = [3]uint64{3, 7}
	SpawnRange(e, 9, leaf)
	if len(leaves) != 4 || leaves[0] != 3 || leaves[3] != 6 {
		t.Fatalf("leaves = %v, want [3 4 5 6]", leaves)
	}
	if len(e.enq) != 0 {
		t.Fatal("small range should not spawn sub-spawners")
	}

	// Large range: splits into <= Fanout sub-spawners covering [lo, hi).
	e2 := newFakeEnv()
	e2.ts, e2.args = 5, [3]uint64{0, 100}
	SpawnRange(e2, 9, leaf)
	if len(e2.enq) == 0 || len(e2.enq) > Fanout {
		t.Fatalf("split into %d sub-spawners, want 1..%d", len(e2.enq), Fanout)
	}
	next := uint64(0)
	for _, d := range e2.enq {
		if d.Fn != 9 || d.TS != 5 {
			t.Fatalf("sub-spawner descriptor wrong: %+v", d)
		}
		if d.Args[0] != next {
			t.Fatalf("coverage gap: sub-range starts at %d, want %d", d.Args[0], next)
		}
		next = d.Args[1]
	}
	if next != 100 {
		t.Fatalf("sub-ranges end at %d, want 100", next)
	}
}

func TestStaticOrderSpawnLeaf(t *testing.T) {
	e := newFakeEnv()
	ordBase := e.Alloc(8 * 8)
	e.Store(ordBase+2*8, 42) // rank 2 -> key 42
	so := StaticOrder{Fn: 4}
	so.Ord.Base = ordBase
	so.SpawnLeaf(e, 2)
	if len(e.enq) != 1 {
		t.Fatal("leaf must enqueue the handler")
	}
	d := e.enq[0]
	key, ok := d.HintKey()
	if d.Fn != 4 || d.TS != 2 || d.Args[0] != 42 || !ok || key != 42 {
		t.Fatalf("static-order descriptor wrong: %+v", d)
	}
}
