package bloom

import (
	"encoding/binary"
	"testing"
)

// FuzzFilter fuzzes the signature invariants conflict detection is built
// on (§4.3): no inserted address may ever be reported absent, signature
// union must over-approximate exact set union, and signature intersection
// must over-approximate exact read/write-set overlap — a false negative
// in any of them would let a true conflict commit undetected. The fuzzer
// drives every configuration (three Bloom geometries plus Precise) from
// one raw input split into two line sets.
func FuzzFilter(f *testing.F) {
	f.Add([]byte{0}, []byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{9, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0, 1}, []byte{0xff})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		linesA := decodeLines(rawA)
		linesB := decodeLines(rawB)
		for _, cfg := range configs() {
			fa, fb := NewFilter(cfg), NewFilter(cfg)
			for _, l := range linesA {
				fa.Insert(l)
			}
			for _, l := range linesB {
				fb.Insert(l)
			}
			// No false negatives on membership.
			for _, l := range linesA {
				if !fa.MayContain(l) {
					t.Fatalf("%v: inserted line %#x reported absent", cfg, l)
				}
			}
			// Union over-approximates exact set union.
			u := NewFilter(cfg)
			u.Union(fa)
			u.Union(fb)
			for _, l := range append(append([]uint64(nil), linesA...), linesB...) {
				if !u.MayContain(l) {
					t.Fatalf("%v: union lost line %#x", cfg, l)
				}
			}
			// Intersection over-approximates exact overlap: exact overlap
			// must imply a reported (possible) intersection.
			exact := exactOverlap(linesA, linesB)
			if exact && !fa.Intersects(fb) {
				t.Fatalf("%v: overlapping sets reported disjoint", cfg)
			}
			if cfg.Precise && fa.Intersects(fb) != exact {
				t.Fatalf("precise: Intersects = %v, exact overlap = %v", !exact, exact)
			}
			if !fa.Empty() && !fa.Intersects(fa) {
				t.Fatalf("%v: non-empty signature disjoint from itself", cfg)
			}
		}
	})
}

// decodeLines packs fuzzer bytes into line addresses (8 bytes each, the
// ragged tail zero-padded). A one-byte input already yields one line, so
// the fuzzer reaches interesting set shapes quickly.
func decodeLines(raw []byte) []uint64 {
	var lines []uint64
	for i := 0; i < len(raw); i += 8 {
		var buf [8]byte
		copy(buf[:], raw[i:])
		lines = append(lines, binary.LittleEndian.Uint64(buf[:]))
	}
	return lines
}

func exactOverlap(a, b []uint64) bool {
	set := make(map[uint64]struct{}, len(a))
	for _, l := range a {
		set[l] = struct{}{}
	}
	for _, l := range b {
		if _, ok := set[l]; ok {
			return true
		}
	}
	return false
}

// TestUnionIntersectsAcrossConfigsPanics: mixing signature geometries is
// a programming error the filter must catch loudly.
func TestUnionIntersectsAcrossConfigsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union across configs should panic")
		}
	}()
	a := NewFilter(Config{Bits: 256, Ways: 4})
	b := NewFilter(Config{Bits: 2048, Ways: 8})
	a.Union(b)
}
