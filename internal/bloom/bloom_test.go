package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func configs() []Config {
	return []Config{
		{Bits: 256, Ways: 4},
		{Bits: 1024, Ways: 4},
		{Bits: 2048, Ways: 8},
		{Precise: true},
	}
}

// Property: no false negatives, for every configuration.
func TestNoFalseNegatives(t *testing.T) {
	for _, cfg := range configs() {
		cfg := cfg
		f := func(lines []uint64) bool {
			flt := NewFilter(cfg)
			for _, l := range lines {
				flt.Insert(l)
			}
			for _, l := range lines {
				if !flt.MayContain(l) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", cfg, err)
		}
	}
}

func TestPreciseHasNoFalsePositives(t *testing.T) {
	flt := NewFilter(Config{Precise: true})
	rng := rand.New(rand.NewSource(1))
	in := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		l := rng.Uint64() % 10000
		flt.Insert(l)
		in[l] = true
	}
	for l := uint64(0); l < 10000; l++ {
		if flt.MayContain(l) != in[l] {
			t.Fatalf("precise filter wrong at line %d", l)
		}
	}
}

func TestFalsePositiveRateOrdering(t *testing.T) {
	// Bigger filters should have (weakly) fewer false positives on the
	// same workload. Use a task-footprint-sized insert set (~50 lines,
	// like des in Table 1).
	rng := rand.New(rand.NewSource(7))
	inserts := make([]uint64, 50)
	for i := range inserts {
		inserts[i] = rng.Uint64()
	}
	probe := make([]uint64, 20000)
	for i := range probe {
		probe[i] = rng.Uint64()
	}
	rate := func(cfg Config) float64 {
		f := NewFilter(cfg)
		for _, l := range inserts {
			f.Insert(l)
		}
		fp := 0
		for _, l := range probe {
			if f.MayContain(l) {
				fp++
			}
		}
		return float64(fp) / float64(len(probe))
	}
	small := rate(Config{Bits: 256, Ways: 4})
	big := rate(Config{Bits: 2048, Ways: 8})
	if big > small {
		t.Errorf("2048b/8w FP rate %.4f > 256b/4w rate %.4f", big, small)
	}
	if small == 0 {
		t.Error("expected some false positives in a 256-bit filter with 50 lines")
	}
	if big > 0.01 {
		t.Errorf("2048b/8w FP rate %.4f too high for 50 lines", big)
	}
}

func TestClear(t *testing.T) {
	for _, cfg := range configs() {
		f := NewFilter(cfg)
		if !f.Empty() {
			t.Fatalf("%v: new filter not empty", cfg)
		}
		f.Insert(12345)
		if f.Empty() || f.Count() != 1 {
			t.Fatalf("%v: count wrong after insert", cfg)
		}
		f.Clear()
		if !f.Empty() {
			t.Fatalf("%v: not empty after clear", cfg)
		}
		if f.MayContain(12345) {
			t.Fatalf("%v: contains after clear", cfg)
		}
	}
}

func TestDeterministicHashing(t *testing.T) {
	a := NewFilter(Default())
	b := NewFilter(Default())
	a.Insert(42)
	b.Insert(42)
	for l := uint64(0); l < 5000; l++ {
		if a.MayContain(l) != b.MayContain(l) {
			t.Fatal("two filters with identical inserts disagree: hashing nondeterministic")
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := []Config{
		{Bits: 0, Ways: 4},
		{Bits: 2048, Ways: 0},
		{Bits: 100, Ways: 4},  // 25 bits/way not a power of two
		{Bits: 2049, Ways: 8}, // not divisible
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewFilter(cfg)
		}()
	}
}

func TestConfigString(t *testing.T) {
	if Default().String() != "2048b/8way" {
		t.Errorf("Default().String() = %q", Default().String())
	}
	if (Config{Precise: true}).String() != "precise" {
		t.Error("precise string wrong")
	}
	if Default().SizeBytes() != 256 {
		t.Errorf("SizeBytes = %d, want 256", Default().SizeBytes())
	}
}
