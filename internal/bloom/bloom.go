// Package bloom implements the K-way Bloom-filter read/write-set signatures
// Swarm uses for conflict detection (§4.3–4.4, Fig 6, Fig 8). The default
// configuration matches Table 3: 2048-bit, 8-way filters with H3 hash
// functions (Carter & Wegman). A Precise mode keeps exact line sets, used as
// the "Precise" series of Fig 17(b).
package bloom

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
)

// Config describes a signature implementation.
type Config struct {
	// Bits is the total filter size in bits across all ways.
	Bits int
	// Ways is the number of independently-hashed partitions.
	Ways int
	// Precise selects exact (unbounded) line sets instead of Bloom
	// filters: no false positives, used as the idealized baseline.
	Precise bool
}

// Default is the paper's 2048-bit 8-way configuration.
func Default() Config { return Config{Bits: 2048, Ways: 8} }

func (c Config) String() string {
	if c.Precise {
		return "precise"
	}
	return fmt.Sprintf("%db/%dway", c.Bits, c.Ways)
}

// SizeBytes returns the storage for one signature (Table 2 arithmetic).
func (c Config) SizeBytes() int {
	if c.Precise {
		return 0
	}
	return c.Bits / 8
}

func (c Config) validate() {
	if c.Precise {
		return
	}
	if c.Ways <= 0 || c.Bits <= 0 || c.Bits%c.Ways != 0 {
		panic(fmt.Sprintf("bloom: invalid config %+v", c))
	}
	if w := c.Bits / c.Ways; w&(w-1) != 0 {
		panic(fmt.Sprintf("bloom: bits/way (%d) must be a power of two", w))
	}
}

// hasher holds the H3 hash family for a config: one random 64-row matrix
// per way. H3 hashes x by XOR-ing the rows selected by the set bits of x.
// Matrices are derived from a fixed seed so simulations are deterministic.
type hasher struct {
	wayBits int // log2(bits per way)
	rows    [][]uint32
}

// hasherCache shares the (immutable, deterministically seeded) hash
// matrices between filters. Machines for independent simulations may be
// built from concurrent host goroutines, so access is mutex-guarded.
var (
	hasherMu    sync.Mutex
	hasherCache = map[[2]int]*hasher{}
)

func getHasher(bitsTotal, ways int) *hasher {
	key := [2]int{bitsTotal, ways}
	hasherMu.Lock()
	defer hasherMu.Unlock()
	if h, ok := hasherCache[key]; ok {
		return h
	}
	perWay := bitsTotal / ways
	h := &hasher{wayBits: bits.TrailingZeros(uint(perWay))}
	rng := rand.New(rand.NewSource(0xb100f))
	h.rows = make([][]uint32, ways)
	mask := uint32(perWay - 1)
	for w := range h.rows {
		h.rows[w] = make([]uint32, 64)
		for i := range h.rows[w] {
			h.rows[w][i] = rng.Uint32() & mask
		}
	}
	hasherCache[key] = h
	return h
}

func (h *hasher) hash(way int, x uint64) uint32 {
	var out uint32
	rows := h.rows[way]
	for x != 0 {
		i := bits.TrailingZeros64(x)
		out ^= rows[i]
		x &= x - 1
	}
	return out
}

// Filter is one read- or write-set signature. Insert records a line
// address; MayContain tests membership with no false negatives.
//
// The ways share one flat word array (way-major): signature probes are the
// simulator's hottest loop, and per-way slices cost a pointer chase per
// way.
type Filter struct {
	cfg         Config
	h           *hasher
	words       []uint64 // ways consecutive windows of wordsPerWay words
	wordsPerWay int
	precise     map[uint64]struct{}
	count       int // inserted lines (diagnostics)
}

// NewFilter creates an empty signature for the config.
func NewFilter(cfg Config) *Filter {
	cfg.validate()
	f := &Filter{cfg: cfg}
	if cfg.Precise {
		f.precise = make(map[uint64]struct{})
		return f
	}
	f.h = getHasher(cfg.Bits, cfg.Ways)
	f.wordsPerWay = (cfg.Bits/cfg.Ways + 63) / 64
	f.words = make([]uint64, cfg.Ways*f.wordsPerWay)
	return f
}

// Insert adds a line address to the set.
func (f *Filter) Insert(line uint64) {
	f.count++
	if f.precise != nil {
		f.precise[line] = struct{}{}
		return
	}
	for w := 0; w < f.cfg.Ways; w++ {
		i := f.h.hash(w, line)
		f.words[w*f.wordsPerWay+int(i>>6)] |= 1 << (i & 63)
	}
}

// MayContain reports whether the line may be in the set. False positives
// are possible (unless Precise); false negatives are not.
func (f *Filter) MayContain(line uint64) bool {
	if f.precise != nil {
		_, ok := f.precise[line]
		return ok
	}
	for w := 0; w < f.cfg.Ways; w++ {
		i := f.h.hash(w, line)
		if f.words[w*f.wordsPerWay+int(i>>6)]&(1<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

// Probe is a precomputed membership query for one line. The H3 hash
// indices depend only on (config, line) — not on filter contents — so one
// Fill answers MayContain against every filter sharing the config. The
// conflict-check hot path probes a dozen signatures per access with the
// same line; precomputing turns each probe into a few bit tests.
//
// The zero value is ready; Fill reuses the Probe's storage.
type Probe struct {
	cfg  Config
	h    *hasher
	line uint64
	pw   []probeWord // precomputed flat word index + bit mask, one per way
	way0 uint32      // bit index within way 0 (see Way0)
}

// Way0 returns the line's bit index within way 0 — the key external
// candidate indexes (per-tile way-0 bitmaps) use to pre-filter signature
// probes: a filter whose way-0 bit for this index is clear cannot contain
// the line. Meaningless for Precise configs.
func (p *Probe) Way0() uint32 { return p.way0 }

// Way0Bits returns the number of way-0 bit indexes (bits per way) for a
// non-Precise config.
func (c Config) Way0Bits() int {
	if c.Precise {
		return 0
	}
	return c.Bits / c.Ways
}

type probeWord struct {
	wi   int32
	mask uint64
}

// Fill prepares the probe to query line under config c.
func (p *Probe) Fill(c Config, line uint64) {
	if p.cfg != c || (p.h == nil && !c.Precise) {
		c.validate()
		p.cfg = c
		p.h = nil
		if !c.Precise {
			p.h = getHasher(c.Bits, c.Ways)
		}
	}
	p.line = line
	if p.h == nil {
		return
	}
	p.pw = p.pw[:0]
	wordsPerWay := (c.Bits/c.Ways + 63) / 64
	for w := 0; w < c.Ways; w++ {
		i := p.h.hash(w, line)
		p.pw = append(p.pw, probeWord{wi: int32(w*wordsPerWay) + int32(i>>6), mask: 1 << (i & 63)})
		if w == 0 {
			p.way0 = i
		}
	}
}

// MayContainProbe is MayContain against a precomputed probe. The filter
// must share the probe's configuration. The common path (Bloom signature,
// matching config) stays under the inlining budget; precise filters and
// config mismatches divert to probeRare.
func (f *Filter) MayContainProbe(p *Probe) bool {
	if f.count == 0 {
		return false // empty signature: no bits set, no members
	}
	if f.precise != nil || f.h != p.h {
		return f.probeRare(p)
	}
	for _, pw := range p.pw {
		if f.words[pw.wi]&pw.mask == 0 {
			return false
		}
	}
	return true
}

func (f *Filter) probeRare(p *Probe) bool {
	if f.precise != nil {
		_, ok := f.precise[p.line]
		return ok
	}
	// The hasher is interned per config, so an identity mismatch means the
	// probe was filled for a different configuration.
	panic(fmt.Sprintf("bloom: probing config %v with probe for %v", f.cfg, p.cfg))
}

// InsertProbe adds the probe's line to the set, reusing the probe's hash
// work (the conflict-check path probes a line and then inserts it into the
// accessor's own signature).
func (f *Filter) InsertProbe(p *Probe) {
	f.count++
	if f.precise != nil {
		f.precise[p.line] = struct{}{}
		return
	}
	if f.h != p.h {
		panic(fmt.Sprintf("bloom: inserting config %v with probe for %v", f.cfg, p.cfg))
	}
	for _, pw := range p.pw {
		f.words[pw.wi] |= pw.mask
	}
}

// Union ORs other's set into f (hardware: a wired-OR over the two
// signatures). Both filters must share a configuration. The union
// over-approximates the exact set union: anything either filter may
// contain, the union may contain — the invariant FuzzFilter checks.
func (f *Filter) Union(other *Filter) {
	if f.cfg != other.cfg {
		panic(fmt.Sprintf("bloom: Union across configs %v and %v", f.cfg, other.cfg))
	}
	f.count += other.count
	if f.precise != nil {
		for l := range other.precise {
			f.precise[l] = struct{}{}
		}
		return
	}
	for i := range f.words {
		f.words[i] |= other.words[i]
	}
}

// Intersects reports whether the two sets may intersect (hardware: a
// wired-AND then a per-way zero check, Fig 6). False positives are
// possible (unless Precise); false negatives are not: if any address was
// inserted into both filters, it set the same bits in both, so every
// way's intersection is non-empty.
func (f *Filter) Intersects(other *Filter) bool {
	if f.cfg != other.cfg {
		panic(fmt.Sprintf("bloom: Intersects across configs %v and %v", f.cfg, other.cfg))
	}
	if f.precise != nil {
		a, b := f.precise, other.precise
		if len(b) < len(a) {
			a, b = b, a
		}
		for l := range a {
			if _, ok := b[l]; ok {
				return true
			}
		}
		return false
	}
	for w := 0; w < f.cfg.Ways; w++ {
		hit := uint64(0)
		for i := w * f.wordsPerWay; i < (w+1)*f.wordsPerWay; i++ {
			hit |= f.words[i] & other.words[i]
		}
		if hit == 0 {
			return false
		}
	}
	return true
}

// Clear empties the signature (a flash-clear in hardware).
func (f *Filter) Clear() {
	f.count = 0
	if f.precise != nil {
		clear(f.precise)
		return
	}
	clear(f.words)
}

// Empty reports whether nothing has been inserted since the last Clear.
func (f *Filter) Empty() bool { return f.count == 0 }

// Count returns the number of Insert calls since the last Clear.
func (f *Filter) Count() int { return f.count }

// Config returns the filter's configuration.
func (f *Filter) Config() Config { return f.cfg }
