package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
)

// TestBackendJobs: a -backend rt job runs end-to-end through the HTTP
// surface — accepted, executed on the native runtime, and served as JSON
// and CSV — and its committed results agree with the simulator's run of
// the same spec.
func TestBackendJobs(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})

	sim := d.submitAndWait(t, JobSpec{App: "bfs", Scale: "tiny", Cores: 4})
	rt := d.submitAndWait(t, JobSpec{App: "bfs", Scale: "tiny", Cores: 4, Backend: "rt"})
	if sim.State != JobDone || rt.State != JobDone {
		t.Fatalf("states: sim %s (%s), rt %s (%s)", sim.State, sim.Error, rt.State, rt.Error)
	}
	if sim.Stats.Backend != "sim" || rt.Stats.Backend != "rt" {
		t.Fatalf("stats backends: sim %q, rt %q", sim.Stats.Backend, rt.Stats.Backend)
	}
	if rt.Stats.Cycles != 0 || rt.Stats.WallNS == 0 {
		t.Fatalf("rt stats: cycles=%d wall_ns=%d, want no cycles and real wall time",
			rt.Stats.Cycles, rt.Stats.WallNS)
	}
	// The committed schedule is backend-independent: the same tasks
	// commit whichever engine ran the guest program. (Enqueue counts are
	// not comparable — the simulator counts NACK'd re-enqueues.)
	if rt.Stats.Commits != sim.Stats.Commits {
		t.Fatalf("committed work diverged: rt %d commits, sim %d", rt.Stats.Commits, sim.Stats.Commits)
	}

	code, body := d.do(t, http.MethodGet, "/jobs/"+rt.ID+"/csv", nil)
	if code != http.StatusOK {
		t.Fatalf("rt csv: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), ",rt,") {
		t.Fatalf("rt csv row does not carry the backend column: %s", body)
	}
}

// TestBackendCacheKey: sim and rt runs of an otherwise identical spec are
// distinct cache entries — the backend participates in the singleflight
// key — while a repeated rt spec dedupes onto the first run.
func TestBackendCacheKey(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	base := JobSpec{App: "sssp", Scale: "tiny", Cores: 4}

	simJob := d.submitAndWait(t, base)
	rtSpec := base
	rtSpec.Backend = "rt"
	rtJob := d.submitAndWait(t, rtSpec)
	if simJob.CacheHit || rtJob.CacheHit {
		t.Fatalf("cross-backend dedupe: sim hit=%v, rt hit=%v — backends must not share entries",
			simJob.CacheHit, rtJob.CacheHit)
	}
	again := d.submitAndWait(t, rtSpec)
	if !again.CacheHit {
		t.Fatal("repeated rt spec missed the cache")
	}
	// An absent backend field and an explicit "sim" normalize to one key.
	explicit := base
	explicit.Backend = "sim"
	if j := d.submitAndWait(t, explicit); !j.CacheHit {
		t.Fatal(`{"backend":"sim"} missed the cache entry of the defaulted spec`)
	}

	vars := d.adminVars(t)
	if vars["jobs_by_backend.sim"] != 2 || vars["jobs_by_backend.rt"] != 2 {
		t.Fatalf("per-backend counters: sim=%d rt=%d, want 2/2",
			vars["jobs_by_backend.sim"], vars["jobs_by_backend.rt"])
	}
	if vars["cache_hits"] != 2 || vars["cache_misses"] != 2 {
		t.Fatalf("cache counters: hits=%d misses=%d, want 2/2", vars["cache_hits"], vars["cache_misses"])
	}
}

// TestBackendValidationAndRegistry: an invalid backend is a 400 naming
// the valid engines, and /apps advertises the backend list next to the
// app registry.
func TestBackendValidationAndRegistry(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})

	code, body := d.do(t, http.MethodPost, "/jobs", `{"app": "bfs", "backend": "turbo"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad backend: status %d: %s", code, body)
	}
	for _, want := range []string{"unknown backend", "turbo", "sim", "rt-conservative"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("error %q does not mention %q", body, want)
		}
	}

	code, body = d.do(t, http.MethodGet, "/apps", nil)
	if code != http.StatusOK {
		t.Fatalf("/apps: status %d", code)
	}
	var doc struct {
		Backends []string `json:"backends"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Backends) != len(core.BackendNames()) {
		t.Fatalf("/apps backends = %v, registry has %v", doc.Backends, core.BackendNames())
	}
}

// TestForkJoinJobs: the nested-timestamp apps run end-to-end through the
// HTTP surface on every backend, commit the same work everywhere, and —
// like the flat apps — keep per-backend cache entries distinct.
func TestForkJoinJobs(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})

	for _, app := range []string{"msort", "treebuild"} {
		base := JobSpec{App: app, Scale: "tiny", Cores: 4}
		sim := d.submitAndWait(t, base)
		if sim.State != JobDone {
			t.Fatalf("%s sim: state %s (%s)", app, sim.State, sim.Error)
		}
		if sim.Stats.Commits == 0 {
			t.Fatalf("%s sim committed nothing", app)
		}
		for _, backend := range []string{"rt", "rt-conservative"} {
			spec := base
			spec.Backend = backend
			job := d.submitAndWait(t, spec)
			if job.State != JobDone {
				t.Fatalf("%s %s: state %s (%s)", app, backend, job.State, job.Error)
			}
			// Fork paths are backend-invariant: the same nested task tree
			// commits whichever engine ran it.
			if job.Stats.Commits != sim.Stats.Commits {
				t.Fatalf("%s committed work diverged: %s %d commits, sim %d",
					app, backend, job.Stats.Commits, sim.Stats.Commits)
			}
			// The backend is part of the cache key even for pathed apps.
			if job.CacheHit {
				t.Fatalf("%s %s dedupe'd onto another backend's entry", app, backend)
			}
		}
		rtSpec := base
		rtSpec.Backend = "rt"
		if again := d.submitAndWait(t, rtSpec); !again.CacheHit {
			t.Fatalf("%s repeated rt spec missed the cache", app)
		}
	}
}

// TestBackendSession: a live phased session on the rt backend steps
// phase by phase against resident runtime state, like a sim session.
func TestBackendSession(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})

	code, body := d.do(t, http.MethodPost, "/sessions",
		JobSpec{App: "incsssp", Scale: "tiny", Cores: 4, Backend: "rt"})
	if code != http.StatusCreated {
		t.Fatalf("open rt session: status %d: %s", code, body)
	}
	var sess sessionJSON
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sess.PhasesTotal; i++ {
		if code, body = d.do(t, http.MethodPost, "/sessions/"+sess.ID+"/step", nil); code != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", i+1, code, body)
		}
	}
	code, body = d.do(t, http.MethodGet, "/sessions/"+sess.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	var done sessionJSON
	if err := json.Unmarshal(body, &done); err != nil {
		t.Fatal(err)
	}
	if done.PhasesDone != done.PhasesTotal || len(done.Phases) != done.PhasesTotal {
		t.Fatalf("session after stepping: %d/%d done, %d phase records",
			done.PhasesDone, done.PhasesTotal, len(done.Phases))
	}
	for _, ph := range done.Phases {
		if ph.Cumulative.Backend != "rt" {
			t.Fatalf("phase %d ran on %q, want rt", ph.Phase, ph.Cumulative.Backend)
		}
	}
}
