package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRunLoad drives the load generator against an in-process daemon:
// every job completes, duplicate specs register as cache hits, and the
// report's accounting is internally consistent. This is the same harness
// cmd/swarmload ships, so CI race-checks it here.
func TestRunLoad(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, QueueDepth: 4})

	// 4 distinct specs cycled over 12 jobs: 4 misses + 8 hits.
	specs := make([]JobSpec, 4)
	for i := range specs {
		specs[i] = JobSpec{App: "bfs", Scale: "tiny", Cores: 4, Seed: int64(i + 1)}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := RunLoad(ctx, LoadConfig{
		BaseURL: d.api.URL,
		Clients: 3,
		Jobs:    12,
		Specs:   specs,
		Poll:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 12 || rep.Failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.CacheHits != 8 {
		t.Fatalf("cache hits = %d, want 8 (4 distinct specs over 12 jobs)", rep.CacheHits)
	}
	if rep.Throughput <= 0 || rep.Wall <= 0 {
		t.Fatalf("no throughput measured: %+v", rep)
	}
	if rep.P50 > rep.P90 || rep.P90 > rep.P99 || rep.P99 > rep.Max {
		t.Fatalf("latency percentiles out of order: %+v", rep)
	}
	out := rep.String()
	if !strings.Contains(out, "jobs 12") || !strings.Contains(out, "p50") {
		t.Fatalf("report rendering: %q", out)
	}

	vars := d.adminVars(t)
	if vars["jobs_completed"] != 12 {
		t.Fatalf("daemon saw %d completions", vars["jobs_completed"])
	}
}

// TestRunLoadValidation: nonsense configs fail fast instead of hanging.
func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("empty config: want an error")
	}
}

// TestRunLoadSubmitError: a load run against a server that rejects the
// spec reports the failure instead of spinning.
func TestRunLoadSubmitError(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := RunLoad(ctx, LoadConfig{
		BaseURL: d.api.URL,
		Clients: 1,
		Jobs:    1,
		Specs:   []JobSpec{{App: "no-such-app"}},
	})
	if err == nil || !strings.Contains(err.Error(), "submit") {
		t.Fatalf("want submit error, got %v", err)
	}
}

// TestRunLoadUnreachable: a dead endpoint errors out promptly.
func TestRunLoadUnreachable(t *testing.T) {
	srv := httptest.NewServer(nil)
	srv.Close() // now guaranteed-refused
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := RunLoad(ctx, LoadConfig{
		BaseURL: srv.URL,
		Clients: 2,
		Jobs:    4,
		Specs:   []JobSpec{{App: "bfs", Scale: "tiny", Cores: 4}},
	})
	if err == nil {
		t.Fatal("unreachable daemon: want an error")
	}
}
