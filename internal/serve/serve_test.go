package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/harness"
)

// testDaemon is an in-process swarmd: the Server plus httptest listeners
// for both surfaces, torn down (with drain) when the test ends.
type testDaemon struct {
	srv   *Server
	api   *httptest.Server
	admin *httptest.Server
}

func newTestDaemon(t *testing.T, cfg Config) *testDaemon {
	t.Helper()
	srv := New(cfg)
	d := &testDaemon{
		srv:   srv,
		api:   httptest.NewServer(srv.Handler()),
		admin: httptest.NewServer(srv.AdminHandler()),
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		d.api.Close()
		d.admin.Close()
	})
	return d
}

// do issues a request against the API listener and returns status + body.
func (d *testDaemon) do(t *testing.T, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		switch b := body.(type) {
		case string:
			rd = strings.NewReader(b)
		default:
			data, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(data)
		}
	}
	req, err := http.NewRequest(method, d.api.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submitAndWait submits a spec and polls until the job leaves the queue,
// returning the final job document.
func (d *testDaemon) submitAndWait(t *testing.T, spec JobSpec) jobJSON {
	t.Helper()
	code, body := d.do(t, http.MethodPost, "/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var j jobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	return d.waitJob(t, j.ID)
}

func (d *testDaemon) waitJob(t *testing.T, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body := d.do(t, http.MethodGet, "/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, code, body)
		}
		var j jobJSON
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		if j.State == JobDone || j.State == JobFailed {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobJSON{}
}

// adminVars fetches and decodes the admin /debug/vars counters. The
// scalar counters come back flat; the per-backend submission counts in
// the nested jobs_by_backend object are flattened to
// "jobs_by_backend.<name>" keys.
func (d *testDaemon) adminVars(t *testing.T) map[string]int64 {
	t.Helper()
	resp, err := http.Get(d.admin.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Swarmd map[string]json.RawMessage `json:"swarmd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	out := make(map[string]int64, len(doc.Swarmd))
	for k, raw := range doc.Swarmd {
		var n int64
		if json.Unmarshal(raw, &n) == nil {
			out[k] = n
			continue
		}
		var nested map[string]int64
		if json.Unmarshal(raw, &nested) == nil {
			for sub, v := range nested {
				out[k+"."+sub] = v
			}
		}
	}
	return out
}

// directCSV computes the reference CSV for a spec by driving the bench
// layer the same way cmd/swarmsim does.
func directCSV(t *testing.T, spec JobSpec) string {
	t.Helper()
	spec = spec.withDefaults()
	b, err := bench.New(spec.App, spec.scale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if spec.Phases {
		phases, err := b.(bench.Phased).RunSwarmPhases(spec.machineConfig())
		if err != nil {
			t.Fatal(err)
		}
		pts := make([]harness.PhasePoint, len(phases))
		for i, ph := range phases {
			pts[i] = harness.PhasePoint{App: spec.App, Cores: spec.Cores, Stats: ph}
		}
		if err := harness.WritePhasesCSV(&buf, pts); err != nil {
			t.Fatal(err)
		}
	} else {
		st, err := b.RunSwarm(spec.machineConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := harness.WriteStatsCSV(&buf, spec.App, st); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestJobLifecycle: submit → queued/running → done, stats populated, and
// the CSV endpoint byte-identical to a direct single-shot run of the same
// configuration — the swarmsim-equivalence contract CI also checks.
func TestJobLifecycle(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	spec := JobSpec{App: "bfs", Scale: "tiny", Cores: 4}

	code, body := d.do(t, http.MethodPost, "/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var j jobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || (j.State != JobQueued && j.State != JobRunning) {
		t.Fatalf("fresh job: %+v", j)
	}

	final := d.waitJob(t, j.ID)
	if final.State != JobDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.Stats == nil || final.Stats.Cycles == 0 || final.Stats.Commits == 0 {
		t.Fatalf("done job has no stats: %+v", final.Stats)
	}

	code, csv := d.do(t, http.MethodGet, "/jobs/"+j.ID+"/csv", nil)
	if code != http.StatusOK {
		t.Fatalf("csv: status %d: %s", code, csv)
	}
	if want := directCSV(t, spec); string(csv) != want {
		t.Fatalf("daemon CSV diverges from direct run:\n got: %q\nwant: %q", csv, want)
	}
}

// TestPhasedJobCSV: a phases:true job returns the per-phase CSV, again
// byte-identical to the bench layer.
func TestPhasedJobCSV(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	spec := JobSpec{App: "incsssp", Scale: "tiny", Cores: 4, Phases: true}
	j := d.submitAndWait(t, spec)
	if j.State != JobDone {
		t.Fatalf("job finished %s: %s", j.State, j.Error)
	}
	if len(j.Phases) == 0 {
		t.Fatal("phased job carries no per-phase stats")
	}
	code, csv := d.do(t, http.MethodGet, "/jobs/"+j.ID+"/csv", nil)
	if code != http.StatusOK {
		t.Fatalf("csv: status %d: %s", code, csv)
	}
	if want := directCSV(t, spec); string(csv) != want {
		t.Fatalf("phased CSV diverges from direct run:\n got: %q\nwant: %q", csv, want)
	}
}

// TestDuplicateSpecCacheHit: the second submission of an identical spec is
// served from the result cache — observed both on the job document and on
// the admin port's expvar counters.
func TestDuplicateSpecCacheHit(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	spec := JobSpec{App: "bfs", Scale: "tiny", Cores: 4}

	first := d.submitAndWait(t, spec)
	if first.State != JobDone || first.CacheHit {
		t.Fatalf("first run: state %s, cache_hit %v", first.State, first.CacheHit)
	}
	second := d.submitAndWait(t, spec)
	if second.State != JobDone || !second.CacheHit {
		t.Fatalf("second run: state %s, cache_hit %v — want a cache hit", second.State, second.CacheHit)
	}
	if first.Stats.Cycles != second.Stats.Cycles || first.Stats.Commits != second.Stats.Commits {
		t.Fatal("cache returned different stats for the same spec")
	}

	vars := d.adminVars(t)
	if vars["cache_hits"] != 1 || vars["cache_misses"] != 1 {
		t.Fatalf("counters: hits=%d misses=%d, want 1/1", vars["cache_hits"], vars["cache_misses"])
	}
	if vars["jobs_submitted"] != 2 || vars["jobs_completed"] != 2 || vars["jobs_failed"] != 0 {
		t.Fatalf("counters: %v", vars)
	}

	// A different seed is a different key: no hit.
	third := d.submitAndWait(t, JobSpec{App: "bfs", Scale: "tiny", Cores: 4, Seed: 7})
	if third.State != JobDone || third.CacheHit {
		t.Fatalf("distinct seed: state %s, cache_hit %v", third.State, third.CacheHit)
	}
}

// TestBadRequests: malformed JSON and invalid specs are 400s, and every
// validation error names the valid options so the client can self-correct.
func TestBadRequests(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	cases := []struct {
		name   string
		body   string
		wantIn string
	}{
		{"malformed json", `{"app": `, "malformed"},
		{"unknown field", `{"app": "bfs", "corse": 8}`, "corse"},
		{"missing app", `{}`, "valid:"},
		{"unknown app", `{"app": "nope"}`, "bfs"},
		{"unknown app lists fork-join apps", `{"app": "qsort"}`, "msort, setcover, silo, sssp, stream, treebuild"},
		{"bad scale", `{"app": "bfs", "scale": "galactic"}`, "tiny"},
		{"bad cores", `{"app": "bfs", "cores": 7}`, "multiple of 4"},
		{"bad mapper", `{"app": "bfs", "mapper": "psychic"}`, "random"},
		{"negative workers", `{"app": "bfs", "simworkers": -2}`, "simworkers"},
		{"phases on single-phase app", `{"app": "bfs", "phases": true}`, "incsssp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := d.do(t, http.MethodPost, "/jobs", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d: %s", code, body)
			}
			if !strings.Contains(string(body), tc.wantIn) {
				t.Fatalf("error %q does not mention %q", body, tc.wantIn)
			}
		})
	}

	if code, _ := d.do(t, http.MethodGet, "/jobs/j999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
	if code, _ := d.do(t, http.MethodGet, "/jobs/j999999/csv", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job csv: status %d", code)
	}
}

// TestConcurrentSubmissionsByteIdentical: a burst of concurrent
// submissions — including duplicates racing each other — all complete, and
// every job's CSV is byte-identical to a serial run of its spec. This is
// the service-level restatement of the simulator's determinism contract.
func TestConcurrentSubmissionsByteIdentical(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 4})
	specs := []JobSpec{
		{App: "bfs", Scale: "tiny", Cores: 4},
		{App: "bfs", Scale: "tiny", Cores: 4, Seed: 2},
		{App: "bfs", Scale: "tiny", Cores: 8},
		{App: "incsssp", Scale: "tiny", Cores: 4},
	}
	// Serial references, computed before any daemon traffic.
	want := make(map[int]string, len(specs))
	for i, sp := range specs {
		want[i] = directCSV(t, sp)
	}

	const dup = 3 // each spec submitted this many times, racing
	type result struct {
		idx int
		csv string
		err error
	}
	results := make(chan result, len(specs)*dup)
	var wg sync.WaitGroup
	for i := range specs {
		for k := 0; k < dup; k++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				j := d.submitAndWait(t, specs[i])
				if j.State != JobDone {
					results <- result{i, "", fmt.Errorf("job %s: %s", j.State, j.Error)}
					return
				}
				code, csv := d.do(t, http.MethodGet, "/jobs/"+j.ID+"/csv", nil)
				if code != http.StatusOK {
					results <- result{i, "", fmt.Errorf("csv status %d", code)}
					return
				}
				results <- result{i, string(csv), nil}
			}(i)
		}
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("spec %d: %v", r.idx, r.err)
		}
		if r.csv != want[r.idx] {
			t.Fatalf("spec %d: concurrent CSV diverges from serial run:\n got: %q\nwant: %q",
				r.idx, r.csv, want[r.idx])
		}
	}
	// The duplicates must have deduplicated: one computation per distinct
	// spec, everything else a hit.
	vars := d.adminVars(t)
	if vars["cache_misses"] != int64(len(specs)) {
		t.Fatalf("cache_misses = %d, want %d (one per distinct spec)", vars["cache_misses"], len(specs))
	}
	if vars["cache_hits"] != int64(len(specs)*(dup-1)) {
		t.Fatalf("cache_hits = %d, want %d", vars["cache_hits"], len(specs)*(dup-1))
	}
}

// TestGracefulShutdownDrains: every job accepted before Shutdown completes
// during the drain, and admission is refused afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 16})
	api := httptest.NewServer(srv.Handler())
	defer api.Close()

	// Queue several jobs behind a single worker so some are still
	// pending when the drain starts.
	var ids []string
	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(JobSpec{App: "bfs", Scale: "tiny", Cores: 4, Seed: int64(i + 1)})
		resp, err := http.Post(api.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, data)
		}
		var j jobJSON
		if err := json.Unmarshal(data, &j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Every accepted job drained to completion.
	for _, id := range ids {
		j, ok := srv.jobs.get(id)
		if !ok {
			t.Fatalf("job %s vanished during drain", id)
		}
		if j.State != JobDone {
			t.Fatalf("job %s left in state %s after drain", id, j.State)
		}
	}

	// Admission is closed: a post-drain submission is 503.
	body, _ := json.Marshal(JobSpec{App: "bfs", Scale: "tiny", Cores: 4})
	resp, err := http.Post(api.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "shutting down") {
		t.Fatalf("post-drain error: %s", data)
	}
}

// TestQueueFullBackpressure: a zero-worker... not possible; instead a
// single worker with queue depth 1 and a burst must produce at least one
// 503 with Retry-After while the accepted jobs still finish.
func TestQueueFullBackpressure(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1})
	var accepted []string
	rejected := 0
	for i := 0; i < 12; i++ {
		code, body := d.do(t, http.MethodPost, "/jobs",
			JobSpec{App: "bfs", Scale: "tiny", Cores: 4, Seed: int64(i + 1)})
		switch code {
		case http.StatusAccepted:
			var j jobJSON
			if err := json.Unmarshal(body, &j); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, j.ID)
		case http.StatusServiceUnavailable:
			rejected++
			if !strings.Contains(string(body), "queue full") {
				t.Fatalf("503 body: %s", body)
			}
		default:
			t.Fatalf("status %d: %s", code, body)
		}
	}
	if rejected == 0 {
		t.Skip("burst never filled the queue on this machine")
	}
	for _, id := range accepted {
		if j := d.waitJob(t, id); j.State != JobDone {
			t.Fatalf("accepted job %s finished %s", id, j.State)
		}
	}
	// Rejected submissions leave no orphan records.
	if n := len(d.srv.jobs.snapshot()); n != len(accepted) {
		t.Fatalf("job store holds %d records, want %d accepted", n, len(accepted))
	}
}

// TestSessionLifecycle: open a live phased session, step it through every
// phase (verifying against a one-shot phased run), and check stepping past
// the end is 409 and close is terminal.
func TestSessionLifecycle(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	spec := JobSpec{App: "incsssp", Scale: "tiny", Cores: 4}

	code, body := d.do(t, http.MethodPost, "/sessions", spec)
	if code != http.StatusCreated {
		t.Fatalf("open session: status %d: %s", code, body)
	}
	var sess sessionJSON
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}
	if sess.ID == "" || sess.PhasesTotal == 0 || sess.PhasesDone != 0 {
		t.Fatalf("fresh session: %+v", sess)
	}

	for k := 0; k < sess.PhasesTotal; k++ {
		code, body := d.do(t, http.MethodPost, "/sessions/"+sess.ID+"/step", nil)
		if code != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", k+1, code, body)
		}
		var step struct {
			PhasesDone int `json:"phases_done"`
		}
		if err := json.Unmarshal(body, &step); err != nil {
			t.Fatal(err)
		}
		if step.PhasesDone != k+1 {
			t.Fatalf("step %d: phases_done = %d", k+1, step.PhasesDone)
		}
	}

	// Past the last phase: 409, not 500.
	code, body = d.do(t, http.MethodPost, "/sessions/"+sess.ID+"/step", nil)
	if code != http.StatusConflict {
		t.Fatalf("step past end: status %d: %s", code, body)
	}

	// The session's accumulated phases match a one-shot phased job.
	code, body = d.do(t, http.MethodGet, "/sessions/"+sess.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	var full sessionJSON
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Phases) != sess.PhasesTotal {
		t.Fatalf("session reports %d phases, want %d", len(full.Phases), sess.PhasesTotal)
	}
	phasedSpec := spec
	phasedSpec.Phases = true
	job := d.submitAndWait(t, phasedSpec)
	if job.State != JobDone {
		t.Fatalf("reference job: %s: %s", job.State, job.Error)
	}
	for i := range full.Phases {
		if !reflect.DeepEqual(full.Phases[i], job.Phases[i]) {
			t.Fatalf("phase %d: session %+v != job %+v", i+1, full.Phases[i], job.Phases[i])
		}
	}

	code, _ = d.do(t, http.MethodDelete, "/sessions/"+sess.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}
	if code, _ = d.do(t, http.MethodGet, "/sessions/"+sess.ID, nil); code != http.StatusNotFound {
		t.Fatalf("closed session still resolves: status %d", code)
	}
}

// TestSessionErrors: non-phased apps are rejected with the phased-app
// list, and the pool cap produces 503s that clear when a session closes.
func TestSessionErrors(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, MaxSessions: 1})

	code, body := d.do(t, http.MethodPost, "/sessions", JobSpec{App: "bfs", Scale: "tiny", Cores: 4})
	if code != http.StatusBadRequest {
		t.Fatalf("bfs session: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "incsssp") {
		t.Fatalf("error does not name the phased apps: %s", body)
	}

	spec := JobSpec{App: "incsssp", Scale: "tiny", Cores: 4}
	code, body = d.do(t, http.MethodPost, "/sessions", spec)
	if code != http.StatusCreated {
		t.Fatalf("open: status %d: %s", code, body)
	}
	var sess sessionJSON
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}

	code, body = d.do(t, http.MethodPost, "/sessions", spec)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap open: status %d: %s", code, body)
	}
	if vars := d.adminVars(t); vars["sessions_open"] != 1 {
		t.Fatalf("sessions_open = %d", vars["sessions_open"])
	}

	if code, _ = d.do(t, http.MethodDelete, "/sessions/"+sess.ID, nil); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}
	if code, _ = d.do(t, http.MethodPost, "/sessions", spec); code != http.StatusCreated {
		t.Fatalf("open after close: status %d", code)
	}

	if code, _ = d.do(t, http.MethodPost, "/sessions/s999999/step", nil); code != http.StatusNotFound {
		t.Fatalf("step unknown session: status %d", code)
	}
	if code, _ = d.do(t, http.MethodDelete, "/sessions/s999999", nil); code != http.StatusNotFound {
		t.Fatalf("close unknown session: status %d", code)
	}
}

// TestAppsAndHealth: the registry endpoint reflects bench metadata and
// both surfaces answer health probes.
func TestAppsAndHealth(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})

	code, body := d.do(t, http.MethodGet, "/apps", nil)
	if code != http.StatusOK {
		t.Fatalf("/apps: status %d", code)
	}
	var doc struct {
		Apps []appJSON `json:"apps"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Apps) != len(bench.AppNames()) {
		t.Fatalf("/apps lists %d apps, registry has %d", len(doc.Apps), len(bench.AppNames()))
	}
	byName := make(map[string]appJSON)
	for _, a := range doc.Apps {
		if a.Summary == "" {
			t.Errorf("app %s has no summary", a.Name)
		}
		byName[a.Name] = a
	}
	if !byName["incsssp"].Phased {
		t.Error("incsssp not marked phased in /apps")
	}
	if byName["bfs"].Phased {
		t.Error("bfs marked phased in /apps")
	}
	// The fork-join (nested-timestamp) apps are advertised like any flat
	// app: present, summarized, single-phase, no software-parallel flavor.
	for _, name := range []string{"msort", "treebuild"} {
		a, ok := byName[name]
		if !ok {
			t.Errorf("fork-join app %s missing from /apps", name)
			continue
		}
		if a.Phased || a.HasParallel {
			t.Errorf("%s: phased=%v has_parallel=%v, want false/false", name, a.Phased, a.HasParallel)
		}
	}

	for _, url := range []string{d.api.URL + "/healthz", d.admin.URL + "/healthz"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
	}
}

// TestAdminSurface: pprof and expvar respond on the admin handler, and
// the API handler does NOT expose them — the whole point of the split.
func TestAdminSurface(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})

	resp, err := http.Get(d.admin.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "heap profile") {
		t.Fatalf("admin heap profile: status %d", resp.StatusCode)
	}

	vars := d.adminVars(t)
	for _, key := range []string{"jobs_submitted", "cache_hits", "cache_misses", "queue_depth", "jobs_in_flight", "sessions_open", "uptime_seconds"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}

	// The public API surface must not leak the debug handlers.
	resp, err = http.Get(d.api.URL + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable on the public API: status %d", resp.StatusCode)
	}
	resp, err = http.Get(d.api.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expvar reachable on the public API: status %d", resp.StatusCode)
	}
}

// TestJobCSVNotReady: CSV for an unfinished or failed job is 409.
func TestJobCSVNotReady(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	// A medium job would race; instead fabricate states via the store.
	j := d.srv.jobs.create(JobSpec{App: "bfs"}.withDefaults())
	if code, body := d.do(t, http.MethodGet, "/jobs/"+j.ID+"/csv", nil); code != http.StatusConflict {
		t.Fatalf("queued-job csv: status %d: %s", code, body)
	}
	d.srv.jobs.update(j.ID, func(job *Job) {
		job.State = JobFailed
		job.Error = "synthetic failure"
	})
	code, body := d.do(t, http.MethodGet, "/jobs/"+j.ID+"/csv", nil)
	if code != http.StatusConflict {
		t.Fatalf("failed-job csv: status %d", code)
	}
	if !strings.Contains(string(body), "synthetic failure") {
		t.Fatalf("failed-job csv body: %s", body)
	}
}

// TestJobStore exercises the store directly: ids are sequential,
// snapshots are copies, drop forgets, update mutates under the lock.
func TestJobStore(t *testing.T) {
	st := newJobStore()
	a := st.create(JobSpec{App: "bfs"})
	b := st.create(JobSpec{App: "sssp"})
	if a.ID == b.ID || a.State != JobQueued {
		t.Fatalf("create: %+v %+v", a, b)
	}
	if spec, ok := st.spec(b.ID); !ok || spec.App != "sssp" {
		t.Fatalf("spec: %+v %v", spec, ok)
	}
	st.update(a.ID, func(j *Job) { j.State = JobRunning })
	if got, _ := st.get(a.ID); got.State != JobRunning {
		t.Fatalf("update did not stick: %+v", got)
	}
	// Snapshots are copies: mutating one must not reach the store.
	snap := st.snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d jobs", len(snap))
	}
	snap[0].State = "mangled"
	for _, j := range st.snapshot() {
		if j.State == "mangled" {
			t.Fatal("snapshot aliases store memory")
		}
	}
	st.drop(a.ID)
	if _, ok := st.get(a.ID); ok {
		t.Fatal("dropped job still resolves")
	}
}

// TestRunJobCanceled: a job whose context is already dead when a worker
// picks it up fails with a clear error instead of simulating.
func TestRunJobCanceled(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	j := srv.jobs.create(JobSpec{App: "bfs"}.withDefaults())
	srv.cancel()
	srv.runJob(srv.ctx, j.ID)
	got, _ := srv.jobs.get(j.ID)
	if got.State != JobFailed || !strings.Contains(got.Error, "canceled") {
		t.Fatalf("canceled job: %+v", got)
	}
	if srv.jobsFailed.Value() != 1 {
		t.Fatalf("jobs_failed = %d", srv.jobsFailed.Value())
	}
}

// TestComputeErrors: compute surfaces bench-construction failures (the
// error-evicting cache must not pin them) and defends against a phased
// request reaching a single-phase app.
func TestComputeErrors(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	if _, err := srv.compute(JobSpec{App: "no-such-app"}.withDefaults()); err == nil {
		t.Fatal("unknown app: want an error")
	}
	spec := JobSpec{App: "bfs", Scale: "tiny", Cores: 4, Phases: true}.withDefaults()
	if _, err := srv.compute(spec); err == nil {
		t.Fatal("phased compute on single-phase app: want an error")
	}
	// And the happy phased path straight through compute.
	res, err := srv.compute(JobSpec{App: "incsssp", Scale: "tiny", Cores: 4, Phases: true}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseStats) == 0 || res.Stats.Cycles == 0 {
		t.Fatalf("phased compute result: %+v", res)
	}
}
