package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
)

// sessionPool holds the daemon's live phased sessions: warm simulated
// machines parked at quiescent points between client requests. A session
// is the service form of incremental resubmission — open once (builds the
// machine and inputs), then step phase by phase against resident state,
// paying neither machine construction nor the already-committed history
// again. The pool is bounded: each live session pins a machine's guest
// memory and queues.
type sessionPool struct {
	mu       sync.Mutex
	max      int
	seq      int
	sessions map[string]*liveSession
	benches  *benchCache
	open     *expvar.Int // mirrors len(sessions) for /debug/vars
}

// liveSession wraps a bench.Session with the per-session lock that
// serializes steps: machines are single-client, HTTP is not.
type liveSession struct {
	id   string
	spec JobSpec

	mu      sync.Mutex
	sess    *bench.Session
	created time.Time
	stepped time.Time
}

func newSessionPool(max int, benches *benchCache, open *expvar.Int) *sessionPool {
	return &sessionPool{max: max, sessions: make(map[string]*liveSession), benches: benches, open: open}
}

var errSessionPoolFull = fmt.Errorf("session pool full")

// openSession constructs a live session for a validated spec.
func (p *sessionPool) openSession(spec JobSpec) (*liveSession, error) {
	b, err := p.benches.get(spec.App, spec.scale())
	if err != nil {
		return nil, err
	}
	sb, ok := b.(bench.Sessioned)
	if !ok {
		return nil, fmt.Errorf("app %q does not support live sessions (phased apps: %s)",
			spec.App, strings.Join(phasedAppNames(), ", "))
	}
	p.mu.Lock()
	if len(p.sessions) >= p.max {
		p.mu.Unlock()
		return nil, errSessionPoolFull
	}
	p.seq++
	id := fmt.Sprintf("s%06d", p.seq)
	// Reserve the slot before the (slow) machine build so concurrent
	// opens cannot overshoot the cap; fill it in below.
	ls := &liveSession{id: id, spec: spec, created: time.Now()}
	p.sessions[id] = ls
	p.open.Set(int64(len(p.sessions)))
	p.mu.Unlock()

	ls.mu.Lock()
	defer ls.mu.Unlock()
	sess, err := sb.OpenSession(spec.machineConfig())
	if err != nil {
		p.close(id)
		return nil, err
	}
	ls.sess = sess
	return ls, nil
}

// get returns a live session by id.
func (p *sessionPool) get(id string) (*liveSession, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ls, ok := p.sessions[id]
	return ls, ok
}

// close removes a session; the machine is garbage once unreferenced.
func (p *sessionPool) close(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.sessions[id]
	if ok {
		delete(p.sessions, id)
		p.open.Set(int64(len(p.sessions)))
	}
	return ok
}

// sessionJSON is the wire form of a live session.
type sessionJSON struct {
	ID          string            `json:"id"`
	Spec        JobSpec           `json:"spec"`
	PhasesTotal int               `json:"phases_total"`
	PhasesDone  int               `json:"phases_done"`
	Phases      []core.PhaseStats `json:"phases,omitempty"`
}

func (ls *liveSession) json(withPhases bool) sessionJSON {
	out := sessionJSON{
		ID:          ls.id,
		Spec:        ls.spec,
		PhasesTotal: ls.sess.PhaseCount(),
		PhasesDone:  ls.sess.Done(),
	}
	if withPhases {
		out.Phases = ls.sess.Phases()
	}
	return out
}

// ------------------------------------------------------ session handlers --

// handleOpenSession opens a live phased session: the machine is built and
// parked before phase 1; no cycle simulates until the first step. 503
// when the pool is at capacity.
func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed session spec: %v", err)
		return
	}
	spec = spec.withDefaults()
	spec.Phases = true // sessions are phased by construction
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid session spec: %v", err)
		return
	}
	ls, err := s.sessions.openSession(spec)
	if err == errSessionPoolFull {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "session pool full (%d live sessions); close one or retry later", s.cfg.MaxSessions)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "open session: %v", err)
		return
	}
	ls.mu.Lock()
	out := ls.json(false)
	ls.mu.Unlock()
	w.Header().Set("Location", "/sessions/"+ls.id)
	writeJSON(w, http.StatusCreated, out)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	ls.mu.Lock()
	out := ls.json(true)
	ls.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleStepSession advances a session one phase — the resubmission hit:
// the machine is already warm, only the new phase simulates. Steps on one
// session serialize; stepping past the last phase is 409.
func (s *Server) handleStepSession(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.sess.Remaining() == 0 {
		writeError(w, http.StatusConflict, "session %s: all %d phases have run", ls.id, ls.sess.PhaseCount())
		return
	}
	ph, err := ls.sess.Step()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "step: %v", err)
		return
	}
	ls.stepped = time.Now()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":           ls.id,
		"phase":        ph,
		"phases_done":  ls.sess.Done(),
		"phases_total": ls.sess.PhaseCount(),
	})
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.close(id) {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "closed"})
}
