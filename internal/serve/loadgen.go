package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Load generator: the repo's first genuinely concurrent, many-clients
// scenario. Each client loops submit → poll-to-completion against a
// running daemon, measuring per-job latency (submit to done) and
// aggregate throughput. It lives in the package so the same harness runs
// in-process against httptest servers (race-checked in CI) and from
// cmd/swarmload against a real daemon.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// BaseURL is the daemon's API root, e.g. "http://localhost:8080".
	BaseURL string
	// Clients is the number of concurrent submitters.
	Clients int
	// Jobs is the total number of jobs across all clients.
	Jobs int
	// Specs is the job mix, assigned round-robin. Give each spec a
	// distinct seed to defeat the result cache when measuring simulation
	// throughput; identical specs measure cache throughput instead.
	Specs []JobSpec
	// Poll is the status-poll interval (default 5ms).
	Poll time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Jobs       int           // jobs completed (including failed)
	Failed     int           // jobs that finished in state failed
	Rejected   int           // 503 submit rejections retried (backpressure events)
	CacheHits  int           // completed jobs served from the result cache
	Wall       time.Duration // first submit to last completion
	Throughput float64       // completed jobs per second
	P50        time.Duration // submit-to-done latency percentiles
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration
}

// String renders the report as the table recorded in EXPERIMENTS.md.
func (r LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs %d (failed %d, cache hits %d, 503 backoffs %d) in %.2fs — %.1f jobs/s\n",
		r.Jobs, r.Failed, r.CacheHits, r.Rejected, r.Wall.Seconds(), r.Throughput)
	fmt.Fprintf(&b, "latency p50 %s  p90 %s  p99 %s  max %s",
		r.P50.Round(time.Millisecond), r.P90.Round(time.Millisecond),
		r.P99.Round(time.Millisecond), r.Max.Round(time.Millisecond))
	return b.String()
}

// RunLoad drives the load: Clients goroutines pull job indices from a
// shared counter, submit, and poll until completion. A 503 (full queue)
// backs off and retries — backpressure is part of the measured system.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if cfg.Clients <= 0 || cfg.Jobs <= 0 || len(cfg.Specs) == 0 {
		return LoadReport{}, fmt.Errorf("loadgen: need Clients, Jobs and at least one Spec")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 5 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}

	var (
		next      atomic.Int64
		rejected  atomic.Int64
		failed    atomic.Int64
		cacheHits atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Jobs || ctx.Err() != nil {
					return
				}
				lat, hit, jobFailed, err := runOne(ctx, client, cfg, cfg.Specs[i%len(cfg.Specs)], &rejected)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				latencies = append(latencies, lat)
				mu.Unlock()
				if hit {
					cacheHits.Add(1)
				}
				if jobFailed {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return LoadReport{}, firstErr
	}
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	rep := LoadReport{
		Jobs:      len(latencies),
		Failed:    int(failed.Load()),
		Rejected:  int(rejected.Load()),
		CacheHits: int(cacheHits.Load()),
		Wall:      wall,
		P50:       pct(0.50),
		P90:       pct(0.90),
		P99:       pct(0.99),
		Max:       pct(1.0),
	}
	if wall > 0 {
		rep.Throughput = float64(rep.Jobs) / wall.Seconds()
	}
	return rep, nil
}

// runOne submits one job and polls it to completion, returning the
// submit-to-done latency, whether the result came from the cache, and
// whether the job failed.
func runOne(ctx context.Context, client *http.Client, cfg LoadConfig, spec JobSpec, rejected *atomic.Int64) (time.Duration, bool, bool, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, false, false, err
	}
	start := time.Now()
	var id string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/jobs", bytes.NewReader(body))
		if err != nil {
			return 0, false, false, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return 0, false, false, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, false, false, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Bounded queue: back off and resubmit.
			rejected.Add(1)
			select {
			case <-ctx.Done():
				return 0, false, false, ctx.Err()
			case <-time.After(cfg.Poll):
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return 0, false, false, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		var j jobJSON
		if err := json.Unmarshal(data, &j); err != nil {
			return 0, false, false, fmt.Errorf("submit response: %w", err)
		}
		id = j.ID
		break
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/jobs/"+id, nil)
		if err != nil {
			return 0, false, false, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, false, false, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, false, false, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, false, false, fmt.Errorf("poll %s: %s: %s", id, resp.Status, strings.TrimSpace(string(data)))
		}
		var j jobJSON
		if err := json.Unmarshal(data, &j); err != nil {
			return 0, false, false, fmt.Errorf("poll response: %w", err)
		}
		switch j.State {
		case JobDone:
			return time.Since(start), j.CacheHit, false, nil
		case JobFailed:
			return time.Since(start), j.CacheHit, true, nil
		}
		select {
		case <-ctx.Done():
			return 0, false, false, ctx.Err()
		case <-time.After(cfg.Poll):
		}
	}
}
