package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/harness"
)

// appList joins the registered app names alphabetically for error
// messages (AppNames itself stays in suite order).
func appList() string {
	names := append([]string(nil), bench.AppNames()...)
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// JobSpec is one simulation request. The zero value of every optional
// field selects the same default as the CLIs, so a minimal submission is
// {"app": "bfs"}. A normalized JobSpec is the singleflight cache key:
// every field participates, so two requests dedupe exactly when the
// simulator guarantees them identical results.
type JobSpec struct {
	// App is a registered benchmark name (GET /apps enumerates them).
	App string `json:"app"`
	// Scale is the input scale: tiny, small, medium or large (default small).
	Scale string `json:"scale,omitempty"`
	// Cores sizes the machine: 1-4 or a multiple of 4 (default 64).
	Cores int `json:"cores,omitempty"`
	// Mapper is the task-mapping policy (default random).
	Mapper string `json:"mapper,omitempty"`
	// Backend is the execution engine: sim (the cycle-level simulator,
	// default), rt (the native speculative runtime) or rt-conservative.
	// Results from different backends never dedupe onto each other — the
	// backend is part of the cache key like every other field.
	Backend string `json:"backend,omitempty"`
	// SimWorkers shards the simulated machine across host goroutines;
	// results are bit-identical for every value (default single-threaded).
	SimWorkers int `json:"simworkers,omitempty"`
	// Seed is the enqueue-placement seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Phases requests per-phase statistics; valid for phased apps only.
	Phases bool `json:"phases,omitempty"`
}

func (j JobSpec) withDefaults() JobSpec {
	if j.Scale == "" {
		j.Scale = "small"
	}
	if j.Cores == 0 {
		j.Cores = 64
	}
	if j.Mapper == "" {
		j.Mapper = "random"
	}
	if j.Backend == "" {
		// Normalized so {"backend":"sim"} and an absent field are one
		// cache entry.
		j.Backend = "sim"
	}
	if j.Seed == 0 {
		j.Seed = 1
	}
	if j.SimWorkers == 0 {
		j.SimWorkers = 1
	}
	return j
}

// Validate checks the spec against the app registry and machine
// constraints, reusing the same validators as the CLIs so every error
// names the valid options.
func (j JobSpec) Validate() error {
	if j.App == "" {
		return fmt.Errorf("missing app (valid: %s)", appList())
	}
	meta, ok := bench.Lookup(j.App)
	if !ok {
		return fmt.Errorf("unknown app %q (valid: %s)", j.App, appList())
	}
	if _, err := harness.ValidateScale(j.Scale); err != nil {
		return err
	}
	if err := harness.ValidateCores(j.Cores); err != nil {
		return err
	}
	if err := harness.ValidateMapper(j.Mapper); err != nil {
		return err
	}
	if err := harness.ValidateBackend(j.Backend); err != nil {
		return err
	}
	if err := harness.ValidateSimWorkers(j.SimWorkers); err != nil {
		return err
	}
	if j.Phases && !meta.Phased {
		return fmt.Errorf("app %q is single-phase; phased apps: %s", j.App, strings.Join(phasedAppNames(), ", "))
	}
	return nil
}

func phasedAppNames() []string {
	var names []string
	for _, m := range bench.Apps() {
		if m.Phased {
			names = append(names, m.Name)
		}
	}
	return names
}

// scale returns the parsed Scale of a validated spec.
func (j JobSpec) scale() bench.Scale {
	s, _ := bench.ParseScale(j.Scale)
	return s
}

// machineConfig returns the core configuration a validated spec describes.
func (j JobSpec) machineConfig() core.Config {
	cfg := core.DefaultConfig(j.Cores)
	cfg.Mapper = j.Mapper
	cfg.Backend = j.Backend
	cfg.Seed = j.Seed
	cfg.SimWorkers = j.SimWorkers
	return cfg
}

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is one accepted submission and its lifecycle.
type Job struct {
	ID        string
	Spec      JobSpec
	State     string
	Error     string
	CacheHit  bool
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Result    *jobResult
}

// jobResult is a completed simulation, shared read-only between every job
// that deduplicated onto it.
type jobResult struct {
	Stats      core.Stats
	PhaseStats []core.PhaseStats
}

// jobJSON is the wire form of a Job.
type jobJSON struct {
	ID        string            `json:"id"`
	State     string            `json:"state"`
	Spec      JobSpec           `json:"spec"`
	Error     string            `json:"error,omitempty"`
	CacheHit  bool              `json:"cache_hit,omitempty"`
	ElapsedMS int64             `json:"elapsed_ms,omitempty"`
	Stats     *core.Stats       `json:"stats,omitempty"`
	Phases    []core.PhaseStats `json:"phases,omitempty"`
}

func (j Job) json() jobJSON {
	out := jobJSON{ID: j.ID, State: j.State, Spec: j.Spec, Error: j.Error, CacheHit: j.CacheHit}
	if !j.Finished.IsZero() && !j.Started.IsZero() {
		out.ElapsedMS = j.Finished.Sub(j.Started).Milliseconds()
	}
	if j.State == JobDone && j.Result != nil {
		st := j.Result.Stats
		out.Stats = &st
		out.Phases = j.Result.PhaseStats
	}
	return out
}

// jobStore is the in-memory job table. Entries live for the daemon's
// lifetime — job counts are bounded by admission control, and a record is
// a few hundred bytes plus a shared result pointer.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

// create records a new queued job and returns a snapshot of it.
func (s *jobStore) create(spec JobSpec) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.seq),
		Spec:      spec,
		State:     JobQueued,
		Submitted: time.Now(),
	}
	s.jobs[j.ID] = j
	return *j
}

// drop removes a job that was never admitted (queue full).
func (s *jobStore) drop(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// get returns a snapshot of a job.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// spec returns a job's specification.
func (s *jobStore) spec(id string) (JobSpec, bool) {
	j, ok := s.get(id)
	return j.Spec, ok
}

// update mutates a job under the store lock.
func (s *jobStore) update(id string, fn func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		fn(j)
	}
}

// snapshot returns copies of every job, newest first not guaranteed —
// callers sort as needed.
func (s *jobStore) snapshot() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	return out
}

// benchCache keeps warm benchmark instances — input generation and host
// reference computation are the expensive, immutable part of a workload —
// shared by every job and session at the same (app, scale). Construction
// is deduplicated by the same error-evicting singleflight cache as
// results.
type benchCache struct {
	memo harness.Memo[benchKey, bench.Benchmark]
}

type benchKey struct {
	app   string
	scale bench.Scale
}

func (c *benchCache) get(app string, scale bench.Scale) (bench.Benchmark, error) {
	b, _, err := c.memo.Do(benchKey{app, scale}, func() (bench.Benchmark, error) {
		return bench.New(app, scale)
	})
	return b, err
}
