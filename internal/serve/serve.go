// Package serve implements swarmd, the simulation-as-a-service daemon:
// a long-running HTTP/JSON front end over the deterministic simulator.
// Clients POST simulation jobs (app, scale, cores, mapper, backend,
// simworkers, seed, phases); the daemon runs them on a bounded harness
// worker pool and serves results as JSON or CSV. Because every
// simulation is a pure function of its specification, identical
// concurrent submissions are deduplicated through a singleflight result
// cache — the error-evicting harness.Memo, so one transient failure
// never poisons a configuration — and a job's answer is byte-identical
// to a one-shot `swarmsim` run of the same configuration. (Native rt
// backends are the one caveat: their committed results are
// deterministic but their wall-clock and abort counts are not, so a
// cache hit replays the first run's timing.)
//
// The service splits two listeners, cozy-stack style: the public API
// (jobs, sessions, app registry, health) and an admin port carrying
// net/http/pprof and expvar counters (jobs served, cache hits, in-flight,
// queue depth) that must never be exposed with the API. Graceful shutdown
// drains: admission stops, every accepted job completes, then the process
// exits.
//
// Phased workloads get live sessions: POST /sessions opens a warm machine
// parked at its initial quiescent point, and each POST /sessions/{id}/step
// advances one phase against resident state — incsssp-style incremental
// resubmission as a service.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/harness"
)

// Config sizes the daemon.
type Config struct {
	// Workers bounds concurrently running simulations (<= 0 selects
	// runtime.NumCPU via the harness pool).
	Workers int
	// QueueDepth bounds accepted-but-not-started jobs; submissions past
	// it are answered 503 (default 64).
	QueueDepth int
	// MaxSessions bounds live phased sessions (default 8; each holds a
	// warm simulated machine resident in memory).
	MaxSessions int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	return c
}

// Server is the swarmd daemon: job execution, result cache, session pool
// and the two HTTP surfaces (API and admin).
type Server struct {
	cfg      Config
	runner   *harness.Runner
	jobs     *jobStore
	benches  *benchCache
	sessions *sessionPool
	results  harness.Memo[JobSpec, *jobResult]

	// Operational counters, exposed on the admin port's /debug/vars.
	// The map is local, not expvar-published: tests run many Servers in
	// one process and global registration would collide.
	vars          *expvar.Map
	jobsSubmitted expvar.Int
	jobsCompleted expvar.Int
	jobsFailed    expvar.Int
	cacheHits     expvar.Int
	cacheMisses   expvar.Int
	sessionsOpen  expvar.Int
	// jobsByBackend counts submissions per execution backend
	// (jobs_by_backend.sim / .rt / .rt-conservative).
	jobsByBackend expvar.Map
	started       time.Time

	ctx    context.Context
	cancel context.CancelFunc
}

// New builds a Server and starts its worker pool. Call Shutdown to drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		runner:  harness.NewPool(cfg.Workers).Serve(cfg.QueueDepth),
		jobs:    newJobStore(),
		benches: &benchCache{},
		started: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
	}
	s.sessions = newSessionPool(cfg.MaxSessions, s.benches, &s.sessionsOpen)
	s.vars = new(expvar.Map).Init()
	s.vars.Set("jobs_submitted", &s.jobsSubmitted)
	s.vars.Set("jobs_completed", &s.jobsCompleted)
	s.vars.Set("jobs_failed", &s.jobsFailed)
	s.vars.Set("cache_hits", &s.cacheHits)
	s.vars.Set("cache_misses", &s.cacheMisses)
	s.vars.Set("sessions_open", &s.sessionsOpen)
	s.jobsByBackend.Init()
	s.vars.Set("jobs_by_backend", &s.jobsByBackend)
	s.vars.Set("queue_depth", expvar.Func(func() any { return s.runner.QueueDepth() }))
	s.vars.Set("jobs_in_flight", expvar.Func(func() any { return s.runner.InFlight() }))
	s.vars.Set("uptime_seconds", expvar.Func(func() any { return int64(time.Since(s.started).Seconds()) }))
	return s
}

// Handler returns the public API surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /jobs/{id}/csv", s.handleJobCSV)
	mux.HandleFunc("GET /apps", s.handleApps)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /sessions", s.handleOpenSession)
	mux.HandleFunc("GET /sessions/{id}", s.handleGetSession)
	mux.HandleFunc("POST /sessions/{id}/step", s.handleStepSession)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleCloseSession)
	return mux
}

// AdminHandler returns the admin surface: pprof, expvar counters and a
// health probe. Serve it on a separate, non-public listener.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Shutdown drains gracefully: admission stops (further submissions get
// 503), every accepted job — queued or in flight — completes, then the
// base context is cancelled. A ctx deadline bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.runner.Drain(ctx)
	s.cancel()
	return err
}

// ------------------------------------------------------------- job flow --

// handleSubmitJob admits one simulation job: validate against the
// registries (400 names the valid options), record it, and hand it to the
// bounded runner (503 on a full queue or during drain).
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	job := s.jobs.create(spec)
	err := s.runner.Submit(s.ctx, func(ctx context.Context) { s.runJob(ctx, job.ID) })
	if err != nil {
		s.jobs.drop(job.ID)
		switch {
		case errors.Is(err, harness.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "job queue full (depth %d); retry later", s.cfg.QueueDepth)
		case errors.Is(err, harness.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "daemon is shutting down")
		default:
			writeError(w, http.StatusInternalServerError, "submit: %v", err)
		}
		return
	}
	s.jobsSubmitted.Add(1)
	s.jobsByBackend.Add(spec.Backend, 1)
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.json())
}

// runJob executes one accepted job on a worker goroutine, deduplicating
// identical specifications through the singleflight result cache.
func (s *Server) runJob(ctx context.Context, id string) {
	if ctx.Err() != nil {
		s.jobs.update(id, func(j *Job) {
			j.State = JobFailed
			j.Error = "canceled before start"
			j.Finished = time.Now()
		})
		s.jobsFailed.Add(1)
		return
	}
	s.jobs.update(id, func(j *Job) {
		j.State = JobRunning
		j.Started = time.Now()
	})
	spec, _ := s.jobs.spec(id)
	res, hit, err := s.results.Do(spec, func() (*jobResult, error) {
		return s.compute(spec)
	})
	if hit {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
	}
	s.jobs.update(id, func(j *Job) {
		j.Finished = time.Now()
		j.CacheHit = hit
		if err != nil {
			j.State = JobFailed
			j.Error = err.Error()
			return
		}
		j.State = JobDone
		j.Result = res
	})
	if err != nil {
		s.jobsFailed.Add(1)
	} else {
		s.jobsCompleted.Add(1)
	}
}

// compute runs the simulation a spec describes. The benchmark instance
// (input generation, host references) comes warm from the shared cache;
// the simulated machine itself is built fresh — determinism requires a
// run to never observe another run's machine state.
func (s *Server) compute(spec JobSpec) (*jobResult, error) {
	b, err := s.benches.get(spec.App, spec.scale())
	if err != nil {
		return nil, err
	}
	cfg := spec.machineConfig()
	if spec.Phases {
		pb, ok := b.(bench.Phased)
		if !ok {
			// Validate() rejects this; defend anyway.
			return nil, fmt.Errorf("app %q is single-phase", spec.App)
		}
		phases, err := pb.RunSwarmPhases(cfg)
		if err != nil {
			return nil, err
		}
		return &jobResult{Stats: phases[len(phases)-1].Cumulative, PhaseStats: phases}, nil
	}
	st, err := b.RunSwarm(cfg)
	if err != nil {
		return nil, err
	}
	return &jobResult{Stats: st}, nil
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.json())
}

// handleJobCSV serves a finished job's result in the exact format of
// `swarmsim -csv` (single-run header + row), or the per-phase CSV for
// phased jobs — machine-readable and diffable against the CLI.
func (s *Server) handleJobCSV(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	switch job.State {
	case JobDone:
	case JobFailed:
		writeError(w, http.StatusConflict, "job %s failed: %s", job.ID, job.Error)
		return
	default:
		writeError(w, http.StatusConflict, "job %s is %s; results are available once it is done", job.ID, job.State)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if job.Spec.Phases {
		pts := make([]harness.PhasePoint, len(job.Result.PhaseStats))
		for i, ph := range job.Result.PhaseStats {
			pts[i] = harness.PhasePoint{App: job.Spec.App, Cores: job.Spec.Cores, Stats: ph}
		}
		if err := harness.WritePhasesCSV(w, pts); err != nil {
			writeError(w, http.StatusInternalServerError, "csv: %v", err)
		}
		return
	}
	if err := harness.WriteStatsCSV(w, job.Spec.App, job.Result.Stats); err != nil {
		writeError(w, http.StatusInternalServerError, "csv: %v", err)
	}
}

// ------------------------------------------------------- registry + ops --

// appJSON is one /apps entry, straight from the bench registry metadata.
type appJSON struct {
	Name        string   `json:"name"`
	Summary     string   `json:"summary"`
	HasParallel bool     `json:"has_parallel"`
	Phased      bool     `json:"phased"`
	Figures     []string `json:"figures,omitempty"`
}

func (s *Server) handleApps(w http.ResponseWriter, _ *http.Request) {
	metas := bench.Apps()
	out := make([]appJSON, len(metas))
	for i, m := range metas {
		out[i] = appJSON{
			Name:        m.Name,
			Summary:     m.Summary,
			HasParallel: m.HasParallel,
			Phased:      m.Phased,
			Figures:     m.Figures,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"apps": out, "backends": core.BackendNames()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleVars emits the daemon's counters as JSON under the "swarmd" key —
// the expvar format, served from the server-local map so concurrent
// daemons in one process never fight over global registration.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\"swarmd\": %s}\n", s.vars.String())
}

// --------------------------------------------------------------- helpers --

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
