// Package circuit is the gate-level digital circuit substrate for the des
// benchmark: netlists, a carry-select adder array generator (standing in
// for the paper's csaArray32 input), and a topological reference evaluator
// used to verify simulated runs.
package circuit

import (
	"fmt"
	"math/rand"
)

// GateType enumerates gate functions. Input gates are stimulus sources.
type GateType uint8

const (
	Input GateType = iota
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	// Mux2 selects In[1] (sel=0) or In[2] (sel=1); In[0] is the select.
	Mux2
)

var gateNames = [...]string{"input", "buf", "not", "and", "or", "nand", "nor", "xor", "xnor", "mux2"}

func (t GateType) String() string { return gateNames[t] }

// MaxFanin is the largest gate fanin (Mux2's three).
const MaxFanin = 3

// Gate is one netlist element.
type Gate struct {
	Type  GateType
	In    []int32 // fanin gate ids
	Delay uint32  // propagation delay in simulated time units
}

// Circuit is a combinational netlist (a DAG: every gate's fanins have
// smaller ids).
type Circuit struct {
	Gates   []Gate
	Inputs  []int32 // stimulus gates
	Outputs []int32 // observed gates
	// Fanout[i] lists the gates that consume gate i's output.
	Fanout [][]int32
}

// build computes fanout lists and validates the DAG ordering.
func (c *Circuit) build() error {
	c.Fanout = make([][]int32, len(c.Gates))
	for i, g := range c.Gates {
		if g.Type == Input && len(g.In) != 0 {
			return fmt.Errorf("circuit: input gate %d has fanins", i)
		}
		for _, f := range g.In {
			if int(f) >= i {
				return fmt.Errorf("circuit: gate %d consumes later gate %d (not topological)", i, f)
			}
			c.Fanout[f] = append(c.Fanout[f], int32(i))
		}
		if g.Delay == 0 && g.Type != Input {
			return fmt.Errorf("circuit: gate %d has zero delay", i)
		}
	}
	return nil
}

// MaxFanout returns the largest fanout in the circuit.
func (c *Circuit) MaxFanout() int {
	m := 0
	for _, f := range c.Fanout {
		if len(f) > m {
			m = len(f)
		}
	}
	return m
}

// EvalGate computes a gate's output from fanin values.
func EvalGate(t GateType, in ...uint64) uint64 {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	switch t {
	case Buf:
		return in[0] & 1
	case Not:
		return (in[0] ^ 1) & 1
	case And:
		return in[0] & in[1] & 1
	case Or:
		return (in[0] | in[1]) & 1
	case Nand:
		return b(in[0]&in[1]&1 == 0)
	case Nor:
		return b((in[0]|in[1])&1 == 0)
	case Xor:
		return (in[0] ^ in[1]) & 1
	case Xnor:
		return b((in[0]^in[1])&1 == 0)
	case Mux2:
		if in[0]&1 == 0 {
			return in[1] & 1
		}
		return in[2] & 1
	default:
		panic(fmt.Sprintf("circuit: cannot evaluate %v", t))
	}
}

// TopoEval computes the settled output value of every gate for the given
// input assignment (the reference fixpoint a correct event-driven
// simulation must converge to).
func (c *Circuit) TopoEval(inputs []uint64) []uint64 {
	if len(inputs) != len(c.Inputs) {
		panic("circuit: input vector size mismatch")
	}
	vals := make([]uint64, len(c.Gates))
	for i, g := range c.Inputs {
		vals[g] = inputs[i] & 1
	}
	for i, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		in := make([]uint64, len(g.In))
		for j, f := range g.In {
			in[j] = vals[f]
		}
		vals[i] = EvalGate(g.Type, in...)
	}
	return vals
}

// builder helps construct netlists.
type builder struct {
	gates []Gate
}

func (b *builder) input() int32 {
	b.gates = append(b.gates, Gate{Type: Input})
	return int32(len(b.gates) - 1)
}

func (b *builder) gate(t GateType, delay uint32, in ...int32) int32 {
	ins := append([]int32(nil), in...)
	b.gates = append(b.gates, Gate{Type: t, In: ins, Delay: delay})
	return int32(len(b.gates) - 1)
}

// fullAdder returns (sum, carryOut) built from 2 XORs, 2 ANDs and an OR.
func (b *builder) fullAdder(a, x, cin int32, d uint32) (sum, cout int32) {
	axb := b.gate(Xor, d, a, x)
	sum = b.gate(Xor, d, axb, cin)
	and1 := b.gate(And, d, a, x)
	and2 := b.gate(And, d, axb, cin)
	cout = b.gate(Or, d, and1, and2)
	return
}

// CSAArray builds a chain of nAdders carry-select adders, each width bits:
// a low ripple block plus two speculative high blocks (carry-in 0 and 1)
// muxed by the low block's carry. Adder i's carry-out feeds adder i+1's
// carry-in, so activity ripples across the array — the structure of the
// paper's csaArray32 input. gateDelay sets every gate's delay (the
// conservative baseline's lookahead).
func CSAArray(nAdders, width int, gateDelay uint32) *Circuit {
	if width < 2 || width%2 != 0 {
		panic("circuit: width must be even and >= 2")
	}
	b := &builder{}
	c := &Circuit{}
	half := width / 2
	d := gateDelay

	// Constant-0 and constant-1 sources for the speculative blocks.
	zero := b.input()
	one := b.input()
	c.Inputs = append(c.Inputs, zero, one)

	carry := b.input() // array carry-in
	c.Inputs = append(c.Inputs, carry)

	for ad := 0; ad < nAdders; ad++ {
		a := make([]int32, width)
		x := make([]int32, width)
		for i := 0; i < width; i++ {
			a[i] = b.input()
			x[i] = b.input()
			c.Inputs = append(c.Inputs, a[i], x[i])
		}
		// Low ripple block.
		cin := carry
		for i := 0; i < half; i++ {
			var sum int32
			sum, cin = b.fullAdder(a[i], x[i], cin, d)
			c.Outputs = append(c.Outputs, sum)
		}
		lowCarry := cin
		// Two speculative high blocks.
		c0 := zero
		c1 := one
		sums0 := make([]int32, half)
		sums1 := make([]int32, half)
		for i := 0; i < half; i++ {
			sums0[i], c0 = b.fullAdder(a[half+i], x[half+i], c0, d)
			sums1[i], c1 = b.fullAdder(a[half+i], x[half+i], c1, d)
		}
		// Select with the low block's carry.
		for i := 0; i < half; i++ {
			c.Outputs = append(c.Outputs, b.gate(Mux2, d, lowCarry, sums0[i], sums1[i]))
		}
		carry = b.gate(Mux2, d, lowCarry, c0, c1) // adder carry-out
		c.Outputs = append(c.Outputs, carry)
	}
	c.Gates = b.gates
	if err := c.build(); err != nil {
		panic(err)
	}
	return c
}

// Stimulus is a deterministic sequence of input vectors applied at regular
// intervals.
type Stimulus struct {
	Rounds  int
	Period  uint64
	Vectors [][]uint64 // Rounds x len(Inputs)
}

// NewStimulus generates random input rounds. Constant inputs (the first
// two: zero and one) keep their values.
func NewStimulus(c *Circuit, rounds int, period uint64, seed int64) *Stimulus {
	rng := rand.New(rand.NewSource(seed))
	s := &Stimulus{Rounds: rounds, Period: period}
	for r := 0; r < rounds; r++ {
		vec := make([]uint64, len(c.Inputs))
		vec[0] = 0 // constant zero
		vec[1] = 1 // constant one
		for i := 2; i < len(vec); i++ {
			vec[i] = uint64(rng.Intn(2))
		}
		s.Vectors = append(s.Vectors, vec)
	}
	return s
}
