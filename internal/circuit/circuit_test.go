package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalGateTruthTables(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []uint64
		want uint64
	}{
		{Buf, []uint64{0}, 0}, {Buf, []uint64{1}, 1},
		{Not, []uint64{0}, 1}, {Not, []uint64{1}, 0},
		{And, []uint64{1, 1}, 1}, {And, []uint64{1, 0}, 0},
		{Or, []uint64{0, 0}, 0}, {Or, []uint64{0, 1}, 1},
		{Nand, []uint64{1, 1}, 0}, {Nand, []uint64{0, 1}, 1},
		{Nor, []uint64{0, 0}, 1}, {Nor, []uint64{1, 0}, 0},
		{Xor, []uint64{1, 1}, 0}, {Xor, []uint64{1, 0}, 1},
		{Xnor, []uint64{1, 1}, 1}, {Xnor, []uint64{1, 0}, 0},
		{Mux2, []uint64{0, 1, 0}, 1}, // sel=0 -> in[1]
		{Mux2, []uint64{1, 1, 0}, 0}, // sel=1 -> in[2]
	}
	for _, c := range cases {
		if got := EvalGate(c.t, c.in...); got != c.want {
			t.Errorf("%v%v = %d, want %d", c.t, c.in, got, c.want)
		}
	}
}

// Property: the carry-select adder array actually adds.
func TestCSAArrayAdds(t *testing.T) {
	const width = 8
	c := CSAArray(2, width, 1)
	f := func(a0, b0, a1, b1 uint8, cin bool) bool {
		inputs := make([]uint64, len(c.Inputs))
		inputs[0], inputs[1] = 0, 1
		if cin {
			inputs[2] = 1
		}
		// Inputs after [zero, one, carry] are interleaved a[i], b[i] per
		// adder.
		setOperand := func(adder int, a, b uint8) {
			base := 3 + adder*2*width
			for i := 0; i < width; i++ {
				inputs[base+2*i] = uint64(a>>i) & 1
				inputs[base+2*i+1] = uint64(b>>i) & 1
			}
		}
		setOperand(0, a0, b0)
		setOperand(1, a1, b1)
		vals := c.TopoEval(inputs)

		// Outputs per adder: width sum bits then the carry-out.
		readSum := func(adder int) (uint64, uint64) {
			var s uint64
			for i := 0; i < width; i++ {
				s |= vals[c.Outputs[adder*(width+1)+i]] << i
			}
			return s, vals[c.Outputs[adder*(width+1)+width]]
		}
		ci := uint64(0)
		if cin {
			ci = 1
		}
		t0 := uint64(a0) + uint64(b0) + ci
		s0, c0 := readSum(0)
		if s0 != t0&0xff || c0 != t0>>width {
			return false
		}
		// Adder 1 consumes adder 0's carry-out (chained).
		t1 := uint64(a1) + uint64(b1) + c0
		s1, c1 := readSum(1)
		return s1 == t1&0xff && c1 == t1>>width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSAArrayStructure(t *testing.T) {
	c := CSAArray(4, 8, 3)
	if len(c.Gates) == 0 || c.MaxFanout() == 0 {
		t.Fatal("empty circuit")
	}
	// DAG property enforced by build(); delays set.
	for i, g := range c.Gates {
		if g.Type != Input && g.Delay != 3 {
			t.Fatalf("gate %d delay = %d", i, g.Delay)
		}
	}
	// The mux select (low-block carry) must have high fanout: that is
	// what forces fanout spawner chains in the Swarm version.
	if c.MaxFanout() < 5 {
		t.Fatalf("max fanout %d suspiciously low for a carry-select adder", c.MaxFanout())
	}
}

func TestStimulusDeterminism(t *testing.T) {
	c := CSAArray(2, 4, 1)
	a := NewStimulus(c, 5, 100, 9)
	b := NewStimulus(c, 5, 100, 9)
	for r := range a.Vectors {
		for i := range a.Vectors[r] {
			if a.Vectors[r][i] != b.Vectors[r][i] {
				t.Fatal("stimulus not deterministic")
			}
		}
	}
	if a.Vectors[0][0] != 0 || a.Vectors[0][1] != 1 {
		t.Fatal("constant inputs not pinned")
	}
}

// TestReferenceEventSimAgreesWithTopo: a simple host-side event-driven
// simulation must settle to the topological fixpoint (the gold standard
// the guest versions are also checked against).
func TestReferenceEventSimAgreesWithTopo(t *testing.T) {
	c := CSAArray(3, 6, 2)
	rng := rand.New(rand.NewSource(4))
	vals := make([]uint64, len(c.Gates))
	// Host event sim: (time, gate) heap.
	type ev struct {
		t    uint64
		gate int32
	}
	var heapEv []ev
	push := func(e ev) {
		heapEv = append(heapEv, e)
		i := len(heapEv) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heapEv[p].t <= heapEv[i].t {
				break
			}
			heapEv[p], heapEv[i] = heapEv[i], heapEv[p]
			i = p
		}
	}
	pop := func() ev {
		top := heapEv[0]
		n := len(heapEv) - 1
		heapEv[0] = heapEv[n]
		heapEv = heapEv[:n]
		i := 0
		for {
			l, r, s := 2*i+1, 2*i+2, i
			if l < n && heapEv[l].t < heapEv[s].t {
				s = l
			}
			if r < n && heapEv[r].t < heapEv[s].t {
				s = r
			}
			if s == i {
				break
			}
			heapEv[i], heapEv[s] = heapEv[s], heapEv[i]
			i = s
		}
		return top
	}

	inputs := make([]uint64, len(c.Inputs))
	inputs[1] = 1
	for i := 2; i < len(inputs); i++ {
		inputs[i] = uint64(rng.Intn(2))
	}
	for i, g := range c.Inputs {
		vals[g] = inputs[i]
		for _, fo := range c.Fanout[g] {
			push(ev{uint64(c.Gates[fo].Delay), fo})
		}
	}
	steps := 0
	for len(heapEv) > 0 {
		e := pop()
		g := c.Gates[e.gate]
		in := make([]uint64, len(g.In))
		for j, f := range g.In {
			in[j] = vals[f]
		}
		nv := EvalGate(g.Type, in...)
		if nv != vals[e.gate] {
			vals[e.gate] = nv
			for _, fo := range c.Fanout[e.gate] {
				push(ev{e.t + uint64(c.Gates[fo].Delay), fo})
			}
		}
		if steps++; steps > 1_000_000 {
			t.Fatal("event sim diverged")
		}
	}
	want := c.TopoEval(inputs)
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("gate %d settled to %d, topo says %d", i, vals[i], want[i])
		}
	}
}
