package rt

import (
	"reflect"
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
)

func testConfig(t *testing.T, cores int, backend string) core.Config {
	t.Helper()
	cfg := core.DefaultConfig(cores)
	cfg.Backend = backend
	return cfg
}

// runProgram builds a runtime for one function table, enqueues roots,
// and drains a single phase.
func runProgram(t *testing.T, cfg core.Config, fns []guest.TaskFn, names []string, roots []guest.TaskDesc) (*Runtime, core.PhaseStats, error) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.SetProgram(fns, names)
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for _, d := range roots {
		r.EnqueueRootDesc(d)
	}
	ps, err := r.RunPhase()
	return r, ps, err
}

// TestSequentialSemantics runs a program whose result depends on task
// order — each task multiplies an accumulator by a constant and adds its
// timestamp — so any out-of-order commit produces a different value.
func TestSequentialSemantics(t *testing.T) {
	const acc = uint64(1 << 12)
	const n = 200
	body := func(e guest.TaskEnv) {
		e.Store(acc, e.Load(acc)*3+e.Timestamp())
	}
	want := uint64(0)
	for ts := uint64(1); ts <= n; ts++ {
		want = want*3 + ts
	}
	for _, backend := range []string{"rt", "rt-conservative"} {
		for _, cores := range []int{1, 4, 16} {
			cfg := testConfig(t, cores, backend)
			var roots []guest.TaskDesc
			// Enqueue in a scrambled order; virtual time must still
			// serialize by timestamp.
			for i := 0; i < n; i++ {
				ts := uint64((i*7)%n + 1)
				roots = append(roots, guest.TaskDesc{Fn: 0, TS: ts})
			}
			r, ps, err := runProgram(t, cfg, []guest.TaskFn{body}, []string{"mul"}, roots)
			if err != nil {
				t.Fatalf("%s/%d: RunPhase: %v", backend, cores, err)
			}
			if got := r.Mem().Load(acc); got != want {
				t.Errorf("%s/%d: acc = %d, want %d", backend, cores, got, want)
			}
			if ps.Commits < n {
				t.Errorf("%s/%d: commits = %d, want >= %d", backend, cores, ps.Commits, n)
			}
			st := r.Snapshot()
			if st.Backend != backend {
				t.Errorf("Stats.Backend = %q, want %q", st.Backend, backend)
			}
			if st.Cycles != 0 {
				t.Errorf("%s: native Stats.Cycles = %d, want 0", backend, st.Cycles)
			}
			if st.WallNS == 0 {
				t.Errorf("%s: native Stats.WallNS = 0, want measured time", backend)
			}
		}
	}
}

// TestChildTasks checks commit-time child enqueue across generations: a
// chain of tasks each spawning its successor, walking a counter.
func TestChildTasks(t *testing.T) {
	const cell = uint64(1 << 12)
	const depth = 500
	body := func(e guest.TaskEnv) {
		v := e.Load(cell)
		e.Store(cell, v+1)
		if v+1 < depth {
			e.Enqueue(0, e.Timestamp()+1)
		}
	}
	for _, backend := range []string{"rt", "rt-conservative"} {
		cfg := testConfig(t, 8, backend)
		r, ps, err := runProgram(t, cfg, []guest.TaskFn{body}, []string{"chain"},
			[]guest.TaskDesc{{Fn: 0, TS: 0}})
		if err != nil {
			t.Fatalf("%s: RunPhase: %v", backend, err)
		}
		if got := r.Mem().Load(cell); got != depth {
			t.Errorf("%s: cell = %d, want %d", backend, got, depth)
		}
		// The root was enqueued before the phase began; the phase's own
		// enqueues are the depth-1 commit-time children.
		if ps.Enqueues != depth-1 {
			t.Errorf("%s: enqueues = %d, want %d", backend, ps.Enqueues, depth-1)
		}
	}
}

// TestDeterministicFinalMemory requires bit-identical final memory
// across core counts and repeated runs: the commit order is a pure
// function of the program, never of worker interleaving.
func TestDeterministicFinalMemory(t *testing.T) {
	build := func() ([]guest.TaskFn, []guest.TaskDesc) {
		const base = uint64(1 << 12)
		body := func(e guest.TaskEnv) {
			slot := base + (e.Arg(0)%64)*8
			e.Store(slot, e.Load(slot)*7+e.Timestamp()+e.Arg(0))
			if e.Arg(0) < 3 {
				e.Enqueue(0, e.Timestamp()+e.Arg(0)+1, e.Arg(0)+100)
			}
		}
		var roots []guest.TaskDesc
		for i := uint64(0); i < 300; i++ {
			roots = append(roots, guest.TaskDesc{Fn: 0, TS: i % 17, Args: [3]uint64{i}})
		}
		return []guest.TaskFn{body}, roots
	}
	var want map[uint64]uint64
	for _, cores := range []int{1, 4, 16, 16} {
		fns, roots := build()
		r, _, err := runProgram(t, testConfig(t, cores, "rt"), fns, []string{"mix"}, roots)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		snap := r.Mem().Snapshot()
		if want == nil {
			want = snap
			continue
		}
		if !reflect.DeepEqual(snap, want) {
			t.Fatalf("cores=%d: final memory differs from 1-core run", cores)
		}
	}
}

// TestContendedCounter hammers one word from many same-timestamp tasks:
// conflicts must resolve by abort/retry with no lost updates.
func TestContendedCounter(t *testing.T) {
	const cell = uint64(1 << 12)
	const n = 400
	body := func(e guest.TaskEnv) {
		e.Store(cell, e.Load(cell)+1)
	}
	cfg := testConfig(t, 16, "rt")
	var roots []guest.TaskDesc
	for i := 0; i < n; i++ {
		roots = append(roots, guest.TaskDesc{Fn: 0, TS: 1})
	}
	r, _, err := runProgram(t, cfg, []guest.TaskFn{body}, []string{"inc"}, roots)
	if err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	if got := r.Mem().Load(cell); got != n {
		t.Errorf("cell = %d, want %d (lost updates)", got, n)
	}
	st := r.Snapshot()
	if st.Aborts != st.Retries {
		t.Errorf("aborts (%d) != retries (%d): every abort must requeue", st.Aborts, st.Retries)
	}
}

// TestMultiPhase exercises the session surface: memory edits and fresh
// roots between phases, with per-phase counter deltas.
func TestMultiPhase(t *testing.T) {
	const cell = uint64(1 << 12)
	body := func(e guest.TaskEnv) {
		e.Store(cell, e.Load(cell)+e.Arg(0))
	}
	r, err := New(testConfig(t, 4, "rt"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.SetProgram([]guest.TaskFn{body}, []string{"add"})
	if _, err := r.RunPhase(); err == nil || !strings.Contains(err.Error(), "RunPhase before Start") {
		t.Fatalf("RunPhase before Start: err = %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.Start(); err == nil {
		t.Fatal("second Start succeeded, want error")
	}
	total := uint64(0)
	for phase := 1; phase <= 3; phase++ {
		add := uint64(phase * 10)
		r.EnqueueRootDesc(guest.TaskDesc{Fn: 0, TS: 0, Args: [3]uint64{add}})
		if got := r.QueuedTasks(); got != 1 {
			t.Fatalf("phase %d: QueuedTasks = %d, want 1", phase, got)
		}
		ps, err := r.RunPhase()
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		total += add
		if ps.Phase != phase || ps.Commits != 1 {
			t.Errorf("phase %d: got Phase=%d Commits=%d", phase, ps.Phase, ps.Commits)
		}
		if got := r.Mem().Load(cell); got != total {
			t.Errorf("phase %d: cell = %d, want %d", phase, got, total)
		}
		if !r.Quiesced() {
			t.Errorf("phase %d: not quiesced after RunPhase", phase)
		}
	}
	st := r.Snapshot()
	if st.Commits != 3 {
		t.Errorf("cumulative commits = %d, want 3", st.Commits)
	}
}

// TestAllocFree exercises in-task allocation and commit-time free.
func TestAllocFree(t *testing.T) {
	const out = uint64(1 << 12)
	body := func(e guest.TaskEnv) {
		a := e.Alloc(64)
		e.Store(a, 41)
		e.Store(out, e.Load(a)+1)
		e.Free(a, 64)
	}
	r, _, err := runProgram(t, testConfig(t, 4, "rt"),
		[]guest.TaskFn{body}, []string{"scratch"}, []guest.TaskDesc{{Fn: 0, TS: 0}})
	if err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	if got := r.Mem().Load(out); got != 42 {
		t.Errorf("out = %d, want 42", got)
	}
}

// TestSetupAllocFree checks the setup-time allocator surface used by
// Build functions: line alignment and immediate reuse after free.
func TestSetupAllocFree(t *testing.T) {
	r, err := New(testConfig(t, 4, "rt"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a := r.SetupAlloc(100)
	if a%64 != 0 {
		t.Errorf("SetupAlloc not line aligned: %#x", a)
	}
	// Setup allocations round to whole lines; freeing the rounded span
	// makes it immediately reusable (no quarantine outside tasks).
	r.SetupFree(a, 128)
	b := r.SetupAlloc(100)
	if b != a {
		t.Errorf("freed setup region not reused: got %#x, want %#x", b, a)
	}
}

// TestImpureTaskDetected is the DebugChecks divergence check: a task
// whose writes depend on captured host state (not guest memory) commits
// differently on re-execution and must be reported, not silently
// committed.
func TestImpureTaskDetected(t *testing.T) {
	hostCounter := uint64(0)
	impure := func(e guest.TaskEnv) {
		hostCounter++ // host state: invisible to versioned memory
		e.Store(1<<12, hostCounter)
	}
	cfg := testConfig(t, 4, "rt")
	cfg.DebugChecks = true
	_, _, err := runProgram(t, cfg, []guest.TaskFn{impure}, []string{"impure"},
		[]guest.TaskDesc{{Fn: 0, TS: 0}})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("impure task: err = %v, want divergence error naming the task", err)
	}
	if err != nil && !strings.Contains(err.Error(), "impure") {
		t.Errorf("divergence error should name the task: %v", err)
	}
}

// TestPureTaskPassesDebugChecks: the divergence check must not flag a
// pure program, including one with real conflicts and retries.
func TestPureTaskPassesDebugChecks(t *testing.T) {
	const cell = uint64(1 << 12)
	body := func(e guest.TaskEnv) {
		e.Store(cell, e.Load(cell)+1)
	}
	cfg := testConfig(t, 16, "rt")
	cfg.DebugChecks = true
	var roots []guest.TaskDesc
	for i := 0; i < 200; i++ {
		roots = append(roots, guest.TaskDesc{Fn: 0, TS: 1})
	}
	r, _, err := runProgram(t, cfg, []guest.TaskFn{body}, []string{"inc"}, roots)
	if err != nil {
		t.Fatalf("pure contended program flagged: %v", err)
	}
	if got := r.Mem().Load(cell); got != 200 {
		t.Errorf("cell = %d, want 200", got)
	}
}

// TestRunawayTaskReported: a task that loops forever on consistent reads
// trips the op cap and surfaces as an error instead of hanging the run.
func TestRunawayTaskReported(t *testing.T) {
	if testing.Short() {
		t.Skip("spins ~16M guest ops")
	}
	runaway := func(e guest.TaskEnv) {
		for {
			e.Work(1 << 16)
		}
	}
	_, _, err := runProgram(t, testConfig(t, 4, "rt"),
		[]guest.TaskFn{runaway}, []string{"spin"}, []guest.TaskDesc{{Fn: 0, TS: 0}})
	if err == nil || !strings.Contains(err.Error(), "infinite loop") {
		t.Fatalf("runaway task: err = %v, want op-cap error", err)
	}
}

// TestChildTimestampOrder: enqueuing a child before its parent's
// timestamp must panic with the guest package's message, matching the
// simulator's task-environment contract.
func TestChildTimestampOrder(t *testing.T) {
	bad := func(e guest.TaskEnv) {
		e.Enqueue(0, e.Timestamp()-1)
	}
	defer func() {
		v := recover()
		s, ok := v.(string)
		if !ok || !strings.Contains(s, "before parent") {
			t.Fatalf("recovered %v, want child-timestamp panic", v)
		}
	}()
	// Single worker so the panic propagates on this goroutine's stack is
	// not guaranteed; run the body directly against an env instead.
	r, err := New(testConfig(t, 1, "rt"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	env := newTaskEnv(r, guest.TaskDesc{Fn: 0, TS: 5})
	bad(env)
}

// TestConservativeNoCrossTimestampSpeculation: under rt-conservative,
// tasks at distinct timestamps never conflict (each wave drains before
// the next starts), so a cross-timestamp-only contention pattern must
// finish with zero aborts.
func TestConservativeNoCrossTimestampSpeculation(t *testing.T) {
	const cell = uint64(1 << 12)
	body := func(e guest.TaskEnv) {
		e.Store(cell, e.Load(cell)+1)
	}
	cfg := testConfig(t, 16, "rt-conservative")
	var roots []guest.TaskDesc
	for i := 0; i < 100; i++ {
		roots = append(roots, guest.TaskDesc{Fn: 0, TS: uint64(i)}) // distinct timestamps
	}
	r, _, err := runProgram(t, cfg, []guest.TaskFn{body}, []string{"inc"}, roots)
	if err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	if got := r.Mem().Load(cell); got != 100 {
		t.Errorf("cell = %d, want 100", got)
	}
	if st := r.Snapshot(); st.Aborts != 0 {
		t.Errorf("conservative mode aborted %d times on cross-timestamp-only contention", st.Aborts)
	}
}

// TestInvalidBackendConfig: rt.New refuses non-native and malformed
// configurations with the shared config validation error.
func TestInvalidBackendConfig(t *testing.T) {
	cfg := core.DefaultConfig(4)
	cfg.Backend = "sim"
	if _, err := New(cfg); err == nil {
		t.Error("New with sim backend succeeded, want error")
	}
	cfg.Backend = "turbo"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("New with bogus backend: err = %v, want unknown-backend", err)
	}
	bad := core.DefaultConfig(4)
	bad.Backend = "rt"
	bad.Tiles = 0
	if _, err := New(bad); err == nil {
		t.Error("New with zero tiles succeeded, want error")
	}
}

// TestRepeatableReads: a task that reads the same word twice must see
// one value even if a concurrent commit lands between the loads. The
// read cache makes this structural, so just pin the single-task view.
func TestRepeatableReads(t *testing.T) {
	const cell = uint64(1 << 12)
	body := func(e guest.TaskEnv) {
		a := e.Load(cell)
		b := e.Load(cell)
		if a != b {
			panic("non-repeatable read")
		}
		e.Store(cell, a+1)
	}
	cfg := testConfig(t, 16, "rt")
	var roots []guest.TaskDesc
	for i := 0; i < 200; i++ {
		roots = append(roots, guest.TaskDesc{Fn: 0, TS: 1})
	}
	r, _, err := runProgram(t, cfg, []guest.TaskFn{body}, []string{"rr"}, roots)
	if err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	if got := r.Mem().Load(cell); got != 200 {
		t.Errorf("cell = %d, want 200", got)
	}
}

// TestHintedEnqueue runs a program whose children carry spatial hints.
// The native scheduler places work by virtual time only, so the hint
// must be carried without changing semantics: same final memory and
// counts as the unhinted twin, and Phase advances per completed phase.
func TestHintedEnqueue(t *testing.T) {
	const cell = uint64(1 << 12)
	const fanout = 50
	root := func(e guest.TaskEnv) {
		for i := uint64(0); i < fanout; i++ {
			e.EnqueueHinted(1, e.Timestamp()+1+i, i%4, [3]uint64{i, 0, 0})
		}
	}
	leaf := func(e guest.TaskEnv) {
		e.Store(cell+8*e.Arg(0), e.Arg(0)+1)
	}
	for _, backend := range []string{"rt", "rt-conservative"} {
		cfg := testConfig(t, 4, backend)
		r, ps, err := runProgram(t, cfg, []guest.TaskFn{root, leaf}, []string{"root", "leaf"},
			[]guest.TaskDesc{{Fn: 0, TS: 0}})
		if err != nil {
			t.Fatalf("%s: RunPhase: %v", backend, err)
		}
		if ps.Commits != fanout+1 {
			t.Errorf("%s: commits = %d, want %d", backend, ps.Commits, fanout+1)
		}
		for i := uint64(0); i < fanout; i++ {
			if got := r.Mem().Load(cell + 8*i); got != i+1 {
				t.Fatalf("%s: word %d = %d, want %d", backend, i, got, i+1)
			}
		}
		if got := r.Phase(); got != 1 {
			t.Errorf("%s: Phase() = %d after one phase, want 1", backend, got)
		}
	}
}
