package rt

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/guest"
)

// opCap bounds the operations one task attempt may issue. Inconsistent
// speculative reads (a task observing words from two different commits)
// can send pure guest code into a loop that committed state would never
// produce; the cap converts the loop into an abort. The budget is far
// above any legitimate task (the suite's tasks issue tens of operations;
// serial-grade bodies run millions), so tripping it from a *valid* read
// set is reported as a genuine runaway instead of retried forever.
const opCap = 1 << 24

// opCapPanic is the sentinel thrown when a task attempt exhausts opCap.
type opCapPanic struct{}

// readRec is one read-set entry: the first value and version a task
// observed at an address. Later loads of the same address return the
// cached value, so a task can never see two versions of one word
// (repeatable reads); cross-address inconsistency is caught by commit
// validation, the panic path, or the op cap.
type readRec struct {
	val, ver uint64
}

// taskEnv implements guest.TaskEnv for one task attempt: reads come from
// the committed store (recorded in the read set), writes and child
// enqueues stay buffered until commit. The DebugChecks commit-time
// re-execution uses a second, fresh taskEnv and compares the buffered
// write/child sets for divergence. A taskEnv lives on one worker
// goroutine; nothing here locks beyond the store's shard read-locks.
type taskEnv struct {
	r    *Runtime
	desc guest.TaskDesc

	reads    map[uint64]readRec
	writes   map[uint64]uint64
	order    []uint64 // write addresses in first-write order (determinism)
	children []guest.TaskDesc
	frees    []span
	ops      uint64
	forks    uint64 // fork indices handed out by this attempt
	allocd   bool   // the attempt called Alloc (see Runtime.recheckLocked)
}

type span struct {
	addr, n uint64
}

func newTaskEnv(r *Runtime, desc guest.TaskDesc) *taskEnv {
	return &taskEnv{
		r:      r,
		desc:   desc,
		reads:  make(map[uint64]readRec),
		writes: make(map[uint64]uint64),
	}
}

func (e *taskEnv) step(n uint64) {
	e.ops += n
	if e.ops > opCap {
		panic(opCapPanic{})
	}
}

// Load implements guest.Env: read-own-writes, then the read cache, then
// the committed store (recording the observed version).
func (e *taskEnv) Load(addr uint64) uint64 {
	e.step(1)
	if v, ok := e.writes[addr]; ok {
		return v
	}
	if r, ok := e.reads[addr]; ok {
		return r.val
	}
	val, ver := e.r.store.read(addr)
	e.reads[addr] = readRec{val: val, ver: ver}
	return val
}

// Store implements guest.Env: buffered until commit.
func (e *taskEnv) Store(addr, val uint64) {
	e.step(1)
	if _, ok := e.writes[addr]; !ok {
		e.order = append(e.order, addr)
	}
	e.writes[addr] = val
}

// Work implements guest.Env. The native runtime executes for real, so
// modeled compute cycles cost nothing here; they still count against the
// op cap so a loop spinning on Work alone cannot livelock an attempt.
func (e *taskEnv) Work(n uint64) { e.step(n) }

// Alloc implements guest.Env. Allocation is shared mutable host state,
// so it is mutex-guarded; an aborted attempt leaks its allocations (the
// idealized allocator never reuses a speculatively handed-out region, so
// the leak is benign). Note that in-task allocation makes addresses
// depend on speculative interleaving — none of the suite's Swarm task
// bodies allocate (layout happens in Build), and programs that want
// backend-identical final memory must keep it that way.
func (e *taskEnv) Alloc(n uint64) uint64 {
	e.step(1)
	e.allocd = true
	e.r.heapMu.Lock()
	defer e.r.heapMu.Unlock()
	return e.r.heap.Alloc(n)
}

// Free implements guest.Env: deferred to commit, as the task-aware
// allocator requires (speculatively freed memory is never reused).
func (e *taskEnv) Free(addr, n uint64) {
	e.step(1)
	e.frees = append(e.frees, span{addr: addr, n: n})
}

// Timestamp implements guest.TaskEnv.
func (e *taskEnv) Timestamp() uint64 { return e.desc.TS }

// Arg implements guest.TaskEnv.
func (e *taskEnv) Arg(i int) uint64 { return e.desc.Args[i] }

// Enqueue implements guest.TaskEnv.
func (e *taskEnv) Enqueue(fn guest.FnID, ts uint64, args ...uint64) {
	var a [3]uint64
	if len(args) > len(a) {
		panic("guest: task descriptors hold at most 3 argument words; allocate memory for more (§4.1)")
	}
	copy(a[:], args)
	e.EnqueueArgs(fn, ts, a)
}

// EnqueueArgs implements guest.TaskEnv: children are buffered and become
// runnable only when the parent commits, so a misspeculated parent's
// children never exist and aborts cannot cascade. Children inherit the
// parent's nested path, keeping them inside its slice of the slot.
func (e *taskEnv) EnqueueArgs(fn guest.FnID, ts uint64, args [3]uint64) {
	if ts < e.desc.TS {
		panic(fmt.Sprintf("guest: child timestamp %d before parent %d", ts, e.desc.TS))
	}
	e.step(1)
	e.children = append(e.children, guest.TaskDesc{Fn: fn, TS: ts, Path: e.desc.Path, Args: args})
}

// EnqueueHinted implements guest.TaskEnv. Spatial hints steer the
// simulator's tile mappers; the native scheduler places work by virtual
// time only, so the hint is carried but unused.
func (e *taskEnv) EnqueueHinted(fn guest.FnID, ts uint64, hint uint64, args [3]uint64) {
	if ts < e.desc.TS {
		panic(fmt.Sprintf("guest: child timestamp %d before parent %d", ts, e.desc.TS))
	}
	e.step(1)
	e.children = append(e.children, guest.TaskDesc{Fn: fn, TS: ts, Path: e.desc.Path, Args: args}.WithHint(hint))
}

// Fork implements guest.TaskEnv: a child ordered within the parent's
// timestamp slot, after previously forked siblings.
func (e *taskEnv) Fork(fn guest.FnID, args ...uint64) {
	var a [3]uint64
	if len(args) > len(a) {
		panic("guest: task descriptors hold at most 3 argument words; allocate memory for more (§4.1)")
	}
	copy(a[:], args)
	e.EnqueueSub(fn, guest.NoHint, a)
}

// EnqueueSub implements guest.TaskEnv. Fork indices restart at zero on
// every attempt (each attempt runs on a fresh taskEnv), so a retried
// task buffers an identical child set — which the DebugChecks
// re-execution comparison requires.
func (e *taskEnv) EnqueueSub(fn guest.FnID, hint uint64, args [3]uint64) {
	e.step(1)
	d := guest.TaskDesc{Fn: fn, TS: e.desc.TS, Path: e.desc.Path.Child(e.forks), Args: args}
	e.forks++
	if hint != guest.NoHint {
		d = d.WithHint(hint)
	}
	e.children = append(e.children, d)
}
