package rt

import (
	"sync"

	"github.com/swarm-sim/swarm/internal/mem"
)

// The versioned store is the runtime's speculative memory system. The
// base mem.Memory is frozen for the duration of a phase (workers read it
// through the mutation-free Peek), and every word committed during the
// phase lives in a sharded overlay of (value, version) pairs. Tasks
// execute against committed state only — speculative writes stay in the
// task's private write buffer until its commit — so the overlay is the
// runtime's single point of cross-task communication:
//
//   - a speculative read returns the overlay word (or the frozen base
//     word at implicit version 0) and records the version it observed;
//   - commit-time validation re-reads the versions of every address in
//     the task's read set; any bump means a conflicting commit slipped
//     between the read and the commit, and the task aborts and retries
//     (optimistic concurrency control with a write buffer, after Saad et
//     al.'s ordered transaction processing);
//   - a committed write bumps the word's version under the shard lock.
//
// At quiescence the overlay is flushed into the base memory, so between
// phases (and after the run) guest memory reads exactly like the
// simulator's committed state.
type store struct {
	base   *mem.Memory
	shards [storeShards]storeShard
}

// storeShards spreads word locks; addresses hash by word index, so
// adjacent words land on different shards and hot lines do not serialize
// the whole machine.
const storeShards = 64

type storeShard struct {
	mu    sync.RWMutex
	words map[uint64]vword
}

// vword is one committed overlay word: its value and the count of
// commits that wrote it this phase (version 0 = untouched base word).
type vword struct {
	val, ver uint64
}

func newStore(base *mem.Memory) *store {
	s := &store{base: base}
	for i := range s.shards {
		s.shards[i].words = make(map[uint64]vword)
	}
	return s
}

func (s *store) shard(addr uint64) *storeShard {
	return &s.shards[(addr>>mem.WordShift)%storeShards]
}

// read returns the committed word at addr and the version the caller
// observed. Safe for concurrent readers at any time.
func (s *store) read(addr uint64) (val, ver uint64) {
	sh := s.shard(addr)
	sh.mu.RLock()
	w, ok := sh.words[addr]
	sh.mu.RUnlock()
	if ok {
		return w.val, w.ver
	}
	return s.base.Peek(addr), 0
}

// version returns the current version of addr (0 = untouched base word).
func (s *store) version(addr uint64) uint64 {
	sh := s.shard(addr)
	sh.mu.RLock()
	w := sh.words[addr]
	sh.mu.RUnlock()
	return w.ver
}

// commitWrite publishes one committed word, bumping its version. Callers
// serialize commits (the scheduler lock), so two commitWrites never race;
// the shard lock orders them against concurrent speculative readers.
func (s *store) commitWrite(addr, val uint64) {
	sh := s.shard(addr)
	sh.mu.Lock()
	w := sh.words[addr]
	sh.words[addr] = vword{val: val, ver: w.ver + 1}
	sh.mu.Unlock()
}

// flush folds the overlay into the base memory and resets it: the
// end-of-phase step that makes committed state visible to setup-cost
// memory access. Single-threaded — every worker has joined.
func (s *store) flush() {
	for i := range s.shards {
		sh := &s.shards[i]
		for addr, w := range sh.words {
			s.base.Store(addr, w.val)
		}
		sh.words = make(map[uint64]vword)
	}
}
