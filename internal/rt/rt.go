// Package rt is swarm-rt: a native execution backend that runs Swarm
// guest programs speculatively on host goroutines instead of simulating
// them cycle by cycle. It keeps the paper's execution model — tiny
// timestamped tasks, optimistic out-of-order execution, strictly
// timestamp-ordered commits (§3) — but trades the simulator's modeled
// microarchitecture for a software runtime in the style of ordered
// software transactions (Saad et al.): per-word versioned committed
// state, per-attempt read sets and write buffers, commit-time
// validation, abort-and-retry on conflict. Because commits serialize in
// a deterministic virtual-time order and children take their sequence
// numbers at the parent's commit, the final guest memory is independent
// of worker interleaving and must equal the simulator's committed state
// for pure task bodies — the property the backend differential tests
// pin down.
//
// What rt reports differs from the simulator where the engines differ:
// there is no simulated clock, so Stats.Cycles stays zero and
// Stats.WallNS carries measured host time; Stats.Retries counts
// re-executions after aborts. Counter semantics shared by both engines
// (Commits, Aborts, Enqueues, Dequeues) keep their meanings.
//
// The conservative variant ("rt-conservative") uses the same machinery
// but only dispatches tasks at the minimum uncommitted timestamp, the
// classic conservative ordered schedule: no cross-timestamp speculation,
// aborts only from same-timestamp conflicts.
package rt

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
)

// errGuestPanic poisons a phase whose worker is about to re-panic with a
// genuine guest panic; peers that observe the error stop cleanly while
// the panicking worker unwinds the process.
var errGuestPanic = errors.New("rt: guest task panicked")

// Runtime executes one Swarm guest program natively. It presents the
// same phased-machine surface as core.Machine (Start, RunPhase,
// EnqueueRootDesc, Snapshot, ...) so the backend layer can swap the two.
// Like the machine it is single-use: one program, one run to completion,
// phase by phase.
type Runtime struct {
	cfg  core.Config
	name string

	base   *mem.Memory
	heap   *mem.Allocator
	heapMu sync.Mutex
	store  *store
	sched  *sched

	fns     []guest.TaskFn
	fnNames []string

	started bool
	running bool
	phase   int
	wallNS  uint64
}

// New builds a native runtime for cfg. cfg.Backend selects the variant
// ("rt" or "rt-conservative"); cfg.Cores() bounds worker parallelism;
// cfg.DebugChecks enables the commit-time purity re-execution check.
func New(cfg core.Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := cfg.Backend
	if name != "rt" && name != "rt-conservative" {
		return nil, fmt.Errorf("rt: config backend %q is not a native runtime", cfg.Backend)
	}
	r := &Runtime{
		cfg:  cfg,
		name: name,
		base: mem.New(),
		heap: mem.NewAllocator(),
	}
	r.store = newStore(r.base)
	r.sched = newSched(r, cfg.Tiles, name == "rt-conservative")
	return r, nil
}

// SetProgram installs the guest function table. Must be called before
// the first RunPhase.
func (r *Runtime) SetProgram(fns []guest.TaskFn, names []string) {
	r.fns = fns
	r.fnNames = names
}

// Mem returns the guest memory. Between phases (and before/after the
// run) it holds exactly the committed state; during a phase it is frozen
// and must not be accessed.
func (r *Runtime) Mem() *mem.Memory { return r.base }

// SetupAlloc carves a line-aligned guest region outside any task, like
// the machine's setup-time allocation.
func (r *Runtime) SetupAlloc(nBytes uint64) uint64 {
	r.heapMu.Lock()
	defer r.heapMu.Unlock()
	return r.heap.AllocLineAligned(nBytes)
}

// SetupFree returns a setup-time region to the allocator immediately (no
// speculation is in flight outside tasks, so no quarantine is needed).
func (r *Runtime) SetupFree(addr, nBytes uint64) {
	r.heapMu.Lock()
	defer r.heapMu.Unlock()
	r.heap.Free(0, addr, nBytes)
	r.heap.ReleaseQuarantine(0)
}

// EnqueueRootDesc queues a root task. Roots take sequence numbers in
// enqueue order, which fixes the deterministic virtual-time total order.
func (r *Runtime) EnqueueRootDesc(d guest.TaskDesc) {
	r.sched.mu.Lock()
	r.sched.enqueueLocked(d)
	r.sched.mu.Unlock()
}

// QueuedTasks returns the number of runnable queued tasks.
func (r *Runtime) QueuedTasks() int {
	r.sched.mu.Lock()
	defer r.sched.mu.Unlock()
	return r.sched.readyN
}

// Start marks the runtime live. It exists for surface parity with the
// machine (which runs guest setup here); the backend layer runs setup
// itself and errors the same way on reuse.
func (r *Runtime) Start() error {
	if r.started {
		return errors.New("rt: runtime already ran")
	}
	r.started = true
	return nil
}

// Quiesced reports whether the runtime is started and between phases.
func (r *Runtime) Quiesced() bool { return r.started && !r.running }

// Phase returns the number of completed phases.
func (r *Runtime) Phase() int { return r.phase }

// RunPhase drains all queued tasks (and their transitive children) to
// quiescence on cfg.Cores() worker goroutines, then folds committed
// state into guest memory and reports the phase.
func (r *Runtime) RunPhase() (core.PhaseStats, error) {
	if !r.started {
		return core.PhaseStats{}, errors.New("rt: RunPhase before Start")
	}
	if r.running {
		return core.PhaseStats{}, errors.New("rt: RunPhase re-entered mid-phase")
	}
	if r.sched.err != nil {
		return core.PhaseStats{}, r.sched.err
	}
	r.running = true
	r.phase++

	s := r.sched
	s.mu.Lock()
	s.done = false
	start := [4]uint64{s.commits, s.aborts, s.enqueues, s.dequeues}
	s.mu.Unlock()

	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Cores(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := s.next()
				if t == nil {
					return
				}
				r.execute(t)
			}
		}()
	}
	wg.Wait()
	wall := uint64(time.Since(t0))
	r.wallNS += wall
	r.running = false

	s.mu.Lock()
	err := s.err
	end := [4]uint64{s.commits, s.aborts, s.enqueues, s.dequeues}
	s.mu.Unlock()
	if err != nil {
		return core.PhaseStats{}, err
	}
	r.store.flush()
	return core.PhaseStats{
		Phase:      r.phase,
		WallNS:     wall,
		Commits:    end[0] - start[0],
		Aborts:     end[1] - start[1],
		Enqueues:   end[2] - start[2],
		Dequeues:   end[3] - start[3],
		Cumulative: r.Snapshot(),
	}, nil
}

// Snapshot returns cumulative run statistics in the shared Stats shape.
// Simulator-only fields (Cycles, cache, NoC, occupancies) stay zero; the
// native metrics are WallNS and Retries.
func (r *Runtime) Snapshot() core.Stats {
	s := r.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.Stats{
		Backend:  r.name,
		Cores:    r.cfg.Cores(),
		Tiles:    r.cfg.Tiles,
		WallNS:   r.wallNS,
		Retries:  s.retries,
		Commits:  s.commits,
		Aborts:   s.aborts,
		Enqueues: s.enqueues,
		Dequeues: s.dequeues,
		Mapper:   r.cfg.Mapper,
	}
}

// execute runs one attempt outside the scheduler lock and routes the
// outcome: normal completion joins the commit queue, a panic goes
// through suspected-misspeculation triage.
func (r *Runtime) execute(t *task) {
	env := newTaskEnv(r, t.desc)
	panicked, pval := r.runBody(t, env)
	if panicked {
		r.sched.handlePanic(t, env, pval)
		return
	}
	r.sched.finish(t, env)
}

// runBody invokes the guest function, capturing any panic.
func (r *Runtime) runBody(t *task, env *taskEnv) (panicked bool, pval any) {
	defer func() {
		if v := recover(); v != nil {
			panicked, pval = true, v
		}
	}()
	r.fns[t.desc.Fn](env)
	return false, nil
}

// recheckLocked is the DebugChecks purity check: re-execute a validated
// task against committed state at its commit point and require the same
// writes, children, and frees. Validation guarantees the re-execution
// observes the values the attempt read, so for a task that is a pure
// function of guest memory the outcomes must match; divergence means the
// body consults state outside guest memory (host globals, captured
// variables, map iteration order) and would behave differently across
// backends. Attempts that called Alloc are skipped — allocation is host
// state by design, so re-running it cannot be compared.
func (r *Runtime) recheckLocked(t *task) error {
	if t.env.allocd {
		return nil
	}
	env := newTaskEnv(r, t.desc)
	panicked, pval := r.runBody(t, env)
	if panicked {
		return r.taskErr(t, "panicked on committed re-execution: %v (impure task body?)", pval)
	}
	if !reflect.DeepEqual(env.writes, t.env.writes) ||
		!reflect.DeepEqual(env.children, t.env.children) ||
		!reflect.DeepEqual(env.frees, t.env.frees) {
		return r.taskErr(t, "diverged on re-execution — task bodies must be pure functions of guest memory")
	}
	return nil
}

// taskErr labels an error with the offending task's name and timestamp.
func (r *Runtime) taskErr(t *task, format string, args ...any) error {
	name := fmt.Sprintf("fn%d", t.desc.Fn)
	if int(t.desc.Fn) < len(r.fnNames) {
		name = r.fnNames[t.desc.Fn]
	}
	return fmt.Errorf("rt: task %s(ts=%d) "+format,
		append([]any{name, t.desc.TS}, args...)...)
}
