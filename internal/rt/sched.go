package rt

import (
	"container/heap"
	"sync"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/tsdom"
)

// vtime is a task's unique virtual time: the guest timestamp ordered
// first, then the nested fork path (tsdom dag order, empty for flat
// tasks), broken by a global creation sequence number — exactly like the
// simulator's (timestamp, path, tiebreaker) virtual time (§4.2). Roots
// take sequence numbers in setup order; children take them at their
// parent's commit. Commits happen strictly in vtime order and children
// inherit sequence numbers from a deterministic commit sequence, so the
// total order — and with it the final guest memory — is independent of
// worker interleaving.
type vtime struct {
	ts   uint64
	path tsdom.Path
	seq  uint64
}

func (a vtime) less(b vtime) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if c := tsdom.Compare(a.path, b.path); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

// task is one schedulable unit. vt is fixed at creation and survives
// aborts; env holds the attempt's read/write/child buffers once the task
// has executed and is sitting in the commit queue.
type task struct {
	desc guest.TaskDesc
	vt   vtime
	env  *taskEnv
}

// taskHeap is a min-heap of tasks by vtime.
type taskHeap []*task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].vt.less(h[j].vt) }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// sched is the software task unit + commit queue: a sharded timestamp-
// ordered ready queue feeding worker goroutines, a running set, and a
// commit queue drained strictly in vtime order. One mutex guards it all;
// tasks execute outside the lock, so the lock only serializes dispatch
// and commit — the runtime's software stand-in for the simulator's
// per-tile task units and GVT-gated commit queues.
type sched struct {
	r  *Runtime
	mu sync.Mutex
	// cond wakes workers when ready work appears, a commit frees the
	// commit queue head, or the phase drains.
	cond *sync.Cond

	// ready holds runnable tasks, sharded by sequence number the way the
	// simulator spreads tasks over tiles; a pop scans the shard heads for
	// the global minimum vtime.
	ready  []taskHeap
	readyN int
	// running is the set of dispatched, not-yet-finished attempts.
	running map[*task]struct{}
	// commitQ holds executed tasks awaiting their turn to validate and
	// commit in vtime order.
	commitQ taskHeap

	// conservative restricts dispatch to tasks at the minimum uncommitted
	// timestamp (level-synchronous waves): no task runs ahead of virtual
	// time, so aborts only come from same-timestamp conflicts.
	conservative bool

	seqCtr uint64
	done   bool
	err    error

	commits, aborts, retries uint64
	enqueues, dequeues       uint64
}

func newSched(r *Runtime, shards int, conservative bool) *sched {
	s := &sched{
		r:            r,
		ready:        make([]taskHeap, shards),
		running:      make(map[*task]struct{}),
		conservative: conservative,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// pushReadyLocked makes a task (new or retried) runnable.
func (s *sched) pushReadyLocked(t *task) {
	t.env = nil
	heap.Push(&s.ready[t.vt.seq%uint64(len(s.ready))], t)
	s.readyN++
}

// enqueueLocked admits a new descriptor, assigning the next sequence
// number. Callers are single-threaded (setup) or hold the commit path's
// serialization (child enqueue at parent commit), so sequence assignment
// is deterministic.
func (s *sched) enqueueLocked(d guest.TaskDesc) {
	s.seqCtr++
	s.enqueues++
	s.pushReadyLocked(&task{desc: d, vt: vtime{ts: d.TS, path: d.Path, seq: s.seqCtr}})
}

// minActiveLocked returns the minimum vtime over ready and running tasks
// — the bound a commit queue head must beat to be certain no earlier
// task can still appear before it.
func (s *sched) minActiveLocked() (vtime, bool) {
	var best vtime
	ok := false
	for i := range s.ready {
		if len(s.ready[i]) > 0 {
			if v := s.ready[i][0].vt; !ok || v.less(best) {
				best, ok = v, true
			}
		}
	}
	for t := range s.running {
		if !ok || t.vt.less(best) {
			best, ok = t.vt, true
		}
	}
	return best, ok
}

// minUncommittedTSLocked returns the smallest guest timestamp among all
// uncommitted tasks: the conservative mode's dispatch frontier. The
// frontier is deliberately timestamp-only — a conservative wave spans a
// whole timestamp slot including its nested fork subtasks, which may run
// concurrently within the wave; the commit queue still retires them in
// full (ts, path, seq) order.
func (s *sched) minUncommittedTSLocked() (uint64, bool) {
	min, ok := s.minActiveLocked()
	ts, any := min.ts, ok
	if s.commitQ.Len() > 0 {
		if h := s.commitQ[0].vt.ts; !any || h < ts {
			ts, any = h, true
		}
	}
	return ts, any
}

// popEligibleLocked dispatches the minimum-vtime ready task, or nil if
// none is runnable. Speculative mode dispatches the global ready minimum
// regardless of what is still uncommitted; conservative mode holds tasks
// back until their timestamp is the minimum uncommitted timestamp.
func (s *sched) popEligibleLocked() *task {
	best := -1
	for i := range s.ready {
		if len(s.ready[i]) == 0 {
			continue
		}
		if best < 0 || s.ready[i][0].vt.less(s.ready[best][0].vt) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	if s.conservative {
		if frontier, ok := s.minUncommittedTSLocked(); ok && s.ready[best][0].vt.ts > frontier {
			return nil
		}
	}
	t := heap.Pop(&s.ready[best]).(*task)
	s.readyN--
	return t
}

// next blocks until it can hand the calling worker a task, or returns
// nil when the phase is drained (or poisoned by err). It also drives the
// commit queue: every wakeup drains whatever has become committable.
func (s *sched) next() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.done {
			return nil
		}
		s.tryCommitsLocked()
		if s.err != nil {
			return nil
		}
		if t := s.popEligibleLocked(); t != nil {
			s.running[t] = struct{}{}
			s.dequeues++
			return t
		}
		if s.readyN == 0 && len(s.running) == 0 && s.commitQ.Len() == 0 {
			s.done = true
			s.cond.Broadcast()
			return nil
		}
		s.cond.Wait()
	}
}

// finish moves an executed attempt to the commit queue and drains any
// newly committable prefix.
func (s *sched) finish(t *task, env *taskEnv) {
	s.mu.Lock()
	delete(s.running, t)
	t.env = env
	heap.Push(&s.commitQ, t)
	s.tryCommitsLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// handlePanic resolves a panic thrown during speculative execution. A
// task that read an inconsistent snapshot can do anything a wrong branch
// allows — index out of range, misaligned address, runaway loop — so a
// panic is first treated as suspected misspeculation: if the read set no
// longer validates, the attempt aborts and retries like any conflict.
// If the reads were consistent the panic is real: an op-cap overrun
// becomes a runtime error (infinite loop in guest code), anything else
// re-panics exactly as it would under the simulator.
func (s *sched) handlePanic(t *task, env *taskEnv, pval any) {
	s.mu.Lock()
	delete(s.running, t)
	if !s.validLocked(env) {
		s.aborts++
		s.retries++
		s.pushReadyLocked(t)
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	if _, capped := pval.(opCapPanic); capped {
		s.failLocked(s.r.taskErr(t, "exceeded %d operations in one attempt — likely an infinite loop", uint64(opCap)))
		s.mu.Unlock()
		return
	}
	s.failLocked(nil) // poison the phase so peers stop before the repanic
	s.mu.Unlock()
	panic(pval)
}

// failLocked poisons the phase with its first error and wakes everyone.
func (s *sched) failLocked(err error) {
	if s.err == nil {
		if err == nil {
			err = errGuestPanic
		}
		s.err = err
	}
	s.cond.Broadcast()
}

// validLocked checks an attempt's read set against current committed
// versions. Commits only happen under s.mu, so the check is stable.
func (s *sched) validLocked(env *taskEnv) bool {
	for addr, rec := range env.reads {
		if s.r.store.version(addr) != rec.ver {
			return false
		}
	}
	return true
}

// tryCommitsLocked drains the committable prefix of the commit queue: a
// task commits only once no ready or running task precedes it in vtime,
// which makes the commit sequence strictly vtime-ordered — the software
// equivalent of GVT-gated commit (§4.2). Validation failures abort and
// requeue the task; since the requeued task now precedes the rest of the
// commit queue, the drain stops and the retry runs first. The minimum-
// vtime uncommitted task can never be invalidated while running (nothing
// may commit under it), so every task eventually commits.
func (s *sched) tryCommitsLocked() {
	for s.commitQ.Len() > 0 && s.err == nil {
		head := s.commitQ[0]
		if min, ok := s.minActiveLocked(); ok && min.less(head.vt) {
			return
		}
		heap.Pop(&s.commitQ)
		if !s.validLocked(head.env) {
			s.aborts++
			s.retries++
			s.pushReadyLocked(head)
			s.cond.Broadcast()
			continue
		}
		if s.r.cfg.DebugChecks {
			if err := s.r.recheckLocked(head); err != nil {
				s.failLocked(err)
				return
			}
		}
		env := head.env
		for _, addr := range env.order {
			s.r.store.commitWrite(addr, env.writes[addr])
		}
		for _, d := range env.children {
			s.enqueueLocked(d)
		}
		if len(env.frees) > 0 {
			s.r.heapMu.Lock()
			for _, f := range env.frees {
				s.r.heap.Free(0, f.addr, f.n)
			}
			s.r.heap.ReleaseQuarantine(0)
			s.r.heapMu.Unlock()
		}
		s.commits++
		s.cond.Broadcast()
	}
}
