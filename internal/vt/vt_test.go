package vt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLexicographicOrder(t *testing.T) {
	cases := []struct {
		a, b Time
		less bool
	}{
		{Time{1, 0, 0}, Time{2, 0, 0}, true},
		{Time{1, 5, 0}, Time{1, 6, 0}, true},
		{Time{1, 5, 1}, Time{1, 5, 2}, true},
		{Time{2, 0, 0}, Time{1, 9, 9}, false},
		{Time{1, 1, 1}, Time{1, 1, 1}, false},
	}
	for _, c := range cases {
		if c.a.Less(c.b) != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, !c.less, c.less)
		}
	}
}

// Property: Less is a strict total order (trichotomy + transitivity on
// random triples).
func TestTotalOrder(t *testing.T) {
	f := func(a, b, c Time) bool {
		// trichotomy
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		if n != 1 {
			return false
		}
		// transitivity
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInfinity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		v := Time{rng.Uint64(), rng.Uint64(), rng.Uint32()}
		if v != Infinity && !v.Less(Infinity) {
			t.Fatalf("%v not < Infinity", v)
		}
	}
	if Infinity.Less(Infinity) {
		t.Fatal("Infinity < Infinity")
	}
}

func TestMinMax(t *testing.T) {
	a, b := Time{1, 2, 3}, Time{1, 2, 4}
	if Min(a, b) != a || Min(b, a) != a || Max(a, b) != b || Max(b, a) != b {
		t.Fatal("Min/Max wrong")
	}
}

func TestSortAgreesWithLess(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := make([]Time, 200)
	for i := range ts {
		ts[i] = Time{uint64(rng.Intn(5)), uint64(rng.Intn(5)), uint32(rng.Intn(5))}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatal("sorted order violates Less")
		}
	}
}
