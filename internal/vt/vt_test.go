package vt

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/swarm-sim/swarm/internal/tsdom"
)

func TestLexicographicOrder(t *testing.T) {
	cases := []struct {
		a, b Time
		less bool
	}{
		{Time{TS: 1}, Time{TS: 2}, true},
		{Time{TS: 1, Cycle: 5}, Time{TS: 1, Cycle: 6}, true},
		{Time{TS: 1, Cycle: 5, Tile: 1}, Time{TS: 1, Cycle: 5, Tile: 2}, true},
		{Time{TS: 2}, Time{TS: 1, Cycle: 9, Tile: 9}, false},
		{Time{TS: 1, Cycle: 1, Tile: 1}, Time{TS: 1, Cycle: 1, Tile: 1}, false},
	}
	for _, c := range cases {
		if c.a.Less(c.b) != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, !c.less, c.less)
		}
	}
}

// TestTieBreaking pins the §4.4 tie-break chain explicitly: equal
// programmer timestamps order by nested path, then dequeue cycle, then
// tile id, and fully equal times are unordered. The commit protocol's
// determinism rests on exactly this chain (same-timestamp tasks
// dispatched in different cycles or on different tiles must still
// totally order).
func TestTieBreaking(t *testing.T) {
	sub0 := tsdom.FromLevels(0)
	sub1 := tsdom.FromLevels(1)
	cases := []struct {
		name string
		a, b Time
		less bool // a.Less(b)
	}{
		// TS dominates everything below it.
		{"ts-beats-cycle", Time{TS: 1, Cycle: 999, Tile: 9}, Time{TS: 2, Cycle: 0, Tile: 0}, true},
		{"ts-beats-tile", Time{TS: 3, Cycle: 0, Tile: 9}, Time{TS: 4, Cycle: 0, Tile: 0}, true},
		{"ts-beats-path", Time{TS: 1, Path: sub1.Child(9), Cycle: 999}, Time{TS: 2}, true},
		// Equal TS: the nested path decides before the cycle.
		{"tie-ts-path-flat-first", Time{TS: 5, Cycle: 999, Tile: 9}, Time{TS: 5, Path: sub0, Cycle: 0}, true},
		{"tie-ts-path-sibling", Time{TS: 5, Path: sub0, Cycle: 999}, Time{TS: 5, Path: sub1, Cycle: 0}, true},
		{"tie-ts-path-subtree", Time{TS: 5, Path: sub0.Child(7).Child(7), Cycle: 999}, Time{TS: 5, Path: sub1}, true},
		{"tie-ts-path-parent-first", Time{TS: 5, Path: sub1, Cycle: 999, Tile: 9}, Time{TS: 5, Path: sub1.Child(0), Cycle: 0}, true},
		// Equal (TS, Path): the dequeue cycle decides.
		{"tie-ts-cycle-lo", Time{TS: 5, Cycle: 10, Tile: 9}, Time{TS: 5, Cycle: 11, Tile: 0}, true},
		{"tie-ts-cycle-hi", Time{TS: 5, Cycle: 11, Tile: 0}, Time{TS: 5, Cycle: 10, Tile: 9}, false},
		{"tie-pathed-cycle", Time{TS: 5, Path: sub0, Cycle: 10, Tile: 9}, Time{TS: 5, Path: sub0, Cycle: 11}, true},
		// Equal (TS, Path, Cycle): the tile id decides (unique because a
		// tile dequeues at most once per cycle).
		{"tie-ts-cycle-tile-lo", Time{TS: 5, Cycle: 10, Tile: 0}, Time{TS: 5, Cycle: 10, Tile: 1}, true},
		{"tie-ts-cycle-tile-hi", Time{TS: 5, Cycle: 10, Tile: 2}, Time{TS: 5, Cycle: 10, Tile: 1}, false},
		// Fully equal: unordered in both directions.
		{"equal", Time{TS: 5, Cycle: 10, Tile: 3}, Time{TS: 5, Cycle: 10, Tile: 3}, false},
		{"equal-pathed", Time{TS: 5, Path: sub1, Cycle: 10, Tile: 3}, Time{TS: 5, Path: sub1, Cycle: 10, Tile: 3}, false},
		// Zero value sorts before any dispatched time.
		{"zero-first", Time{}, Time{TS: 0, Cycle: 1, Tile: 0}, true},
		// Boundary values: max fields still order correctly.
		{"max-cycle", Time{TS: 5, Cycle: ^uint64(0), Tile: 0}, Time{TS: 6, Cycle: 0, Tile: 0}, true},
		{"max-tile", Time{TS: 5, Cycle: 10, Tile: ^uint32(0)}, Time{TS: 5, Cycle: 11, Tile: 0}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Less(c.b); got != c.less {
				t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
			}
			// Cross-check the derived comparators on the same pairs.
			if got := c.a.LessEq(c.b); got != (c.less || c.a == c.b) {
				t.Errorf("%v.LessEq(%v) = %v, want %v", c.a, c.b, got, c.less || c.a == c.b)
			}
			wantCmp := 0
			switch {
			case c.less:
				wantCmp = -1
			case c.a != c.b:
				wantCmp = +1
			}
			if got := Compare(c.a, c.b); got != wantCmp {
				t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, wantCmp)
			}
			wantMin := c.b
			if c.less || c.a == c.b {
				wantMin = c.a // Min prefers its first argument on ties
			}
			if got := Min(c.a, c.b); got != wantMin {
				t.Errorf("Min(%v, %v) = %v, want %v", c.a, c.b, got, wantMin)
			}
			wantMax := c.a
			if c.less {
				wantMax = c.b // Max prefers its first argument on ties
			}
			if got := Max(c.a, c.b); got != wantMax {
				t.Errorf("Max(%v, %v) = %v, want %v", c.a, c.b, got, wantMax)
			}
		})
	}
}

// genTime draws a random Time whose path is a valid packed fork vector,
// biased toward collisions in every field.
func genTime(r *rand.Rand) Time {
	var p tsdom.Path
	for d := r.Intn(4); d > 0; d-- {
		p = p.Child(uint64(r.Intn(3)))
	}
	return Time{
		TS:    uint64(r.Intn(4)),
		Path:  p,
		Cycle: uint64(r.Intn(4)),
		Tile:  uint32(r.Intn(4)),
	}
}

// Property: Less is a strict total order (trichotomy + transitivity on
// random triples), with Compare agreeing throughout.
func TestTotalOrder(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 4000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genTime(r))
			}
		},
	}
	f := func(a, b, c Time) bool {
		// trichotomy
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		if n != 1 {
			return false
		}
		// Compare agrees with Less and equality.
		if (Compare(a, b) < 0) != a.Less(b) || (Compare(a, b) == 0) != (a == b) {
			return false
		}
		// transitivity
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInfinity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		v := Time{TS: rng.Uint64(), Cycle: rng.Uint64(), Tile: rng.Uint32()}
		if v != Infinity && !v.Less(Infinity) {
			t.Fatalf("%v not < Infinity", v)
		}
		// Even deeply pathed times at the same TS stay below Infinity.
		p := genTime(rng)
		p.TS = ^uint64(0)
		if p != Infinity && !p.Less(Infinity) {
			t.Fatalf("pathed %v not < Infinity", p)
		}
	}
	if Infinity.Less(Infinity) {
		t.Fatal("Infinity < Infinity")
	}
}

func TestMinMax(t *testing.T) {
	a, b := Time{TS: 1, Cycle: 2, Tile: 3}, Time{TS: 1, Cycle: 2, Tile: 4}
	if Min(a, b) != a || Min(b, a) != a || Max(a, b) != b || Max(b, a) != b {
		t.Fatal("Min/Max wrong")
	}
	// A pathed time at the same TS loses to the flat one.
	c := Time{TS: 1, Path: tsdom.FromLevels(0)}
	d := Time{TS: 1, Cycle: 99, Tile: 9}
	if Min(c, d) != d || Max(c, d) != c {
		t.Fatal("Min/Max ignore the path")
	}
}

func TestString(t *testing.T) {
	if got := (Time{TS: 1, Cycle: 2, Tile: 3}).String(); got != "(1,2,3)" {
		t.Errorf("flat String = %q", got)
	}
	if got := (Time{TS: 1, Path: tsdom.FromLevels(2, 0), Cycle: 2, Tile: 3}).String(); got != "(1@2.0,2,3)" {
		t.Errorf("pathed String = %q", got)
	}
	if got := Infinity.String(); got != "(inf)" {
		t.Errorf("Infinity String = %q", got)
	}
}

func TestSortAgreesWithLess(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := make([]Time, 200)
	for i := range ts {
		ts[i] = genTime(rng)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatal("sorted order violates Less")
		}
	}
}
