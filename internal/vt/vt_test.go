package vt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLexicographicOrder(t *testing.T) {
	cases := []struct {
		a, b Time
		less bool
	}{
		{Time{1, 0, 0}, Time{2, 0, 0}, true},
		{Time{1, 5, 0}, Time{1, 6, 0}, true},
		{Time{1, 5, 1}, Time{1, 5, 2}, true},
		{Time{2, 0, 0}, Time{1, 9, 9}, false},
		{Time{1, 1, 1}, Time{1, 1, 1}, false},
	}
	for _, c := range cases {
		if c.a.Less(c.b) != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, !c.less, c.less)
		}
	}
}

// TestTieBreaking pins the §4.4 tie-break chain explicitly: equal
// programmer timestamps order by dequeue cycle, equal (TS, Cycle) pairs
// order by tile id, and fully equal times are unordered. The commit
// protocol's determinism rests on exactly this chain (same-timestamp
// tasks dispatched in different cycles or on different tiles must still
// totally order), which until now was only covered indirectly through
// whole-machine runs.
func TestTieBreaking(t *testing.T) {
	cases := []struct {
		name string
		a, b Time
		less bool // a.Less(b)
	}{
		// TS dominates everything below it.
		{"ts-beats-cycle", Time{TS: 1, Cycle: 999, Tile: 9}, Time{TS: 2, Cycle: 0, Tile: 0}, true},
		{"ts-beats-tile", Time{TS: 3, Cycle: 0, Tile: 9}, Time{TS: 4, Cycle: 0, Tile: 0}, true},
		// Equal TS: the dequeue cycle decides.
		{"tie-ts-cycle-lo", Time{TS: 5, Cycle: 10, Tile: 9}, Time{TS: 5, Cycle: 11, Tile: 0}, true},
		{"tie-ts-cycle-hi", Time{TS: 5, Cycle: 11, Tile: 0}, Time{TS: 5, Cycle: 10, Tile: 9}, false},
		// Equal (TS, Cycle): the tile id decides (unique because a tile
		// dequeues at most once per cycle).
		{"tie-ts-cycle-tile-lo", Time{TS: 5, Cycle: 10, Tile: 0}, Time{TS: 5, Cycle: 10, Tile: 1}, true},
		{"tie-ts-cycle-tile-hi", Time{TS: 5, Cycle: 10, Tile: 2}, Time{TS: 5, Cycle: 10, Tile: 1}, false},
		// Fully equal: unordered in both directions.
		{"equal", Time{TS: 5, Cycle: 10, Tile: 3}, Time{TS: 5, Cycle: 10, Tile: 3}, false},
		// Zero value sorts before any dispatched time.
		{"zero-first", Time{}, Time{TS: 0, Cycle: 1, Tile: 0}, true},
		// Boundary values: max fields still order correctly.
		{"max-cycle", Time{TS: 5, Cycle: ^uint64(0), Tile: 0}, Time{TS: 6, Cycle: 0, Tile: 0}, true},
		{"max-tile", Time{TS: 5, Cycle: 10, Tile: ^uint32(0)}, Time{TS: 5, Cycle: 11, Tile: 0}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Less(c.b); got != c.less {
				t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
			}
			// Cross-check the derived comparators on the same pairs.
			if got := c.a.LessEq(c.b); got != (c.less || c.a == c.b) {
				t.Errorf("%v.LessEq(%v) = %v, want %v", c.a, c.b, got, c.less || c.a == c.b)
			}
			wantMin := c.b
			if c.less || c.a == c.b {
				wantMin = c.a // Min prefers its first argument on ties
			}
			if got := Min(c.a, c.b); got != wantMin {
				t.Errorf("Min(%v, %v) = %v, want %v", c.a, c.b, got, wantMin)
			}
			wantMax := c.a
			if c.less {
				wantMax = c.b // Max prefers its first argument on ties
			}
			if got := Max(c.a, c.b); got != wantMax {
				t.Errorf("Max(%v, %v) = %v, want %v", c.a, c.b, got, wantMax)
			}
		})
	}
}

// Property: Less is a strict total order (trichotomy + transitivity on
// random triples).
func TestTotalOrder(t *testing.T) {
	f := func(a, b, c Time) bool {
		// trichotomy
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		if n != 1 {
			return false
		}
		// transitivity
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInfinity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		v := Time{rng.Uint64(), rng.Uint64(), rng.Uint32()}
		if v != Infinity && !v.Less(Infinity) {
			t.Fatalf("%v not < Infinity", v)
		}
	}
	if Infinity.Less(Infinity) {
		t.Fatal("Infinity < Infinity")
	}
}

func TestMinMax(t *testing.T) {
	a, b := Time{1, 2, 3}, Time{1, 2, 4}
	if Min(a, b) != a || Min(b, a) != a || Max(a, b) != b || Max(b, a) != b {
		t.Fatal("Min/Max wrong")
	}
}

func TestSortAgreesWithLess(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := make([]Time, 200)
	for i := range ts {
		ts[i] = Time{uint64(rng.Intn(5)), uint64(rng.Intn(5)), uint32(rng.Intn(5))}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatal("sorted order violates Less")
		}
	}
}
