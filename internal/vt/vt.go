// Package vt defines unique virtual time, the total order Swarm uses for
// conflict resolution and commits (§4.4). A unique virtual time is the
// tuple (programmer timestamp, nested path, dequeue cycle, tile id); the
// (cycle, tile) pair is unique because at most one dequeue per cycle is
// permitted per tile, so virtual times totally order all dispatched tasks.
//
// The nested path orders fork-join subtasks *within* one programmer
// timestamp slot (see internal/tsdom): a flat task carries the empty
// path and compares exactly as the historical (ts, cycle, tile) triple,
// while a forked subtask sorts after its parent and before the parent's
// next sibling, recursively.
package vt

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/tsdom"
)

// Time is a unique virtual time. The zero value sorts before every
// dispatched task's time.
type Time struct {
	TS    uint64     // programmer-assigned timestamp
	Path  tsdom.Path // nested fork path within the timestamp slot ("" = flat)
	Cycle uint64     // dequeue cycle (or bound cycle for idle tasks)
	Tile  uint32     // dispatching tile id
}

// Infinity sorts after every real virtual time. Its path holds a single
// all-ones level so that even a pathed task at TS = 2^64-1 orders before
// it; the one unreachable corner (a task forked with index 2^64-1 at
// that timestamp) is excluded by guests never using the max timestamp.
var Infinity = Time{TS: ^uint64(0), Path: tsdom.Root.Child(^uint64(0)), Cycle: ^uint64(0), Tile: ^uint32(0)}

// Compare returns -1, 0 or +1 as t orders before, equal to, or after u.
// All ad-hoc virtual-time comparisons route through here so the nested
// path can never be silently dropped from the order.
func Compare(t, u Time) int {
	if t.TS != u.TS {
		if t.TS < u.TS {
			return -1
		}
		return +1
	}
	if c := tsdom.Compare(t.Path, u.Path); c != 0 {
		return c
	}
	if t.Cycle != u.Cycle {
		if t.Cycle < u.Cycle {
			return -1
		}
		return +1
	}
	if t.Tile != u.Tile {
		if t.Tile < u.Tile {
			return -1
		}
		return +1
	}
	return 0
}

// Less reports whether t orders strictly before u.
func (t Time) Less(u Time) bool {
	if t.TS != u.TS {
		return t.TS < u.TS
	}
	if c := tsdom.Compare(t.Path, u.Path); c != 0 {
		return c < 0
	}
	if t.Cycle != u.Cycle {
		return t.Cycle < u.Cycle
	}
	return t.Tile < u.Tile
}

// LessEq reports t <= u.
func (t Time) LessEq(u Time) bool { return !u.Less(t) }

// Min returns the smaller of t and u.
func Min(t, u Time) Time {
	if u.Less(t) {
		return u
	}
	return t
}

// Max returns the larger of t and u.
func Max(t, u Time) Time {
	if t.Less(u) {
		return u
	}
	return t
}

func (t Time) String() string {
	if t == Infinity {
		return "(inf)"
	}
	if t.Path.IsRoot() {
		return fmt.Sprintf("(%d,%d,%d)", t.TS, t.Cycle, t.Tile)
	}
	return fmt.Sprintf("(%d@%s,%d,%d)", t.TS, t.Path, t.Cycle, t.Tile)
}
