// Package vt defines unique virtual time, the total order Swarm uses for
// conflict resolution and commits (§4.4). A unique virtual time is the
// 128-bit tuple (programmer timestamp, dequeue cycle, tile id); the
// (cycle, tile) pair is unique because at most one dequeue per cycle is
// permitted per tile, so virtual times totally order all dispatched tasks.
package vt

import "fmt"

// Time is a unique virtual time. The zero value sorts before every
// dispatched task's time.
type Time struct {
	TS    uint64 // programmer-assigned timestamp
	Cycle uint64 // dequeue cycle (or bound cycle for idle tasks)
	Tile  uint32 // dispatching tile id
}

// Infinity sorts after every real virtual time.
var Infinity = Time{TS: ^uint64(0), Cycle: ^uint64(0), Tile: ^uint32(0)}

// Less reports whether t orders strictly before u.
func (t Time) Less(u Time) bool {
	if t.TS != u.TS {
		return t.TS < u.TS
	}
	if t.Cycle != u.Cycle {
		return t.Cycle < u.Cycle
	}
	return t.Tile < u.Tile
}

// LessEq reports t <= u.
func (t Time) LessEq(u Time) bool { return !u.Less(t) }

// Min returns the smaller of t and u.
func Min(t, u Time) Time {
	if u.Less(t) {
		return u
	}
	return t
}

// Max returns the larger of t and u.
func Max(t, u Time) Time {
	if t.Less(u) {
		return u
	}
	return t
}

func (t Time) String() string {
	if t == Infinity {
		return "(inf)"
	}
	return fmt.Sprintf("(%d,%d,%d)", t.TS, t.Cycle, t.Tile)
}
