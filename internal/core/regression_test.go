package core

import (
	"fmt"
	"testing"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/guest"
)

// TestLostUpdateDebug shrinks TestConflictingIncrements and logs every
// execution attempt so we can see which increment is lost and why.
func TestStickyBitRegression(t *testing.T) {
	var counter uint64
	const n = 60
	type attempt struct {
		ts   uint64
		read uint64
	}
	var log []attempt
	cfg := DefaultConfig(16)
	cfg.Bloom = bloom.Config{Precise: true}
	cfg.DebugChecks = true
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				v := e.Load(counter)
				log = append(log, attempt{e.Timestamp(), v})
				e.Store(counter, v+1)
			},
		},
		Setup: func(m *Machine) {
			counter = m.SetupAlloc(8)
			for i := 0; i < n; i++ {
				m.EnqueueRoot(0, uint64(i))
			}
		},
	}
	st, m := runProgram(t, cfg, prog)
	got := m.Mem().Load(counter)
	if got != n {
		// Reconstruct: last attempt per ts in commit order should read
		// exactly its rank.
		last := map[uint64]uint64{}
		for _, a := range log {
			last[a.ts] = a.read
		}
		for ts := uint64(0); ts < n; ts++ {
			if last[ts] != ts {
				t.Logf("ts=%d final read=%d (want %d)", ts, last[ts], ts)
			}
		}
		t.Fatalf("counter=%d want %d commits=%d aborts=%d attempts=%d", got, n, st.Commits, st.Aborts, len(log))
	}
}

var _ = fmt.Sprintf
