package core

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
)

// Golden property tests under adversarial configurations: the same random
// chaos programs as TestGoldenRandomPrograms, but with tiny Bloom filters
// (constant false positives), idealized queues/memory, local enqueues, and
// single-core machines. All must match sequential timestamp-order
// execution exactly.

func goldenConfigVariants() map[string]Config {
	mk := func(tweak func(*Config)) Config {
		cfg := Config{
			Tiles: 2, CoresPerTile: 2,
			TaskQPerCore: 8, CommitQPerCore: 2,
			EnqueueCost: 5, DequeueCost: 5, FinishCost: 5,
			GVTPeriod: 100, TileCheckCost: 5,
			SpillThresholdPct: 75, SpillBatch: 4, SpillCyclesPerTask: 10,
			MaxChildren: 8,
			Bloom:       bloom.Default(),
			HopCycles:   3,
			Seed:        99,
			MaxCycles:   500_000_000,
			DebugChecks: true,
		}
		tweak(&cfg)
		cfg.Cache = cache.DefaultParams(cfg.Tiles, cfg.CoresPerTile)
		if cfg.Cache.ZeroLatency {
			// re-apply after DefaultParams overwrote it
		}
		return cfg
	}
	out := map[string]Config{}
	out["tiny-bloom"] = mk(func(c *Config) {
		// 64-bit 4-way filters: heavy false positives, constant spurious
		// aborts — correctness must be unaffected.
		c.Bloom = bloom.Config{Bits: 64, Ways: 4}
	})
	out["precise"] = mk(func(c *Config) { c.Bloom = bloom.Config{Precise: true} })
	out["unbounded"] = mk(func(c *Config) { c.UnboundedQueues = true })
	out["local-enqueue"] = mk(func(c *Config) { c.LocalEnqueue = true })
	out["single-core"] = mk(func(c *Config) { c.Tiles = 1; c.CoresPerTile = 1 })
	zl := mk(func(c *Config) {})
	zl.Cache.ZeroLatency = true
	out["zero-latency"] = zl
	return out
}

func runGoldenOnce(t *testing.T, name string, cfg Config, seed uint64) {
	t.Helper()
	const poolWords = 48
	var pool uint64
	var roots []guest.TaskDesc
	prog := &Program{
		Fns: []guest.TaskFn{func(e guest.TaskEnv) { chaosTask(seed, pool, poolWords)(e) }},
		Setup: func(m *Machine) {
			pool = m.SetupAlloc(poolWords * 8)
			roots = roots[:0]
			for i := uint64(0); i < 10; i++ {
				d := guest.TaskDesc{Fn: 0, TS: i * 10000, Args: [3]uint64{0}}
				roots = append(roots, d)
				m.EnqueueRootDesc(d)
			}
		},
	}
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("%s seed %d: %v", name, seed, err)
	}
	refMem, refTasks := runReference(func(e guest.TaskEnv) {
		chaosTask(seed, pool, poolWords)(e)
	}, roots, pool)
	if int(st.Commits) != refTasks {
		t.Fatalf("%s seed %d: commits %d != reference %d", name, seed, st.Commits, refTasks)
	}
	for a, v := range refMem {
		if got := m.Mem().Load(a); got != v {
			t.Fatalf("%s seed %d: mem[%#x] = %d, want %d", name, seed, a, got, v)
		}
	}
}

func TestGoldenConfigMatrix(t *testing.T) {
	for name, cfg := range goldenConfigVariants() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			for seed := uint64(20); seed < 26; seed++ {
				runGoldenOnce(t, name, cfg, seed)
			}
		})
	}
}

// TestBloomSizeOnlyAffectsTiming: across signature configurations the
// final memory state is identical; only cycles/aborts differ.
func TestBloomSizeOnlyAffectsTiming(t *testing.T) {
	const poolWords = 32
	build := func() (*Program, *uint64) {
		var pool uint64
		prog := &Program{
			Fns: []guest.TaskFn{func(e guest.TaskEnv) { chaosTask(777, pool, poolWords)(e) }},
			Setup: func(m *Machine) {
				pool = m.SetupAlloc(poolWords * 8)
				for i := uint64(0); i < 12; i++ {
					m.EnqueueRoot(0, i*10000, 0)
				}
			},
		}
		return prog, &pool
	}
	var snapshots []map[uint64]uint64
	var aborts []uint64
	for _, bc := range []bloom.Config{
		{Bits: 64, Ways: 4},
		{Bits: 2048, Ways: 8},
		{Precise: true},
	} {
		cfg := DefaultConfig(8)
		cfg.Bloom = bc
		prog, _ := build()
		m, err := NewMachine(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", bc, err)
		}
		snapshots = append(snapshots, m.Mem().Snapshot())
		aborts = append(aborts, st.Aborts)
	}
	for i := 1; i < len(snapshots); i++ {
		if len(snapshots[i]) != len(snapshots[0]) {
			t.Fatalf("config %d produced different memory footprint", i)
		}
		for a, v := range snapshots[0] {
			if snapshots[i][a] != v {
				t.Fatalf("config %d: mem[%#x] = %d, want %d", i, a, snapshots[i][a], v)
			}
		}
	}
	// Tiny filters should cause at least as many aborts as precise ones.
	if aborts[0] < aborts[2] {
		t.Errorf("64-bit filters aborted less (%d) than precise (%d)?", aborts[0], aborts[2])
	}
	t.Logf("aborts by config: 64b=%d 2048b=%d precise=%d", aborts[0], aborts[1], aborts[2])
}

// TestLocalEnqueueImbalance: the random-placement design choice must show
// up as a measurable load-balance benefit on a fan-out workload (the
// ablation DESIGN.md calls out).
func TestLocalEnqueueImbalance(t *testing.T) {
	build := func() *Program {
		var out uint64
		return &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) { // root chain spawns all work from one tile
					i := e.Arg(0)
					e.Store(out+i*8, e.Timestamp())
					e.Work(60)
					if i < 400 {
						e.Enqueue(0, e.Timestamp()+1, i+1)
					}
				},
			},
			Setup: func(m *Machine) {
				out = m.SetupAlloc(8 * 401)
				m.EnqueueRoot(0, 0, 0)
			},
		}
	}
	// A serial chain cannot show imbalance; use a tree instead.
	buildTree := func() *Program {
		var out uint64
		return &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) {
					i := e.Arg(0)
					e.Store(out+i*8, 1)
					e.Work(100)
					l, r := 2*i+1, 2*i+2
					if l < 511 {
						e.Enqueue(0, e.Timestamp()+1, l)
					}
					if r < 511 {
						e.Enqueue(0, e.Timestamp()+1, r)
					}
				},
			},
			Setup: func(m *Machine) {
				out = m.SetupAlloc(8 * 512)
				m.EnqueueRoot(0, 0, 0)
			},
		}
	}
	_ = build
	random := DefaultConfig(16)
	stR, _ := runProgram(t, random, buildTree())
	local := DefaultConfig(16)
	local.LocalEnqueue = true
	stL, _ := runProgram(t, local, buildTree())
	t.Logf("binary-tree fanout on 16 cores: random placement %d cycles, local placement %d cycles",
		stR.Cycles, stL.Cycles)
	if stR.Cycles >= stL.Cycles {
		t.Errorf("random enqueue placement (%d cycles) should beat local placement (%d): all local work stays on one tile",
			stR.Cycles, stL.Cycles)
	}
}
