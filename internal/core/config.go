// Package core implements the Swarm microarchitecture — the paper's primary
// contribution (§4): per-tile hardware task units (task queue, commit queue,
// order queue), speculative out-of-order task dispatch with unique virtual
// times, eager versioning with undo logs, hierarchical Bloom-filter conflict
// detection, selective aborts, scalable GVT-based ordered commits, and
// coalescer/splitter task spilling for bounded queues.
package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/cache"
)

// Config describes one Swarm machine. DefaultConfig reproduces Table 3.
type Config struct {
	// Tiles and CoresPerTile size the CMP (Fig 2: 16 tiles x 4 cores).
	Tiles        int
	CoresPerTile int

	// TaskQPerCore and CommitQPerCore are hardware queue entries per core
	// (Table 3: 64 and 16; so a 16-tile machine has 4096 and 1024 total).
	TaskQPerCore   int
	CommitQPerCore int

	// UnboundedQueues idealizes away queue capacity (Table 5).
	UnboundedQueues bool

	// Swarm instruction costs (Table 3: 5 cycles each).
	EnqueueCost uint64
	DequeueCost uint64
	FinishCost  uint64

	// GVTPeriod is the cycle interval between GVT updates (Table 3: 200).
	GVTPeriod uint64

	// TileCheckCost is the base cost of a tile conflict check; each
	// virtual-time comparison adds one cycle (Table 3).
	TileCheckCost uint64

	// SpillThresholdPct triggers a coalescer when the task queue passes
	// this occupancy (Table 3: 75%); each coalescer spills up to
	// SpillBatch tasks (Table 3: 15).
	SpillThresholdPct int
	SpillBatch        int

	// SpillCyclesPerTask approximates the coalescer/splitter work to move
	// one descriptor to/from memory (a handful of memory accesses).
	SpillCyclesPerTask uint64

	// MaxChildren is the hardware limit on untracked children (§4.1: 8).
	MaxChildren int

	// Bloom configures conflict-detection signatures (Table 3).
	Bloom bloom.Config

	// Cache configures the memory hierarchy; Tiles/CoresPerTile are
	// copied in. Set Cache.ZeroLatency for Table 5's ideal memory.
	Cache cache.Params

	// HopCycles is the mesh per-hop latency (Table 3: 3).
	HopCycles uint64

	// Seed drives the random tile selection for task enqueues.
	Seed int64

	// Mapper names the task-mapping policy: which tile each enqueued task
	// lands on. "" or "random" is the paper's uniform-random placement
	// (bit-identical to the pre-mapper machine); see MapperNames for the
	// full policy list.
	Mapper string

	// LocalEnqueue is an ablation knob: send children to the parent's own
	// tile instead of a random one. The paper's design uses random
	// enqueues for load balance (§7: "distributed priority queues,
	// load-balanced through random enqueues"); this knob quantifies what
	// that choice buys.
	LocalEnqueue bool

	// MaxCycles aborts the simulation if exceeded (0 = no limit); a
	// safety net against livelock bugs.
	MaxCycles uint64

	// TraceInterval, when non-zero, samples per-tile execution state
	// every so many cycles (Fig 18 uses 500).
	TraceInterval uint64

	// DebugChecks enables expensive internal invariant assertions
	// (commit-order checks); used by the test suite.
	DebugChecks bool

	// SimWorkers shards simulation execution across host goroutines: guest
	// task bodies run ahead on per-tile-group workers and GVT rounds reduce
	// in parallel (see parallel.go). Results are bit-identical for every
	// value — Stats, PhaseStats and committed memory match SimWorkers=1
	// exactly. 0 or 1 selects the plain single-goroutine path.
	SimWorkers int

	// SimPerturb, when non-zero, seeds randomized yield/sleep points in the
	// SimWorkers runtime — the differential suite's adversarial-scheduling
	// mode. It shifts host-side worker timing only and can never change
	// simulation results; 0 (the default) disables it.
	SimPerturb int64

	// Backend names the execution engine that runs the program. "" or
	// "sim" is the cycle-level simulator (this package); "rt" is the
	// native speculative host runtime (internal/rt) and "rt-conservative"
	// its conservative ordered-scheduling mode. The core package itself
	// only executes "sim"; the backend layer (internal/backend) dispatches
	// on this field, and every backend applies the same Validate rules.
	Backend string
}

// BackendNames lists the valid Config.Backend values, default first.
func BackendNames() []string { return []string{"sim", "rt", "rt-conservative"} }

// sortedNames joins a name list alphabetically for error messages (the
// registries themselves stay in semantic order, default first).
func sortedNames(names []string) string {
	s := append([]string(nil), names...)
	sort.Strings(s)
	return strings.Join(s, ", ")
}

// ValidBackend reports whether name selects a known execution backend
// ("" selects the default simulator and is valid).
func ValidBackend(name string) bool {
	if name == "" {
		return true
	}
	for _, b := range BackendNames() {
		if b == name {
			return true
		}
	}
	return false
}

// DefaultConfig returns Table 3's configuration scaled to nCores cores.
// Per-core queue and cache capacities stay constant as the system scales
// (§6.1): machines below 4 cores use a single tile.
func DefaultConfig(nCores int) Config {
	cpt := 4
	if nCores < 4 {
		cpt = nCores
	}
	if nCores%cpt != 0 {
		panic(fmt.Sprintf("core: %d cores not divisible into %d-core tiles", nCores, cpt))
	}
	tiles := nCores / cpt
	return Config{
		Tiles:              tiles,
		CoresPerTile:       cpt,
		TaskQPerCore:       64,
		CommitQPerCore:     16,
		EnqueueCost:        5,
		DequeueCost:        5,
		FinishCost:         5,
		GVTPeriod:          200,
		TileCheckCost:      5,
		SpillThresholdPct:  75,
		SpillBatch:         15,
		SpillCyclesPerTask: 10,
		MaxChildren:        8,
		Bloom:              bloom.Default(),
		Cache:              cache.DefaultParams(tiles, cpt),
		HopCycles:          3,
		Seed:               1,
		Mapper:             "random",
		MaxCycles:          20_000_000_000,
	}
}

// Cores returns the machine's total core count.
func (c Config) Cores() int { return c.Tiles * c.CoresPerTile }

// TaskQPerTile returns the per-tile task queue capacity.
func (c Config) TaskQPerTile() int { return c.TaskQPerCore * c.CoresPerTile }

// CommitQPerTile returns the per-tile commit queue capacity.
func (c Config) CommitQPerTile() int { return c.CommitQPerCore * c.CoresPerTile }

// Validate normalizes and checks the configuration: machine geometry,
// queue capacities, runtime knobs. NewMachine applies it for the
// simulator; non-simulator backends (internal/rt) call it themselves so
// a bad Config is rejected with an identical error on every backend.
func (c *Config) Validate() error { return c.validate() }

func (c *Config) validate() error {
	if c.Tiles <= 0 || c.CoresPerTile <= 0 {
		return fmt.Errorf("core: invalid machine size %dx%d", c.Tiles, c.CoresPerTile)
	}
	if !ValidBackend(c.Backend) {
		return fmt.Errorf("core: unknown backend %q (valid: %s)", c.Backend, sortedNames(BackendNames()))
	}
	if !c.UnboundedQueues {
		if c.TaskQPerTile() < 2*c.SpillBatch {
			return fmt.Errorf("core: task queue (%d/tile) too small for spill batch %d", c.TaskQPerTile(), c.SpillBatch)
		}
		if c.CommitQPerTile() < 1 {
			return fmt.Errorf("core: commit queue must have at least one entry per tile")
		}
	}
	if c.MaxChildren < 1 {
		return fmt.Errorf("core: MaxChildren must be >= 1")
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("core: SimWorkers must be >= 0 (0 or 1 = single-threaded), got %d", c.SimWorkers)
	}
	if c.SimWorkers > 1024 {
		return fmt.Errorf("core: SimWorkers %d exceeds the 1024 sanity limit", c.SimWorkers)
	}
	if c.LocalEnqueue && c.Mapper != "" && c.Mapper != "random" {
		// LocalEnqueue is an ablation of the random policy; under any
		// other mapper it would be silently ignored, so reject the
		// contradictory pair instead.
		return fmt.Errorf("core: LocalEnqueue only applies to the random mapper, not %q", c.Mapper)
	}
	// Keep cache geometry in sync with the machine size.
	c.Cache.Tiles = c.Tiles
	c.Cache.CoresPerTile = c.CoresPerTile
	return nil
}
