package core

import (
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/noc"
)

type internalStats struct {
	commits, aborts    uint64
	dequeues           uint64
	enqueues, nacks    uint64
	overflowed         uint64
	policyAborts       uint64
	spilledTasks       uint64
	stolen             uint64
	bloomChecks        uint64
	vtCompares         uint64
	gvtUpdates         uint64
	tqOccSum, cqOccSum uint64
	occSamples         uint64

	// Per-tile occupancy sums (same sampling points as the aggregates):
	// the mapper diagnostics behind Stats.TileTaskQOcc/TileCommitQOcc.
	tileTqOccSum, tileCqOccSum []uint64
}

// Stats is the result of one Swarm run.
type Stats struct {
	// Backend names the execution engine that produced the run: "sim"
	// for the cycle-level simulator, "rt"/"rt-conservative" for the
	// native host runtime (see BackendNames).
	Backend string

	// Cycles is the end-to-end run time in cycles. Zero under the native
	// backends: they execute on host cores, so there is no simulated
	// clock — WallNS is their time metric.
	Cycles uint64
	Cores  int
	Tiles  int

	// WallNS is host wall-clock nanoseconds of measured execution. Zero
	// under the simulator, whose results must be bit-identical across
	// hosts and host-parallelism levels; the native backends report it
	// in place of Cycles.
	WallNS uint64

	// Retries counts speculative re-executions under the native backends
	// (every abort is followed by a retry of the same task; the simulator
	// tracks the equivalent via Aborts and leaves this zero).
	Retries uint64

	// Events is the number of discrete events the simulation engine fired:
	// the host-side work metric (events/sec is the simulator's throughput).
	Events uint64

	// Task events.
	Commits      uint64
	Aborts       uint64
	Enqueues     uint64
	Dequeues     uint64
	NACKs        uint64 // enqueue rejections (full speculative queues)
	PolicyAborts uint64 // aborts from the §4.7 full-queue policies
	SpilledTasks uint64 // descriptors moved to memory by coalescers

	// Aggregate core-cycle breakdown (Fig 14).
	CommittedCycles uint64 // executing tasks that ultimately commit
	AbortedCycles   uint64 // executing tasks that later abort
	SpillCycles     uint64 // coalescer + splitter work
	StallCycles     uint64 // cores idle or blocked

	// Conflict-detection activity (§6.3).
	BloomChecks uint64
	VTCompares  uint64

	GVTUpdates uint64

	// Average queue occupancies, whole machine (Fig 15).
	AvgTaskQueueOcc   float64
	AvgCommitQueueOcc float64

	// Mapper is the task-mapping policy the machine ran with.
	Mapper string
	// StolenTasks counts idle tasks migrated between tiles by load-aware
	// mappers (the "stealing" policy's GVT-epoch re-leveling).
	StolenTasks uint64
	// TileTaskQOcc and TileCommitQOcc are per-tile average queue
	// occupancies (same sampling as the Avg* aggregates): the placement-
	// skew view a mapper change moves even when the averages stand still.
	TileTaskQOcc   []float64
	TileCommitQOcc []float64
	// TileTrafficBytes is total NoC bytes injected per tile, all classes:
	// the per-tile traffic delta between mappers.
	TileTrafficBytes []uint64

	// NoC injected bytes by class (Fig 16).
	TrafficBytes [noc.NumClasses]uint64

	Cache cache.Stats

	// Trace holds Fig 18-style samples when TraceInterval was set.
	Trace []TraceSample
}

// TotalCoreCycles returns Cycles x Cores: the denominator of Fig 14.
func (s Stats) TotalCoreCycles() uint64 { return s.Cycles * uint64(s.Cores) }

// TrafficGBps returns per-tile average injection in GB/s assuming the 2GHz
// clock of Table 3 (Fig 16's y-axis).
func (s Stats) TrafficGBps(class noc.Class) float64 {
	if s.Cycles == 0 || s.Tiles == 0 {
		return 0
	}
	bytesPerCycle := float64(s.TrafficBytes[class]) / float64(s.Cycles) / float64(s.Tiles)
	return bytesPerCycle * 2 // 2 GHz: cycles/s * 1e9 -> bytes/ns = GB/s
}

// TotalTrafficBytes returns chip-wide injected NoC bytes across all
// message classes.
func (s Stats) TotalTrafficBytes() uint64 {
	var tot uint64
	for _, b := range s.TrafficBytes {
		tot += b
	}
	return tot
}

// TaskQOccImbalance returns the max-over-mean ratio of per-tile task queue
// occupancy: 1.0 is perfectly even placement; large values mean the mapper
// piled queued work onto few tiles. Returns 0 when nothing was sampled.
func (s Stats) TaskQOccImbalance() float64 {
	var sum, max float64
	for _, o := range s.TileTaskQOcc {
		sum += o
		if o > max {
			max = o
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(s.TileTaskQOcc)))
}

func (m *Machine) collectStats() Stats {
	s := Stats{
		Backend:      "sim",
		Cycles:       m.eng.Now(),
		Events:       m.eng.Fired(),
		Cores:        m.cfg.Cores(),
		Tiles:        m.cfg.Tiles,
		Commits:      m.st.commits,
		Aborts:       m.st.aborts,
		Enqueues:     m.st.enqueues,
		Dequeues:     m.st.dequeues,
		NACKs:        m.st.nacks,
		PolicyAborts: m.st.policyAborts,
		SpilledTasks: m.st.spilledTasks,
		BloomChecks:  m.st.bloomChecks,
		VTCompares:   m.st.vtCompares,
		GVTUpdates:   m.st.gvtUpdates,
		Mapper:       m.mapper.name(),
		StolenTasks:  m.st.stolen,
		Cache:        m.hier.Stats(),
		TrafficBytes: m.mesh.TotalBytes(),
	}
	s.TileTaskQOcc = make([]float64, m.cfg.Tiles)
	s.TileCommitQOcc = make([]float64, m.cfg.Tiles)
	s.TileTrafficBytes = make([]uint64, m.cfg.Tiles)
	for i := range m.tiles {
		if m.st.occSamples > 0 {
			s.TileTaskQOcc[i] = float64(m.st.tileTqOccSum[i]) / float64(m.st.occSamples)
			s.TileCommitQOcc[i] = float64(m.st.tileCqOccSum[i]) / float64(m.st.occSamples)
		}
		for _, b := range m.mesh.InjectedBytes(i) {
			s.TileTrafficBytes[i] += b
		}
	}
	for _, c := range m.cores {
		s.CommittedCycles += c.committedCyc
		s.AbortedCycles += c.abortedCyc
		s.SpillCycles += c.wallSpill
	}
	busy := s.CommittedCycles + s.AbortedCycles + s.SpillCycles
	if tot := s.TotalCoreCycles(); tot > busy {
		s.StallCycles = tot - busy
	}
	if m.st.occSamples > 0 {
		s.AvgTaskQueueOcc = float64(m.st.tqOccSum) / float64(m.st.occSamples)
		s.AvgCommitQueueOcc = float64(m.st.cqOccSum) / float64(m.st.occSamples)
	}
	if m.tracer != nil {
		s.Trace = m.tracer.samples
	}
	return s
}

// TraceSample is one Fig 18 sampling interval.
type TraceSample struct {
	Cycle uint64
	Tiles []TileSample
}

// TileSample is the per-tile state over one sampling interval.
type TileSample struct {
	Worker  uint64 // core cycles spent on worker tasks
	Spill   uint64 // core cycles spent on coalescers/splitters
	Stall   uint64 // core cycles idle
	TaskQ   int    // task queue length at sample time
	CommitQ int    // commit queue length at sample time
	Commits uint64
	Aborts  uint64
}

type tracer struct {
	m           *Machine
	samples     []TraceSample
	prevWorker  []uint64
	prevSpill   []uint64
	prevCommits []uint64
	prevAborts  []uint64
	prevCycle   uint64
}

func newTracer(m *Machine) *tracer {
	n := m.cfg.Tiles
	return &tracer{
		m:           m,
		prevWorker:  make([]uint64, n),
		prevSpill:   make([]uint64, n),
		prevCommits: make([]uint64, n),
		prevAborts:  make([]uint64, n),
	}
}

func (tr *tracer) sample() {
	m := tr.m
	now := m.eng.Now()
	interval := now - tr.prevCycle
	ts := TraceSample{Cycle: now, Tiles: make([]TileSample, m.cfg.Tiles)}
	for i, tt := range m.tiles {
		var worker, spill uint64
		base := i * m.cfg.CoresPerTile
		for j := 0; j < m.cfg.CoresPerTile; j++ {
			worker += m.cores[base+j].wallWorker
			spill += m.cores[base+j].wallSpill
		}
		dw := worker - tr.prevWorker[i]
		dsp := spill - tr.prevSpill[i]
		tr.prevWorker[i], tr.prevSpill[i] = worker, spill
		wall := interval * uint64(m.cfg.CoresPerTile)
		var stall uint64
		if wall > dw+dsp {
			stall = wall - dw - dsp
		}
		ts.Tiles[i] = TileSample{
			Worker:  dw,
			Spill:   dsp,
			Stall:   stall,
			TaskQ:   tt.nTasks,
			CommitQ: tt.commitQ.Len(),
			Commits: tt.commitsCount - tr.prevCommits[i],
			Aborts:  tt.abortsCount - tr.prevAborts[i],
		}
		tr.prevCommits[i] = tt.commitsCount
		tr.prevAborts[i] = tt.abortsCount
	}
	tr.prevCycle = now
	tr.samples = append(tr.samples, ts)
	if !m.done {
		m.eng.After(m.cfg.TraceInterval, tr.sample)
	}
}
