package core

import (
	"container/heap"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/sim"
	"github.com/swarm-sim/swarm/internal/vt"
)

// taskState tracks a task through its lifetime (Fig 4 plus two transients:
// FINISHING covers a finished task stalled waiting for a commit queue entry,
// KILLED marks a discarded child of an aborted parent).
type taskState uint8

const (
	taskIdle taskState = iota
	taskRunning
	taskFinishing // finished execution, waiting for a commit queue entry
	taskFinished  // holds a commit queue entry
	taskCommitted
	taskKilled
)

func (s taskState) String() string {
	return [...]string{"idle", "running", "finishing", "finished", "committed", "killed"}[s]
}

// kinds of pseudo-tasks used by the queue-virtualization mechanism (§4.7).
type taskKind uint8

const (
	kindWorker   taskKind = iota
	kindSplitter          // re-enqueues a batch of spilled task descriptors
)

type undoRec struct {
	addr uint64
	old  uint64
}

// vt0 is the zero virtual time (undispatched).
var vt0 vt.Time

// task is one task-queue entry plus all speculative state Swarm associates
// with the task (Fig 6): read/write signatures, undo log and children
// pointers. The entry keeps its identity from creation to commit.
type task struct {
	desc  guest.TaskDesc
	kind  taskKind
	state taskState
	tile  int // owning tile (task queue position)
	seq   uint64

	vt vt.Time // unique virtual time, assigned at dispatch

	parent   *task
	children []*task

	rs, ws *bloom.Filter
	undo   []undoRec

	co        *guest.Coroutine
	core      int // core running/holding the task, -1 otherwise
	lastCore  int // last core that executed the task (cycle attribution)
	cyc       uint64
	pendingEv *sim.Event
	inBackoff bool // parked in an enqueue-NACK retry loop

	// splitter payload: id of the spilled batch in Machine.spillStore.
	batch uint64

	allocToken uint64

	heapIdx int // position in the tile's order queue, -1 when not idle
}

// spec reports whether the task runs speculatively. Splitters (and the
// coalescer pseudo-task) are non-speculative: they touch only runtime
// metadata, perform no conflict-checked accesses, and cannot abort.
func (t *task) spec() bool { return t.kind == kindWorker }

// boundVT returns the virtual time used for GVT purposes: dispatched tasks
// use their unique virtual time; idle tasks use (timestamp, now, tile)
// (§4.6).
func (t *task) boundVT(now uint64) vt.Time {
	if t.state != taskIdle {
		return t.vt
	}
	return vt.Time{TS: t.desc.TS, Cycle: now, Tile: uint32(t.tile)}
}

// orderQueue is the tile's order queue (§4.2): it finds the highest-priority
// (smallest-timestamp) idle task. The hardware uses two small TCAMs with
// single-lookup dispatch; functionally it is a min-heap on (timestamp,
// arrival order) supporting removal (task dispatch, spill, or squash).
type orderQueue struct{ h taskHeap }

func (q *orderQueue) Len() int { return len(q.h) }

func (q *orderQueue) Push(t *task) { heap.Push(&q.h, t) }

// Min returns the smallest-timestamp idle task without removing it.
func (q *orderQueue) Min() *task {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Remove deletes the task from the queue (dispatch, spill, or discard).
func (q *orderQueue) Remove(t *task) {
	if t.heapIdx >= 0 {
		heap.Remove(&q.h, t.heapIdx)
		t.heapIdx = -1
	}
}

// descHeap is a min-heap of task descriptors ordered by timestamp (the
// memory-resident overflow buffer).
type descHeap []guest.TaskDesc

func (h descHeap) Len() int           { return len(h) }
func (h descHeap) Less(i, j int) bool { return h[i].TS < h[j].TS }
func (h descHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *descHeap) Push(x any)        { *h = append(*h, x.(guest.TaskDesc)) }
func (h *descHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].desc.TS != h[j].desc.TS {
		return h[i].desc.TS < h[j].desc.TS
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
