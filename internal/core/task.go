package core

import (
	"container/heap"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/sim"
	"github.com/swarm-sim/swarm/internal/tsdom"
	"github.com/swarm-sim/swarm/internal/vt"
)

// taskState tracks a task through its lifetime (Fig 4 plus two transients:
// FINISHING covers a finished task stalled waiting for a commit queue entry,
// KILLED marks a discarded child of an aborted parent).
type taskState uint8

const (
	taskIdle taskState = iota
	taskRunning
	taskFinishing // finished execution, waiting for a commit queue entry
	taskFinished  // holds a commit queue entry
	taskCommitted
	taskKilled
)

func (s taskState) String() string {
	return [...]string{"idle", "running", "finishing", "finished", "committed", "killed"}[s]
}

// kinds of pseudo-tasks used by the queue-virtualization mechanism (§4.7).
type taskKind uint8

const (
	kindWorker   taskKind = iota
	kindSplitter          // re-enqueues a batch of spilled task descriptors
)

type undoRec struct {
	addr uint64
	old  uint64
}

// pendKind tells the task's pre-bound event callback (taskEvent) what the
// scheduled event means. The machine schedules every per-task event through
// task.evFn instead of a fresh closure, so the hot path allocates nothing.
type pendKind uint8

const (
	pendStart    pendKind = iota // dequeue delay elapsed: start the body
	pendResume                   // resume the guest with Result{Val: pendVal}
	pendResumeOK                 // resume the guest with Result{OK: true}
	pendFinish                   // finish delay elapsed: move to commit queue
	pendEnqRetry                 // enqueue-NACK backoff expired: retry pendDesc
)

// vt0 is the zero virtual time (undispatched).
var vt0 vt.Time

// task is one task-queue entry plus all speculative state Swarm associates
// with the task (Fig 6): read/write signatures, undo log and children
// pointers. The entry keeps its identity from creation to commit.
type task struct {
	desc  guest.TaskDesc
	kind  taskKind
	state taskState
	tile  int // owning tile (task queue position)
	seq   uint64

	vt vt.Time // unique virtual time, assigned at dispatch

	parent   *task
	children []*task

	rs, ws *bloom.Filter
	undo   []undoRec

	co        *guest.Coroutine
	core      int // core running/holding the task, -1 otherwise
	lastCore  int // last core that executed the task (cycle attribution)
	cyc       uint64
	pendingEv *sim.Event
	inBackoff bool // parked in an enqueue-NACK retry loop

	// Pre-bound event callback plus the pending-event payload it decodes;
	// see pendKind. evFn is built once in newTask and reused for every
	// event the task schedules.
	evFn        func()
	pend        pendKind
	pendVal     uint64
	pendDesc    guest.TaskDesc
	pendAttempt int

	// parJob is the task's in-flight offloaded continuation (parallel mode
	// only, see parallel.go): set when the scheduled event's guest segment
	// was handed to a shard worker, cleared when the sequencer joins it at
	// fire time (collect) or discards it on abort (abandon).
	parJob *parJob

	// splitter payload: id of the spilled batch in Machine.spillStore.
	batch uint64

	allocToken uint64

	heapIdx int    // position in the tile's order queue, -1 when not idle
	cqIdx   int    // position in the tile's commitQ or finishWait heap, -1 otherwise
	qSeq    uint64 // order of entry into that queue (conflict-probe order)

	// Way-0 index state: the tile slot id held while dispatched, and the
	// way-0 bit indexes this task's signature inserts set (so releaseSlot
	// can clear exactly those bitmap bits).
	slot    int32
	ws0Bits []uint32
	rs0Bits []uint32

	graveEv uint64 // engine event count when the task was freed (recycling age)
}

// spec reports whether the task runs speculatively. Splitters (and the
// coalescer pseudo-task) are non-speculative: they touch only runtime
// metadata, perform no conflict-checked accesses, and cannot abort.
func (t *task) spec() bool { return t.kind == kindWorker }

// boundVT returns the virtual time used for GVT purposes: dispatched tasks
// use their unique virtual time; idle tasks use (timestamp, path, now,
// tile) (§4.6).
func (t *task) boundVT(now uint64) vt.Time {
	if t.state != taskIdle {
		return t.vt
	}
	return descBoundVT(t.desc.TS, t.desc.Path, now, t.tile)
}

// orderQueue is the tile's order queue (§4.2): it finds the highest-priority
// (smallest-timestamp) idle task. The hardware uses two small TCAMs with
// single-lookup dispatch; functionally it is a min-heap on (timestamp,
// arrival order) supporting removal (task dispatch, spill, or squash).
type orderQueue struct{ h taskHeap }

func (q *orderQueue) Len() int { return len(q.h) }

func (q *orderQueue) Push(t *task) { heap.Push(&q.h, t) }

// Min returns the smallest-timestamp idle task without removing it.
func (q *orderQueue) Min() *task {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Remove deletes the task from the queue (dispatch, spill, or discard).
func (q *orderQueue) Remove(t *task) {
	if t.heapIdx >= 0 {
		heap.Remove(&q.h, t.heapIdx)
		t.heapIdx = -1
	}
}

// descHeap is a min-heap of task descriptors ordered by (timestamp,
// nested path) — the memory-resident overflow buffer. The path joins the
// key because the heap head feeds the tile's GVT bound (tileMinVT): with
// a TS-only key a deeply-pathed head could hide an earlier-pathed
// descriptor below it, raising the bound past work that must still run.
type descHeap []guest.TaskDesc

func (h descHeap) Len() int { return len(h) }
func (h descHeap) Less(i, j int) bool {
	if h[i].TS != h[j].TS {
		return h[i].TS < h[j].TS
	}
	return tsdom.Less(h[i].Path, h[j].Path)
}
func (h descHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *descHeap) Push(x any)   { *h = append(*h, x.(guest.TaskDesc)) }
func (h *descHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// vtHeap is an intrusive min-heap of tasks keyed by unique virtual time:
// the tile's commit queue and finish-wait set (§4.2, §4.6). Tasks track
// their position in cqIdx, so removal on abort is O(log n) instead of the
// old linear slice scan, and the commit round pops ready tasks in virtual-
// time order instead of rescanning and re-sorting every queue. Virtual
// times are unique (§4.4), so the order is total and deterministic.
//
// The backing slice s is exported to callers that probe every element
// (conflict checks, max scans); heap order is not insertion order, so
// order-sensitive callers must re-establish it themselves (checkTile sorts
// probe victims by qSeq).
type vtHeap struct {
	s []*task
}

func (h *vtHeap) Len() int { return len(h.s) }

// Min returns the earliest-virtual-time task without removing it.
func (h *vtHeap) Min() *task {
	if len(h.s) == 0 {
		return nil
	}
	return h.s[0]
}

func (h *vtHeap) Push(t *task) {
	t.cqIdx = len(h.s)
	h.s = append(h.s, t)
	h.up(t.cqIdx)
}

// Remove detaches t from the heap; t must be a member.
func (h *vtHeap) Remove(t *task) {
	i := t.cqIdx
	if i < 0 || i >= len(h.s) || h.s[i] != t {
		panic("core: removing a task from a commit queue it is not in")
	}
	n := len(h.s) - 1
	if i != n {
		h.swap(i, n)
	}
	h.s[n] = nil
	h.s = h.s[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	t.cqIdx = -1
}

// PopMin removes and returns the earliest-virtual-time task.
func (h *vtHeap) PopMin() *task {
	t := h.s[0]
	h.Remove(t)
	return t
}

func (h *vtHeap) less(i, j int) bool { return h.s[i].vt.Less(h.s[j].vt) }

func (h *vtHeap) swap(i, j int) {
	h.s[i], h.s[j] = h.s[j], h.s[i]
	h.s[i].cqIdx = i
	h.s[j].cqIdx = j
}

func (h *vtHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *vtHeap) down(i int) {
	n := len(h.s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && h.less(r, l) {
			small = r
		}
		if !h.less(small, i) {
			return
		}
		h.swap(i, small)
		i = small
	}
}

type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].desc.TS != h[j].desc.TS {
		return h[i].desc.TS < h[j].desc.TS
	}
	if c := tsdom.Compare(h[i].desc.Path, h[j].desc.Path); c != 0 {
		return c < 0
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}
