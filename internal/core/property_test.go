package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
)

// Property tests for the commit protocol: randomized task DAGs executed on
// small, contended machines, asserting the three properties the protocol
// exists to provide —
//
//  1. no task commits before its parent (ordered commits, §4.6);
//  2. an abort squashes every speculative descendant and no discarded
//     incarnation ever commits (selective aborts, §4.5);
//  3. the final memory state equals a serial execution in timestamp order
//     (the correctness contract of ordered speculation as a whole).
//
// Each generated program is a forest of tasks with unique timestamps doing
// random conflicting reads/writes over a tiny shared array, so runs abort
// constantly and exercise rollback, cascades and the full-queue policies.

// propTask is one generated task: its unique timestamp, the shared-pool
// words it touches, and its children (indices into the program table).
type propTask struct {
	ts       uint64
	reads    []int
	writes   []int
	children []int
}

// propProgram is a generated forest over a shared word pool.
type propProgram struct {
	tasks []propTask
	roots []int
	words int
}

// genProgram builds a random forest of n tasks. Timestamps are unique
// (task i has timestamp i+1), children always have later timestamps than
// their parent, and fan-out respects the 8-child hardware limit.
func genProgram(rng *rand.Rand, n, words int) propProgram {
	p := propProgram{tasks: make([]propTask, n), words: words}
	for i := range p.tasks {
		t := &p.tasks[i]
		t.ts = uint64(i + 1)
		for r := rng.Intn(4); r > 0; r-- {
			t.reads = append(t.reads, rng.Intn(words))
		}
		for w := 1 + rng.Intn(2); w > 0; w-- {
			t.writes = append(t.writes, rng.Intn(words))
		}
	}
	// Parent links: task i attaches to a random earlier task with spare
	// child slots, or becomes a root (always a root for i == 0).
	for i := 1; i < n; i++ {
		if rng.Intn(4) == 0 {
			p.roots = append(p.roots, i)
			continue
		}
		parent := rng.Intn(i)
		if len(p.tasks[parent].children) >= 7 {
			p.roots = append(p.roots, i)
			continue
		}
		p.tasks[parent].children = append(p.tasks[parent].children, i)
	}
	p.roots = append(p.roots, 0)
	return p
}

// mix is the deterministic value a task writes: a function of the task id
// and everything it read, so any ordering violation corrupts memory in a
// way the serial oracle comparison catches.
func mix(id uint64, acc uint64) uint64 {
	x := id*0x9e3779b97f4a7c15 + acc
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	return x
}

// run executes one task body against any Env-like pair of load/store plus
// child-enqueue callbacks — shared by the guest body and the serial oracle
// so both execute identical work by construction.
func (p propProgram) run(id uint64, load func(uint64) uint64, store func(uint64, uint64), enq func(child int)) {
	t := p.tasks[id]
	acc := uint64(0)
	for _, r := range t.reads {
		acc += load(uint64(r) * 8)
	}
	for _, w := range t.writes {
		store(uint64(w)*8, mix(id, acc))
	}
	for _, c := range t.children {
		enq(c)
	}
}

// serialOracle executes the program in timestamp order on host memory:
// the specification Swarm's parallel execution must match.
func (p propProgram) serialOracle() map[uint64]uint64 {
	mem := map[uint64]uint64{}
	p.serialOracleInto(mem)
	return mem
}

// serialOracleInto executes the program in timestamp order over existing
// memory — the phase-2 specification when a batch is injected after
// quiescence.
func (p propProgram) serialOracleInto(mem map[uint64]uint64) {
	// Timestamps are the task ids + 1 and children always have larger ids,
	// so executing in id order IS timestamp order, and every task is
	// reachable exactly once (forest).
	for id := range p.tasks {
		p.run(uint64(id),
			func(a uint64) uint64 { return mem[a] },
			func(a, v uint64) { mem[a] = v },
			func(int) {})
	}
}

func (p propProgram) program(base *uint64) *Program {
	prog := &Program{}
	prog.Setup = func(m *Machine) {
		*base = m.SetupAlloc(uint64(p.words) * 8)
		body := func(e guest.TaskEnv) {
			id := e.Arg(0)
			e.Work(2)
			p.run(id,
				func(a uint64) uint64 { return e.Load(*base + a) },
				func(a, v uint64) { e.Store(*base+a, v) },
				func(c int) { e.EnqueueArgs(0, p.tasks[c].ts, [3]uint64{uint64(c)}) })
		}
		prog.Fns = []guest.TaskFn{body}
		for _, r := range p.roots {
			m.EnqueueRoot(0, p.tasks[r].ts, uint64(r))
		}
	}
	return prog
}

// propConfig is a deliberately tiny, contended machine: 2 tiles x 2 cores
// with small queues, so spills, NACKs and the §4.7 policies all fire.
func propConfig(seed int64) Config {
	cfg := DefaultConfig(4)
	cfg.Tiles, cfg.CoresPerTile = 2, 2
	cfg.TaskQPerCore = 8
	cfg.CommitQPerCore = 2
	cfg.SpillBatch = 4
	cfg.Seed = seed
	cfg.DebugChecks = true // commit-order assertions on every commit
	cfg.MaxCycles = 50_000_000
	return cfg
}

func TestCommitProtocolProperties(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// 8 shared words across ~70 tasks: heavy conflict traffic.
			p := genProgram(rng, 50+rng.Intn(40), 8)

			// Tracking state, all keyed by task seq (unique per task
			// incarnation: re-enqueued conflict victims get a fresh seq, so
			// a discarded incarnation's seq can never be recycled into a
			// commit).
			committed := map[uint64]bool{}
			discarded := map[uint64]bool{}
			var cascadeErr, commitErr error

			debugCommitHook = func(m *Machine, tk *task) {
				// Property 1: a committing task's parent has already
				// committed (commitTask clears children's parent pointers,
				// so a live pointer means an uncommitted parent).
				if tk.parent != nil && commitErr == nil {
					commitErr = fmt.Errorf("task ts=%d committed before its parent ts=%d",
						tk.desc.TS, tk.parent.desc.TS)
				}
				committed[tk.seq] = true
			}
			aborted := map[uint64]bool{}
			debugAbortHook = func(m *Machine, victim *task, discard bool) {
				aborted[victim.seq] = true
				// Property 2: the cascade must reach every child. Children
				// in speculative states get their own abort (checked at the
				// end via the abort log); idle children are discarded
				// silently — either way their current incarnation must
				// never commit.
				for _, ch := range victim.children {
					discarded[ch.seq] = true
					if ch.state == taskCommitted && cascadeErr == nil {
						cascadeErr = fmt.Errorf("aborting ts=%d but child ts=%d already committed",
							victim.desc.TS, ch.desc.TS)
					}
				}
			}
			defer func() { debugCommitHook, debugAbortHook = nil, nil }()

			var base uint64
			m, err := NewMachine(propConfig(seed), p.program(&base))
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if commitErr != nil {
				t.Fatal(commitErr)
			}
			if cascadeErr != nil {
				t.Fatal(cascadeErr)
			}
			if int(st.Commits) < len(p.tasks) {
				t.Fatalf("only %d commits for %d tasks", st.Commits, len(p.tasks))
			}
			// Property 2 (post-hoc): no incarnation marked for discard by a
			// parent abort ever committed.
			for seq := range discarded {
				if committed[seq] {
					t.Fatalf("discarded task incarnation (seq %d) committed", seq)
				}
			}
			// Property 3: final memory equals the serial oracle.
			want := p.serialOracle()
			for w := 0; w < p.words; w++ {
				addr := base + uint64(w)*8
				if got := m.Mem().Load(addr); got != want[uint64(w)*8] {
					t.Fatalf("word %d = %#x, want %#x (serial oracle)", w, got, want[uint64(w)*8])
				}
			}
			if st.Aborts == 0 && seed <= 5 {
				t.Logf("seed %d: no aborts — program may be too conflict-free to be interesting", seed)
			}
		})
	}
}

// TestCommitProtocolPhasedInjection extends the commit-protocol properties
// across quiescence: a first random forest runs to quiescence, a second
// batch of roots is injected into the same (warm) machine, and the second
// phase runs over memory the first one produced. The protocol properties
// must hold in every phase, and the final memory must equal the serial
// oracle of phase 1 followed by phase 2 — even though phase 2's
// timestamps restart below already-committed history.
func TestCommitProtocolPhasedInjection(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 1001))
			p1 := genProgram(rng, 40+rng.Intn(30), 8)
			p2 := genProgram(rng, 30+rng.Intn(30), 8)

			committed := map[uint64]bool{}
			discarded := map[uint64]bool{}
			var cascadeErr, commitErr error
			debugCommitHook = func(m *Machine, tk *task) {
				if tk.parent != nil && commitErr == nil {
					commitErr = fmt.Errorf("task ts=%d committed before its parent ts=%d",
						tk.desc.TS, tk.parent.desc.TS)
				}
				committed[tk.seq] = true
			}
			debugAbortHook = func(m *Machine, victim *task, discard bool) {
				for _, ch := range victim.children {
					discarded[ch.seq] = true
					if ch.state == taskCommitted && cascadeErr == nil {
						cascadeErr = fmt.Errorf("aborting ts=%d but child ts=%d already committed",
							victim.desc.TS, ch.desc.TS)
					}
				}
			}
			defer func() { debugCommitHook, debugAbortHook = nil, nil }()

			var base uint64
			prog := &Program{}
			prog.Setup = func(m *Machine) {
				base = m.SetupAlloc(8 * 8)
				body := func(p propProgram, self guest.FnID) guest.TaskFn {
					return func(e guest.TaskEnv) {
						id := e.Arg(0)
						e.Work(2)
						p.run(id,
							func(a uint64) uint64 { return e.Load(base + a) },
							func(a, v uint64) { e.Store(base+a, v) },
							func(c int) { e.EnqueueArgs(self, p.tasks[c].ts, [3]uint64{uint64(c)}) })
					}
				}
				prog.Fns = []guest.TaskFn{body(p1, 0), body(p2, 1)}
				prog.FnNames = []string{"phase1", "phase2"}
				for _, r := range p1.roots {
					m.EnqueueRoot(0, p1.tasks[r].ts, uint64(r))
				}
			}
			m, err := NewMachine(propConfig(seed), prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Start(); err != nil {
				t.Fatal(err)
			}
			ph1, err := m.RunPhase()
			if err != nil {
				t.Fatalf("phase 1: %v", err)
			}
			if int(ph1.Commits) < len(p1.tasks) {
				t.Fatalf("phase 1: only %d commits for %d tasks", ph1.Commits, len(p1.tasks))
			}
			// Mid-session check: phase 1's memory equals its serial oracle
			// before any phase-2 work is injected.
			want := p1.serialOracle()
			for w := 0; w < p1.words; w++ {
				addr := base + uint64(w)*8
				if got := m.Mem().Load(addr); got != want[uint64(w)*8] {
					t.Fatalf("phase 1 word %d = %#x, want %#x", w, got, want[uint64(w)*8])
				}
			}
			if m.QueuedTasks() != 0 {
				t.Fatalf("quiescent machine reports %d queued tasks", m.QueuedTasks())
			}

			// Inject the second forest: timestamps restart at 1, below the
			// committed history's virtual times.
			for _, r := range p2.roots {
				m.EnqueueRoot(1, p2.tasks[r].ts, uint64(r))
			}
			ph2, err := m.RunPhase()
			if err != nil {
				t.Fatalf("phase 2: %v", err)
			}
			if commitErr != nil {
				t.Fatal(commitErr)
			}
			if cascadeErr != nil {
				t.Fatal(cascadeErr)
			}
			if int(ph2.Commits) < len(p2.tasks) {
				t.Fatalf("phase 2: only %d commits for %d tasks", ph2.Commits, len(p2.tasks))
			}
			if ph2.StartCycle != ph1.EndCycle {
				t.Fatalf("phase 2 starts at %d, phase 1 ended at %d", ph2.StartCycle, ph1.EndCycle)
			}
			for seq := range discarded {
				if committed[seq] {
					t.Fatalf("discarded task incarnation (seq %d) committed", seq)
				}
			}
			// Final memory: phase 1 then phase 2, serially, in ts order.
			p2.serialOracleInto(want)
			for w := 0; w < p2.words; w++ {
				addr := base + uint64(w)*8
				if got := m.Mem().Load(addr); got != want[uint64(w)*8] {
					t.Fatalf("final word %d = %#x, want %#x (two-phase serial oracle)", w, got, want[uint64(w)*8])
				}
			}
		})
	}
}
