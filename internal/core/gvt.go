package core

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/tsdom"
	"github.com/swarm-sim/swarm/internal/vt"
)

// gvtRound runs the global virtual time protocol (Fig 9): every GVTPeriod
// cycles, tiles send the smallest virtual time of any unfinished task to
// the arbiter; the arbiter broadcasts the minimum; all finished tasks that
// precede the GVT commit. Amortizing commits over the large commit queues
// is what makes ordered commits scale (§4.6).
func (m *Machine) gvtRound() {
	if m.systemEmpty() {
		m.done = true
		return // no reschedule: the event queue drains and Run returns
	}

	// Load-aware mappers migrate queued work at epoch boundaries, before
	// the GVT bound is computed so moved tasks are counted where they land.
	m.mapper.epoch(m)

	now := m.eng.Now()
	gvt := vt.Infinity
	if m.par != nil {
		// Two-phase reduction: shard workers compute per-tile minima and
		// occupancy partials over their own tile groups in parallel; the
		// sequencer folds the partials in shard order. Min and sum are
		// exact under any grouping, so gvt and every statistic below are
		// bit-identical to the serial loop. NoC accounting stays here: the
		// mesh is sequencer-owned state.
		var tq, cq uint64
		gvt, tq, cq = m.par.gvtReduce(now)
		for _, tt := range m.tiles {
			m.mesh.Account(tt.id, noc.ClassGVT, noc.GVTMsgBytes)
		}
		m.st.tqOccSum += tq
		m.st.cqOccSum += cq
	} else {
		for _, tt := range m.tiles {
			tv := m.tileMinVT(tt, now)
			if tv.Less(gvt) {
				gvt = tv
			}
			m.mesh.Account(tt.id, noc.ClassGVT, noc.GVTMsgBytes)
		}
		// Queue occupancy sampling (Fig 15) — before the commit round,
		// which drains the commit queues (sampling after would always see
		// the post-commit minimum). Per-tile sums feed the mapper
		// diagnostics (placement skew is invisible in the machine-wide
		// averages). The parallel branch accumulates the same sums inside
		// the reduction.
		for i, tt := range m.tiles {
			tq := uint64(tt.nTasks)
			cq := uint64(tt.commitQ.Len() + tt.finishWait.Len())
			m.st.tqOccSum += tq
			m.st.cqOccSum += cq
			m.st.tileTqOccSum[i] += tq
			m.st.tileCqOccSum[i] += cq
		}
	}
	// Arbiter broadcast (the arbiter sits by tile 0).
	m.mesh.Account(0, noc.ClassGVT, noc.GVTMsgBytes*m.cfg.Tiles)
	m.gvt = gvt
	m.st.gvtUpdates++
	if m.cfg.DebugChecks && m.st.gvtUpdates%2000 == 0 {
		fmt.Printf("DBG cycle=%d %s\n", now, m.describeState())
	}
	m.st.occSamples++

	prevCommits := m.st.commits
	m.commitRound(gvt)
	if m.st.commits != prevCommits {
		m.dryRounds = 0
	} else if m.dryRounds++; m.dryRounds >= rescueDryRounds {
		m.dryRounds = 0
		for _, tt := range m.tiles {
			m.rescueOverflow(tt)
		}
	}
	for _, tt := range m.tiles {
		m.unblockTile(tt, now)
	}

	m.eng.After(m.cfg.GVTPeriod, m.gvtFn)
}

// rescueDryRounds is the liveness backstop's trigger: after this many
// consecutive GVT rounds without a single commit machine-wide, overflow
// heads that precede their tile's resident work are re-materialized. The
// threshold (~50k cycles at the default 200-cycle period) is far beyond
// any commit gap a healthy run shows, so the backstop never perturbs
// normal execution — the golden fingerprint corpus pins that.
const rescueDryRounds = 256

// rescueOverflow re-materializes overflowed descriptors, but only when
// the overflow head precedes every idle task on the tile — the state
// where the tile's commits (and with them the freeSlot-triggered drains
// that normally empty overflow) can be gated on the overflow head
// itself, wedging the machine. Flat timestamps cannot stay wedged this
// way (spills pick the latest work, so the head trails the hardware
// queue and same-slot bounds break on cycle), but nested fork paths can:
// a spilled or setup-overflowed descriptor whose path precedes
// everything resident blocks the GVT until it is drained, and with all
// cores stalled behind full commit queues no freeSlot event ever comes.
// The dry-round counter in gvtRound makes this the guaranteed retry.
func (m *Machine) rescueOverflow(tt *tile) {
	if len(tt.overflow) == 0 {
		return
	}
	if minIdle := tt.idleQ.Min(); minIdle != nil && !descLater(minIdle.desc, tt.overflow[0]) {
		return // resident work is at or before the head; normal drains suffice
	}
	m.drainOverflow(tt)
}

// unblockTile enforces the §4.7 progress rule from the arbiter's side:
// always prioritize earlier-virtual-time tasks, aborting later ones if
// needed. If an earlier task sits idle in the task queue while every core
// holds a later speculative task that is STUCK — stalled for a commit
// queue entry, blocked behind a full commit queue, or spinning in an
// enqueue-NACK backoff loop — the highest-virtual-time on-core task is
// aborted so the earlier task (typically the next GVT task, whose enqueues
// may overflow to memory) can run. The arrival-time "Cores" policy cannot
// fire in these states because no new insertions are happening, so the
// check is repeated at GVT rounds.
func (m *Machine) unblockTile(tt *tile, now uint64) {
	if m.cfg.UnboundedQueues {
		return
	}
	minIdle := tt.idleQ.Min()
	if minIdle == nil {
		return
	}
	bound := minIdle.boundVT(now)
	cqFull := tt.commitQ.Len() >= m.cfg.CommitQPerTile()
	var maxT *task
	base := tt.id * m.cfg.CoresPerTile
	for i := 0; i < m.cfg.CoresPerTile; i++ {
		t := m.cores[base+i].task
		if t == nil || !t.spec() {
			return // a free core or a progressing coalescer/splitter
		}
		stuck := t.state == taskFinishing ||
			(t.state == taskRunning && (cqFull || t.inBackoff))
		if !stuck {
			return // an on-core task is making progress
		}
		if t.vt.Less(bound) {
			return // an on-core task already precedes the idle one
		}
		if maxT == nil || maxT.vt.Less(t.vt) {
			maxT = t
		}
	}
	if maxT != nil {
		m.st.policyAborts++
		m.abortTask(maxT, false)
	}
}

// descBoundVT is the GVT bound of a memory-resident task descriptor owned
// by a tile — idle tasks, overflow buffers, coalescer batches and spilled
// batches all bound as (timestamp, path, now, owning tile) (§4.6). Every
// bound comparison (tileMinVT, the commit-order assertion) must build
// bounds through this one helper so ties break identically everywhere.
// The descriptor's nested path is part of the bound: dropping it would
// round a pathed descriptor down to its slot's root and falsely order it
// before same-slot tasks it actually follows.
func descBoundVT(ts uint64, path tsdom.Path, now uint64, tile int) vt.Time {
	return vt.Time{TS: ts, Path: path, Cycle: now, Tile: uint32(tile)}
}

// tileMinVT computes the smallest virtual time of any unfinished task in
// the tile: running tasks use their unique virtual time; idle tasks and
// memory-resident descriptors (overflow buffers, in-flight coalescer
// batches) use (timestamp, now, tile) (§4.6).
func (m *Machine) tileMinVT(tt *tile, now uint64) vt.Time {
	minV := vt.Infinity
	base := tt.id * m.cfg.CoresPerTile
	for i := 0; i < m.cfg.CoresPerTile; i++ {
		if t := m.cores[base+i].task; t != nil && t.state == taskRunning {
			minV = vt.Min(minV, t.vt)
		}
	}
	if t := tt.idleQ.Min(); t != nil {
		minV = vt.Min(minV, descBoundVT(t.desc.TS, t.desc.Path, now, tt.id))
	}
	if len(tt.overflow) > 0 {
		minV = vt.Min(minV, descBoundVT(tt.overflow[0].TS, tt.overflow[0].Path, now, tt.id))
	}
	if tt.coalescerLive {
		minV = vt.Min(minV, descBoundVT(tt.coalescerTS, tt.coalescerPath, now, tt.id))
	}
	return minV
}

// commitRound commits every finished task with virtual time < gvt, in
// virtual-time order (parents before children). The per-tile commit queues
// are min-heaps on virtual time, so the round is a k-way merge over queue
// heads — no rescan of queue bodies and no sort.
func (m *Machine) commitRound(gvt vt.Time) {
	committed := false
	for {
		var best *task
		for _, tt := range m.tiles {
			if t := tt.commitQ.Min(); t != nil && t.vt.Less(gvt) && (best == nil || t.vt.Less(best.vt)) {
				best = t
			}
			// A finished task stalled for a commit queue entry can commit
			// directly once ordered before the GVT.
			if t := tt.finishWait.Min(); t != nil && t.vt.Less(gvt) && (best == nil || t.vt.Less(best.vt)) {
				best = t
			}
		}
		if best == nil {
			break
		}
		m.commitTask(best)
		committed = true
	}
	if !committed {
		return
	}
	for _, tt := range m.tiles {
		m.promoteFinishWaiters(tt)
		m.checkSpillTrigger(tt)
	}
}

// commitTask retires one task: eager versioning makes this a single-cycle
// operation — free the task and commit queue entries (§4.6).
func (m *Machine) commitTask(t *task) {
	if m.cfg.DebugChecks {
		m.assertCommitOrder(t)
	}
	if debugCommitHook != nil {
		debugCommitHook(m, t)
	}
	tt := m.tiles[t.tile]
	switch t.state {
	case taskFinished:
		tt.commitQ.Remove(t)
	case taskFinishing:
		tt.finishWait.Remove(t)
		// The stalled task still holds its core; release it.
		m.releaseCore(m.cores[t.core], t)
	default:
		panic("core: committing a task that is not finished")
	}
	t.state = taskCommitted
	m.st.commits++
	tt.commitsCount++
	m.releaseSlot(tt, t)
	if t.lastCore >= 0 {
		m.cores[t.lastCore].committedCyc += t.cyc
	}
	m.heap.ReleaseQuarantine(t.allocToken)
	for _, ch := range t.children {
		ch.parent = nil // children of committed parents are non-speculative
	}
	// Truncate rather than nil out: the task struct is recycled and keeps
	// its slice capacities.
	t.children = t.children[:0]
	t.undo = t.undo[:0]
	m.freeSlot(t)
}

// assertCommitOrder panics if any unfinished task anywhere could still
// order before a committing task — i.e. the GVT protocol let a commit jump
// the order. Debug builds only.
func (m *Machine) assertCommitOrder(t *task) {
	now := m.eng.Now()
	for _, tt := range m.tiles {
		for _, u := range tt.idleQ.h {
			if b := u.boundVT(now); b.Less(t.vt) {
				panic(fmt.Sprintf("core: committing %v but idle task ts=%d could precede it", t.vt, u.desc.TS))
			}
		}
		for _, d := range tt.overflow {
			if descBoundVT(d.TS, d.Path, now, tt.id).Less(t.vt) {
				panic(fmt.Sprintf("core: committing %v but overflow ts=%d path=%s could precede it", t.vt, d.TS, d.Path))
			}
		}
		if tt.coalescerLive {
			if descBoundVT(tt.coalescerTS, tt.coalescerPath, now, tt.id).Less(t.vt) {
				panic(fmt.Sprintf("core: committing %v but coalescer batch ts=%d could precede it", t.vt, tt.coalescerTS))
			}
		}
	}
	for _, c := range m.cores {
		if u := c.task; u != nil && u != t && u.state == taskRunning && u.vt.Less(t.vt) {
			panic(fmt.Sprintf("core: committing %v but running task %v precedes it", t.vt, u.vt))
		}
	}
	for _, b := range m.spillStore {
		for _, d := range b.descs {
			if descBoundVT(d.TS, d.Path, now, b.tile).Less(t.vt) {
				panic(fmt.Sprintf("core: committing %v but spilled ts=%d path=%s could precede it", t.vt, d.TS, d.Path))
			}
		}
	}
}

// systemEmpty reports whether no work remains anywhere: the termination
// condition (§4.1: when no tasks are left and all threads stall on
// dequeue, the algorithm has terminated).
func (m *Machine) systemEmpty() bool {
	for _, tt := range m.tiles {
		if tt.nTasks != 0 || len(tt.overflow) != 0 || tt.coalescing || tt.coalescerLive {
			return false
		}
	}
	for _, c := range m.cores {
		if c.task != nil {
			return false
		}
	}
	return len(m.spillStore) == 0
}
