package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/tsdom"
)

// Property tests for nested (fork-join) timestamps composed with the
// commit protocol: random fork trees executed on small, contended
// machines must commit in exact nested dag order — every parent before
// any of its forked descendants, every fork subtree before its next
// sibling — and produce the serial oracle's memory, with the spill and
// GVT machinery carrying non-empty paths throughout (DebugChecks asserts
// the commit-order invariant on every commit against idle, overflow,
// coalescer and spilled descriptors).

// nestedTask is one generated task: its slot, nested path, the shared
// words it touches, and its forked children (indices into the table).
type nestedTask struct {
	ts     uint64
	path   tsdom.Path
	reads  []int
	writes []int
	subs   []int
}

// nestedProgram is a generated forest of fork trees over a shared pool.
// tasks is in serial (slot, then nested pre-order) order: task i's forked
// children all have larger ids, and executing in id order IS the nested
// commit order.
type nestedProgram struct {
	tasks []nestedTask
	roots []int // one root per slot, paths all empty
	words int
}

// genNestedProgram builds slots fork trees. The first tree contains a
// guaranteed spine of depth minDepth, so every run exercises deep
// nesting; elsewhere fan-out and depth are random.
func genNestedProgram(rng *rand.Rand, slots, minDepth, maxDepth, words int) nestedProgram {
	p := nestedProgram{words: words}
	newTask := func(ts uint64, path tsdom.Path) int {
		t := nestedTask{ts: ts, path: path}
		for r := rng.Intn(4); r > 0; r-- {
			t.reads = append(t.reads, rng.Intn(words))
		}
		for w := 1 + rng.Intn(2); w > 0; w-- {
			t.writes = append(t.writes, rng.Intn(words))
		}
		p.tasks = append(p.tasks, t)
		return len(p.tasks) - 1
	}
	var grow func(id int, depth int, spine bool)
	grow = func(id int, depth int, spine bool) {
		if depth >= maxDepth {
			return
		}
		kids := rng.Intn(4)
		if spine && depth < minDepth && kids == 0 {
			kids = 1
		}
		for k := 0; k < kids; k++ {
			path := p.tasks[id].path.Child(uint64(k))
			c := newTask(p.tasks[id].ts, path)
			p.tasks[id].subs = append(p.tasks[id].subs, c)
			// The spine continues through the first child of the first
			// tree; everything else branches freely.
			grow(c, depth+1, spine && k == 0)
		}
	}
	for s := 0; s < slots; s++ {
		r := newTask(uint64(s), tsdom.Root)
		p.roots = append(p.roots, r)
		grow(r, 0, s == 0)
	}
	return p
}

// run executes one task body; shared by the guest body and the serial
// oracle so both do identical work by construction.
func (p nestedProgram) run(id uint64, load func(uint64) uint64, store func(uint64, uint64), fork func(child int)) {
	t := p.tasks[id]
	acc := uint64(0)
	for _, r := range t.reads {
		acc += load(uint64(r) * 8)
	}
	for _, w := range t.writes {
		store(uint64(w)*8, mix(id, acc))
	}
	for _, c := range t.subs {
		fork(c)
	}
}

// serialOracle executes the program in nested commit order (= id order).
func (p nestedProgram) serialOracle() map[uint64]uint64 {
	mem := map[uint64]uint64{}
	for id := range p.tasks {
		p.run(uint64(id),
			func(a uint64) uint64 { return mem[a] },
			func(a, v uint64) { mem[a] = v },
			func(int) {})
	}
	return mem
}

func (p nestedProgram) program(base *uint64) *Program {
	prog := &Program{}
	prog.Setup = func(m *Machine) {
		*base = m.SetupAlloc(uint64(p.words) * 8)
		body := func(e guest.TaskEnv) {
			id := e.Arg(0)
			e.Work(2)
			p.run(id,
				func(a uint64) uint64 { return e.Load(*base + a) },
				func(a, v uint64) { e.Store(*base+a, v) },
				func(c int) { e.EnqueueSub(0, guest.NoHint, [3]uint64{uint64(c)}) })
		}
		prog.Fns = []guest.TaskFn{body}
		prog.FnNames = []string{"nested"}
		for _, r := range p.roots {
			m.EnqueueRoot(0, p.tasks[r].ts, uint64(r))
		}
	}
	return prog
}

// maxNestedDepth returns the deepest fork path in the program.
func (p nestedProgram) maxNestedDepth() int {
	d := 0
	for _, t := range p.tasks {
		if n := t.path.Depth(); n > d {
			d = n
		}
	}
	return d
}

func TestNestedCommitProtocolProperties(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 7717))
			// Few slots, deep trees, 8 shared words: constant conflicts
			// between ancestors and their own (not-yet-committed)
			// speculative descendants.
			p := genNestedProgram(rng, 2+rng.Intn(3), 3, 5, 8)
			if d := p.maxNestedDepth(); d < 3 {
				t.Fatalf("generated max fork depth %d, want >= 3 (spine broken)", d)
			}

			// Commit log: every committed task's id, in commit order.
			var order []uint64
			var commitErr error
			debugCommitHook = func(m *Machine, tk *task) {
				// A committing task's parent must already have committed
				// (commitTask clears children's parent pointers).
				if tk.parent != nil && commitErr == nil {
					commitErr = fmt.Errorf("task ts=%d path=%s committed before its parent ts=%d path=%s",
						tk.desc.TS, tk.desc.Path, tk.parent.desc.TS, tk.parent.desc.Path)
				}
				if tk.kind == kindWorker {
					order = append(order, tk.desc.Args[0])
				}
			}
			discarded := map[uint64]bool{}
			committedSeq := map[uint64]bool{}
			var cascadeErr error
			debugAbortHook = func(m *Machine, victim *task, discard bool) {
				for _, ch := range victim.children {
					discarded[ch.seq] = true
					if ch.state == taskCommitted && cascadeErr == nil {
						cascadeErr = fmt.Errorf("aborting ts=%d path=%s but child ts=%d path=%s already committed",
							victim.desc.TS, victim.desc.Path, ch.desc.TS, ch.desc.Path)
					}
				}
			}
			prevHook := debugCommitHook
			debugCommitHook = func(m *Machine, tk *task) {
				prevHook(m, tk)
				committedSeq[tk.seq] = true
			}
			defer func() { debugCommitHook, debugAbortHook = nil, nil }()

			var base uint64
			m, err := NewMachine(propConfig(seed), p.program(&base))
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if commitErr != nil {
				t.Fatal(commitErr)
			}
			if cascadeErr != nil {
				t.Fatal(cascadeErr)
			}
			for seq := range discarded {
				if committedSeq[seq] {
					t.Fatalf("discarded task incarnation (seq %d) committed", seq)
				}
			}
			// The committed-id sequence must BE the nested pre-order:
			// parents before descendants, subtree before next sibling, in
			// every slot. Ids were generated in that order, so the log
			// must read 0, 1, 2, ...
			if len(order) != len(p.tasks) {
				t.Fatalf("%d commits for %d tasks", len(order), len(p.tasks))
			}
			for i, id := range order {
				if id != uint64(i) {
					a, b := p.tasks[i], p.tasks[id]
					t.Fatalf("commit %d was task %d (ts=%d path=%s), want task %d (ts=%d path=%s) — nested order violated",
						i, id, b.ts, b.path, i, a.ts, a.path)
				}
			}
			// Final memory equals the nested serial oracle.
			want := p.serialOracle()
			for w := 0; w < p.words; w++ {
				addr := base + uint64(w)*8
				if got := m.Mem().Load(addr); got != want[uint64(w)*8] {
					t.Fatalf("word %d = %#x, want %#x (nested serial oracle)", w, got, want[uint64(w)*8])
				}
			}
			_ = st
		})
	}
}

// TestNestedSpillBounds pins the satellite regression: task descriptors
// with non-empty nested paths flowing through the spill path (coalescer
// victim selection, splitter batch-minimum bounds, overflow heaps) and
// the GVT bound computation. Forked children hold live parent pointers
// and cannot spill, so the test instead seeds ~10x the 2x2 machine's
// queue capacity of parentless, single-slot descriptors with distinct
// random paths (in scrambled insertion order): every movable descriptor
// is path-bearing, coalescers must fire, and DebugChecks'
// assertCommitOrder validates every commit against the spilled and
// overflowed bounds — a path dropped anywhere in the spill or GVT
// plumbing panics the run or breaks the commit-order log.
func TestNestedSpillBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, words = 160, 8
	// Distinct random paths, all in slot 0, so the path alone decides
	// the total order.
	paths := make([]tsdom.Path, 0, n)
	seen := map[tsdom.Path]bool{}
	for len(paths) < n {
		p := tsdom.Root
		for d := 1 + rng.Intn(4); d > 0; d-- {
			p = p.Child(uint64(rng.Intn(4)))
		}
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	prog := nestedProgram{words: words}
	for _, p := range paths {
		t := nestedTask{ts: 0, path: p}
		for r := rng.Intn(4); r > 0; r-- {
			t.reads = append(t.reads, rng.Intn(words))
		}
		for w := 1 + rng.Intn(2); w > 0; w-- {
			t.writes = append(t.writes, rng.Intn(words))
		}
		prog.tasks = append(prog.tasks, t)
	}
	// Serial-oracle order is id order, so sort the table into dag order
	// and scramble only the enqueue order below.
	sort.Slice(prog.tasks, func(i, j int) bool {
		return tsdom.Less(prog.tasks[i].path, prog.tasks[j].path)
	})
	enqOrder := rng.Perm(n)

	var order []uint64
	debugCommitHook = func(m *Machine, tk *task) {
		if tk.kind == kindWorker {
			order = append(order, tk.desc.Args[0])
		}
	}
	defer func() { debugCommitHook = nil }()

	var base uint64
	p := &Program{}
	p.Setup = func(m *Machine) {
		base = m.SetupAlloc(words * 8)
		body := func(e guest.TaskEnv) {
			id := e.Arg(0)
			e.Work(2)
			prog.run(id,
				func(a uint64) uint64 { return e.Load(base + a) },
				func(a, v uint64) { e.Store(base+a, v) },
				func(int) {})
		}
		p.Fns = []guest.TaskFn{body}
		for _, id := range enqOrder {
			m.EnqueueRootDesc(guest.TaskDesc{Fn: 0, TS: 0, Path: prog.tasks[id].path, Args: [3]uint64{uint64(id)}})
		}
	}
	m, err := NewMachine(propConfig(42), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Commits) < n {
		t.Fatalf("only %d commits for %d tasks", st.Commits, n)
	}
	if st.SpilledTasks == 0 {
		t.Fatalf("no descriptors spilled — %d parentless tasks no longer pressure the 2x2 queues and the regression is untested", n)
	}
	// Commits must follow the dag order of the paths regardless of the
	// scrambled insertion and the spill round-trips.
	if len(order) != n {
		t.Fatalf("%d commits logged for %d tasks", len(order), n)
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("commit %d was task %d (path %s), want task %d (path %s) — spilled descriptors broke the nested order",
				i, id, prog.tasks[id].path, i, prog.tasks[i].path)
		}
	}
	want := prog.serialOracle()
	for w := 0; w < words; w++ {
		addr := base + uint64(w)*8
		if got := m.Mem().Load(addr); got != want[uint64(w)*8] {
			t.Fatalf("word %d = %#x, want %#x (nested serial oracle)", w, got, want[uint64(w)*8])
		}
	}
}

// TestDescCompare pins the descriptor-level (timestamp, path) order used
// by spill victim selection, splitter refills and overflow drains.
func TestDescCompare(t *testing.T) {
	d := func(ts uint64, path tsdom.Path) guest.TaskDesc {
		return guest.TaskDesc{TS: ts, Path: path}
	}
	p0 := tsdom.Root.Child(0)
	p1 := tsdom.Root.Child(1)
	p00 := p0.Child(0)
	cases := []struct {
		name string
		a, b guest.TaskDesc
		want int
	}{
		{"ts-wins", d(1, p1), d(2, tsdom.Root), -1},
		{"flat-equal", d(3, tsdom.Root), d(3, tsdom.Root), 0},
		{"root-before-fork", d(3, tsdom.Root), d(3, p0), -1},
		{"parent-before-child", d(3, p0), d(3, p00), -1},
		{"subtree-before-sibling", d(3, p00), d(3, p1), -1},
		{"pathed-equal", d(3, p00), d(3, p00), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := descCompare(tc.a, tc.b); got != tc.want {
				t.Fatalf("descCompare = %d, want %d", got, tc.want)
			}
			if got := descCompare(tc.b, tc.a); got != -tc.want {
				t.Fatalf("descCompare reversed = %d, want %d", got, -tc.want)
			}
			if got := descLater(tc.a, tc.b); got != (tc.want > 0) {
				t.Fatalf("descLater = %v, want %v", got, tc.want > 0)
			}
		})
	}
}

// TestRescueOverflowGate unit-tests the liveness backstop's gating: an
// empty overflow is a no-op, resident work at or before the overflow
// head suppresses the rescue (normal freeSlot drains suffice), and a
// head that precedes everything resident is re-materialized.
func TestRescueOverflowGate(t *testing.T) {
	prog := &Program{
		Fns:   []guest.TaskFn{func(e guest.TaskEnv) {}},
		Setup: func(m *Machine) { m.EnqueueRoot(0, 0) },
	}
	m, err := NewMachine(DefaultConfig(4), prog)
	if err != nil {
		t.Fatal(err)
	}
	tt := m.tiles[0]

	m.rescueOverflow(tt) // empty overflow: nothing to do
	if len(tt.overflow) != 0 || tt.idleQ.Len() != 0 {
		t.Fatal("rescue on an empty tile changed state")
	}

	tt.overflow = append(tt.overflow, guest.TaskDesc{Fn: 0, TS: 5})
	m.insertIdle(tt, m.newTask(guest.TaskDesc{Fn: 0, TS: 3}, tt.id, nil))
	m.rescueOverflow(tt)
	if len(tt.overflow) != 1 {
		t.Fatal("rescue drained past resident earlier work")
	}

	tt.overflow[0] = guest.TaskDesc{Fn: 0, TS: 1}
	m.rescueOverflow(tt)
	if len(tt.overflow) != 0 {
		t.Fatal("rescue left a globally-earliest head in overflow")
	}
	if tt.idleQ.Len() != 2 {
		t.Fatalf("idleQ holds %d tasks after rescue, want 2", tt.idleQ.Len())
	}
}
