package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/sim"
	"github.com/swarm-sim/swarm/internal/vt"
)

// Program is a Swarm application: a table of task functions plus a Setup
// hook that initializes guest memory and enqueues the root task(s). Setup
// runs before the measured parallel region (the paper fast-forwards through
// initialization, §5).
type Program struct {
	Fns   []guest.TaskFn
	Setup func(*Machine)
}

// cpu is one simple core (IPC-1 except misses and Swarm instructions).
type cpu struct {
	id, tile int
	task     *task

	lastVT  vt.Time
	everRan bool

	dispatchPending bool
	inStallList     bool

	// wall-clock busy accounting (worker vs spill); stall is the
	// remainder of elapsed time.
	wallWorker uint64
	wallSpill  uint64
	// outcome attribution (Fig 14): filled when tasks commit or abort.
	committedCyc uint64
	abortedCyc   uint64
}

// tile is one task unit: task queue + order queue + commit queue (§4.2).
type tile struct {
	id     int
	nTasks int // occupied task queue entries

	idleQ      orderQueue
	commitQ    []*task
	finishWait []*task // finished tasks stalled waiting for a CQ entry

	// overflow holds task descriptors spilled to memory when the queue is
	// full and the enqueuer is the GVT task (§4.7 deadlock avoidance).
	// It is a min-heap on timestamp.
	overflow descHeap

	lastDequeue   uint64
	everDequeued  bool
	stalledCores  []int
	coalescing    bool
	coalescerTS   uint64 // min timestamp of an in-flight coalescer batch
	coalescerLive bool
	spillWanted   bool
	commitsCount  uint64 // per-tile, for tracing
	abortsCount   uint64
}

// Machine is a full Swarm CMP.
type Machine struct {
	cfg  Config
	eng  sim.Engine
	gmem *mem.Memory
	heap *mem.Allocator
	mesh *noc.Mesh
	hier *cache.Hierarchy

	tiles []*tile
	cores []*cpu
	prog  *Program
	rng   *rand.Rand

	seqCtr   uint64
	tokCtr   uint64
	batchCtr uint64

	spillStore map[uint64][]guest.TaskDesc

	gvt  vt.Time
	done bool

	filterPool []*bloom.Filter

	st      internalStats
	tracer  *tracer
	started bool
}

// NewMachine builds a machine for the config and program.
func NewMachine(cfg Config, prog *Program) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if prog == nil || prog.Setup == nil {
		return nil, errors.New("core: program must have a Setup hook")
	}
	m := &Machine{
		cfg:        cfg,
		gmem:       mem.New(),
		heap:       mem.NewAllocator(),
		mesh:       noc.New(cfg.Tiles, cfg.HopCycles),
		prog:       prog,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		spillStore: make(map[uint64][]guest.TaskDesc),
	}
	m.hier = cache.New(cfg.Cache, m.mesh)
	m.tiles = make([]*tile, cfg.Tiles)
	for i := range m.tiles {
		m.tiles[i] = &tile{id: i}
	}
	m.cores = make([]*cpu, cfg.Cores())
	for i := range m.cores {
		m.cores[i] = &cpu{id: i, tile: i / cfg.CoresPerTile}
	}
	if cfg.TraceInterval > 0 {
		m.tracer = newTracer(m)
	}
	return m, nil
}

// Mem exposes guest memory (for Setup and for result verification).
func (m *Machine) Mem() *mem.Memory { return m.gmem }

// SetupAlloc allocates guest memory with no simulated cost; valid in Setup
// (initialization is outside the measured region).
func (m *Machine) SetupAlloc(nBytes uint64) uint64 { return m.heap.AllocLineAligned(nBytes) }

// Now returns the current cycle.
func (m *Machine) Now() uint64 { return m.eng.Now() }

// EnqueueRoot inserts a parentless task during Setup (zero cost).
func (m *Machine) EnqueueRoot(fn int, ts uint64, args ...uint64) {
	d := guest.TaskDesc{Fn: fn, TS: ts}
	if len(args) > 3 {
		panic("core: root tasks take at most 3 argument words")
	}
	copy(d.Args[:], args)
	m.EnqueueRootDesc(d)
}

// EnqueueRootDesc inserts a parentless task descriptor during Setup.
func (m *Machine) EnqueueRootDesc(d guest.TaskDesc) {
	target := m.rng.Intn(m.cfg.Tiles)
	tt := m.tiles[target]
	if m.hasSpace(tt) {
		m.insertIdle(tt, m.newTask(d, target, nil))
	} else {
		heap.Push(&tt.overflow, d)
	}
}

// Run executes the program to completion and returns statistics.
func (m *Machine) Run() (Stats, error) {
	if m.started {
		return Stats{}, errors.New("core: machine already ran")
	}
	m.started = true
	m.prog.Setup(m)
	for _, c := range m.cores {
		m.scheduleDispatch(c, 0)
	}
	m.eng.After(m.cfg.GVTPeriod, m.gvtRound)
	if m.tracer != nil {
		m.eng.After(m.cfg.TraceInterval, m.tracer.sample)
	}
	if err := m.eng.Run(m.cfg.MaxCycles); err != nil {
		return Stats{}, fmt.Errorf("core: %w (likely livelock: %s)", err, m.describeState())
	}
	if !m.done {
		return Stats{}, fmt.Errorf("core: simulation stalled at cycle %d: %s", m.eng.Now(), m.describeState())
	}
	return m.collectStats(), nil
}

func (m *Machine) describeState() string {
	tq, cq, fw, idle, ovf := 0, 0, 0, 0, 0
	coal := 0
	for _, t := range m.tiles {
		tq += t.nTasks
		cq += len(t.commitQ)
		fw += len(t.finishWait)
		idle += t.idleQ.Len()
		ovf += len(t.overflow)
		if t.coalescing {
			coal++
		}
	}
	cores := ""
	for _, c := range m.cores {
		switch {
		case c.task == nil:
			cores += "-"
		default:
			ev := "noev"
			if c.task.pendingEv != nil && !c.task.pendingEv.Cancelled() {
				ev = fmt.Sprintf("ev@%d", c.task.pendingEv.Cycle())
			}
			cores += fmt.Sprintf("[%s k=%d vt=%v %s]", c.task.state, c.task.kind, c.task.vt, ev)
		}
	}
	return fmt.Sprintf("%d queued (%d idle, %d finishWait), %d in commit queues, %d overflowed, %d coalescing, %d spill batches, cores=%s, gvt=%v, commits=%d aborts=%d dequeues=%d nacks=%d spilled=%d",
		tq, idle, fw, cq, ovf, coal, len(m.spillStore), cores, m.gvt,
		m.st.commits, m.st.aborts, m.st.dequeues, m.st.nacks, m.st.spilledTasks)
}

// ---------------------------------------------------------------- tasks --

func (m *Machine) newTask(d guest.TaskDesc, tileID int, parent *task) *task {
	t := &task{
		desc:     d,
		tile:     tileID,
		seq:      m.nextSeq(),
		core:     -1,
		lastCore: -1,
		heapIdx:  -1,
	}
	t.allocToken = m.nextToken()
	if parent != nil {
		t.parent = parent
		if len(parent.children) >= m.cfg.MaxChildren {
			panic(fmt.Sprintf("core: task exceeded the %d-child hardware limit; enqueue a spawner task instead (§4.1)", m.cfg.MaxChildren))
		}
		parent.children = append(parent.children, t)
	}
	t.rs = m.getFilter()
	t.ws = m.getFilter()
	return t
}

func (m *Machine) nextSeq() uint64   { m.seqCtr++; return m.seqCtr }
func (m *Machine) nextToken() uint64 { m.tokCtr++; return m.tokCtr }

func (m *Machine) getFilter() *bloom.Filter {
	if n := len(m.filterPool); n > 0 {
		f := m.filterPool[n-1]
		m.filterPool = m.filterPool[:n-1]
		return f
	}
	return bloom.NewFilter(m.cfg.Bloom)
}

func (m *Machine) putFilter(f *bloom.Filter) {
	if f == nil {
		return
	}
	f.Clear()
	m.filterPool = append(m.filterPool, f)
}

func (m *Machine) hasSpace(tt *tile) bool {
	return m.cfg.UnboundedQueues || tt.nTasks < m.cfg.TaskQPerTile()
}

// insertIdle places a task in a tile's task queue and order queue, waking a
// stalled core and applying the §4.7 full-queue policies.
func (m *Machine) insertIdle(tt *tile, t *task) {
	tt.nTasks++
	t.state = taskIdle
	t.tile = tt.id
	tt.idleQ.Push(t)
	m.wakeOneStalled(tt)
	m.checkSpillTrigger(tt)
	m.coresPolicy(tt, t)
}

// coresPolicy implements §4.7 "Cores": if a task arrives, the commit queue
// is full, and the task precedes every task running on this tile's cores,
// abort the highest-virtual-time running task so the earlier task can make
// progress.
func (m *Machine) coresPolicy(tt *tile, arrived *task) {
	if m.cfg.UnboundedQueues || len(tt.commitQ) < m.cfg.CommitQPerTile() {
		return
	}
	bound := arrived.boundVT(m.eng.Now())
	var maxRun *task
	base := tt.id * m.cfg.CoresPerTile
	for i := 0; i < m.cfg.CoresPerTile; i++ {
		c := m.cores[base+i]
		if c.task == nil || c.task.state != taskRunning || !c.task.spec() {
			return // a core is free or non-abortable: no need / no ability
		}
		if c.task.vt.Less(bound) {
			return // arrived does not precede every running task
		}
		if maxRun == nil || maxRun.vt.Less(c.task.vt) {
			maxRun = c.task
		}
	}
	if maxRun != nil {
		m.st.policyAborts++
		m.abortTask(maxRun, false)
	}
}

func (m *Machine) wakeOneStalled(tt *tile) {
	for len(tt.stalledCores) > 0 {
		id := tt.stalledCores[0]
		tt.stalledCores = tt.stalledCores[1:]
		c := m.cores[id]
		c.inStallList = false
		if c.task == nil {
			m.scheduleDispatch(c, 1)
			return
		}
	}
}

func (m *Machine) freeSlot(t *task) {
	tt := m.tiles[t.tile]
	tt.nTasks--
	if tt.nTasks < 0 {
		panic("core: task queue underflow")
	}
	m.putFilter(t.rs)
	m.putFilter(t.ws)
	t.rs, t.ws = nil, nil
	m.drainOverflow(tt)
}

// drainOverflow re-materializes software-overflowed descriptors, smallest
// timestamp first. Refills stop at the spill threshold — draining into a
// nearly-full queue would just re-trigger the coalescer (and can starve
// splitters of the room they need) — except that the overflow head is
// always rescued when it precedes every idle task, so the globally
// earliest work stays reachable.
func (m *Machine) drainOverflow(tt *tile) {
	spillLimit := m.cfg.TaskQPerTile() * m.cfg.SpillThresholdPct / 100
	for len(tt.overflow) > 0 && m.hasSpace(tt) {
		belowLimit := m.cfg.UnboundedQueues || tt.nTasks < spillLimit
		if !belowLimit {
			minIdle := tt.idleQ.Min()
			if minIdle != nil && minIdle.desc.TS <= tt.overflow[0].TS {
				return // head is already in hardware; wait for room
			}
		}
		d := heap.Pop(&tt.overflow).(guest.TaskDesc)
		m.insertIdle(tt, m.newTask(d, tt.id, nil))
	}
}

// ------------------------------------------------------------- dispatch --

func (m *Machine) scheduleDispatch(c *cpu, delay uint64) {
	if c.dispatchPending || m.done {
		return
	}
	c.dispatchPending = true
	m.eng.After(delay, func() {
		c.dispatchPending = false
		m.dispatch(c)
	})
}

// dispatch implements dequeue_task on a free core: run a coalescer if the
// task queue needs spilling, else dispatch the smallest-timestamp idle
// task, else stall until work arrives (§4.1: dequeue_task stalls the core,
// avoiding busy-waiting).
func (m *Machine) dispatch(c *cpu) {
	if m.done || c.task != nil {
		return
	}
	tt := m.tiles[c.tile]
	if tt.spillWanted && !tt.coalescing {
		if m.runCoalescer(c) {
			return
		}
	}
	t := tt.idleQ.Min()
	if t == nil {
		if !c.inStallList {
			c.inStallList = true
			tt.stalledCores = append(tt.stalledCores, c.id)
		}
		return
	}
	now := m.eng.Now()
	if tt.everDequeued && tt.lastDequeue == now {
		// At most one dequeue per tile per cycle keeps virtual times
		// unique (§4.4).
		m.scheduleDispatch(c, 1)
		return
	}
	tt.lastDequeue = now
	tt.everDequeued = true
	tt.idleQ.Remove(t)

	t.state = taskRunning
	t.core = c.id
	t.lastCore = c.id
	c.task = t
	t.vt = vt.Time{TS: t.desc.TS, Cycle: now, Tile: uint32(tt.id)}
	m.st.dequeues++

	// L1 conflict-filter invariant: flash-clear when running backwards.
	if c.everRan && t.vt.Less(c.lastVT) {
		m.hier.FlashClearL1(c.id)
	}
	c.lastVT = t.vt
	c.everRan = true

	m.busy(c, t, m.cfg.DequeueCost)
	t.pendingEv = m.eng.After(m.cfg.DequeueCost, func() {
		t.pendingEv = nil
		m.startBody(c, t)
	})
}

func (m *Machine) startBody(c *cpu, t *task) {
	if t.kind == kindSplitter {
		m.runSplitter(c, t)
		return
	}
	if t.desc.Fn < 0 || t.desc.Fn >= len(m.prog.Fns) {
		panic(fmt.Sprintf("core: task function %d out of range", t.desc.Fn))
	}
	t.co = guest.StartTask(m.prog.Fns[t.desc.Fn], t.desc)
	m.resumeTask(c, t, guest.Result{})
}

// busy charges cycles to a task and its core's wall-clock busy bucket.
func (m *Machine) busy(c *cpu, t *task, cycles uint64) {
	t.cyc += cycles
	if t.spec() {
		c.wallWorker += cycles
	} else {
		c.wallSpill += cycles
	}
}

func (m *Machine) resumeTask(c *cpu, t *task, r guest.Result) {
	op := t.co.Resume(r)
	m.handleOp(c, t, op)
}

func (m *Machine) handleOp(c *cpu, t *task, op guest.Op) {
	switch op.Kind {
	case guest.OpWork:
		m.busy(c, t, op.N)
		t.pendingEv = m.eng.After(op.N, func() {
			t.pendingEv = nil
			m.resumeTask(c, t, guest.Result{})
		})

	case guest.OpLoad, guest.OpStore:
		lat, val := m.access(c, t, op)
		m.busy(c, t, lat)
		t.pendingEv = m.eng.After(lat, func() {
			t.pendingEv = nil
			m.resumeTask(c, t, guest.Result{Val: val})
		})

	case guest.OpEnqueue:
		m.enqueueOp(c, t, op.Task, 0)

	case guest.OpAlloc:
		addr := m.heap.Alloc(op.N)
		m.busy(c, t, mem.AllocCycles)
		t.pendingEv = m.eng.After(mem.AllocCycles, func() {
			t.pendingEv = nil
			m.resumeTask(c, t, guest.Result{Val: addr})
		})

	case guest.OpFree:
		m.heap.Free(t.allocToken, op.Addr, op.N)
		m.busy(c, t, mem.AllocCycles)
		t.pendingEv = m.eng.After(mem.AllocCycles, func() {
			t.pendingEv = nil
			m.resumeTask(c, t, guest.Result{})
		})

	case guest.OpDone:
		t.co = nil
		m.busy(c, t, m.cfg.FinishCost)
		t.pendingEv = m.eng.After(m.cfg.FinishCost, func() {
			t.pendingEv = nil
			m.tryFinish(c, t)
		})

	default:
		panic(fmt.Sprintf("core: unsupported op %v on a Swarm machine", op.Kind))
	}
}

// enqueueOp implements enqueue_task (Fig 5): send the descriptor to a
// random tile; on NACK (queue full of speculative tasks) retry with linear
// backoff; the GVT task's children overflow to memory instead (§4.7).
func (m *Machine) enqueueOp(c *cpu, t *task, d guest.TaskDesc, attempt int) {
	t.inBackoff = false
	m.busy(c, t, m.cfg.EnqueueCost)
	target := m.rng.Intn(m.cfg.Tiles)
	if m.cfg.LocalEnqueue {
		target = t.tile
	}
	tt := m.tiles[target]
	m.st.enqueues++
	m.mesh.Send(t.tile, target, noc.ClassEnqueue, noc.TaskDescBytes)

	switch {
	case m.hasSpace(tt):
		var parent *task
		if t.spec() {
			parent = t
		}
		child := m.newTask(d, target, parent)
		m.insertIdle(tt, child)
		m.mesh.Send(target, t.tile, noc.ClassEnqueue, noc.AckBytes)

	case !m.gvt.Less(t.vt):
		// t is the GVT task: its children may overflow to memory so it
		// always makes progress (no parent tracking needed).
		heap.Push(&tt.overflow, d)
		m.mesh.Send(target, t.tile, noc.ClassEnqueue, noc.AckBytes)
		m.st.overflowed++

	default:
		// NACK; retry with linear backoff, capped so a task that becomes
		// the GVT task discovers its overflow privilege promptly. The
		// wait is not attributed to the task (it surfaces as stall time).
		m.mesh.Send(target, t.tile, noc.ClassEnqueue, noc.AckBytes)
		m.st.nacks++
		backoff := m.cfg.EnqueueCost + uint64(attempt+1)*10
		if backoff > m.cfg.GVTPeriod/2 {
			backoff = m.cfg.GVTPeriod / 2
		}
		if t.state == taskRunning { // insertIdle policies may have squashed t
			t.inBackoff = true
			t.pendingEv = m.eng.After(backoff, func() {
				t.pendingEv = nil
				if t.state == taskRunning {
					m.enqueueOp(c, t, d, attempt+1)
				}
			})
		}
		return
	}

	if t.state == taskRunning { // a full-queue policy may have aborted t
		t.pendingEv = m.eng.After(m.cfg.EnqueueCost, func() {
			t.pendingEv = nil
			m.resumeTask(c, t, guest.Result{OK: true})
		})
	}
}

// tryFinish moves a finished worker into the commit queue, applying the
// §4.7 commit-queue policy when it is full.
func (m *Machine) tryFinish(c *cpu, t *task) {
	tt := m.tiles[t.tile]
	if !m.cfg.UnboundedQueues && len(tt.commitQ) >= m.cfg.CommitQPerTile() {
		// If t precedes the highest-VT finished task, abort that task
		// and take its entry; otherwise stall the core until one frees.
		var maxF *task
		for _, f := range tt.commitQ {
			if maxF == nil || maxF.vt.Less(f.vt) {
				maxF = f
			}
		}
		if maxF != nil && t.vt.Less(maxF.vt) {
			m.st.policyAborts++
			m.abortTask(maxF, false)
		} else {
			t.state = taskFinishing
			tt.finishWait = append(tt.finishWait, t)
			return // core stays held; commit/abort will free it
		}
	}
	t.state = taskFinished
	tt.commitQ = append(tt.commitQ, t)
	m.releaseCore(c, t)
}

func (m *Machine) releaseCore(c *cpu, t *task) {
	c.task = nil
	t.core = -1
	m.scheduleDispatch(c, 1)
}

// promoteFinishWaiters grants freed commit queue entries to stalled
// finished tasks in virtual-time order.
func (m *Machine) promoteFinishWaiters(tt *tile) {
	for len(tt.finishWait) > 0 &&
		(m.cfg.UnboundedQueues || len(tt.commitQ) < m.cfg.CommitQPerTile()) {
		minI := 0
		for i, w := range tt.finishWait {
			if w.vt.Less(tt.finishWait[minI].vt) {
				minI = i
			}
		}
		w := tt.finishWait[minI]
		tt.finishWait = append(tt.finishWait[:minI], tt.finishWait[minI+1:]...)
		w.state = taskFinished
		tt.commitQ = append(tt.commitQ, w)
		m.releaseCore(m.cores[w.core], w)
	}
}

func removeTask(s []*task, t *task) []*task {
	for i, x := range s {
		if x == t {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
