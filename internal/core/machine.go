package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/sim"
	"github.com/swarm-sim/swarm/internal/tsdom"
	"github.com/swarm-sim/swarm/internal/vt"
)

// Program is a Swarm application: a table of task functions plus a Setup
// hook that initializes guest memory and enqueues the root task(s). Setup
// runs before the measured parallel region (the paper fast-forwards through
// initialization, §5). FnNames, when present, aligns positionally with Fns
// and names the functions in diagnostics (named registration fills it; see
// guest.FnTable).
type Program struct {
	Fns     []guest.TaskFn
	FnNames []string
	Setup   func(*Machine)
}

// FnName returns a diagnostic name for a function handle: the registered
// name when the program was built through named registration, else a
// positional placeholder.
func (p *Program) FnName(id guest.FnID) string {
	if int(id) >= 0 && int(id) < len(p.FnNames) {
		return fmt.Sprintf("%q (#%d)", p.FnNames[id], int(id))
	}
	return fmt.Sprintf("#%d", int(id))
}

// cpu is one simple core (IPC-1 except misses and Swarm instructions).
type cpu struct {
	id, tile int
	task     *task

	// dispatchFn is the pre-bound dispatch event callback (built once in
	// NewMachine) so scheduling a dispatch allocates no closure.
	dispatchFn func()

	lastVT  vt.Time
	everRan bool

	dispatchPending bool
	inStallList     bool

	// wall-clock busy accounting (worker vs spill); stall is the
	// remainder of elapsed time.
	wallWorker uint64
	wallSpill  uint64
	// outcome attribution (Fig 14): filled when tasks commit or abort.
	committedCyc uint64
	abortedCyc   uint64
}

// tile is one task unit: task queue + order queue + commit queue (§4.2).
type tile struct {
	id     int
	nTasks int // occupied task queue entries

	idleQ      orderQueue
	commitQ    vtHeap // finished tasks, min-heap on virtual time
	finishWait vtHeap // finished tasks stalled waiting for a CQ entry

	// overflow holds task descriptors spilled to memory when the queue is
	// full and the enqueuer is the GVT task (§4.7 deadlock avoidance).
	// It is a min-heap on timestamp.
	overflow descHeap

	// ws0/rs0 index the tile's speculative tasks by way-0 signature bit:
	// ws0[i] is a bitmap (over tile slot ids) of the tasks whose write-set
	// filter has way-0 bit i set, and likewise rs0 for read sets. A
	// signature probe can only hit a task whose way-0 bit for the probed
	// line is set, so conflict checks probe exactly the tasks these
	// bitmaps name instead of scanning every core and commit queue entry —
	// the host-side equivalent of the hardware's parallel signature CAM
	// (Fig 8), with bit-exact results. Unused (nil) for Precise
	// signatures, which have no ways; those configs scan fully.
	ws0, rs0 slotBitmaps

	// slotTasks maps tile slot ids to the dispatched speculative tasks
	// holding them; freeSlots recycles ids. Slots are assigned at dispatch
	// and released when the task's signatures are cleared (abort/commit).
	slotTasks []*task
	freeSlots []int32

	lastDequeue   uint64
	everDequeued  bool
	stalledCores  []int
	coalescing    bool
	coalescerTS   uint64     // min timestamp of an in-flight coalescer batch
	coalescerPath tsdom.Path // nested path paired with coalescerTS
	coalescerLive bool
	spillWanted   bool
	commitsCount  uint64 // per-tile, for tracing
	abortsCount   uint64
}

// Machine is a full Swarm CMP.
type Machine struct {
	cfg  Config
	eng  sim.Engine
	gmem *mem.Memory
	heap *mem.Allocator
	mesh *noc.Mesh
	hier *cache.Hierarchy

	tiles  []*tile
	cores  []*cpu
	prog   *Program
	rng    *rand.Rand
	mapper mapper

	seqCtr   uint64
	tokCtr   uint64
	batchCtr uint64
	qSeqCtr  uint64

	// dryRounds counts consecutive GVT rounds without a commit — the
	// trigger for the overflow liveness backstop (see rescueOverflow).
	dryRounds uint64

	spillStore map[uint64]spillBatch

	gvt  vt.Time
	done bool

	// gvtFn and traceFn are the pre-bound periodic event callbacks.
	gvtFn   func()
	traceFn func()

	filterPool []*bloom.Filter

	// Hot-path scratch storage (§4.3 conflict checks run on every access;
	// none of them may allocate in steady state).
	tilesScratch []int         // snapshot of cache.Result.CheckTiles
	victimPool   [][]victimRef // conflict-victim buffers (aborts recurse)
	probe        bloom.Probe   // per-line signature probe, shared by a check batch

	// Task-struct recycling. Freed tasks rest in a graveyard until the
	// engine moves to a later event: abort cascades may still hold freed
	// tasks in victim buffers on the stack, but such references never
	// survive the event that created them, so age (in fired events) makes
	// reuse safe. taskGrave is a FIFO (head..len); entries before head are
	// nil.
	taskGrave []*task
	graveHead int

	// par is the tile-parallel shard runtime (cfg.SimWorkers > 1); nil on
	// the single-threaded path. See parallel.go.
	par *parRuntime

	st      internalStats
	tracer  *tracer
	started bool
	running bool

	// Phase bookkeeping for resumable (session) execution: phase counts
	// completed RunPhase calls, snap holds the cumulative counters at the
	// current phase's start (phase deltas are diffs against it).
	phase int
	snap  phaseSnap
}

// NewMachine builds a machine for the config and program.
func NewMachine(cfg Config, prog *Program) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if prog == nil || prog.Setup == nil {
		return nil, errors.New("core: program must have a Setup hook")
	}
	mp, err := newMapper(cfg.Mapper)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:        cfg,
		gmem:       mem.New(),
		heap:       mem.NewAllocator(),
		mesh:       noc.New(cfg.Tiles, cfg.HopCycles),
		prog:       prog,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		mapper:     mp,
		spillStore: make(map[uint64]spillBatch),
	}
	m.gvtFn = m.gvtRound
	m.hier = cache.New(cfg.Cache, m.mesh)
	m.st.tileTqOccSum = make([]uint64, cfg.Tiles)
	m.st.tileCqOccSum = make([]uint64, cfg.Tiles)
	m.tiles = make([]*tile, cfg.Tiles)
	for i := range m.tiles {
		t := &tile{id: i}
		if n := cfg.Bloom.Way0Bits(); n > 0 {
			t.ws0.init(n)
			t.rs0.init(n)
		}
		m.tiles[i] = t
	}
	m.cores = make([]*cpu, cfg.Cores())
	for i := range m.cores {
		c := &cpu{id: i, tile: i / cfg.CoresPerTile}
		c.dispatchFn = func() {
			c.dispatchPending = false
			m.dispatch(c)
		}
		m.cores[i] = c
	}
	if cfg.TraceInterval > 0 {
		m.tracer = newTracer(m)
	}
	if cfg.SimWorkers > 1 {
		m.par = newParRuntime(m)
	}
	return m, nil
}

// Mem exposes guest memory (for Setup and for result verification).
func (m *Machine) Mem() *mem.Memory { return m.gmem }

// SetupAlloc allocates guest memory with no simulated cost; valid in Setup
// (initialization is outside the measured region).
func (m *Machine) SetupAlloc(nBytes uint64) uint64 { return m.heap.AllocLineAligned(nBytes) }

// Now returns the current cycle.
func (m *Machine) Now() uint64 { return m.eng.Now() }

// EnqueueRoot inserts a parentless task during Setup (zero cost).
func (m *Machine) EnqueueRoot(fn guest.FnID, ts uint64, args ...uint64) {
	d := guest.TaskDesc{Fn: fn, TS: ts}
	if len(args) > 3 {
		panic("core: root tasks take at most 3 argument words")
	}
	copy(d.Args[:], args)
	m.EnqueueRootDesc(d)
}

// EnqueueRootDesc inserts a parentless task descriptor during Setup.
func (m *Machine) EnqueueRootDesc(d guest.TaskDesc) {
	target := m.mapper.place(m, d, -1)
	tt := m.tiles[target]
	if m.hasSpace(tt) {
		m.insertIdle(tt, m.newTask(d, target, nil))
	} else {
		heap.Push(&tt.overflow, d)
	}
}

// Run executes the program to completion and returns statistics: the
// one-shot path, equivalent to Start followed by a single RunPhase.
func (m *Machine) Run() (Stats, error) {
	if err := m.Start(); err != nil {
		return Stats{}, err
	}
	ph, err := m.RunPhase()
	if err != nil {
		return Stats{}, err
	}
	return ph.Cumulative, nil
}

// Start runs the program's Setup hook — guest-memory layout plus the root
// enqueues — without executing anything. After Start, the machine is
// quiescent: callers may inspect QueuedTasks, enqueue further roots, and
// drive execution phase by phase with RunPhase.
func (m *Machine) Start() error {
	if m.started {
		return errors.New("core: machine already ran")
	}
	m.started = true
	m.done = true // quiescent until a phase runs
	m.prog.Setup(m)
	return nil
}

// Quiesced reports whether the machine is at a quiescent point: started,
// not mid-phase, and with no speculative state in flight. Guest memory
// reads, setup-cost mutation and root enqueues are valid exactly here.
func (m *Machine) Quiesced() bool { return m.started && !m.running }

// QueuedTasks returns the number of task descriptors waiting anywhere in
// the machine — hardware task queues, memory overflow buffers and spilled
// batches. At a quiescent point this is exactly the work the next RunPhase
// would execute.
func (m *Machine) QueuedTasks() int {
	n := 0
	for _, tt := range m.tiles {
		n += tt.nTasks + len(tt.overflow)
	}
	for _, b := range m.spillStore {
		n += len(b.descs)
	}
	return n
}

// SetupFree releases guest memory with no simulated cost; valid at
// quiescent points (setup and between phases), where no task can hold a
// speculative reference to the region.
func (m *Machine) SetupFree(addr, nBytes uint64) {
	m.heap.Free(0, addr, nBytes)
	m.heap.ReleaseQuarantine(0)
}

// RunPhase executes queued work to quiescence (§4.1's termination
// condition: all queues empty, all tasks committed) and returns the
// phase's statistics. It is resumable: after it returns, callers may
// mutate guest memory at setup cost, enqueue new root tasks, and call
// RunPhase again — the clock, caches and queue state carry over, so later
// phases run against the warmed machine.
func (m *Machine) RunPhase() (PhaseStats, error) {
	if !m.started {
		return PhaseStats{}, errors.New("core: RunPhase before Start")
	}
	if m.running {
		return PhaseStats{}, errors.New("core: RunPhase re-entered mid-phase")
	}
	m.phase++
	m.running = true
	m.done = false
	m.snap = m.takeSnap()
	for _, c := range m.cores {
		if c.task == nil {
			m.scheduleDispatch(c, 0)
		}
	}
	m.eng.After(m.cfg.GVTPeriod, m.gvtFn)
	if m.tracer != nil {
		if m.traceFn == nil {
			m.traceFn = m.tracer.sample
		}
		m.eng.After(m.cfg.TraceInterval, m.traceFn)
	}
	limit := m.cfg.MaxCycles
	if limit != 0 {
		limit += m.snap.cycle // per-phase budget, absolute engine cycle
	}
	if m.par != nil {
		m.par.start()
	}
	err := m.eng.Run(limit)
	if m.par != nil {
		m.par.stopWorkers()
	}
	m.running = false
	if err != nil {
		return PhaseStats{}, fmt.Errorf("core: %w (likely livelock: %s)", err, m.describeState())
	}
	if !m.done {
		return PhaseStats{}, fmt.Errorf("core: simulation stalled at cycle %d: %s", m.eng.Now(), m.describeState())
	}
	return m.phaseStats(), nil
}

// Phase returns the number of completed phases.
func (m *Machine) Phase() int { return m.phase }

// Snapshot returns cumulative statistics at a quiescent point (after
// Start, between phases, or after the final phase) without disturbing the
// machine: sessions sample mid-run occupancy/commit/NoC state here.
func (m *Machine) Snapshot() Stats { return m.collectStats() }

func (m *Machine) describeState() string {
	tq, cq, fw, idle, ovf := 0, 0, 0, 0, 0
	coal := 0
	for _, t := range m.tiles {
		tq += t.nTasks
		cq += t.commitQ.Len()
		fw += t.finishWait.Len()
		idle += t.idleQ.Len()
		ovf += len(t.overflow)
		if t.coalescing {
			coal++
		}
	}
	cores := ""
	for _, c := range m.cores {
		switch {
		case c.task == nil:
			cores += "-"
		default:
			ev := "noev"
			if c.task.pendingEv != nil && !c.task.pendingEv.Cancelled() {
				ev = fmt.Sprintf("ev@%d", c.task.pendingEv.Cycle())
			}
			cores += fmt.Sprintf("[%s k=%d vt=%v %s]", c.task.state, c.task.kind, c.task.vt, ev)
		}
	}
	return fmt.Sprintf("%d queued (%d idle, %d finishWait), %d in commit queues, %d overflowed, %d coalescing, %d spill batches, cores=%s, gvt=%v, commits=%d aborts=%d dequeues=%d nacks=%d spilled=%d",
		tq, idle, fw, cq, ovf, coal, len(m.spillStore), cores, m.gvt,
		m.st.commits, m.st.aborts, m.st.dequeues, m.st.nacks, m.st.spilledTasks)
}

// ---------------------------------------------------------------- tasks --

func (m *Machine) newTask(d guest.TaskDesc, tileID int, parent *task) *task {
	t := m.allocTask()
	t.desc = d
	t.tile = tileID
	t.seq = m.nextSeq()
	t.allocToken = m.nextToken()
	if parent != nil {
		t.parent = parent
		if len(parent.children) >= m.cfg.MaxChildren {
			panic(fmt.Sprintf("core: task exceeded the %d-child hardware limit; enqueue a spawner task instead (§4.1)", m.cfg.MaxChildren))
		}
		parent.children = append(parent.children, t)
	}
	t.rs = m.getFilter()
	t.ws = m.getFilter()
	return t
}

func (m *Machine) nextSeq() uint64   { m.seqCtr++; return m.seqCtr }
func (m *Machine) nextToken() uint64 { m.tokCtr++; return m.tokCtr }

// allocTask returns a zeroed task, recycling the graveyard head when it was
// freed in an earlier engine event (see taskGrave).
func (m *Machine) allocTask() *task {
	if m.graveHead < len(m.taskGrave) && m.taskGrave[m.graveHead].graveEv < m.eng.Fired() {
		t := m.taskGrave[m.graveHead]
		m.taskGrave[m.graveHead] = nil
		m.graveHead++
		if m.graveHead == len(m.taskGrave) {
			m.taskGrave = m.taskGrave[:0]
			m.graveHead = 0
		}
		// Reset everything except the retained capacities (children, undo)
		// and the pre-bound event callback.
		t.desc = guest.TaskDesc{}
		t.kind = kindWorker
		t.state = taskIdle
		t.seq = 0
		t.vt = vt0
		t.parent = nil
		t.children = t.children[:0]
		t.undo = t.undo[:0]
		t.co = nil
		t.core = -1
		t.lastCore = -1
		t.cyc = 0
		t.pendingEv = nil
		t.inBackoff = false
		t.pend = 0
		t.pendVal = 0
		t.pendDesc = guest.TaskDesc{}
		t.pendAttempt = 0
		t.batch = 0
		t.allocToken = 0
		t.heapIdx = -1
		t.cqIdx = -1
		t.qSeq = 0
		t.slot = -1
		t.ws0Bits = t.ws0Bits[:0]
		t.rs0Bits = t.rs0Bits[:0]
		t.parJob = nil
		return t
	}
	t := &task{core: -1, lastCore: -1, heapIdx: -1, cqIdx: -1, slot: -1}
	t.evFn = func() { m.taskEvent(t) }
	return t
}

// graveTask parks a freed task for recycling once the engine has moved on.
func (m *Machine) graveTask(t *task) {
	t.graveEv = m.eng.Fired()
	m.taskGrave = append(m.taskGrave, t)
}

// slotBitmaps is one way-0 task index: rows[i] is a bitmap over tile slot
// ids of the tasks whose signature has way-0 bit i set. Rows grow lazily
// as the slot population crosses multiples of 64.
type slotBitmaps struct {
	rows [][]uint64
}

func (b *slotBitmaps) init(nBits int) {
	b.rows = make([][]uint64, nBits)
	// Pre-carve two words (128 slots) per row from one flat backing: tile
	// slot populations are bounded by cores + commit queue + finish-wait,
	// which fits in 128 for every bounded configuration. Unbounded-queue
	// runs grow individual rows past their carved capacity as needed.
	flat := make([]uint64, nBits*2)
	for i := range b.rows {
		b.rows[i] = flat[i*2 : i*2 : i*2+2]
	}
}

func (b *slotBitmaps) set(i uint32, slot int32) {
	row := b.rows[i]
	for int(slot>>6) >= len(row) {
		row = append(row, 0)
	}
	row[slot>>6] |= 1 << (slot & 63)
	b.rows[i] = row
}

func (b *slotBitmaps) clear(i uint32, slot int32) {
	row := b.rows[i]
	if int(slot>>6) < len(row) {
		row[slot>>6] &^= 1 << (slot & 63)
	}
}

// assignSlot gives a dispatched speculative task a tile slot id.
func (m *Machine) assignSlot(tt *tile, t *task) {
	if n := len(tt.freeSlots); n > 0 {
		t.slot = tt.freeSlots[n-1]
		tt.freeSlots = tt.freeSlots[:n-1]
		tt.slotTasks[t.slot] = t
		return
	}
	t.slot = int32(len(tt.slotTasks))
	tt.slotTasks = append(tt.slotTasks, t)
}

// releaseSlot drops a task from the way-0 index (clearing every bit its
// inserts set) and recycles its slot id. Paired with clearing the task's
// signatures.
func (m *Machine) releaseSlot(tt *tile, t *task) {
	if t.slot < 0 {
		return
	}
	for _, i := range t.ws0Bits {
		tt.ws0.clear(i, t.slot)
	}
	for _, i := range t.rs0Bits {
		tt.rs0.clear(i, t.slot)
	}
	t.ws0Bits = t.ws0Bits[:0]
	t.rs0Bits = t.rs0Bits[:0]
	tt.slotTasks[t.slot] = nil
	tt.freeSlots = append(tt.freeSlots, t.slot)
	t.slot = -1
}

// releaseCoroutine returns a task's finished coroutine to the guest pool.
func (m *Machine) releaseCoroutine(t *task) {
	if t.co != nil {
		t.co.Recycle()
		t.co = nil
	}
}

// victimRef is one conflict victim plus its probe-order key (see
// checkTile): aborts must run in the architectural probe order no matter
// how the candidate search found the task.
type victimRef struct {
	t   *task
	key uint64
}

// getVictims hands out an empty conflict-victim buffer; putVictims returns
// it. Buffers come from a small pool because aborts recurse (an abort's
// rollback conflict-checks and may abort further tasks).
func (m *Machine) getVictims() []victimRef {
	if n := len(m.victimPool); n > 0 {
		v := m.victimPool[n-1]
		m.victimPool = m.victimPool[:n-1]
		return v[:0]
	}
	return make([]victimRef, 0, 8)
}

func (m *Machine) putVictims(v []victimRef) {
	m.victimPool = append(m.victimPool, v)
}

func (m *Machine) getFilter() *bloom.Filter {
	if n := len(m.filterPool); n > 0 {
		f := m.filterPool[n-1]
		m.filterPool = m.filterPool[:n-1]
		return f
	}
	return bloom.NewFilter(m.cfg.Bloom)
}

func (m *Machine) putFilter(f *bloom.Filter) {
	if f == nil {
		return
	}
	f.Clear()
	m.filterPool = append(m.filterPool, f)
}

func (m *Machine) hasSpace(tt *tile) bool {
	return m.cfg.UnboundedQueues || tt.nTasks < m.cfg.TaskQPerTile()
}

// insertIdle places a task in a tile's task queue and order queue, waking a
// stalled core and applying the §4.7 full-queue policies.
func (m *Machine) insertIdle(tt *tile, t *task) {
	tt.nTasks++
	t.state = taskIdle
	t.tile = tt.id
	tt.idleQ.Push(t)
	m.wakeOneStalled(tt)
	m.checkSpillTrigger(tt)
	m.coresPolicy(tt, t)
}

// coresPolicy implements §4.7 "Cores": if a task arrives, the commit queue
// is full, and the task precedes every task running on this tile's cores,
// abort the highest-virtual-time running task so the earlier task can make
// progress.
func (m *Machine) coresPolicy(tt *tile, arrived *task) {
	if m.cfg.UnboundedQueues || tt.commitQ.Len() < m.cfg.CommitQPerTile() {
		return
	}
	bound := arrived.boundVT(m.eng.Now())
	var maxRun *task
	base := tt.id * m.cfg.CoresPerTile
	for i := 0; i < m.cfg.CoresPerTile; i++ {
		c := m.cores[base+i]
		if c.task == nil || c.task.state != taskRunning || !c.task.spec() {
			return // a core is free or non-abortable: no need / no ability
		}
		if c.task.vt.Less(bound) {
			return // arrived does not precede every running task
		}
		if maxRun == nil || maxRun.vt.Less(c.task.vt) {
			maxRun = c.task
		}
	}
	if maxRun != nil {
		m.st.policyAborts++
		m.abortTask(maxRun, false)
	}
}

func (m *Machine) wakeOneStalled(tt *tile) {
	for len(tt.stalledCores) > 0 {
		id := tt.stalledCores[0]
		tt.stalledCores = tt.stalledCores[1:]
		c := m.cores[id]
		c.inStallList = false
		if c.task == nil {
			m.scheduleDispatch(c, 1)
			return
		}
	}
}

func (m *Machine) freeSlot(t *task) {
	tt := m.tiles[t.tile]
	tt.nTasks--
	if tt.nTasks < 0 {
		panic("core: task queue underflow")
	}
	m.putFilter(t.rs)
	m.putFilter(t.ws)
	t.rs, t.ws = nil, nil
	m.graveTask(t)
	m.drainOverflow(tt)
}

// drainOverflow re-materializes software-overflowed descriptors, smallest
// timestamp first. Refills stop at the spill threshold — draining into a
// nearly-full queue would just re-trigger the coalescer (and can starve
// splitters of the room they need) — except that the overflow head is
// always rescued when it precedes every idle task, so the globally
// earliest work stays reachable.
func (m *Machine) drainOverflow(tt *tile) {
	spillLimit := m.cfg.TaskQPerTile() * m.cfg.SpillThresholdPct / 100
	for len(tt.overflow) > 0 && m.hasSpace(tt) {
		belowLimit := m.cfg.UnboundedQueues || tt.nTasks < spillLimit
		if !belowLimit {
			minIdle := tt.idleQ.Min()
			if minIdle != nil && !descLater(minIdle.desc, tt.overflow[0]) {
				return // head is already in hardware; wait for room
			}
		}
		d := heap.Pop(&tt.overflow).(guest.TaskDesc)
		m.insertIdle(tt, m.newTask(d, tt.id, nil))
	}
}

// ------------------------------------------------------------- dispatch --

func (m *Machine) scheduleDispatch(c *cpu, delay uint64) {
	if c.dispatchPending || m.done {
		return
	}
	c.dispatchPending = true
	m.eng.After(delay, c.dispatchFn)
}

// taskEvent is the single event callback every per-task event routes
// through (via task.evFn): it decodes the pending-event kind recorded at
// schedule time. Events are cancelled whenever their task is squashed or
// detached, so at fire time the task is still bound to its core.
func (m *Machine) taskEvent(t *task) {
	t.pendingEv = nil
	if t.pend == pendEnqRetry {
		// Defensive: the retry is cancelled on abort, but never resume a
		// task that is no longer running.
		if t.state == taskRunning {
			m.enqueueOp(m.cores[t.core], t, t.pendDesc, t.pendAttempt)
		}
		return
	}
	c := m.cores[t.core]
	if t.parJob != nil {
		// The continuation ran ahead on a shard worker (parallel mode);
		// join it and consume its op at this, the serial fire cycle.
		m.handleOp(c, t, m.collect(t))
		return
	}
	switch t.pend {
	case pendStart:
		m.startBody(c, t)
	case pendResume:
		m.resumeTask(c, t, guest.Result{Val: t.pendVal})
	case pendResumeOK:
		m.resumeTask(c, t, guest.Result{OK: true})
	case pendFinish:
		m.tryFinish(c, t)
	}
}

// schedule arms t's pre-bound event callback: kind and payload now, fire in
// delay cycles.
func (m *Machine) schedule(t *task, delay uint64, kind pendKind, val uint64) {
	t.pend = kind
	t.pendVal = val
	t.pendingEv = m.eng.After(delay, t.evFn)
	if m.par != nil {
		m.par.maybeOffload(t, kind)
	}
}

// dispatch implements dequeue_task on a free core: run a coalescer if the
// task queue needs spilling, else dispatch the smallest-timestamp idle
// task, else stall until work arrives (§4.1: dequeue_task stalls the core,
// avoiding busy-waiting).
func (m *Machine) dispatch(c *cpu) {
	if m.done || c.task != nil {
		return
	}
	tt := m.tiles[c.tile]
	if tt.spillWanted && !tt.coalescing {
		if m.runCoalescer(c) {
			return
		}
	}
	t := tt.idleQ.Min()
	if t == nil {
		if !c.inStallList {
			c.inStallList = true
			tt.stalledCores = append(tt.stalledCores, c.id)
		}
		return
	}
	now := m.eng.Now()
	if tt.everDequeued && tt.lastDequeue == now {
		// At most one dequeue per tile per cycle keeps virtual times
		// unique (§4.4).
		m.scheduleDispatch(c, 1)
		return
	}
	tt.lastDequeue = now
	tt.everDequeued = true
	tt.idleQ.Remove(t)

	t.state = taskRunning
	t.core = c.id
	t.lastCore = c.id
	c.task = t
	t.vt = descBoundVT(t.desc.TS, t.desc.Path, now, tt.id)
	if t.spec() {
		m.assignSlot(tt, t)
	}
	m.st.dequeues++

	// L1 conflict-filter invariant: flash-clear when running backwards.
	if c.everRan && t.vt.Less(c.lastVT) {
		m.hier.FlashClearL1(c.id)
	}
	c.lastVT = t.vt
	c.everRan = true

	m.busy(c, t, m.cfg.DequeueCost)
	m.schedule(t, m.cfg.DequeueCost, pendStart, 0)
}

func (m *Machine) startBody(c *cpu, t *task) {
	if t.kind == kindSplitter {
		m.runSplitter(c, t)
		return
	}
	if int(t.desc.Fn) < 0 || int(t.desc.Fn) >= len(m.prog.Fns) {
		panic(fmt.Sprintf("core: task function %s out of range", m.prog.FnName(t.desc.Fn)))
	}
	t.co = guest.StartTask(m.prog.Fns[t.desc.Fn], t.desc)
	m.resumeTask(c, t, guest.Result{})
}

// busy charges cycles to a task and its core's wall-clock busy bucket.
func (m *Machine) busy(c *cpu, t *task, cycles uint64) {
	t.cyc += cycles
	if t.spec() {
		c.wallWorker += cycles
	} else {
		c.wallSpill += cycles
	}
}

func (m *Machine) resumeTask(c *cpu, t *task, r guest.Result) {
	op := t.co.Resume(r)
	m.handleOp(c, t, op)
}

func (m *Machine) handleOp(c *cpu, t *task, op guest.Op) {
	switch op.Kind {
	case guest.OpWork:
		m.busy(c, t, op.N)
		m.schedule(t, op.N, pendResume, 0)

	case guest.OpLoad, guest.OpStore:
		lat, val := m.access(c, t, op)
		m.busy(c, t, lat)
		m.schedule(t, lat, pendResume, val)

	case guest.OpEnqueue:
		m.enqueueOp(c, t, op.Task, 0)

	case guest.OpAlloc:
		addr := m.heap.Alloc(op.N)
		m.busy(c, t, mem.AllocCycles)
		m.schedule(t, mem.AllocCycles, pendResume, addr)

	case guest.OpFree:
		m.heap.Free(t.allocToken, op.Addr, op.N)
		m.busy(c, t, mem.AllocCycles)
		m.schedule(t, mem.AllocCycles, pendResume, 0)

	case guest.OpDone:
		m.releaseCoroutine(t)
		m.busy(c, t, m.cfg.FinishCost)
		m.schedule(t, m.cfg.FinishCost, pendFinish, 0)

	default:
		panic(fmt.Sprintf("core: unsupported op %v on a Swarm machine", op.Kind))
	}
}

// enqueueOp implements enqueue_task (Fig 5): send the descriptor to the
// tile the machine's mapper picks (uniform-random in the paper's design);
// on NACK (queue full of speculative tasks) retry with linear backoff; the
// GVT task's children overflow to memory instead (§4.7).
func (m *Machine) enqueueOp(c *cpu, t *task, d guest.TaskDesc, attempt int) {
	t.inBackoff = false
	m.busy(c, t, m.cfg.EnqueueCost)
	target := m.mapper.place(m, d, t.tile)
	tt := m.tiles[target]
	m.st.enqueues++
	m.mesh.Send(t.tile, target, noc.ClassEnqueue, noc.TaskDescBytes)

	switch {
	case m.hasSpace(tt):
		var parent *task
		if t.spec() {
			parent = t
		}
		child := m.newTask(d, target, parent)
		m.insertIdle(tt, child)
		m.mesh.Send(target, t.tile, noc.ClassEnqueue, noc.AckBytes)

	case !m.gvt.Less(t.vt):
		// t is the GVT task: its children may overflow to memory so it
		// always makes progress (no parent tracking needed).
		heap.Push(&tt.overflow, d)
		m.mesh.Send(target, t.tile, noc.ClassEnqueue, noc.AckBytes)
		m.st.overflowed++

	default:
		// NACK; retry with linear backoff, capped so a task that becomes
		// the GVT task discovers its overflow privilege promptly. The
		// wait is not attributed to the task (it surfaces as stall time).
		m.mesh.Send(target, t.tile, noc.ClassEnqueue, noc.AckBytes)
		m.st.nacks++
		backoff := m.cfg.EnqueueCost + uint64(attempt+1)*10
		if backoff > m.cfg.GVTPeriod/2 {
			backoff = m.cfg.GVTPeriod / 2
		}
		if t.state == taskRunning { // insertIdle policies may have squashed t
			t.inBackoff = true
			t.pendDesc = d
			t.pendAttempt = attempt + 1
			m.schedule(t, backoff, pendEnqRetry, 0)
		}
		return
	}

	if t.state == taskRunning { // a full-queue policy may have aborted t
		m.schedule(t, m.cfg.EnqueueCost, pendResumeOK, 0)
	}
}

// tryFinish moves a finished worker into the commit queue, applying the
// §4.7 commit-queue policy when it is full.
func (m *Machine) tryFinish(c *cpu, t *task) {
	tt := m.tiles[t.tile]
	if !m.cfg.UnboundedQueues && tt.commitQ.Len() >= m.cfg.CommitQPerTile() {
		// If t precedes the highest-VT finished task, abort that task
		// and take its entry; otherwise stall the core until one frees.
		// The heap only knows its minimum, so the max is a linear scan —
		// this path runs only when the commit queue is full.
		var maxF *task
		for _, f := range tt.commitQ.s {
			if maxF == nil || maxF.vt.Less(f.vt) {
				maxF = f
			}
		}
		if maxF != nil && t.vt.Less(maxF.vt) {
			m.st.policyAborts++
			m.abortTask(maxF, false)
		} else {
			t.state = taskFinishing
			t.qSeq = m.nextQSeq()
			tt.finishWait.Push(t)
			return // core stays held; commit/abort will free it
		}
	}
	t.state = taskFinished
	t.qSeq = m.nextQSeq()
	tt.commitQ.Push(t)
	m.releaseCore(c, t)
}

func (m *Machine) releaseCore(c *cpu, t *task) {
	c.task = nil
	t.core = -1
	m.scheduleDispatch(c, 1)
}

// promoteFinishWaiters grants freed commit queue entries to stalled
// finished tasks in virtual-time order.
func (m *Machine) promoteFinishWaiters(tt *tile) {
	for tt.finishWait.Len() > 0 &&
		(m.cfg.UnboundedQueues || tt.commitQ.Len() < m.cfg.CommitQPerTile()) {
		w := tt.finishWait.PopMin()
		w.state = taskFinished
		w.qSeq = m.nextQSeq()
		tt.commitQ.Push(w)
		m.releaseCore(m.cores[w.core], w)
	}
}

func (m *Machine) nextQSeq() uint64 { m.qSeqCtr++; return m.qSeqCtr }
