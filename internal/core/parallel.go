package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/vt"
)

// Tile-parallel simulation (Config.SimWorkers > 1).
//
// The event loop stays a single sequencer: every machine-state mutation —
// queue inserts, conflict checks, commits, NoC accounting, statistics —
// still happens on the caller's goroutine in strict (cycle, seq) event
// order, exactly as in the serial machine. What moves off the sequencer is
// the guest work between those mutations: shard workers, each owning a
// contiguous group of tiles, run guest-coroutine continuations ahead of
// time, and GVT rounds reduce per-tile minima through a two-phase
// fan-out/fan-in over the same shards.
//
// Execute-ahead is sound because of two properties the serial machine
// already has:
//
//  1. Every coroutine Resume input is latched at schedule time. A resume
//     event carries its Result payload from the moment it is armed
//     (pendResume delivers the val computed when the op was handled,
//     pendResumeOK delivers {OK: true}, pendStart delivers the empty
//     Result), so the guest's next segment sees identical inputs whether
//     it runs at the event's fire cycle or during the latency window
//     before it.
//
//  2. Guest segments are pure between ops. Task bodies touch the machine
//     only through yielded ops (guest.Env surrenders every load, store,
//     enqueue, ...); between yields they read and write coroutine-local
//     state only. The segment's sole output — the next Op — is consumed by
//     the sequencer at exactly the cycle the serial machine would have
//     produced it.
//
// So the parallel machine fires the same events at the same cycles in the
// same order, performs the same mutations, and draws the same random
// numbers: Stats, PhaseStats and committed memory are bit-identical to
// SimWorkers=1. The differential suite (paralleldiff tests, the golden
// fingerprint corpus's simworkers cells) pins this, under -race.
//
// Shard workers communicate with the sequencer through per-shard SPSC
// rings (sequencer = single producer, worker = single consumer) with a
// one-token notify channel for parking; job completion is published
// through a per-job atomic flag the sequencer spin-joins at fire time. A
// job whose ring is full runs inline on the sequencer — same result,
// no waiting.

// parJob is one offloaded guest continuation. The sequencer fills the
// input fields and pushes; the worker writes co/op and publishes done;
// the sequencer consumes the op at the event's fire cycle (collect) or
// discards it on abort (abandon).
type parJob struct {
	t     *task
	start bool           // pendStart: StartTask + first resume
	fn    guest.TaskFn   // start jobs only
	desc  guest.TaskDesc // start jobs only
	res   guest.Result   // resume jobs: the latched Resume input

	co   *guest.Coroutine // start jobs: worker-created coroutine
	op   guest.Op         // the op the segment surrendered
	done atomic.Bool
}

// run executes the continuation. Called by a shard worker, or by the
// sequencer when the shard's ring is full (inline fallback).
func (j *parJob) run() {
	if j.start {
		j.co = guest.StartTask(j.fn, j.desc)
		j.op = j.co.Resume(guest.Result{})
	} else {
		j.op = j.t.co.Resume(j.res)
	}
	j.done.Store(true)
}

// gvtReq is one shard's slice of a two-phase GVT reduction: the sequencer
// arms it with the round's cycle, the worker fills the partial results and
// publishes done, the sequencer folds the partials in shard order.
type gvtReq struct {
	now    uint64
	min    vt.Time
	tq, cq uint64
	done   atomic.Bool
}

// parShard is one worker's communication state: the tile range it owns,
// its job ring, its GVT-reduction slot and its parking channel.
type parShard struct {
	id             int
	loTile, hiTile int // owns tiles [loTile, hiTile)

	ring   spscRing
	req    atomic.Pointer[gvtReq]
	notify chan struct{} // one-token wakeup; rebuilt every start()
}

// parRuntime is the machine's shard-worker pool. Built once in NewMachine
// when SimWorkers > 1; workers are spawned per RunPhase and joined before
// it returns, so a quiescent machine holds no goroutines.
type parRuntime struct {
	m         *Machine
	shards    []*parShard
	tileShard []int // tile id -> owning shard
	reqs      []gvtReq

	perturb int64 // seed for randomized worker yield points; 0 = off
	wg      sync.WaitGroup
	stop    atomic.Bool

	jobPool []*parJob
}

// newParRuntime carves cfg.Tiles into min(SimWorkers, Tiles) contiguous
// shards of near-equal size.
func newParRuntime(m *Machine) *parRuntime {
	n := m.cfg.SimWorkers
	if n > m.cfg.Tiles {
		n = m.cfg.Tiles
	}
	p := &parRuntime{
		m:         m,
		shards:    make([]*parShard, n),
		tileShard: make([]int, m.cfg.Tiles),
		reqs:      make([]gvtReq, n),
		perturb:   m.cfg.SimPerturb,
	}
	base, rem := m.cfg.Tiles/n, m.cfg.Tiles%n
	lo := 0
	for i := range p.shards {
		hi := lo + base
		if i < rem {
			hi++
		}
		s := &parShard{id: i, loTile: lo, hiTile: hi}
		// Outstanding jobs per shard are bounded by its running tasks (one
		// continuation per dispatched task), i.e. its core count.
		s.ring.init((hi - lo) * m.cfg.CoresPerTile)
		for t := lo; t < hi; t++ {
			p.tileShard[t] = i
		}
		p.shards[i] = s
		lo = hi
	}
	return p
}

// start spawns one worker goroutine per shard. Called at RunPhase entry.
func (p *parRuntime) start() {
	p.stop.Store(false)
	for _, s := range p.shards {
		s.notify = make(chan struct{}, 1)
		p.wg.Add(1)
		go p.worker(s)
	}
}

// stopWorkers drains and joins every worker. Called before RunPhase
// returns (normal completion or error), so phases never leak goroutines.
func (p *parRuntime) stopWorkers() {
	p.stop.Store(true)
	for _, s := range p.shards {
		close(s.notify)
	}
	p.wg.Wait()
}

// worker is one shard's loop: GVT-reduction requests take priority over
// queued continuations; with nothing to do it parks on the notify channel.
// Under a perturbation seed it inserts randomized yields and microsleeps
// around every unit of work — the adversarial-scheduling mode; the seeds
// gate host-side delays only and cannot influence simulation results.
func (p *parRuntime) worker(s *parShard) {
	defer p.wg.Done()
	var prng *rand.Rand
	if p.perturb != 0 {
		prng = rand.New(rand.NewSource(p.perturb + int64(s.id)*0x9e3779b9))
	}
	for {
		if req := s.req.Load(); req != nil {
			s.req.Store(nil)
			perturbPoint(prng)
			p.reduceShard(s, req)
			req.done.Store(true)
			continue
		}
		if j := s.ring.pop(); j != nil {
			perturbPoint(prng)
			j.run()
			perturbPoint(prng)
			continue
		}
		if p.stop.Load() {
			return
		}
		<-s.notify // token or closed channel; either way re-check
	}
}

// perturbPoint is a randomized scheduler yield: sometimes nothing,
// sometimes a Gosched, sometimes a microsleep. Shifting worker timing this
// way flushes ordering bugs that a quiet scheduler would hide.
func perturbPoint(prng *rand.Rand) {
	if prng == nil {
		return
	}
	switch prng.Intn(4) {
	case 0:
		runtime.Gosched()
	case 1:
		time.Sleep(time.Duration(prng.Intn(5)) * time.Microsecond)
	}
}

// maybeOffload hands t's just-scheduled continuation to the worker owning
// t's tile. Only worker-task coroutine resumes qualify: splitters have no
// coroutine, and an out-of-range function id must keep panicking at the
// event's fire cycle, exactly as the serial startBody does.
func (p *parRuntime) maybeOffload(t *task, kind pendKind) {
	j := p.getJob()
	j.t = t
	switch kind {
	case pendStart:
		if t.kind != kindWorker || int(t.desc.Fn) < 0 || int(t.desc.Fn) >= len(p.m.prog.Fns) {
			p.putJob(j)
			return
		}
		j.start = true
		j.fn = p.m.prog.Fns[t.desc.Fn]
		j.desc = t.desc
	case pendResume:
		if t.co == nil {
			p.putJob(j)
			return
		}
		j.res = guest.Result{Val: t.pendVal}
	case pendResumeOK:
		if t.co == nil {
			p.putJob(j)
			return
		}
		j.res = guest.Result{OK: true}
	default:
		p.putJob(j)
		return
	}
	t.parJob = j
	s := p.shards[p.tileShard[t.tile]]
	if !s.ring.push(j) {
		j.run() // ring full: execute inline, identical result
		return
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// collect joins t's offloaded continuation at its event's fire cycle and
// returns the op the guest segment surrendered.
func (m *Machine) collect(t *task) guest.Op {
	j := t.parJob
	for !j.done.Load() {
		runtime.Gosched()
	}
	if j.start {
		t.co = j.co
	}
	op := j.op
	t.parJob = nil
	m.par.putJob(j)
	return op
}

// abandon joins and discards t's in-flight continuation on abort. The
// pre-executed segment touched nothing machine-visible (its op is dropped
// unconsumed), so the abort proceeds exactly as the serial machine's: the
// coroutine unwinds from its parked yield — unless the segment ran the
// body to completion, in which case there is no yield left to unwind and
// the coroutine parks in the pool directly (the serial abort path reaches
// the same machine state through its OpAborted unwind).
func (p *parRuntime) abandon(t *task) {
	j := t.parJob
	for !j.done.Load() {
		runtime.Gosched()
	}
	if j.start {
		t.co = j.co
	}
	if t.co != nil && t.co.Done() {
		t.co.Recycle()
		t.co = nil
	}
	t.parJob = nil
	p.putJob(j)
}

// gvtReduce is the two-phase GVT reduction (the parallel arm of gvtRound):
// phase one fans a request out to every shard, which computes the min
// virtual-time bound and queue-occupancy partials over its own tiles;
// phase two folds the per-shard partials in shard order on the sequencer.
// Min and sum are exact regardless of grouping, and each shard's per-tile
// occupancy writes land in disjoint index ranges, so the folded results
// are bit-identical to the serial tile loop.
func (p *parRuntime) gvtReduce(now uint64) (gvt vt.Time, tq, cq uint64) {
	for i, s := range p.shards {
		req := &p.reqs[i]
		req.now = now
		req.min = vt.Infinity
		req.tq, req.cq = 0, 0
		req.done.Store(false)
		s.req.Store(req)
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
	gvt = vt.Infinity
	for i := range p.shards {
		req := &p.reqs[i]
		for !req.done.Load() {
			runtime.Gosched()
		}
		if req.min.Less(gvt) {
			gvt = req.min
		}
		tq += req.tq
		cq += req.cq
	}
	return gvt, tq, cq
}

// reduceShard computes one shard's reduction slice: min tileMinVT plus
// occupancy sums over its tiles. Per-tile occupancy statistics are written
// directly (each tile belongs to exactly one shard). Everything read here
// — cores, queues, heaps — is frozen while the sequencer waits inside the
// GVT event; concurrent continuation jobs touch only coroutine-local
// state.
func (p *parRuntime) reduceShard(s *parShard, req *gvtReq) {
	m := p.m
	for i := s.loTile; i < s.hiTile; i++ {
		tt := m.tiles[i]
		if tv := m.tileMinVT(tt, req.now); tv.Less(req.min) {
			req.min = tv
		}
		tq := uint64(tt.nTasks)
		cq := uint64(tt.commitQ.Len() + tt.finishWait.Len())
		req.tq += tq
		req.cq += cq
		m.st.tileTqOccSum[i] += tq
		m.st.tileCqOccSum[i] += cq
	}
}

// getJob / putJob recycle job structs (sequencer-side only).
func (p *parRuntime) getJob() *parJob {
	if n := len(p.jobPool); n > 0 {
		j := p.jobPool[n-1]
		p.jobPool = p.jobPool[:n-1]
		return j
	}
	return &parJob{}
}

func (p *parRuntime) putJob(j *parJob) {
	*j = parJob{}
	p.jobPool = append(p.jobPool, j)
}

// spscRing is a bounded single-producer single-consumer queue of job
// pointers: the sequencer pushes, one shard worker pops. Go's atomic
// loads/stores are sequentially consistent, which subsumes the
// acquire/release pairing a classic SPSC ring needs; the slot array uses
// atomic pointers so the consumer's read of a just-published slot is
// well-defined under the race detector.
type spscRing struct {
	buf  []atomic.Pointer[parJob]
	mask uint64
	head atomic.Uint64 // consumer position
	tail atomic.Uint64 // producer position
}

// init sizes the ring to the next power of two >= capacity (and >= 2).
func (r *spscRing) init(capacity int) {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r.buf = make([]atomic.Pointer[parJob], n)
	r.mask = uint64(n - 1)
}

// push appends a job; it reports false when the ring is full.
func (r *spscRing) push(j *parJob) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask].Store(j)
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest job, or returns nil when the ring is empty.
func (r *spscRing) pop() *parJob {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	j := r.buf[h&r.mask].Load()
	r.buf[h&r.mask].Store(nil)
	r.head.Store(h + 1)
	return j
}
