package core

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
)

// tinyConfig builds a stress configuration with very small queues.
func tinyConfig(tiles, cpt, tq, cq int) Config {
	cfg := Config{
		Tiles: tiles, CoresPerTile: cpt,
		TaskQPerCore: tq, CommitQPerCore: cq,
		EnqueueCost: 5, DequeueCost: 5, FinishCost: 5,
		GVTPeriod: 100, TileCheckCost: 5,
		SpillThresholdPct: 75, SpillBatch: 4, SpillCyclesPerTask: 10,
		MaxChildren: 8,
		Bloom:       bloom.Default(),
		HopCycles:   3,
		Seed:        1,
		MaxCycles:   200_000_000,
		DebugChecks: true,
	}
	cfg.Cache = cache.DefaultParams(tiles, cpt)
	return cfg
}

// TestCommitQueueFullPolicy: with one commit queue entry per core, later
// finished tasks must be aborted or stalled so earlier tasks can finish;
// results must stay correct and the §4.7 policies must actually fire.
func TestCommitQueueFullPolicy(t *testing.T) {
	cfg := tinyConfig(1, 2, 16, 1) // 2 CQ entries per tile
	cfg.GVTPeriod = 400            // slow commits: CQ pressure
	var sum uint64
	const n = 40
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				// Varying lengths so finish order differs from ts order.
				e.Work((e.Arg(0) % 7) * 40)
				e.Store(sum+e.Arg(0)*8, e.Timestamp()+1)
			},
		},
		Setup: func(m *Machine) {
			sum = m.SetupAlloc(8 * n)
			for i := uint64(0); i < n; i++ {
				m.EnqueueRoot(0, i, i)
			}
		},
	}
	st, m := runProgram(t, cfg, prog)
	for i := uint64(0); i < n; i++ {
		if got := m.Mem().Load(sum + i*8); got != i+1 {
			t.Fatalf("slot %d = %d, want %d", i, got, i+1)
		}
	}
	if st.Commits != n {
		t.Fatalf("commits = %d", st.Commits)
	}
	t.Logf("policy aborts: %d, total aborts: %d", st.PolicyAborts, st.Aborts)
}

// TestNACKAndSpills: a spawner burst against tiny task queues must trigger
// NACKs, GVT-task overflow, and coalescer/splitter spills — and still
// produce correct results.
func TestNACKAndSpills(t *testing.T) {
	cfg := tinyConfig(2, 2, 8, 2) // 16 TQ entries per tile
	var out uint64
	const n = 300
	prog := &Program{
		Fns: []guest.TaskFn{
			// Spawner tree over [lo, hi).
			func(e guest.TaskEnv) {
				lo, hi := e.Arg(0), e.Arg(1)
				if hi-lo <= 7 {
					for i := lo; i < hi; i++ {
						e.Enqueue(1, 1+i, i)
					}
					return
				}
				chunk := (hi - lo + 7) / 8
				for s := lo; s < hi; s += chunk {
					end := s + chunk
					if end > hi {
						end = hi
					}
					e.Enqueue(0, e.Timestamp(), s, end)
				}
			},
			func(e guest.TaskEnv) {
				e.Store(out+e.Arg(0)*8, e.Timestamp())
			},
		},
		Setup: func(m *Machine) {
			out = m.SetupAlloc(8 * n)
			m.EnqueueRoot(0, 0, 0, n)
		},
	}
	st, m := runProgram(t, cfg, prog)
	for i := uint64(0); i < n; i++ {
		if got := m.Mem().Load(out + i*8); got != 1+i {
			t.Fatalf("out[%d] = %d", i, got)
		}
	}
	if st.SpilledTasks == 0 {
		t.Error("expected spills with a 300-task burst into 32 total entries")
	}
	t.Logf("nacks=%d spilled=%d commits=%d", st.NACKs, st.SpilledTasks, st.Commits)
}

// TestUnboundedQueuesNoSpills: Table 5's idealization must remove all
// queue-pressure mechanisms.
func TestUnboundedQueuesNoSpills(t *testing.T) {
	cfg := tinyConfig(2, 2, 8, 2)
	cfg.UnboundedQueues = true
	var out uint64
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				lo, hi := e.Arg(0), e.Arg(1)
				if hi-lo <= 7 {
					for i := lo; i < hi; i++ {
						e.Enqueue(1, 1+i, i)
					}
					return
				}
				chunk := (hi - lo + 7) / 8
				for s := lo; s < hi; s += chunk {
					end := s + chunk
					if end > hi {
						end = hi
					}
					e.Enqueue(0, e.Timestamp(), s, end)
				}
			},
			func(e guest.TaskEnv) { e.Store(out+e.Arg(0)*8, 1) },
		},
		Setup: func(m *Machine) {
			out = m.SetupAlloc(8 * 300)
			m.EnqueueRoot(0, 0, 0, 300)
		},
	}
	st, _ := runProgram(t, cfg, prog)
	if st.SpilledTasks != 0 || st.NACKs != 0 {
		t.Fatalf("idealized queues spilled (%d) or NACKed (%d)", st.SpilledTasks, st.NACKs)
	}
}

// TestSelectiveAbortCascade builds the Fig 10 scenario: an abort must
// propagate through data dependences (B read A's write; C read B's write)
// but spare independent tasks.
func TestSelectiveAbortCascade(t *testing.T) {
	var x, y, z, other uint64
	cfg := DefaultConfig(4)
	cfg.Bloom = bloom.Config{Precise: true}
	prog := &Program{
		Fns: []guest.TaskFn{
			// A(ts=1): long think, then write X (forcing B, C to have
			// speculated on stale data).
			func(e guest.TaskEnv) {
				e.Work(4000)
				e.Store(x, 10)
			},
			// B(ts=2): read X, write Y.
			func(e guest.TaskEnv) {
				v := e.Load(x)
				e.Work(10)
				e.Store(y, v+1)
			},
			// C(ts=3): read Y, write Z.
			func(e guest.TaskEnv) {
				v := e.Load(y)
				e.Work(10)
				e.Store(z, v+1)
			},
			// D(ts=4): independent.
			func(e guest.TaskEnv) {
				e.Work(10)
				e.Store(other, 99)
			},
		},
		Setup: func(m *Machine) {
			x = m.SetupAlloc(64)
			y = m.SetupAlloc(64)
			z = m.SetupAlloc(64)
			other = m.SetupAlloc(64)
			m.EnqueueRoot(0, 1)
			m.EnqueueRoot(1, 2)
			m.EnqueueRoot(2, 3)
			m.EnqueueRoot(3, 4)
		},
	}
	st, m := runProgram(t, cfg, prog)
	if got := m.Mem().Load(z); got != 12 {
		t.Fatalf("z = %d, want 12 (A=10 -> B=11 -> C=12)", got)
	}
	if m.Mem().Load(other) != 99 {
		t.Fatal("independent task lost its write")
	}
	// The cascade must abort B and C (possibly again during re-execution
	// races), but never sweep the whole window: selective aborts keep the
	// count near the dependence chain's length.
	if st.Aborts < 2 || st.Aborts > 6 {
		t.Fatalf("aborts = %d, want the B-C cascade (2..6)", st.Aborts)
	}
}

// TestChildDiscardOnParentAbort: children of an aborted parent are removed
// and recreated, not re-run stale.
func TestChildDiscardOnParentAbort(t *testing.T) {
	var x, log, logLen uint64
	cfg := DefaultConfig(4)
	cfg.Bloom = bloom.Config{Precise: true}
	prog := &Program{
		Fns: []guest.TaskFn{
			// A(ts=1): delay, write X.
			func(e guest.TaskEnv) {
				e.Work(3000)
				e.Store(x, 5)
			},
			// B(ts=2): read X, spawn child carrying the read value.
			func(e guest.TaskEnv) {
				v := e.Load(x)
				e.Work(10)
				e.Enqueue(2, e.Timestamp()+1, v)
			},
			// child(ts=3): log its argument.
			func(e guest.TaskEnv) {
				n := e.Load(logLen)
				e.Store(logLen, n+1)
				e.Store(log+n*8, e.Arg(0))
			},
		},
		Setup: func(m *Machine) {
			x = m.SetupAlloc(64)
			log = m.SetupAlloc(64 * 8)
			logLen = m.SetupAlloc(64)
			m.EnqueueRoot(0, 1)
			m.EnqueueRoot(1, 2)
		},
	}
	_, m := runProgram(t, cfg, prog)
	if got := m.Mem().Load(logLen); got != 1 {
		t.Fatalf("child ran %d times' worth of logs, want exactly 1 entry", got)
	}
	if got := m.Mem().Load(log); got != 5 {
		t.Fatalf("child saw %d, want A's value 5 (stale child must be discarded)", got)
	}
}

// TestZeroLatencyIsFaster: the Table 5 memory idealization must not slow
// anything down.
func TestZeroLatencyIsFaster(t *testing.T) {
	build := func() *Program {
		var base uint64
		return &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) {
					a := e.Arg(0)
					e.Store(base+a*8, e.Load(base+a*8)+1)
				},
			},
			Setup: func(m *Machine) {
				base = m.SetupAlloc(8 * 512)
				for i := uint64(0); i < 128; i++ {
					m.EnqueueRoot(0, i, i*4)
				}
			},
		}
	}
	cfg := DefaultConfig(8)
	st1, _ := runProgram(t, cfg, build())
	cfgZ := DefaultConfig(8)
	cfgZ.Cache.ZeroLatency = true
	st2, _ := runProgram(t, cfgZ, build())
	if st2.Cycles > st1.Cycles {
		t.Fatalf("zero-latency run slower: %d > %d", st2.Cycles, st1.Cycles)
	}
}

// TestTraceAccounting: trace samples must cover the run and their
// breakdowns must account all core time.
func TestTraceAccounting(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.TraceInterval = 200
	var base uint64
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				e.Work(50)
				e.Store(base+e.Arg(0)*8, 1)
			},
		},
		Setup: func(m *Machine) {
			base = m.SetupAlloc(8 * 256)
			for i := uint64(0); i < 256; i++ {
				m.EnqueueRoot(0, i, i)
			}
		},
	}
	st, _ := runProgram(t, cfg, prog)
	if len(st.Trace) == 0 {
		t.Fatal("no trace samples")
	}
	for _, s := range st.Trace {
		for ti, tile := range s.Tiles {
			if tile.TaskQ < 0 || tile.CommitQ < 0 {
				t.Fatalf("negative queue length at cycle %d tile %d", s.Cycle, ti)
			}
		}
	}
}

// TestGVTPeriodCommitLatency: less frequent GVT updates leave more tasks
// waiting in commit queues (§4.6: "less frequent updates reduce bandwidth
// but increase commit queue occupancy").
func TestGVTPeriodCommitLatency(t *testing.T) {
	build := func() *Program {
		var base uint64
		return &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) {
					e.Work(20)
					e.Store(base+e.Arg(0)*8, 1)
				},
			},
			Setup: func(m *Machine) {
				base = m.SetupAlloc(8 * 1024)
				for i := uint64(0); i < 1024; i++ {
					m.EnqueueRoot(0, i, i)
				}
			},
		}
	}
	fast := DefaultConfig(8)
	fast.GVTPeriod = 50
	stFast, _ := runProgram(t, fast, build())
	slow := DefaultConfig(8)
	slow.GVTPeriod = 800
	stSlow, _ := runProgram(t, slow, build())
	if stSlow.AvgCommitQueueOcc < stFast.AvgCommitQueueOcc {
		t.Fatalf("slow GVT (%.1f avg CQ) should hold more than fast GVT (%.1f)",
			stSlow.AvgCommitQueueOcc, stFast.AvgCommitQueueOcc)
	}
}

// TestTaskAwareFree: memory freed by a speculative task must not be
// recycled until the task commits — and must never be recycled if it
// aborts.
func TestTaskAwareFree(t *testing.T) {
	var slot uint64
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				a := e.Alloc(64)
				e.Store(a, e.Timestamp())
				e.Free(a, 64)
				// A fresh allocation inside the same task must not alias
				// the just-freed block (it has not committed yet).
				b := e.Alloc(64)
				if a == b {
					panic("task-aware allocator recycled uncommitted free")
				}
				e.Store(slot, b)
			},
		},
		Setup: func(m *Machine) {
			slot = m.SetupAlloc(8)
			m.EnqueueRoot(0, 1)
		},
	}
	runProgram(t, DefaultConfig(4), prog)
}
