package core

import (
	"container/heap"
	"sort"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/noc"
	"github.com/swarm-sim/swarm/internal/tsdom"
)

// descCompare orders two task descriptors by (timestamp, nested path) —
// the descriptor-level prefix of the virtual-time order, used wherever
// descriptors are ranked before they have a virtual time (spill victim
// selection, overflow drains, splitter refills).
func descCompare(a, b guest.TaskDesc) int {
	if a.TS != b.TS {
		if a.TS < b.TS {
			return -1
		}
		return +1
	}
	return tsdom.Compare(a.Path, b.Path)
}

// descLater reports whether a orders strictly after b.
func descLater(a, b guest.TaskDesc) bool { return descCompare(a, b) > 0 }

// Task queue virtualization (§4.7): when a tile's task queue is nearly
// full, a non-speculative coalescer task removes several idle,
// non-speculative descriptors with the highest programmer timestamps,
// stores them in memory, and enqueues a splitter task (timestamped with the
// batch minimum) that re-enqueues them later. This gives programs the
// illusion of unbounded hardware task queues.

// spillBatch is one coalesced batch in memory: the spilled descriptors plus
// the tile that owns them (the splitter's home), which GVT bound
// construction needs (assertCommitOrder ties break on the owning tile).
type spillBatch struct {
	tile  int
	descs []guest.TaskDesc
}

// checkSpillTrigger arms the coalescer when occupancy crosses the
// threshold (Table 3: 75%).
func (m *Machine) checkSpillTrigger(tt *tile) {
	if m.cfg.UnboundedQueues {
		return
	}
	tt.spillWanted = tt.nTasks*100 >= m.cfg.TaskQPerTile()*m.cfg.SpillThresholdPct
}

// spillable reports whether a task can move to software: only idle tasks
// whose parent has committed (no parent pointer) can leave the hardware
// queues, since aborts must be able to find speculative children.
func spillable(t *task) bool {
	return t.state == taskIdle && t.parent == nil && t.kind == kindWorker
}

// movableTasks returns up to max of the tile's idle, parentless worker
// tasks strictly later than the queue head — the set that may leave the
// tile's hardware queue, by spilling to memory (coalescer) or migrating
// to another tile (the stealing mapper). Only tasks strictly later than
// the tile's earliest timestamp qualify: moving the head would
// immediately force it back (and can livelock the tile in ping-pong
// while real work starves). Highest timestamps come first — the work
// farthest from the GVT and least likely to be needed soon.
func movableTasks(tt *tile, max int) []*task {
	var minDesc guest.TaskDesc
	if minT := tt.idleQ.Min(); minT != nil {
		minDesc = minT.desc
	}
	var batch []*task
	for _, t := range tt.idleQ.h {
		if spillable(t) && descLater(t.desc, minDesc) {
			batch = append(batch, t)
		}
	}
	sort.Slice(batch, func(i, j int) bool {
		if c := descCompare(batch[i].desc, batch[j].desc); c != 0 {
			return c > 0
		}
		return batch[i].seq > batch[j].seq
	})
	if len(batch) > max {
		batch = batch[:max]
	}
	return batch
}

// runCoalescer runs a coalescer pseudo-task on the core. Returns false if
// nothing was spillable (the caller then dispatches normally).
func (m *Machine) runCoalescer(c *cpu) bool {
	tt := m.tiles[c.tile]
	batch := movableTasks(tt, m.cfg.SpillBatch)
	if len(batch) == 0 {
		tt.spillWanted = false
		return false
	}

	tt.coalescing = true
	tt.spillWanted = false

	descs := make([]guest.TaskDesc, len(batch))
	batchMin := batch[0].desc
	for i, t := range batch {
		descs[i] = t.desc
		if descLater(batchMin, t.desc) {
			batchMin = t.desc
		}
		tt.idleQ.Remove(t)
		t.state = taskKilled
		m.freeSlotNoDrain(t)
	}
	m.st.spilledTasks += uint64(len(descs))

	// Install the splitter task immediately (space is guaranteed: the
	// batch slots were just freed and nothing can run in between). The
	// batch stays reachable through the splitter's task queue entry, so
	// the GVT never passes the spilled work. The splitter carries the
	// batch minimum's (timestamp, path) pair: a bound at the pair is <=
	// every member, so the GVT cannot pass the batch, and committing a
	// same-slot task the whole batch follows stays legal.
	m.batchCtr++
	id := m.batchCtr
	m.spillStore[id] = spillBatch{tile: tt.id, descs: descs}
	sp := m.newTask(guest.TaskDesc{Fn: 0, TS: batchMin.TS, Path: batchMin.Path}, tt.id, nil)
	sp.kind = kindSplitter
	sp.batch = id
	m.insertIdle(tt, sp)

	// The core is busy writing descriptors to memory for a while.
	cycles := m.cfg.SpillCyclesPerTask * uint64(len(descs)+1)
	c.wallSpill += cycles
	m.mesh.Account(tt.id, noc.ClassMem, len(descs)*noc.TaskDescBytes)
	m.eng.After(cycles, func() {
		tt.coalescing = false
		m.scheduleDispatch(c, 0)
	})
	return true
}

// freeSlotNoDrain releases a task queue slot without re-materializing
// overflow descriptors (the coalescer is making room on purpose).
func (m *Machine) freeSlotNoDrain(t *task) {
	tt := m.tiles[t.tile]
	tt.nTasks--
	m.putFilter(t.rs)
	m.putFilter(t.ws)
	t.rs, t.ws = nil, nil
	m.graveTask(t)
}

// runSplitter re-enqueues a spilled batch into the local task queue. Any
// part of the batch that does not fit goes to the tile's memory-backed
// overflow heap (drained as room appears) — never to a fresh splitter:
// re-splitting lets splitters reproduce until they fill the task queue and
// starve real work.
func (m *Machine) runSplitter(c *cpu, t *task) {
	tt := m.tiles[t.tile]
	batch := m.spillStore[t.batch].descs
	delete(m.spillStore, t.batch)

	cycles := m.cfg.SpillCyclesPerTask * uint64(len(batch)+1)
	c.wallSpill += cycles
	m.mesh.Account(tt.id, noc.ClassMem, len(batch)*noc.TaskDescBytes)

	m.eng.After(cycles, func() {
		// Free the splitter's own slot first, then refill.
		t.state = taskCommitted
		m.freeSlotNoDrain(t)
		c.task = nil
		t.core = -1

		// Insert lowest (timestamp, path) pairs first.
		sort.Slice(batch, func(i, j int) bool { return descCompare(batch[i], batch[j]) < 0 })
		free := m.cfg.TaskQPerTile() - tt.nTasks
		n := len(batch)
		if !m.cfg.UnboundedQueues && n > free {
			n = free
		}
		for _, d := range batch[:n] {
			m.insertIdle(tt, m.newTask(d, tt.id, nil))
		}
		for _, d := range batch[n:] {
			heap.Push(&tt.overflow, d)
		}
		m.drainOverflow(tt)
		m.checkSpillTrigger(tt)
		m.scheduleDispatch(c, 1)
	})
}
