package core

import "fmt"

// Hardware cost model for the per-tile task unit structures, reproducing
// Table 2 ("Sizes and estimated areas of main task unit structures").
//
// Area constants are derived from the paper's own CACTI-32nm / 28nm-TCAM
// numbers: 0.056mm2 for a 12.75KB single-port SRAM, 0.304mm2 for a 32KB
// dual-port SRAM, and 0.175mm2 for a 4KB TCAM.
const (
	sramMM2PerKB      = 0.056 / 12.75
	sram2PortMM2PerKB = 0.304 / 32.0
	tcamMM2PerKB      = 0.175 / 4.0

	// Entry sizes from Table 2.
	taskQueueEntryBytes   = 51 // function ptr + timestamp + args
	commitQueueOtherBytes = 36 // unique VT + undo log ptr + children ptrs
	orderQueueEntryBytes  = 16 // two 8B timestamp TCAM entries
)

// CostRow is one row of Table 2.
type CostRow struct {
	Name      string
	Entries   int
	EntryDesc string
	SizeKB    float64
	AreaMM2   float64
}

// CostModel returns the Table 2 rows for this configuration, per tile.
func (c Config) CostModel() []CostRow {
	tq := c.TaskQPerTile()
	cq := c.CommitQPerTile()
	sigBytes := 2 * c.Bloom.SizeBytes() // read + write set per entry

	rows := []CostRow{
		{
			Name:      "Task queue",
			Entries:   tq,
			EntryDesc: fmt.Sprintf("%dB", taskQueueEntryBytes),
			SizeKB:    float64(tq*taskQueueEntryBytes) / 1024,
		},
		{
			Name:      "Commit queue filters",
			Entries:   cq,
			EntryDesc: fmt.Sprintf("%dx32B", sigBytes/32),
			SizeKB:    float64(cq*sigBytes) / 1024,
		},
		{
			Name:      "Commit queue other",
			Entries:   cq,
			EntryDesc: fmt.Sprintf("%dB", commitQueueOtherBytes),
			SizeKB:    float64(cq*commitQueueOtherBytes) / 1024,
		},
		{
			Name:      "Order queue",
			Entries:   tq,
			EntryDesc: "2x8B",
			SizeKB:    float64(tq*orderQueueEntryBytes) / 1024,
		},
	}
	rows[0].AreaMM2 = rows[0].SizeKB * sramMM2PerKB
	rows[1].AreaMM2 = rows[1].SizeKB * sram2PortMM2PerKB
	rows[2].AreaMM2 = rows[2].SizeKB * sramMM2PerKB
	rows[3].AreaMM2 = rows[3].SizeKB * tcamMM2PerKB
	return rows
}

// TotalAreaMM2 sums the per-tile task unit area and scales it to the chip.
func (c Config) TotalAreaMM2() (perTile, perChip float64) {
	for _, r := range c.CostModel() {
		perTile += r.AreaMM2
	}
	return perTile, perTile * float64(c.Tiles)
}
