package core

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
)

func TestNewMapperNames(t *testing.T) {
	for _, name := range MapperNames() {
		mp, err := newMapper(name)
		if err != nil {
			t.Fatalf("newMapper(%q): %v", name, err)
		}
		if got := mp.name(); got != name {
			t.Errorf("newMapper(%q).name() = %q", name, got)
		}
	}
	if mp, err := newMapper(""); err != nil || mp.name() != "random" {
		t.Errorf("empty mapper name should select random, got %v, %v", mp, err)
	}
	if _, err := newMapper("bogus"); err == nil {
		t.Error("newMapper(bogus) should fail")
	} else if want := `core: unknown mapper "bogus" (valid: hint, random, roundrobin, stealing)`; err.Error() != want {
		t.Errorf("error text:\n got: %s\nwant: %s", err, want)
	}
	badCfg := DefaultConfig(4)
	badCfg.Backend = "native"
	if err := badCfg.validate(); err == nil {
		t.Error("backend=native should fail validation")
	} else if want := `core: unknown backend "native" (valid: rt, rt-conservative, sim)`; err.Error() != want {
		t.Errorf("error text:\n got: %s\nwant: %s", err, want)
	}
	// LocalEnqueue is a random-policy ablation: pairing it with any other
	// mapper must be rejected, not silently ignored.
	cfg := DefaultConfig(4)
	cfg.LocalEnqueue = true
	cfg.Mapper = "hint"
	if err := cfg.validate(); err == nil {
		t.Error("LocalEnqueue + hint mapper should fail validation")
	}
	cfg.Mapper = "random"
	if err := cfg.validate(); err != nil {
		t.Errorf("LocalEnqueue + random mapper should validate: %v", err)
	}
}

func TestHintTile(t *testing.T) {
	for _, tiles := range []int{1, 2, 7, 16} {
		seen := map[int]bool{}
		for key := uint64(0); key < 256; key++ {
			tl := hintTile(key, tiles)
			if tl < 0 || tl >= tiles {
				t.Fatalf("hintTile(%d, %d) = %d out of range", key, tiles, tl)
			}
			if tl != hintTile(key, tiles) {
				t.Fatalf("hintTile(%d, %d) not deterministic", key, tiles)
			}
			seen[tl] = true
		}
		// 256 keys over <= 16 tiles: the mix must reach every tile, or
		// hint placement would silently idle part of the machine.
		if len(seen) != tiles {
			t.Errorf("hintTile covers %d of %d tiles over 256 keys", len(seen), tiles)
		}
	}
}

func TestMapperPlacement(t *testing.T) {
	m := &Machine{cfg: Config{Tiles: 4}}
	var d guest.TaskDesc

	rr := &rrMapper{}
	for i := 0; i < 10; i++ {
		if got, want := rr.place(m, d, 2), i%4; got != want {
			t.Fatalf("roundrobin placement %d = %d, want %d", i, got, want)
		}
	}

	h := &hintMapper{}
	hinted := d.WithHint(42)
	want := hintTile(42, 4)
	for src := -1; src < 4; src++ {
		if got := h.place(m, hinted, src); got != want {
			t.Fatalf("hint placement from src %d = %d, want home tile %d", src, got, want)
		}
	}
	// Hintless tasks stay on the enqueuing tile; hintless roots round-robin.
	if got := h.place(m, d, 3); got != 3 {
		t.Fatalf("hintless placement = %d, want local tile 3", got)
	}
	if a, b := h.place(m, d, -1), h.place(m, d, -1); a != 0 || b != 1 {
		t.Fatalf("hintless roots = %d,%d, want round-robin 0,1", a, b)
	}
}
