package core

import (
	"strings"
	"testing"
)

// TestBackendRegistry pins the backend name registry: the default comes
// first (CLIs and swarmd print the list in this order) and ValidBackend
// accepts exactly the registered names plus "" (the default).
func TestBackendRegistry(t *testing.T) {
	names := BackendNames()
	if len(names) == 0 || names[0] != "sim" {
		t.Fatalf("BackendNames() = %v, want the default %q first", names, "sim")
	}
	valid := map[string]bool{"": true}
	for _, n := range names {
		valid[n] = true
		if !ValidBackend(n) {
			t.Errorf("ValidBackend(%q) = false for a registered name", n)
		}
	}
	for _, bad := range []string{"native", "SIM", "Rt", " rt", "rt "} {
		if valid[bad] {
			continue
		}
		if ValidBackend(bad) {
			t.Errorf("ValidBackend(%q) = true, want false", bad)
		}
	}
	if !ValidBackend("") {
		t.Error(`ValidBackend("") = false; "" must select the default`)
	}
}

// TestValidateBackend checks Config.Validate both ways: the default
// config passes, and an unknown backend is rejected with an error that
// names the valid options — the same error every backend reports,
// since non-simulator engines call Validate themselves.
func TestValidateBackend(t *testing.T) {
	cfg := DefaultConfig(4)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig(4).Validate() = %v, want nil", err)
	}
	cfg.Backend = "turbo"
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted an unknown backend")
	}
	for _, want := range []string{`"turbo"`, "sim", "rt-conservative"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate error %q does not mention %s", err, want)
		}
	}
}
