package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/vt"
)

// Differential tests for the tile-parallel machine (Config.SimWorkers):
// every run below executes twice — single-threaded and sharded — and the
// parallel run must reproduce the serial one exactly: full Stats (every
// counter, cycle count, occupancy average and NoC byte), per-phase
// PhaseStats, and committed guest memory, word for word. The app-level
// matrix (every registered benchmark × cores × simworkers) lives in
// internal/bench; here the inputs are the randomized commit-protocol
// programs, whose constant conflicts, abort cascades and spills exercise
// the join paths (collect, abandon, GVT reduction) far harder per cycle
// than a well-behaved app. Run under -race, these tests also prove the
// guest purity contract the execute-ahead design rests on.

// propOutcome is everything observable from one run: cumulative stats,
// per-phase stats and final guest memory.
type propOutcome struct {
	stats  Stats
	phases []PhaseStats
	mem    []uint64
}

// runPropDiff executes the two-phase property program (forest p1, then p2
// injected after quiescence) under cfg and snapshots the outcome.
func runPropDiff(t *testing.T, p1, p2 propProgram, cfg Config) propOutcome {
	t.Helper()
	var base uint64
	prog := twoPhaseProgram(p1, p2, &base)
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	ph1, err := m.RunPhase()
	if err != nil {
		t.Fatalf("phase 1: %v", err)
	}
	for _, r := range p2.roots {
		m.EnqueueRoot(1, p2.tasks[r].ts, uint64(r))
	}
	ph2, err := m.RunPhase()
	if err != nil {
		t.Fatalf("phase 2: %v", err)
	}
	out := propOutcome{stats: m.Snapshot(), phases: []PhaseStats{ph1, ph2}}
	words := p1.words
	if p2.words > words {
		words = p2.words
	}
	for w := 0; w < words; w++ {
		out.mem = append(out.mem, m.Mem().Load(base+uint64(w)*8))
	}
	return out
}

// propBody adapts one property forest to a task body (self is the forest's
// own function id, for child enqueues).
func propBody(p propProgram, self guest.FnID, base *uint64) guest.TaskFn {
	return func(e guest.TaskEnv) {
		id := e.Arg(0)
		e.Work(2)
		p.run(id,
			func(a uint64) uint64 { return e.Load(*base + a) },
			func(a, v uint64) { e.Store(*base+a, v) },
			func(c int) { e.EnqueueArgs(self, p.tasks[c].ts, [3]uint64{uint64(c)}) })
	}
}

// twoPhaseProgram builds a Program running forest p1 as phase 1; phase 2
// roots (forest p2, function id 1) are injected by the caller between
// phases.
func twoPhaseProgram(p1, p2 propProgram, base *uint64) *Program {
	prog := &Program{}
	prog.Setup = func(m *Machine) {
		words := p1.words
		if p2.words > words {
			words = p2.words
		}
		*base = m.SetupAlloc(uint64(words) * 8)
		prog.Fns = []guest.TaskFn{propBody(p1, 0, base), propBody(p2, 1, base)}
		prog.FnNames = []string{"phase1", "phase2"}
		for _, r := range p1.roots {
			m.EnqueueRoot(0, p1.tasks[r].ts, uint64(r))
		}
	}
	return prog
}

// assertOutcomeEqual fails the test on any divergence between a parallel
// outcome and its serial reference, reporting the first differing field.
func assertOutcomeEqual(t *testing.T, label string, got, want propOutcome) {
	t.Helper()
	if !reflect.DeepEqual(got.stats, want.stats) {
		t.Fatalf("%s: Stats diverge from serial\n got: %+v\nwant: %+v", label, got.stats, want.stats)
	}
	if !reflect.DeepEqual(got.phases, want.phases) {
		t.Fatalf("%s: PhaseStats diverge from serial\n got: %+v\nwant: %+v", label, got.phases, want.phases)
	}
	if !reflect.DeepEqual(got.mem, want.mem) {
		t.Fatalf("%s: committed memory diverges from serial\n got: %#x\nwant: %#x", label, got.mem, want.mem)
	}
}

// TestParallelDifferentialProperty: randomized conflict-heavy forests on
// the contended 2×2 machine and on a 4-tile machine, SimWorkers ∈ {2, 4,
// 8}, with and without scheduler perturbation, bit-compared to serial.
func TestParallelDifferentialProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 31337))
			p1 := genProgram(rng, 50+rng.Intn(40), 8)
			p2 := genProgram(rng, 30+rng.Intn(30), 8)

			for _, machine := range []struct {
				name string
				cfg  Config
			}{
				{"2x2", propConfig(seed)},
				{"4x2", func() Config {
					cfg := propConfig(seed)
					cfg.Tiles = 4
					return cfg
				}()},
			} {
				serial := runPropDiff(t, p1, p2, machine.cfg)
				for _, workers := range []int{2, 4, 8} {
					for _, perturb := range []int64{0, seed * 977} {
						cfg := machine.cfg
						cfg.SimWorkers = workers
						cfg.SimPerturb = perturb
						label := fmt.Sprintf("%s/simworkers=%d/perturb=%d", machine.name, workers, perturb)
						assertOutcomeEqual(t, label, runPropDiff(t, p1, p2, cfg), serial)
					}
				}
			}
		})
	}
}

// TestParallelChaosCommitProtocol is the seeded chaos/stress mode: the
// commit-protocol property run (contended 2×2 machine, abort cascades,
// spills, debug commit-order assertions on every commit) executes on the
// parallel path with randomized worker timing, and its final memory must
// equal the serial oracle — the specification, not merely the serial
// machine. GVT-round barriers run every 200 cycles, so the perturbation
// also randomizes reduction-barrier timing against in-flight jobs.
func TestParallelChaosCommitProtocol(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := genProgram(rng, 50+rng.Intn(40), 8)

			cfg := propConfig(seed)
			cfg.SimWorkers = 2
			cfg.SimPerturb = seed * 7919
			var base uint64
			m, err := NewMachine(cfg, p.program(&base))
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if int(st.Commits) < len(p.tasks) {
				t.Fatalf("only %d commits for %d tasks", st.Commits, len(p.tasks))
			}
			want := p.serialOracle()
			for w := 0; w < p.words; w++ {
				addr := base + uint64(w)*8
				if got := m.Mem().Load(addr); got != want[uint64(w)*8] {
					t.Fatalf("word %d = %#x, want %#x (serial oracle)", w, got, want[uint64(w)*8])
				}
			}
		})
	}
}

// TestSimWorkersValidation pins the config contract: negative and absurd
// worker counts are rejected; 0 and 1 select the single-threaded path.
func TestSimWorkersValidation(t *testing.T) {
	for _, tc := range []struct {
		workers int
		ok      bool
	}{
		{-1, false}, {0, true}, {1, true}, {8, true}, {1025, false},
	} {
		cfg := DefaultConfig(4)
		cfg.SimWorkers = tc.workers
		_, err := NewMachine(cfg, &Program{Setup: func(*Machine) {}})
		if (err == nil) != tc.ok {
			t.Errorf("SimWorkers=%d: err=%v, want ok=%v", tc.workers, err, tc.ok)
		}
	}
}

// TestSpscRing exercises the shard job ring's SPSC protocol directly:
// capacity rounding, FIFO order, full/empty edges and wraparound.
func TestSpscRing(t *testing.T) {
	var r spscRing
	r.init(3) // rounds up to 4
	if len(r.buf) != 4 {
		t.Fatalf("capacity 3 rounded to %d, want 4", len(r.buf))
	}
	if r.pop() != nil {
		t.Fatal("pop on empty ring returned a job")
	}
	jobs := make([]*parJob, 6)
	for i := range jobs {
		jobs[i] = &parJob{}
	}
	for i := 0; i < 4; i++ {
		if !r.push(jobs[i]) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.push(jobs[4]) {
		t.Fatal("push accepted on a full ring")
	}
	if got := r.pop(); got != jobs[0] {
		t.Fatal("pop broke FIFO order")
	}
	if !r.push(jobs[4]) {
		t.Fatal("push rejected after a pop freed a slot")
	}
	for i := 1; i <= 4; i++ {
		if got := r.pop(); got != jobs[i] {
			t.Fatalf("pop %d broke FIFO order across wraparound", i)
		}
	}
	if r.pop() != nil {
		t.Fatal("drained ring still pops jobs")
	}
}

// TestParallelShardPartition pins the tile→shard map: contiguous ranges,
// every tile owned exactly once, worker counts clamped to the tile count.
func TestParallelShardPartition(t *testing.T) {
	for _, tc := range []struct{ tiles, workers, shards int }{
		{16, 4, 4}, {16, 3, 3}, {2, 8, 2}, {5, 2, 2}, {1, 2, 1},
	} {
		cfg := DefaultConfig(tc.tiles * 4)
		cfg.Tiles, cfg.CoresPerTile = tc.tiles, 4
		cfg.SimWorkers = tc.workers
		m, err := NewMachine(cfg, &Program{Setup: func(*Machine) {}})
		if err != nil {
			t.Fatal(err)
		}
		p := m.par
		if len(p.shards) != tc.shards {
			t.Fatalf("tiles=%d workers=%d: %d shards, want %d", tc.tiles, tc.workers, len(p.shards), tc.shards)
		}
		seen := 0
		for i, s := range p.shards {
			if s.hiTile <= s.loTile {
				t.Fatalf("shard %d owns empty range [%d,%d)", i, s.loTile, s.hiTile)
			}
			if i > 0 && s.loTile != p.shards[i-1].hiTile {
				t.Fatalf("shard %d not contiguous with its predecessor", i)
			}
			for tl := s.loTile; tl < s.hiTile; tl++ {
				if p.tileShard[tl] != i {
					t.Fatalf("tile %d mapped to shard %d, owned by %d", tl, p.tileShard[tl], i)
				}
				seen++
			}
		}
		if seen != tc.tiles {
			t.Fatalf("%d tiles covered, want %d", seen, tc.tiles)
		}
	}
}

// TestGvtReduceMatchesSerial cross-checks one reduction against the plain
// tile loop on a live machine state (mid-run via a debug hook would drag
// in scheduling; a fresh idle machine with queued roots suffices — idle
// tasks are exactly what tileMinVT bounds).
func TestGvtReduceMatchesSerial(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.SimWorkers = 3
	prog := &Program{}
	prog.Setup = func(m *Machine) {
		prog.Fns = []guest.TaskFn{func(guest.TaskEnv) {}}
		for i := 0; i < 37; i++ {
			m.EnqueueRoot(0, uint64(i*13%57), uint64(i))
		}
	}
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	serialMin := vt.Infinity
	var tq, cq uint64
	for _, tt := range m.tiles {
		if tv := m.tileMinVT(tt, 0); tv.Less(serialMin) {
			serialMin = tv
		}
		tq += uint64(tt.nTasks)
		cq += uint64(tt.commitQ.Len() + tt.finishWait.Len())
	}
	m.par.start()
	gotMin, gotTq, gotCq := m.par.gvtReduce(0)
	m.par.stopWorkers()
	if gotMin != serialMin || gotTq != tq || gotCq != cq {
		t.Fatalf("gvtReduce = (%v, %d, %d), serial loop = (%v, %d, %d)",
			gotMin, gotTq, gotCq, serialMin, tq, cq)
	}
	// The reduction accumulated one occupancy sample into the per-tile
	// sums; clear them so the machine state stays consistent if reused.
	for i := range m.st.tileTqOccSum {
		m.st.tileTqOccSum[i] = 0
		m.st.tileCqOccSum[i] = 0
	}
}
