package core

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/guest"
)

// TestCycleBreakdownSumsExactly runs abort- and spill-heavy workloads with
// DebugChecks on and requires the Fig 14 breakdown to account for every
// core cycle exactly: committed + aborted + spill + stall == cycles x
// cores. Mis-attribution (e.g. ranCore falling back to the wrong core, or
// a refund missing on an abort) would show up as a clamped-to-zero stall
// or a sum mismatch.
func TestCycleBreakdownSumsExactly(t *testing.T) {
	progs := map[string]func() *Program{
		"conflict-heavy": func() *Program {
			var counter uint64
			return &Program{
				Fns: []guest.TaskFn{
					func(e guest.TaskEnv) {
						e.Store(counter, e.Load(counter)+1)
					},
				},
				Setup: func(m *Machine) {
					counter = m.SetupAlloc(8)
					for i := 0; i < 150; i++ {
						m.EnqueueRoot(0, uint64(i))
					}
				},
			}
		},
		"spill-heavy": func() *Program {
			var out uint64
			return &Program{
				Fns: []guest.TaskFn{
					func(e guest.TaskEnv) {
						lo, hi := e.Arg(0), e.Arg(1)
						if hi-lo <= 7 {
							for j := lo; j < hi; j++ {
								e.EnqueueArgs(1, 1+j, [3]uint64{j})
							}
							return
						}
						chunk := (hi - lo + 7) / 8
						for s := lo; s < hi; s += chunk {
							end := min(s+chunk, hi)
							e.EnqueueArgs(0, e.Timestamp(), [3]uint64{s, end})
						}
					},
					func(e guest.TaskEnv) { e.Store(out+e.Arg(0)*8, 1) },
				},
				Setup: func(m *Machine) {
					out = m.SetupAlloc(8 * 1000)
					m.EnqueueRoot(0, 0, 0, 1000)
				},
			}
		},
	}
	for name, build := range progs {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			for _, cores := range []int{4, 16} {
				cfg := DefaultConfig(cores)
				cfg.DebugChecks = true
				cfg.Bloom = bloom.Config{Bits: 256, Ways: 4} // extra false-positive aborts
				st, _ := runProgram(t, cfg, build())
				sum := st.CommittedCycles + st.AbortedCycles + st.SpillCycles + st.StallCycles
				if sum != st.TotalCoreCycles() {
					t.Fatalf("%dc: breakdown %d+%d+%d+%d = %d != %d total core cycles",
						cores, st.CommittedCycles, st.AbortedCycles, st.SpillCycles, st.StallCycles,
						sum, st.TotalCoreCycles())
				}
				if busy := st.CommittedCycles + st.AbortedCycles + st.SpillCycles; busy > st.TotalCoreCycles() {
					t.Fatalf("%dc: busy cycles %d exceed wall %d (stall clamped)", cores, busy, st.TotalCoreCycles())
				}
			}
		})
	}
}
