package core

import (
	"fmt"
	"math/bits"

	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
	"github.com/swarm-sim/swarm/internal/noc"
)

// access performs one conflict-checked, eagerly-versioned memory access
// (§4.3–4.4). It returns the access latency and, for loads, the value.
//
// Check hierarchy (Fig 7): L1 load hits are conflict-free; everything else
// checks the local tile (other cores + commit queue signatures); L2 misses
// and canary failures additionally check the tiles named by the L3
// directory's sharer/sticky bits. Any later-virtual-time conflicting task
// is aborted. Thanks to eager versioning, reads always see the latest
// (possibly speculative) value in place — data forwarding needs no logic.
func (m *Machine) access(c *cpu, t *task, op guest.Op) (lat, val uint64) {
	isWrite := op.Kind == guest.OpStore
	line := mem.Line(op.Addr)
	res := m.hier.Access(cache.Access{
		Core: c.id, Tile: c.tile, Line: line,
		Write: isWrite, Spec: t.spec(), VT: t.vt,
	})
	lat = res.Latency

	if t.spec() {
		victims := m.getVictims()
		m.probe.Fill(m.cfg.Bloom, line)
		if !(res.L1Hit && !isWrite) {
			cost, _ := m.checkTile(c.tile, t, line, isWrite, &victims)
			lat += m.checkLat(cost)
		}
		if res.NeedGlobalCheck {
			// Copy into machine scratch: the result buffer is reused by
			// the cache on the next access.
			m.tilesScratch = append(m.tilesScratch[:0], res.CheckTiles...)
			// The directory forwards the checks in parallel and the
			// requester waits for the farthest response (Fig 7), so the
			// added latency is the max over checked tiles, not the sum.
			var farthest uint64
			for _, tl := range m.tilesScratch {
				cost, present := m.checkTile(tl, t, line, isWrite, &victims)
				if resp := cost + 2*m.mesh.Latency(c.tile, tl); resp > farthest {
					farthest = resp
				}
				m.mesh.Send(c.tile, tl, noc.ClassMem, noc.HeaderBytes)
				m.mesh.Send(tl, c.tile, noc.ClassMem, noc.HeaderBytes)
				if !present {
					m.hier.ClearSticky(line, tl)
				}
			}
			lat += m.checkLat(farthest)
		}
		if len(victims) > 0 {
			for _, r := range victims {
				m.abortTask(r.t, false)
			}
			// Rollback conflict checks re-filled the shared probe for other
			// lines; restore it for the signature insert below.
			m.probe.Fill(m.cfg.Bloom, line)
		}
		m.putVictims(victims)
		tt := m.tiles[t.tile]
		if isWrite {
			t.ws.InsertProbe(&m.probe)
			if tt.ws0.rows != nil {
				tt.ws0.set(m.probe.Way0(), t.slot)
				t.ws0Bits = append(t.ws0Bits, m.probe.Way0())
			}
		} else {
			t.rs.InsertProbe(&m.probe)
			if tt.rs0.rows != nil {
				tt.rs0.set(m.probe.Way0(), t.slot)
				t.rs0Bits = append(t.rs0Bits, m.probe.Way0())
			}
		}
	}

	if isWrite {
		// Eager versioning: log the old value, write in place.
		if t.spec() {
			t.undo = append(t.undo, undoRec{addr: op.Addr, old: m.gmem.Load(op.Addr)})
		}
		m.gmem.Store(op.Addr, op.Val)
	} else {
		val = m.gmem.Load(op.Addr)
	}
	if debugAccessHook != nil {
		if !isWrite {
			op.Val = val
		}
		debugAccessHook(m, t, op, res)
	}
	return lat, val
}

// debugAccessHook, when set by tests, observes every conflict-checked
// access after it is applied.
var debugAccessHook func(m *Machine, t *task, op guest.Op, res cache.Result)

// debugAbortHook, when set by tests, observes every abort.
var debugAbortHook func(m *Machine, victim *task, discard bool)

// debugCommitHook, when set by tests, observes every task commit (called
// before the task's state is torn down, so parent/children are intact).
var debugCommitHook func(m *Machine, t *task)

// debugProbeHook, when set by tests, observes every conflict probe.
var debugProbeHook func(accessor *task, tileID int, v *task)

func (m *Machine) checkLat(l uint64) uint64 {
	if m.cfg.Cache.ZeroLatency {
		return 0
	}
	return l
}

// checkTile probes one tile's speculative state — tasks on its cores plus
// its commit queue — for conflicts with the accessor (Fig 8). It returns
// the check cost (base + one cycle per virtual-time comparison, Table 3)
// and whether ANY signature in the tile holds the line (used for lazy
// sticky-bit cleanup: a sticky bit may only be cleared when the tile has no
// speculative state for the line at all — a reader that does not conflict
// with this load must stay visible to future writes). Later-virtual-time
// conflictors are appended to victims.
func (m *Machine) checkTile(tileID int, accessor *task, line uint64, isWrite bool, victims *[]victimRef) (cost uint64, anySpec bool) {
	cost = m.cfg.TileCheckCost
	m.st.bloomChecks++
	tt := m.tiles[tileID]

	// probe tests one resident task's signatures against the precomputed
	// line probe. key encodes the task's position in the architectural
	// probe order (cores, then commit queue, then finish-wait, each in
	// entry order); victims are sorted by it below so abort order is
	// deterministic and independent of how candidates were found.
	probe := func(v *task, key uint64) {
		if debugProbeHook != nil {
			debugProbeHook(accessor, tileID, v)
		}
		if v == nil || v == accessor || !v.spec() {
			return
		}
		switch v.state {
		case taskRunning, taskFinishing, taskFinished:
		default:
			return
		}
		inWS := v.ws.MayContainProbe(&m.probe)
		inRS := v.rs.MayContainProbe(&m.probe)
		if inWS || inRS {
			anySpec = true
		}
		// A write conflicts with earlier reads and writes of later tasks;
		// a read conflicts only with later writes.
		if !(inWS || (isWrite && inRS)) {
			return
		}
		cost++
		m.st.vtCompares++
		if accessor.vt.Less(v.vt) {
			*victims = append(*victims, victimRef{t: v, key: key})
		}
	}

	start := len(*victims)
	if tt.ws0.rows != nil {
		// Way-0 fast path: only tasks whose way-0 bit for this line is set
		// can pass a signature probe; everything else would miss at way 0.
		// Probing exactly those tasks is bit-identical to scanning all.
		i0 := m.probe.Way0()
		wsRow, rsRow := tt.ws0.rows[i0], tt.rs0.rows[i0]
		nw := len(wsRow)
		if len(rsRow) > nw {
			nw = len(rsRow)
		}
		for w := 0; w < nw; w++ {
			var bits uint64
			if w < len(wsRow) {
				bits = wsRow[w]
			}
			if w < len(rsRow) {
				bits |= rsRow[w]
			}
			for bits != 0 {
				v := tt.slotTasks[w*64+trailingZeros(bits)]
				bits &= bits - 1
				probe(v, probeKey(v))
				if v.state == taskFinishing {
					// A finishing task holds its core and a finish-wait
					// entry; the architectural scan probes it in both.
					probe(v, keyFinishWait|v.qSeq)
				}
			}
		}
	} else {
		// Precise signatures have no ways: scan every resident task.
		base := tileID * m.cfg.CoresPerTile
		for i := 0; i < m.cfg.CoresPerTile; i++ {
			probe(m.cores[base+i].task, keyCore|uint64(i))
		}
		for _, v := range tt.commitQ.s {
			probe(v, keyCommitQ|v.qSeq)
		}
		for _, v := range tt.finishWait.s {
			probe(v, keyFinishWait|v.qSeq)
		}
	}
	sortVictims((*victims)[start:])
	return cost, anySpec
}

// Victim-order keys: group in the top bits (cores, commit queue,
// finish-wait — the architectural probe order), entry order below.
const (
	keyCore       = uint64(0) << 62
	keyCommitQ    = uint64(1) << 62
	keyFinishWait = uint64(2) << 62
)

// probeKey returns a resident task's first-occurrence probe-order key.
func probeKey(v *task) uint64 {
	if v.core >= 0 {
		return keyCore | uint64(v.core)
	}
	return keyCommitQ | v.qSeq
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// sortVictims orders a victim segment by probe-order key (insertion sort:
// segments are tiny and already mostly ordered).
func sortVictims(v []victimRef) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].key < v[j-1].key; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// abortTask squashes a task and, transitively, its dependents (§4.5,
// Fig 10): children are aborted and discarded; the undo log is walked in
// LIFO order, and each restored write is conflict-checked so tasks that
// read the squashed data abort too. Conflict victims (discard=false) are
// returned to their task queue to re-execute; children of aborted parents
// (discard=true) are removed entirely — the parent will recreate them.
func (m *Machine) abortTask(t *task, discard bool) {
	switch t.state {
	case taskCommitted, taskKilled:
		return
	case taskIdle:
		if !discard {
			return // an idle task has no speculative state to squash
		}
		tt := m.tiles[t.tile]
		tt.idleQ.Remove(t)
		t.state = taskKilled
		m.freeSlot(t)
		return
	}

	m.st.aborts++
	tt := m.tiles[t.tile]
	tt.abortsCount++
	if debugAbortHook != nil {
		debugAbortHook(m, t, discard)
	}
	if t.parJob != nil {
		// Parallel mode: a shard worker may still be running t's next guest
		// segment. Join and discard it before unwinding the coroutine.
		m.par.abandon(t)
	}

	// 1. Notify children to abort and be removed from their task queues.
	children := t.children
	t.children = nil
	for _, ch := range children {
		m.mesh.Send(t.tile, ch.tile, noc.ClassAbort, noc.AbortMsgBytes)
		m.abortTask(ch, true)
	}
	// Restore the detached slice's capacity for the recycled task struct
	// (nothing can have appended mid-loop: t holds no running guest).
	if t.children == nil {
		t.children = children[:0]
	}

	// Detach from core / commit queue.
	switch t.state {
	case taskRunning:
		if t.pendingEv != nil {
			// Refund the charged-but-unelapsed cycles of the in-flight
			// operation so cycle accounting sums exactly.
			if rem := t.pendingEv.Cycle() - m.eng.Now(); rem > 0 {
				if rem > t.cyc {
					rem = t.cyc
				}
				t.cyc -= rem
				m.cores[t.core].wallWorker -= rem
			}
			t.pendingEv.Cancel()
			t.pendingEv = nil
		}
		if t.co != nil {
			t.co.Resume(guest.Result{Abort: true}) // unwind the guest
			m.releaseCoroutine(t)
		}
		c := m.cores[t.core]
		c.abortedCyc += t.cyc
		c.task = nil
		t.core = -1
		m.scheduleDispatch(c, 1)
	case taskFinishing:
		tt.finishWait.Remove(t)
		c := m.cores[t.core]
		c.abortedCyc += t.cyc
		c.task = nil
		t.core = -1
		m.scheduleDispatch(c, 1)
	case taskFinished:
		tt.commitQ.Remove(t)
		if t.core >= 0 {
			panic("core: finished task still bound to a core")
		}
		m.cores[m.ranCore(t)].abortedCyc += t.cyc
	}

	// Drop out of the way-0 index before the undo walk: the task is now
	// detached from its core and queues, so the architectural scan can no
	// longer see it — nested rollback checks must not find it either.
	m.releaseSlot(tt, t)

	// 2. Walk the undo log in LIFO order. Each restore is a conflict-
	// checked write at t's virtual time: later readers/writers abort
	// first (restoring their own state), then the old value goes back.
	for i := len(t.undo) - 1; i >= 0; i-- {
		rec := t.undo[i]
		m.rollbackWrite(t, rec.addr)
		m.gmem.Store(rec.addr, rec.old)
		m.mesh.Account(t.tile, noc.ClassAbort, noc.HeaderBytes+mem.WordBytes)
	}
	t.undo = t.undo[:0]

	// 3. Clear signatures; free the commit queue entry.
	t.rs.Clear()
	t.ws.Clear()
	m.heap.DropQuarantine(t.allocToken)
	t.allocToken = m.nextToken()
	t.cyc = 0
	t.vt = vt0

	if discard {
		t.state = taskKilled
		m.freeSlot(t)
	} else {
		t.state = taskIdle
		t.seq = m.nextSeq()
		tt.idleQ.Push(t)
		m.wakeOneStalled(tt)
	}
	m.promoteFinishWaiters(tt)
}

// ranCore returns the core that executed a no-longer-running task; cycle
// attribution needs it. Dispatch always records lastCore, so a missing id
// would silently mis-attribute aborted cycles to the tile's core 0 — treat
// it as the invariant violation it is.
func (m *Machine) ranCore(t *task) int {
	if t.lastCore >= 0 {
		return t.lastCore
	}
	if m.cfg.DebugChecks {
		panic(fmt.Sprintf("core: task %v reached %v without a recorded core", t.vt, t.state))
	}
	return t.tile * m.cfg.CoresPerTile
}

// rollbackWrite aborts every later-virtual-time task that read or wrote the
// line, using the directory's sharer/sticky bits to find candidate tiles —
// the same conflict-detection logic as normal operation (§4.5).
func (m *Machine) rollbackWrite(t *task, addr uint64) {
	line := mem.Line(addr)
	mask := m.hier.DirTiles(line) | 1<<uint(t.tile)
	victims := m.getVictims()
	m.probe.Fill(m.cfg.Bloom, line)
	for tl := 0; tl < m.cfg.Tiles; tl++ {
		if mask&(1<<uint(tl)) == 0 {
			continue
		}
		// A rollback write behaves as a write: it conflicts with later
		// readers and writers.
		m.checkTile(tl, t, line, true, &victims)
	}
	for _, r := range victims {
		if t.vt.Less(r.t.vt) {
			m.abortTask(r.t, false)
		}
	}
	m.putVictims(victims)
}
