package core

import (
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/mem"
	"github.com/swarm-sim/swarm/internal/noc"
)

// access performs one conflict-checked, eagerly-versioned memory access
// (§4.3–4.4). It returns the access latency and, for loads, the value.
//
// Check hierarchy (Fig 7): L1 load hits are conflict-free; everything else
// checks the local tile (other cores + commit queue signatures); L2 misses
// and canary failures additionally check the tiles named by the L3
// directory's sharer/sticky bits. Any later-virtual-time conflicting task
// is aborted. Thanks to eager versioning, reads always see the latest
// (possibly speculative) value in place — data forwarding needs no logic.
func (m *Machine) access(c *cpu, t *task, op guest.Op) (lat, val uint64) {
	isWrite := op.Kind == guest.OpStore
	line := mem.Line(op.Addr)
	res := m.hier.Access(cache.Access{
		Core: c.id, Tile: c.tile, Line: line,
		Write: isWrite, Spec: t.spec(), VT: t.vt,
	})
	lat = res.Latency

	if t.spec() {
		var victims []*task
		if !(res.L1Hit && !isWrite) {
			cost, _ := m.checkTile(c.tile, t, line, isWrite, &victims)
			lat += m.checkLat(cost)
		}
		if res.NeedGlobalCheck {
			// Copy: the result buffer is reused by nested accesses.
			tilesToCheck := append([]int(nil), res.CheckTiles...)
			for _, tl := range tilesToCheck {
				cost, present := m.checkTile(tl, t, line, isWrite, &victims)
				// Directory forwards the check; requester waits for the
				// farthest response.
				lat += m.checkLat(cost + 2*m.mesh.Latency(c.tile, tl))
				m.mesh.Send(c.tile, tl, noc.ClassMem, noc.HeaderBytes)
				m.mesh.Send(tl, c.tile, noc.ClassMem, noc.HeaderBytes)
				if !present {
					m.hier.ClearSticky(line, tl)
				}
			}
		}
		for _, v := range victims {
			m.abortTask(v, false)
		}
		if isWrite {
			t.ws.Insert(line)
		} else {
			t.rs.Insert(line)
		}
	}

	if isWrite {
		// Eager versioning: log the old value, write in place.
		if t.spec() {
			t.undo = append(t.undo, undoRec{addr: op.Addr, old: m.gmem.Load(op.Addr)})
		}
		m.gmem.Store(op.Addr, op.Val)
	} else {
		val = m.gmem.Load(op.Addr)
	}
	if debugAccessHook != nil {
		if !isWrite {
			op.Val = val
		}
		debugAccessHook(m, t, op, res)
	}
	return lat, val
}

// debugAccessHook, when set by tests, observes every conflict-checked
// access after it is applied.
var debugAccessHook func(m *Machine, t *task, op guest.Op, res cache.Result)

// debugAbortHook, when set by tests, observes every abort.
var debugAbortHook func(m *Machine, victim *task, discard bool)

// debugProbeHook, when set by tests, observes every conflict probe.
var debugProbeHook func(accessor *task, tileID int, v *task)

func (m *Machine) checkLat(l uint64) uint64 {
	if m.cfg.Cache.ZeroLatency {
		return 0
	}
	return l
}

// checkTile probes one tile's speculative state — tasks on its cores plus
// its commit queue — for conflicts with the accessor (Fig 8). It returns
// the check cost (base + one cycle per virtual-time comparison, Table 3)
// and whether ANY signature in the tile holds the line (used for lazy
// sticky-bit cleanup: a sticky bit may only be cleared when the tile has no
// speculative state for the line at all — a reader that does not conflict
// with this load must stay visible to future writes). Later-virtual-time
// conflictors are appended to victims.
func (m *Machine) checkTile(tileID int, accessor *task, line uint64, isWrite bool, victims *[]*task) (cost uint64, anySpec bool) {
	cost = m.cfg.TileCheckCost
	m.st.bloomChecks++
	tt := m.tiles[tileID]

	probe := func(v *task) {
		if debugProbeHook != nil {
			debugProbeHook(accessor, tileID, v)
		}
		if v == nil || v == accessor || !v.spec() {
			return
		}
		switch v.state {
		case taskRunning, taskFinishing, taskFinished:
		default:
			return
		}
		inWS := v.ws.MayContain(line)
		inRS := v.rs.MayContain(line)
		if inWS || inRS {
			anySpec = true
		}
		// A write conflicts with earlier reads and writes of later tasks;
		// a read conflicts only with later writes.
		if !(inWS || (isWrite && inRS)) {
			return
		}
		cost++
		m.st.vtCompares++
		if accessor.vt.Less(v.vt) {
			*victims = append(*victims, v)
		}
	}

	base := tileID * m.cfg.CoresPerTile
	for i := 0; i < m.cfg.CoresPerTile; i++ {
		probe(m.cores[base+i].task)
	}
	for _, v := range tt.commitQ {
		probe(v)
	}
	for _, v := range tt.finishWait {
		probe(v)
	}
	return cost, anySpec
}

// abortTask squashes a task and, transitively, its dependents (§4.5,
// Fig 10): children are aborted and discarded; the undo log is walked in
// LIFO order, and each restored write is conflict-checked so tasks that
// read the squashed data abort too. Conflict victims (discard=false) are
// returned to their task queue to re-execute; children of aborted parents
// (discard=true) are removed entirely — the parent will recreate them.
func (m *Machine) abortTask(t *task, discard bool) {
	switch t.state {
	case taskCommitted, taskKilled:
		return
	case taskIdle:
		if !discard {
			return // an idle task has no speculative state to squash
		}
		tt := m.tiles[t.tile]
		tt.idleQ.Remove(t)
		t.state = taskKilled
		m.freeSlot(t)
		return
	}

	m.st.aborts++
	tt := m.tiles[t.tile]
	tt.abortsCount++
	if debugAbortHook != nil {
		debugAbortHook(m, t, discard)
	}

	// 1. Notify children to abort and be removed from their task queues.
	children := t.children
	t.children = nil
	for _, ch := range children {
		m.mesh.Send(t.tile, ch.tile, noc.ClassAbort, noc.AbortMsgBytes)
		m.abortTask(ch, true)
	}

	// Detach from core / commit queue.
	switch t.state {
	case taskRunning:
		if t.pendingEv != nil {
			// Refund the charged-but-unelapsed cycles of the in-flight
			// operation so cycle accounting sums exactly.
			if rem := t.pendingEv.Cycle() - m.eng.Now(); rem > 0 {
				if rem > t.cyc {
					rem = t.cyc
				}
				t.cyc -= rem
				m.cores[t.core].wallWorker -= rem
			}
			t.pendingEv.Cancel()
			t.pendingEv = nil
		}
		if t.co != nil {
			t.co.Resume(guest.Result{Abort: true}) // unwind the guest
			t.co = nil
		}
		c := m.cores[t.core]
		c.abortedCyc += t.cyc
		c.task = nil
		t.core = -1
		m.scheduleDispatch(c, 1)
	case taskFinishing:
		tt.finishWait = removeTask(tt.finishWait, t)
		c := m.cores[t.core]
		c.abortedCyc += t.cyc
		c.task = nil
		t.core = -1
		m.scheduleDispatch(c, 1)
	case taskFinished:
		tt.commitQ = removeTask(tt.commitQ, t)
		if t.core >= 0 {
			panic("core: finished task still bound to a core")
		}
		m.cores[m.ranCore(t)].abortedCyc += t.cyc
	}

	// 2. Walk the undo log in LIFO order. Each restore is a conflict-
	// checked write at t's virtual time: later readers/writers abort
	// first (restoring their own state), then the old value goes back.
	for i := len(t.undo) - 1; i >= 0; i-- {
		rec := t.undo[i]
		m.rollbackWrite(t, rec.addr)
		m.gmem.Store(rec.addr, rec.old)
		m.mesh.Account(t.tile, noc.ClassAbort, noc.HeaderBytes+mem.WordBytes)
	}
	t.undo = t.undo[:0]

	// 3. Clear signatures; free the commit queue entry.
	t.rs.Clear()
	t.ws.Clear()
	m.heap.DropQuarantine(t.allocToken)
	t.allocToken = m.nextToken()
	t.cyc = 0
	t.vt = vt0

	if discard {
		t.state = taskKilled
		m.freeSlot(t)
	} else {
		t.state = taskIdle
		t.seq = m.nextSeq()
		tt.idleQ.Push(t)
		m.wakeOneStalled(tt)
	}
	m.promoteFinishWaiters(tt)
}

// ranCore returns the core that executed a no-longer-running task; cycle
// attribution needs it. We recover it from the virtual time's tile plus a
// remembered core id.
func (m *Machine) ranCore(t *task) int {
	if t.lastCore >= 0 {
		return t.lastCore
	}
	return t.tile * m.cfg.CoresPerTile
}

// rollbackWrite aborts every later-virtual-time task that read or wrote the
// line, using the directory's sharer/sticky bits to find candidate tiles —
// the same conflict-detection logic as normal operation (§4.5).
func (m *Machine) rollbackWrite(t *task, addr uint64) {
	line := mem.Line(addr)
	mask := m.hier.DirTiles(line) | 1<<uint(t.tile)
	var victims []*task
	for tl := 0; tl < m.cfg.Tiles; tl++ {
		if mask&(1<<uint(tl)) == 0 {
			continue
		}
		// A rollback write behaves as a write: it conflicts with later
		// readers and writers.
		m.checkTile(tl, t, line, true, &victims)
	}
	for _, v := range victims {
		if t.vt.Less(v.vt) {
			m.abortTask(v, false)
		}
	}
}
