package core

import (
	"container/heap"
	"testing"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/cache"
	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/tsdom"
)

// runProgram builds and runs a machine, failing the test on error.
func runProgram(t *testing.T, cfg Config, prog *Program) (Stats, *Machine) {
	t.Helper()
	m, err := NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, m
}

func TestSingleTask(t *testing.T) {
	var addr uint64
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				e.Store(addr, e.Timestamp()+e.Arg(0))
			},
		},
		Setup: func(m *Machine) {
			addr = m.SetupAlloc(8)
			m.EnqueueRoot(0, 7, 35)
		},
	}
	st, m := runProgram(t, DefaultConfig(4), prog)
	if got := m.Mem().Load(addr); got != 42 {
		t.Fatalf("memory = %d, want 42", got)
	}
	if st.Commits != 1 || st.Aborts != 0 {
		t.Fatalf("commits=%d aborts=%d", st.Commits, st.Aborts)
	}
	if st.Cycles == 0 {
		t.Fatal("no time elapsed")
	}
}

func TestParentChildChain(t *testing.T) {
	// Each task appends its timestamp to a log array; ordering must be
	// exactly timestamp order even though children land on random tiles.
	var logBase, idxAddr uint64
	const depth = 30
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				i := e.Load(idxAddr)
				e.Store(idxAddr, i+1)
				e.Store(logBase+i*8, e.Timestamp())
				if e.Timestamp() < depth {
					e.Enqueue(0, e.Timestamp()+1)
				}
			},
		},
		Setup: func(m *Machine) {
			idxAddr = m.SetupAlloc(8)
			logBase = m.SetupAlloc(8 * (depth + 1))
			m.EnqueueRoot(0, 1)
		},
	}
	st, m := runProgram(t, DefaultConfig(8), prog)
	if st.Commits != depth {
		t.Fatalf("commits = %d, want %d", st.Commits, depth)
	}
	for i := uint64(0); i < depth; i++ {
		if got := m.Mem().Load(logBase + i*8); got != i+1 {
			t.Fatalf("log[%d] = %d, want %d", i, got, i+1)
		}
	}
}

// TestConflictingIncrements forces every task through the same cache line:
// speculation must still yield a correct total.
func TestConflictingIncrements(t *testing.T) {
	var counter uint64
	const n = 200
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) {
				e.Store(counter, e.Load(counter)+1)
			},
		},
		Setup: func(m *Machine) {
			counter = m.SetupAlloc(8)
			for i := 0; i < n; i++ {
				m.EnqueueRoot(0, uint64(i))
			}
		},
	}
	st, m := runProgram(t, DefaultConfig(16), prog)
	if got := m.Mem().Load(counter); got != n {
		t.Fatalf("counter = %d, want %d (aborts=%d)", got, n, st.Aborts)
	}
	if st.Commits != n {
		t.Fatalf("commits = %d, want %d", st.Commits, n)
	}
}

// TestSelectiveAbort reproduces the §4.4 forwarding scenario: B reads X
// before earlier task A writes it, so B must abort and re-execute; an
// independent task C must not abort (selective, not window-wide).
func TestSelectiveAbort(t *testing.T) {
	var x, out, other uint64
	cfg := DefaultConfig(4)
	cfg.Bloom = bloom.Config{Precise: true} // no false-positive aborts
	prog := &Program{
		Fns: []guest.TaskFn{
			// fn 0 = A(ts=1): long think, then write X.
			func(e guest.TaskEnv) {
				e.Work(3000)
				e.Store(x, 111)
			},
			// fn 1 = B(ts=2): read X immediately, record it.
			func(e guest.TaskEnv) {
				v := e.Load(x)
				e.Work(10)
				e.Store(out, v)
			},
			// fn 2 = C(ts=3): independent.
			func(e guest.TaskEnv) {
				e.Store(other, 7)
			},
		},
		Setup: func(m *Machine) {
			x = m.SetupAlloc(8)
			out = m.SetupAlloc(8)
			other = m.SetupAlloc(8)
			m.EnqueueRoot(0, 1)
			m.EnqueueRoot(1, 2)
			m.EnqueueRoot(2, 3)
		},
	}
	st, m := runProgram(t, cfg, prog)
	if got := m.Mem().Load(out); got != 111 {
		t.Fatalf("B recorded %d, want A's 111 (B must re-execute after A's write)", got)
	}
	if st.Aborts != 1 {
		t.Fatalf("aborts = %d, want exactly 1 (B only; C is independent)", st.Aborts)
	}
	if m.Mem().Load(other) != 7 {
		t.Fatal("C's write lost")
	}
}

// TestForwarding: a later task reading an earlier speculative task's write
// must see the new value in place (eager versioning), with no abort.
func TestForwarding(t *testing.T) {
	var x, out uint64
	cfg := DefaultConfig(4)
	cfg.Bloom = bloom.Config{Precise: true}
	prog := &Program{
		Fns: []guest.TaskFn{
			func(e guest.TaskEnv) { // A(ts=1): write immediately, then linger
				e.Store(x, 55)
				e.Work(5000)
			},
			func(e guest.TaskEnv) { // B(ts=2): delay, then read X
				e.Work(500)
				e.Store(out, e.Load(x))
			},
		},
		Setup: func(m *Machine) {
			x = m.SetupAlloc(8)
			out = m.SetupAlloc(8)
			m.EnqueueRoot(0, 1)
			m.EnqueueRoot(1, 2)
		},
	}
	st, m := runProgram(t, cfg, prog)
	if got := m.Mem().Load(out); got != 55 {
		t.Fatalf("B read %d, want forwarded 55", got)
	}
	if st.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0 (forwarding, not conflict)", st.Aborts)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Program {
		var base uint64
		return &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) {
					a := e.Arg(0)
					e.Store(base+a*8, e.Load(base+a*8)+e.Timestamp())
					if e.Timestamp() < 40 {
						e.Enqueue(0, e.Timestamp()+3, (a+1)%16)
					}
				},
			},
			Setup: func(m *Machine) {
				base = m.SetupAlloc(16 * 8)
				for i := uint64(0); i < 8; i++ {
					m.EnqueueRoot(0, i, i)
				}
			},
		}
	}
	st1, _ := runProgram(t, DefaultConfig(8), build())
	st2, _ := runProgram(t, DefaultConfig(8), build())
	if st1.Cycles != st2.Cycles || st1.Commits != st2.Commits || st1.Aborts != st2.Aborts {
		t.Fatalf("nondeterministic: run1={cyc %d, c %d, a %d} run2={cyc %d, c %d, a %d}",
			st1.Cycles, st1.Commits, st1.Aborts, st2.Cycles, st2.Commits, st2.Aborts)
	}
}

func TestCostModelMatchesTable2(t *testing.T) {
	cfg := DefaultConfig(64)
	rows := cfg.CostModel()
	want := []struct {
		name   string
		sizeKB float64
		area   float64
	}{
		{"Task queue", 12.75, 0.056},
		{"Commit queue filters", 32, 0.304},
		{"Commit queue other", 2.25, 0.012},
		{"Order queue", 4, 0.175},
	}
	for i, w := range want {
		r := rows[i]
		if r.Name != w.name {
			t.Fatalf("row %d = %q, want %q", i, r.Name, w.name)
		}
		if r.SizeKB < w.sizeKB*0.99 || r.SizeKB > w.sizeKB*1.01 {
			t.Errorf("%s size = %.2fKB, want %.2fKB", r.Name, r.SizeKB, w.sizeKB)
		}
		// CACTI areas are not linear in capacity; our per-KB model lands
		// within ~25% of each paper row (and much closer in aggregate).
		if r.AreaMM2 < w.area*0.75 || r.AreaMM2 > w.area*1.25 {
			t.Errorf("%s area = %.3fmm2, want ~%.3fmm2", r.Name, r.AreaMM2, w.area)
		}
	}
	perTile, perChip := cfg.TotalAreaMM2()
	if perTile < 0.5 || perTile > 0.6 {
		t.Errorf("per-tile area = %.3f, want ~0.55 (paper: 0.55mm2)", perTile)
	}
	if perChip < 8 || perChip > 10 {
		t.Errorf("per-chip area = %.2f, want ~8.8 (paper: 8.8mm2)", perChip)
	}
}

// ---------------------------------------------------------------------------
// Golden property test: random timestamped task programs executed on the
// full Swarm machine — with adversarially tiny queues to force aborts,
// spills, NACKs and policy invocations — must produce exactly the memory
// state of a sequential timestamp-order execution.
// ---------------------------------------------------------------------------

// splitmix64 gives task bodies a deterministic, seed-dependent behaviour
// that is a pure function of (timestamp, arg, values read).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// chaosTask is the random program body. Timestamps are unique by
// construction (decimal path encoding), so sequential timestamp order is a
// total order and the reference execution is unambiguous.
func chaosTask(seed, pool uint64, poolWords int) guest.TaskFn {
	var fn guest.TaskFn
	fn = func(e guest.TaskEnv) {
		ts := e.Timestamp()
		depth := e.Arg(0)
		h := splitmix64(ts ^ seed)
		nOps := 1 + int(h%6)
		acc := ts
		for i := 0; i < nOps; i++ {
			h = splitmix64(h ^ acc)
			addr := pool + (h%uint64(poolWords))*8
			if h&1 == 0 {
				acc ^= e.Load(addr)
			} else {
				e.Store(addr, splitmix64(acc^h))
			}
		}
		// Spawn up to 3 children, data-dependently: speculation on wrong
		// values changes the task tree, which the reference must match.
		if depth < 3 {
			stride := uint64(1)
			for d := depth; d < 3; d++ {
				stride *= 10
			}
			nKids := int(splitmix64(acc) % 4)
			for k := 0; k < nKids; k++ {
				e.Enqueue(0, ts+uint64(k+1)*stride, depth+1)
			}
		}
	}
	return fn
}

// refHeap orders descriptors by (timestamp, nested path) for the
// reference executor.
type refHeap []guest.TaskDesc

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].TS != h[j].TS {
		return h[i].TS < h[j].TS
	}
	return tsdom.Less(h[i].Path, h[j].Path)
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(guest.TaskDesc)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); d := old[n-1]; *h = old[:n-1]; return d }

// refEnv executes tasks sequentially against a map memory.
type refEnv struct {
	mem   map[uint64]uint64
	queue *refHeap
	desc  guest.TaskDesc
	brk   uint64
	tasks int
	forks uint64
}

func (r *refEnv) Load(a uint64) uint64  { return r.mem[a] }
func (r *refEnv) Store(a, v uint64)     { r.mem[a] = v }
func (r *refEnv) Work(uint64)           {}
func (r *refEnv) Alloc(n uint64) uint64 { a := r.brk; r.brk += (n + 7) &^ 7; return a }
func (r *refEnv) Free(uint64, uint64)   {}
func (r *refEnv) Timestamp() uint64     { return r.desc.TS }
func (r *refEnv) Arg(i int) uint64      { return r.desc.Args[i] }
func (r *refEnv) Enqueue(fn guest.FnID, ts uint64, args ...uint64) {
	var a [3]uint64
	copy(a[:], args)
	r.EnqueueArgs(fn, ts, a)
}

func (r *refEnv) EnqueueArgs(fn guest.FnID, ts uint64, args [3]uint64) {
	heap.Push(r.queue, guest.TaskDesc{Fn: fn, TS: ts, Args: args})
}

func (r *refEnv) EnqueueHinted(fn guest.FnID, ts uint64, _ uint64, args [3]uint64) {
	r.EnqueueArgs(fn, ts, args) // the reference executor has no tiles
}

func (r *refEnv) Fork(fn guest.FnID, args ...uint64) {
	var a [3]uint64
	copy(a[:], args)
	r.EnqueueSub(fn, guest.NoHint, a)
}

func (r *refEnv) EnqueueSub(fn guest.FnID, _ uint64, args [3]uint64) {
	r.forks++
	heap.Push(r.queue, guest.TaskDesc{Fn: fn, TS: r.desc.TS, Path: r.desc.Path.Child(r.forks - 1), Args: args})
}

func runReference(fn guest.TaskFn, roots []guest.TaskDesc, brk uint64) (map[uint64]uint64, int) {
	r := &refEnv{mem: make(map[uint64]uint64), queue: &refHeap{}, brk: brk}
	for _, d := range roots {
		heap.Push(r.queue, d)
	}
	for r.queue.Len() > 0 {
		r.desc = heap.Pop(r.queue).(guest.TaskDesc)
		r.tasks++
		fn(r)
		if r.tasks > 1_000_000 {
			panic("reference execution runaway")
		}
	}
	return r.mem, r.tasks
}

func TestGoldenRandomPrograms(t *testing.T) {
	const poolWords = 48
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		// Tiny machine: 2 tiles x 2 cores, 8 task queue entries per core
		// (16/tile), 2 commit queue entries per core (4/tile), small spill
		// batches — everything is under pressure.
		cfg := Config{
			Tiles: 2, CoresPerTile: 2,
			TaskQPerCore: 8, CommitQPerCore: 2,
			EnqueueCost: 5, DequeueCost: 5, FinishCost: 5,
			GVTPeriod: 100, TileCheckCost: 5,
			SpillThresholdPct: 75, SpillBatch: 4, SpillCyclesPerTask: 10,
			MaxChildren: 8,
			Bloom:       bloom.Default(),
			HopCycles:   3,
			Seed:        int64(seed),
			MaxCycles:   500_000_000,
		}
		cfg.Cache = cache.DefaultParams(cfg.Tiles, cfg.CoresPerTile)

		var pool uint64
		var roots []guest.TaskDesc
		prog := &Program{
			// pool is captured by reference: Setup assigns it before any
			// task runs.
			Fns: []guest.TaskFn{func(e guest.TaskEnv) { chaosTask(seed, pool, poolWords)(e) }},
			Setup: func(m *Machine) {
				pool = m.SetupAlloc(poolWords * 8)
				roots = roots[:0]
				for i := uint64(0); i < 12; i++ {
					d := guest.TaskDesc{Fn: 0, TS: i * 10000, Args: [3]uint64{0}}
					roots = append(roots, d)
					m.EnqueueRoot(d.Fn, d.TS, d.Args[0])
				}
			},
		}

		m, err := NewMachine(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		refMem, refTasks := runReference(func(e guest.TaskEnv) {
			chaosTask(seed, pool, poolWords)(e)
		}, roots, pool)

		if int(st.Commits) != refTasks {
			t.Errorf("seed %d: commits = %d, reference ran %d tasks", seed, st.Commits, refTasks)
		}
		for a, v := range refMem {
			if got := m.Mem().Load(a); got != v {
				t.Fatalf("seed %d: mem[%#x] = %d, want %d (aborts=%d spills=%d nacks=%d)",
					seed, a, got, v, st.Aborts, st.SpilledTasks, st.NACKs)
			}
		}
		// Also verify no spurious extra writes inside the pool.
		for w := 0; w < poolWords; w++ {
			a := pool + uint64(w)*8
			if _, ok := refMem[a]; !ok && m.Mem().Load(a) != 0 {
				t.Fatalf("seed %d: spurious write at pool word %d", seed, w)
			}
		}
		if seed == 1 && testing.Verbose() {
			t.Logf("seed1: cycles=%d commits=%d aborts=%d spilled=%d nacks=%d policy=%d",
				st.Cycles, st.Commits, st.Aborts, st.SpilledTasks, st.NACKs, st.PolicyAborts)
		}
	}
}
