package core

import (
	"fmt"

	"github.com/swarm-sim/swarm/internal/guest"
	"github.com/swarm-sim/swarm/internal/noc"
)

// Task mapping: the policy that picks the destination tile for every
// enqueued task. The paper's design load-balances through uniform-random
// enqueues (§7: "distributed priority queues, load-balanced through random
// enqueues"); follow-up data-centric work shows that spatial hints — a
// stable application-level key sent with the descriptor — recover locality
// the random policy throws away. The mapper is chosen per machine via
// Config.Mapper and is the first knob in this codebase that changes
// simulated-machine performance rather than host performance.
//
// Policies:
//
//	random     uniform-random tile per enqueue (the paper's design; default,
//	           bit-identical to the pre-mapper machine)
//	roundrobin cycle through tiles in order (a load-balance-only control)
//	hint       send hinted tasks to hash(hint key) % tiles, so all work on
//	           one key shares a home tile; hintless tasks stay local
//	stealing   hint placement plus GVT-epoch work stealing: each GVT round,
//	           overloaded tiles donate queued idle tasks to the emptiest
//	           tile, bounding the load imbalance hint affinity can build up

// mapper is the per-machine task-mapping policy.
type mapper interface {
	name() string
	// place returns the destination tile for d, enqueued from tile src
	// (src < 0 for root enqueues during Setup).
	place(m *Machine, d guest.TaskDesc, src int) int
	// epoch runs once per GVT round, before the GVT bound is computed,
	// letting load-aware policies migrate queued work between tiles.
	epoch(m *Machine)
}

// MapperNames lists the registered task-mapping policies (the valid
// Config.Mapper / -mapper values), default first.
func MapperNames() []string { return []string{"random", "hint", "stealing", "roundrobin"} }

// newMapper builds the policy named by cfg.Mapper ("" selects random).
func newMapper(name string) (mapper, error) {
	switch name {
	case "", "random":
		return &randomMapper{}, nil
	case "roundrobin":
		return &rrMapper{}, nil
	case "hint":
		return &hintMapper{}, nil
	case "stealing":
		return &stealingMapper{}, nil
	}
	return nil, fmt.Errorf("core: unknown mapper %q (valid: %s)", name, sortedNames(MapperNames()))
}

// randomMapper reproduces the paper's uniform-random enqueue placement.
// The rng draw happens even when LocalEnqueue overrides the target, so the
// machine's random stream — and therefore every simulated outcome — is
// bit-identical to the pre-mapper implementation.
type randomMapper struct{}

func (*randomMapper) name() string { return "random" }

func (*randomMapper) place(m *Machine, _ guest.TaskDesc, src int) int {
	target := m.rng.Intn(m.cfg.Tiles)
	if m.cfg.LocalEnqueue && src >= 0 {
		return src
	}
	return target
}

func (*randomMapper) epoch(*Machine) {}

// rrMapper cycles through tiles: perfectly even placement with zero
// locality — the control that separates load balance from affinity.
type rrMapper struct{ next int }

func (*rrMapper) name() string { return "roundrobin" }

func (r *rrMapper) place(m *Machine, _ guest.TaskDesc, _ int) int {
	t := r.next
	r.next++
	if r.next == m.cfg.Tiles {
		r.next = 0
	}
	return t
}

func (*rrMapper) epoch(*Machine) {}

// hintTile is the home tile of a spatial hint key: a fixed 64-bit mix
// (splitmix64's finalizer) spreads keys uniformly while keeping every task
// carrying the same key on the same tile.
func hintTile(key uint64, tiles int) int {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return int(key % uint64(tiles))
}

// hintMapper sends hinted tasks to their key's home tile and keeps
// hintless tasks (spawners, continuations) on the enqueuing tile; hintless
// roots fall back to round-robin so Setup still seeds every tile.
type hintMapper struct{ rootRR int }

func (*hintMapper) name() string { return "hint" }

func (h *hintMapper) place(m *Machine, d guest.TaskDesc, src int) int {
	if key, ok := d.HintKey(); ok {
		return hintTile(key, m.cfg.Tiles)
	}
	if src >= 0 {
		return src
	}
	t := h.rootRR
	h.rootRR++
	if h.rootRR == m.cfg.Tiles {
		h.rootRR = 0
	}
	return t
}

func (*hintMapper) epoch(*Machine) {}

// Stealing parameters: a victim tile must hold at least stealMinGap more
// idle tasks than the thief before tasks move, and one epoch moves at most
// stealBatch tasks (a task descriptor per NoC message, like an enqueue).
const (
	stealMinGap = 8
	stealBatch  = 8
)

// stealingMapper is hint placement plus GVT-epoch work stealing: affinity
// for the common case, with the arbiter's periodic round re-leveling the
// queues when key skew piles work onto few tiles.
type stealingMapper struct{ hintMapper }

func (*stealingMapper) name() string { return "stealing" }

func (*stealingMapper) epoch(m *Machine) {
	if m.cfg.Tiles < 2 {
		return
	}
	// Thief: the tile with the fewest queued idle tasks; victim: the tile
	// with the most. Ties break on tile id so epochs are deterministic.
	thief, victim := m.tiles[0], m.tiles[0]
	for _, tt := range m.tiles[1:] {
		if tt.idleQ.Len() < thief.idleQ.Len() {
			thief = tt
		}
		if tt.idleQ.Len() > victim.idleQ.Len() {
			victim = tt
		}
	}
	if victim.idleQ.Len() < thief.idleQ.Len()+stealMinGap {
		return
	}
	// Steal from the victim's movable set (movableTasks — the same
	// eligibility rule the coalescer spills by): idle, parentless worker
	// tasks whose identity lives entirely in the descriptor, so changing
	// tiles cannot break abort tracking or splitter batches, highest
	// timestamps first. The queue head stays put: the earliest task is
	// about to dispatch where it is.
	for _, t := range movableTasks(victim, stealBatch) {
		if !m.hasSpace(thief) {
			break
		}
		victim.idleQ.Remove(t)
		victim.nTasks--
		m.mesh.Send(victim.id, thief.id, noc.ClassEnqueue, noc.TaskDescBytes)
		m.insertIdle(thief, t)
		m.st.stolen++
	}
	m.drainOverflow(victim)
	m.checkSpillTrigger(victim)
}
