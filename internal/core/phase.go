package core

// Phased execution support: a session runs a machine to quiescence several
// times (RunPhase), mutating guest memory and injecting new root tasks in
// between. PhaseStats reports what one phase did — deltas of the
// monotonically-growing counters between the phase's two quiescent points —
// next to the cumulative Stats at the phase's end, so occupancy-over-time
// and per-batch cost are measurable without resetting the machine.

// phaseSnap is the cumulative-counter snapshot taken at a phase boundary.
// Every field is monotone over a run, so a phase's contribution is the
// difference between its end and start snapshots.
type phaseSnap struct {
	cycle  uint64
	events uint64

	commits, aborts      uint64
	enqueues, dequeues   uint64
	nacks, policyAborts  uint64
	spilledTasks, stolen uint64
	gvtUpdates           uint64
	tqOccSum, cqOccSum   uint64
	occSamples           uint64
	committedCyc         uint64
	abortedCyc           uint64
	spillCyc             uint64
	trafficBytes         uint64
	bloomChecks, vtCmps  uint64
}

func (m *Machine) takeSnap() phaseSnap {
	s := phaseSnap{
		cycle:        m.eng.Now(),
		events:       m.eng.Fired(),
		commits:      m.st.commits,
		aborts:       m.st.aborts,
		enqueues:     m.st.enqueues,
		dequeues:     m.st.dequeues,
		nacks:        m.st.nacks,
		policyAborts: m.st.policyAborts,
		spilledTasks: m.st.spilledTasks,
		stolen:       m.st.stolen,
		gvtUpdates:   m.st.gvtUpdates,
		tqOccSum:     m.st.tqOccSum,
		cqOccSum:     m.st.cqOccSum,
		occSamples:   m.st.occSamples,
		bloomChecks:  m.st.bloomChecks,
		vtCmps:       m.st.vtCompares,
	}
	for _, c := range m.cores {
		s.committedCyc += c.committedCyc
		s.abortedCyc += c.abortedCyc
		s.spillCyc += c.wallSpill
	}
	for _, b := range m.mesh.TotalBytes() {
		s.trafficBytes += b
	}
	return s
}

// PhaseStats reports one quiescence-to-quiescence phase of a session. The
// counter fields are phase deltas; Cumulative is the full machine Stats at
// the phase's end (the same structure a one-shot run returns).
type PhaseStats struct {
	// Phase is the 1-based phase index.
	Phase int
	// StartCycle and EndCycle bound the phase on the machine clock
	// (Cycles = EndCycle - StartCycle).
	StartCycle, EndCycle uint64
	Cycles               uint64
	// Events is the number of discrete engine events the phase fired.
	Events uint64

	// WallNS is host wall-clock nanoseconds the phase took under the
	// native backends (zero under the simulator, as in Stats.WallNS).
	WallNS uint64

	// Task events within the phase.
	Commits      uint64
	Aborts       uint64
	Enqueues     uint64
	Dequeues     uint64
	NACKs        uint64
	PolicyAborts uint64
	SpilledTasks uint64
	StolenTasks  uint64
	GVTUpdates   uint64

	// Core-cycle breakdown within the phase (Fig 14, per phase).
	CommittedCycles uint64
	AbortedCycles   uint64
	SpillCycles     uint64
	StallCycles     uint64

	// Conflict-detection activity within the phase.
	BloomChecks uint64
	VTCompares  uint64

	// Average queue occupancies over the phase's GVT samples.
	AvgTaskQueueOcc   float64
	AvgCommitQueueOcc float64

	// TrafficBytes is NoC bytes injected during the phase, all classes.
	TrafficBytes uint64

	// Cumulative is the whole-run Stats at the phase's end quiescent point.
	Cumulative Stats
}

// phaseStats diffs the current machine state against the snapshot taken at
// the running phase's start.
func (m *Machine) phaseStats() PhaseStats {
	end := m.takeSnap()
	p := PhaseStats{
		Phase:           m.phase,
		StartCycle:      m.snap.cycle,
		EndCycle:        end.cycle,
		Cycles:          end.cycle - m.snap.cycle,
		Events:          end.events - m.snap.events,
		Commits:         end.commits - m.snap.commits,
		Aborts:          end.aborts - m.snap.aborts,
		Enqueues:        end.enqueues - m.snap.enqueues,
		Dequeues:        end.dequeues - m.snap.dequeues,
		NACKs:           end.nacks - m.snap.nacks,
		PolicyAborts:    end.policyAborts - m.snap.policyAborts,
		SpilledTasks:    end.spilledTasks - m.snap.spilledTasks,
		StolenTasks:     end.stolen - m.snap.stolen,
		GVTUpdates:      end.gvtUpdates - m.snap.gvtUpdates,
		CommittedCycles: end.committedCyc - m.snap.committedCyc,
		AbortedCycles:   end.abortedCyc - m.snap.abortedCyc,
		SpillCycles:     end.spillCyc - m.snap.spillCyc,
		BloomChecks:     end.bloomChecks - m.snap.bloomChecks,
		VTCompares:      end.vtCmps - m.snap.vtCmps,
		TrafficBytes:    end.trafficBytes - m.snap.trafficBytes,
		Cumulative:      m.collectStats(),
	}
	if samples := end.occSamples - m.snap.occSamples; samples > 0 {
		p.AvgTaskQueueOcc = float64(end.tqOccSum-m.snap.tqOccSum) / float64(samples)
		p.AvgCommitQueueOcc = float64(end.cqOccSum-m.snap.cqOccSum) / float64(samples)
	}
	busy := p.CommittedCycles + p.AbortedCycles + p.SpillCycles
	if wall := p.Cycles * uint64(m.cfg.Cores()); wall > busy {
		p.StallCycles = wall - busy
	}
	return p
}
