package core

import (
	"testing"

	"github.com/swarm-sim/swarm/internal/guest"
)

// BenchmarkTaskThroughput measures end-to-end simulator throughput:
// independent 20-instruction tasks on a 64-core machine (simulated tasks
// per wall-clock second is the simulator's key performance metric).
func BenchmarkTaskThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var base uint64
		const n = 20000
		prog := &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) {
					a := e.Arg(0)
					e.Work(12)
					e.Store(base+a*8, a)
				},
			},
			Setup: func(m *Machine) {
				base = m.SetupAlloc(8 * n)
				for j := uint64(0); j < n; j++ {
					m.EnqueueRoot(0, j, j)
				}
			},
		}
		m, err := NewMachine(DefaultConfig(64), prog)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Commits), "tasks")
		b.ReportMetric(float64(st.Cycles), "sim-cycles")
	}
}

// BenchmarkConflictHeavy measures throughput under constant conflicts and
// aborts (every task touches the same line).
func BenchmarkConflictHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var counter uint64
		const n = 2000
		prog := &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) {
					e.Store(counter, e.Load(counter)+1)
				},
			},
			Setup: func(m *Machine) {
				counter = m.SetupAlloc(8)
				for j := uint64(0); j < n; j++ {
					m.EnqueueRoot(0, j)
				}
			},
		}
		m, err := NewMachine(DefaultConfig(16), prog)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if m.Mem().Load(counter) != n {
			b.Fatal("lost updates")
		}
		b.ReportMetric(float64(st.Aborts), "aborts")
	}
}

// BenchmarkSpillHeavy measures the queue-virtualization machinery: a task
// flood through tiny queues.
func BenchmarkSpillHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var out uint64
		const n = 4000
		prog := &Program{
			Fns: []guest.TaskFn{
				func(e guest.TaskEnv) {
					lo, hi := e.Arg(0), e.Arg(1)
					if hi-lo <= 7 {
						for j := lo; j < hi; j++ {
							e.Enqueue(1, 1+j, j)
						}
						return
					}
					chunk := (hi - lo + 7) / 8
					for s := lo; s < hi; s += chunk {
						end := min(s+chunk, hi)
						e.Enqueue(0, e.Timestamp(), s, end)
					}
				},
				func(e guest.TaskEnv) { e.Store(out+e.Arg(0)*8, 1) },
			},
			Setup: func(m *Machine) {
				out = m.SetupAlloc(8 * n)
				m.EnqueueRoot(0, 0, 0, n)
			},
		}
		cfg := DefaultConfig(4) // 256 task queue entries for 4000 tasks
		m, err := NewMachine(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.SpilledTasks), "spilled")
	}
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
