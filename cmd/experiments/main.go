// experiments regenerates every table and figure of the paper's evaluation
// (§6) on scaled-down inputs: Tables 1, 2, 4, 5 and Figures 11-18, plus
// the §6.3/§6.4 sensitivity studies. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Independent simulations fan out over -workers host goroutines; results
// on stdout are byte-identical for every worker count (progress, ETA and
// timing lines go to stderr).
//
// Usage:
//
//	experiments                     # small scale, cores 1..16
//	experiments -scale medium -maxcores 64
//	experiments -only fig12,fig13 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/harness"
)

func main() {
	scaleF := flag.String("scale", "small", "input scale: tiny, small, medium, large")
	maxCores := flag.Int("maxcores", 16, "largest machine (use 64 for the paper's setup)")
	only := flag.String("only", "", "comma-separated subset: table1,table2,table4,table5,fig11-fig18,gvt,canary,mappers,phases")
	mapper := flag.String("mapper", "",
		"task-mapping policy for every Swarm run ("+strings.Join(core.MapperNames(), ", ")+"); default random")
	backendF := flag.String("backend", "",
		"execution backend for every Swarm run ("+strings.Join(core.BackendNames(), ", ")+"); default sim. "+
			"Native rt backends report zero cycles, so cycle-based figures degenerate")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files to this directory")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent simulations on the host (1 = sequential; results are identical)")
	simWorkers := flag.Int("simworkers", 1,
		"shard each simulated machine across N goroutines (results are bit-identical; 1 = single-threaded)")
	quiet := flag.Bool("quiet", false, "suppress per-task progress lines on stderr")
	flag.Parse()

	// Validate every selector flag up front against the registries (a bad
	// value fails here, with the valid options, instead of minutes into
	// the sweep).
	scale, err := harness.ValidateScale(*scaleF)
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateMapper(*mapper); err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateCores(*maxCores); err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateBackend(*backendF); err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateSimWorkers(*simWorkers); err != nil {
		log.Fatal(err)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	enabled := func(k string) bool { return len(want) == 0 || want[k] }

	out := os.Stdout
	s := harness.NewSuite(scale)
	s.SetWorkers(*workers)
	s.SetMapper(*mapper)
	s.SetBackend(*backendF)
	s.SetSimWorkers(*simWorkers)
	if !*quiet {
		s.SetProgress(func(done, total int, label string, eta time.Duration) {
			if eta >= time.Second {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s (eta %s)\n", done, total, label, eta.Round(time.Second))
			} else {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, label)
			}
		})
	}
	coreCounts := coreSweep(*maxCores)
	fmt.Fprintf(out, "Swarm reproduction: scale=%s, cores=%v\n", scale, coreCounts)
	fmt.Fprintf(os.Stderr, "running with %d workers\n", s.Workers())

	// step prints the banner and runs one experiment; a failure is
	// recorded and reported but does not abort the sweep — later tables
	// and figures still run, and the process exits non-zero once at the
	// end. (Wall-clock timing goes to stderr so stdout stays
	// byte-identical across runs and worker counts.)
	var failures []string
	step := func(title string, fn func() error) {
		fmt.Fprint(out, harness.Banner(title))
		start := time.Now()
		if err := fn(); err != nil {
			failures = append(failures, title)
			fmt.Fprintf(os.Stderr, "ERROR: %s failed: %v\n", title, err)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: [%.1fs]\n", title, time.Since(start).Seconds())
	}

	if enabled("table1") {
		step("Table 1: parallelism limit study", func() error {
			rows := s.Table1(0)
			harness.PrintTable1(out, rows)
			return writeCSV(*csvDir, "table1.csv", func(w *os.File) error {
				return harness.WriteTable1CSV(w, rows)
			})
		})
	}
	if enabled("table2") {
		step("Table 2: task unit hardware costs", func() error {
			harness.PrintTable2(out, core.DefaultConfig(64))
			return nil
		})
	}

	var results []harness.ScalingResult
	needScaling := enabled("fig11") || enabled("fig12") || enabled("fig14") ||
		enabled("fig15") || enabled("fig16") || enabled("table4")
	if needScaling {
		step("Fig 11/12: scaling (Swarm, serial, software-parallel)", func() error {
			var err error
			results, err = s.ScalingAll(coreCounts)
			if err != nil {
				return err
			}
			for _, r := range results {
				harness.PrintScaling(out, r)
			}
			if err := writeCSV(*csvDir, "scaling.csv", func(w *os.File) error {
				return harness.WriteScalingCSV(w, results)
			}); err != nil {
				return err
			}
			if err := writeCSV(*csvDir, "breakdown.csv", func(w *os.File) error {
				return harness.WriteBreakdownCSV(w, results)
			}); err != nil {
				return err
			}
			return writeCSV(*csvDir, "traffic.csv", func(w *os.File) error {
				return harness.WriteTrafficCSV(w, results)
			})
		})
	}
	if enabled("table4") {
		step("Table 4: serial run-times", func() error {
			fmt.Fprintf(out, "%-8s %16s\n", "app", "serial cycles")
			for _, b := range s.Benchmarks {
				cyc, err := s.Serial(b, 1)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%-8s %16d\n", b.Name(), cyc)
			}
			return nil
		})
	}
	if enabled("fig14") {
		step("Fig 14: aggregate core-cycle breakdowns", func() error {
			for _, r := range results {
				harness.PrintFig14(out, r.App, r.Points)
			}
			return nil
		})
	}
	if enabled("fig15") {
		step("Fig 15: queue occupancies", func() error {
			harness.PrintFig15(out, results)
			return nil
		})
	}
	if enabled("fig16") {
		step("Fig 16: NoC traffic", func() error {
			harness.PrintFig16(out, results)
			return nil
		})
	}
	if enabled("fig13") {
		step("Fig 13: silo warehouse sensitivity", func() error {
			txns := map[harness.Scale]int{harness.ScaleTiny: 60, harness.ScaleSmall: 200, harness.ScaleMedium: 800, harness.ScaleLarge: 800}[scale]
			pts, err := s.Fig13([]int{16, 4, 1}, *maxCores, txns)
			if err != nil {
				return err
			}
			harness.PrintFig13(out, pts, *maxCores)
			return nil
		})
	}
	if enabled("table5") {
		step("Table 5: idealization study", func() error {
			rows, err := s.Table5(*maxCores)
			if err != nil {
				return err
			}
			harness.PrintTable5(out, rows, *maxCores)
			return nil
		})
	}
	if enabled("fig17a") {
		step("Fig 17(a): commit queue size sweep", func() error {
			totals := []int{}
			for _, per := range []int{2, 4, 8, 16, 32} {
				totals = append(totals, per**maxCores)
			}
			totals = append(totals, 0) // unbounded
			pts, err := s.CommitQueueSweep(*maxCores, totals)
			if err != nil {
				return err
			}
			harness.PrintSweep(out, "performance vs default (1.0) by aggregate commit queue entries:", s.AppNames(), pts)
			return nil
		})
	}
	if enabled("fig17b") {
		step("Fig 17(b): Bloom filter sweep", func() error {
			pts, err := s.BloomSweep(*maxCores, []bloom.Config{
				{Bits: 256, Ways: 4},
				{Bits: 1024, Ways: 4},
				{Bits: 2048, Ways: 8},
				{Precise: true},
			})
			if err != nil {
				return err
			}
			harness.PrintSweep(out, "performance vs default (1.0) by signature configuration:", s.AppNames(), pts)
			return nil
		})
	}
	if enabled("gvt") {
		step("§6.4: GVT update period sweep", func() error {
			pts, err := s.GVTSweep(*maxCores, []uint64{50, 100, 200, 400, 800})
			if err != nil {
				return err
			}
			harness.PrintSweep(out, "performance vs default (1.0) by GVT period:", s.AppNames(), pts)
			return nil
		})
	}
	if enabled("canary") {
		step("§6.3: canary virtual time precision", func() error {
			red, sp, err := s.CanaryStudy(*maxCores)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "per-line canaries: %.1f%% fewer global checks, gmean speedup %.3fx\n", 100*red, sp)
			return nil
		})
	}
	if enabled("mappers") {
		step("task-mapping policy sweep", func() error {
			pts, err := s.MapperSweep(*maxCores, core.MapperNames())
			if err != nil {
				return err
			}
			harness.PrintMapperSweep(out, *maxCores, pts)
			return writeCSV(*csvDir, "mappers.csv", func(w *os.File) error {
				return harness.WriteMapperCSV(w, pts)
			})
		})
	}
	if enabled("phases") {
		step("phased sessions: per-phase statistics of multi-phase workloads", func() error {
			pts, err := s.PhasedRuns(coreCounts)
			if err != nil {
				return err
			}
			harness.PrintPhases(out, pts)
			return writeCSV(*csvDir, "phases.csv", func(w *os.File) error {
				return harness.WritePhasesCSV(w, pts)
			})
		})
	}
	if enabled("fig18") {
		step("Fig 18: astar execution trace (16 cores, 4 tiles)", func() error {
			st, err := s.Fig18()
			if err != nil {
				return err
			}
			harness.PrintFig18(out, st, 30)
			return writeCSV(*csvDir, "trace.csv", func(w *os.File) error {
				return harness.WriteTraceCSV(w, st)
			})
		})
	}

	if len(failures) > 0 {
		log.Fatalf("%d experiment step(s) failed: %s", len(failures), strings.Join(failures, "; "))
	}
}

// writeCSV writes one CSV artifact when -csv is set.
func writeCSV(dir, name string, fn func(*os.File) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func coreSweep(maxCores int) []int {
	out := []int{1}
	for c := 2; c <= maxCores; c *= 2 {
		out = append(out, c)
	}
	return out
}
